(* ccr_chaos: deterministic fault-injection campaigns over the
   revocation stack.

   For each (seed, strategy) cell the runner first executes a churn rig
   with no faults to calibrate a horizon, plans a Chaos schedule from the
   seed, and re-runs the identical rig with the schedule armed and the
   shadow-state sanitizer plus the happens-before race detector attached.
   A cell passes only if every planned fault actually fired, at least one
   revocation epoch ran, the run terminated, and both checkers are clean
   — i.e. no quarantined block was reused before a clean epoch even while
   sweeps crashed, quiesces stuck, acks dropped, tags flipped and drains
   stalled.

   Every fourth seed additionally runs a multi-process rig in which a
   chaos controller kills a tenant at an arbitrary epoch phase (Os.kill);
   the reaper must still drain the victim's quarantine through the full
   protocol.

   The storm rig (unless --skip-storm) overloads a Reloaded run past its
   recovery budgets — a CLG fault storm and a burst of sweep crashes —
   and requires the graceful-degradation ladder to walk
   Reloaded -> Cornucopia -> Cherivoke while the run still terminates
   with clean checkers.

   Exits nonzero on any cell failure.

     dune exec bin/ccr_chaos.exe -- --seeds 20
     dune exec bin/ccr_chaos.exe -- --seeds 3 --ops 1500 --json chaos.json
     dune exec bin/ccr_chaos.exe -- --strategies reloaded --kinds sweep-crash *)

open Cmdliner
module Machine = Sim.Machine
module Trace = Sim.Trace
module Prng = Sim.Prng
module Cap = Cheri.Capability
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs
module Policy = Ccr.Policy
module Syscall = Kernel.Syscall
module Sanitizer = Analysis.Sanitizer
module Race = Analysis.Race

let config seed =
  {
    Machine.default_config with
    heap_bytes = 4 lsl 20;
    mem_bytes = 16 lsl 20;
    seed;
  }

(* Small quarantine minimum so short runs close many epochs. *)
let policy = Policy.with_min Policy.default 16_384

(* Campaign knobs: the watchdog sits just above light_profile's drain cap
   (so fault-free syscalls can never trip it), retries are short so
   injected faults resolve quickly, and the storm trigger stays off. *)
let campaign_recovery =
  {
    Revoker.default_recovery with
    watchdog_timeout = 600_000;
    max_quiesce_retries = 2;
    backoff_base = 5_000;
  }

(* ---- the churn rig ---- *)

(* Malloc/free churn over a 64-slot working set, with aliases written
   through a capability table, a spine of live page-sized blocks whose
   capability reloads exercise the load barrier on many distinct pages,
   and periodic light syscalls for quiesce-drain coverage. *)
let churn ?(finish = true) rt ~seed ~ops ~spine ctx =
  let rng = Prng.create ~seed:(seed lxor 0x5eed) in
  let regs = Machine.regs (Machine.self ctx) in
  let table = Runtime.malloc rt ctx 4096 in
  Sim.Regfile.set regs 0 table;
  let slot i = Cap.set_addr table (Cap.base table + (i * 16)) in
  let spine_caps = Array.init spine (fun _ -> Runtime.malloc rt ctx 4096) in
  Array.iter (fun c -> Machine.store_cap ctx c c) spine_caps;
  let slots = Array.make 64 None in
  for i = 0 to ops - 1 do
    let j = Prng.int rng 64 in
    (match slots.(j) with
    | Some c ->
        ignore (Machine.load_u64 ctx c);
        Runtime.free rt ctx c;
        slots.(j) <- None
    | None ->
        let c = Runtime.malloc rt ctx (48 + (16 * Prng.int rng 61)) in
        Machine.store_u64 ctx c (Int64.of_int i);
        Machine.store_cap ctx (slot (j land 31)) c;
        slots.(j) <- Some c);
    if i land 7 = 0 then
      Array.iter (fun c -> ignore (Machine.load_cap ctx c)) spine_caps;
    if i land 31 = 0 then Syscall.perform ~profile:Syscall.light_profile ctx
  done;
  Array.iter
    (function Some c -> Runtime.free rt ctx c | None -> ())
    slots;
  if finish then Runtime.finish rt ctx

(* ---- per-cell results ---- *)

type cell = {
  c_rig : string;
  c_seed : int;
  c_strategy : string; (* requested *)
  c_final : string; (* after any downshifts *)
  c_sched : int;
  c_horizon : int;
  c_injected : (string * int) list; (* kind name -> injections *)
  c_unfired : string list;
  c_epochs : int;
  c_cycles : int;
  c_rs : Revoker.recovery_stats;
  c_throttled : int;
  c_abandoned : int;
  c_ok : bool;
  c_note : string;
  c_report : string; (* buffered checker findings; printed by the caller *)
  c_duration_ms : float; (* host wall-clock of the whole cell *)
}

let zero_rs =
  {
    Revoker.epoch_aborts = 0;
    sweep_crash_retries = 0;
    quiesce_timeouts = 0;
    backoff_cycles = 0;
    downshifts = 0;
  }

(* Cells run on worker domains under --jobs, so findings are buffered
   into the cell and printed by the main domain in campaign order. *)
let report_checkers fmt san race =
  if not (Sanitizer.ok san) then Sanitizer.report fmt san;
  if not (Race.ok race) then Race.report fmt race

(* One churn execution; [schedule = None] is the calibration pass. *)
let churn_exec ~seed ~ops ~spine ~recovery ~strategy schedule =
  let rt =
    Runtime.create ~config:(config seed) ~policy ~recovery
      (Runtime.Safe strategy)
  in
  let m = rt.Runtime.machine in
  Machine.attach_tracer m (Some (Trace.create ~capacity:262144 ()));
  let san = Sanitizer.attach ?revoker:rt.Runtime.revoker m in
  let race = Race.attach m in
  let chaos =
    Option.map
      (fun s ->
        Chaos.install m ~revoker:rt.Runtime.revoker ~mrs:rt.Runtime.mrs s)
      schedule
  in
  ignore
    (Machine.spawn m ~name:"app" ~core:3 (fun ctx ->
         churn rt ~seed ~ops ~spine ctx));
  let crashed =
    match Machine.run m with () -> None | exception e -> Some e
  in
  Sanitizer.finish san;
  (rt, san, race, chaos, Machine.global_time m, crashed)

let cell_of_run ?epochs ~rig ~seed ~strategy ~sched ~horizon ~requested rt san
    race chaos cycles crashed =
  let stats = Runtime.mrs_stats rt in
  let epochs =
    match epochs with
    | Some n -> n
    | None -> (
        match stats with Some s -> s.Mrs.revocations | None -> 0)
  in
  let rs, final =
    match rt.Runtime.revoker with
    | Some rv -> (Revoker.recovery_stats rv, Revoker.strategy rv)
    | None -> (zero_rs, requested)
  in
  let injected =
    match chaos with
    | None -> []
    | Some t ->
        List.map
          (fun o -> (Chaos.kind_name o.Chaos.o_kind, o.Chaos.o_injected))
          (Chaos.outcomes t)
  in
  let unfired =
    match chaos with
    | None -> []
    | Some t -> List.map Chaos.kind_name (Chaos.unfired t)
  in
  let checkers = Sanitizer.ok san && Race.ok race in
  let ok =
    crashed = None && checkers && unfired = [] && epochs > 0
  in
  let note =
    match crashed with
    | Some e -> Printexc.to_string e
    | None ->
        if not checkers then "checker findings"
        else if unfired <> [] then "unfired fault(s)"
        else if epochs = 0 then "vacuous: no epoch ran"
        else ""
  in
  let report = Buffer.create 0 in
  if not checkers then begin
    let fmt = Format.formatter_of_buffer report in
    report_checkers fmt san race;
    Format.pp_print_flush fmt ()
  end;
  {
    c_rig = rig;
    c_seed = seed;
    c_strategy = Revoker.strategy_name strategy;
    c_final = Revoker.strategy_name final;
    c_sched = sched;
    c_horizon = horizon;
    c_injected = injected;
    c_unfired = unfired;
    c_epochs = epochs;
    c_cycles = cycles;
    c_rs = rs;
    c_throttled =
      (match stats with Some s -> s.Mrs.throttled_allocs | None -> 0);
    c_abandoned =
      (match stats with Some s -> s.Mrs.abandoned_bytes | None -> 0);
    c_ok = ok;
    c_note = note;
    c_report = Buffer.contents report;
    c_duration_ms = 0.0; (* stamped by the campaign driver *)
  }

(* Calibrate, plan, inject. Returns None when no requested fault kind is
   applicable to the strategy (e.g. paint+sync with only sweep faults
   requested): there is nothing to inject, so no cell. *)
let churn_cell ~seed ~ops ~kinds strategy =
  let _, _, _, _, horizon, crashed =
    churn_exec ~seed ~ops ~spine:16 ~recovery:campaign_recovery ~strategy None
  in
  (match crashed with
  | Some e ->
      failwith
        (Printf.sprintf "calibration run died (%s seed %d): %s"
           (Revoker.strategy_name strategy)
           seed (Printexc.to_string e))
  | None -> ());
  let schedule = Chaos.plan ~seed ~strategy ~horizon ~kinds () in
  if schedule.Chaos.faults = [] then None
  else
    let rt, san, race, chaos, cycles, crashed =
      churn_exec ~seed ~ops ~spine:16 ~recovery:campaign_recovery ~strategy
        (Some schedule)
    in
    Some
      (cell_of_run ~rig:"churn" ~seed ~strategy
         ~sched:(Chaos.schedule_id schedule) ~horizon ~requested:strategy rt
         san race chaos cycles crashed)

(* ---- the tenant-kill rig ---- *)

(* Two forked tenants churn in their own address spaces; a chaos
   controller kills tenant-a at a fixed cycle regardless of what phase
   its revoker is in. The victim churns forever — only the kill ends it —
   so the fault always fires; the reaper must then drain its quarantine
   through the full epoch protocol. *)
let tenant_kill_cell ~seed ~ops strategy =
  let kill_at = 2_000_000 in
  let schedule =
    {
      Chaos.sched_id = (seed * 31) land 0x3fffffff;
      horizon = kill_at * 4;
      faults =
        [
          {
            Chaos.f_id = 0;
            f_kind = Chaos.Tenant_kill;
            f_at = kill_at;
            f_param = 0;
            f_count = 1;
          };
        ];
    }
  in
  let os =
    Os.create ~config:(config seed) ~policy ~recovery:campaign_recovery
      (Runtime.Safe strategy)
  in
  let m = Os.machine os in
  Machine.attach_tracer m (Some (Trace.create ~capacity:262144 ()));
  let init_rt = Os.runtime (Os.init os) in
  let san = Sanitizer.attach ?revoker:init_rt.Runtime.revoker m in
  Os.set_on_process os (fun p ->
      Sanitizer.register_process san ~pid:(Os.pid p)
        ?revoker:(Os.runtime p).Runtime.revoker ());
  let race = Race.attach m in
  Os.spawn_reaper os;
  let victim = ref None in
  let chaos =
    Chaos.install m ~revoker:init_rt.Runtime.revoker ~mrs:init_rt.Runtime.mrs
      ~kill:(fun ctx ->
        match !victim with
        | Some p when Os.proc_state p = Os.Running -> Os.kill os ctx p
        | _ -> 0)
      schedule
  in
  ignore
    (Machine.spawn m ~name:"init" ~core:0 (fun ctx ->
         victim :=
           Some
             (Os.fork os ctx ~parent:(Os.init os) ~name:"tenant-a" ~core:1
                (fun cctx proc ->
                  (* immortal: churn until killed *)
                  let rec forever round =
                    churn ~finish:false (Os.runtime proc)
                      ~seed:((seed * 3) + round)
                      ~ops:512 ~spine:4 cctx;
                    forever (round + 1)
                  in
                  forever 1));
         ignore
           (Os.fork os ctx ~parent:(Os.init os) ~name:"tenant-b" ~core:3
              (fun cctx proc ->
                churn ~finish:false (Os.runtime proc) ~seed:((seed * 3) + 2)
                  ~ops cctx ~spine:4;
                Os.exit os cctx proc));
         Os.wait_children os ctx;
         Os.shutdown os ctx));
  let crashed =
    match Machine.run m with () -> None | exception e -> Some e
  in
  Sanitizer.finish san;
  (* epochs close in the tenants' own revokers, not init's *)
  let epochs =
    List.fold_left
      (fun acc p ->
        match Runtime.mrs_stats (Os.runtime p) with
        | Some s -> acc + s.Mrs.revocations
        | None -> acc)
      0 (Os.procs os)
  in
  let cell =
    cell_of_run ~epochs ~rig:"tenant-kill" ~seed ~strategy
      ~sched:(Chaos.schedule_id schedule) ~horizon:schedule.Chaos.horizon
      ~requested:strategy init_rt san race (Some chaos)
      (Machine.global_time m) crashed
  in
  (* the victim must really have died mid-flight and been reaped *)
  let killed_ok =
    match !victim with Some p -> Os.proc_state p = Os.Reaped | None -> false
  in
  if killed_ok then cell
  else { cell with c_ok = false; c_note = "victim not killed and reaped" }

(* ---- the storm rig ---- *)

(* Push a Reloaded run past every budget: a 64-page capability spine
   generates a CLG fault storm (threshold 20), and a burst of 12 sweep
   crashes with max_crash_retries = 2 / max_epoch_aborts = 2 forces two
   strategy downshifts whichever trigger fires first. The run must end
   on Cherivoke with clean checkers. *)
let storm_recovery =
  {
    campaign_recovery with
    clg_storm_threshold = 20;
    max_crash_retries = 2;
    max_epoch_aborts = 2;
  }

let storm_cell ~seed =
  let strategy = Revoker.Reloaded in
  let _, _, _, _, horizon, _ =
    churn_exec ~seed ~ops:3_000 ~spine:64 ~recovery:storm_recovery ~strategy
      None
  in
  let schedule =
    {
      Chaos.sched_id = 0x5702; (* storm: not seed-planned *)
      horizon;
      faults =
        [
          {
            Chaos.f_id = 0;
            f_kind = Chaos.Sweep_crash;
            f_at = horizon / 3;
            f_param = 0;
            f_count = 12;
          };
        ];
    }
  in
  let rt =
    Runtime.create ~config:(config seed) ~policy ~recovery:storm_recovery
      (Runtime.Safe strategy)
  in
  let m = rt.Runtime.machine in
  let tr = Trace.create ~capacity:262144 () in
  Machine.attach_tracer m (Some tr);
  let san = Sanitizer.attach ?revoker:rt.Runtime.revoker m in
  let race = Race.attach m in
  let chaos =
    Chaos.install m ~revoker:rt.Runtime.revoker ~mrs:rt.Runtime.mrs schedule
  in
  let rv = Option.get rt.Runtime.revoker in
  ignore
    (Machine.spawn m ~name:"app" ~core:3 (fun ctx ->
         (* churn until the crash burst is spent and the ladder has hit
            the floor, then wind down; bounded so a logic error cannot
            hang the campaign *)
         let rec rounds n =
           churn ~finish:false rt ~seed:(seed + n) ~ops:512 ~spine:64 ctx;
           let spent =
             List.for_all (fun o -> o.Chaos.o_spent) (Chaos.outcomes chaos)
           in
           if (not (spent && Revoker.strategy rv = Revoker.Cherivoke))
              && n < 200
           then rounds (n + 1)
         in
         rounds 0;
         Runtime.finish rt ctx));
  let crashed =
    match Machine.run m with () -> None | exception e -> Some e
  in
  Sanitizer.finish san;
  let cell =
    cell_of_run ~rig:"storm" ~seed ~strategy
      ~sched:(Chaos.schedule_id schedule) ~horizon ~requested:strategy rt san
      race (Some chaos) (Machine.global_time m) crashed
  in
  (* ladder assertions: Reloaded -> Cornucopia -> Cherivoke, witnessed in
     the trace with the right strategy codes *)
  let shifts = ref [] in
  Trace.iter tr (fun e ->
      if e.Trace.kind = Trace.Strategy_downshift then
        shifts := (e.Trace.arg, e.Trace.arg2) :: !shifts);
  let shifts = List.rev !shifts in
  let expected =
    [
      (Revoker.strategy_code Revoker.Reloaded,
       Revoker.strategy_code Revoker.Cornucopia);
      (Revoker.strategy_code Revoker.Cornucopia,
       Revoker.strategy_code Revoker.Cherivoke);
    ]
  in
  let final_ok = Revoker.strategy rv = Revoker.Cherivoke in
  let ladder_ok = shifts = expected in
  if cell.c_ok && final_ok && ladder_ok then cell
  else
    {
      cell with
      c_ok = false;
      c_note =
        (if cell.c_note <> "" then cell.c_note
         else if not final_ok then
           "storm did not degrade to cherivoke (final "
           ^ Revoker.strategy_name (Revoker.strategy rv)
           ^ ")"
         else
           Printf.sprintf "unexpected downshift ladder [%s]"
             (String.concat "; "
                (List.map
                   (fun (a, b) -> Printf.sprintf "%d->%d" a b)
                   shifts)));
    }

(* ---- reporting ---- *)

let print_cell verbose c =
  if c.c_report <> "" then Format.eprintf "%s" c.c_report;
  if verbose || not c.c_ok then begin
    let rs = c.c_rs in
    Format.printf
      "%-11s seed %-3d %-12s %-4s sched %08x epochs %-3d inj [%s] aborts %d \
       crash-retries %d wd %d shifts %d final %s%s@."
      c.c_rig c.c_seed c.c_strategy
      (if c.c_ok then "ok" else "FAIL")
      c.c_sched c.c_epochs
      (String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n) c.c_injected))
      rs.Revoker.epoch_aborts rs.Revoker.sweep_crash_retries
      rs.Revoker.quiesce_timeouts rs.Revoker.downshifts c.c_final
      (if c.c_note = "" then "" else " — " ^ c.c_note)
  end

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let write_json path ~jobs cells =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "[\n";
  List.iteri
    (fun i c ->
      let rs = c.c_rs in
      out
        "  {\"rig\": \"%s\", \"topology\": \"single\", \"host_count\": 1, \
         \"balancer\": \"none\", \"tenants\": 1, \"overcommit\": \"none\", \
         \"seed\": %d, \"strategy\": \"%s\", \"final\": \
         \"%s\", \"schedule\": %d, \"horizon\": %d, \"ok\": %b, \"epochs\": \
         %d, \"cycles\": %d, \"injected\": {%s}, \"unfired\": [%s], \
         \"epoch_aborts\": %d, \"sweep_crash_retries\": %d, \
         \"quiesce_timeouts\": %d, \"backoff_cycles\": %d, \"downshifts\": \
         %d, \"throttled_allocs\": %d, \"abandoned_bytes\": %d, \"note\": \
         \"%s\", \"duration_ms\": %.3f, \"jobs\": %d}%s\n"
        c.c_rig c.c_seed c.c_strategy c.c_final c.c_sched c.c_horizon c.c_ok
        c.c_epochs c.c_cycles
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "\"%s\": %d" k n)
              c.c_injected))
        (String.concat ", "
           (List.map (fun k -> Printf.sprintf "\"%s\"" k) c.c_unfired))
        rs.Revoker.epoch_aborts rs.Revoker.sweep_crash_retries
        rs.Revoker.quiesce_timeouts rs.Revoker.backoff_cycles
        rs.Revoker.downshifts c.c_throttled c.c_abandoned
        (json_escape c.c_note)
        c.c_duration_ms jobs
        (if i = List.length cells - 1 then "" else ","))
    cells;
  out "]\n";
  close_out oc

(* ---- CLI ---- *)

let strategy_conv =
  let parse s =
    match
      List.find_opt
        (fun st -> Revoker.strategy_name st = s)
        Revoker.extended_strategies
    with
    | Some st -> Ok st
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown strategy %S (expected one of: %s)" s
                (String.concat ", "
                   (List.map Revoker.strategy_name
                      Revoker.extended_strategies))))
  in
  Arg.conv
    (parse, fun ppf st -> Format.pp_print_string ppf (Revoker.strategy_name st))

let kind_conv =
  let parse s =
    match Chaos.kind_of_name s with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown fault kind %S (expected one of: %s)" s
                (String.concat ", " (List.map Chaos.kind_name Chaos.all_kinds))))
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Chaos.kind_name k))

let seeds_arg =
  Arg.(
    value & opt int 20
    & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per strategy.")

let seed_base_arg =
  Arg.(value & opt int 1 & info [ "seed-base" ] ~doc:"First seed.")

let ops_arg =
  Arg.(
    value & opt int 3_000
    & info [ "ops" ] ~doc:"Churn operations per run.")

let strategies_arg =
  Arg.(
    value
    & opt (list strategy_conv) Revoker.extended_strategies
    & info [ "strategies" ] ~docv:"NAMES"
        ~doc:"Comma-separated strategies to attack.")

let kinds_arg =
  Arg.(
    value
    & opt (list kind_conv)
        Chaos.
          [
            Sweep_crash;
            Stuck_quiesce;
            Shootdown_ack_loss;
            Tag_corruption;
            Quarantine_stall;
          ]
    & info [ "kinds" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated fault kinds for the churn rig (tenant-kill runs \
           its own rig).")

let skip_storm_arg =
  Arg.(value & flag & info [ "skip-storm" ] ~doc:"Skip the storm rig.")

let skip_tenants_arg =
  Arg.(
    value & flag
    & info [ "skip-tenants" ] ~doc:"Skip the tenant-kill rig.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write per-cell records as JSON.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every cell.")

let jobs_arg =
  Arg.(
    value
    & opt int (Parallel.Pool.default_jobs ())
    & info [ "jobs"; "j" ]
        ~doc:
          "Run up to $(docv) campaign cells concurrently on separate \
           domains. Cells are independent seeded simulations reassembled \
           in campaign order, so all output except the $(b,duration_ms) \
           and $(b,jobs) JSON fields is identical for any $(docv)."
        ~docv:"N")

(* Every campaign cell, in reporting order. Cells are independent, so
   they fan out across domains; [Parallel.Pool.map] preserves this
   order, keeping the report and JSON identical for any --jobs. *)
type task =
  | Churn of int * Revoker.strategy
  | Tenant_kill of int * Revoker.strategy
  | Storm of int

let run_task ~ops ~kinds = function
  | Churn (seed, strategy) -> churn_cell ~seed ~ops ~kinds strategy
  | Tenant_kill (seed, strategy) -> Some (tenant_kill_cell ~seed ~ops strategy)
  | Storm seed -> Some (storm_cell ~seed)

let main seeds seed_base ops strategies kinds skip_storm skip_tenants json
    verbose jobs =
  match Parallel.Pool.validate_jobs jobs with
  | Error msg ->
      Format.eprintf "ccr_chaos: %s@." msg;
      1
  | Ok jobs ->
  if seeds < 1 then begin
    Format.eprintf "ccr_chaos: --seeds must be at least 1@.";
    1
  end
  else begin
    let tasks =
      List.concat_map
        (fun i ->
          let seed = seed_base + i in
          List.concat_map
            (fun strategy ->
              Churn (seed, strategy)
              ::
              (if (not skip_tenants) && i mod 4 = 0 then
                 [ Tenant_kill (seed, strategy) ]
               else []))
            strategies)
        (List.init seeds (fun i -> i))
      @ (if skip_storm then [] else [ Storm seed_base ])
    in
    let cells =
      List.filter_map Fun.id
        (Parallel.Pool.map ~jobs
           (fun task ->
             let t0 = Unix.gettimeofday () in
             Option.map
               (fun c ->
                 { c with c_duration_ms = (Unix.gettimeofday () -. t0) *. 1000.0 })
               (run_task ~ops ~kinds task))
           tasks)
    in
    List.iter (print_cell verbose) cells;
    (match json with Some path -> write_json path ~jobs cells | None -> ());
    let failed = List.filter (fun c -> not c.c_ok) cells in
    let injected =
      List.fold_left
        (fun acc c ->
          List.fold_left (fun a (_, n) -> a + n) acc c.c_injected)
        0 cells
    in
    if failed = [] then begin
      Format.printf
        "ccr_chaos: %d cell(s), %d fault injection(s), all recovered, \
         checkers clean@."
        (List.length cells) injected;
      0
    end
    else begin
      Format.printf "ccr_chaos: %d of %d cell(s) FAILED@."
        (List.length failed) (List.length cells);
      1
    end
  end

let cmd =
  Cmd.v
    (Cmd.info "ccr_chaos" ~version:"1.0"
       ~doc:
         "Deterministic fault-injection campaigns: sweep crashes, stuck \
          quiesces, ack loss, tag corruption, drain stalls and tenant kills \
          against every revocation strategy, with the protocol checkers \
          attached.")
    Term.(
      const main $ seeds_arg $ seed_base_arg $ ops_arg $ strategies_arg
      $ kinds_arg $ skip_storm_arg $ skip_tenants_arg $ json_arg
      $ verbose_arg $ jobs_arg)

let () = exit (Cmd.eval' cmd)
