(* ccr_mc: exhaustive safe-point model checker.

   Drives Sim.Machine through every inequivalent safe-point interleaving
   of the small lib/mc scenarios — 2 cores, tiny heaps, one or two
   quarantined regions — asserting the full sanitizer/race rule set plus
   the scenarios' end-state assertions on each explored schedule.
   Dynamic partial-order reduction (sleep sets + backtrack sets over the
   Dep footprint relation) prunes equivalent interleavings; each cell
   also reruns a capped naive enumeration so the reduction is measured,
   not assumed.

     dune exec bin/ccr_mc.exe -- --max-schedules 100 --jobs 4
     dune exec bin/ccr_mc.exe -- --scenarios crash-mid-sweep --strategies reloaded
     dune exec bin/ccr_mc.exe -- --mutations --repro-dir repros
     dune exec bin/ccr_mc.exe -- --replay repros/early-dequarantine.sched

   On a violation the minimal reproducing schedule is printed (and saved
   under --repro-dir) as a replayable yield trace. Exit status: 0 iff
   every explored schedule of every cell is clean (matrix mode) / every
   seeded mutation is found with a replayable schedule (--mutations). *)

open Cmdliner
module Revoker = Ccr.Revoker
module Scenario = Mc.Scenario
module Explorer = Mc.Explorer
module Schedule = Mc.Schedule
module Replay = Mc.Replay

(* ---- outcome merging (parallel subtree exploration) ---- *)

let merge (a : Explorer.outcome) (b : Explorer.outcome) =
  {
    Explorer.executions = a.Explorer.executions + b.Explorer.executions;
    max_points = max a.Explorer.max_points b.Explorer.max_points;
    backtracks = a.Explorer.backtracks + b.Explorer.backtracks;
    capped = a.Explorer.capped || b.Explorer.capped;
    diverged = a.Explorer.diverged + b.Explorer.diverged;
    min_trials = a.Explorer.min_trials + b.Explorer.min_trials;
    violation =
      (match a.Explorer.violation with
      | Some _ as v -> v
      | None -> b.Explorer.violation);
  }

(* Explore one cell: probe the first choice point, then run one explorer
   per root arm (the parallel work unit) under a split budget. The probe
   and the per-arm explorations are deterministic, and arms are merged
   in arm order, so the cell's result is identical for any --jobs. *)
let cell_tasks ~max_schedules ~depth scenario strategy =
  let roots = Explorer.root_candidates ~scenario ~strategy () in
  match roots with
  | [] | [ _ ] ->
      [
        (fun () ->
          Explorer.explore ~scenario ~strategy ~max_schedules ~depth ());
      ]
  | _ ->
      let budget =
        max 1 ((max_schedules + List.length roots - 1) / List.length roots)
      in
      List.map
        (fun root () ->
          Explorer.explore ~scenario ~strategy ~max_schedules:budget ~depth
            ~root ())
        roots

let pp_schedule_inline fmt choices =
  if choices = [] then Format.fprintf fmt "(empty: default schedule)"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
      Schedule.pp_choice fmt choices

let repro_path repro_dir scenario strategy tag =
  Printf.sprintf "%s/%s-%s%s.sched" repro_dir (Scenario.name scenario)
    (Revoker.strategy_name strategy)
    (match tag with Some t -> "-" ^ t | None -> "")

let save_repro ~repro_dir ~scenario ~strategy ~fault ~expect ~tag violation =
  match repro_dir with
  | None -> None
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = repro_path dir scenario strategy tag in
      Schedule.save path
        {
          Schedule.scenario = Scenario.name scenario;
          strategy;
          fault;
          expect;
          choices = violation.Explorer.v_schedule;
        };
      Some path

(* ---- matrix mode ---- *)

let matrix_cell_report ~naive_outcome ~repro_dir scenario strategy
    (o : Explorer.outcome) =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  let ok = o.Explorer.violation = None in
  let naive_txt =
    match naive_outcome with
    | None -> ""
    | Some (n : Explorer.outcome) ->
        if n.Explorer.capped then
          Printf.sprintf "; naive > %d" (n.Explorer.executions - 1)
        else Printf.sprintf "; naive %d" n.Explorer.executions
  in
  Format.fprintf fmt "%-18s %-12s %-9s %4d schedule(s)%s (%d backtracks, depth %d%s)@."
    (Scenario.name scenario)
    (Revoker.strategy_name strategy)
    (if ok then "ok" else "VIOLATION")
    o.Explorer.executions naive_txt o.Explorer.backtracks o.Explorer.max_points
    (if o.Explorer.capped then ", capped" else "");
  (match o.Explorer.violation with
  | None -> ()
  | Some v ->
      Format.fprintf fmt "  rules: %s@." (String.concat ", " v.Explorer.v_rules);
      Format.fprintf fmt "  %s@." v.Explorer.v_detail;
      Format.fprintf fmt "  minimal schedule (%d choice(s)): %a@."
        (List.length v.Explorer.v_schedule)
        pp_schedule_inline v.Explorer.v_schedule;
      Format.fprintf fmt "%s" v.Explorer.v_report;
      (match
         save_repro ~repro_dir ~scenario ~strategy ~fault:None
           ~expect:
             (match v.Explorer.v_rules with r :: _ -> Some r | [] -> None)
           ~tag:None v
       with
      | Some path -> Format.fprintf fmt "  schedule saved to %s@." path
      | None -> ()));
  Format.pp_print_flush fmt ();
  (ok, Buffer.contents buf)

let run_matrix ~scenarios ~strategies ~max_schedules ~depth ~jobs ~skip_naive
    ~repro_dir =
  let cells =
    List.concat_map
      (fun sc -> List.map (fun st -> (sc, st)) strategies)
      scenarios
  in
  (* probe serially (cheap single executions), then flatten every cell's
     per-root-arm subtree tasks into one parallel map *)
  let tasks =
    List.map (fun (sc, st) -> cell_tasks ~max_schedules ~depth sc st) cells
  in
  let flat = List.concat tasks in
  let results = Parallel.Pool.map ~jobs (fun f -> f ()) flat in
  (* regroup results cell by cell, in order *)
  let outcomes, _ =
    List.fold_left
      (fun (acc, rest) cell_task ->
        let n = List.length cell_task in
        let rec take k l =
          if k = 0 then ([], l)
          else
            match l with
            | x :: tl ->
                let xs, rest = take (k - 1) tl in
                (x :: xs, rest)
            | [] -> assert false
        in
        let mine, rest = take n rest in
        let merged =
          match mine with x :: tl -> List.fold_left merge x tl | [] -> assert false
        in
        (merged :: acc, rest))
      ([], results) tasks
  in
  let outcomes = List.rev outcomes in
  (* capped naive enumeration for the reduction measurement: the budget
     always exceeds the DPOR count, so a capped naive run still proves
     naive > DPOR, and an uncapped one reports the exact ratio *)
  let naive_outcomes =
    if skip_naive then List.map (fun _ -> None) cells
    else
      Parallel.Pool.map ~jobs
        (fun ((sc, st), (o : Explorer.outcome)) ->
          Some
            (Explorer.explore ~scenario:sc ~strategy:st ~naive:true
               ~max_schedules:(max (o.Explorer.executions + 1) (max_schedules + 1))
               ~depth ()))
        (List.combine cells outcomes)
  in
  let reports =
    List.map2
      (fun ((sc, st), o) naive_outcome ->
        matrix_cell_report ~naive_outcome ~repro_dir sc st o)
      (List.combine cells outcomes)
      naive_outcomes
  in
  List.iter (fun (_, txt) -> print_string txt) reports;
  let total =
    List.fold_left (fun acc (o : Explorer.outcome) -> acc + o.Explorer.executions) 0 outcomes
  in
  let failed = List.length (List.filter (fun (ok, _) -> not ok) reports) in
  if failed = 0 then begin
    Format.printf "ccr_mc: %d cell(s), %d schedule(s) explored, no violations@."
      (List.length cells) total;
    0
  end
  else begin
    Format.printf "ccr_mc: %d of %d cell(s) found violations (%d schedule(s) explored)@."
      failed (List.length cells) total;
    1
  end

(* ---- seeded-mutation mode ---- *)

(* The three PR-seeded protocol mutations, each expected to be caught
   under its own rule from a neutral schedule of the alias-rig scenario
   (the same triples ccr_check's phase 2 asserts). *)
let mutations =
  [
    (Revoker.Reloaded, Revoker.Early_dequarantine, "early-dequarantine");
    (Revoker.Cornucopia, Revoker.Skip_shootdown, "missing-shootdown");
    (Revoker.Reloaded, Revoker.Skip_hoard_scan, "missing-hoard-scan");
  ]

let run_mutations ~max_schedules ~depth ~jobs ~repro_dir =
  let scenario =
    match Scenario.find "free-during-sweep" with
    | Some sc -> sc
    | None -> assert false
  in
  let tasks =
    List.map
      (fun (strategy, fault, rule) () ->
        let o =
          Explorer.explore ~scenario ~strategy ~fault ~max_schedules ~depth ()
        in
        let buf = Buffer.create 256 in
        let fmt = Format.formatter_of_buffer buf in
        let ok =
          match o.Explorer.violation with
          | Some v when List.mem rule v.Explorer.v_rules -> true
          | Some _ | None -> false
        in
        (match o.Explorer.violation with
        | Some v ->
            Format.fprintf fmt "%-18s %-12s %-19s %-6s (%d schedule(s), minimal: %d choice(s), rules: %s)@."
              (Scenario.name scenario)
              (Revoker.strategy_name strategy)
              (Revoker.fault_name fault)
              (if ok then "found" else "WRONG-RULE")
              o.Explorer.executions
              (List.length v.Explorer.v_schedule)
              (String.concat ", " v.Explorer.v_rules);
            (match
               save_repro ~repro_dir ~scenario ~strategy ~fault:(Some fault)
                 ~expect:(Some rule) ~tag:(Some (Revoker.fault_name fault)) v
             with
            | Some path ->
                Format.fprintf fmt "  replayable schedule saved to %s@." path
            | None -> ())
        | None ->
            Format.fprintf fmt "%-18s %-12s %-19s MISSED (%d schedule(s), no violation)@."
              (Scenario.name scenario)
              (Revoker.strategy_name strategy)
              (Revoker.fault_name fault) o.Explorer.executions);
        Format.pp_print_flush fmt ();
        (ok, Buffer.contents buf))
      mutations
  in
  let results = Parallel.Pool.map ~jobs (fun f -> f ()) tasks in
  List.iter (fun (_, txt) -> print_string txt) results;
  let failed = List.length (List.filter (fun (ok, _) -> not ok) results) in
  if failed = 0 then begin
    Format.printf "ccr_mc: all %d seeded mutation(s) detected@."
      (List.length results);
    0
  end
  else begin
    Format.printf "ccr_mc: %d of %d seeded mutation(s) MISSED@." failed
      (List.length results);
    1
  end

(* ---- cmdliner ---- *)

let scenarios_arg =
  Arg.(
    value
    & opt (list string) (List.map Scenario.name Scenario.all)
    & info [ "scenarios" ] ~docv:"NAMES"
        ~doc:"Comma-separated scenario names to explore.")

let strategies_arg =
  Arg.(
    value
    & opt (list string)
        (List.map Revoker.strategy_name Revoker.extended_strategies)
    & info [ "strategies" ] ~docv:"NAMES"
        ~doc:"Comma-separated strategy names to explore.")

let max_schedules_arg =
  Arg.(
    value & opt int 400
    & info [ "max-schedules" ] ~docv:"N"
        ~doc:"Schedule budget per scenario$(b,×)strategy cell.")

let depth_arg =
  Arg.(
    value & opt int 48
    & info [ "depth" ] ~docv:"N"
        ~doc:
          "Choice-point depth bound: deeper points run under the default \
           schedule and are not backtracked.")

let jobs_arg =
  Arg.(
    value
    & opt int (Parallel.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Explore up to $(docv) subtrees concurrently on separate domains. \
           Subtrees are merged in deterministic order, so output and exit \
           status are identical for any $(docv).")

let mutations_arg =
  Arg.(
    value & flag
    & info [ "mutations" ]
        ~doc:
          "Seeded-mutation mode: arm each Revoker.inject_fault variant and \
           require the explorer to find its rule, saving a minimal \
           replayable schedule.")

let repro_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "repro-dir" ] ~docv:"DIR"
        ~doc:"Write minimal reproducing schedules to $(docv).")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Re-execute a saved schedule under the full checker set and dump \
           the trace; exit 0 iff the schedule's expectation holds.")

let skip_naive_arg =
  Arg.(
    value & flag
    & info [ "skip-naive" ]
        ~doc:"Skip the capped naive-enumeration comparison runs.")

let list_scenarios_arg =
  Arg.(
    value & flag
    & info [ "list-scenarios" ] ~doc:"List scenario names and exit.")

let main scenarios strategies max_schedules depth jobs mutations repro_dir
    replay skip_naive list_scenarios =
  match Parallel.Pool.validate_jobs jobs with
  | Error msg ->
      Format.eprintf "ccr_mc: %s@." msg;
      1
  | Ok jobs ->
  if list_scenarios then begin
    List.iter
      (fun sc ->
        Format.printf "%-18s %s%s@." (Scenario.name sc) (Scenario.doc sc)
          (if Scenario.branchable sc then " [branchable chaos]" else ""))
      Scenario.all;
    0
  end
  else
    match replay with
    | Some file ->
        let r = Replay.run_file file in
        print_string r.Replay.output;
        if r.Replay.passed then 0 else 1
    | None ->
        if mutations then run_mutations ~max_schedules ~depth ~jobs ~repro_dir
        else begin
          let bad = ref [] in
          let scenarios =
            List.filter_map
              (fun n ->
                match Scenario.find n with
                | Some sc -> Some sc
                | None ->
                    bad := n :: !bad;
                    None)
              scenarios
          in
          let strategies =
            List.filter_map
              (fun n ->
                match Revoker.strategy_of_name n with
                | Some st -> Some st
                | None ->
                    bad := n :: !bad;
                    None)
              strategies
          in
          if !bad <> [] then begin
            Format.eprintf "ccr_mc: unknown name(s): %s@."
              (String.concat ", " (List.rev !bad));
            1
          end
          else
            run_matrix ~scenarios ~strategies ~max_schedules ~depth ~jobs
              ~skip_naive ~repro_dir
        end

let cmd =
  Cmd.v
    (Cmd.info "ccr_mc" ~version:"1.0"
       ~doc:
         "Exhaustively model-check the revocation protocol's safe-point \
          interleavings with dynamic partial-order reduction.")
    Term.(
      const main $ scenarios_arg $ strategies_arg $ max_schedules_arg
      $ depth_arg $ jobs_arg $ mutations_arg $ repro_dir_arg $ replay_arg
      $ skip_naive_arg $ list_scenarios_arg)

let () = exit (Cmd.eval' cmd)
