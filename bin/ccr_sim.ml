(* ccr_sim: run one workload under one temporal-safety strategy and
   report the measurements — the repository's command-line front end.

     dune exec bin/ccr_sim.exe -- spec --workload xalancbmk --mode reloaded
     dune exec bin/ccr_sim.exe -- pgbench --mode cornucopia --transactions 4000
     dune exec bin/ccr_sim.exe -- grpc --mode reloaded --phases *)

open Cmdliner

module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Result = Workload.Result

let mode_of_string = function
  | "baseline" -> Ok Runtime.Baseline
  | "paint+sync" | "paint-sync" | "paint" -> Ok (Runtime.Safe Revoker.Paint_sync)
  | "cherivoke" -> Ok (Runtime.Safe Revoker.Cherivoke)
  | "cornucopia" -> Ok (Runtime.Safe Revoker.Cornucopia)
  | "reloaded" -> Ok (Runtime.Safe Revoker.Reloaded)
  | "cheriot" -> Ok (Runtime.Safe Revoker.Cheriot_filter)
  | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))

let mode_conv =
  Arg.conv
    ( mode_of_string,
      fun fmt m -> Format.pp_print_string fmt (Runtime.mode_name m) )

let mode_arg =
  let doc =
    "Temporal-safety mode: baseline, paint+sync, cherivoke, cornucopia, \
     reloaded, or cheriot."
  in
  Arg.(value & opt mode_conv (Runtime.Safe Revoker.Reloaded) & info [ "mode"; "m" ] ~doc)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic simulation seed.")

let interp_conv =
  Arg.conv
    ( (function
      | "compiled" -> Ok Workload.Spec.Compiled
      | "reference" -> Ok Workload.Spec.Reference
      | s -> Error (`Msg (Printf.sprintf "unknown interpreter %S" s))),
      fun fmt i ->
        Format.pp_print_string fmt
          (match i with
          | Workload.Spec.Compiled -> "compiled"
          | Workload.Spec.Reference -> "reference") )

let interp_arg =
  Arg.(
    value
    & opt interp_conv Workload.Spec.Compiled
    & info [ "interp" ]
        ~doc:
          "Op-stream interpreter: $(b,compiled) (default; precompiled \
           zero-alloc decode loop) or $(b,reference) (the original per-op \
           interpreter). Simulated behaviour is bit-for-bit identical; only \
           host wall-clock differs." ~docv:"KIND")

let phases_arg =
  Arg.(
    value & flag
    & info [ "phases" ] ~doc:"Print per-epoch revocation phase records.")

let trace_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace" ]
        ~doc:"Attach an event tracer and dump the last $(docv) events."
        ~docv:"N")

let mk_tracer = function
  | None -> None
  | Some _ -> Some (Sim.Trace.create ~capacity:65536 ())

let sched_conv =
  Arg.conv
    ( (function
      | "round-robin" | "rr" -> Ok Os.Revsched.Round_robin
      | "pressure" -> Ok Os.Revsched.Pressure
      | "slo" -> Ok Os.Revsched.Slo
      | "quota" -> Ok Os.Revsched.Quota
      | s -> Error (`Msg (Printf.sprintf "unknown scheduler %S" s))),
      fun fmt p -> Format.pp_print_string fmt (Os.Revsched.policy_name p) )

let sched_doc =
  "Revocation scheduling policy: round-robin (fairness), pressure (most \
   quarantined bytes first), slo (least-loaded process first, pressure \
   tiebreak), or quota (largest quarantine debt first — the tenant \
   paying most for revocation lag sweeps first)."

let dump_trace trace tracer =
  match (trace, tracer) with
  | Some n, Some tr ->
      Format.printf "@.last %d trace events:@." (min n (Sim.Trace.length tr));
      Sim.Trace.dump Format.std_formatter ~last:n tr
  | _ -> ()

let report ~phases (r : Result.t) =
  Format.printf "workload:     %s@." r.Result.workload;
  Format.printf "mode:         %s@." r.Result.mode;
  Format.printf "wall:         %.3f ms (%d cycles)@." (Result.wall_ms r)
    r.Result.wall_cycles;
  Format.printf "cpu (all):    %.3f ms@." (Sim.Cost.cycles_to_ms r.Result.cpu_cycles);
  Format.printf "cpu (app):    %.3f ms@."
    (Sim.Cost.cycles_to_ms r.Result.app_cpu_cycles);
  Format.printf "bus:          %d transactions (%d on the app core)@."
    r.Result.bus_total r.Result.bus_app_core;
  Format.printf "peak RSS:     %d pages (%d KiB)@." r.Result.peak_rss_pages
    (r.Result.peak_rss_pages * 4);
  Format.printf "load faults:  %d@." r.Result.clg_faults;
  (match r.Result.mrs with
  | Some s ->
      Format.printf "revocations:  %d (%.1f MiB freed, %d blocked ops)@."
        s.Ccr.Mrs.revocations
        (float_of_int s.Ccr.Mrs.sum_freed_bytes /. 1048576.0)
        s.Ccr.Mrs.blocked_allocs;
      if s.Ccr.Mrs.abandoned_bytes > 0 then
        Format.printf "abandoned:    %d quarantine bytes dropped unrevoked at finish@."
          s.Ccr.Mrs.abandoned_bytes;
      if s.Ccr.Mrs.throttled_allocs > 0 then
        Format.printf "throttled:    %d mallocs slowed by epoch-abort backpressure@."
          s.Ccr.Mrs.throttled_allocs
  | None -> ());
  if Array.length r.Result.latencies_us > 0 then begin
    let l = Array.to_list r.Result.latencies_us in
    let p q = Stats.Summary.percentile l q in
    Format.printf "throughput:   %.0f /s@." r.Result.throughput;
    Format.printf "latency us:   p50=%.1f p90=%.1f p99=%.1f p99.9=%.1f max=%.1f@."
      (p 50.) (p 90.) (p 99.) (p 99.9)
      (List.fold_left max 0. l)
  end;
  if phases then
    List.iter
      (fun ph ->
        Format.printf
          "  epoch %3d: stw=%8.1fus conc=%8.2fms faults=%4d (%.2fms) pages=%5d revoked=%6d bytes=%d@."
          ph.Revoker.epoch_index
          (Sim.Cost.cycles_to_us ph.Revoker.stw_cycles)
          (Sim.Cost.cycles_to_ms ph.Revoker.concurrent_cycles)
          ph.Revoker.fault_count
          (Sim.Cost.cycles_to_ms ph.Revoker.fault_cycles)
          ph.Revoker.pages_visited ph.Revoker.caps_revoked ph.Revoker.bytes_processed)
      r.Result.phases

let spec_cmd =
  let workload =
    let all = String.concat ", " (List.map (fun (p : Workload.Profile.t) -> p.Workload.Profile.name) Workload.Profile.spec_all) in
    Arg.(
      required
      & opt (some string) None
      & info [ "workload"; "w" ] ~doc:(Printf.sprintf "SPEC workload: %s." all))
  in
  let scale =
    Arg.(value & opt float 0.5 & info [ "scale" ] ~doc:"Operation-count scale.")
  in
  let run workload scale mode seed interp phases trace =
    if scale <= 0.0 then begin
      Format.eprintf "ccr_sim spec: --scale must be positive (got %g)@." scale;
      1
    end
    else
      match Workload.Profile.find workload with
      | p ->
          let tracer = mk_tracer trace in
          report ~phases
            (Workload.Spec.run ~seed ~ops_scale:scale ?tracer ~interp ~mode p);
          dump_trace trace tracer;
          0
      | exception Not_found ->
          Format.eprintf "unknown workload %S@." workload;
          1
  in
  Cmd.v
    (Cmd.info "spec" ~doc:"Run a synthetic SPEC CPU2006 workload.")
    Term.(
      const run $ workload $ scale $ mode_arg $ seed_arg $ interp_arg
      $ phases_arg $ trace_arg)

let pgbench_cmd =
  let transactions =
    Arg.(value & opt int 6000 & info [ "transactions"; "t" ] ~doc:"Transaction count.")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~doc:"Fixed arrival schedule, transactions/second.")
  in
  let run transactions rate mode seed phases trace =
    if transactions < 1 then begin
      Format.eprintf "ccr_sim pgbench: --transactions must be at least 1 (got %d)@."
        transactions;
      1
    end
    else if (match rate with Some r -> r <= 0.0 | None -> false) then begin
      Format.eprintf "ccr_sim pgbench: --rate must be positive@.";
      1
    end
    else begin
      let config =
        { Workload.Pgbench.default_config with transactions; rate; seed }
      in
      let tracer = mk_tracer trace in
      report ~phases (Workload.Pgbench.run ~config ?tracer ~mode ());
      dump_trace trace tracer;
      0
    end
  in
  Cmd.v
    (Cmd.info "pgbench" ~doc:"Run the pgbench-style interactive workload.")
    Term.(const run $ transactions $ rate $ mode_arg $ seed_arg $ phases_arg $ trace_arg)

let grpc_cmd =
  let messages =
    Arg.(value & opt int 24000 & info [ "messages" ] ~doc:"Message count.")
  in
  let run messages mode seed phases trace =
    if messages < 1 then begin
      Format.eprintf "ccr_sim grpc: --messages must be at least 1 (got %d)@."
        messages;
      1
    end
    else begin
      let config = { Workload.Grpc.default_config with messages; seed } in
      let tracer = mk_tracer trace in
      report ~phases (Workload.Grpc.run ~config ?tracer ~mode ());
      dump_trace trace tracer;
      0
    end
  in
  Cmd.v
    (Cmd.info "grpc" ~doc:"Run the gRPC-QPS-style multithreaded workload.")
    Term.(const run $ messages $ mode_arg $ seed_arg $ phases_arg $ trace_arg)

let tenant_cmd =
  let workload =
    Arg.(
      value
      & opt string "hmmer_retro"
      & info [ "workload"; "w" ] ~doc:"SPEC profile every tenant runs.")
  in
  let tenants =
    Arg.(value & opt int 2 & info [ "tenants"; "n" ] ~doc:"Concurrent processes.")
  in
  let scale =
    Arg.(value & opt float 0.25 & info [ "scale" ] ~doc:"Operation-count scale.")
  in
  let sched =
    Arg.(
      value & opt sched_conv Os.Revsched.Round_robin & info [ "sched" ] ~doc:sched_doc)
  in
  let run workload tenants scale sched mode seed =
    if tenants < 1 then begin
      Format.eprintf "ccr_sim tenant: --tenants must be at least 1 (got %d)@."
        tenants;
      1
    end
    else if scale <= 0.0 then begin
      Format.eprintf "ccr_sim tenant: --scale must be positive (got %g)@." scale;
      1
    end
    else
      match Workload.Profile.find workload with
      | p ->
          let r =
            Workload.Tenant.run ~seed ~ops_scale:scale ~sched ~tenants ~mode p
          in
          Workload.Tenant.pp Format.std_formatter r;
          0
      | exception Not_found ->
          Format.eprintf "unknown workload %S@." workload;
          1
  in
  Cmd.v
    (Cmd.info "tenant"
       ~doc:
         "Run N concurrent tenant processes under the cross-process \
          revocation scheduler.")
    Term.(const run $ workload $ tenants $ scale $ sched $ mode_arg $ seed_arg)

(* --- tenantecon: quota'd tenants, over-commit, bulk-free storm ------- *)

exception Cli_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Cli_error s)) fmt

module Tecon = Workload.Tenantecon
module Ledger = Tenancy.Ledger

type te_row = {
  te_governed : bool;
  te_overcommit : Ledger.overcommit;
  te_result : Tecon.result;
  te_clean : bool;
  te_report : string;
  te_duration_ms : float;
}

(* One sweep point on a worker domain: never prints, findings go into
   the row's buffer. *)
let tenantecon_point ~cfg ~mode ~check (governed, overcommit) =
  let t0 = Unix.gettimeofday () in
  let cfg : Tecon.config = { cfg with Tecon.governed; overcommit } in
  let san = ref None and race = ref None in
  let tracer =
    if check then Some (Sim.Trace.create ~capacity:(1 lsl 20) ()) else None
  in
  let on_os os =
    if check then begin
      let m = Os.machine os in
      let init_rt = Os.runtime (Os.init os) in
      let s = Analysis.Sanitizer.attach ?revoker:init_rt.Runtime.revoker m in
      Os.set_on_process os (fun p ->
          Analysis.Sanitizer.register_process s ~pid:(Os.pid p)
            ?revoker:(Os.runtime p).Runtime.revoker ());
      san := Some s;
      race := Some (Analysis.Race.attach m)
    end
  in
  let r = Tecon.run ?tracer ~on_os ~config:cfg ~mode () in
  let report = Buffer.create 0 in
  let rfmt = Format.formatter_of_buffer report in
  let checks_clean =
    match (!san, !race) with
    | Some san, Some race ->
        Analysis.Sanitizer.finish san;
        if not (Analysis.Sanitizer.ok san) then Analysis.Sanitizer.report rfmt san;
        if not (Analysis.Race.ok race) then Analysis.Race.report rfmt race;
        Analysis.Sanitizer.ok san && Analysis.Race.ok race
    | _ -> true
  in
  if not r.Tecon.identity_ok then
    Format.fprintf rfmt
      "ccr_sim tenantecon: accounting drift: offered <> served + shed + lost@.";
  if not r.Tecon.conserved then
    Format.fprintf rfmt
      "ccr_sim tenantecon: quota ledger conservation violated@.";
  Format.pp_print_flush rfmt ();
  {
    te_governed = governed;
    te_overcommit = overcommit;
    te_result = r;
    te_clean = checks_clean && r.Tecon.identity_ok && r.Tecon.conserved;
    te_report = Buffer.contents report;
    te_duration_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
  }

let te_json_of_row ~storm_at ~rate ~requests ~seed ~jobs row =
  let r = row.te_result in
  let tenant_json (o : Tecon.tenant_outcome) =
    Printf.sprintf
      "{\"pid\": %d, \"quota\": %d, \"offered\": %d, \"served\": %d, \
       \"shed_quota\": %d, \"shed_depth\": %d, \"lost\": %d, \
       \"denied_quota\": %d, \"denied_phys\": %d, \"reclaims\": %d, \
       \"p99_us\": %.3f, \"goodput\": %.1f, \"balance\": %d, \"grants\": %d, \
       \"conserved\": %b, \"crashed\": %b}"
      o.Tecon.o_pid o.Tecon.o_quota o.Tecon.o_offered o.Tecon.o_served
      o.Tecon.o_shed_quota o.Tecon.o_shed_depth o.Tecon.o_lost
      o.Tecon.o_denied_quota o.Tecon.o_denied_phys o.Tecon.o_reclaims
      o.Tecon.o_p99_us o.Tecon.o_goodput o.Tecon.o_balance o.Tecon.o_grants
      o.Tecon.o_conserved o.Tecon.o_crashed
  in
  Printf.sprintf
    "{\"workload\": \"tenantecon\", \"topology\": \"single\", \
     \"host_count\": 1, \"balancer\": \"none\", \"tenants\": %d, \
     \"overcommit\": \"%s\", \"mode\": \"%s\", \"sched\": \"%s\", \
     \"governor\": %b, \"storm_at\": %.2f, \"rate\": %.1f, \"requests\": %d, \
     \"seed\": %d, \"quota_total\": %d, \"phys_limit\": %d, \
     \"storm_tenant\": %d, \"storm_freed_allocs\": %d, \
     \"storm_freed_bytes\": %d, \"quarantine_peak\": %d, \
     \"committed_peak\": %d, \"p999_us\": %.3f, \"p999_calm_us\": %.3f, \
     \"p999_storm_us\": %.3f, \"identity_ok\": %b, \"conserved\": %b, \
     \"per_tenant\": [%s], \"duration_ms\": %.3f, \"jobs\": %d}"
    r.Tecon.tenants
    (Ledger.overcommit_name row.te_overcommit)
    r.Tecon.mode r.Tecon.sched row.te_governed storm_at rate requests seed
    r.Tecon.quota_total r.Tecon.phys_limit r.Tecon.storm_tenant
    r.Tecon.storm_freed_allocs r.Tecon.storm_freed_bytes
    r.Tecon.quarantine_peak r.Tecon.committed_peak r.Tecon.p999_us
    r.Tecon.p999_calm_us r.Tecon.p999_storm_us r.Tecon.identity_ok
    r.Tecon.conserved
    (String.concat ", " (List.map tenant_json r.Tecon.per_tenant))
    row.te_duration_ms jobs

let overcommits_of_string s =
  match String.trim s with
  | "all" -> Ledger.all_overcommits
  | s ->
      List.map
        (fun p ->
          let p = String.trim p in
          match Ledger.overcommit_of_name p with
          | Some o -> o
          | None ->
              err "unknown over-commit policy %S (expected deny, steal, \
                   revoke, or all)" p)
        (String.split_on_char ',' s)

let tenantecon_cmd =
  let tenants =
    Arg.(
      value & opt int 3
      & info [ "tenants"; "n" ]
          ~doc:
            "Tenant process count. Tenant $(i,i) gets quota \
             $(b,--quota) × (i+1); the largest tenant is the one the \
             storm crashes.")
  in
  let quota =
    Arg.(
      value
      & opt int Tecon.default_config.Tecon.quota_base
      & info [ "quota" ]
          ~doc:
            "Base quota in bytes; tenant $(i,i)'s quota is $(docv) × (i+1), \
             charged at size-class granularity and refunded only when \
             memory leaves quarantine." ~docv:"BYTES")
  in
  let overcommit =
    Arg.(
      value & opt string "all"
      & info [ "overcommit" ]
          ~doc:
            "Comma-separated over-commit policies to sweep, or $(b,all): \
             $(b,deny) (physical exhaustion refuses the allocation), \
             $(b,steal) (force the largest quarantine debtor through \
             revocation and retry), $(b,revoke) (flush every debtor's \
             quarantine and retry).")
  in
  let storm_at =
    Arg.(
      value
      & opt float Tecon.default_config.Tecon.storm_at
      & info [ "storm-at" ]
          ~doc:
            "Crash the largest tenant at this fraction of the horizon: \
             its queue drains as lost, free_all hands its whole live \
             heap to quarantine, its capability is revoked. 1.0 or more \
             disables the storm." ~docv:"FRAC")
  in
  let phys_frac =
    Arg.(
      value
      & opt float Tecon.default_config.Tecon.phys_frac
      & info [ "phys-frac" ]
          ~doc:
            "Physical heap limit as a fraction of the quota sum; below \
             1.0 the quotas are over-committed." ~docv:"FRAC")
  in
  let requests =
    Arg.(
      value
      & opt int Tecon.default_config.Tecon.requests
      & info [ "requests" ] ~doc:"Requests per tenant.")
  in
  let rate =
    Arg.(
      value
      & opt float Tecon.default_config.Tecon.rate
      & info [ "rate" ] ~doc:"Per-tenant offered load, requests/second.")
  in
  let sched =
    Arg.(
      value & opt sched_conv Os.Revsched.Quota & info [ "sched" ] ~doc:sched_doc)
  in
  let governor =
    Arg.(
      value
      & opt (enum [ ("on", [ true ]); ("off", [ false ]); ("both", [ false; true ]) ])
          [ false; true ]
      & info [ "governor"; "g" ]
          ~doc:"Governor axis: $(b,on), $(b,off) or $(b,both).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Write per-run JSON records to $(docv)." ~docv:"PATH")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Attach the protocol sanitizer (including the \
             quota-conservation rule) and race detector to every sweep \
             point, and verify the serving and ledger identities \
             exactly. Exit nonzero on any finding.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Parallel.Pool.default_jobs ())
      & info [ "jobs"; "j" ]
          ~doc:
            "Run up to $(docv) sweep points concurrently on separate \
             domains; results are reassembled in sweep order, so all \
             output except $(b,duration_ms) and $(b,jobs) is identical \
             for any $(docv)." ~docv:"N")
  in
  let run tenants quota overcommit storm_at phys_frac requests rate sched
      governed_axis mode seed json check jobs =
    try
      let jobs =
        match Parallel.Pool.validate_jobs jobs with
        | Ok j -> j
        | Error msg -> err "%s" msg
      in
      if tenants < 1 then err "--tenants must be at least 1 (got %d)" tenants;
      if quota <= 0 then err "--quota must be positive (got %d)" quota;
      if storm_at <= 0.0 then
        err "--storm-at must be positive (got %g; use 1.0 or more to \
             disable the storm)" storm_at;
      if phys_frac <= 0.0 then
        err "--phys-frac must be positive (got %g)" phys_frac;
      if requests < 1 then err "--requests must be at least 1 (got %d)" requests;
      if rate <= 0.0 then err "--rate must be positive (got %g)" rate;
      let overcommits = overcommits_of_string overcommit in
      if overcommits = [] then err "--overcommit lists no policy";
      let cfg =
        {
          Tecon.default_config with
          Tecon.tenants;
          quota_base = quota;
          phys_frac;
          storm_at;
          requests;
          rate;
          sched;
          seed;
        }
      in
      let points =
        List.concat_map
          (fun governed -> List.map (fun oc -> (governed, oc)) overcommits)
          governed_axis
      in
      let rows =
        Parallel.Pool.map ~jobs (tenantecon_point ~cfg ~mode ~check) points
      in
      List.iter
        (fun row -> if row.te_report <> "" then Format.eprintf "%s" row.te_report)
        rows;
      List.iter
        (fun row ->
          Format.printf "--- governor=%s overcommit=%s ---@."
            (if row.te_governed then "on" else "off")
            (Ledger.overcommit_name row.te_overcommit);
          Tecon.pp Format.std_formatter row.te_result)
        rows;
      (match json with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc "[\n";
          List.iteri
            (fun i row ->
              if i > 0 then output_string oc ",\n";
              output_string oc "  ";
              output_string oc
                (te_json_of_row ~storm_at ~rate ~requests ~seed ~jobs row))
            rows;
          output_string oc "\n]\n";
          close_out oc;
          Format.printf "wrote %d records to %s@." (List.length rows) path);
      if check then
        if List.for_all (fun row -> row.te_clean) rows then begin
          Format.printf
            "check: ok (%d runs, zero findings, both identities exact)@."
            (List.length rows);
          0
        end
        else begin
          Format.eprintf "check: FAILED@.";
          1
        end
      else 0
    with Cli_error msg ->
      Format.eprintf "ccr_sim tenantecon: %s@." msg;
      1
  in
  Cmd.v
    (Cmd.info "tenantecon"
       ~doc:
         "Sweep tenant economics: quota'd allocator capabilities, \
          over-commit policies, and a bulk-free reclamation storm."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "N tenant processes with heterogeneous quotas serve open-loop \
              traffic through per-tenant admission queues that shed \
              over-quota tenants' requests before they queue (Req_shed \
              arg2=3). Allocation goes through sealed per-tenant allocator \
              capabilities charged at size-class granularity; the charge is \
              refunded only when memory leaves quarantine, so revocation \
              lag is an economic cost. The quota sum exceeds the physical \
              limit ($(b,--phys-frac)); exhaustion resolves through the \
              $(b,--overcommit) policy.";
           `P
             "At $(b,--storm-at) of the horizon the largest tenant crashes: \
              free_all hands its entire live heap to quarantine in one \
              shot and the zombie drains through its own revoker under \
              $(b,--sched). The per-slice p99.9 columns (calm vs storm) \
              show the excursion the surviving tenants ride out.";
           `P
             "Per tenant, charged − credited = live + quarantined exactly, \
              at every trace point: $(b,--check) attaches the sanitizer's \
              quota-conservation rule, the race detector, and exact \
              serving/ledger identity checks. Same seed, same arguments: \
              byte-identical output at any $(b,--jobs).";
         ])
    Term.(
      const run $ tenants $ quota $ overcommit $ storm_at $ phys_frac
      $ requests $ rate $ sched $ governor $ mode_arg $ seed_arg $ json
      $ check $ jobs)

let main =
  let spec_names =
    String.concat ", "
      (List.map
         (fun (p : Workload.Profile.t) -> p.Workload.Profile.name)
         Workload.Profile.spec_all)
  in
  Cmd.group
    (Cmd.info "ccr_sim" ~version:"1.0"
       ~doc:"Cornucopia Reloaded: CHERI heap temporal safety on a simulated machine."
       ~man:
         [
           `S Manpage.s_description;
           `P
             (Printf.sprintf
                "Workloads: spec (profiles: %s), pgbench, grpc, tenant, \
                 tenantecon — plus the open-loop serving sweep in ccr_serve."
                spec_names);
           `P
             "Temporal-safety modes (--mode): baseline, paint+sync, \
              cherivoke, cornucopia, reloaded, cheriot.";
           `P
             "Cross-process revocation scheduling policies (tenant and \
              tenantecon --sched): round-robin, pressure, slo, quota.";
         ])
    [ spec_cmd; pgbench_cmd; grpc_cmd; tenant_cmd; tenantecon_cmd ]

let () = exit (Cmd.eval' main)
