(* ccr_sim: run one workload under one temporal-safety strategy and
   report the measurements — the repository's command-line front end.

     dune exec bin/ccr_sim.exe -- spec --workload xalancbmk --mode reloaded
     dune exec bin/ccr_sim.exe -- pgbench --mode cornucopia --transactions 4000
     dune exec bin/ccr_sim.exe -- grpc --mode reloaded --phases *)

open Cmdliner

module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Result = Workload.Result

let mode_of_string = function
  | "baseline" -> Ok Runtime.Baseline
  | "paint+sync" | "paint-sync" | "paint" -> Ok (Runtime.Safe Revoker.Paint_sync)
  | "cherivoke" -> Ok (Runtime.Safe Revoker.Cherivoke)
  | "cornucopia" -> Ok (Runtime.Safe Revoker.Cornucopia)
  | "reloaded" -> Ok (Runtime.Safe Revoker.Reloaded)
  | "cheriot" -> Ok (Runtime.Safe Revoker.Cheriot_filter)
  | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))

let mode_conv =
  Arg.conv
    ( mode_of_string,
      fun fmt m -> Format.pp_print_string fmt (Runtime.mode_name m) )

let mode_arg =
  let doc =
    "Temporal-safety mode: baseline, paint+sync, cherivoke, cornucopia, \
     reloaded, or cheriot."
  in
  Arg.(value & opt mode_conv (Runtime.Safe Revoker.Reloaded) & info [ "mode"; "m" ] ~doc)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic simulation seed.")

let phases_arg =
  Arg.(
    value & flag
    & info [ "phases" ] ~doc:"Print per-epoch revocation phase records.")

let trace_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace" ]
        ~doc:"Attach an event tracer and dump the last $(docv) events."
        ~docv:"N")

let mk_tracer = function
  | None -> None
  | Some _ -> Some (Sim.Trace.create ~capacity:65536 ())

let dump_trace trace tracer =
  match (trace, tracer) with
  | Some n, Some tr ->
      Format.printf "@.last %d trace events:@." (min n (Sim.Trace.length tr));
      Sim.Trace.dump Format.std_formatter ~last:n tr
  | _ -> ()

let report ~phases (r : Result.t) =
  Format.printf "workload:     %s@." r.Result.workload;
  Format.printf "mode:         %s@." r.Result.mode;
  Format.printf "wall:         %.3f ms (%d cycles)@." (Result.wall_ms r)
    r.Result.wall_cycles;
  Format.printf "cpu (all):    %.3f ms@." (Sim.Cost.cycles_to_ms r.Result.cpu_cycles);
  Format.printf "cpu (app):    %.3f ms@."
    (Sim.Cost.cycles_to_ms r.Result.app_cpu_cycles);
  Format.printf "bus:          %d transactions (%d on the app core)@."
    r.Result.bus_total r.Result.bus_app_core;
  Format.printf "peak RSS:     %d pages (%d KiB)@." r.Result.peak_rss_pages
    (r.Result.peak_rss_pages * 4);
  Format.printf "load faults:  %d@." r.Result.clg_faults;
  (match r.Result.mrs with
  | Some s ->
      Format.printf "revocations:  %d (%.1f MiB freed, %d blocked ops)@."
        s.Ccr.Mrs.revocations
        (float_of_int s.Ccr.Mrs.sum_freed_bytes /. 1048576.0)
        s.Ccr.Mrs.blocked_allocs;
      if s.Ccr.Mrs.abandoned_bytes > 0 then
        Format.printf "abandoned:    %d quarantine bytes dropped unrevoked at finish@."
          s.Ccr.Mrs.abandoned_bytes;
      if s.Ccr.Mrs.throttled_allocs > 0 then
        Format.printf "throttled:    %d mallocs slowed by epoch-abort backpressure@."
          s.Ccr.Mrs.throttled_allocs
  | None -> ());
  if Array.length r.Result.latencies_us > 0 then begin
    let l = Array.to_list r.Result.latencies_us in
    let p q = Stats.Summary.percentile l q in
    Format.printf "throughput:   %.0f /s@." r.Result.throughput;
    Format.printf "latency us:   p50=%.1f p90=%.1f p99=%.1f p99.9=%.1f max=%.1f@."
      (p 50.) (p 90.) (p 99.) (p 99.9)
      (List.fold_left max 0. l)
  end;
  if phases then
    List.iter
      (fun ph ->
        Format.printf
          "  epoch %3d: stw=%8.1fus conc=%8.2fms faults=%4d (%.2fms) pages=%5d revoked=%6d bytes=%d@."
          ph.Revoker.epoch_index
          (Sim.Cost.cycles_to_us ph.Revoker.stw_cycles)
          (Sim.Cost.cycles_to_ms ph.Revoker.concurrent_cycles)
          ph.Revoker.fault_count
          (Sim.Cost.cycles_to_ms ph.Revoker.fault_cycles)
          ph.Revoker.pages_visited ph.Revoker.caps_revoked ph.Revoker.bytes_processed)
      r.Result.phases

let spec_cmd =
  let workload =
    let all = String.concat ", " (List.map (fun (p : Workload.Profile.t) -> p.Workload.Profile.name) Workload.Profile.spec_all) in
    Arg.(
      required
      & opt (some string) None
      & info [ "workload"; "w" ] ~doc:(Printf.sprintf "SPEC workload: %s." all))
  in
  let scale =
    Arg.(value & opt float 0.5 & info [ "scale" ] ~doc:"Operation-count scale.")
  in
  let run workload scale mode seed phases trace =
    if scale <= 0.0 then begin
      Format.eprintf "ccr_sim spec: --scale must be positive (got %g)@." scale;
      1
    end
    else
      match Workload.Profile.find workload with
      | p ->
          let tracer = mk_tracer trace in
          report ~phases (Workload.Spec.run ~seed ~ops_scale:scale ?tracer ~mode p);
          dump_trace trace tracer;
          0
      | exception Not_found ->
          Format.eprintf "unknown workload %S@." workload;
          1
  in
  Cmd.v
    (Cmd.info "spec" ~doc:"Run a synthetic SPEC CPU2006 workload.")
    Term.(const run $ workload $ scale $ mode_arg $ seed_arg $ phases_arg $ trace_arg)

let pgbench_cmd =
  let transactions =
    Arg.(value & opt int 6000 & info [ "transactions"; "t" ] ~doc:"Transaction count.")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~doc:"Fixed arrival schedule, transactions/second.")
  in
  let run transactions rate mode seed phases trace =
    if transactions < 1 then begin
      Format.eprintf "ccr_sim pgbench: --transactions must be at least 1 (got %d)@."
        transactions;
      1
    end
    else if (match rate with Some r -> r <= 0.0 | None -> false) then begin
      Format.eprintf "ccr_sim pgbench: --rate must be positive@.";
      1
    end
    else begin
      let config =
        { Workload.Pgbench.default_config with transactions; rate; seed }
      in
      let tracer = mk_tracer trace in
      report ~phases (Workload.Pgbench.run ~config ?tracer ~mode ());
      dump_trace trace tracer;
      0
    end
  in
  Cmd.v
    (Cmd.info "pgbench" ~doc:"Run the pgbench-style interactive workload.")
    Term.(const run $ transactions $ rate $ mode_arg $ seed_arg $ phases_arg $ trace_arg)

let grpc_cmd =
  let messages =
    Arg.(value & opt int 24000 & info [ "messages" ] ~doc:"Message count.")
  in
  let run messages mode seed phases trace =
    if messages < 1 then begin
      Format.eprintf "ccr_sim grpc: --messages must be at least 1 (got %d)@."
        messages;
      1
    end
    else begin
      let config = { Workload.Grpc.default_config with messages; seed } in
      let tracer = mk_tracer trace in
      report ~phases (Workload.Grpc.run ~config ?tracer ~mode ());
      dump_trace trace tracer;
      0
    end
  in
  Cmd.v
    (Cmd.info "grpc" ~doc:"Run the gRPC-QPS-style multithreaded workload.")
    Term.(const run $ messages $ mode_arg $ seed_arg $ phases_arg $ trace_arg)

let tenant_cmd =
  let workload =
    Arg.(
      value
      & opt string "hmmer_retro"
      & info [ "workload"; "w" ] ~doc:"SPEC profile every tenant runs.")
  in
  let tenants =
    Arg.(value & opt int 2 & info [ "tenants"; "n" ] ~doc:"Concurrent processes.")
  in
  let scale =
    Arg.(value & opt float 0.25 & info [ "scale" ] ~doc:"Operation-count scale.")
  in
  let sched =
    let sched_conv =
      Arg.conv
        ( (function
          | "round-robin" | "rr" -> Ok Os.Revsched.Round_robin
          | "pressure" -> Ok Os.Revsched.Pressure
          | "slo" -> Ok Os.Revsched.Slo
          | s -> Error (`Msg (Printf.sprintf "unknown scheduler %S" s))),
          fun fmt p ->
            Format.pp_print_string fmt (Os.Revsched.policy_name p) )
    in
    Arg.(
      value
      & opt sched_conv Os.Revsched.Round_robin
      & info [ "sched" ]
          ~doc:
            "Revocation scheduling policy: round-robin (fairness), \
             pressure (most quarantined bytes first), or slo \
             (least-loaded process first, pressure tiebreak).")
  in
  let run workload tenants scale sched mode seed =
    if tenants < 1 then begin
      Format.eprintf "ccr_sim tenant: --tenants must be at least 1 (got %d)@."
        tenants;
      1
    end
    else if scale <= 0.0 then begin
      Format.eprintf "ccr_sim tenant: --scale must be positive (got %g)@." scale;
      1
    end
    else
      match Workload.Profile.find workload with
      | p ->
          let r =
            Workload.Tenant.run ~seed ~ops_scale:scale ~sched ~tenants ~mode p
          in
          Workload.Tenant.pp Format.std_formatter r;
          0
      | exception Not_found ->
          Format.eprintf "unknown workload %S@." workload;
          1
  in
  Cmd.v
    (Cmd.info "tenant"
       ~doc:
         "Run N concurrent tenant processes under the cross-process \
          revocation scheduler.")
    Term.(const run $ workload $ tenants $ scale $ sched $ mode_arg $ seed_arg)

let main =
  let spec_names =
    String.concat ", "
      (List.map
         (fun (p : Workload.Profile.t) -> p.Workload.Profile.name)
         Workload.Profile.spec_all)
  in
  Cmd.group
    (Cmd.info "ccr_sim" ~version:"1.0"
       ~doc:"Cornucopia Reloaded: CHERI heap temporal safety on a simulated machine."
       ~man:
         [
           `S Manpage.s_description;
           `P
             (Printf.sprintf
                "Workloads: spec (profiles: %s), pgbench, grpc, tenant — \
                 plus the open-loop serving sweep in ccr_serve." spec_names);
           `P
             "Temporal-safety modes (--mode): baseline, paint+sync, \
              cherivoke, cornucopia, reloaded, cheriot.";
           `P
             "Cross-process revocation scheduling policies (tenant --sched): \
              round-robin, pressure, slo.";
         ])
    [ spec_cmd; pgbench_cmd; grpc_cmd; tenant_cmd ]

let () = exit (Cmd.eval' main)
