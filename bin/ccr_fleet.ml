(* ccr_fleet: sweep the multi-host serving simulator over topology ×
   balancer × failure schedule × retry policy and report fleet-wide
   goodput, end-to-end tail latency, failure accounting, and per-host
   revocation-pause attribution. Each sweep point is one deterministic
   fleet (N independent simulated machines behind a load balancer plus a
   deterministic client-resilience stack); hosts within a point fan out
   across --jobs domains and the simulated output is byte-identical for
   any --jobs.

     dune exec bin/ccr_fleet.exe -- --hosts 3 --balancers round-robin,hash
     dune exec bin/ccr_fleet.exe -- --failures crash-wave --retry naive,budgeted
     dune exec bin/ccr_fleet.exe -- --retry budgeted --hedge-pct 95 \
       --breaker on --brownout on --check --json fleet.json *)

open Cmdliner
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Loadgen = Service.Loadgen
module Squeue = Service.Squeue
module Histogram = Stats.Histogram
module Balancer = Fleet.Balancer
module Failplan = Fleet.Failplan
module Health = Fleet.Health
module Retry = Fleet.Retry
module Host = Fleet.Host

let mode_of_string = function
  | "baseline" -> Ok Runtime.Baseline
  | "paint+sync" | "paint-sync" | "paint" -> Ok (Runtime.Safe Revoker.Paint_sync)
  | "cherivoke" -> Ok (Runtime.Safe Revoker.Cherivoke)
  | "cornucopia" -> Ok (Runtime.Safe Revoker.Cornucopia)
  | "reloaded" -> Ok (Runtime.Safe Revoker.Reloaded)
  | "cheriot" -> Ok (Runtime.Safe Revoker.Cheriot_filter)
  | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))

let list_conv ~what of_string to_string =
  let parse s =
    let parts = String.split_on_char ',' (String.trim s) in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: tl -> (
          match of_string (String.trim p) with
          | Ok v -> go (v :: acc) tl
          | Error e -> Error e)
    in
    go [] parts
  in
  let print fmt l =
    Format.pp_print_string fmt (String.concat "," (List.map to_string l))
  in
  Arg.conv ~docv:what (parse, print)

let modes_conv = list_conv ~what:"MODES" mode_of_string Runtime.mode_name

let balancers_conv =
  list_conv ~what:"BALANCERS"
    (fun s ->
      match Balancer.strategy_of_name s with
      | Some b -> Ok b
      | None -> Error (`Msg (Printf.sprintf "unknown balancer %S" s)))
    Balancer.strategy_name

let failures_conv =
  list_conv ~what:"SCHEDULES"
    (fun s ->
      match Failplan.kind_of_name s with
      | Some k -> Ok k
      | None -> Error (`Msg (Printf.sprintf "unknown failure schedule %S" s)))
    Failplan.kind_name

let ints_conv =
  list_conv ~what:"HOSTS"
    (fun s ->
      match int_of_string_opt s with
      | Some i -> Ok i
      | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s)))
    string_of_int

let strings_conv =
  list_conv ~what:"NAMES" (fun s -> Ok s) Fun.id

(* Same mean-rate convention as ccr_serve: the qps axis sets the mean of
   whichever pattern is in play, so points stay comparable. *)
let pattern_at ~pattern ~qps =
  match pattern with
  | "poisson" -> Loadgen.Poisson qps
  | "bursty" ->
      Loadgen.Bursty
        { base = 0.5 *. qps; peak = 2.5 *. qps; period_us = 2_000.0; duty = 0.25 }
  | "ramp" -> Loadgen.Ramp { from_rate = 0.5 *. qps; to_rate = 1.5 *. qps }
  | _ ->
      Loadgen.Diurnal { low = 0.5 *. qps; high = 1.5 *. qps; period_us = 4_000.0 }

(* CLI-level validation to the Pool.validate_jobs standard: a clear
   one-line ccr_fleet-prefixed message and exit 1, never an exception
   trace. *)
exception Cli_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Cli_error s)) fmt

(* the resilience knobs, bundled so the main term stays readable *)
type res_cli = {
  c_retries : string list;
  c_rmax : int option;
  c_base_us : float option;
  c_cap_us : float option;
  c_ratio : float option;
  c_burst : int option;
  c_hedge_pct : float option;
  c_hedge_min_us : float;
  c_breaker : bool;
  c_bfail : int;
  c_bcool_us : float;
  c_brownout : bool;
  c_benter : int;
  c_bexit : int;
  c_rto_us : float;
  c_rounds : int;
}

let retry_names = "none, naive, budgeted"

let policy_of rc name =
  match Retry.policy_of_name name with
  | None -> err "unknown retry policy %S (expected one of: %s)" name retry_names
  | Some Retry.No_retry -> Retry.No_retry
  | Some (Retry.Naive d) ->
      Retry.Naive
        {
          max_attempts = Option.value rc.c_rmax ~default:d.max_attempts;
          delay_us = Option.value rc.c_base_us ~default:d.delay_us;
        }
  | Some (Retry.Budgeted b) ->
      Retry.Budgeted
        {
          max_attempts = Option.value rc.c_rmax ~default:b.max_attempts;
          base_us = Option.value rc.c_base_us ~default:b.base_us;
          cap_us = Option.value rc.c_cap_us ~default:b.cap_us;
          ratio = Option.value rc.c_ratio ~default:b.ratio;
          burst = Option.value rc.c_burst ~default:b.burst;
        }

let resilience_of rc name =
  let retry = policy_of rc name in
  (try Retry.validate retry with Invalid_argument m -> err "%s" m);
  let hedge =
    Option.map
      (fun p -> { Retry.h_pct = p; h_min_us = rc.c_hedge_min_us })
      rc.c_hedge_pct
  in
  (try Option.iter Retry.validate_hedge hedge
   with Invalid_argument m -> err "%s" m);
  let breaker =
    if not rc.c_breaker then None
    else if rc.c_bfail < 1 then err "--breaker-failures must be at least 1"
    else if rc.c_bcool_us <= 0.0 then err "--breaker-cooloff-us must be positive"
    else
      Some
        {
          Health.default_config with
          failure_threshold = rc.c_bfail;
          cooloff_us = rc.c_bcool_us;
        }
  in
  let brownout =
    if not rc.c_brownout then None
    else if rc.c_bexit < 0 || rc.c_benter <= rc.c_bexit then
      err "--brownout band must satisfy 0 <= exit < enter (got %d, %d)"
        rc.c_bexit rc.c_benter
    else
      Some
        {
          Squeue.default_brownout with
          b_enter = rc.c_benter;
          b_exit = rc.c_bexit;
        }
  in
  if rc.c_rto_us <= 0.0 then err "--rto-us must be positive";
  if rc.c_rounds < 1 then err "--max-rounds must be at least 1";
  {
    Fleet.retry;
    hedge;
    breaker;
    brownout;
    rto_us = rc.c_rto_us;
    max_rounds = rc.c_rounds;
  }

type row = {
  r_cfg : Fleet.config;
  r_retry : string;
  r_outcome : Fleet.outcome;
  r_duration_ms : float;
}

let pct hist p =
  if Histogram.count hist = 0 then 0.0 else Histogram.percentile hist p

let json_of_row ~pattern ~jobs r =
  let cfg = r.r_cfg and o = r.r_outcome in
  let res = cfg.Fleet.resilience in
  let curve =
    String.concat ", "
      (Array.to_list
         (Array.map
            (fun h -> Printf.sprintf "%.3f" (pct h 99.9))
            o.Fleet.slice_hists))
  in
  let hosts =
    String.concat ", "
      (List.map
         (fun h ->
           Printf.sprintf
             "{\"host\": %d, \"arrivals\": %d, \"served\": %d, \"shed\": %d, \
              \"lost\": %d, \"violations\": %d, \"epochs\": %d, \
              \"stw_pause_us\": %.3f, \"max_pause_us\": %.3f, \
              \"epoch_resumes\": %d, \"sweep_crash_retries\": %d, \
              \"chaos_injected\": %d, \"brownout_shifts\": %d}"
             h.Host.h_host h.Host.h_arrivals h.Host.h_served
             (h.Host.h_shed_depth + h.Host.h_shed_deadline
            + h.Host.h_shed_brownout)
             h.Host.h_lost h.Host.h_violations h.Host.h_epochs
             h.Host.h_stw_pause_us h.Host.h_max_pause_us h.Host.h_epoch_resumes
             h.Host.h_sweep_crash_retries h.Host.h_chaos_injected
             h.Host.h_brownout_shifts)
         o.Fleet.hosts)
  in
  Printf.sprintf
    "{\"workload\": \"fleet\", \"topology\": \"%s\", \"host_count\": %d, \
     \"balancer\": \"%s\", \"tenants\": 1, \"overcommit\": \"none\", \
     \"failures\": \"%s\", \"retry\": \"%s\", \
     \"hedge\": %b, \"breaker\": %b, \"brownout\": %b, \"rto_us\": %.1f, \
     \"max_rounds\": %d, \"mode\": \"%s\", \"governor\": %b, \"pattern\": \
     \"%s\", \"qps\": %.1f, \"requests\": %d, \"users\": %d, \
     \"servers_per_host\": %d, \"seed\": %d, \"target_p99_us\": %.1f, \
     \"p50_us\": %.3f, \"p99_us\": %.3f, \"p999_us\": %.3f, \"p999_curve\": \
     [%s], \"offered\": %d, \"served\": %d, \"retried_ok\": %d, \
     \"hedged_ok\": %d, \"shed_depth\": %d, \"shed_deadline\": %d, \
     \"shed_brownout\": %d, \"lost\": %d, \"redistributed\": %d, \
     \"lb_dropped\": %d, \"violations\": %d, \"goodput_rps\": %.1f, \
     \"attempts\": %d, \"retries_sent\": %d, \"hedges_sent\": %d, \
     \"dup_served\": %d, \"budget_exhausted\": %d, \"breaker_trips\": %d, \
     \"brownout_shifts\": %d, \"rounds\": %d, \"epochs\": %d, \
     \"epoch_resumes\": %d, \"sweep_crash_retries\": %d, \"chaos_injected\": \
     %d, \"max_pause_us\": %.3f, \"hosts\": [%s], \"duration_ms\": %.3f, \
     \"jobs\": %d}"
    (Fleet.topology cfg) cfg.Fleet.hosts
    (Balancer.strategy_name cfg.Fleet.balancer)
    (Failplan.kind_name cfg.Fleet.failures)
    r.r_retry
    (res.Fleet.hedge <> None)
    (res.Fleet.breaker <> None)
    (res.Fleet.brownout <> None)
    res.Fleet.rto_us res.Fleet.max_rounds
    (Runtime.mode_name cfg.Fleet.mode)
    cfg.Fleet.governed pattern
    (match cfg.Fleet.pattern with
    | Loadgen.Poisson q -> q
    | Loadgen.Bursty { base; peak; duty; _ } ->
        (duty *. peak) +. ((1.0 -. duty) *. base)
    | Loadgen.Ramp { from_rate; to_rate } -> 0.5 *. (from_rate +. to_rate)
    | Loadgen.Diurnal { low; high; _ } -> 0.5 *. (low +. high))
    cfg.Fleet.requests cfg.Fleet.users cfg.Fleet.servers_per_host cfg.Fleet.seed
    cfg.Fleet.target_p99_us
    (pct o.Fleet.hist 50.0)
    (pct o.Fleet.hist 99.0)
    (pct o.Fleet.hist 99.9)
    curve o.Fleet.offered o.Fleet.served o.Fleet.retried_ok o.Fleet.hedged_ok
    o.Fleet.shed_depth o.Fleet.shed_deadline o.Fleet.shed_brownout o.Fleet.lost
    o.Fleet.redistributed o.Fleet.lb_dropped o.Fleet.violations
    o.Fleet.goodput_rps o.Fleet.attempts o.Fleet.retries_sent
    o.Fleet.hedges_sent o.Fleet.dup_served o.Fleet.budget_exhausted
    o.Fleet.breaker_trips o.Fleet.brownout_shifts o.Fleet.rounds o.Fleet.epochs
    o.Fleet.epoch_resumes o.Fleet.sweep_crash_retries o.Fleet.chaos_injected
    o.Fleet.max_pause_us hosts r.r_duration_ms jobs

let fleet hostss balancers failuress modes qps requests users governed
    servers_per_host queue_depth deadline target_p99 pattern slices critical
    background rescli seed json check jobs =
  try
    let jobs =
      match Parallel.Pool.validate_jobs jobs with
      | Error msg -> err "%s" msg
      | Ok jobs -> jobs
    in
    if requests < 1 then err "--requests must be at least 1 (got %d)" requests;
    List.iter
      (fun h -> if h < 1 then err "every --hosts count must be at least 1 (got %d)" h)
      hostss;
    if qps <= 0.0 then err "--qps must be positive";
    if users < 1 then err "--users must be at least 1";
    if servers_per_host < 1 then err "--servers-per-host must be at least 1";
    if queue_depth < 1 then err "--queue-depth must be at least 1";
    if target_p99 <= 0.0 then err "--target-p99-us must be positive";
    if slices < 1 then err "--slices must be at least 1";
    Option.iter
      (fun d -> if d <= 0.0 then err "--deadline-us must be positive")
      deadline;
    if critical < 0.0 || background < 0.0 || critical +. background > 1.0 then
      err "--critical and --background must be nonnegative and sum to at most 1";
    if rescli.c_retries = [] then err "--retry needs at least one policy";
    let resiliences =
      List.map (fun name -> (name, resilience_of rescli name)) rescli.c_retries
    in
    let mk hosts balancer failures mode resilience =
      {
        Fleet.default_config with
        hosts;
        balancer;
        failures;
        mode;
        governed;
        pattern = pattern_at ~pattern ~qps;
        requests;
        users;
        critical;
        background;
        servers_per_host;
        queue_depth;
        deadline_us = deadline;
        target_p99_us = target_p99;
        slices;
        resilience;
        seed;
      }
    in
    (* Sweep points run sequentially — the parallelism budget goes to
       the hosts inside each fleet, which Fleet.run fans out over
       --jobs domains. *)
    let rows =
      List.concat_map
        (fun hosts ->
          List.concat_map
            (fun balancer ->
              List.concat_map
                (fun failures ->
                  List.concat_map
                    (fun mode ->
                      List.map
                        (fun (rname, resilience) ->
                          let cfg = mk hosts balancer failures mode resilience in
                          let t0 = Unix.gettimeofday () in
                          let o = Fleet.run ~check ~jobs cfg in
                          {
                            r_cfg = cfg;
                            r_retry = rname;
                            r_outcome = o;
                            r_duration_ms =
                              (Unix.gettimeofday () -. t0) *. 1000.0;
                          })
                        resiliences)
                    modes)
                failuress)
            balancers)
        hostss
    in
    List.iter
      (fun r ->
        if r.r_outcome.Fleet.report <> "" then
          Format.eprintf "%s" r.r_outcome.Fleet.report)
      rows;
    Format.printf
      "%-8s %-12s %-10s %-12s %-8s %8s %9s %10s %5s %5s %5s %5s %5s %5s@."
      "topology" "balancer" "failures" "mode" "retry" "p50us" "p99.9us"
      "goodput/s" "r_ok" "h_ok" "lost" "drop" "trips" "rnds";
    List.iter
      (fun r ->
        let cfg = r.r_cfg and o = r.r_outcome in
        Format.printf
          "%-8s %-12s %-10s %-12s %-8s %8.1f %9.1f %10.0f %5d %5d %5d %5d \
           %5d %5d@."
          (Fleet.topology cfg)
          (Balancer.strategy_name cfg.Fleet.balancer)
          (Failplan.kind_name cfg.Fleet.failures)
          (Runtime.mode_name cfg.Fleet.mode)
          r.r_retry
          (pct o.Fleet.hist 50.0)
          (pct o.Fleet.hist 99.9)
          o.Fleet.goodput_rps o.Fleet.retried_ok o.Fleet.hedged_ok
          o.Fleet.lost o.Fleet.lb_dropped o.Fleet.breaker_trips
          o.Fleet.rounds)
      rows;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc "[\n";
        List.iteri
          (fun i r ->
            if i > 0 then output_string oc ",\n";
            output_string oc "  ";
            output_string oc (json_of_row ~pattern ~jobs r))
          rows;
        output_string oc "\n]\n";
        close_out oc;
        Format.printf "wrote %d records to %s@." (List.length rows) path);
    if check then
      if List.for_all (fun r -> r.r_outcome.Fleet.clean) rows then begin
        Format.printf
          "check: ok (%d fleets, zero findings, accounting exact)@."
          (List.length rows);
        0
      end
      else begin
        Format.eprintf "check: FAILED@.";
        1
      end
    else 0
  with Cli_error msg ->
    Format.eprintf "ccr_fleet: %s@." msg;
    1

let balancer_names =
  String.concat ", " (List.map Balancer.strategy_name Balancer.all_strategies)

let failure_names =
  String.concat ", " (List.map Failplan.kind_name Failplan.all_kinds)

let main =
  let hosts =
    Arg.(
      value & opt ints_conv [ 3 ]
      & info [ "hosts" ]
          ~doc:
            "Comma-separated fleet sizes to sweep. Every size is a flat \
             topology: $(docv) equivalent hosts behind one balancer.")
  in
  let balancers =
    Arg.(
      value
      & opt balancers_conv [ Balancer.Round_robin; Balancer.Consistent_hash ]
      & info [ "balancers"; "b" ]
          ~doc:
            (Printf.sprintf "Comma-separated balancing strategies: %s."
               balancer_names))
  in
  let failures =
    Arg.(
      value & opt failures_conv [ Failplan.Rolling ]
      & info [ "failures"; "f" ]
          ~doc:
            (Printf.sprintf "Comma-separated failure schedules: %s."
               failure_names))
  in
  let modes =
    Arg.(
      value
      & opt modes_conv
          [ Runtime.Safe Revoker.Cornucopia; Runtime.Safe Revoker.Reloaded ]
      & info [ "modes"; "m" ]
          ~doc:"Comma-separated temporal-safety modes (as in ccr_serve).")
  in
  let qps =
    Arg.(
      value & opt float 120_000.0
      & info [ "qps" ]
          ~doc:
            "Fleet-wide mean offered load, requests/second, split across \
             hosts by the balancer.")
  in
  let requests =
    Arg.(
      value & opt int 6_000
      & info [ "requests"; "n" ] ~doc:"Requests in the fleet-wide trace.")
  in
  let users =
    Arg.(
      value & opt int 1_000_000
      & info [ "users" ]
          ~doc:
            "Simulated user population the trace samples from (the \
             consistent-hash balancer shards on user id).")
  in
  let governor =
    Arg.(
      value
      & opt (enum [ ("on", true); ("off", false) ]) true
      & info [ "governor"; "g" ]
          ~doc:"Per-host SLO governor: $(b,on) or $(b,off).")
  in
  let servers =
    Arg.(
      value & opt int 2
      & info [ "servers-per-host" ] ~doc:"Server worker threads per host.")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~doc:"Per-host admission-control queue bound.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-us" ]
          ~doc:
            "Base queueing deadline in µs, stretched per class: critical \
             1x, normal 4x, background exempt. Off by default.")
  in
  let target =
    Arg.(
      value & opt float 1_000.0
      & info [ "target-p99-us" ] ~doc:"SLO target fed to every host governor.")
  in
  let pattern =
    Arg.(
      value
      & opt
          (enum
             [
               ("poisson", "poisson");
               ("bursty", "bursty");
               ("ramp", "ramp");
               ("diurnal", "diurnal");
             ])
          "diurnal"
      & info [ "pattern" ]
          ~doc:
            "Arrival pattern of the fleet-wide trace: $(b,poisson), \
             $(b,bursty), $(b,ramp) or $(b,diurnal) (default — a \
             compressed day/night cycle). The qps axis is the mean rate.")
  in
  let slices =
    Arg.(
      value & opt int 12
      & info [ "slices" ]
          ~doc:
            "Time slices for the latency-over-time record (the p999_curve \
             field): each served request is also bucketed by its intended \
             arrival's slice of the trace horizon.")
  in
  let critical =
    Arg.(
      value & opt float 0.15
      & info [ "critical" ]
          ~doc:"Fraction of requests in the critical priority class.")
  in
  let background =
    Arg.(
      value & opt float 0.25
      & info [ "background" ]
          ~doc:
            "Fraction of requests in the background class (shed first under \
             brownout, exempt from deadlines).")
  in
  let retries =
    Arg.(
      value
      & opt strings_conv [ "none" ]
      & info [ "retry" ]
          ~doc:
            (Printf.sprintf
               "Comma-separated client retry policies to sweep: %s. \
                $(b,naive) resends on a fixed short delay with no budget \
                (the classic retry storm); $(b,budgeted) uses capped \
                exponential backoff with decorrelated jitter spent from a \
                per-class token bucket refilled only by successes."
               retry_names))
  in
  let retry_max =
    Arg.(
      value
      & opt (some int) None
      & info [ "retry-max" ]
          ~doc:"Attempt cap per request including the original send (2-16).")
  in
  let retry_base =
    Arg.(
      value
      & opt (some float) None
      & info [ "retry-base-us" ]
          ~doc:
            "First backoff window in µs (budgeted), or the fixed resend \
             delay (naive).")
  in
  let retry_cap =
    Arg.(
      value
      & opt (some float) None
      & info [ "retry-cap-us" ] ~doc:"Backoff ceiling in µs (budgeted).")
  in
  let retry_ratio =
    Arg.(
      value
      & opt (some float) None
      & info [ "retry-ratio" ]
          ~doc:"Budget tokens refunded per success, in [0, 1] (budgeted).")
  in
  let retry_burst =
    Arg.(
      value
      & opt (some int) None
      & info [ "retry-burst" ]
          ~doc:"Per-class retry budget capacity and initial fill (budgeted).")
  in
  let hedge_pct =
    Arg.(
      value
      & opt (some float) None
      & info [ "hedge-pct" ]
          ~doc:
            "Enable tail hedging: duplicate a request toward a different \
             host once its original send has been silent longer than this \
             percentile of observed latencies (50-99.9). Off by default.")
  in
  let hedge_min =
    Arg.(
      value & opt float 200.0
      & info [ "hedge-min-us" ] ~doc:"Floor on the hedge delay, µs.")
  in
  let breaker =
    Arg.(
      value
      & opt (enum [ ("on", true); ("off", false) ]) false
      & info [ "breaker" ]
          ~doc:
            "Per-host half-open circuit breakers on the client side: \
             $(b,on) or $(b,off).")
  in
  let breaker_failures =
    Arg.(
      value & opt int 5
      & info [ "breaker-failures" ]
          ~doc:"Consecutive failures that trip a breaker open.")
  in
  let breaker_cooloff =
    Arg.(
      value & opt float 5_000.0
      & info [ "breaker-cooloff-us" ]
          ~doc:
            "Open duration in µs before a breaker half-opens (doubles per \
             consecutive reopen).")
  in
  let brownout =
    Arg.(
      value
      & opt (enum [ ("on", true); ("off", false) ]) false
      & info [ "brownout" ]
          ~doc:
            "Per-host brownout degradation: under queue pressure shed \
             background-class requests first and defer revocation harder. \
             $(b,on) or $(b,off).")
  in
  let brownout_enter =
    Arg.(
      value & opt int 48
      & info [ "brownout-enter" ]
          ~doc:"Queue depth that engages the brownout band.")
  in
  let brownout_exit =
    Arg.(
      value & opt int 12
      & info [ "brownout-exit" ]
          ~doc:"Queue depth that disengages the brownout band (< enter).")
  in
  let rto =
    Arg.(
      value & opt float 2_000.0
      & info [ "rto-us" ]
          ~doc:
            "Client retransmission timeout in µs — how long a lost \
             (crash-destroyed) request stays silent before the client \
             acts on it.")
  in
  let max_rounds =
    Arg.(
      value & opt int 6
      & info [ "max-rounds" ]
          ~doc:
            "Re-planning rounds before the client gives up on further \
             retries.")
  in
  let rescli =
    Term.(
      const (fun c_retries c_rmax c_base_us c_cap_us c_ratio c_burst
                 c_hedge_pct c_hedge_min_us c_breaker c_bfail c_bcool_us
                 c_brownout c_benter c_bexit c_rto_us c_rounds ->
          {
            c_retries;
            c_rmax;
            c_base_us;
            c_cap_us;
            c_ratio;
            c_burst;
            c_hedge_pct;
            c_hedge_min_us;
            c_breaker;
            c_bfail;
            c_bcool_us;
            c_brownout;
            c_benter;
            c_bexit;
            c_rto_us;
            c_rounds;
          })
      $ retries $ retry_max $ retry_base $ retry_cap $ retry_ratio
      $ retry_burst $ hedge_pct $ hedge_min $ breaker $ breaker_failures
      $ breaker_cooloff $ brownout $ brownout_enter $ brownout_exit $ rto
      $ max_rounds)
  in
  let seed =
    Arg.(
      value & opt int 11
      & info [ "seed" ] ~doc:"Deterministic simulation seed.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ]
          ~doc:"Write one JSON record per sweep point to $(docv)."
          ~docv:"PATH")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Attach the protocol sanitizer and race detector to every host \
             and verify exact fleet accounting (served + retried_ok + \
             hedged_ok + shed + lost + lb_dropped = offered, per-host and \
             fleet-wide). Exit nonzero on any finding.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Parallel.Pool.default_jobs ())
      & info [ "jobs"; "j" ]
          ~doc:
            "Simulate up to $(docv) hosts concurrently on separate domains. \
             Hosts are independent seeded machines and outcomes are \
             reassembled in host order, so all output except the host \
             wall-clock $(b,duration_ms) field is identical for any \
             $(docv)." ~docv:"N")
  in
  Cmd.v
    (Cmd.info "ccr_fleet" ~version:"1.0"
       ~doc:
         "Sweep the multi-host serving simulator over topology, load \
          balancer, failure schedule and client retry policy."
       ~man:
         [
           `S Manpage.s_description;
           `P
             (Printf.sprintf
                "Balancers: %s. Topologies: flat/N (every host equivalent \
                 behind one balancer; N from --hosts). Failure schedules: \
                 %s — none injects nothing; rolling restarts each host \
                 once, one at a time, staggered so at most one host is \
                 down; crash-wave takes out roughly half the fleet (never \
                 all of it) in one seeded correlated burst."
                balancer_names failure_names);
           `P
             "Each sweep point simulates one fleet: a seeded open-loop \
              trace (sampled from --users simulated users) is dispatched \
              by the balancer against the planned failure windows, and \
              every host runs its shard as a self-contained simulated \
              machine — allocator, revoker, SLO governor and all. A host \
              that crashes loses what it had admitted: queued requests \
              drain as lost, an in-service response that straddles the \
              crash is destroyed, and the client only finds out via its \
              retransmission timeout. The host recovers by resuming its \
              checkpointed revocation epoch.";
           `P
             "The client stack is deterministic too: retries (--retry), \
              tail hedging (--hedge-pct), per-host circuit breakers \
              (--breaker) and brownout degradation (--brownout) are \
              re-planned in seeded rounds until the attempt set reaches a \
              fixed point, so every run is exactly reproducible and \
              byte-identical at any --jobs. The end-to-end histogram \
              charges every answer to the request's original intended \
              arrival — retries never reset the clock.";
           `P
             "With $(b,--jobs) N the hosts of each fleet fan out across N \
              domains. Hosts share nothing, so every simulated quantity is \
              identical for any N; only the $(b,duration_ms) field \
              varies. CI enforces this by diffing normalised --jobs 1 and \
              --jobs 4 output of the same sweep.";
         ])
    Term.(
      const fleet $ hosts $ balancers $ failures $ modes $ qps $ requests
      $ users $ governor $ servers $ queue_depth $ deadline $ target $ pattern
      $ slices $ critical $ background $ rescli $ seed $ json $ check $ jobs)

let () = exit (Cmd.eval' main)
