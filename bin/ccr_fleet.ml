(* ccr_fleet: sweep the multi-host serving simulator over topology ×
   balancer × failure schedule and report fleet-wide goodput, tail
   latency, and per-host revocation-pause attribution. Each sweep point
   is one deterministic fleet (N independent simulated machines behind a
   load balancer); hosts within a point fan out across --jobs domains
   and the simulated output is byte-identical for any --jobs.

     dune exec bin/ccr_fleet.exe -- --hosts 3 --balancers round-robin,hash
     dune exec bin/ccr_fleet.exe -- --failures rolling --check --json fleet.json
     dune exec bin/ccr_fleet.exe -- --hosts 1,3,5 --balancers least-loaded *)

open Cmdliner
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Loadgen = Service.Loadgen
module Histogram = Stats.Histogram
module Balancer = Fleet.Balancer
module Failplan = Fleet.Failplan
module Host = Fleet.Host

let mode_of_string = function
  | "baseline" -> Ok Runtime.Baseline
  | "paint+sync" | "paint-sync" | "paint" -> Ok (Runtime.Safe Revoker.Paint_sync)
  | "cherivoke" -> Ok (Runtime.Safe Revoker.Cherivoke)
  | "cornucopia" -> Ok (Runtime.Safe Revoker.Cornucopia)
  | "reloaded" -> Ok (Runtime.Safe Revoker.Reloaded)
  | "cheriot" -> Ok (Runtime.Safe Revoker.Cheriot_filter)
  | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))

let list_conv ~what of_string to_string =
  let parse s =
    let parts = String.split_on_char ',' (String.trim s) in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: tl -> (
          match of_string (String.trim p) with
          | Ok v -> go (v :: acc) tl
          | Error e -> Error e)
    in
    go [] parts
  in
  let print fmt l =
    Format.pp_print_string fmt (String.concat "," (List.map to_string l))
  in
  Arg.conv ~docv:what (parse, print)

let modes_conv = list_conv ~what:"MODES" mode_of_string Runtime.mode_name

let balancers_conv =
  list_conv ~what:"BALANCERS"
    (fun s ->
      match Balancer.strategy_of_name s with
      | Some b -> Ok b
      | None -> Error (`Msg (Printf.sprintf "unknown balancer %S" s)))
    Balancer.strategy_name

let failures_conv =
  list_conv ~what:"SCHEDULES"
    (fun s ->
      match Failplan.kind_of_name s with
      | Some k -> Ok k
      | None -> Error (`Msg (Printf.sprintf "unknown failure schedule %S" s)))
    Failplan.kind_name

let ints_conv =
  list_conv ~what:"HOSTS"
    (fun s ->
      match int_of_string_opt s with
      | Some i -> Ok i
      | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s)))
    string_of_int

(* Same mean-rate convention as ccr_serve: the qps axis sets the mean of
   whichever pattern is in play, so points stay comparable. *)
let pattern_at ~pattern ~qps =
  match pattern with
  | "poisson" -> Loadgen.Poisson qps
  | "bursty" ->
      Loadgen.Bursty
        { base = 0.5 *. qps; peak = 2.5 *. qps; period_us = 2_000.0; duty = 0.25 }
  | "ramp" -> Loadgen.Ramp { from_rate = 0.5 *. qps; to_rate = 1.5 *. qps }
  | _ ->
      Loadgen.Diurnal { low = 0.5 *. qps; high = 1.5 *. qps; period_us = 4_000.0 }

type row = {
  r_cfg : Fleet.config;
  r_outcome : Fleet.outcome;
  r_duration_ms : float;
}

let pct hist p = if Histogram.count hist = 0 then 0.0 else Histogram.percentile hist p

let json_of_row ~pattern ~jobs r =
  let cfg = r.r_cfg and o = r.r_outcome in
  let curve =
    String.concat ", "
      (Array.to_list (Array.map (fun h -> Printf.sprintf "%.3f" (pct h 99.9)) o.Fleet.slice_hists))
  in
  let hosts =
    String.concat ", "
      (List.map
         (fun h ->
           Printf.sprintf
             "{\"host\": %d, \"arrivals\": %d, \"served\": %d, \"shed\": %d, \
              \"violations\": %d, \"epochs\": %d, \"stw_pause_us\": %.3f, \
              \"max_pause_us\": %.3f, \"epoch_resumes\": %d, \
              \"sweep_crash_retries\": %d, \"chaos_injected\": %d}"
             h.Host.h_host h.Host.h_arrivals h.Host.h_served
             (h.Host.h_shed_depth + h.Host.h_shed_deadline)
             h.Host.h_violations h.Host.h_epochs h.Host.h_stw_pause_us
             h.Host.h_max_pause_us h.Host.h_epoch_resumes
             h.Host.h_sweep_crash_retries h.Host.h_chaos_injected)
         o.Fleet.hosts)
  in
  Printf.sprintf
    "{\"workload\": \"fleet\", \"topology\": \"%s\", \"host_count\": %d, \
     \"balancer\": \"%s\", \"failures\": \"%s\", \"mode\": \"%s\", \
     \"governor\": %b, \"pattern\": \"%s\", \"qps\": %.1f, \"requests\": %d, \
     \"users\": %d, \"servers_per_host\": %d, \"seed\": %d, \
     \"target_p99_us\": %.1f, \"p50_us\": %.3f, \"p99_us\": %.3f, \
     \"p999_us\": %.3f, \"p999_curve\": [%s], \"offered\": %d, \"served\": \
     %d, \"shed_depth\": %d, \"shed_deadline\": %d, \"redistributed\": %d, \
     \"lb_dropped\": %d, \"violations\": %d, \"goodput_rps\": %.1f, \
     \"epochs\": %d, \"epoch_resumes\": %d, \"sweep_crash_retries\": %d, \
     \"chaos_injected\": %d, \"max_pause_us\": %.3f, \"hosts\": [%s], \
     \"duration_ms\": %.3f, \"jobs\": %d}"
    (Fleet.topology cfg) cfg.Fleet.hosts
    (Balancer.strategy_name cfg.Fleet.balancer)
    (Failplan.kind_name cfg.Fleet.failures)
    (Runtime.mode_name cfg.Fleet.mode)
    cfg.Fleet.governed pattern
    (match cfg.Fleet.pattern with
    | Loadgen.Poisson q -> q
    | Loadgen.Bursty { base; peak; duty; _ } ->
        (duty *. peak) +. ((1.0 -. duty) *. base)
    | Loadgen.Ramp { from_rate; to_rate } -> 0.5 *. (from_rate +. to_rate)
    | Loadgen.Diurnal { low; high; _ } -> 0.5 *. (low +. high))
    cfg.Fleet.requests cfg.Fleet.users
    cfg.Fleet.servers_per_host cfg.Fleet.seed
    cfg.Fleet.target_p99_us
    (pct o.Fleet.hist 50.0)
    (pct o.Fleet.hist 99.0)
    (pct o.Fleet.hist 99.9)
    curve o.Fleet.offered o.Fleet.served o.Fleet.shed_depth
    o.Fleet.shed_deadline o.Fleet.redistributed
    o.Fleet.lb_dropped o.Fleet.violations
    o.Fleet.goodput_rps o.Fleet.epochs
    o.Fleet.epoch_resumes o.Fleet.sweep_crash_retries
    o.Fleet.chaos_injected o.Fleet.max_pause_us hosts
    r.r_duration_ms jobs

let fleet hostss balancers failuress modes qps requests users governed
    servers_per_host queue_depth target_p99 pattern slices seed json check
    jobs =
  match Parallel.Pool.validate_jobs jobs with
  | Error msg ->
      Format.eprintf "ccr_fleet: %s@." msg;
      1
  | Ok jobs ->
      if requests < 1 then begin
        Format.eprintf "ccr_fleet: --requests must be at least 1 (got %d)@."
          requests;
        1
      end
      else if List.exists (fun h -> h < 1) hostss then begin
        Format.eprintf "ccr_fleet: every --hosts count must be at least 1@.";
        1
      end
      else if qps <= 0.0 then begin
        Format.eprintf "ccr_fleet: --qps must be positive@.";
        1
      end
      else begin
        let mk hosts balancer failures mode =
          {
            Fleet.default_config with
            hosts;
            balancer;
            failures;
            mode;
            governed;
            pattern = pattern_at ~pattern ~qps;
            requests;
            users;
            servers_per_host;
            queue_depth;
            target_p99_us = target_p99;
            slices;
            seed;
          }
        in
        (* Sweep points run sequentially — the parallelism budget goes to
           the hosts inside each fleet, which Fleet.run fans out over
           --jobs domains. *)
        let rows =
          List.concat_map
            (fun hosts ->
              List.concat_map
                (fun balancer ->
                  List.concat_map
                    (fun failures ->
                      List.map
                        (fun mode ->
                          let cfg = mk hosts balancer failures mode in
                          let t0 = Unix.gettimeofday () in
                          let o = Fleet.run ~check ~jobs cfg in
                          {
                            r_cfg = cfg;
                            r_outcome = o;
                            r_duration_ms =
                              (Unix.gettimeofday () -. t0) *. 1000.0;
                          })
                        modes)
                    failuress)
                balancers)
            hostss
        in
        List.iter
          (fun r ->
            if r.r_outcome.Fleet.report <> "" then
              Format.eprintf "%s" r.r_outcome.Fleet.report)
          rows;
        Format.printf "%-8s %-12s %-10s %-12s %8s %9s %9s %10s %7s %6s %7s@."
          "topology" "balancer" "failures" "mode" "p50us" "p99us" "p99.9us"
          "goodput/s" "redist" "drop" "resumes";
        List.iter
          (fun r ->
            let cfg = r.r_cfg and o = r.r_outcome in
            Format.printf
              "%-8s %-12s %-10s %-12s %8.1f %9.1f %9.1f %10.0f %7d %6d %7d@."
              (Fleet.topology cfg)
              (Balancer.strategy_name cfg.Fleet.balancer)
              (Failplan.kind_name cfg.Fleet.failures)
              (Runtime.mode_name cfg.Fleet.mode)
              (pct o.Fleet.hist 50.0)
              (pct o.Fleet.hist 99.0)
              (pct o.Fleet.hist 99.9)
              o.Fleet.goodput_rps o.Fleet.redistributed
              o.Fleet.lb_dropped o.Fleet.epoch_resumes)
          rows;
        (match json with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc "[\n";
            List.iteri
              (fun i r ->
                if i > 0 then output_string oc ",\n";
                output_string oc "  ";
                output_string oc (json_of_row ~pattern ~jobs r))
              rows;
            output_string oc "\n]\n";
            close_out oc;
            Format.printf "wrote %d records to %s@." (List.length rows) path);
        if check then
          if List.for_all (fun r -> r.r_outcome.Fleet.clean) rows then begin
            Format.printf
              "check: ok (%d fleets, zero findings, accounting exact)@."
              (List.length rows);
            0
          end
          else begin
            Format.eprintf "check: FAILED@.";
            1
          end
        else 0
      end

let balancer_names =
  String.concat ", " (List.map Balancer.strategy_name Balancer.all_strategies)

let failure_names =
  String.concat ", " (List.map Failplan.kind_name Failplan.all_kinds)

let main =
  let hosts =
    Arg.(
      value & opt ints_conv [ 3 ]
      & info [ "hosts" ]
          ~doc:
            "Comma-separated fleet sizes to sweep. Every size is a flat \
             topology: $(docv) equivalent hosts behind one balancer.")
  in
  let balancers =
    Arg.(
      value
      & opt balancers_conv [ Balancer.Round_robin; Balancer.Consistent_hash ]
      & info [ "balancers"; "b" ]
          ~doc:
            (Printf.sprintf "Comma-separated balancing strategies: %s."
               balancer_names))
  in
  let failures =
    Arg.(
      value & opt failures_conv [ Failplan.Rolling ]
      & info [ "failures"; "f" ]
          ~doc:
            (Printf.sprintf "Comma-separated failure schedules: %s."
               failure_names))
  in
  let modes =
    Arg.(
      value
      & opt modes_conv
          [ Runtime.Safe Revoker.Cornucopia; Runtime.Safe Revoker.Reloaded ]
      & info [ "modes"; "m" ]
          ~doc:"Comma-separated temporal-safety modes (as in ccr_serve).")
  in
  let qps =
    Arg.(
      value & opt float 120_000.0
      & info [ "qps" ]
          ~doc:
            "Fleet-wide mean offered load, requests/second, split across \
             hosts by the balancer.")
  in
  let requests =
    Arg.(
      value & opt int 6_000
      & info [ "requests"; "n" ] ~doc:"Requests in the fleet-wide trace.")
  in
  let users =
    Arg.(
      value & opt int 1_000_000
      & info [ "users" ]
          ~doc:
            "Simulated user population the trace samples from (the \
             consistent-hash balancer shards on user id).")
  in
  let governor =
    Arg.(
      value
      & opt (enum [ ("on", true); ("off", false) ]) true
      & info [ "governor"; "g" ]
          ~doc:"Per-host SLO governor: $(b,on) or $(b,off).")
  in
  let servers =
    Arg.(
      value & opt int 2
      & info [ "servers-per-host" ] ~doc:"Server worker threads per host.")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~doc:"Per-host admission-control queue bound.")
  in
  let target =
    Arg.(
      value & opt float 1_000.0
      & info [ "target-p99-us" ] ~doc:"SLO target fed to every host governor.")
  in
  let pattern =
    Arg.(
      value
      & opt
          (enum
             [
               ("poisson", "poisson");
               ("bursty", "bursty");
               ("ramp", "ramp");
               ("diurnal", "diurnal");
             ])
          "diurnal"
      & info [ "pattern" ]
          ~doc:
            "Arrival pattern of the fleet-wide trace: $(b,poisson), \
             $(b,bursty), $(b,ramp) or $(b,diurnal) (default — a \
             compressed day/night cycle). The qps axis is the mean rate.")
  in
  let slices =
    Arg.(
      value & opt int 12
      & info [ "slices" ]
          ~doc:
            "Time slices for the latency-over-time record (the p999_curve \
             field): each served request is also bucketed by its intended \
             arrival's slice of the trace horizon.")
  in
  let seed =
    Arg.(
      value & opt int 11
      & info [ "seed" ] ~doc:"Deterministic simulation seed.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ]
          ~doc:"Write one JSON record per sweep point to $(docv)."
          ~docv:"PATH")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Attach the protocol sanitizer and race detector to every host \
             and verify exact fleet accounting (served + shed + lb_dropped \
             = offered, per-host and fleet-wide). Exit nonzero on any \
             finding.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Parallel.Pool.default_jobs ())
      & info [ "jobs"; "j" ]
          ~doc:
            "Simulate up to $(docv) hosts concurrently on separate domains. \
             Hosts are independent seeded machines and outcomes are \
             reassembled in host order, so all output except the host \
             wall-clock $(b,duration_ms) field is identical for any \
             $(docv)." ~docv:"N")
  in
  Cmd.v
    (Cmd.info "ccr_fleet" ~version:"1.0"
       ~doc:
         "Sweep the multi-host serving simulator over topology, load \
          balancer and failure schedule."
       ~man:
         [
           `S Manpage.s_description;
           `P
             (Printf.sprintf
                "Balancers: %s. Topologies: flat/N (every host equivalent \
                 behind one balancer; N from --hosts). Failure schedules: \
                 %s — none injects nothing; rolling restarts each host \
                 once, one at a time, staggered so at most one host is \
                 down; crash-wave takes out roughly half the fleet (never \
                 all of it) in one seeded correlated burst."
                balancer_names failure_names);
           `P
             "Each sweep point simulates one fleet: a seeded open-loop \
              trace (sampled from --users simulated users) is dispatched \
              by the balancer against the planned failure windows, and \
              every host runs its shard as a self-contained simulated \
              machine — allocator, revoker, SLO governor and all. A host \
              that goes down takes an induced sweep crash mid-epoch and \
              recovers by resuming its checkpointed revocation epoch; the \
              balancer redistributes the window's traffic with intended \
              arrival timestamps intact, so the fleet-wide p99.9 is \
              coordinated-omission-free through the restart wave.";
           `P
             "With $(b,--jobs) N the hosts of each fleet fan out across N \
              domains. Hosts share nothing, so every simulated quantity is \
              identical for any N; only the $(b,duration_ms) field \
              varies. CI enforces this by diffing normalised --jobs 1 and \
              --jobs 4 output of the same sweep.";
         ])
    Term.(
      const fleet $ hosts $ balancers $ failures $ modes $ qps $ requests
      $ users $ governor $ servers $ queue_depth $ target $ pattern $ slices
      $ seed $ json $ check $ jobs)

let () = exit (Cmd.eval' main)
