(* ccr_check: protocol checking front end.

   Phase 1 runs every revocation strategy over a set of SPEC workload
   profiles with the shadow-state sanitizer and the vector-clock
   happens-before checker attached, expecting zero reports.

   Phase 2 proves the checkers are load-bearing: it re-runs a small
   churn rig with seeded protocol mutations (Revoker.inject_fault) and
   requires each mutation to be caught under its own rule.

   Exits nonzero if any clean run reports a violation, any run is
   vacuous (no revocation epochs), or any mutation goes undetected.

     dune exec bin/ccr_check.exe -- --scale 0.1
     dune exec bin/ccr_check.exe -- --profiles hmmer_retro --skip-mutations *)

open Cmdliner
module Machine = Sim.Machine
module Cap = Cheri.Capability
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs
module Epoch = Ccr.Epoch
module Sanitizer = Analysis.Sanitizer
module Race = Analysis.Race

(* ---- phase 1: clean runs ---- *)

(* Each check is a closure returning (ok, report text): checks run on
   worker domains under --jobs, so they never print — the driver emits
   the buffered reports in check order, keeping stdout identical for
   any --jobs value. *)

let check_profile_cell ~seed ~scale name p strategy () =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  let san = ref None and race = ref None in
  let tracer = Sim.Trace.create () in
  let result =
    Workload.Spec.run ~seed ~ops_scale:scale ~tracer
      ~on_runtime:(fun rt ->
        san :=
          Some
            (Sanitizer.attach ?revoker:rt.Runtime.revoker
               rt.Runtime.machine);
        race := Some (Race.attach rt.Runtime.machine))
      ~mode:(Runtime.Safe strategy) p
  in
  let san = Option.get !san and race = Option.get !race in
  Sanitizer.finish san;
  let revs =
    match result.Workload.Result.mrs with
    | Some s -> s.Mrs.revocations
    | None -> 0
  in
  let ok = Sanitizer.ok san && Race.ok race && revs > 0 in
  Format.fprintf fmt "%-14s %-12s %-4s (%d epochs, %d events)@." name
    (Revoker.strategy_name strategy)
    (if ok then "ok" else "FAIL")
    revs (Sim.Trace.total tracer);
  if not (Sanitizer.ok san) then Sanitizer.report fmt san;
  if not (Race.ok race) then Race.report fmt race;
  if revs = 0 then
    Format.fprintf fmt "  no revocation epoch ran: the check is vacuous@.";
  Format.pp_print_flush fmt ();
  (ok, Buffer.contents buf)

let profile_tasks ~seed ~scale profiles =
  List.concat_map
    (fun name ->
      match Workload.Profile.find name with
      | exception Not_found ->
          [
            (fun () ->
              (false, Printf.sprintf "unknown profile %S\n" name));
          ]
      | p ->
          List.map
            (fun strategy -> check_profile_cell ~seed ~scale name p strategy)
            Revoker.extended_strategies)
    profiles

(* ---- phase 2: seeded protocol mutations ---- *)

let cfg =
  { Machine.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }

(* The test_revoker churn rig: scatter aliases of a victim allocation
   through memory, registers and a kernel hoard, free it, and churn until
   its batch's epoch closes. *)
let mutation_run strategy fault =
  let m = Machine.create cfg in
  Machine.attach_tracer m (Some (Sim.Trace.create ()));
  let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
  let hoards = Kernel.Hoard.create () in
  let rv = Revoker.create m ~strategy ~core:2 ~hoards () in
  let mrs = Mrs.create m ~alloc ~revoker:rv () in
  let san = Sanitizer.attach ~revoker:rv m in
  Revoker.inject_fault rv fault;
  ignore
    (Machine.spawn m ~name:"app" ~core:3 (fun ctx ->
         let regs = Machine.regs (Machine.self ctx) in
         let table = Mrs.malloc mrs ctx 4096 in
         Sim.Regfile.set regs 0 table;
         let slot i = Cap.set_addr table (Cap.base table + (i * 16)) in
         let victim = Mrs.malloc mrs ctx 128 in
         Machine.store_u64 ctx victim 0x5ec2e7L;
         Machine.store_cap ctx (slot 0) victim;
         Sim.Regfile.set regs 5 victim;
         ignore (Kernel.Hoard.register hoards ctx victim);
         let painted_at = Epoch.counter (Revoker.epoch rv) in
         Mrs.free mrs ctx victim;
         let rng = Sim.Prng.create ~seed:11 in
         while not (Epoch.is_clean (Revoker.epoch rv) ~painted_at) do
           let c = Mrs.malloc mrs ctx (64 + (16 * Sim.Prng.int rng 16)) in
           Machine.store_u64 ctx c 1L;
           Mrs.free mrs ctx c
         done;
         Mrs.finish mrs ctx));
  Machine.run m;
  Sanitizer.finish san;
  san

let mutations =
  [
    (Revoker.Reloaded, Revoker.Early_dequarantine, "early-dequarantine");
    (Revoker.Cornucopia, Revoker.Skip_shootdown, "missing-shootdown");
    (Revoker.Reloaded, Revoker.Skip_hoard_scan, "missing-hoard-scan");
  ]

let baseline_cell strategy () =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  let san = mutation_run strategy None in
  let ok = Sanitizer.ok san in
  Format.fprintf fmt "rig %-12s no fault            %-4s@."
    (Revoker.strategy_name strategy)
    (if ok then "ok" else "FAIL");
  if not ok then Sanitizer.report fmt san;
  Format.pp_print_flush fmt ();
  (ok, Buffer.contents buf)

let mutation_cell (strategy, fault, rule) () =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  let san = mutation_run strategy (Some fault) in
  let n = Sanitizer.count san rule in
  let ok = n > 0 in
  Format.fprintf fmt "rig %-12s %-19s %-4s (%d %S report(s))@."
    (Revoker.strategy_name strategy)
    (Revoker.fault_name fault)
    (if ok then "ok" else "MISSED")
    n rule;
  if not ok then Sanitizer.report fmt san;
  Format.pp_print_flush fmt ();
  (ok, Buffer.contents buf)

let mutation_tasks () =
  List.map baseline_cell [ Revoker.Reloaded; Revoker.Cornucopia ]
  @ List.map mutation_cell mutations

(* ---- driver ---- *)

let profiles_arg =
  Arg.(
    value
    & opt (list string) [ "hmmer_retro"; "hmmer_nph3" ]
    & info [ "profiles"; "p" ] ~docv:"NAMES"
        ~doc:"Comma-separated SPEC profiles to check.")

let scale_arg =
  Arg.(
    value & opt float 0.1
    & info [ "scale" ] ~doc:"Operation-count scale per profile.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.")

let skip_mutations_arg =
  Arg.(
    value & flag
    & info [ "skip-mutations" ] ~doc:"Only run the clean-workload checks.")

let list_rules_arg =
  Arg.(
    value & flag
    & info [ "list-rules" ]
        ~doc:
          "Print every stable sanitizer and race rule identifier with its \
           one-line description, then exit.")

let list_rules () =
  Format.printf "sanitizer rules:@.";
  List.iter
    (fun (id, doc) -> Format.printf "  %-24s %s@." id doc)
    Sanitizer.all_rules;
  Format.printf "race rules:@.";
  List.iter
    (fun (id, doc) -> Format.printf "  %-24s %s@." id doc)
    Race.all_rules;
  0

let jobs_arg =
  Arg.(
    value
    & opt int (Parallel.Pool.default_jobs ())
    & info [ "jobs"; "j" ]
        ~doc:
          "Run up to $(docv) checks concurrently on separate domains. \
           Checks are independent simulations and their reports are \
           printed in check order, so output and exit status are \
           identical for any $(docv)." ~docv:"N")

let main profiles scale seed skip_mutations jobs rules_only =
  match Parallel.Pool.validate_jobs jobs with
  | Error msg ->
      Format.eprintf "ccr_check: %s@." msg;
      1
  | Ok jobs ->
  if rules_only then list_rules ()
  else if scale <= 0.0 then begin
    Format.eprintf "ccr_check: --scale must be positive (got %g)@." scale;
    1
  end
  else
  let tasks =
    profile_tasks ~seed ~scale profiles
    @ (if skip_mutations then [] else mutation_tasks ())
  in
  let results = Parallel.Pool.map ~jobs (fun f -> f ()) tasks in
  List.iter (fun (_, report) -> print_string report) results;
  let all = List.map fst results in
  let failed = List.length (List.filter not all) in
  if failed = 0 then begin
    Format.printf "ccr_check: %d check(s) passed@." (List.length all);
    0
  end
  else begin
    Format.printf "ccr_check: %d of %d check(s) FAILED@." failed
      (List.length all);
    1
  end

let cmd =
  Cmd.v
    (Cmd.info "ccr_check" ~version:"1.0"
       ~doc:
         "Check the revocation protocol with the shadow-state sanitizer \
          and the happens-before race detector.")
    Term.(
      const main $ profiles_arg $ scale_arg $ seed_arg $ skip_mutations_arg
      $ jobs_arg $ list_rules_arg)

let () = exit (Cmd.eval' cmd)
