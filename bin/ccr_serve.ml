(* ccr_serve: sweep the open-loop serving workload over offered load ×
   strategy × governor and report the tail. Each run is one simulated
   machine; the JSON output is deterministic (fixed float formats, seed
   recorded) so same-seed reruns are byte-identical.

     dune exec bin/ccr_serve.exe -- --qps 10000,20000,30000 --modes cornucopia,reloaded
     dune exec bin/ccr_serve.exe -- --governor both --json sweep.json
     dune exec bin/ccr_serve.exe -- --check --requests 2000 --qps 15000 *)

open Cmdliner
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Loadgen = Service.Loadgen
module Slo = Service.Slo
module Governor = Service.Governor
module Serve = Workload.Serve
module Sanitizer = Analysis.Sanitizer
module Race = Analysis.Race

let mode_of_string = function
  | "baseline" -> Ok Runtime.Baseline
  | "paint+sync" | "paint-sync" | "paint" -> Ok (Runtime.Safe Revoker.Paint_sync)
  | "cherivoke" -> Ok (Runtime.Safe Revoker.Cherivoke)
  | "cornucopia" -> Ok (Runtime.Safe Revoker.Cornucopia)
  | "reloaded" -> Ok (Runtime.Safe Revoker.Reloaded)
  | "cheriot" -> Ok (Runtime.Safe Revoker.Cheriot_filter)
  | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))

let modes_conv =
  let parse s =
    let parts = String.split_on_char ',' (String.trim s) in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: tl -> (
          match mode_of_string (String.trim p) with
          | Ok m -> go (m :: acc) tl
          | Error e -> Error e)
    in
    go [] parts
  in
  let print fmt ms =
    Format.pp_print_string fmt
      (String.concat "," (List.map Runtime.mode_name ms))
  in
  Arg.conv (parse, print)

let floats_conv =
  let parse s =
    try
      Ok (List.map (fun p -> float_of_string (String.trim p))
            (String.split_on_char ',' (String.trim s)))
    with _ -> Error (`Msg (Printf.sprintf "expected comma-separated numbers, got %S" s))
  in
  let print fmt l =
    Format.pp_print_string fmt (String.concat "," (List.map string_of_float l))
  in
  Arg.conv (parse, print)

type governed_axis = Gov_on | Gov_off | Gov_both

let governor_conv =
  Arg.conv
    ( (function
      | "on" -> Ok Gov_on
      | "off" -> Ok Gov_off
      | "both" -> Ok Gov_both
      | s -> Error (`Msg (Printf.sprintf "expected on, off or both, got %S" s))),
      fun fmt g ->
        Format.pp_print_string fmt
          (match g with Gov_on -> "on" | Gov_off -> "off" | Gov_both -> "both") )

type run_row = {
  r_mode : string;
  r_governed : bool;
  r_qps : float;
  r_outcome : Serve.outcome;
  r_clean : bool; (* sanitizer + race detector + accounting, when --check *)
  r_report : string; (* buffered checker findings; printed by the caller *)
  r_duration_ms : float; (* host wall-clock of this sweep point *)
}

let percentile (o : Serve.outcome) p =
  match Slo.percentile o.Serve.slo p with Some v -> v | None -> 0.0

(* The qps axis sets the *mean* rate of whichever arrival pattern the
   sweep drives, so points stay comparable across patterns. *)
let pattern_at ~pattern ~qps =
  match pattern with
  | "bursty" ->
      (* 25% duty at 2.5x over a 0.5x base: mean = qps *)
      Loadgen.Bursty
        { base = 0.5 *. qps; peak = 2.5 *. qps; period_us = 2_000.0; duty = 0.25 }
  | "ramp" -> Loadgen.Ramp { from_rate = 0.5 *. qps; to_rate = 1.5 *. qps }
  | "diurnal" ->
      Loadgen.Diurnal { low = 0.5 *. qps; high = 1.5 *. qps; period_us = 4_000.0 }
  | _ -> Loadgen.Poisson qps

(* One run of the serving workload at one sweep point. Runs on a worker
   domain under --jobs, so it never prints: checker findings go into the
   row's [r_report] buffer and the caller emits them in submission
   order. *)
let run_point ~cfg ~check ~pattern ~mode ~governed ~qps =
  let t0 = Unix.gettimeofday () in
  let cfg = { cfg with Serve.pattern = pattern_at ~pattern ~qps } in
  let san = ref None and race = ref None in
  (* Checkers subscribe losslessly; the large ring just keeps the
     overwrite warning quiet on long sweeps. *)
  let tracer =
    if check then Some (Sim.Trace.create ~capacity:(1 lsl 20) ()) else None
  in
  let on_runtime rt =
    if check then begin
      san := Some (Sanitizer.attach ?revoker:rt.Runtime.revoker rt.Runtime.machine);
      race := Some (Race.attach rt.Runtime.machine)
    end
  in
  let o = Serve.run ~config:cfg ?tracer ~on_runtime ~governed ~mode () in
  let accounted =
    o.Serve.served + o.Serve.shed_depth + o.Serve.shed_deadline = o.Serve.offered
    && o.Serve.offered = cfg.Serve.requests
  in
  let report = Buffer.create 0 in
  let rfmt = Format.formatter_of_buffer report in
  let clean =
    match (!san, !race) with
    | Some san, Some race ->
        Sanitizer.finish san;
        if not (Sanitizer.ok san) then Sanitizer.report rfmt san;
        if not (Race.ok race) then Race.report rfmt race;
        Sanitizer.ok san && Race.ok race && accounted
    | _ -> accounted
  in
  if not accounted then
    Format.fprintf rfmt
      "ccr_serve: SLO accounting drift: served %d + shed %d+%d <> offered %d@."
      o.Serve.served o.Serve.shed_depth o.Serve.shed_deadline o.Serve.offered;
  Format.pp_print_flush rfmt ();
  {
    r_mode = Runtime.mode_name mode;
    r_governed = governed;
    r_qps = qps;
    r_outcome = o;
    r_clean = clean;
    r_report = Buffer.contents report;
    r_duration_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
  }

let json_of_row ~pattern ~requests ~servers ~seed ~target ~jobs r =
  let o = r.r_outcome in
  let g = o.Serve.governor in
  let gi f = match g with Some s -> f s | None -> 0 in
  Printf.sprintf
    "{\"workload\": \"serve\", \"topology\": \"single\", \"host_count\": 1, \
     \"balancer\": \"none\", \"tenants\": 1, \"overcommit\": \"none\", \
     \"mode\": \"%s\", \"governor\": %b, \
     \"pattern\": \"%s\", \"qps\": %.1f, \"requests\": %d, \"servers\": %d, \
     \"seed\": %d, \"target_p99_us\": %.1f, \"p50_us\": %.3f, \"p99_us\": \
     %.3f, \"p999_us\": %.3f, \"offered\": %d, \"served\": %d, \
     \"shed_depth\": %d, \"shed_deadline\": %d, \"shed_rate\": %.5f, \
     \"violations\": %d, \"epochs_deferred\": %d, \"epochs_forced\": %d, \
     \"eager_flushes\": %d, \"defer_cycles\": %d, \"quanta_granted\": %d, \
     \"slo_events\": %d, \"epochs\": %d, \"clg_faults\": %d, \
     \"duration_ms\": %.3f, \"jobs\": %d}"
    r.r_mode r.r_governed pattern r.r_qps requests servers seed target
    (percentile o 50.0) (percentile o 99.0) (percentile o 99.9)
    o.Serve.offered o.Serve.served o.Serve.shed_depth o.Serve.shed_deadline
    (if o.Serve.offered = 0 then 0.0
     else
       float_of_int (o.Serve.shed_depth + o.Serve.shed_deadline)
       /. float_of_int o.Serve.offered)
    (Slo.violations o.Serve.slo)
    (gi (fun s -> s.Governor.epochs_deferred))
    (gi (fun s -> s.Governor.epochs_forced))
    (gi (fun s -> s.Governor.eager_flushes))
    (gi (fun s -> s.Governor.defer_cycles))
    (gi (fun s -> s.Governor.quanta_granted))
    (gi (fun s -> s.Governor.slo_events))
    (List.length o.Serve.result.Workload.Result.phases)
    o.Serve.result.Workload.Result.clg_faults r.r_duration_ms jobs

let all_workload_names = "serve (this tool); spec, pgbench, grpc, tenant (ccr_sim)"

let strategy_names =
  String.concat ", "
    (List.map Runtime.mode_name Runtime.all_modes)
  ^ ", safe/cheriot"

let serve modes qpss governor requests servers queue_depth deadline_us
    target_p99 pattern seed json check jobs =
  match Parallel.Pool.validate_jobs jobs with
  | Error msg ->
      Format.eprintf "ccr_serve: %s@." msg;
      1
  | Ok jobs ->
  if requests < 1 then begin
    Format.eprintf "ccr_serve: --requests must be at least 1 (got %d)@." requests;
    1
  end
  else if List.exists (fun q -> q <= 0.0) qpss then begin
    Format.eprintf "ccr_serve: every --qps must be positive@.";
    1
  end
  else begin
    let cfg =
      {
        Serve.default_config with
        requests;
        servers;
        queue_depth;
        deadline_us;
        target_p99_us = target_p99;
        seed;
      }
    in
    let pattern_name = pattern in
    let governed_axis =
      match governor with
      | Gov_on -> [ true ]
      | Gov_off -> [ false ]
      | Gov_both -> [ false; true ]
    in
    (* Enumerate the sweep points first, then fan the independent
       simulations across domains; Pool.map returns rows in point order,
       so every output below is identical for any --jobs. *)
    let points =
      List.concat_map
        (fun mode ->
          List.concat_map
            (fun qps ->
              List.filter_map
                (fun governed ->
                  (* a governor needs a revoker: skip governed Baseline *)
                  if governed && mode = Runtime.Baseline then None
                  else Some (mode, qps, governed))
                governed_axis)
            qpss)
        modes
    in
    let rows =
      Parallel.Pool.map ~jobs
        (fun (mode, qps, governed) ->
          run_point ~cfg ~check ~pattern ~mode ~governed ~qps)
        points
    in
    List.iter
      (fun r -> if r.r_report <> "" then Format.eprintf "%s" r.r_report)
      rows;
    Format.printf "%-12s %-4s %9s %9s %10s %10s %7s %6s %6s@." "mode" "gov"
      "qps" "p50us" "p99us" "p99.9us" "shed%" "defer" "force";
    List.iter
      (fun r ->
        let o = r.r_outcome in
        Format.printf "%-12s %-4s %9.0f %9.1f %10.1f %10.1f %6.2f%% %6d %6d@."
          r.r_mode
          (if r.r_governed then "on" else "off")
          r.r_qps (percentile o 50.0) (percentile o 99.0) (percentile o 99.9)
          (100.0
          *. float_of_int (o.Serve.shed_depth + o.Serve.shed_deadline)
          /. float_of_int (max o.Serve.offered 1))
          (match o.Serve.governor with
          | Some g -> g.Governor.epochs_deferred
          | None -> 0)
          (match o.Serve.governor with
          | Some g -> g.Governor.epochs_forced
          | None -> 0))
      rows;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc "[\n";
        List.iteri
          (fun i r ->
            if i > 0 then output_string oc ",\n";
            output_string oc "  ";
            output_string oc
              (json_of_row ~pattern:pattern_name ~requests ~servers ~seed
                 ~target:target_p99 ~jobs r))
          rows;
        output_string oc "\n]\n";
        close_out oc;
        Format.printf "wrote %d records to %s@." (List.length rows) path);
    if check then
      if List.for_all (fun r -> r.r_clean) rows then begin
        Format.printf "check: ok (%d runs, zero findings, accounting exact)@."
          (List.length rows);
        0
      end
      else begin
        Format.eprintf "check: FAILED@.";
        1
      end
    else 0
  end

let main =
  let modes =
    Arg.(
      value
      & opt modes_conv [ Runtime.Safe Revoker.Cornucopia; Runtime.Safe Revoker.Reloaded ]
      & info [ "modes"; "m" ]
          ~doc:
            (Printf.sprintf
               "Comma-separated temporal-safety modes to sweep. Known modes: \
                %s." strategy_names))
  in
  let qps =
    Arg.(
      value
      & opt floats_conv [ 60_000.0; 90_000.0; 110_000.0 ]
      & info [ "qps" ]
          ~doc:
            "Comma-separated offered loads (requests/second). The default \
             sweep spans the two-server knee: ~60k is comfortable, ~110k \
             is near saturation, where Cornucopia's stop-the-world \
             re-sweep detonates the p99.9.")
  in
  let governor =
    Arg.(
      value & opt governor_conv Gov_both
      & info [ "governor"; "g" ]
          ~doc:
            "Governor axis: $(b,on), $(b,off) or $(b,both). Governor \
             policies: off = policy-triggered epochs, unpaced sweeps; on = \
             SLO governor (epoch deferral into load troughs, forced release \
             on quarantine pressure, quantum-paced concurrent sweeps, eager \
             trough flushes).")
  in
  let requests =
    Arg.(value & opt int 6_000 & info [ "requests"; "n" ] ~doc:"Requests per run.")
  in
  let servers =
    Arg.(value & opt int 2 & info [ "servers" ] ~doc:"Server worker threads.")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~doc:"Admission-control queue bound.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-us" ]
          ~doc:"Shed requests whose queueing delay exceeds $(docv) µs.")
  in
  let target =
    Arg.(
      value & opt float 1_000.0
      & info [ "target-p99-us" ] ~doc:"SLO target fed to the governor.")
  in
  let pattern =
    Arg.(
      value
      & opt
          (enum
             [
               ("poisson", "poisson");
               ("bursty", "bursty");
               ("ramp", "ramp");
               ("diurnal", "diurnal");
             ])
          "poisson"
      & info [ "pattern" ]
          ~doc:
            "Arrival pattern at each sweep point: $(b,poisson), \
             $(b,bursty), $(b,ramp) or $(b,diurnal). The qps axis sets \
             the pattern's mean rate, so sweep points stay comparable \
             across patterns.")
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Deterministic simulation seed.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Write per-run JSON records to $(docv)." ~docv:"PATH")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Attach the protocol sanitizer and race detector to every run, \
             and verify exact SLO accounting (served + shed = offered). \
             Exit nonzero on any finding.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Parallel.Pool.default_jobs ())
      & info [ "jobs"; "j" ]
          ~doc:
            "Run up to $(docv) sweep points concurrently on separate \
             domains (default: the machine's recommended domain count, \
             capped at 16). Each point is an independent seeded \
             simulation, and results are reassembled in sweep order, so \
             all output except the host wall-clock $(b,duration_ms) \
             field is identical for any $(docv)." ~docv:"N")
  in
  Cmd.v
    (Cmd.info "ccr_serve" ~version:"1.0"
       ~doc:
         "Sweep the open-loop serving workload over offered load, \
          revocation strategy and SLO governor."
       ~man:
         [
           `S Manpage.s_description;
           `P
             (Printf.sprintf
                "Workloads in this repository: %s. Revocation strategies: \
                 %s. Cross-process revocation scheduling policies \
                 (ccr_sim tenant --sched): round-robin, pressure, slo."
                all_workload_names strategy_names);
           `P
             "Each sweep point runs one deterministic simulated machine: an \
              open-loop Poisson load generator (core 0, never parked by \
              stop-the-world), N server threads, and the chosen revocation \
              strategy with the revoker sharing core 3 with a server. \
              Latency is recorded from intended arrival time, so revocation \
              pauses surface as queueing delay instead of being \
              coordinated-omitted. Same seed, same arguments: byte-identical \
              JSON.";
           `P
             "With $(b,--jobs) N the sweep points fan out across N domains. \
              Points are independent machines and results are reassembled \
              in sweep order, so every simulated quantity is identical for \
              any N; only the $(b,duration_ms) field (host wall-clock per \
              point) and $(b,jobs) field vary. CI enforces this by diffing \
              normalised --jobs 1 and --jobs 4 output.";
         ])
    Term.(
      const serve $ modes $ qps $ governor $ requests $ servers $ queue_depth
      $ deadline $ target $ pattern $ seed $ json $ check $ jobs)

let () = exit (Cmd.eval' main)
