(* lib/mc tests: the dependence relation the DPOR prunes with, schedule
   (de)serialization, explorer determinism and clean-run verdicts, the
   measured DPOR-vs-naive reduction, and the seeded-mutation detection
   path with minimal-schedule replay. *)

module Trace = Sim.Trace
module Revoker = Ccr.Revoker
module Dep = Mc.Dep
module Schedule = Mc.Schedule
module Scenario = Mc.Scenario
module Explorer = Mc.Explorer

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ev kind arg arg2 =
  { Trace.time = 0; core = 0; pid = 0; kind; arg; arg2 }

let fp_of kind arg arg2 = Dep.add_event Dep.empty (ev kind arg arg2)

(* ---- dependence relation ---- *)

let test_dep_regions () =
  let paint = fp_of Trace.Paint 0x1000 0x100 in
  let overlap = fp_of Trace.Unpaint 0x1080 0x100 in
  let far = fp_of Trace.Reuse 0x9000 0x100 in
  check "overlapping regions conflict" true (Dep.dependent paint overlap);
  check "symmetric" true (Dep.dependent overlap paint);
  check "disjoint regions commute" false (Dep.dependent paint far);
  check "adjacent regions commute" false
    (Dep.dependent paint (fp_of Trace.Quarantine_enq 0x1100 0x100))

let test_dep_cap_stores () =
  let paint = fp_of Trace.Paint 0x1000 0x100 in
  let inside = Dep.add_cap_store Dep.empty ~vaddr:0x1080 in
  let outside = Dep.add_cap_store Dep.empty ~vaddr:0x9000 in
  check "cap store into a painted region conflicts" true
    (Dep.dependent paint inside);
  check "cap store elsewhere commutes" false (Dep.dependent paint outside);
  let g1 = Dep.add_cap_store Dep.empty ~vaddr:0x2000 in
  let g1' = Dep.add_cap_store Dep.empty ~vaddr:0x2008 in
  let g2 = Dep.add_cap_store Dep.empty ~vaddr:0x2010 in
  check "same 16-byte granule conflicts" true (Dep.dependent g1 g1');
  check "neighbouring granules commute" false (Dep.dependent g1 g2)

let test_dep_globals_and_empties () =
  let epoch = fp_of Trace.Epoch_begin 0 0 in
  let paint = fp_of Trace.Paint 0x1000 0x100 in
  check "protocol-global event conflicts with regions" true
    (Dep.dependent epoch paint);
  check "two globals conflict" true
    (Dep.dependent epoch (fp_of Trace.Stw_request 2 0));
  (* Page_sweep's arg is a physical frame: not comparable with virtual
     region bases, so the whole event must be global *)
  check "page sweep is global" true
    (Dep.dependent (fp_of Trace.Page_sweep 0x3000 1) paint);
  (* scheduler bookkeeping carries no protocol state *)
  let cs = fp_of Trace.Context_switch 1 0 in
  check "context switch contributes nothing" true (Dep.is_empty cs);
  check "empty is independent of everything" false (Dep.dependent cs epoch);
  check "empty vs empty" false (Dep.dependent Dep.empty Dep.empty)

(* ---- schedule (de)serialization ---- *)

let test_schedule_roundtrip () =
  let sched =
    {
      Schedule.scenario = "free-during-sweep";
      strategy = Revoker.Reloaded;
      fault = Some Revoker.Early_dequarantine;
      expect = Some "early-dequarantine";
      choices =
        [
          Schedule.Sched 0;
          Schedule.Sched 2;
          Schedule.Branch ("sweep-crash", true);
          Schedule.Sched 1;
          Schedule.Branch ("stuck-quiesce", false);
        ];
    }
  in
  let path = Filename.temp_file "mc_sched" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Schedule.save path sched;
      match Schedule.load path with
      | Error msg -> Alcotest.fail ("roundtrip load failed: " ^ msg)
      | Ok loaded -> check "roundtrip identical" true (loaded = sched))

let test_schedule_load_rejects_garbage () =
  let path = Filename.temp_file "mc_sched" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# ccr_mc schedule v1\nstrategy reloaded\n";
      close_out oc;
      check "missing scenario rejected" true
        (Result.is_error (Schedule.load path));
      let oc = open_out path in
      output_string oc
        "# ccr_mc schedule v1\nscenario free-during-sweep\nstrategy bogus\n";
      close_out oc;
      check "unknown strategy rejected" true
        (Result.is_error (Schedule.load path)))

(* ---- explorer ---- *)

let scenario n =
  match Scenario.find n with
  | Some sc -> sc
  | None -> Alcotest.fail ("unknown scenario " ^ n)

let test_explore_clean_and_deterministic () =
  let run () =
    Explorer.explore ~scenario:(scenario "free-during-sweep")
      ~strategy:Revoker.Reloaded ~max_schedules:60 ()
  in
  let o1 = run () and o2 = run () in
  check "no violation on the unmutated protocol" true
    (o1.Explorer.violation = None);
  check "more than one inequivalent schedule" true (o1.Explorer.executions > 1);
  check "tree exhausted within budget" false o1.Explorer.capped;
  check_int "deterministic execution count" o1.Explorer.executions
    o2.Explorer.executions;
  check_int "deterministic backtracks" o1.Explorer.backtracks
    o2.Explorer.backtracks;
  check_int "deterministic depth" o1.Explorer.max_points o2.Explorer.max_points

let test_dpor_beats_naive () =
  let sc = scenario "free-during-sweep" in
  let dpor =
    Explorer.explore ~scenario:sc ~strategy:Revoker.Reloaded ~max_schedules:200
      ()
  in
  check "dpor exhausts the tree" false dpor.Explorer.capped;
  let naive =
    Explorer.explore ~scenario:sc ~strategy:Revoker.Reloaded ~naive:true
      ~max_schedules:(4 * dpor.Explorer.executions)
      ()
  in
  check "naive needs strictly more schedules" true
    (naive.Explorer.executions > dpor.Explorer.executions);
  check "naive finds no violation either" true (naive.Explorer.violation = None)

let test_root_split_covers_tree () =
  let sc = scenario "free-during-sweep" in
  let roots =
    Explorer.root_candidates ~scenario:sc ~strategy:Revoker.Reloaded ()
  in
  check "first choice point has at least two arms" true (List.length roots >= 2);
  let whole =
    Explorer.explore ~scenario:sc ~strategy:Revoker.Reloaded ~max_schedules:200
      ()
  in
  let parts =
    List.map
      (fun root ->
        Explorer.explore ~scenario:sc ~strategy:Revoker.Reloaded
          ~max_schedules:200 ~root ())
      roots
  in
  List.iter
    (fun (p : Explorer.outcome) ->
      check "subtree clean" true (p.Explorer.violation = None);
      check "subtree exhausted" false p.Explorer.capped)
    parts;
  (* each pinned subtree explores a subset; together they cover at least
     the whole-tree count (sleep sets prune a little less per subtree) *)
  let sum =
    List.fold_left (fun a (p : Explorer.outcome) -> a + p.Explorer.executions) 0 parts
  in
  check "split subtrees cover the unsplit tree" true
    (sum >= whole.Explorer.executions)

let test_branchable_scenario_has_branch_points () =
  let sc = scenario "crash-mid-sweep" in
  let roots =
    Explorer.root_candidates ~scenario:sc ~strategy:Revoker.Reloaded ()
  in
  check "first choice point has both arms" true (List.length roots >= 2);
  (* chaos consultations appear as Branch choice points in the decision
     record of even the default schedule *)
  let r =
    Explorer.run_one ~scenario:sc ~strategy:Revoker.Reloaded ~prefix:[] ()
  in
  check "chaos consultations are recorded as branch choices" true
    (List.exists
       (function Schedule.Branch _ -> true | Schedule.Sched _ -> false)
       r.Explorer.r_choices);
  check "default schedule (no injections) is clean" true
    (r.Explorer.r_violation = None)

let test_mutation_found_and_minimal_schedule_replays () =
  let sc = scenario "free-during-sweep" in
  let o =
    Explorer.explore ~scenario:sc ~strategy:Revoker.Reloaded
      ~fault:Revoker.Early_dequarantine ~max_schedules:60 ()
  in
  match o.Explorer.violation with
  | None -> Alcotest.fail "seeded early-dequarantine mutation not detected"
  | Some v ->
      check "detected under its own rule" true
        (List.mem "early-dequarantine" v.Explorer.v_rules);
      (* the minimal schedule must reproduce the rule when replayed *)
      let r =
        Explorer.run_one ~scenario:sc ~strategy:Revoker.Reloaded
          ~fault:Revoker.Early_dequarantine ~prefix:v.Explorer.v_schedule ()
      in
      (match r.Explorer.r_violation with
      | Some (rules, _) ->
          check "replay reproduces the rule" true
            (List.mem "early-dequarantine" rules)
      | None -> Alcotest.fail "minimal schedule did not reproduce");
      (* and the unmutated protocol is clean on the same schedule *)
      let clean =
        Explorer.run_one ~scenario:sc ~strategy:Revoker.Reloaded
          ~prefix:v.Explorer.v_schedule ()
      in
      check "same schedule clean without the fault" true
        (clean.Explorer.r_violation = None)

let () =
  Alcotest.run "mc"
    [
      ( "dep",
        [
          Alcotest.test_case "regions" `Quick test_dep_regions;
          Alcotest.test_case "cap stores" `Quick test_dep_cap_stores;
          Alcotest.test_case "globals and empties" `Quick
            test_dep_globals_and_empties;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "load rejects garbage" `Quick
            test_schedule_load_rejects_garbage;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "clean and deterministic" `Quick
            test_explore_clean_and_deterministic;
          Alcotest.test_case "dpor beats naive" `Quick test_dpor_beats_naive;
          Alcotest.test_case "root split covers tree" `Quick
            test_root_split_covers_tree;
          Alcotest.test_case "branchable choice points" `Quick
            test_branchable_scenario_has_branch_points;
          Alcotest.test_case "mutation found and replays" `Quick
            test_mutation_found_and_minimal_schedule_replays;
        ] );
    ]
