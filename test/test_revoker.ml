(* Revocation strategy soundness and behaviour tests.

   The central guarantee (§2.2.3 of the paper): all capabilities to memory
   marked in the revocation bitmap prior to an epoch's start are expunged
   as of the epoch's end. We verify it for every strategy by scanning ALL
   of simulated memory, every register file, and the kernel hoards, and
   additionally demonstrate end-to-end that use-after-reallocation is
   impossible (and that it IS possible under Paint_sync, proving the
   attack is real). *)

module M = Sim.Machine
module Cap = Cheri.Capability
module Allocator = Alloc.Allocator
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs
module Epoch = Ccr.Epoch
module Revmap = Ccr.Revmap
module Mem = Tagmem.Mem

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }

type rig = {
  m : M.t;
  alloc : Alloc.Backend.t;
  rv : Revoker.t;
  mrs : Mrs.t;
  hoards : Kernel.Hoard.t;
}

let mk ?(strategy = Revoker.Reloaded) ?(background_threads = 1)
    ?(pte_flag_barrier = false) () =
  let m = M.create cfg in
  let alloc = Alloc.Backend.snmalloc (Allocator.create m) in
  let hoards = Kernel.Hoard.create () in
  let rv =
    Revoker.create m ~strategy ~core:2 ~background_threads
      ~pte_flag_barrier ~hoards ()
  in
  let mrs = Mrs.create m ~alloc ~revoker:rv () in
  { m; alloc; rv; mrs; hoards }

(* Scan the whole physical memory for tagged capabilities whose base falls
   in [armed] (a list of (addr, size) regions that must have been revoked). *)
let scan_for_stale r armed =
  let mem = M.mem r.m in
  let stale = ref 0 in
  let in_armed base =
    List.exists (fun (a, s) -> base >= a && base < a + s) armed
  in
  Mem.iter_granules mem ~lo:0 ~hi:(Mem.size mem) (fun pa tagged ->
      if tagged then begin
        let c = Mem.read_cap mem pa in
        if in_armed (Cap.base c) then incr stale
      end);
  List.iter
    (fun th ->
      Sim.Regfile.iteri (M.regs th) (fun _ c ->
          if Cap.tag c && in_armed (Cap.base c) then incr stale))
    (M.user_threads r.m);
  ignore
    (Kernel.Hoard.scan r.hoards ~f:(fun c ->
         if Cap.tag c && in_armed (Cap.base c) then incr stale;
         c));
  !stale

(* A churn workload that deliberately scatters capabilities to a victim
   allocation through memory, registers, and the kernel hoard, then frees
   the victim and churns until its batch's revocation epoch closes. *)
let soundness_run strategy =
  let r = mk ~strategy () in
  let armed = ref [] in
  ignore
    (M.spawn r.m ~name:"app" ~core:3 (fun ctx ->
         let regs = M.regs (M.self ctx) in
         let table = Mrs.malloc r.mrs ctx 4096 in
         Sim.Regfile.set regs 0 table;
         let slot i = Cap.set_addr table (Cap.base table + (i * 16)) in
         let victim = Mrs.malloc r.mrs ctx 128 in
         M.store_u64 ctx victim 0x5ec2e7L;
         (* scatter aliases: table slots, registers, a second object's
            body, and a kernel hoard *)
         M.store_cap ctx (slot 0) victim;
         M.store_cap ctx (slot 7) (Cap.incr_addr victim 16);
         Sim.Regfile.set regs 5 victim;
         let holder = Mrs.malloc r.mrs ctx 64 in
         M.store_cap ctx (Cap.set_addr holder (Cap.base holder)) victim;
         M.store_cap ctx (slot 1) holder;
         ignore (Kernel.Hoard.register r.hoards ctx victim);
         let painted_at = Epoch.counter (Revoker.epoch r.rv) in
         Mrs.free r.mrs ctx victim;
         armed := [ (Cap.base victim, Cap.length victim) ];
         (* churn until the victim's batch has provably been revoked *)
         let rng = Sim.Prng.create ~seed:11 in
         while not (Epoch.is_clean (Revoker.epoch r.rv) ~painted_at) do
           let c = Mrs.malloc r.mrs ctx (64 + (16 * Sim.Prng.int rng 16)) in
           M.store_u64 ctx c 1L;
           Mrs.free r.mrs ctx c
         done;
         Mrs.finish r.mrs ctx));
  M.run r.m;
  (r, !armed)

let test_soundness strategy () =
  let r, armed = soundness_run strategy in
  check "at least one revocation ran" true (Revoker.revocation_count r.rv >= 1);
  check_int "no stale capability anywhere" 0 (scan_for_stale r armed)

(* End-to-end UAR: attacker keeps a register copy of a freed object's
   capability and tries to read the re-allocated memory through it. *)
let uar_attempt strategy =
  let r = mk ~strategy () in
  let outcome = ref `Not_run in
  ignore
    (M.spawn r.m ~name:"attacker" ~core:3 (fun ctx ->
         let regs = M.regs (M.self ctx) in
         let victim = Mrs.malloc r.mrs ctx 256 in
         Sim.Regfile.set regs 5 victim;
         let painted_at = Epoch.counter (Revoker.epoch r.rv) in
         Mrs.free r.mrs ctx victim;
         let _rng = Sim.Prng.create ~seed:13 in
         (match strategy with
         | Revoker.Paint_sync | Revoker.Cherivoke | Revoker.Cornucopia
         | Revoker.Reloaded | Revoker.Cheriot_filter ->
             while not (Epoch.is_clean (Revoker.epoch r.rv) ~painted_at) do
               let c = Mrs.malloc r.mrs ctx 256 in
               M.store_u64 ctx c 0L;
               Mrs.free r.mrs ctx c
             done);
         (* grab allocations until the victim's address is recycled *)
         let recycled = ref Cap.null in
         let tries = ref 0 in
         while (not (Cap.tag !recycled)) && !tries < 4000 do
           incr tries;
           let c = Mrs.malloc r.mrs ctx 256 in
           if Cap.base c = Cap.base victim then recycled := c
         done;
         if not (Cap.tag !recycled) then outcome := `Never_recycled
         else begin
           M.store_u64 ctx !recycled 0x7ac71ce5L (* the new owner's secret *);
           let stale = Sim.Regfile.get regs 5 in
           match (try `Read (M.load_u64 ctx stale) with
                  | M.Capability_fault _ -> `Stopped)
           with
           | `Read v -> outcome := `Leaked v
           | `Stopped -> outcome := `Stopped
         end;
         Mrs.finish r.mrs ctx));
  M.run r.m;
  !outcome

let test_uar_stopped strategy () =
  match uar_attempt strategy with
  | `Stopped -> ()
  | `Leaked v -> Alcotest.failf "UAR leaked %Ld under %s" v (Revoker.strategy_name strategy)
  | `Never_recycled -> Alcotest.fail "memory never recycled; test inconclusive"
  | `Not_run -> Alcotest.fail "attack did not run"

let test_uar_possible_without_revocation () =
  (* Paint_sync provides no sweeps: the attack must SUCCEED, demonstrating
     that the protection the other strategies provide is load-bearing. *)
  match uar_attempt Revoker.Paint_sync with
  | `Leaked v -> Alcotest.(check int64) "attacker read the new secret" 0x7ac71ce5L v
  | `Stopped -> Alcotest.fail "paint+sync unexpectedly stopped the UAR"
  | `Never_recycled -> Alcotest.fail "memory never recycled"
  | `Not_run -> Alcotest.fail "attack did not run"

(* CHERIoT: freed objects become inaccessible IMMEDIATELY, before any
   revocation pass (§6.3). *)
let test_cheriot_immediate () =
  let r = mk ~strategy:Revoker.Cheriot_filter () in
  ignore
    (M.spawn r.m ~name:"app" ~core:3 (fun ctx ->
         let table = Mrs.malloc r.mrs ctx 64 in
         let victim = Mrs.malloc r.mrs ctx 128 in
         M.store_cap ctx (Cap.set_addr table (Cap.base table)) victim;
         Mrs.free r.mrs ctx victim;
         (* no revocation has run, yet the load comes back untagged *)
         check_int "no revocation yet" 0 (Revoker.revocation_count r.rv);
         let stale = M.load_cap ctx (Cap.set_addr table (Cap.base table)) in
         check "filter stripped the stale tag" false (Cap.tag stale);
         Mrs.finish r.mrs ctx));
  M.run r.m

(* Reloaded's central invariant (§3.2): during an epoch, every tagged
   capability STORED by the application has already been checked — it can
   never point into the quarantine being revoked. We drive a workload that
   aggressively copies dead pointers; the load barrier must launder them. *)
let test_reloaded_store_invariant () =
  let r = mk ~strategy:Revoker.Reloaded () in
  let violations = ref 0 in
  M.set_cap_store_hook r.m
    (Some
       (fun ~vaddr:_ v ->
         if Cap.tag v && Revoker.barrier_armed r.rv then
           if
             List.exists
               (fun (a, s) -> Cap.base v >= a && Cap.base v < a + s)
               (Revoker.currently_revoking r.rv)
           then incr violations));
  ignore
    (M.spawn r.m ~name:"app" ~core:3 (fun ctx ->
         let rng = Sim.Prng.create ~seed:17 in
         let table = Mrs.malloc r.mrs ctx 4096 in
         let slot i = Cap.set_addr table (Cap.base table + (i * 16)) in
         for i = 0 to 255 do
           let c = Mrs.malloc r.mrs ctx 512 in
           M.store_cap ctx (slot i) c
         done;
         let regs = M.regs (M.self ctx) in
         for _ = 1 to 20_000 do
           let i = Sim.Prng.int rng 256 in
           let j = Sim.Prng.int rng 256 in
           let c = M.load_cap ctx (slot i) in
           (* register-file discipline: the copy lives in r1 across the
              safe points between the load and the store, so a concurrent
              root scan can see (and revoke) it *)
           Sim.Regfile.set regs 1 c;
           M.store_cap ctx (slot j) (Sim.Regfile.get regs 1);
           if Sim.Prng.int rng 3 = 0 then begin
             let c = M.load_cap ctx (slot i) in
             if Cap.tag c then begin
               (try Mrs.free r.mrs ctx c with Invalid_argument _ -> ());
               ()
             end;
             let fresh = Mrs.malloc r.mrs ctx 512 in
             M.store_cap ctx (slot i) fresh
           end
         done;
         Mrs.finish r.mrs ctx));
  M.run r.m;
  check "revocations ran" true (Revoker.revocation_count r.rv > 0);
  check_int "no unchecked capability was ever stored" 0 !violations

(* The same experiment under Cornucopia shows why it must re-scan: stores
   of stale capabilities DO happen during its concurrent phase. *)
let test_cornucopia_needs_rescan () =
  let r = mk ~strategy:Revoker.Cornucopia () in
  let copies_of_revoking = ref 0 in
  M.set_cap_store_hook r.m
    (Some
       (fun ~vaddr:_ v ->
         if Cap.tag v && Revoker.in_flight r.rv then
           if
             List.exists
               (fun (a, s) -> Cap.base v >= a && Cap.base v < a + s)
               (Revoker.currently_revoking r.rv)
           then incr copies_of_revoking));
  ignore
    (M.spawn r.m ~name:"app" ~core:3 (fun ctx ->
         let rng = Sim.Prng.create ~seed:17 in
         let table = Mrs.malloc r.mrs ctx 4096 in
         let slot i = Cap.set_addr table (Cap.base table + (i * 16)) in
         for i = 0 to 255 do
           let c = Mrs.malloc r.mrs ctx 512 in
           M.store_cap ctx (slot i) c
         done;
         for _ = 1 to 20_000 do
           let i = Sim.Prng.int rng 256 in
           let j = Sim.Prng.int rng 256 in
           let c = M.load_cap ctx (slot i) in
           M.store_cap ctx (slot j) c;
           if Sim.Prng.int rng 3 = 0 then begin
             let c = M.load_cap ctx (slot i) in
             if Cap.tag c then (try Mrs.free r.mrs ctx c with Invalid_argument _ -> ());
             let fresh = Mrs.malloc r.mrs ctx 512 in
             M.store_cap ctx (slot i) fresh
           end
         done;
         Mrs.finish r.mrs ctx));
  M.run r.m;
  check "revocations ran" true (Revoker.revocation_count r.rv > 0);
  check "stale copies happened under cornucopia" true (!copies_of_revoking > 0)

(* Freed-during-epoch memory must survive until the NEXT epoch (§2.2.3). *)
let test_free_during_epoch_held_over () =
  let r = mk ~strategy:Revoker.Cornucopia () in
  ignore
    (M.spawn r.m ~name:"app" ~core:3 (fun ctx ->
         let rng = Sim.Prng.create ~seed:23 in
         (* trigger a first revocation *)
         let mid = ref Cap.null in
         while Revoker.revocation_count r.rv = 0 || not (Cap.tag !mid) do
           let c = Mrs.malloc r.mrs ctx 512 in
           Mrs.free r.mrs ctx c;
           if Revoker.in_flight r.rv && not (Cap.tag !mid) then begin
             (* free THIS object in the middle of the epoch *)
             let v = Mrs.malloc r.mrs ctx 512 in
             mid := v;
             Mrs.free r.mrs ctx v
           end;
           ignore (Sim.Prng.int rng 2)
         done;
         check "captured a mid-epoch free" true (Cap.tag !mid);
         (* when the in-flight epoch ends, the mid-epoch free's bit must
            still be painted (it was not part of that epoch's batch) *)
         while Epoch.in_progress (Revoker.epoch r.rv) do
           Epoch.wait_change (Revoker.epoch r.rv) ctx
         done;
         check "bit still painted after the overlapping epoch" true
           (Revmap.test_host (Revoker.revmap r.rv) (Cap.base !mid));
         Mrs.finish r.mrs ctx));
  M.run r.m

(* §7.1: splitting the background sweep over more threads shortens the
   concurrent phase without changing what gets revoked. *)
let test_multithreaded_background () =
  let run n =
    let r = mk ~strategy:Revoker.Reloaded ~background_threads:n () in
    ignore
      (M.spawn r.m ~name:"app" ~core:3 (fun ctx ->
           let rng = Sim.Prng.create ~seed:31 in
           let table = Mrs.malloc r.mrs ctx 4096 in
           let slot i = Cap.set_addr table (Cap.base table + (i * 16)) in
           for i = 0 to 255 do
             M.store_cap ctx (slot i) (Mrs.malloc r.mrs ctx 512)
           done;
           for _ = 1 to 8000 do
             let i = Sim.Prng.int rng 256 in
             let c = M.load_cap ctx (slot i) in
             if Cap.tag c then Mrs.free r.mrs ctx c;
             M.store_cap ctx (slot i) (Mrs.malloc r.mrs ctx 512)
           done;
           Mrs.finish r.mrs ctx));
    M.run r.m;
    let concs =
      List.map (fun p -> p.Revoker.concurrent_cycles) (Revoker.records r.rv)
    in
    (Revoker.revocation_count r.rv, List.fold_left ( + ) 0 concs)
  in
  let revs1, conc1 = run 1 in
  let revs3, conc3 = run 3 in
  check "same order of revocations" true (abs (revs1 - revs3) <= 2);
  check "helpers shorten the concurrent phase" true
    (float_of_int conc3 < 0.8 *. float_of_int conc1)

(* §4.1 ablation: a per-PTE flag instead of the in-core generation bit
   makes the stop-the-world phase pay for every mapped page. *)
let test_pte_flag_ablation () =
  let run flag =
    let r = mk ~strategy:Revoker.Reloaded ~pte_flag_barrier:flag () in
    ignore
      (M.spawn r.m ~name:"app" ~core:3 (fun ctx ->
           for _ = 1 to 4000 do
             let c = Mrs.malloc r.mrs ctx 512 in
             M.store_u64 ctx c 1L;
             Mrs.free r.mrs ctx c
           done;
           Mrs.finish r.mrs ctx));
    M.run r.m;
    let stws = List.map (fun p -> p.Revoker.stw_cycles) (Revoker.records r.rv) in
    List.fold_left ( + ) 0 stws / max 1 (List.length stws)
  in
  let fast = run false and slow = run true in
  check "generation bit beats per-PTE updates" true (slow > 2 * fast)

(* Phase-time ordering across strategies on a common workload (figure 9's
   qualitative claim). *)
let test_phase_ordering () =
  let mean_stw strategy =
    let r = mk ~strategy () in
    ignore
      (M.spawn r.m ~name:"app" ~core:3 (fun ctx ->
           let table = Mrs.malloc r.mrs ctx 4096 in
           let slot i = Cap.set_addr table (Cap.base table + (i * 16)) in
           let rng = Sim.Prng.create ~seed:37 in
           (* objects hold capabilities in their bodies, so their pages
              are capability-dirty and must be swept *)
           let fresh () =
             let c = Mrs.malloc r.mrs ctx 512 in
             M.store_cap ctx (Cap.set_addr c (Cap.base c)) table;
             c
           in
           for i = 0 to 255 do
             M.store_cap ctx (slot i) (fresh ())
           done;
           for _ = 1 to 6000 do
             let i = Sim.Prng.int rng 256 in
             let c = M.load_cap ctx (slot i) in
             if Cap.tag c then Mrs.free r.mrs ctx c;
             M.store_cap ctx (slot i) (fresh ())
           done;
           Mrs.finish r.mrs ctx));
    M.run r.m;
    let recs = Revoker.records r.rv in
    let sum = List.fold_left (fun a p -> a + p.Revoker.stw_cycles) 0 recs in
    float_of_int sum /. float_of_int (max 1 (List.length recs))
  in
  let chv = mean_stw Revoker.Cherivoke in
  let cor = mean_stw Revoker.Cornucopia in
  let rel = mean_stw Revoker.Reloaded in
  (* at this small scale Cornucopia re-dirties almost everything, so its
     STW approaches CHERIvoke's; the load-barrier's orders-of-magnitude
     win is the robust claim *)
  check "reloaded stw tiny vs cherivoke" true (rel < 0.15 *. chv);
  check "reloaded stw below cornucopia" true (rel < cor)

(* ---- epoch arithmetic and wakeup edges (§2.2.3) ---- *)

let test_clean_target_parity () =
  (* painted while the counter is even (no epoch in flight): the next
     full epoch suffices, +2. Painted mid-epoch (odd): the in-flight
     epoch may already have swept past it, so it must also survive the
     one after, +3. *)
  check_int "even 0" 2 (Epoch.clean_target 0);
  check_int "odd 1" 4 (Epoch.clean_target 1);
  check_int "even 2" 4 (Epoch.clean_target 2);
  check_int "odd 3" 6 (Epoch.clean_target 3)

let test_clean_target_saturates () =
  (* near max_int the +2/+3 must saturate, not wrap negative: memory
     painted that late is simply never considered clean *)
  check_int "even near max" max_int (Epoch.clean_target (max_int - 1));
  check_int "odd at max" max_int (Epoch.clean_target max_int);
  check "monotone at the edge" true
    (Epoch.clean_target (max_int - 3) <= Epoch.clean_target (max_int - 1))

let test_is_clean_boundary () =
  let m = M.create cfg in
  let e = Epoch.create () in
  ignore
    (M.spawn m ~name:"rev" ~core:0 ~user:false (fun ctx ->
         check "not clean at 0" false (Epoch.is_clean e ~painted_at:0);
         Epoch.begin_revocation e ctx;
         check "mid-epoch not clean" false (Epoch.is_clean e ~painted_at:0);
         check "in progress" true (Epoch.in_progress e);
         Epoch.end_revocation e ctx;
         (* counter = 2 = clean_target 0: clean at exactly the target *)
         check "clean exactly at target" true (Epoch.is_clean e ~painted_at:0);
         check "painted mid-epoch still dirty" false
           (Epoch.is_clean e ~painted_at:1);
         Epoch.begin_revocation e ctx;
         check "still dirty at 3" false (Epoch.is_clean e ~painted_at:1);
         Epoch.end_revocation e ctx;
         check "clean at 4" true (Epoch.is_clean e ~painted_at:1)));
  M.run m

let test_wait_clean_wakes_at_target () =
  let m = M.create cfg in
  let e = Epoch.create () in
  let observed = ref (-1) in
  ignore
    (M.spawn m ~name:"waiter" ~core:1 (fun ctx ->
         Epoch.wait_clean e ctx ~painted_at:0;
         observed := Epoch.counter e));
  ignore
    (M.spawn m ~name:"rev" ~core:0 ~user:false (fun ctx ->
         M.sleep ctx 100;
         Epoch.begin_revocation e ctx;
         (* the begin broadcast wakes the waiter, but counter = 1 is
            below clean_target 0 = 2: it must go back to sleep *)
         M.sleep ctx 100;
         check_int "waiter not woken early" (-1) !observed;
         Epoch.end_revocation e ctx;
         M.sleep ctx 100));
  M.run m;
  check_int "woke exactly at clean target" 2 !observed

let () =
  let soundness =
    List.map
      (fun s ->
        Alcotest.test_case
          (Printf.sprintf "no stale caps after epoch (%s)" (Revoker.strategy_name s))
          `Quick (test_soundness s))
      [ Revoker.Cherivoke; Revoker.Cornucopia; Revoker.Reloaded; Revoker.Cheriot_filter ]
  in
  let uar =
    List.map
      (fun s ->
        Alcotest.test_case
          (Printf.sprintf "UAR stopped (%s)" (Revoker.strategy_name s))
          `Quick (test_uar_stopped s))
      [ Revoker.Cherivoke; Revoker.Cornucopia; Revoker.Reloaded; Revoker.Cheriot_filter ]
  in
  Alcotest.run "revoker"
    [
      ("soundness", soundness);
      ( "uar",
        uar
        @ [
            Alcotest.test_case "UAR succeeds without sweeps" `Quick
              test_uar_possible_without_revocation;
          ] );
      ( "mechanisms",
        [
          Alcotest.test_case "cheriot immediate" `Quick test_cheriot_immediate;
          Alcotest.test_case "reloaded store invariant" `Quick
            test_reloaded_store_invariant;
          Alcotest.test_case "cornucopia stale copies" `Quick
            test_cornucopia_needs_rescan;
          Alcotest.test_case "mid-epoch free held over" `Quick
            test_free_during_epoch_held_over;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "clean_target parity" `Quick
            test_clean_target_parity;
          Alcotest.test_case "clean_target saturates" `Quick
            test_clean_target_saturates;
          Alcotest.test_case "is_clean boundary" `Quick test_is_clean_boundary;
          Alcotest.test_case "wait_clean wakes at target" `Quick
            test_wait_clean_wakes_at_target;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "multithreaded background" `Slow
            test_multithreaded_background;
          Alcotest.test_case "pte-flag ablation" `Quick test_pte_flag_ablation;
          Alcotest.test_case "phase ordering" `Slow test_phase_ordering;
        ] );
    ]
