(* Analysis-layer tests: the shadow-state sanitizer and the vector-clock
   happens-before checker, on small churn rigs with and without seeded
   protocol mutations. Mirrors bin/ccr_check's rig so the mutation
   coverage also runs under alcotest. *)

module Machine = Sim.Machine
module Cap = Cheri.Capability
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs
module Epoch = Ccr.Epoch
module Revmap = Ccr.Revmap
module Sanitizer = Analysis.Sanitizer
module Race = Analysis.Race

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg =
  { Machine.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }

(* Scatter aliases of a victim allocation through memory, a register and
   a kernel hoard, free it, and churn until its batch's epoch closes. *)
let churn_rig ?(fault = None) strategy =
  let m = Machine.create cfg in
  Machine.attach_tracer m (Some (Sim.Trace.create ()));
  let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
  let hoards = Kernel.Hoard.create () in
  let rv = Revoker.create m ~strategy ~core:2 ~hoards () in
  let mrs = Mrs.create m ~alloc ~revoker:rv () in
  let san = Sanitizer.attach ~revoker:rv m in
  let race = Race.attach m in
  Revoker.inject_fault rv fault;
  ignore
    (Machine.spawn m ~name:"app" ~core:3 (fun ctx ->
         let regs = Machine.regs (Machine.self ctx) in
         let table = Mrs.malloc mrs ctx 4096 in
         Sim.Regfile.set regs 0 table;
         let slot i = Cap.set_addr table (Cap.base table + (i * 16)) in
         let victim = Mrs.malloc mrs ctx 128 in
         Machine.store_u64 ctx victim 0x5ec2e7L;
         Machine.store_cap ctx (slot 0) victim;
         Sim.Regfile.set regs 5 victim;
         ignore (Kernel.Hoard.register hoards ctx victim);
         let painted_at = Epoch.counter (Revoker.epoch rv) in
         Mrs.free mrs ctx victim;
         let rng = Sim.Prng.create ~seed:11 in
         while not (Epoch.is_clean (Revoker.epoch rv) ~painted_at) do
           let c = Mrs.malloc mrs ctx (64 + (16 * Sim.Prng.int rng 16)) in
           Machine.store_u64 ctx c 1L;
           Mrs.free mrs ctx c
         done;
         Mrs.finish mrs ctx));
  Machine.run m;
  Sanitizer.finish san;
  (san, race)

let test_clean_runs () =
  List.iter
    (fun strategy ->
      let san, race = churn_rig strategy in
      check
        (Revoker.strategy_name strategy ^ " sanitizer clean")
        true (Sanitizer.ok san);
      check_int
        (Revoker.strategy_name strategy ^ " zero violations")
        0
        (Sanitizer.total_violations san);
      check (Revoker.strategy_name strategy ^ " race free") true (Race.ok race))
    [ Revoker.Reloaded; Revoker.Cornucopia; Revoker.Cherivoke ]

(* Each seeded mutation must be caught, and under its own rule: the
   reports are diagnoses, not a generic tripwire. *)
let test_mutation_detected (strategy, fault, rule) () =
  let san, _ = churn_rig ~fault:(Some fault) strategy in
  check "sanitizer trips" false (Sanitizer.ok san);
  check (rule ^ " reported") true (Sanitizer.count san rule > 0)

let mutations =
  [
    (Revoker.Reloaded, Revoker.Early_dequarantine, "early-dequarantine");
    (Revoker.Cornucopia, Revoker.Skip_shootdown, "missing-shootdown");
    (Revoker.Reloaded, Revoker.Skip_hoard_scan, "missing-hoard-scan");
  ]

(* A thread clearing revocation bitmap state off to the side of the
   epoch protocol is a race; the same clear ordered behind a
   stop-the-world is not. The free stays below the quarantine trigger
   so the only Unpaint racing the app's Paint is the rogue's. *)
let rogue_rig ~sync =
  let m = Machine.create cfg in
  Machine.attach_tracer m (Some (Sim.Trace.create ()));
  let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
  let rv = Revoker.create m ~strategy:Revoker.Reloaded ~core:2 () in
  let mrs = Mrs.create m ~alloc ~revoker:rv () in
  let race = Race.attach m in
  let victim = ref None in
  ignore
    (Machine.spawn m ~name:"app" ~core:3 (fun ctx ->
         let c = Mrs.malloc mrs ctx 256 in
         Machine.store_u64 ctx c 1L;
         Mrs.free mrs ctx c;
         victim := Some (Cap.base c, Cap.length c);
         (* give the rogue a window before tearing the runtime down *)
         Machine.sleep ctx 5000;
         Mrs.finish mrs ctx));
  ignore
    (Machine.spawn m ~name:"rogue" ~core:1 ~user:false (fun ctx ->
         while !victim = None do
           Machine.sleep ctx 50
         done;
         let addr, size = Option.get !victim in
         if sync then ignore (Machine.stop_the_world ctx (fun () -> ()));
         Revmap.clear (Revoker.revmap rv) ctx ~addr ~size));
  Machine.run m;
  race

let test_rogue_clear_races () =
  let race = rogue_rig ~sync:false in
  check "rogue clear detected" false (Race.ok race);
  match Race.races race with
  | [ r ] ->
      check "rule" true (r.Race.c_rule = "unordered-clear");
      check_int "rogue core" 1 r.Race.c_core;
      check_int "painting core" 3 r.Race.c_paint_core
  | rs -> Alcotest.failf "expected exactly one race, got %d" (List.length rs)

let test_synced_clear_no_race () =
  let race = rogue_rig ~sync:true in
  check "stw-ordered clear is not a race" true (Race.ok race)

let () =
  Alcotest.run "analysis"
    [
      ( "sanitizer",
        Alcotest.test_case "clean strategies report nothing" `Slow
          test_clean_runs
        :: List.map
             (fun ((strategy, fault, rule) as mu) ->
               Alcotest.test_case
                 (Printf.sprintf "%s + %s -> %s"
                    (Revoker.strategy_name strategy)
                    (Revoker.fault_name fault)
                    rule)
                 `Slow
                 (test_mutation_detected mu))
             mutations );
      ( "race",
        [
          Alcotest.test_case "rogue bitmap clear races" `Quick
            test_rogue_clear_races;
          Alcotest.test_case "stw-ordered clear does not" `Quick
            test_synced_clear_no_race;
        ] );
    ]
