(* Workload generator tests: the object table, profiles, and the three
   benchmark drivers (at miniature scale). *)

module M = Sim.Machine
module Cap = Cheri.Capability
module Profile = Workload.Profile
module Objtable = Workload.Objtable
module Result = Workload.Result

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- objtable ---- *)

let with_table f =
  let cfg = { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 } in
  let rt = Ccr.Runtime.create ~config:cfg Ccr.Runtime.Baseline in
  let out = ref None in
  ignore (M.spawn rt.Ccr.Runtime.machine ~name:"app" ~core:3 (fun ctx ->
      let t = Objtable.create rt ctx ~slots:600 in
      out := Some (f rt t ctx)));
  M.run rt.Ccr.Runtime.machine;
  Option.get !out

let test_objtable_put_get () =
  with_table (fun rt t ctx ->
      check_int "slots" 600 (Objtable.slots t);
      check_int "empty" 0 (Objtable.live_count t);
      let c = Ccr.Runtime.malloc rt ctx 64 in
      Objtable.put t ctx 5 c ~size:(Cap.length c);
      check "live" true (Objtable.is_live t 5);
      check_int "count" 1 (Objtable.live_count t);
      check_int "size" (Cap.length c) (Objtable.size_of t 5);
      check "get" true (Cap.equal c (Objtable.get t ctx 5));
      Objtable.kill t 5;
      check "dead" false (Objtable.is_live t 5);
      (* the stale capability is still IN memory (dangling) *)
      check "stale cap remains" true (Cap.tag (Objtable.get t ctx 5)))

let test_objtable_random () =
  with_table (fun rt t ctx ->
      let rng = Sim.Prng.create ~seed:3 in
      check "no live yet" true (Objtable.random_live t rng ~hot:0.1 ~weight:0.5 = None);
      for i = 0 to 99 do
        let c = Ccr.Runtime.malloc rt ctx 32 in
        Objtable.put t ctx i c ~size:32
      done;
      (match Objtable.random_live t rng ~hot:0.1 ~weight:0.5 with
      | Some i -> check "live pick is live" true (Objtable.is_live t i)
      | None -> Alcotest.fail "no live slot found");
      match Objtable.random_dead t rng with
      | Some i -> check "dead pick is dead" false (Objtable.is_live t i)
      | None -> Alcotest.fail "no dead slot found")

let test_objtable_spans_chunks () =
  with_table (fun rt t ctx ->
      (* slot 300 lives in the second 256-slot chunk *)
      let c = Ccr.Runtime.malloc rt ctx 64 in
      Objtable.put t ctx 300 c ~size:64;
      check "cross-chunk get" true (Cap.equal c (Objtable.get t ctx 300)))

(* ---- profiles ---- *)

let test_profiles_sane () =
  List.iter
    (fun (p : Profile.t) ->
      check (p.Profile.name ^ " slots") true (p.Profile.slots > 0);
      check (p.Profile.name ^ " ops") true (p.Profile.ops > 0);
      check (p.Profile.name ^ " probs") true
        (p.Profile.churn +. p.Profile.kill_only +. p.Profile.birth_only < 1.0);
      check (p.Profile.name ^ " heap need") true
        (Profile.heap_bytes_needed p > 0))
    Profile.spec_all;
  (* eight SPEC benchmarks, with hmmer contributing two workloads *)
  check_int "nine workloads" 9 (List.length Profile.spec_all);
  check_int "seven engage revocation" 7 (List.length Profile.spec_revoking);
  check "find works" true (Profile.find "omnetpp").Profile.engages_revocation;
  check "find raises" true
    (try ignore (Profile.find "nonesuch"); false with Not_found -> true)

let test_size_dist () =
  let rng = Sim.Prng.create ~seed:5 in
  for _ = 1 to 200 do
    let s = Profile.sample_size rng (Profile.Uniform (32, 64)) in
    check "uniform in range" true (s >= 32 && s < 64)
  done;
  check_int "fixed" 48 (Profile.sample_size rng (Profile.Fixed 48));
  for _ = 1 to 100 do
    let s =
      Profile.sample_size rng
        (Profile.Mixture [ (0.5, Profile.Fixed 16); (0.5, Profile.Fixed 32) ])
    in
    check "mixture picks a branch" true (s = 16 || s = 32)
  done

let test_size_compiled_unchanged () =
  (* the precomputed-CDF sampler must be draw-for-draw identical to the
     declarative one: same seed, same draw index, same value — for every
     spec profile's distribution and for ad hoc mixtures *)
  let dists =
    List.map (fun (p : Profile.t) -> (p.Profile.name, p.Profile.size))
      Profile.spec_all
    @ [
        ("fixed", Profile.Fixed 48);
        ("uniform", Profile.Uniform (32, 4096));
        ( "skewed mixture",
          Profile.Mixture
            [
              (0.01, Profile.Fixed 16);
              (3.0, Profile.Uniform (64, 128));
              (0.5, Profile.Fixed 65536);
            ] );
        ("one arm", Profile.Mixture [ (1.0, Profile.Uniform (16, 17)) ]);
      ]
  in
  List.iter
    (fun (name, d) ->
      let c = Profile.sizer_of d in
      List.iter
        (fun seed ->
          let r1 = Sim.Prng.create ~seed in
          let r2 = Sim.Prng.create ~seed in
          for i = 1 to 2_000 do
            let a = Profile.sample_size r1 d in
            let b = Profile.sample r2 c in
            if a <> b then
              Alcotest.failf "%s seed %d draw %d: sample_size=%d sample=%d"
                name seed i a b
          done)
        [ 1; 42; 1337 ])
    dists;
  (* and the spec profiles' cached size_c is the compiled form of size *)
  List.iter
    (fun (p : Profile.t) ->
      let r1 = Sim.Prng.create ~seed:7 in
      let r2 = Sim.Prng.create ~seed:7 in
      for _ = 1 to 500 do
        check_int
          (p.Profile.name ^ " size_c in sync")
          (Profile.sample_size r1 p.Profile.size)
          (Profile.sample r2 p.Profile.size_c)
      done)
    Profile.spec_all

(* ---- spec engine ---- *)

let tiny = { (Profile.find "hmmer_retro") with Profile.ops = 8_000; slots = 400 }

let test_spec_deterministic () =
  let r1 = Workload.Spec.run ~seed:9 ~mode:Ccr.Runtime.Baseline tiny in
  let r2 = Workload.Spec.run ~seed:9 ~mode:Ccr.Runtime.Baseline tiny in
  check_int "same wall" r1.Result.wall_cycles r2.Result.wall_cycles;
  check_int "same bus" r1.Result.bus_total r2.Result.bus_total;
  let r3 = Workload.Spec.run ~seed:10 ~mode:Ccr.Runtime.Baseline tiny in
  check "different seed differs" true (r3.Result.wall_cycles <> r1.Result.wall_cycles)

let test_spec_modes_complete () =
  List.iter
    (fun mode ->
      let r = Workload.Spec.run ~seed:4 ~mode tiny in
      check "ops done" true (r.Result.ops_done = tiny.Profile.ops);
      check "wall positive" true (r.Result.wall_cycles > 0);
      match mode with
      | Ccr.Runtime.Baseline -> check "no phases" true (r.Result.phases = [])
      | Ccr.Runtime.Safe _ -> check "mrs stats present" true (r.Result.mrs <> None))
    Ccr.Runtime.all_modes

let test_spec_overhead_ordering () =
  (* the fundamental result at miniature scale: every safe mode costs
     more wall time than baseline, and CHERIvoke pauses the most *)
  let wall mode = (Workload.Spec.run ~seed:4 ~mode tiny).Result.wall_cycles in
  let base = wall Ccr.Runtime.Baseline in
  let chv = wall (Ccr.Runtime.Safe Ccr.Revoker.Cherivoke) in
  let rel = wall (Ccr.Runtime.Safe Ccr.Revoker.Reloaded) in
  check "cherivoke over baseline" true (chv > base);
  check "reloaded over baseline" true (rel > base);
  check "reloaded at most cherivoke-ish" true
    (float_of_int rel < 1.05 *. float_of_int chv)

(* ---- pgbench ---- *)

let pg_tiny =
  { Workload.Pgbench.default_config with Workload.Pgbench.transactions = 300 }

let test_pgbench_runs () =
  let r = Workload.Pgbench.run ~config:pg_tiny ~mode:(Ccr.Runtime.Safe Ccr.Revoker.Reloaded) () in
  check "latencies collected" true (Array.length r.Result.latencies_us > 200);
  check "throughput positive" true (r.Result.throughput > 0.0);
  Array.iter (fun l -> check "latency positive" true (l > 0.0)) r.Result.latencies_us

let test_pgbench_rate_mode () =
  let cfg = { pg_tiny with Workload.Pgbench.rate = Some 2000.0 } in
  let r = Workload.Pgbench.run ~config:cfg ~mode:Ccr.Runtime.Baseline () in
  (* scheduled slower than capacity: throughput tracks the schedule *)
  check "throughput near schedule" true
    (r.Result.throughput > 1000.0 && r.Result.throughput < 2600.0)

(* ---- grpc ---- *)

let test_grpc_runs () =
  let cfg =
    { Workload.Grpc.default_config with Workload.Grpc.messages = 2_000;
      session_slots = 2_000 }
  in
  let r = Workload.Grpc.run ~config:cfg ~mode:(Ccr.Runtime.Safe Ccr.Revoker.Cornucopia) () in
  check "latencies" true (Array.length r.Result.latencies_us > 1500);
  check "qps positive" true (r.Result.throughput > 0.0)

let prop_spec_safe_never_cheaper =
  QCheck.Test.make ~name:"safe modes never reduce CPU time" ~count:5
    (QCheck.make QCheck.Gen.(int_range 1 1000))
    (fun seed ->
      let base = Workload.Spec.run ~seed ~mode:Ccr.Runtime.Baseline tiny in
      let safe =
        Workload.Spec.run ~seed ~mode:(Ccr.Runtime.Safe Ccr.Revoker.Paint_sync) tiny
      in
      safe.Result.cpu_cycles >= base.Result.cpu_cycles)

let () =
  Alcotest.run "workload"
    [
      ( "objtable",
        [
          Alcotest.test_case "put/get" `Quick test_objtable_put_get;
          Alcotest.test_case "random" `Quick test_objtable_random;
          Alcotest.test_case "chunks" `Quick test_objtable_spans_chunks;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "sane" `Quick test_profiles_sane;
          Alcotest.test_case "size dist" `Quick test_size_dist;
          Alcotest.test_case "compiled sizer unchanged" `Quick
            test_size_compiled_unchanged;
        ] );
      ( "spec",
        [
          Alcotest.test_case "deterministic" `Quick test_spec_deterministic;
          Alcotest.test_case "modes complete" `Slow test_spec_modes_complete;
          Alcotest.test_case "overhead ordering" `Slow test_spec_overhead_ordering;
        ] );
      ( "pgbench",
        [
          Alcotest.test_case "runs" `Slow test_pgbench_runs;
          Alcotest.test_case "rate mode" `Slow test_pgbench_rate_mode;
        ] );
      ("grpc", [ Alcotest.test_case "runs" `Slow test_grpc_runs ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_spec_safe_never_cheaper ] );
    ]
