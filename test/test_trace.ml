(* Event tracing tests: the ring recorder and the machine's emissions. *)

module M = Sim.Machine
module Trace = Sim.Trace
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_ring_basics () =
  let t = Trace.create ~capacity:4 () in
  check_int "empty" 0 (Trace.length t);
  Trace.emit t ~time:10 ~core:0 Trace.Clg_fault 0x1000;
  Trace.emit t ~time:20 ~core:1 Trace.Stw_request 2;
  check_int "two" 2 (Trace.length t);
  check_int "no drops" 0 (Trace.dropped t);
  (match Trace.to_list t with
  | [ a; b ] ->
      check_int "oldest first" 10 a.Trace.time;
      check_int "then next" 20 b.Trace.time;
      check "kind" true (a.Trace.kind = Trace.Clg_fault)
  | _ -> Alcotest.fail "expected two events");
  Trace.clear t;
  check_int "cleared" 0 (Trace.length t)

let test_ring_overwrite () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.emit t ~time:i ~core:0 (Trace.Custom "x") i
  done;
  check_int "capacity bound" 3 (Trace.length t);
  check_int "dropped" 2 (Trace.dropped t);
  match Trace.to_list t with
  | [ a; _; c ] ->
      check_int "oldest retained" 3 a.Trace.time;
      check_int "newest" 5 c.Trace.time
  | _ -> Alcotest.fail "expected three events"

let test_subscribers_lossless () =
  let t = Trace.create ~capacity:4 () in
  let seen = ref 0 and last_arg = ref (-1) in
  let id =
    Trace.subscribe t (fun e ->
        incr seen;
        last_arg := e.Trace.arg)
  in
  for i = 1 to 100 do
    Trace.emit t ~time:i ~core:0 (Trace.Custom "x") i
  done;
  check_int "ring stays bounded" 4 (Trace.length t);
  check_int "total counts everything" 100 (Trace.total t);
  check_int "dropped accounted" 96 (Trace.dropped t);
  check_int "subscriber saw every event" 100 !seen;
  check_int "in order" 100 !last_arg;
  Trace.unsubscribe t id;
  Trace.emit t ~time:101 ~core:0 (Trace.Custom "x") 101;
  check_int "unsubscribed callback silent" 100 !seen;
  check_int "emission still recorded" 101 (Trace.total t)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_dump_reports_drops () =
  let t = Trace.create ~capacity:2 () in
  for i = 1 to 5 do
    Trace.emit t ~time:i ~core:0 (Trace.Custom "x") i
  done;
  let buf = Buffer.create 256 in
  let f = Format.formatter_of_buffer buf in
  Trace.dump f t;
  Format.pp_print_flush f ();
  check "dump discloses the truncation" true
    (contains (Buffer.contents buf) "dropped")

let test_machine_emissions () =
  let cfg = { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 } in
  let m = M.create cfg in
  let tr = Trace.create () in
  M.attach_tracer m (Some tr);
  let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
  let rv = Revoker.create m ~strategy:Revoker.Reloaded ~core:2 () in
  let mrs = Mrs.create m ~alloc ~revoker:rv () in
  ignore
    (M.spawn m ~name:"app" ~core:3 (fun ctx ->
         let table = Mrs.malloc mrs ctx 64 in
         for _ = 1 to 3000 do
           let c = Mrs.malloc mrs ctx 256 in
           let slot = Cheri.Capability.set_addr table (Cheri.Capability.base table) in
           Sim.Machine.store_cap ctx slot c;
           (* barriered loads: these trap when an epoch is in flight *)
           ignore (Sim.Machine.load_cap ctx slot);
           Mrs.free mrs ctx c
         done;
         Mrs.finish mrs ctx));
  M.run m;
  let events = Trace.to_list tr in
  let count kind = List.length (List.filter (fun e -> e.Trace.kind = kind) events) in
  check "epochs traced" true (count Trace.Epoch_begin >= 1);
  check_int "balanced begin/end" (count Trace.Epoch_begin) (count Trace.Epoch_end);
  check "stw triple per epoch" true
    (count Trace.Stw_request = count Trace.Stw_stopped
    && count Trace.Stw_stopped = count Trace.Stw_release
    && count Trace.Stw_request = count Trace.Epoch_begin);
  check "faults traced" true (count Trace.Clg_fault >= 1);
  check "batches traced" true (count Trace.Revoke_batch >= 1);
  (* timestamps are monotone per core *)
  let last = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt last e.Trace.core) in
      check "monotone per core" true (e.Trace.time >= prev);
      Hashtbl.replace last e.Trace.core e.Trace.time)
    events;
  (* dump renders *)
  let buf = Buffer.create 512 in
  let f = Format.formatter_of_buffer buf in
  Trace.dump f ~last:10 tr;
  Format.pp_print_flush f ();
  check "dump renders" true (String.length (Buffer.contents buf) > 0)

let test_detach () =
  let cfg = { M.default_config with heap_bytes = 1 lsl 20; mem_bytes = 8 lsl 20 } in
  let m = M.create cfg in
  check "no tracer by default" true (M.tracer m = None);
  let tr = Trace.create () in
  M.attach_tracer m (Some tr);
  M.attach_tracer m None;
  ignore (M.spawn m ~name:"a" ~core:0 (fun ctx -> M.charge ctx 10));
  M.run m;
  check_int "nothing recorded when detached" 0 (Trace.length tr)

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "ring basics" `Quick test_ring_basics;
          Alcotest.test_case "overwrite" `Quick test_ring_overwrite;
          Alcotest.test_case "subscribers lossless" `Quick
            test_subscribers_lossless;
          Alcotest.test_case "dump reports drops" `Quick
            test_dump_reports_drops;
          Alcotest.test_case "machine emissions" `Quick test_machine_emissions;
          Alcotest.test_case "detach" `Quick test_detach;
        ] );
    ]
