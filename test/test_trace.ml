(* Event tracing tests: the ring recorder and the machine's emissions. *)

module M = Sim.Machine
module Trace = Sim.Trace
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_ring_basics () =
  let t = Trace.create ~capacity:4 () in
  check_int "empty" 0 (Trace.length t);
  Trace.emit t ~time:10 ~core:0 Trace.Clg_fault 0x1000;
  Trace.emit t ~time:20 ~core:1 Trace.Stw_request 2;
  check_int "two" 2 (Trace.length t);
  check_int "no drops" 0 (Trace.dropped t);
  (match Trace.to_list t with
  | [ a; b ] ->
      check_int "oldest first" 10 a.Trace.time;
      check_int "then next" 20 b.Trace.time;
      check "kind" true (a.Trace.kind = Trace.Clg_fault)
  | _ -> Alcotest.fail "expected two events");
  Trace.clear t;
  check_int "cleared" 0 (Trace.length t)

let test_ring_overwrite () =
  (* capacity rounds up to the next power of two: 3 -> 4 (documented) *)
  let t = Trace.create ~capacity:3 () in
  check_int "effective capacity" 4 (Trace.capacity t);
  for i = 1 to 5 do
    Trace.emit t ~time:i ~core:0 (Trace.Custom "x") i
  done;
  check_int "capacity bound" 4 (Trace.length t);
  check_int "dropped" 1 (Trace.dropped t);
  match Trace.to_list t with
  | [ a; _; _; d ] ->
      check_int "oldest retained" 2 a.Trace.time;
      check_int "newest" 5 d.Trace.time
  | _ -> Alcotest.fail "expected four events"

(* Exactness at every point around the wrap boundary of a power-of-two
   ring: length/total/dropped and the retained window must be right at
   [cap - 1], [cap], and [cap + k] emissions. *)
let test_ring_wrap_boundary () =
  let cap = 8 in
  let t = Trace.create ~capacity:cap () in
  check_int "exact power of two kept" cap (Trace.capacity t);
  let emitted = ref 0 in
  let emit_to n =
    while !emitted < n do
      incr emitted;
      Trace.emit t ~time:!emitted ~core:0 (Trace.Custom "x") !emitted
    done
  in
  let check_window label =
    let n = !emitted in
    check_int (label ^ ": total") n (Trace.total t);
    check_int (label ^ ": length") (min n cap) (Trace.length t);
    check_int (label ^ ": dropped") (max 0 (n - cap)) (Trace.dropped t);
    let expect = List.init (min n cap) (fun i -> n - min n cap + 1 + i) in
    Alcotest.(check (list int))
      (label ^ ": retained window, oldest first")
      expect
      (List.map (fun e -> e.Trace.time) (Trace.to_list t))
  in
  emit_to (cap - 1);
  check_window "one short of full";
  emit_to cap;
  check_window "exactly full";
  emit_to (cap + 1);
  check_window "first overwrite";
  emit_to (2 * cap);
  check_window "full wrap";
  emit_to ((3 * cap) + 3);
  check_window "mid-ring after several wraps";
  (* clear resets the accounting, not the capacity *)
  Trace.clear t;
  check_int "cleared" 0 (Trace.length t);
  check_int "cleared total" 0 (Trace.total t);
  check_int "capacity survives clear" cap (Trace.capacity t)

let test_subscribers_lossless () =
  let t = Trace.create ~capacity:4 () in
  let seen = ref 0 and last_arg = ref (-1) in
  let id =
    Trace.subscribe t (fun e ->
        incr seen;
        last_arg := e.Trace.arg)
  in
  for i = 1 to 100 do
    Trace.emit t ~time:i ~core:0 (Trace.Custom "x") i
  done;
  check_int "ring stays bounded" 4 (Trace.length t);
  check_int "total counts everything" 100 (Trace.total t);
  check_int "dropped accounted" 96 (Trace.dropped t);
  check_int "subscriber saw every event" 100 !seen;
  check_int "in order" 100 !last_arg;
  Trace.unsubscribe t id;
  Trace.emit t ~time:101 ~core:0 (Trace.Custom "x") 101;
  check_int "unsubscribed callback silent" 100 !seen;
  check_int "emission still recorded" 101 (Trace.total t)

let test_multi_subscriber_order () =
  let t = Trace.create () in
  let log = ref [] in
  let id1 = Trace.subscribe t (fun e -> log := (1, e.Trace.arg) :: !log) in
  let id2 = Trace.subscribe t (fun e -> log := (2, e.Trace.arg) :: !log) in
  let id3 = Trace.subscribe t (fun e -> log := (3, e.Trace.arg) :: !log) in
  Trace.emit t ~time:1 ~core:0 (Trace.Custom "x") 7;
  Trace.emit t ~time:2 ~core:0 (Trace.Custom "x") 8;
  Alcotest.(check (list (pair int int)))
    "every subscriber sees every event, in subscription order"
    [ (1, 7); (2, 7); (3, 7); (1, 8); (2, 8); (3, 8) ]
    (List.rev !log);
  (* removing the middle subscriber must not disturb the others' order *)
  Trace.unsubscribe t id2;
  Trace.emit t ~time:3 ~core:0 (Trace.Custom "x") 9;
  Alcotest.(check (list (pair int int)))
    "remaining subscribers keep their relative order"
    [ (1, 7); (2, 7); (3, 7); (1, 8); (2, 8); (3, 8); (1, 9); (3, 9) ]
    (List.rev !log);
  Trace.unsubscribe t id1;
  Trace.unsubscribe t id3

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let count_lines_with s sub =
  List.length (List.filter (fun l -> contains l sub) (String.split_on_char '\n' s))

(* Run [f] with stderr redirected to a file; return what it wrote. *)
let capturing_stderr f =
  let tmp = Filename.temp_file "trace_test" ".err" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stderr in
  flush stderr;
  Unix.dup2 fd Unix.stderr;
  Fun.protect
    ~finally:(fun () ->
      flush stderr;
      Unix.dup2 saved Unix.stderr;
      Unix.close saved;
      Unix.close fd)
    f;
  let ic = open_in tmp in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  s

let test_drop_warning_once () =
  let t = Trace.create ~capacity:2 () in
  Trace.set_warn_on_drop t true;
  let out =
    capturing_stderr (fun () ->
        for i = 1 to 50 do
          Trace.emit t ~time:i ~core:0 (Trace.Custom "x") i
        done)
  in
  check_int "warns exactly once despite 48 drops" 1
    (count_lines_with out "capacity");
  (* clear resets the one-shot: a fresh run may warn again *)
  Trace.clear t;
  let out =
    capturing_stderr (fun () ->
        for i = 1 to 5 do
          Trace.emit t ~time:i ~core:0 (Trace.Custom "x") i
        done)
  in
  check_int "warns once more after clear" 1 (count_lines_with out "capacity");
  (* disabled recorders never warn *)
  let q = Trace.create ~capacity:2 () in
  let out =
    capturing_stderr (fun () ->
        for i = 1 to 50 do
          Trace.emit q ~time:i ~core:0 (Trace.Custom "x") i
        done)
  in
  check_int "silent when not enabled" 0 (count_lines_with out "capacity")

let test_dump_reports_drops () =
  let t = Trace.create ~capacity:2 () in
  for i = 1 to 5 do
    Trace.emit t ~time:i ~core:0 (Trace.Custom "x") i
  done;
  let buf = Buffer.create 256 in
  let f = Format.formatter_of_buffer buf in
  Trace.dump f t;
  Format.pp_print_flush f ();
  check "dump discloses the truncation" true
    (contains (Buffer.contents buf) "dropped")

let test_machine_emissions () =
  let cfg = { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 } in
  let m = M.create cfg in
  let tr = Trace.create () in
  M.attach_tracer m (Some tr);
  let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
  let rv = Revoker.create m ~strategy:Revoker.Reloaded ~core:2 () in
  let mrs = Mrs.create m ~alloc ~revoker:rv () in
  ignore
    (M.spawn m ~name:"app" ~core:3 (fun ctx ->
         let table = Mrs.malloc mrs ctx 64 in
         for _ = 1 to 3000 do
           let c = Mrs.malloc mrs ctx 256 in
           let slot = Cheri.Capability.set_addr table (Cheri.Capability.base table) in
           Sim.Machine.store_cap ctx slot c;
           (* barriered loads: these trap when an epoch is in flight *)
           ignore (Sim.Machine.load_cap ctx slot);
           Mrs.free mrs ctx c
         done;
         Mrs.finish mrs ctx));
  M.run m;
  let events = Trace.to_list tr in
  let count kind = List.length (List.filter (fun e -> e.Trace.kind = kind) events) in
  check "epochs traced" true (count Trace.Epoch_begin >= 1);
  check_int "balanced begin/end" (count Trace.Epoch_begin) (count Trace.Epoch_end);
  check "stw triple per epoch" true
    (count Trace.Stw_request = count Trace.Stw_stopped
    && count Trace.Stw_stopped = count Trace.Stw_release
    && count Trace.Stw_request = count Trace.Epoch_begin);
  check "faults traced" true (count Trace.Clg_fault >= 1);
  check "batches traced" true (count Trace.Revoke_batch >= 1);
  (* timestamps are monotone per core *)
  let last = Hashtbl.create 4 in
  List.iter
    (fun e ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt last e.Trace.core) in
      check "monotone per core" true (e.Trace.time >= prev);
      Hashtbl.replace last e.Trace.core e.Trace.time)
    events;
  (* dump renders *)
  let buf = Buffer.create 512 in
  let f = Format.formatter_of_buffer buf in
  Trace.dump f ~last:10 tr;
  Format.pp_print_flush f ();
  check "dump renders" true (String.length (Buffer.contents buf) > 0)

(* ---- recovery-event arguments ----

   The recovery kinds carry load-bearing payloads the model checker's
   branch points key on: [Epoch_resume] names the still-open (odd)
   counter and the retry attempt, [Epoch_abort] the restored (even)
   counter and the consecutive-abort count, [Stw_abandon] the threads
   still unparked and the cycles the watchdog waited. *)

let recovery_rig ~recovery () =
  let cfg =
    { M.default_config with heap_bytes = 1 lsl 20; mem_bytes = 8 lsl 20 }
  in
  let m = M.create cfg in
  let tr = Trace.create ~capacity:16384 () in
  M.attach_tracer m (Some tr);
  let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
  let rv = Revoker.create m ~strategy:Revoker.Reloaded ~core:0 ~recovery () in
  let mrs = Mrs.create m ~alloc ~revoker:rv () in
  (m, tr, rv, mrs)

(* a table slot holding a capability makes its page cap-dirty, so the
   epoch's sweep visits it and the sweep hook gets consulted *)
let free_one_cap_region mrs ctx =
  let table = Mrs.malloc mrs ctx 64 in
  let victim = Mrs.malloc mrs ctx 128 in
  let slot =
    Cheri.Capability.set_addr table (Cheri.Capability.base table)
  in
  M.store_cap ctx slot victim;
  Mrs.free mrs ctx victim;
  Mrs.flush mrs ctx

let by_kind events kind =
  List.filter (fun e -> e.Trace.kind = kind) events

let test_epoch_resume_args () =
  let recovery =
    { Revoker.default_recovery with max_crash_retries = 2; backoff_base = 1_000 }
  in
  let m, tr, rv, mrs = recovery_rig ~recovery () in
  let crashes = ref 1 in
  Revoker.set_sweep_hook rv
    (Some
       (fun _ctx _vp ->
         if !crashes > 0 then begin
           decr crashes;
           raise Revoker.Induced_crash
         end));
  ignore
    (M.spawn m ~name:"app" ~core:1 (fun ctx ->
         free_one_cap_region mrs ctx;
         Mrs.wait_drained mrs ctx;
         Mrs.finish mrs ctx));
  M.run m;
  let events = Trace.to_list tr in
  (match by_kind events Trace.Epoch_resume with
  | [ e ] ->
      check "resume names the still-open epoch (odd counter)" true
        (e.Trace.arg land 1 = 1);
      check_int "first retry attempt" 1 e.Trace.arg2
  | l ->
      Alcotest.failf "expected exactly one epoch-resume, saw %d"
        (List.length l));
  check_int "within budget: no abort" 0
    (List.length (by_kind events Trace.Epoch_abort));
  check "the resumed epoch completed" true
    (by_kind events Trace.Epoch_end <> [])

let test_epoch_abort_args () =
  let recovery =
    {
      Revoker.default_recovery with
      max_crash_retries = 1;
      max_epoch_aborts = 5;
      backoff_base = 1_000;
    }
  in
  let m, tr, rv, mrs = recovery_rig ~recovery () in
  let crashes = ref 2 in
  Revoker.set_sweep_hook rv
    (Some
       (fun _ctx _vp ->
         if !crashes > 0 then begin
           decr crashes;
           raise Revoker.Induced_crash
         end));
  ignore
    (M.spawn m ~name:"app" ~core:1 (fun ctx ->
         free_one_cap_region mrs ctx;
         Mrs.wait_drained mrs ctx;
         Mrs.finish mrs ctx));
  M.run m;
  let events = Trace.to_list tr in
  (* crash, resume (attempt 1), crash again: retry budget exhausted *)
  (match by_kind events Trace.Epoch_resume with
  | [ e ] -> check_int "one resume before giving up" 1 e.Trace.arg2
  | l -> Alcotest.failf "expected one epoch-resume, saw %d" (List.length l));
  (match by_kind events Trace.Epoch_abort with
  | [ e ] ->
      check "abort restores an even counter" true (e.Trace.arg land 1 = 0);
      check_int "first consecutive abort" 1 e.Trace.arg2
  | l -> Alcotest.failf "expected one epoch-abort, saw %d" (List.length l));
  (* the requeued batch drains on the retried epoch *)
  check "retried epoch completed" true (by_kind events Trace.Epoch_end <> []);
  check_int "quarantine drained" 0 (Mrs.quarantine_bytes mrs)

let test_stw_abandon_args () =
  let watchdog = 30_000 in
  let recovery =
    {
      Revoker.default_recovery with
      watchdog_timeout = watchdog;
      max_quiesce_retries = 1;
      max_epoch_aborts = 50;
      backoff_base = 1_000;
    }
  in
  let m, tr, _rv, mrs = recovery_rig ~recovery () in
  ignore
    (M.spawn m ~name:"app" ~core:1 (fun ctx ->
         free_one_cap_region mrs ctx;
         (* every syscall now declares a drain far past the watchdog, so
            a quiesce landing inside one must abandon *)
         M.set_drain_hook m (Some (fun _ctx _drain -> 1_000_000_000));
         Kernel.Syscall.perform_service ctx ~service:200_000;
         M.set_drain_hook m None;
         Mrs.wait_drained mrs ctx;
         Mrs.finish mrs ctx));
  M.run m;
  let events = Trace.to_list tr in
  let abandons = by_kind events Trace.Stw_abandon in
  check "watchdog fired at least once" true (abandons <> []);
  List.iter
    (fun e ->
      check "all threads had parked (the drain stalled, not a thread)" true
        (e.Trace.arg = 0);
      check "a positive wait was recorded" true (e.Trace.arg2 > 0);
      check "abandoned before the deadline passed in full" true
        (e.Trace.arg2 < watchdog))
    abandons;
  (* every quiesce either stops the world or abandons it — never both,
     never neither *)
  let n k = List.length (by_kind events k) in
  check_int "request = stopped + abandon"
    (n Trace.Stw_request)
    (n Trace.Stw_stopped + n Trace.Stw_abandon);
  (* the exhausted retry budget surfaces as epoch aborts with an even
     (restored) counter and a growing consecutive count *)
  let aborts = by_kind events Trace.Epoch_abort in
  check "watchdog exhaustion aborted at least one epoch" true (aborts <> []);
  List.iteri
    (fun i e ->
      check "abort restores an even counter" true (e.Trace.arg land 1 = 0);
      check_int "consecutive-abort count" (i + 1) e.Trace.arg2)
    aborts;
  check "aborted epochs were retried to completion" true
    (by_kind events Trace.Epoch_end <> []);
  check_int "quarantine drained" 0 (Mrs.quarantine_bytes mrs)

let test_detach () =
  let cfg = { M.default_config with heap_bytes = 1 lsl 20; mem_bytes = 8 lsl 20 } in
  let m = M.create cfg in
  check "no tracer by default" true (M.tracer m = None);
  let tr = Trace.create () in
  M.attach_tracer m (Some tr);
  M.attach_tracer m None;
  ignore (M.spawn m ~name:"a" ~core:0 (fun ctx -> M.charge ctx 10));
  M.run m;
  check_int "nothing recorded when detached" 0 (Trace.length tr)

let () =
  Alcotest.run "trace"
    [
      ( "trace",
        [
          Alcotest.test_case "ring basics" `Quick test_ring_basics;
          Alcotest.test_case "overwrite" `Quick test_ring_overwrite;
          Alcotest.test_case "wrap boundary" `Quick test_ring_wrap_boundary;
          Alcotest.test_case "drop warning once" `Quick
            test_drop_warning_once;
          Alcotest.test_case "subscribers lossless" `Quick
            test_subscribers_lossless;
          Alcotest.test_case "multi-subscriber order" `Quick
            test_multi_subscriber_order;
          Alcotest.test_case "dump reports drops" `Quick
            test_dump_reports_drops;
          Alcotest.test_case "machine emissions" `Quick test_machine_emissions;
          Alcotest.test_case "epoch-resume args" `Quick test_epoch_resume_args;
          Alcotest.test_case "epoch-abort args" `Quick test_epoch_abort_args;
          Alcotest.test_case "stw-abandon args" `Quick test_stw_abandon_args;
          Alcotest.test_case "detach" `Quick test_detach;
        ] );
    ]
