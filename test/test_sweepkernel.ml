(* Word-scan kernel equivalence tests.

   The tag-bitmap kernels (Tagmem.Mem.iter_tagged_words / find_tagged /
   count_tags / popcount64) must agree with naive per-granule loops on
   arbitrary tag patterns, and Sweep.sweep_page's word-scan fast path
   must be *bit-for-bit* equivalent to the per-granule reference loop:
   same stats, same cycles charged, same cache state and bus traffic,
   same trace events — on any tag pattern, painted set, page
   writability and non-temporal setting. The reference loop below is a
   verbatim copy of the pre-kernel implementation, built from the same
   public Machine API. *)

module M = Sim.Machine
module Cap = Cheri.Capability
module Mem = Tagmem.Mem
module Cache = Tagmem.Cache
module Revmap = Ccr.Revmap
module Sweep = Ccr.Sweep
module Layout = Vm.Layout
module Trace = Sim.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- Mem kernel properties ---- *)

let naive_popcount n =
  let c = ref 0 in
  for b = 0 to 63 do
    if not (Int64.equal (Int64.logand (Int64.shift_right_logical n b) 1L) 0L)
    then incr c
  done;
  !c

let prop_popcount =
  QCheck.Test.make ~name:"popcount64 matches bit loop" ~count:500 QCheck.int64
    (fun n -> Mem.popcount64 n = naive_popcount n)

(* Plant a tag pattern: tagged granules get a minimal capability, the
   rest a bare word (which clears any tag). *)
let plant m pattern =
  let c = Cap.set_bounds (Cap.root ~length:(1 lsl 20)) ~base:0 ~length:16 in
  List.iteri
    (fun g tagged ->
      if tagged then Mem.write_cap m (g * 16) (Cap.set_addr c (g * 16))
      else Mem.write_u64 m (g * 16) 7L)
    pattern

let naive_count m ~lo ~hi =
  let n = ref 0 in
  Mem.iter_granules m ~lo ~hi (fun _ tagged -> if tagged then incr n);
  !n

let naive_find m ~lo ~hi =
  let found = ref None in
  (try
     Mem.iter_granules m ~lo ~hi (fun a tagged ->
         if tagged then begin
           found := Some a;
           raise Exit
         end)
   with Exit -> ());
  !found

(* Random pattern over 4 words of granules plus a random sub-range, so
   partial edge words and all-zero words are both exercised. *)
let range_gen =
  QCheck.Gen.(
    let* pattern = list_size (return 256) bool in
    let* lo = int_bound 255 in
    let* len = int_bound (256 - lo) in
    return (pattern, lo * 16, (lo * 16) + (len * 16)))

let range_arb =
  QCheck.make
    ~print:(fun (p, lo, hi) ->
      Printf.sprintf "lo=%d hi=%d tags=%s" lo hi
        (String.concat "" (List.map (fun b -> if b then "1" else "0") p)))
    range_gen

let prop_count_tags =
  QCheck.Test.make ~name:"count_tags matches per-granule loop" ~count:300
    range_arb (fun (pattern, lo, hi) ->
      let m = Mem.create ~size:4096 in
      plant m pattern;
      Mem.count_tags m ~lo ~hi = naive_count m ~lo ~hi)

let prop_find_tagged =
  QCheck.Test.make ~name:"find_tagged matches per-granule loop" ~count:300
    range_arb (fun (pattern, lo, hi) ->
      let m = Mem.create ~size:4096 in
      plant m pattern;
      Mem.find_tagged m ~lo ~hi = naive_find m ~lo ~hi)

let prop_iter_tagged_words =
  QCheck.Test.make ~name:"iter_tagged_words reconstructs the bitmap"
    ~count:300 range_arb (fun (pattern, lo, hi) ->
      let m = Mem.create ~size:4096 in
      plant m pattern;
      (* rebuild the tag set from the words and compare against the
         per-granule view over the same range *)
      let from_words = Hashtbl.create 64 in
      Mem.iter_tagged_words m ~lo ~hi (fun base word ->
          for b = 0 to 63 do
            if
              not
                (Int64.equal
                   (Int64.logand (Int64.shift_right_logical word b) 1L)
                   0L)
            then Hashtbl.replace from_words (base + (b * 16)) ()
          done);
      let ok = ref true in
      Mem.iter_granules m ~lo ~hi (fun a tagged ->
          if tagged <> Hashtbl.mem from_words a then ok := false);
      (* no bits reported outside the range *)
      Hashtbl.iter
        (fun a () -> if a < lo || a >= hi then ok := false)
        from_words;
      !ok)

let test_tag_word_alignment () =
  let m = Mem.create ~size:4096 in
  check "aligned ok" true (Int64.equal (Mem.tag_word m 1024) 0L);
  check "unaligned rejected" true
    (try
       ignore (Mem.tag_word m 16);
       false
     with Invalid_argument _ -> true)

(* ---- sweep_page equivalence ---- *)

let cfg = { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }

let heap_base m = (M.layout m).Layout.heap_base

(* Verbatim copy of the per-granule sweep loop this PR replaced, built
   on the same public Machine API. *)
let sweep_page_reference ?(non_temporal = false) ctx revmap ~pte =
  let read =
    if non_temporal then M.kern_read_cap_nt else M.kern_read_cap_stream
  in
  let base = Vm.Phys.frame_addr pte.Vm.Pte.frame in
  let tagged = ref 0 and revoked = ref 0 and upgraded = ref false in
  let n = Vm.Phys.page_size / 16 in
  for i = 0 to n - 1 do
    let pa = base + (i * 16) in
    let c = read ctx ~pa in
    if Cap.tag c then begin
      incr tagged;
      if Revmap.test revmap ctx (Cap.base c) then begin
        if (not pte.Vm.Pte.writable) && not !upgraded then begin
          M.charge ctx (Sim.Cost.trap + Sim.Cost.pmap_lock + Sim.Cost.pte_update);
          upgraded := true
        end;
        M.kern_clear_tag ctx ~pa;
        incr revoked
      end
    end
  done;
  M.trace_emit (M.machine ctx) ~time:(M.now ctx) ~core:(M.core_id ctx)
    ~pid:(M.ctx_pid ctx) ~arg2:!revoked Sim.Trace.Page_sweep base;
  {
    Sweep.granules = n;
    tagged = !tagged;
    revoked = !revoked;
    upgraded = !upgraded;
  }

type observation = {
  o_stats : Sweep.stats;
  o_time : int;
  o_cache : (int * int * int * int * int); (* l1, l2, bus_r, bus_w, accesses *)
  o_tags : int; (* tags left in the frame *)
  o_events : (int * int * int * int) list; (* time, core, arg, arg2 *)
}

(* Build a machine, plant [pattern] in heap page 0 (tagged granules get
   self-referential caps; painted ones are painted in the revmap), and
   run [sweep] over that page on core 3. Painting happens identically
   in both machines, so charges diverge only if the sweeps do. *)
let observe ~pattern ~writable ~non_temporal sweep =
  let m = M.create cfg in
  let tr = Trace.create ~capacity:65536 () in
  M.attach_tracer m (Some tr);
  let out = ref None in
  ignore
    (M.spawn m ~name:"app" ~core:3 (fun ctx ->
         M.map ctx ~vaddr:(heap_base m) ~len:(4 * 4096) ~writable;
         let rm = Revmap.create m in
         let pa0, pte =
           match Vm.Aspace.translate (M.aspace m) (heap_base m) with
           | Some (pa, pte) -> (pa, pte)
           | None -> Alcotest.fail "unmapped"
         in
         (* plant host-side so read-only pages can be seeded too *)
         let mem = M.mem m in
         let heap = Cap.root ~length:(1 lsl 32) in
         List.iteri
           (fun g action ->
             let va = heap_base m + (g * 16) in
             match action with
             | `Untagged -> Mem.write_u64 mem (pa0 + (g * 16)) 3L
             | `Tagged | `Painted ->
                 let c = Cap.set_bounds heap ~base:va ~length:16 in
                 Mem.write_cap mem (pa0 + (g * 16)) c;
                 if action = `Painted then
                   Revmap.paint rm ctx ~addr:va ~size:16)
           pattern;
         let t0 = M.now ctx in
         let st = sweep ~non_temporal ctx rm ~pte in
         let cs = M.cache_stats m 3 in
         out :=
           Some
             {
               o_stats = st;
               o_time = M.now ctx - t0;
               o_cache =
                 ( cs.Cache.l1_hits,
                   cs.Cache.l2_hits,
                   cs.Cache.bus_reads,
                   cs.Cache.bus_writes,
                   cs.Cache.accesses );
               o_tags = Mem.count_tags mem ~lo:pa0 ~hi:(pa0 + 4096);
               o_events = [];
             }));
  M.run m;
  let events = ref [] in
  Trace.iter tr (fun e ->
      if e.Trace.kind = Trace.Page_sweep then
        events := (e.Trace.time, e.Trace.core, e.Trace.arg, e.Trace.arg2) :: !events);
  { (Option.get !out) with o_events = List.rev !events }

let equivalent ~pattern ~writable ~non_temporal =
  let a =
    observe ~pattern ~writable ~non_temporal (fun ~non_temporal ctx rm ~pte ->
        sweep_page_reference ~non_temporal ctx rm ~pte)
  in
  let b =
    observe ~pattern ~writable ~non_temporal (fun ~non_temporal ctx rm ~pte ->
        Sweep.sweep_page ~non_temporal ctx rm ~pte)
  in
  a = b

let pattern_of_bools = List.map (fun (tagged, painted) ->
    if not tagged then `Untagged else if painted then `Painted else `Tagged)

let pat_gen =
  QCheck.Gen.(
    let* pairs = list_size (return 256) (pair bool bool) in
    let* writable = bool in
    let* non_temporal = bool in
    return (pattern_of_bools pairs, writable, non_temporal))

let pat_arb =
  QCheck.make
    ~print:(fun (p, w, nt) ->
      Printf.sprintf "writable=%b nt=%b pattern=%s" w nt
        (String.concat ""
           (List.map
              (function `Untagged -> "." | `Tagged -> "t" | `Painted -> "P")
              p)))
    pat_gen

let prop_sweep_equivalent =
  QCheck.Test.make ~name:"word-scan sweep == per-granule reference" ~count:60
    pat_arb (fun (pattern, writable, non_temporal) ->
      equivalent ~pattern ~writable ~non_temporal)

(* deterministic edges: empty page, full page, single tags at the page
   and word boundaries, read-only upgrade path *)
let fixed g action =
  List.init 256 (fun i -> if i = g then action else `Untagged)

let test_sweep_edges () =
  let all c = List.init 256 (fun _ -> c) in
  List.iter
    (fun (name, pattern, writable, nt) ->
      check name true (equivalent ~pattern ~writable ~non_temporal:nt))
    [
      ("empty page", all `Untagged, true, false);
      ("full tagged", all `Tagged, true, false);
      ("full painted", all `Painted, true, false);
      ("full painted nt", all `Painted, true, true);
      ("first granule", fixed 0 `Painted, true, false);
      ("last granule", fixed 255 `Painted, true, false);
      ("word boundary 63", fixed 63 `Painted, true, false);
      ("word boundary 64", fixed 64 `Painted, true, false);
      ("line boundary 3", fixed 3 `Tagged, true, false);
      ("ro upgrade", fixed 17 `Painted, false, false);
      ("ro upgrade nt", fixed 200 `Painted, false, true);
      ("ro no upgrade", fixed 17 `Tagged, false, false);
    ]

let test_sweep_counts () =
  (* sanity on one concrete pattern: the fast path itself (not just
     equality with the reference) produces the right counts *)
  let pattern =
    List.init 256 (fun i ->
        if i mod 7 = 0 then `Painted else if i mod 3 = 0 then `Tagged
        else `Untagged)
  in
  let o =
    observe ~pattern ~writable:true ~non_temporal:false
      (fun ~non_temporal ctx rm ~pte -> Sweep.sweep_page ~non_temporal ctx rm ~pte)
  in
  let painted = List.length (List.filter (( = ) `Painted) pattern) in
  let tagged = List.length (List.filter (( <> ) `Untagged) pattern) in
  check_int "granules" 256 o.o_stats.Sweep.granules;
  check_int "tagged" tagged o.o_stats.Sweep.tagged;
  check_int "revoked" painted o.o_stats.Sweep.revoked;
  check_int "tags left" (tagged - painted) o.o_tags;
  check_int "one sweep event" 1 (List.length o.o_events)

let () =
  Alcotest.run "sweepkernel"
    [
      ( "kernels",
        List.map QCheck_alcotest.to_alcotest
          [ prop_popcount; prop_count_tags; prop_find_tagged;
            prop_iter_tagged_words ]
        @ [ Alcotest.test_case "tag_word alignment" `Quick test_tag_word_alignment ] );
      ( "sweep",
        [
          Alcotest.test_case "edge patterns" `Quick test_sweep_edges;
          Alcotest.test_case "counts" `Quick test_sweep_counts;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_sweep_equivalent ] );
    ]
