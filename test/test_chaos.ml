(* lib/chaos tests: deterministic schedule planning, and the recovery
   machinery the chaos engine exists to exercise — resumable epochs
   (checkpointed sweep cursor), the quiesce watchdog with epoch abort,
   the graceful-degradation strategy ladder, and the tenant-kill path
   through Os.kill — all with the sanitizer and race detector attached. *)

module Machine = Sim.Machine
module Trace = Sim.Trace
module Cap = Cheri.Capability
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs
module Epoch = Ccr.Epoch
module Sanitizer = Analysis.Sanitizer
module Race = Analysis.Race

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- schedule planning (pure) ---- *)

let test_plan_deterministic () =
  let plan () =
    Chaos.plan ~seed:9 ~strategy:Revoker.Reloaded ~horizon:1_000_000 ()
  in
  let a = plan () and b = plan () in
  check "same seed plans the same schedule" true (a = b);
  check "schedule is non-empty for a sweeping strategy" true
    (a.Chaos.faults <> []);
  List.iter
    (fun f ->
      check "arming point inside the horizon's first half" true
        (f.Chaos.f_at >= 0 && f.Chaos.f_at <= 500_000);
      check "positive injection budget" true (f.Chaos.f_count > 0))
    a.Chaos.faults;
  let c = Chaos.plan ~seed:10 ~strategy:Revoker.Reloaded ~horizon:1_000_000 () in
  check "different seed, different schedule id" true
    (a.Chaos.sched_id <> c.Chaos.sched_id)

let test_plan_applicability () =
  let kinds ~strategy =
    (Chaos.plan ~seed:3 ~strategy ~horizon:500_000 ()).Chaos.faults
    |> List.map (fun f -> f.Chaos.f_kind)
  in
  let paint = kinds ~strategy:Revoker.Paint_sync in
  check "paint+sync never sweeps: only non-sweep faults apply" true
    (List.for_all
       (fun k ->
         k = Chaos.Quarantine_stall || k = Chaos.Tenant_kill
         || k = Chaos.Inflight_loss)
       paint);
  check "reloaded sends no per-page shootdowns" true
    (not (List.mem Chaos.Shootdown_ack_loss (kinds ~strategy:Revoker.Reloaded)));
  check "cornucopia can lose shootdown acks" true
    (List.mem Chaos.Shootdown_ack_loss (kinds ~strategy:Revoker.Cornucopia));
  List.iter
    (fun s ->
      List.iter
        (fun k ->
          check "planned kinds are all applicable" true (Chaos.applicable s k))
        (kinds ~strategy:s))
    Revoker.extended_strategies

(* ---- a bare revoker rig (the ccr_check mutation rig, parameterized) ---- *)

let cfg =
  {
    Machine.default_config with
    heap_bytes = 4 lsl 20;
    mem_bytes = 16 lsl 20;
    seed = 11;
  }

type rig = {
  m : Machine.t;
  tr : Trace.t;
  rv : Revoker.t;
  mrs : Mrs.t;
  san : Sanitizer.t;
}

let mk ?(strategy = Revoker.Reloaded) ?recovery () =
  let m = Machine.create cfg in
  let tr = Trace.create ~capacity:65536 () in
  Machine.attach_tracer m (Some tr);
  let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
  let hoards = Kernel.Hoard.create () in
  let rv = Revoker.create m ~strategy ~core:2 ~hoards ?recovery () in
  let mrs = Mrs.create m ~alloc ~revoker:rv () in
  let san = Sanitizer.attach ~revoker:rv m in
  { m; tr; rv; mrs; san }

let count_kind tr kind =
  let n = ref 0 in
  Trace.iter tr (fun e -> if e.Trace.kind = kind then incr n);
  !n

(* Page_sweep frames partitioned by the first Epoch_resume event. *)
let sweeps_around_resume tr =
  let pre = ref [] and post = ref [] and resumed = ref false in
  Trace.iter tr (fun e ->
      match e.Trace.kind with
      | Trace.Epoch_resume -> resumed := true
      | Trace.Page_sweep ->
          if !resumed then post := e.Trace.arg :: !post
          else pre := e.Trace.arg :: !pre
      | _ -> ());
  (List.sort_uniq compare !pre, List.sort_uniq compare !post)

(* Sixteen page-sized blocks, each made capability-dirty by a self cap,
   all freed into one batch; the app then idles in [wait_drained] so
   every page visit comes from the revoker's sweep (no self-healing). *)
let crash_run ~strategy ~crash_at =
  let r = mk ~strategy () in
  let visits = ref 0 in
  Revoker.set_sweep_hook r.rv
    (Some
       (fun ctx _vp ->
         if Machine.core_id ctx = 2 then begin
           incr visits;
           if !visits = crash_at then raise Revoker.Induced_crash
         end));
  let clean = ref false in
  ignore
    (Machine.spawn r.m ~name:"app" ~core:3 (fun ctx ->
         let blocks = Array.init 16 (fun _ -> Mrs.malloc r.mrs ctx 4096) in
         Array.iter (fun b -> Machine.store_cap ctx b b) blocks;
         let painted_at = Epoch.counter (Revoker.epoch r.rv) in
         Array.iter (fun b -> Mrs.free r.mrs ctx b) blocks;
         Mrs.flush r.mrs ctx;
         Mrs.wait_drained r.mrs ctx;
         clean := Epoch.is_clean (Revoker.epoch r.rv) ~painted_at;
         Mrs.finish r.mrs ctx));
  Machine.run r.m;
  Sanitizer.finish r.san;
  (r, clean)

let test_reloaded_resume_disjoint () =
  let r, clean = crash_run ~strategy:Revoker.Reloaded ~crash_at:6 in
  let rs = Revoker.recovery_stats r.rv in
  check_int "exactly one crash retry" 1 rs.Revoker.sweep_crash_retries;
  check_int "no epoch abort: the crash was resumable" 0 rs.Revoker.epoch_aborts;
  check_int "one Epoch_resume event" 1 (count_kind r.tr Trace.Epoch_resume);
  let pre, post = sweeps_around_resume r.tr in
  check_int "five pages swept before the crash (the 6th visit died)" 5
    (List.length pre);
  check "the resumed pass swept the remaining pages" true (post <> []);
  check "resume re-visits ONLY unvisited pages (checkpoint held)" true
    (List.for_all (fun f -> not (List.mem f pre)) post);
  check "quarantine drained to a clean epoch" true !clean;
  check "sanitizer clean across the crash" true (Sanitizer.ok r.san)

let test_cherivoke_restart_overlaps () =
  (* contrast: Cherivoke's stop-the-world sweep has no mid-pass
     checkpoint — a crash resets the cursor and the retry re-sweeps
     pages the dead pass already covered *)
  let r, clean = crash_run ~strategy:Revoker.Cherivoke ~crash_at:6 in
  let rs = Revoker.recovery_stats r.rv in
  check "crash was retried" true (rs.Revoker.sweep_crash_retries >= 1);
  check "resume announced" true (count_kind r.tr Trace.Epoch_resume >= 1);
  let pre, post = sweeps_around_resume r.tr in
  check "restarted pass re-sweeps pages from before the crash" true
    (List.exists (fun f -> List.mem f pre) post);
  check "quarantine still drained to a clean epoch" true !clean;
  check "sanitizer clean across the restart" true (Sanitizer.ok r.san)

(* ---- quiesce watchdog, epoch abort, is_clean across abort ---- *)

let test_watchdog_abort_recover () =
  let recovery =
    {
      Revoker.default_recovery with
      watchdog_timeout = 30_000;
      max_quiesce_retries = 2;
      backoff_base = 1_000;
    }
  in
  let r = mk ~strategy:Revoker.Cherivoke ~recovery () in
  (* every syscall entered from here on declares an absurd drain, so any
     stop-the-world attempted during one must time out and abandon *)
  Machine.set_drain_hook r.m (Some (fun _ctx _drain -> 1_000_000_000));
  let painted_at = ref 0 in
  let mid_unclean = ref false in
  ignore
    (Trace.subscribe r.tr (fun e ->
         if e.Trace.kind = Trace.Epoch_abort then begin
           check "abort retracts to an even counter" true (e.Trace.arg mod 2 = 0);
           if not (Epoch.is_clean (Revoker.epoch r.rv) ~painted_at:!painted_at)
           then mid_unclean := true
         end));
  let clean = ref false in
  ignore
    (Machine.spawn r.m ~name:"app" ~core:3 (fun ctx ->
         let b = Mrs.malloc r.mrs ctx 4096 in
         Machine.store_cap ctx b b;
         painted_at := Epoch.counter (Revoker.epoch r.rv);
         Mrs.free r.mrs ctx b;
         Mrs.flush r.mrs ctx;
         (* one long syscall: the revoker's quiesce attempts land inside
            it, and each one trips the watchdog *)
         Kernel.Syscall.perform_service ctx ~service:200_000;
         Machine.set_drain_hook r.m None;
         Mrs.wait_drained r.mrs ctx;
         clean := Epoch.is_clean (Revoker.epoch r.rv) ~painted_at:!painted_at;
         Mrs.finish r.mrs ctx));
  Machine.run r.m;
  Sanitizer.finish r.san;
  let rs = Revoker.recovery_stats r.rv in
  check "watchdog fired repeatedly" true (rs.Revoker.quiesce_timeouts >= 2);
  check "quiesce retry budget exhausted into an epoch abort" true
    (rs.Revoker.epoch_aborts >= 1);
  check "abandoned stop-the-worlds announced" true
    (count_kind r.tr Trace.Stw_abandon >= 2);
  check "epoch abort announced" true (count_kind r.tr Trace.Epoch_abort >= 1);
  check "exponential backoff was charged" true (rs.Revoker.backoff_cycles > 0);
  check "is_clean is FALSE while the epoch stands aborted" true !mid_unclean;
  check "the retried epoch eventually completed: is_clean holds" true !clean;
  check "sanitizer clean across abort and retry" true (Sanitizer.ok r.san)

(* ---- graceful degradation ladder ---- *)

let test_downshift_ladder () =
  let recovery =
    {
      Revoker.default_recovery with
      max_crash_retries = 0;
      max_epoch_aborts = 1;
      backoff_base = 1_000;
    }
  in
  let r = mk ~strategy:Revoker.Reloaded ~recovery () in
  let consults = ref 0 in
  Revoker.set_sweep_hook r.rv
    (Some
       (fun ctx _vp ->
         if Machine.core_id ctx = 2 then begin
           incr consults;
           (* first two passes die on their first page; with a zero
              crash-retry budget each death aborts its epoch, and each
              abort downshifts one rung *)
           if !consults <= 2 then raise Revoker.Induced_crash
         end));
  let clean = ref false in
  ignore
    (Machine.spawn r.m ~name:"app" ~core:3 (fun ctx ->
         let blocks = Array.init 8 (fun _ -> Mrs.malloc r.mrs ctx 4096) in
         Array.iter (fun b -> Machine.store_cap ctx b b) blocks;
         let painted_at = Epoch.counter (Revoker.epoch r.rv) in
         Array.iter (fun b -> Mrs.free r.mrs ctx b) blocks;
         Mrs.flush r.mrs ctx;
         Mrs.wait_drained r.mrs ctx;
         clean := Epoch.is_clean (Revoker.epoch r.rv) ~painted_at;
         Mrs.finish r.mrs ctx));
  Machine.run r.m;
  Sanitizer.finish r.san;
  let rs = Revoker.recovery_stats r.rv in
  check "two epochs aborted" true (rs.Revoker.epoch_aborts >= 2);
  check_int "two rungs descended" 2 rs.Revoker.downshifts;
  check "settled on the Cherivoke floor" true
    (Revoker.strategy r.rv = Revoker.Cherivoke);
  let shifts = ref [] in
  Trace.iter r.tr (fun e ->
      if e.Trace.kind = Trace.Strategy_downshift then
        shifts := (e.Trace.arg, e.Trace.arg2) :: !shifts);
  check "ladder order: reloaded -> cornucopia -> cherivoke" true
    (List.rev !shifts
    = [
        (Revoker.strategy_code Revoker.Reloaded,
         Revoker.strategy_code Revoker.Cornucopia);
        (Revoker.strategy_code Revoker.Cornucopia,
         Revoker.strategy_code Revoker.Cherivoke);
      ]);
  check "the floor strategy finished the job" true !clean;
  check "sanitizer clean across both downshifts" true (Sanitizer.ok r.san)

(* ---- tenant kill through the OS layer ---- *)

let test_tenant_kill_recovers () =
  let config = { cfg with mem_bytes = 48 lsl 20 } in
  let os = Os.create ~config (Runtime.Safe Revoker.Reloaded) in
  let m = Os.machine os in
  let tr = Trace.create ~capacity:262144 () in
  Machine.attach_tracer m (Some tr);
  let san =
    Sanitizer.attach ?revoker:(Os.runtime (Os.init os)).Runtime.revoker m
  in
  Os.set_on_process os (fun p ->
      Sanitizer.register_process san ~pid:(Os.pid p)
        ?revoker:(Os.runtime p).Runtime.revoker ());
  let race = Race.attach m in
  Os.spawn_reaper os;
  let killed = ref 0 in
  let victim = ref None in
  ignore
    (Machine.spawn m ~name:"init" ~core:0 (fun ctx ->
         let p =
           Os.fork os ctx ~parent:(Os.init os) ~name:"victim" ~core:1
             (fun cctx proc ->
               (* churn forever with live quarantine: only the kill ends
                  this process *)
               let rt = Os.runtime proc in
               let rec forever () =
                 let c = Runtime.malloc rt cctx 256 in
                 Machine.store_cap cctx c c;
                 Runtime.free rt cctx c;
                 forever ()
               in
               forever ())
         in
         victim := Some p;
         Machine.sleep ctx 300_000;
         killed := Os.kill os ctx p;
         Os.wait_children os ctx;
         Os.shutdown os ctx));
  Machine.run m;
  Sanitizer.finish san;
  check "kill tore down at least the victim's user thread" true (!killed >= 1);
  check "victim was reaped" true
    (match !victim with Some p -> Os.proc_state p = Os.Reaped | None -> false);
  check "Proc_kill announced with the flushed quarantine" true
    (count_kind tr Trace.Proc_kill = 1);
  check "sanitizer clean across the kill" true (Sanitizer.ok san);
  check "no races: the kill is a synchronization edge" true (Race.ok race)

(* ---- Mrs.finish abandonment is loud ---- *)

let test_abandonment_traced () =
  let r = mk ~strategy:Revoker.Reloaded () in
  ignore
    (Machine.spawn r.m ~name:"app" ~core:3 (fun ctx ->
         let c = Mrs.malloc r.mrs ctx 4096 in
         Machine.store_u64 ctx c 1L;
         (* 4 KiB is far below the 128 KiB policy minimum: no epoch will
            ever trigger, so finish must abandon it *)
         Mrs.free r.mrs ctx c;
         Mrs.finish r.mrs ctx));
  Machine.run r.m;
  Sanitizer.finish r.san;
  check_int "one abandonment event" 1
    (count_kind r.tr Trace.Quarantine_abandoned);
  let bytes = ref 0 in
  Trace.iter r.tr (fun e ->
      if e.Trace.kind = Trace.Quarantine_abandoned then bytes := e.Trace.arg);
  check_int "event carries the dropped byte count" (Mrs.abandoned_bytes r.mrs)
    !bytes;
  check "stats agree with the accessor" true
    ((Mrs.stats r.mrs).Mrs.abandoned_bytes = !bytes && !bytes >= 4096);
  check "sanitizer tolerates announced abandonment" true (Sanitizer.ok r.san)

let () =
  Alcotest.run "chaos"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic schedules" `Quick
            test_plan_deterministic;
          Alcotest.test_case "strategy applicability" `Quick
            test_plan_applicability;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "reloaded resume is disjoint" `Quick
            test_reloaded_resume_disjoint;
          Alcotest.test_case "cherivoke restart overlaps" `Quick
            test_cherivoke_restart_overlaps;
          Alcotest.test_case "watchdog abort and retry" `Quick
            test_watchdog_abort_recover;
          Alcotest.test_case "downshift ladder" `Quick test_downshift_ladder;
          Alcotest.test_case "tenant kill" `Quick test_tenant_kill_recovers;
          Alcotest.test_case "abandonment is traced" `Quick
            test_abandonment_traced;
        ] );
    ]
