(* Fleet-simulator tests: balancer determinism through failovers, exact
   fleet-wide accounting, jobs-count invariance of the simulated
   outcome, and crash-recoverable revocation on a restarted host. *)

module Cost = Sim.Cost
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Policy = Ccr.Policy
module Loadgen = Service.Loadgen
module Histogram = Stats.Histogram
module Balancer = Fleet.Balancer
module Failplan = Fleet.Failplan
module Host = Fleet.Host

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let small_config =
  {
    Fleet.default_config with
    hosts = 3;
    requests = 900;
    pattern = Loadgen.Diurnal { low = 60_000.0; high = 180_000.0; period_us = 3_000.0 };
    users = 50_000;
    seed = 11;
  }

(* ---- balancer determinism under crash/redistribute ---- *)

let route_all bal ~up n =
  List.init n (fun i ->
      Balancer.route bal ~now:(i * 1000) ~user:(i * 7919) ~up)

let test_balancer_deterministic () =
  List.iter
    (fun strategy ->
      let mk () = Balancer.create strategy ~hosts:4 ~est_service_cycles:500 in
      let up_all _ = true in
      let a = route_all (mk ()) ~up:up_all 200 in
      let b = route_all (mk ()) ~up:up_all 200 in
      check
        (Balancer.strategy_name strategy ^ " replays identically")
        true (a = b);
      check
        (Balancer.strategy_name strategy ^ " never redistributes when all up")
        true
        (List.for_all
           (function
             | Some d -> not d.Balancer.redistributed
             | None -> false)
           a);
      (* with host 2 down the same trace routes around it, marking every
         moved request, and still replays identically *)
      let up h = h <> 2 in
      let c = route_all (mk ()) ~up 200 in
      let d = route_all (mk ()) ~up 200 in
      check
        (Balancer.strategy_name strategy ^ " replays identically with a crash")
        true (c = d);
      check
        (Balancer.strategy_name strategy ^ " avoids the down host")
        true
        (List.for_all
           (function Some d -> d.Balancer.host <> 2 | None -> false)
           c);
      (* nothing routed to an up host may be marked redistributed unless
         its all-up first choice was the down host; cross-check by
         replaying the all-up trace *)
      List.iter2
        (fun allup crashed ->
          match (allup, crashed) with
          | Some a, Some c ->
              if c.Balancer.redistributed then
                checki
                  (Balancer.strategy_name strategy
                  ^ " redistributed means first choice was down")
                  2 a.Balancer.host
          | _ -> Alcotest.fail "route returned None with a host up")
        a c)
    Balancer.all_strategies

let test_balancer_hash_stability () =
  (* consistent hashing: a down owner moves only its own shard — every
     request whose all-up owner is still up keeps its host *)
  let mk () = Balancer.create Balancer.Consistent_hash ~hosts:5 ~est_service_cycles:500 in
  let up_all _ = true in
  let a = route_all (mk ()) ~up:up_all 500 in
  let up h = h <> 3 in
  let c = route_all (mk ()) ~up 500 in
  List.iter2
    (fun allup crashed ->
      match (allup, crashed) with
      | Some a, Some c ->
          if a.Balancer.host <> 3 then begin
            checki "unaffected shard stays put" a.Balancer.host c.Balancer.host;
            check "unaffected shard not marked redistributed" true
              (not c.Balancer.redistributed)
          end
          else check "down owner's shard moves" true (c.Balancer.host <> 3)
      | _ -> Alcotest.fail "route returned None with hosts up")
    a c;
  (* no host up: the balancer reports the drop rather than inventing one *)
  let none = Balancer.route (mk ()) ~now:0 ~user:1 ~up:(fun _ -> false) in
  check "no host up drops" true (none = None)

let test_plan_deterministic_and_redistributing () =
  let cfg = { small_config with failures = Failplan.Rolling } in
  let a = Fleet.plan cfg and b = Fleet.plan cfg in
  check "same seed, same dispatch" true (a = b);
  check "rolling restarts redistribute traffic" true (a.Fleet.d_redistributed > 0);
  checki "rolling keeps every request placed" 0 a.Fleet.d_lb_dropped;
  let shard_sum =
    Array.fold_left (fun acc s -> acc + Array.length s) 0 a.Fleet.d_assign
  in
  checki "every offered request lands in exactly one shard"
    a.Fleet.d_offered shard_sum;
  let c = Fleet.plan { cfg with seed = 12 } in
  check "different seed, different dispatch" true (a <> c)

(* ---- accounting exactness through a failure wave ---- *)

let test_accounting_exact () =
  let cfg = { small_config with failures = Failplan.Rolling } in
  let d = Fleet.plan cfg in
  let o = Fleet.run ~jobs:2 cfg in
  checki "offered matches the trace" cfg.Fleet.requests o.Fleet.offered;
  checki "served + shed + dropped = offered" o.Fleet.offered
    (o.Fleet.served + o.Fleet.shed_depth + o.Fleet.shed_deadline
   + o.Fleet.lb_dropped);
  checki "run's redistribution count matches the pure plan"
    d.Fleet.d_redistributed o.Fleet.redistributed;
  checki "run's drop count matches the pure plan" d.Fleet.d_lb_dropped
    o.Fleet.lb_dropped;
  List.iteri
    (fun i h ->
      checki
        (Printf.sprintf "host %d shard size" i)
        (Array.length d.Fleet.d_assign.(i))
        h.Host.h_arrivals;
      checki
        (Printf.sprintf "host %d served + shed = arrivals" i)
        h.Host.h_arrivals
        (h.Host.h_served + h.Host.h_shed_depth + h.Host.h_shed_deadline))
    o.Fleet.hosts;
  check "accounting is part of clean" true o.Fleet.clean;
  checki "fleet histogram holds every served request" o.Fleet.served
    (Histogram.count o.Fleet.hist)

(* ---- jobs-count invariance ---- *)

let hist_fingerprint h =
  ( Histogram.count h,
    if Histogram.count h = 0 then []
    else List.map (Histogram.percentile h) [ 0.0; 50.0; 99.0; 99.9; 100.0 ] )

let host_fingerprint h =
  ( ( h.Host.h_host,
      h.Host.h_arrivals,
      h.Host.h_served,
      h.Host.h_shed_depth,
      h.Host.h_shed_deadline,
      h.Host.h_violations ),
    ( h.Host.h_wall_cycles,
      h.Host.h_epochs,
      h.Host.h_stw_pause_us,
      h.Host.h_max_pause_us,
      h.Host.h_epoch_resumes,
      h.Host.h_sweep_crash_retries,
      h.Host.h_chaos_injected,
      h.Host.h_clean,
      h.Host.h_report ),
    hist_fingerprint h.Host.h_hist,
    Array.to_list (Array.map hist_fingerprint h.Host.h_slices) )

let fleet_fingerprint o =
  ( ( o.Fleet.offered,
      o.Fleet.served,
      o.Fleet.shed_depth,
      o.Fleet.shed_deadline,
      o.Fleet.redistributed,
      o.Fleet.lb_dropped,
      o.Fleet.violations ),
    ( o.Fleet.makespan_cycles,
      o.Fleet.goodput_rps,
      o.Fleet.epochs,
      o.Fleet.epoch_resumes,
      o.Fleet.sweep_crash_retries,
      o.Fleet.chaos_injected,
      o.Fleet.max_pause_us,
      o.Fleet.clean,
      o.Fleet.report ),
    hist_fingerprint o.Fleet.hist,
    Array.to_list (Array.map hist_fingerprint o.Fleet.slice_hists),
    List.map host_fingerprint o.Fleet.hosts )

let test_jobs_invariance () =
  let cfg = { small_config with failures = Failplan.Rolling } in
  let a = Fleet.run ~jobs:1 cfg in
  let b = Fleet.run ~jobs:4 cfg in
  check "jobs 1 and jobs 4 simulate the same fleet" true
    (fleet_fingerprint a = fleet_fingerprint b)

(* ---- crash-recoverable revocation on the restarted host ---- *)

let test_recovery_resumes_epoch () =
  (* Drive one host directly: a dense arrival trace, a low quarantine
     floor so epochs fire often, and one blackout window whose start
     injects a sweep crash mid-epoch. Recovery must resume the
     checkpointed epoch, and the protocol checkers must stay clean
     through it. *)
  let requests = 800 in
  let gap = Cost.cycles_of_us 8.0 in
  let arrivals = Array.init requests (fun i -> (i, (i + 1) * gap)) in
  let horizon = (requests + 1) * gap in
  let window = (horizon / 3, horizon / 3 * 2) in
  let cfg =
    {
      Host.host = 0;
      mode = Runtime.Safe Revoker.Reloaded;
      governed = true;
      servers = 2;
      queue_depth = 64;
      deadline_us = None;
      target_p99_us = 1_000.0;
      session_slots = 512;
      temps_per_req = 3;
      compute_per_req = 20_000;
      heap_mb = 8;
      seed = 11;
      check = true;
      policy = Some (Policy.with_min Policy.default 16_384);
      recovery = None;
      windows = [ window ];
      slices = 4;
      origin = 0;
      horizon;
    }
  in
  let o = Host.run cfg ~arrivals in
  checki "every arrival accounted" requests
    (o.Host.h_served + o.Host.h_shed_depth + o.Host.h_shed_deadline);
  check "the induced sweep crash fired" true (o.Host.h_chaos_injected >= 1);
  check "the crash registered as a retry" true
    (o.Host.h_sweep_crash_retries >= 1);
  check "the restarted host resumed its checkpointed epoch" true
    (o.Host.h_epoch_resumes > 0);
  check "checkers stayed clean through crash recovery" true o.Host.h_clean;
  Alcotest.(check string) "no buffered findings" "" o.Host.h_report

let () =
  Alcotest.run "fleet"
    [
      ( "balancer",
        [
          Alcotest.test_case "deterministic under crashes" `Quick
            test_balancer_deterministic;
          Alcotest.test_case "consistent-hash shard stability" `Quick
            test_balancer_hash_stability;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "plan deterministic, redistributes" `Quick
            test_plan_deterministic_and_redistributing;
        ] );
      ( "accounting",
        [ Alcotest.test_case "exact through rolling restarts" `Quick test_accounting_exact ] );
      ( "determinism",
        [ Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs_invariance ] );
      ( "recovery",
        [
          Alcotest.test_case "restart resumes checkpointed epoch" `Quick
            test_recovery_resumes_epoch;
        ] );
    ]
