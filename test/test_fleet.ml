(* Fleet-simulator tests: balancer determinism through failovers, exact
   fleet-wide accounting (now including lost-in-flight, retries, hedges
   and brownout sheds), failure-schedule validation, retry backoff and
   budget semantics, circuit-breaker state machinery, jobs-count
   invariance of the simulated outcome, and crash-recoverable revocation
   on a restarted host. *)

module Cost = Sim.Cost
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Policy = Ccr.Policy
module Loadgen = Service.Loadgen
module Histogram = Stats.Histogram
module Balancer = Fleet.Balancer
module Failplan = Fleet.Failplan
module Health = Fleet.Health
module Retry = Fleet.Retry
module Host = Fleet.Host

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let small_config =
  {
    Fleet.default_config with
    hosts = 3;
    requests = 900;
    pattern = Loadgen.Diurnal { low = 60_000.0; high = 180_000.0; period_us = 3_000.0 };
    users = 50_000;
    seed = 11;
  }

let budgeted =
  match Retry.policy_of_name "budgeted" with
  | Some p -> p
  | None -> assert false

(* the fleet identity every run must satisfy exactly *)
let terminal_sum o =
  o.Fleet.served + o.Fleet.retried_ok + o.Fleet.hedged_ok + o.Fleet.shed_depth
  + o.Fleet.shed_deadline + o.Fleet.shed_brownout + o.Fleet.lost
  + o.Fleet.lb_dropped

(* ---- balancer determinism under crash/redistribute ---- *)

let route_all bal ~up n =
  List.init n (fun i ->
      Balancer.route bal ~now:(i * 1000) ~user:(i * 7919) ~up)

let test_balancer_deterministic () =
  List.iter
    (fun strategy ->
      let mk () = Balancer.create strategy ~hosts:4 ~est_service_cycles:500 in
      let up_all _ = true in
      let a = route_all (mk ()) ~up:up_all 200 in
      let b = route_all (mk ()) ~up:up_all 200 in
      check
        (Balancer.strategy_name strategy ^ " replays identically")
        true (a = b);
      check
        (Balancer.strategy_name strategy ^ " never redistributes when all up")
        true
        (List.for_all
           (function
             | Some d -> not d.Balancer.redistributed
             | None -> false)
           a);
      (* with host 2 down the same trace routes around it, marking every
         moved request, and still replays identically *)
      let up h = h <> 2 in
      let c = route_all (mk ()) ~up 200 in
      let d = route_all (mk ()) ~up 200 in
      check
        (Balancer.strategy_name strategy ^ " replays identically with a crash")
        true (c = d);
      check
        (Balancer.strategy_name strategy ^ " avoids the down host")
        true
        (List.for_all
           (function Some d -> d.Balancer.host <> 2 | None -> false)
           c);
      (* nothing routed to an up host may be marked redistributed unless
         its all-up first choice was the down host; cross-check by
         replaying the all-up trace *)
      List.iter2
        (fun allup crashed ->
          match (allup, crashed) with
          | Some a, Some c ->
              if c.Balancer.redistributed then
                checki
                  (Balancer.strategy_name strategy
                  ^ " redistributed means first choice was down")
                  2 a.Balancer.host
          | _ -> Alcotest.fail "route returned None with a host up")
        a c)
    Balancer.all_strategies

let test_balancer_hash_stability () =
  (* consistent hashing: a down owner moves only its own shard — every
     request whose all-up owner is still up keeps its host *)
  let mk () = Balancer.create Balancer.Consistent_hash ~hosts:5 ~est_service_cycles:500 in
  let up_all _ = true in
  let a = route_all (mk ()) ~up:up_all 500 in
  let up h = h <> 3 in
  let c = route_all (mk ()) ~up 500 in
  List.iter2
    (fun allup crashed ->
      match (allup, crashed) with
      | Some a, Some c ->
          if a.Balancer.host <> 3 then begin
            checki "unaffected shard stays put" a.Balancer.host c.Balancer.host;
            check "unaffected shard not marked redistributed" true
              (not c.Balancer.redistributed)
          end
          else check "down owner's shard moves" true (c.Balancer.host <> 3)
      | _ -> Alcotest.fail "route returned None with hosts up")
    a c;
  (* no host up: the balancer reports the drop rather than inventing one *)
  let none = Balancer.route (mk ()) ~now:0 ~user:1 ~up:(fun _ -> false) in
  check "no host up drops" true (none = None)

let test_balancer_penalty_steers () =
  (* least-loaded with a crushing penalty on host 0 routes everything
     else while the penalty-free replay spreads the load *)
  let bal = Balancer.create Balancer.Least_loaded ~hosts:3 ~est_service_cycles:1_000_000 in
  let penalty h = if h = 0 then 1_000 else 0 in
  let routed =
    List.init 30 (fun i ->
        Balancer.route ~penalty bal ~now:i ~user:i ~up:(fun _ -> true))
  in
  check "penalised host avoided" true
    (List.for_all
       (function Some d -> d.Balancer.host <> 0 | None -> false)
       routed)

let test_plan_deterministic_and_redistributing () =
  let cfg = { small_config with failures = Failplan.Rolling } in
  let a = Fleet.plan cfg and b = Fleet.plan cfg in
  check "same seed, same dispatch" true (a = b);
  check "rolling restarts redistribute traffic" true (a.Fleet.d_redistributed > 0);
  checki "rolling keeps every request placed" 0 a.Fleet.d_lb_dropped;
  let shard_sum =
    Array.fold_left (fun acc s -> acc + Array.length s) 0 a.Fleet.d_assign
  in
  checki "every offered request lands in exactly one shard"
    a.Fleet.d_offered shard_sum;
  let c = Fleet.plan { cfg with seed = 12 } in
  check "different seed, different dispatch" true (a <> c)

(* ---- failure-schedule validation ---- *)

let test_failplan_validate () =
  let w host down up = { Failplan.w_host = host; w_down = down; w_up = up } in
  let ok ws = Failplan.validate ~hosts:3 ~horizon:1000 ws = Ok () in
  let bad ws = Result.is_error (Failplan.validate ~hosts:3 ~horizon:1000 ws) in
  check "empty schedule valid" true (ok []);
  check "plain schedule valid" true (ok [ w 0 10 20; w 1 15 25 ]);
  check "cross-host overlap is legal (a crash wave)" true
    (ok [ w 0 100 300; w 1 150 350; w 2 200 400 ]);
  check "same host back-to-back is legal" true (ok [ w 0 10 20; w 0 20 30 ]);
  check "host id below range rejected" true (bad [ w (-1) 10 20 ]);
  check "host id above range rejected" true (bad [ w 3 10 20 ]);
  check "negative down rejected" true (bad [ w 0 (-5) 20 ]);
  check "inverted window rejected" true (bad [ w 0 20 20 ]);
  check "window past horizon rejected" true (bad [ w 0 10 1001 ]);
  check "same-host overlap rejected" true (bad [ w 0 10 30; w 0 20 40 ]);
  check "same-host containment rejected" true (bad [ w 0 10 100; w 0 40 60 ]);
  (* the planner's own output always validates *)
  List.iter
    (fun kind ->
      List.iter
        (fun seed ->
          let ws = Failplan.plan kind ~hosts:4 ~horizon:10_000 ~seed in
          check
            (Printf.sprintf "%s/%d output validates" (Failplan.kind_name kind)
               seed)
            true
            (Failplan.validate ~hosts:4 ~horizon:10_000 ws = Ok ()))
        [ 1; 11; 42 ])
    Failplan.all_kinds;
  (* a bad override is rejected loudly by the fleet planner *)
  let bad_cfg =
    { small_config with windows_override = Some [ w 7 10 20 ] }
  in
  check "fleet rejects invalid override" true
    (try
       ignore (Fleet.plan bad_cfg);
       false
     with Invalid_argument _ -> true)

(* ---- retry policy semantics ---- *)

let test_retry_policies () =
  check "none parses" true (Retry.policy_of_name "none" = Some Retry.No_retry);
  check "unknown rejected" true (Retry.policy_of_name "heroic" = None);
  checki "no_retry means one attempt" 1 (Retry.max_attempts Retry.No_retry);
  let invalid p =
    try
      Retry.validate p;
      false
    with Invalid_argument _ -> true
  in
  check "attempt cap below 2 rejected" true
    (invalid (Retry.Naive { max_attempts = 1; delay_us = 100.0 }));
  check "attempt cap above 16 rejected" true
    (invalid (Retry.Naive { max_attempts = 17; delay_us = 100.0 }));
  check "cap below base rejected" true
    (invalid
       (Retry.Budgeted
          {
            max_attempts = 4;
            base_us = 500.0;
            cap_us = 100.0;
            ratio = 0.1;
            burst = 8;
          }));
  check "ratio above 1 rejected" true
    (invalid
       (Retry.Budgeted
          {
            max_attempts = 4;
            base_us = 100.0;
            cap_us = 1000.0;
            ratio = 1.5;
            burst = 8;
          }));
  (* backoff is a pure hash: same inputs, same delay; naive is flat *)
  let b1 = Retry.backoff_us budgeted ~seed:7 ~req:123 ~attempt:1 in
  let b1' = Retry.backoff_us budgeted ~seed:7 ~req:123 ~attempt:1 in
  check "backoff pure in its inputs" true (b1 = b1');
  check "backoff varies by request" true
    (Retry.backoff_us budgeted ~seed:7 ~req:124 ~attempt:1 <> b1);
  let naive = Retry.Naive { max_attempts = 4; delay_us = 250.0 } in
  List.iter
    (fun (req, attempt) ->
      Alcotest.(check (float 1e-9))
        "naive delay is flat" 250.0
        (Retry.backoff_us naive ~seed:3 ~req ~attempt))
    [ (1, 1); (2, 1); (1, 3) ];
  (* budgeted windows double per attempt with jitter in [w, 2w), capped *)
  (match budgeted with
  | Retry.Budgeted { base_us; cap_us; _ } ->
      for attempt = 1 to 8 do
        let w = base_us *. (2.0 ** float_of_int (attempt - 1)) in
        let lo = Float.min cap_us w and hi = Float.min cap_us (2.0 *. w) in
        for req = 0 to 50 do
          let d = Retry.backoff_us budgeted ~seed:11 ~req ~attempt in
          check "backoff within its window" true (d >= lo && d <= hi)
        done
      done
  | _ -> assert false);
  check "no_retry has no backoff" true
    (try
       ignore (Retry.backoff_us Retry.No_retry ~seed:1 ~req:1 ~attempt:1);
       false
     with Invalid_argument _ -> true)

let test_retry_budget () =
  (* a tiny bucket: two tokens, full refund per success *)
  let p =
    Retry.Budgeted
      { max_attempts = 4; base_us = 100.0; cap_us = 1000.0; ratio = 1.0; burst = 2 }
  in
  let b = Retry.budget_create p ~classes:2 in
  check "budgeted gets a budget" true (b <> None);
  check "first take ok" true (Retry.budget_take b ~cls:0);
  check "second take ok" true (Retry.budget_take b ~cls:0);
  check "dry bucket denies" true (not (Retry.budget_take b ~cls:0));
  checki "denial counted" 1 (Retry.budget_denied b);
  check "classes are independent" true (Retry.budget_take b ~cls:1);
  Retry.budget_refill b ~cls:0;
  check "success refills" true (Retry.budget_take b ~cls:0);
  (* refills cap at burst: many successes cannot bank unlimited retries *)
  for _ = 1 to 50 do
    Retry.budget_refill b ~cls:0
  done;
  check "burst-capped take 1" true (Retry.budget_take b ~cls:0);
  check "burst-capped take 2" true (Retry.budget_take b ~cls:0);
  check "burst-capped third denied" true (not (Retry.budget_take b ~cls:0));
  (* naive deliberately has none: takes always succeed *)
  let nb =
    Retry.budget_create (Retry.Naive { max_attempts = 4; delay_us = 100.0 })
      ~classes:2
  in
  check "naive unbudgeted" true (nb = None);
  for _ = 1 to 100 do
    check "unbudgeted take never denies" true (Retry.budget_take nb ~cls:0)
  done;
  checki "unbudgeted denies nothing" 0 (Retry.budget_denied nb)

(* ---- circuit breaker state machine ---- *)

let test_breaker_lifecycle () =
  let cooloff_us = 1_000.0 in
  let cool = Cost.cycles_of_us cooloff_us in
  let cfg =
    {
      Health.failure_threshold = 3;
      cooloff_us;
      half_open_probes = 2;
      ewma_alpha = 0.5;
    }
  in
  let t = Health.create ~hosts:2 ~config:cfg ~est_service_us:50.0 () in
  check "starts closed" true (Health.state t ~host:0 = Health.Closed);
  check "closed admits" true (Health.available t ~host:0 ~now:0);
  Health.note_failure t ~host:0 ~now:10;
  Health.note_failure t ~host:0 ~now:20;
  check "below threshold stays closed" true
    (Health.state t ~host:0 = Health.Closed);
  Health.note_failure t ~host:0 ~now:30;
  check "threshold trips open" true (Health.state t ~host:0 = Health.Open);
  checki "trip counted" 1 (Health.trips t);
  check "other host untouched" true (Health.state t ~host:1 = Health.Closed);
  check "open rejects during cooloff" true
    (not (Health.available t ~host:0 ~now:(30 + (cool / 2))));
  check "cooloff expiry half-opens" true
    (Health.available t ~host:0 ~now:(30 + cool + 1));
  check "half-open state" true (Health.state t ~host:0 = Health.Half_open);
  (* one probe success is not enough; the second closes *)
  Health.note_success t ~host:0 ~latency_us:40.0;
  check "one probe keeps probation" true
    (Health.state t ~host:0 = Health.Half_open);
  Health.note_success t ~host:0 ~latency_us:40.0;
  check "probes close" true (Health.state t ~host:0 = Health.Closed);
  (* failed probation re-opens with an escalated cooloff *)
  let reopen_at = 10_000 + (4 * cool) in
  Health.note_failure t ~host:0 ~now:reopen_at;
  Health.note_failure t ~host:0 ~now:(reopen_at + 1);
  Health.note_failure t ~host:0 ~now:(reopen_at + 2);
  check "re-tripped" true (Health.state t ~host:0 = Health.Open);
  ignore (Health.available t ~host:0 ~now:(reopen_at + 2 + cool + 1));
  check "probation again" true (Health.state t ~host:0 = Health.Half_open);
  let fail_probe = reopen_at + 2 + cool + 2 in
  Health.note_failure t ~host:0 ~now:fail_probe;
  check "probation failure re-opens immediately" true
    (Health.state t ~host:0 = Health.Open);
  check "escalated cooloff outlasts the base one" true
    (not (Health.available t ~host:0 ~now:(fail_probe + cool + 1)));
  check "escalated cooloff still expires" true
    (Health.available t ~host:0 ~now:(fail_probe + (2 * cool) + 1));
  checki "three trips total" 3 (Health.trips t);
  checki "host 0 owns them all" 3 (Health.host_trips t ~host:0);
  (* penalty blends streak and EWMA; success resets the streak *)
  let t2 = Health.create ~hosts:1 ~config:cfg ~est_service_us:50.0 () in
  checki "fresh penalty zero" 0 (Health.penalty t2 ~host:0);
  Health.note_failure t2 ~host:0 ~now:5;
  checki "streak penalty" 2 (Health.penalty t2 ~host:0);
  Health.note_success t2 ~host:0 ~latency_us:500.0;
  (* excess over the 50 us estimate in 4-service-time units:
     (500 - 50) / 200 = 2 — a tilt, strictly below live queue counts *)
  checki "ewma penalty after reset" 2 (Health.penalty t2 ~host:0);
  Health.note_success t2 ~host:0 ~latency_us:1_000_000.0;
  checki "ewma penalty capped" 4 (Health.penalty t2 ~host:0);
  for _ = 1 to 40 do
    Health.note_success t2 ~host:0 ~latency_us:50.0
  done;
  checki "healthy latency decays to zero penalty" 0 (Health.penalty t2 ~host:0)

(* ---- accounting exactness through a failure wave ---- *)

let test_accounting_exact () =
  let cfg = { small_config with failures = Failplan.Rolling } in
  let d = Fleet.plan cfg in
  let o = Fleet.run ~jobs:2 cfg in
  checki "offered matches the trace" cfg.Fleet.requests o.Fleet.offered;
  checki "terminal fates partition the trace" o.Fleet.offered (terminal_sum o);
  checki "run's redistribution count matches the pure plan"
    d.Fleet.d_redistributed o.Fleet.redistributed;
  checki "run's drop count matches the pure plan" d.Fleet.d_lb_dropped
    o.Fleet.lb_dropped;
  checki "no retries configured, none sent" 0
    (o.Fleet.retries_sent + o.Fleet.hedges_sent);
  checki "one attempt per request" o.Fleet.offered o.Fleet.attempts;
  checki "no-retry run settles in one round" 1 o.Fleet.rounds;
  List.iteri
    (fun i h ->
      checki
        (Printf.sprintf "host %d shard size" i)
        (Array.length d.Fleet.d_assign.(i))
        h.Host.h_arrivals;
      checki
        (Printf.sprintf "host %d served + shed + lost = arrivals" i)
        h.Host.h_arrivals
        (h.Host.h_served + h.Host.h_shed_depth + h.Host.h_shed_deadline
       + h.Host.h_shed_brownout + h.Host.h_lost);
      checki
        (Printf.sprintf "host %d reports every arrival's fate" i)
        h.Host.h_arrivals
        (Array.length h.Host.h_results))
    o.Fleet.hosts;
  check "accounting is part of clean" true o.Fleet.clean;
  checki "fleet histogram holds every answered request"
    (o.Fleet.served + o.Fleet.retried_ok + o.Fleet.hedged_ok)
    (Histogram.count o.Fleet.hist)

(* ---- lost-in-flight semantics and retry recovery ---- *)

let test_lost_in_flight_and_retry () =
  (* one host, one mid-trace crash window: requests admitted before the
     crash but not answered are destroyed — the client hears nothing *)
  let base =
    { small_config with hosts = 1; requests = 600; failures = Failplan.No_failures }
  in
  let d = Fleet.plan base in
  let horizon = d.Fleet.d_horizon in
  let win =
    { Failplan.w_host = 0; w_down = horizon / 3; w_up = 2 * horizon / 3 }
  in
  let cfg = { base with windows_override = Some [ win ] } in
  let o = Fleet.run ~check:true ~jobs:2 cfg in
  check "checkers clean through the crash" true o.Fleet.clean;
  check "the crash destroys admitted work" true (o.Fleet.lost > 0);
  check "the blackout drops dispatches" true (o.Fleet.lb_dropped > 0);
  checki "identity exact with loss" o.Fleet.offered (terminal_sum o);
  checki "hist holds only answered requests" o.Fleet.served
    (Histogram.count o.Fleet.hist);
  (* the same trace under a budgeted retry policy: lost and dropped
     requests are resubmitted after backoff and recovered once the host
     returns; the attempt set grows, the request identity stays exact *)
  let r =
    Fleet.run ~check:true ~jobs:2
      {
        cfg with
        resilience = { Fleet.default_resilience with retry = budgeted };
      }
  in
  check "clean with retries" true r.Fleet.clean;
  check "retries recover failed requests" true (r.Fleet.retried_ok > 0);
  check "re-planning actually iterated" true (r.Fleet.rounds > 1);
  check "attempts grew beyond the trace" true (r.Fleet.attempts > r.Fleet.offered);
  checki "retries sent matches the attempt set"
    (r.Fleet.attempts - r.Fleet.offered)
    r.Fleet.retries_sent;
  checki "identity exact with retries" r.Fleet.offered (terminal_sum r);
  check "terminal losses do not grow under retry" true
    (r.Fleet.lost <= o.Fleet.lost);
  check "goodput does not drop when retries recover work" true
    (r.Fleet.served + r.Fleet.retried_ok + r.Fleet.hedged_ok >= o.Fleet.served)

(* ---- total outage: every dispatch refused, budgets exhausted ---- *)

let test_total_outage_accounting () =
  let base =
    { small_config with hosts = 2; requests = 400; failures = Failplan.No_failures }
  in
  let d = Fleet.plan base in
  let horizon = d.Fleet.d_horizon in
  let all_down =
    [
      { Failplan.w_host = 0; w_down = 0; w_up = horizon };
      { Failplan.w_host = 1; w_down = 0; w_up = horizon };
    ]
  in
  let cfg = { base with windows_override = Some all_down } in
  let o = Fleet.run ~check:true ~jobs:2 cfg in
  (* w_up is the first cycle a host serves again and the horizon is the
     last intended arrival, so only arrivals at exactly the horizon can
     route; everything earlier is a balancer drop. Nothing was ever
     admitted, so nothing can be lost or shed. *)
  check "clean through a total outage" true o.Fleet.clean;
  checki "nothing admitted, nothing lost" 0 o.Fleet.lost;
  checki "nothing admitted, nothing shed" 0
    (o.Fleet.shed_depth + o.Fleet.shed_deadline + o.Fleet.shed_brownout);
  check "effectively the whole trace is dropped" true
    (o.Fleet.lb_dropped >= o.Fleet.offered - 4);
  checki "drops + horizon-edge serves = offered" o.Fleet.offered
    (o.Fleet.lb_dropped + o.Fleet.served);
  (* with budgeted retries the drops spawn resubmissions that mostly
     fail again inside the outage: the per-class buckets run dry (that
     is the point of the budget), and the identity stays exact *)
  let r =
    Fleet.run ~check:true ~jobs:2
      {
        cfg with
        resilience = { Fleet.default_resilience with retry = budgeted };
      }
  in
  check "clean with retries against the outage" true r.Fleet.clean;
  check "retries were attempted" true (r.Fleet.retries_sent > 0);
  check "the budget ran dry" true (r.Fleet.budget_exhausted > 0);
  checki "identity exact under a retry-squeezed outage" r.Fleet.offered
    (terminal_sum r);
  check "most of the trace still terminally dropped" true
    (r.Fleet.lb_dropped > r.Fleet.offered / 2)

(* ---- jobs-count invariance ---- *)

let hist_fingerprint h =
  ( Histogram.count h,
    if Histogram.count h = 0 then []
    else List.map (Histogram.percentile h) [ 0.0; 50.0; 99.0; 99.9; 100.0 ] )

let host_fingerprint h =
  ( ( h.Host.h_host,
      h.Host.h_arrivals,
      h.Host.h_served,
      h.Host.h_shed_depth,
      h.Host.h_shed_deadline,
      h.Host.h_shed_brownout,
      h.Host.h_lost,
      h.Host.h_violations ),
    ( h.Host.h_wall_cycles,
      h.Host.h_epochs,
      h.Host.h_stw_pause_us,
      h.Host.h_max_pause_us,
      h.Host.h_epoch_resumes,
      h.Host.h_sweep_crash_retries,
      h.Host.h_chaos_injected,
      h.Host.h_brownout_shifts,
      h.Host.h_clean,
      h.Host.h_report ),
    Array.to_list (Array.map (fun (id, _) -> id) h.Host.h_results),
    hist_fingerprint h.Host.h_hist,
    Array.to_list (Array.map hist_fingerprint h.Host.h_slices) )

let fleet_fingerprint o =
  ( ( o.Fleet.offered,
      o.Fleet.served,
      o.Fleet.retried_ok,
      o.Fleet.hedged_ok,
      o.Fleet.shed_depth,
      o.Fleet.shed_deadline,
      o.Fleet.shed_brownout,
      o.Fleet.lost,
      o.Fleet.redistributed,
      o.Fleet.lb_dropped,
      o.Fleet.violations ),
    ( o.Fleet.makespan_cycles,
      o.Fleet.goodput_rps,
      o.Fleet.epochs,
      o.Fleet.epoch_resumes,
      o.Fleet.sweep_crash_retries,
      o.Fleet.chaos_injected,
      o.Fleet.max_pause_us,
      o.Fleet.clean,
      o.Fleet.report ),
    ( o.Fleet.attempts,
      o.Fleet.retries_sent,
      o.Fleet.hedges_sent,
      o.Fleet.dup_served,
      o.Fleet.budget_exhausted,
      o.Fleet.breaker_trips,
      o.Fleet.brownout_shifts,
      o.Fleet.rounds ),
    hist_fingerprint o.Fleet.hist,
    Array.to_list (Array.map hist_fingerprint o.Fleet.slice_hists),
    List.map host_fingerprint o.Fleet.hosts )

let test_jobs_invariance () =
  let cfg = { small_config with failures = Failplan.Rolling } in
  let a = Fleet.run ~jobs:1 cfg in
  let b = Fleet.run ~jobs:4 cfg in
  check "jobs 1 and jobs 4 simulate the same fleet" true
    (fleet_fingerprint a = fleet_fingerprint b)

let test_jobs_invariance_resilient () =
  (* the whole client stack at once: retries, hedging, breakers and
     brownout, through a crash wave — still byte-identical at any jobs *)
  let cfg =
    {
      small_config with
      balancer = Balancer.Least_loaded;
      failures = Failplan.Crash_wave;
      resilience =
        {
          Fleet.retry = budgeted;
          hedge = Some { Retry.h_pct = 95.0; h_min_us = 150.0 };
          breaker = Some Health.default_config;
          brownout = Some Service.Squeue.default_brownout;
          rto_us = 1_500.0;
          max_rounds = 6;
        };
    }
  in
  let a = Fleet.run ~check:true ~jobs:1 cfg in
  let b = Fleet.run ~check:true ~jobs:4 cfg in
  check "resilient fleet identical at jobs 1 and 4" true
    (fleet_fingerprint a = fleet_fingerprint b);
  check "resilient run is clean" true a.Fleet.clean;
  checki "identity exact with the full stack" a.Fleet.offered (terminal_sum a)

(* ---- crash-recoverable revocation on the restarted host ---- *)

let test_recovery_resumes_epoch () =
  (* Drive one host directly: a dense arrival trace, a low quarantine
     floor so epochs fire often, and one blackout window whose start
     injects a sweep crash mid-epoch. Recovery must resume the
     checkpointed epoch, the crash must destroy the admitted-but-unserved
     work (reported per request), and the checkers must stay clean. *)
  let requests = 800 in
  let gap = Cost.cycles_of_us 8.0 in
  let arrivals =
    Array.init requests (fun i ->
        { Host.a_id = i; a_intended = (i + 1) * gap; a_cls = 0 })
  in
  let horizon = (requests + 1) * gap in
  let window = (horizon / 3, horizon / 3 * 2) in
  let cfg =
    {
      Host.host = 0;
      mode = Runtime.Safe Revoker.Reloaded;
      governed = true;
      servers = 2;
      queue_depth = 64;
      deadline_us = None;
      brownout = None;
      target_p99_us = 1_000.0;
      session_slots = 512;
      temps_per_req = 3;
      compute_per_req = 20_000;
      heap_mb = 8;
      seed = 11;
      check = true;
      policy = Some (Policy.with_min Policy.default 16_384);
      recovery = None;
      windows = [ window ];
      slices = 4;
      origin = 0;
      horizon;
    }
  in
  let o = Host.run cfg ~arrivals in
  checki "every arrival accounted" requests
    (o.Host.h_served + o.Host.h_shed_depth + o.Host.h_shed_deadline
   + o.Host.h_shed_brownout + o.Host.h_lost);
  checki "every arrival's fate reported" requests (Array.length o.Host.h_results);
  check "the crash destroyed admitted work" true (o.Host.h_lost > 0);
  check "the induced sweep crash fired" true (o.Host.h_chaos_injected >= 1);
  check "the crash registered as a retry" true
    (o.Host.h_sweep_crash_retries >= 1);
  check "the restarted host resumed its checkpointed epoch" true
    (o.Host.h_epoch_resumes > 0);
  check "checkers stayed clean through crash recovery" true o.Host.h_clean;
  Alcotest.(check string) "no buffered findings" "" o.Host.h_report;
  (* per-request results agree with the aggregate *)
  let served, shed, lost =
    Array.fold_left
      (fun (s, d, l) (_, r) ->
        match r with
        | Host.R_served _ -> (s + 1, d, l)
        | Host.R_shed _ -> (s, d + 1, l)
        | Host.R_lost _ -> (s, d, l + 1))
      (0, 0, 0) o.Host.h_results
  in
  checki "per-request serves" o.Host.h_served served;
  checki "per-request sheds"
    (o.Host.h_shed_depth + o.Host.h_shed_deadline + o.Host.h_shed_brownout)
    shed;
  checki "per-request losses" o.Host.h_lost lost

let () =
  Alcotest.run "fleet"
    [
      ( "balancer",
        [
          Alcotest.test_case "deterministic under crashes" `Quick
            test_balancer_deterministic;
          Alcotest.test_case "consistent-hash shard stability" `Quick
            test_balancer_hash_stability;
          Alcotest.test_case "health penalty steers least-loaded" `Quick
            test_balancer_penalty_steers;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "plan deterministic, redistributes" `Quick
            test_plan_deterministic_and_redistributing;
          Alcotest.test_case "failplan validation" `Quick test_failplan_validate;
        ] );
      ( "retry",
        [
          Alcotest.test_case "policies and backoff" `Quick test_retry_policies;
          Alcotest.test_case "per-class budgets" `Quick test_retry_budget;
        ] );
      ( "breaker",
        [ Alcotest.test_case "lifecycle" `Quick test_breaker_lifecycle ] );
      ( "accounting",
        [
          Alcotest.test_case "exact through rolling restarts" `Quick
            test_accounting_exact;
          Alcotest.test_case "lost in flight, recovered by retries" `Quick
            test_lost_in_flight_and_retry;
          Alcotest.test_case "total outage exhausts budgets" `Quick
            test_total_outage_accounting;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs_invariance;
          Alcotest.test_case "jobs 1 = jobs 4 with the client stack" `Quick
            test_jobs_invariance_resilient;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "restart resumes checkpointed epoch" `Quick
            test_recovery_resumes_epoch;
        ] );
    ]
