(* Serving-layer tests: load generation, admission control, SLO
   accounting, and the revocation governor's defer/force transitions. *)

module M = Sim.Machine
module Cost = Sim.Cost
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Policy = Ccr.Policy
module Loadgen = Service.Loadgen
module Squeue = Service.Squeue
module Slo = Service.Slo
module Governor = Service.Governor
module Serve = Workload.Serve

let check = Alcotest.(check bool)

let cfg = { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }

(* ---- load generation ---- *)

let nondecreasing a =
  let ok = ref true in
  Array.iteri (fun i v -> if i > 0 && v < a.(i - 1) then ok := false) a;
  !ok

let test_loadgen_deterministic () =
  let lcfg =
    { Loadgen.pattern = Loadgen.Poisson 50_000.0; requests = 500; seed = 7 }
  in
  let a = Loadgen.schedule lcfg and b = Loadgen.schedule lcfg in
  check "same config, same schedule" true (a = b);
  Alcotest.(check int) "length" 500 (Array.length a);
  check "arrivals nondecreasing" true (nondecreasing a);
  let c = Loadgen.schedule { lcfg with seed = 8 } in
  check "different seed, different schedule" true (a <> c)

let test_loadgen_patterns () =
  List.iter
    (fun pattern ->
      let a = Loadgen.schedule { Loadgen.pattern; requests = 300; seed = 3 } in
      Alcotest.(check int)
        (Loadgen.pattern_name pattern ^ " length")
        300 (Array.length a);
      check (Loadgen.pattern_name pattern ^ " nondecreasing") true
        (nondecreasing a))
    [
      Loadgen.Poisson 30_000.0;
      Loadgen.Bursty
        { base = 10_000.0; peak = 80_000.0; period_us = 2_000.0; duty = 0.3 };
      Loadgen.Ramp { from_rate = 5_000.0; to_rate = 60_000.0 };
      Loadgen.Diurnal { low = 8_000.0; high = 50_000.0; period_us = 5_000.0 };
    ];
  (* a hotter poisson arrives faster *)
  let slow =
    Loadgen.schedule
      { Loadgen.pattern = Loadgen.Poisson 10_000.0; requests = 400; seed = 5 }
  in
  let fast =
    Loadgen.schedule
      { Loadgen.pattern = Loadgen.Poisson 100_000.0; requests = 400; seed = 5 }
  in
  check "10x rate finishes sooner" true (fast.(399) < slow.(399))

(* ---- bounded queue: both shed paths, each traced ---- *)

let test_squeue_shedding () =
  let m = M.create cfg in
  let tracer = Sim.Trace.create () in
  M.attach_tracer m (Some tracer);
  let sheds = ref [] in
  ignore
    (Sim.Trace.subscribe tracer (fun e ->
         if e.Sim.Trace.kind = Sim.Trace.Req_shed then
           sheds := (e.Sim.Trace.arg, e.Sim.Trace.arg2) :: !sheds));
  let q = Squeue.create m ~max_depth:2 ~deadline:(Cost.cycles_of_us 100.0) () in
  let served = ref 0 in
  ignore
    (M.spawn m ~name:"producer" ~core:0 (fun ctx ->
         (* three offers with no intervening yield: the third finds the
            queue full and sheds on depth *)
         let offer id =
           Squeue.offer q ctx
             { Squeue.id; intended = M.now ctx; cls = 0; deadline = None; tenant = 0 }
         in
         check "first admitted" true (offer 0);
         check "second admitted" true (offer 1);
         check "third shed on depth" false (offer 2);
         M.sleep ctx (Cost.cycles_of_us 50.0);
         Squeue.close q ctx));
  ignore
    (M.spawn m ~name:"consumer" ~core:1 (fun ctx ->
         (* arrive long after the deadline: both queued requests are
            stale and must be deadline-shed, never returned *)
         M.charge ctx (Cost.cycles_of_us 300.0);
         let rec drain () =
           match Squeue.take q ctx with
           | None -> ()
           | Some _ ->
               incr served;
               drain ()
         in
         drain ()));
  M.run m;
  Alcotest.(check int) "nothing served" 0 !served;
  Alcotest.(check int) "accepted" 2 (Squeue.accepted q);
  Alcotest.(check int) "depth sheds" 1 (Squeue.shed_depth q);
  Alcotest.(check int) "deadline sheds" 2 (Squeue.shed_deadline q);
  let depth_drops = List.filter (fun (_, why) -> why = 0) !sheds in
  let deadline_drops = List.filter (fun (_, why) -> why = 1) !sheds in
  Alcotest.(check int) "each depth drop traced" 1 (List.length depth_drops);
  Alcotest.(check int) "each deadline drop traced" 2 (List.length deadline_drops);
  check "depth drop names the request" true (List.mem (2, 0) depth_drops)

(* ---- brownout hysteresis band ---- *)

let test_squeue_brownout () =
  let m = M.create cfg in
  (* a tiny band so the whole engage / hold / disengage cycle fits in a
     handful of offers: enter at depth 2, exit at 1, shed Background *)
  let band = { Squeue.b_enter = 2; b_exit = 1; b_min_cls = 2 } in
  let q = Squeue.create m ~max_depth:8 ~brownout:band () in
  ignore
    (M.spawn m ~name:"driver" ~core:0 (fun ctx ->
         let offer id cls =
           Squeue.offer q ctx
             { Squeue.id; intended = M.now ctx; cls; deadline = None; tenant = 0 }
         in
         check "background admitted while calm" true (offer 0 2);
         check "critical admitted" true (offer 1 0);
         (* depth is now at b_enter; the controller engages on the next
            admission-control evaluation *)
         check "critical admitted through engagement" true (offer 2 0);
         check "band engaged at b_enter" true (Squeue.brownout_active q);
         check "background shed while engaged" false (offer 3 2);
         check "normal class below the floor still admitted" true (offer 4 1);
         ignore (Squeue.take q ctx);
         ignore (Squeue.take q ctx);
         (* depth 2: above b_exit, so hysteresis holds the band engaged —
            no flapping around a single threshold *)
         check "still engaged above b_exit" true (Squeue.brownout_active q);
         check "background still shed inside the band" false (offer 5 2);
         ignore (Squeue.take q ctx);
         check "disengaged once drained to b_exit" true
           (not (Squeue.brownout_active q));
         check "background admitted again" true (offer 6 2);
         Squeue.close q ctx));
  M.run m;
  Alcotest.(check int) "brownout sheds counted" 2 (Squeue.shed_brownout q);
  Alcotest.(check int) "no depth or deadline sheds" 0
    (Squeue.shed_depth q + Squeue.shed_deadline q);
  Alcotest.(check int) "one engage + one disengage" 2 (Squeue.brownout_shifts q);
  check "shed log carries the brownout code" true
    (List.for_all
       (fun (_, why, _) -> why = Squeue.why_brownout)
       (Squeue.shed_log q))

(* ---- priority classes and per-class deadlines ---- *)

let test_request_classes () =
  check "critical has the tightest budget" true
    (Loadgen.deadline_factor Loadgen.Critical = Some 1.0);
  check "normal is stretched" true
    (Loadgen.deadline_factor Loadgen.Normal = Some 4.0);
  check "background is deadline-exempt" true
    (Loadgen.deadline_factor Loadgen.Background = None);
  List.iter
    (fun c ->
      check
        (Loadgen.cls_name c ^ " code roundtrips")
        true
        (Loadgen.cls_of_code (Loadgen.cls_code c) = c))
    Loadgen.all_classes;
  let draw () =
    Loadgen.class_stream ~seed:9 ~requests:8_000 ~critical:0.2 ~background:0.3
  in
  let a = draw () in
  check "class stream deterministic" true (a = draw ());
  let count c = Array.fold_left (fun n x -> if x = c then n + 1 else n) 0 a in
  let crit = count Loadgen.Critical
  and norm = count Loadgen.Normal
  and bg = count Loadgen.Background in
  Alcotest.(check int) "every request classed" 8_000 (crit + norm + bg);
  check "critical fraction near its target" true (abs (crit - 1_600) < 200);
  check "background fraction near its target" true (abs (bg - 2_400) < 250);
  check "overfull mix rejected" true
    (try
       ignore
         (Loadgen.class_stream ~seed:1 ~requests:1 ~critical:0.8
            ~background:0.5);
       false
     with Invalid_argument _ -> true);
  (* the mechanism behind the exemption: per-request deadlines with no
     queue-wide fallback, so a [None] deadline really means "never" *)
  let m = M.create cfg in
  let q = Squeue.create m ~max_depth:8 () in
  let got = ref [] in
  ignore
    (M.spawn m ~name:"driver" ~core:0 (fun ctx ->
         let tight = Some (Cost.cycles_of_us 10.0) in
         check "critical admitted" true
           (Squeue.offer q ctx
              { Squeue.id = 0; intended = M.now ctx; cls = 0; deadline = tight; tenant = 0 });
         check "background admitted" true
           (Squeue.offer q ctx
              { Squeue.id = 1; intended = M.now ctx; cls = 2; deadline = None; tenant = 0 });
         M.charge ctx (Cost.cycles_of_us 500.0);
         Squeue.close q ctx;
         let rec drain () =
           match Squeue.take q ctx with
           | None -> ()
           | Some r ->
               got := r.Squeue.id :: !got;
               drain ()
         in
         drain ()));
  M.run m;
  Alcotest.(check (list int)) "only the exempt request survives" [ 1 ] !got;
  Alcotest.(check int) "the tight one deadline-shed" 1 (Squeue.shed_deadline q)

(* ---- adaptive trigger ---- *)

let test_policy_adaptive () =
  let p = Policy.default in
  let live = 100 * 1024 * 1024 in
  let tr load = Policy.threshold (Policy.adaptive p ~load) ~live ~quarantine:0 in
  let plain = Policy.threshold p ~live ~quarantine:0 in
  check "eager trigger below plain" true (tr 0.0 < plain);
  check "deferred trigger above plain" true (tr 1.0 > plain);
  check "monotone in load" true (tr 0.0 <= tr 0.5 && tr 0.5 <= tr 1.0);
  Alcotest.(check int) "load clamped below" (tr 0.0) (tr (-3.0));
  Alcotest.(check int) "load clamped above" (tr 1.0) (tr 5.0);
  (* adaptation must never reach the blocking margin *)
  let a = Policy.adaptive p ~load:1.0 in
  check "stays under the block margin" true
    (a.Policy.fraction < p.Policy.block_factor *. p.Policy.fraction)

(* ---- governor transitions ---- *)

(* Build quarantine on an app thread, hand it to the revoker, and watch
   the epoch governor react to a closure-controlled queue depth. *)
let governor_run ?brownout ~policy ~gconfig ~depth ~after_flush () =
  let rt = Runtime.create ~config:cfg ~policy (Runtime.Safe Revoker.Reloaded) in
  let m = rt.Runtime.machine in
  let g =
    Governor.install ~config:gconfig ~target_p99_us:1_000.0
      ~p99:(fun () -> Some 5_000.0)
      ?brownout rt
      ~depth:(fun () -> !depth)
      ()
  in
  ignore
    (M.spawn m ~name:"app" ~core:0 (fun ctx ->
         let caps =
           Array.init 32 (fun _ -> Runtime.malloc rt ctx 4_096)
         in
         Array.iter (fun c -> Runtime.free rt ctx c) caps;
         (match rt.Runtime.mrs with
         | Some mrs -> Ccr.Mrs.flush mrs ctx
         | None -> ());
         after_flush ctx;
         (match rt.Runtime.revoker with
         | Some rv ->
             while Revoker.in_flight rv || Revoker.queued_bytes rv > 0 do
               M.sleep ctx 50_000
             done
         | None -> ());
         Runtime.finish rt ctx));
  M.run m;
  (Governor.stats g, Runtime.revoker_records rt)

let test_governor_defers () =
  (* queue deep at flush time, drained shortly after: the epoch must
     wait (>= one poll), then run once the trough arrives *)
  let depth = ref 10 in
  let gconfig =
    { Governor.default_config with defer_quantum = 2_500; max_defer = 2_500_000 }
  in
  (* 32 x 4 KiB of quarantine stays under default's 256 KiB block
     margin, so the only exit from deferral is the queue draining *)
  let policy = Policy.default in
  let stats, records =
    governor_run ~policy ~gconfig ~depth
      ~after_flush:(fun ctx ->
        M.sleep ctx 25_000;
        depth := 0)
      ()
  in
  check "epoch actually ran" true (records <> []);
  check "epoch was deferred" true (stats.Governor.epochs_deferred >= 1);
  check "deferral cost accounted" true (stats.Governor.defer_cycles > 0);
  Alcotest.(check int) "no forced epoch" 0 stats.Governor.epochs_forced;
  Alcotest.(check int) "no brownout, no brownout defers" 0
    stats.Governor.brownout_defers

let test_governor_brownout_defers () =
  (* same trough-chasing setup, but the host reports brownout the whole
     time: the governor still defers, counts those deferrals separately,
     and tolerates a longer wait (doubled max_defer) before giving up *)
  let depth = ref 10 in
  let gconfig =
    { Governor.default_config with defer_quantum = 2_500; max_defer = 2_500_000 }
  in
  let stats, records =
    governor_run
      ~brownout:(fun () -> true)
      ~policy:Policy.default ~gconfig ~depth
      ~after_flush:(fun ctx ->
        M.sleep ctx 25_000;
        depth := 0)
      ()
  in
  check "epoch actually ran" true (records <> []);
  check "epoch was deferred" true (stats.Governor.epochs_deferred >= 1);
  check "deferrals attributed to brownout" true
    (stats.Governor.brownout_defers >= 1);
  Alcotest.(check int) "every deferral happened browned-out"
    stats.Governor.epochs_deferred stats.Governor.brownout_defers

let test_governor_forces () =
  (* queue never drains AND quarantine pressure is over the blocking
     margin: deferral must end immediately via the force path, and with
     the p99 estimate over target an SLO violation is recorded *)
  let depth = ref 10 in
  let gconfig =
    { Governor.default_config with defer_quantum = 2_500; max_defer = 2_500_000 }
  in
  let policy =
    { Policy.fraction = 0.25; min_quarantine = 4_096; block_factor = 0.05 }
  in
  let stats, records =
    governor_run ~policy ~gconfig ~depth ~after_flush:(fun _ -> ()) ()
  in
  check "epoch actually ran" true (records <> []);
  check "epoch was forced" true (stats.Governor.epochs_forced >= 1);
  check "slo violation recorded" true (stats.Governor.slo_events >= 1);
  Alcotest.(check int) "forced, not deferred" 0 stats.Governor.epochs_deferred

(* ---- serving workload: accounting, determinism, STW visibility ---- *)

let serve_outcome ?(governed = false) ?on_runtime ?(qps = 150_000.0)
    ?(queue_depth = 16) ?(requests = 600) mode =
  Serve.run
    ~config:
      {
        Serve.default_config with
        pattern = Loadgen.Poisson qps;
        requests;
        queue_depth;
        session_slots = 2_000;
        seed = 11;
      }
    ?on_runtime ~governed ~mode ()

let test_serve_accounting () =
  (* offered load over capacity against a short queue: plenty of
     shedding, and every request still accounted exactly once *)
  let o = serve_outcome ~governed:true (Runtime.Safe Revoker.Reloaded) in
  Alcotest.(check int) "offered = requests" 600 o.Serve.offered;
  check "some requests shed" true (o.Serve.shed_depth > 0);
  Alcotest.(check int) "served + shed = offered" o.Serve.offered
    (o.Serve.served + o.Serve.shed_depth + o.Serve.shed_deadline);
  Alcotest.(check int) "histogram count = served" o.Serve.served
    (Stats.Histogram.count (Slo.histogram o.Serve.slo));
  check "governor stats present" true (o.Serve.governor <> None)

let test_serve_deterministic () =
  let a = serve_outcome ~governed:true (Runtime.Safe Revoker.Cornucopia) in
  let b = serve_outcome ~governed:true (Runtime.Safe Revoker.Cornucopia) in
  Alcotest.(check int) "served equal" a.Serve.served b.Serve.served;
  Alcotest.(check int) "shed equal"
    (a.Serve.shed_depth + a.Serve.shed_deadline)
    (b.Serve.shed_depth + b.Serve.shed_deadline);
  check "latency arrays identical" true
    (a.Serve.result.Workload.Result.latencies_us
    = b.Serve.result.Workload.Result.latencies_us)

let test_serve_sees_stw_stall () =
  (* Inject a 1 ms stop-the-world stall mid-run on a Baseline machine
     (no revoker: the stall is the only pause). The open-loop generator
     keeps stamping intended arrivals, so served stragglers must report
     the pause as queueing delay: max latency >= the stall length. *)
  let stall_us = 1_000.0 in
  let o =
    serve_outcome ~qps:50_000.0 ~queue_depth:256 ~requests:800
      ~on_runtime:(fun rt ->
        ignore
          (M.spawn rt.Runtime.machine ~name:"stall" ~core:1 ~user:false
             (fun ctx ->
               M.sleep ctx (Cost.cycles_of_us 2_000.0);
               ignore
                 (M.stop_the_world ctx (fun () ->
                      M.charge ctx (Cost.cycles_of_us stall_us))))))
      Runtime.Baseline
  in
  Alcotest.(check int) "served + shed = offered" o.Serve.offered
    (o.Serve.served + o.Serve.shed_depth + o.Serve.shed_deadline);
  let max_lat =
    Array.fold_left max 0.0 o.Serve.result.Workload.Result.latencies_us
  in
  check "stall visible from intended arrival" true (max_lat >= 0.9 *. stall_us)

(* ---- cross-process SLO scheduling ---- *)

let test_tenant_slo_sched () =
  let tiny =
    {
      (Workload.Profile.find "hmmer_retro") with
      Workload.Profile.ops = 1_200;
      slots = 200;
    }
  in
  let r =
    Workload.Tenant.run ~seed:7 ~tenants:2 ~sched:Os.Revsched.Slo
      ~mode:(Runtime.Safe Revoker.Reloaded) tiny
  in
  check "sched name" true (r.Workload.Tenant.sched = "slo");
  check "all tenants finished" true
    (List.length r.Workload.Tenant.per_tenant = 2);
  check "epochs were granted" true
    (List.exists
       (fun (s : Os.Revsched.stats) -> s.Os.Revsched.grants > 0)
       r.Workload.Tenant.sched_stats)

let () =
  Alcotest.run "service"
    [
      ( "loadgen",
        [
          Alcotest.test_case "deterministic" `Quick test_loadgen_deterministic;
          Alcotest.test_case "patterns" `Quick test_loadgen_patterns;
        ] );
      ( "squeue",
        [
          Alcotest.test_case "shedding" `Quick test_squeue_shedding;
          Alcotest.test_case "brownout hysteresis" `Quick test_squeue_brownout;
        ] );
      ( "classes",
        [
          Alcotest.test_case "priorities and deadlines" `Quick
            test_request_classes;
        ] );
      ( "policy",
        [ Alcotest.test_case "adaptive trigger" `Quick test_policy_adaptive ] );
      ( "governor",
        [
          Alcotest.test_case "defers into trough" `Quick test_governor_defers;
          Alcotest.test_case "forces under pressure" `Quick test_governor_forces;
          Alcotest.test_case "defers harder under brownout" `Quick
            test_governor_brownout_defers;
        ] );
      ( "serve",
        [
          Alcotest.test_case "shed accounting" `Quick test_serve_accounting;
          Alcotest.test_case "deterministic" `Quick test_serve_deterministic;
          Alcotest.test_case "stw stall visible" `Quick test_serve_sees_stw_stall;
        ] );
      ( "revsched",
        [ Alcotest.test_case "slo policy" `Quick test_tenant_slo_sched ] );
    ]
