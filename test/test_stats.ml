(* Statistics library tests. *)

module Summary = Stats.Summary
module Cdf = Stats.Cdf
module Table = Stats.Table

let checkf = Alcotest.(check (float 1e-9))
let check = Alcotest.(check bool)

let test_mean_geomean () =
  checkf "mean" 2.0 (Summary.mean [ 1.0; 2.0; 3.0 ]);
  checkf "geomean" 2.0 (Summary.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "geomean nonpositive"
    (Invalid_argument "Summary.geomean: non-positive sample") (fun () ->
      ignore (Summary.geomean [ 1.0; 0.0 ]))

let test_percentiles () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  checkf "p0" 1.0 (Summary.percentile xs 0.0);
  checkf "p50" 3.0 (Summary.percentile xs 50.0);
  checkf "p100" 5.0 (Summary.percentile xs 100.0);
  checkf "p25 interpolated" 2.0 (Summary.percentile xs 25.0);
  checkf "p10" 1.4 (Summary.percentile xs 10.0)

let test_summary () =
  let s = Summary.of_list [ 4.0; 1.0; 3.0; 2.0 ] in
  Alcotest.(check int) "n" 4 s.Summary.n;
  checkf "min" 1.0 s.Summary.min;
  checkf "max" 4.0 s.Summary.max;
  checkf "median" 2.5 s.Summary.median;
  checkf "mean" 2.5 s.Summary.mean

let test_cdf () =
  let c = Cdf.of_samples [ 1.0; 2.0; 2.0; 10.0 ] in
  checkf "below" 0.0 (Cdf.at c 0.5);
  checkf "half" 0.75 (Cdf.at c 2.0);
  checkf "all" 1.0 (Cdf.at c 10.0);
  checkf "inverse median" 2.0 (Cdf.inverse c 0.5);
  checkf "inverse max" 10.0 (Cdf.inverse c 1.0);
  check "points nonempty" true (Cdf.points c () <> [])

let test_table_renders () =
  let t = Table.create ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let buf = Buffer.create 64 in
  Table.render (Format.formatter_of_buffer buf) t;
  Format.pp_print_flush (Format.formatter_of_buffer buf) ();
  check "contains rows" true (String.length (Buffer.contents buf) > 0)

(* ---- boxplot ---- *)

let test_boxplot () =
  check "empty is None" true (Stats.Boxplot.of_samples ~label:"x" [] = None);
  match Stats.Boxplot.of_samples ~label:"x" [ 5.0; 1.0; 3.0; 2.0; 4.0 ] with
  | None -> Alcotest.fail "expected a box"
  | Some b ->
      checkf "min" 1.0 b.Stats.Boxplot.min;
      checkf "median" 3.0 b.Stats.Boxplot.median;
      checkf "max" 5.0 b.Stats.Boxplot.max;
      let buf = Buffer.create 256 in
      let f = Format.formatter_of_buffer buf in
      Stats.Boxplot.render f ~unit:"us" [ b ];
      Format.pp_print_flush f ();
      check "renders" true (String.length (Buffer.contents buf) > 0)

(* ---- histogram ---- *)

let test_histogram_basics () =
  let h = Stats.Histogram.create () in
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      ignore (Stats.Histogram.percentile h 50.0));
  List.iter (Stats.Histogram.record h) [ 1.0; 10.0; 100.0; 1000.0 ];
  Alcotest.(check int) "count" 4 (Stats.Histogram.count h);
  let p50 = Stats.Histogram.percentile h 50.0 in
  let err = Stats.Histogram.max_relative_error h in
  check "p50 near 10" true (p50 >= 10.0 *. (1.0 -. err) && p50 <= 10.0 *. (1.0 +. 2.0 *. err));
  check "p100 near 1000" true (Stats.Histogram.percentile h 100.0 >= 1000.0 *. (1.0 -. err))

let test_histogram_merge () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  Stats.Histogram.record a 5.0;
  Stats.Histogram.record b 50.0;
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "merged count" 2 (Stats.Histogram.count m);
  let bad = Stats.Histogram.create ~buckets_per_decade:8 () in
  Alcotest.check_raises "geometry mismatch"
    (Invalid_argument "Histogram.merge: geometry mismatch") (fun () ->
      ignore (Stats.Histogram.merge a bad))

let test_histogram_edges () =
  let h = Stats.Histogram.create () in
  (* values outside [lo, hi) clamp into the edge buckets *)
  Stats.Histogram.record h 1e-9;
  Stats.Histogram.record h 1e12;
  Alcotest.(check int) "count" 2 (Stats.Histogram.count h);
  let err = Stats.Histogram.max_relative_error h in
  let p0 = Stats.Histogram.percentile h 0.0 in
  let p100 = Stats.Histogram.percentile h 100.0 in
  check "p0 lands in the lowest bucket" true (p0 <= 0.1 *. (1.0 +. err) +. 1e-9);
  check "p100 lands in the highest bucket" true (p100 >= 1e7);
  check "edge percentiles stay ordered" true (p0 <= p100);
  (* out-of-range p clamps rather than raising *)
  checkf "p(-5) = p0" p0 (Stats.Histogram.percentile h (-5.0));
  checkf "p(250) = p100" p100 (Stats.Histogram.percentile h 250.0)

let test_histogram_merge_empty () =
  let a = Stats.Histogram.create () and b = Stats.Histogram.create () in
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "empty + empty" 0 (Stats.Histogram.count m);
  Alcotest.check_raises "merged empty percentile"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      ignore (Stats.Histogram.percentile m 50.0));
  Stats.Histogram.record a 42.0;
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "nonempty + empty" 1 (Stats.Histogram.count m);
  let err = Stats.Histogram.max_relative_error m in
  let p50 = Stats.Histogram.percentile m 50.0 in
  check "sample survives the merge" true
    (p50 >= 42.0 *. (1.0 -. err) && p50 <= 42.0 *. (1.0 +. 2.0 *. err))

(* merge_all is the fleet aggregation path: hosts report in whatever
   order they finish, some may have served nothing, and the fleet-wide
   percentile must not care. *)
let test_histogram_merge_all () =
  let empty = Stats.Histogram.merge_all [] in
  Alcotest.(check int) "no hosts" 0 (Stats.Histogram.count empty);
  let a = Stats.Histogram.create () in
  List.iter (Stats.Histogram.record a) [ 3.0; 7.0; 11.0 ];
  let solo = Stats.Histogram.merge_all [ a ] in
  Alcotest.(check int) "single-host fleet keeps its count" 3
    (Stats.Histogram.count solo);
  checkf "single-host fleet keeps its p50"
    (Stats.Histogram.percentile a 50.0)
    (Stats.Histogram.percentile solo 50.0);
  (* hosts with disjoint latency ranges: decades apart, so every sample
     lands in a distinct bucket and nothing may collide away *)
  let lo = Stats.Histogram.create ()
  and mid = Stats.Histogram.create ()
  and hi = Stats.Histogram.create () in
  Stats.Histogram.record lo 0.5;
  Stats.Histogram.record mid 500.0;
  Stats.Histogram.record hi 500_000.0;
  let idle = Stats.Histogram.create () in
  let m = Stats.Histogram.merge_all [ lo; idle; mid; hi ] in
  Alcotest.(check int) "disjoint ranges all counted" 3
    (Stats.Histogram.count m);
  let err = Stats.Histogram.max_relative_error m in
  check "low extreme survives" true
    (Stats.Histogram.percentile m 0.0 <= 0.5 *. (1.0 +. err));
  check "high extreme survives" true
    (Stats.Histogram.percentile m 100.0 >= 500_000.0 *. (1.0 -. err));
  (* order independence: every permutation of the host list produces the
     same percentile at every probed quantile *)
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y != x) l in
            List.map (fun p -> x :: p) (permutations rest))
          l
  in
  let reference = Stats.Histogram.merge_all [ lo; mid; hi; a ] in
  List.iter
    (fun perm ->
      let m = Stats.Histogram.merge_all perm in
      Alcotest.(check int)
        "permutation count" (Stats.Histogram.count reference)
        (Stats.Histogram.count m);
      List.iter
        (fun q ->
          checkf "permutation percentile"
            (Stats.Histogram.percentile reference q)
            (Stats.Histogram.percentile m q))
        [ 0.0; 25.0; 50.0; 90.0; 99.0; 100.0 ])
    (permutations [ lo; mid; hi; a ]);
  let bad = Stats.Histogram.create ~buckets_per_decade:8 () in
  Alcotest.check_raises "merge_all geometry mismatch"
    (Invalid_argument "Histogram.merge_all: geometry mismatch") (fun () ->
      ignore (Stats.Histogram.merge_all [ a; bad ]))

(* ---- quantile edge semantics, pinned (see histogram.mli) ----

   These document exact behaviour callers lean on: an empty histogram
   raises (and percentile_opt says None), a single sample answers every
   quantile with its bucket's upper edge, and a bucket saturated by
   every sample — including the clamped range-edge buckets — answers
   every quantile with that one edge. *)

let test_histogram_quantile_edges () =
  let empty = Stats.Histogram.create () in
  Alcotest.check_raises "empty percentile raises"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      ignore (Stats.Histogram.percentile empty 99.0));
  check "empty percentile_opt is None" true
    (Stats.Histogram.percentile_opt empty 99.0 = None);
  (* single sample: every p, including the clamped out-of-range ones,
     reports the same bucket upper edge, and it bounds the sample from
     above within the relative-error budget *)
  let single = Stats.Histogram.create () in
  Stats.Histogram.record single 37.0;
  let err = Stats.Histogram.max_relative_error single in
  let edge = Stats.Histogram.percentile single 50.0 in
  check "single sample below its bucket edge" true
    (edge >= 37.0 && edge <= 37.0 *. (1.0 +. err) +. 1e-9);
  List.iter
    (fun p -> checkf "single sample: every p, one answer" edge
        (Stats.Histogram.percentile single p))
    [ -10.0; 0.0; 1.0; 50.0; 99.9; 100.0; 400.0 ];
  check "percentile_opt agrees when nonempty" true
    (Stats.Histogram.percentile_opt single 99.0 = Some edge);
  (* saturated bucket: every sample clamps into the top edge bucket, so
     every quantile is that bucket's upper edge *)
  let sat = Stats.Histogram.create () in
  for _ = 1 to 1000 do
    Stats.Histogram.record sat 1e9 (* beyond hi = 1e7: clamps *)
  done;
  Alcotest.(check int) "saturated count" 1000 (Stats.Histogram.count sat);
  let top = Stats.Histogram.percentile sat 100.0 in
  check "saturated top bucket at or past hi" true (top >= 1e7);
  List.iter
    (fun p -> checkf "saturated bucket: every p, one answer" top
        (Stats.Histogram.percentile sat p))
    [ 0.0; 0.1; 50.0; 99.0; 100.0 ]

let prop_histogram_percentile_bounded =
  QCheck.Test.make ~name:"histogram percentile within relative-error bound of exact"
    ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 200) (map (fun x -> x +. 0.5) (float_bound_exclusive 5000.0))))
    (fun xs ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.record h) xs;
      let err = Stats.Histogram.max_relative_error h in
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      (* nearest-rank empirical quantile, the definition the histogram
         upper-bounds *)
      let exact_rank q =
        let k = max 1 (int_of_float (ceil (q /. 100.0 *. float_of_int n))) in
        List.nth sorted (k - 1)
      in
      List.for_all
        (fun q ->
          let exact = exact_rank q in
          let est = Stats.Histogram.percentile h q in
          est >= exact -. 1e-9 && est <= exact *. (1.0 +. err) +. 1e-9)
        [ 10.0; 50.0; 90.0; 99.0 ])

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 40) (float_bound_inclusive 1000.0))
              (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (xs <> []);
      let lo = min p1 p2 and hi = max p1 p2 in
      Summary.percentile xs lo <= Summary.percentile xs hi +. 1e-9)

let prop_cdf_inverse_consistent =
  QCheck.Test.make ~name:"cdf(inverse q) >= q" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 40) (float_bound_inclusive 1000.0))
              (float_bound_inclusive 1.0))
    (fun (xs, q) ->
      QCheck.assume (xs <> []);
      let c = Cdf.of_samples xs in
      Cdf.at c (Cdf.inverse c q) >= q -. 1e-9)

let prop_summary_bounds =
  QCheck.Test.make ~name:"mean and median lie within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (float_bound_inclusive 1000.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      let s = Summary.of_list xs in
      s.Summary.min <= s.Summary.mean +. 1e-9
      && s.Summary.mean <= s.Summary.max +. 1e-9
      && s.Summary.min <= s.Summary.median
      && s.Summary.median <= s.Summary.max)

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "mean/geomean" `Quick test_mean_geomean;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ("cdf", [ Alcotest.test_case "cdf" `Quick test_cdf ]);
      ("boxplot", [ Alcotest.test_case "boxplot" `Quick test_boxplot ]);
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "edge buckets" `Quick test_histogram_edges;
          Alcotest.test_case "merge empty" `Quick test_histogram_merge_empty;
          Alcotest.test_case "quantile edge semantics" `Quick
            test_histogram_quantile_edges;
          Alcotest.test_case "merge_all" `Quick test_histogram_merge_all;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_renders ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_percentile_monotone; prop_cdf_inverse_consistent;
            prop_summary_bounds; prop_histogram_percentile_bounded ]
      );
    ]
