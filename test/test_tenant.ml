(* lib/tenant tests: exact-fit quota charges, physical exhaustion under
   each over-commit policy, free_all semantics (including racing a
   mid-epoch sweep), sealed-capability revocation, and the sanitizer's
   quota-conservation rule catching a seeded skip-credit mutation. *)

module M = Sim.Machine
module Trace = Sim.Trace
module Cap = Cheri.Capability
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs
module Sizeclass = Alloc.Sizeclass
module Ledger = Tenancy.Ledger
module Sanitizer = Analysis.Sanitizer
module Tenantecon = Workload.Tenantecon

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = { M.default_config with heap_bytes = 4 lsl 20; mem_bytes = 16 lsl 20 }

(* One runtime, one app thread, a ledger arbitrating [phys_limit]. The
   checkers are optional so the fault-injection test can read the
   sanitizer's verdict. *)
let with_ledger ?(mode = Runtime.Baseline) ?(phys_limit = 4 lsl 20)
    ?(overcommit = Ledger.Deny) ?fault ?(sanitize = false) body =
  let rt = Runtime.create ~config:cfg mode in
  let m = rt.Runtime.machine in
  let tr = Trace.create ~capacity:262144 () in
  M.attach_tracer m (Some tr);
  let san =
    if sanitize then Some (Sanitizer.attach ?revoker:rt.Runtime.revoker m)
    else None
  in
  let led = Ledger.create m ~phys_limit ~overcommit () in
  (match fault with Some f -> Ledger.inject_fault led (Some f) | None -> ());
  let out = ref None in
  ignore
    (M.spawn m ~name:"app" ~core:0 (fun ctx ->
         out := Some (body rt led ctx);
         Runtime.finish rt ctx));
  M.run m;
  (match san with Some s -> Sanitizer.finish s | None -> ());
  (led, tr, san, Option.get !out)

let count_kind tr kind =
  let n = ref 0 in
  Trace.iter tr (fun e -> if e.Trace.kind = kind then incr n);
  !n

let drain rt ctx =
  match rt.Runtime.mrs with
  | Some mrs ->
      Mrs.flush mrs ctx;
      Mrs.wait_drained mrs ctx
  | None -> ()

(* ---- quota charges ---- *)

let test_exact_fit_charge () =
  (* The quota covers exactly one size-class-rounded allocation: the
     charge must be the rounded size, not the requested size, and the
     account must refuse a single further byte. *)
  let rounded = Sizeclass.rounded_size 100 in
  let led, _, _, () =
    with_ledger (fun rt led ctx ->
        let cap = Ledger.register led ~tenant:0 ~quota:rounded rt in
        let c = Ledger.malloc cap ctx 100 in
        check "exact fit succeeds" true (c <> None);
        let st = Ledger.account_stats led ~tenant:0 in
        check_int "charged the rounded size" rounded st.Ledger.s_charged;
        check "over quota at exact fit" true (Ledger.over_quota led ~tenant:0);
        check "one more byte denied" true (Ledger.malloc cap ctx 1 = None);
        (* A baseline runtime has no quarantine: the free credits
           inline and the quota is immediately whole again. *)
        Ledger.free cap ctx (Option.get c);
        check "credit restores the quota" false (Ledger.over_quota led ~tenant:0);
        check "fits again" true (Ledger.malloc cap ctx 100 <> None))
  in
  let st = Ledger.account_stats led ~tenant:0 in
  check_int "one quota deny" 1 st.Ledger.s_denied_quota;
  check_int "no physical deny" 0 st.Ledger.s_denied_phys;
  check "conserved" true st.Ledger.s_conserved

let test_sealed_capability_revoked () =
  let led, _, _, () =
    with_ledger (fun rt led ctx ->
        let cap = Ledger.register led ~tenant:0 ~quota:(1 lsl 20) rt in
        check "valid capability allocates" true (Ledger.malloc cap ctx 64 <> None);
        Ledger.revoke_cap led 0;
        check "revoked capability raises" true
          (try
             ignore (Ledger.malloc cap ctx 64);
             false
           with Invalid_argument _ -> true))
  in
  ignore led

(* ---- physical exhaustion under each over-commit policy ---- *)

let test_deny_at_exhaustion_deny () =
  let r = Sizeclass.rounded_size 4096 in
  let led, _, _, () =
    (* Quota is ample; the physical heap holds exactly two allocations.
       Under [Deny] the third is refused outright. *)
    with_ledger ~phys_limit:(2 * r) ~overcommit:Ledger.Deny
      (fun rt led ctx ->
        let cap = Ledger.register led ~tenant:0 ~quota:(8 * r) rt in
        check "first fits" true (Ledger.malloc cap ctx 4096 <> None);
        check "second fits" true (Ledger.malloc cap ctx 4096 <> None);
        check "third denied" true (Ledger.malloc cap ctx 4096 = None))
  in
  let st = Ledger.account_stats led ~tenant:0 in
  check_int "physical deny counted" 1 st.Ledger.s_denied_phys;
  check_int "no quota deny" 0 st.Ledger.s_denied_quota;
  check "conserved" true st.Ledger.s_conserved

let test_deny_at_exhaustion_steal () =
  let r = Sizeclass.rounded_size 4096 in
  let led, _, _, () =
    (* Live memory fills the physical heap and nothing is quarantined:
       steal-from-idle has no victim and must deny. After a free parks
       the charge in quarantine, the same allocation steals it back —
       forcing the debtor (here: the requester itself) through
       revocation — and succeeds. *)
    with_ledger ~mode:(Runtime.Safe Revoker.Reloaded) ~phys_limit:(2 * r)
      ~overcommit:Ledger.Steal_from_idle (fun rt led ctx ->
        let cap = Ledger.register led ~tenant:0 ~quota:(8 * r) rt in
        let a = Option.get (Ledger.malloc cap ctx 4096) in
        let _b = Option.get (Ledger.malloc cap ctx 4096) in
        check "no quarantine, nothing to steal" true
          (Ledger.malloc cap ctx 4096 = None);
        Ledger.free cap ctx a;
        check "charge parked in quarantine" true (Ledger.debt led ~tenant:0 > 0);
        check "steal reclaims the quarantine" true
          (Ledger.malloc cap ctx 4096 <> None);
        drain rt ctx)
  in
  let st = Ledger.account_stats led ~tenant:0 in
  check_int "one physical deny" 1 st.Ledger.s_denied_phys;
  check "victim reclaim counted" true (st.Ledger.s_reclaims >= 1);
  check "conserved" true st.Ledger.s_conserved

let test_deny_at_exhaustion_revoke () =
  let r = Sizeclass.rounded_size 4096 in
  let led, _, _, () =
    with_ledger ~mode:(Runtime.Safe Revoker.Reloaded) ~phys_limit:(2 * r)
      ~overcommit:Ledger.Trigger_revocation (fun rt led ctx ->
        let cap = Ledger.register led ~tenant:0 ~quota:(8 * r) rt in
        let a = Option.get (Ledger.malloc cap ctx 4096) in
        let _b = Option.get (Ledger.malloc cap ctx 4096) in
        check "no debtor, denied" true (Ledger.malloc cap ctx 4096 = None);
        Ledger.free cap ctx a;
        check "triggered revocation reclaims" true
          (Ledger.malloc cap ctx 4096 <> None);
        drain rt ctx)
  in
  let st = Ledger.account_stats led ~tenant:0 in
  check_int "one physical deny" 1 st.Ledger.s_denied_phys;
  check "conserved" true st.Ledger.s_conserved

(* ---- free_all ---- *)

let test_free_all_noop_when_empty () =
  let led, tr, _, () =
    with_ledger ~mode:(Runtime.Safe Revoker.Reloaded) (fun rt led ctx ->
        let cap = Ledger.register led ~tenant:0 ~quota:(1 lsl 20) rt in
        let n = 6 in
        for _ = 1 to n do
          ignore (Option.get (Ledger.malloc cap ctx 256))
        done;
        let count, bytes = Ledger.free_all cap ctx in
        check_int "hands every live allocation over" n count;
        check_int "hands every charged byte over"
          (n * Sizeclass.rounded_size 256) bytes;
        (* Everything is already in quarantine: a second bulk free has
           nothing to do and must say so. *)
        check "second free_all is a no-op" true (Ledger.free_all cap ctx = (0, 0));
        drain rt ctx)
  in
  let st = Ledger.account_stats led ~tenant:0 in
  check_int "only one storm on the books" 1 st.Ledger.s_free_alls;
  check_int "only one Free_all event" 1 (count_kind tr Trace.Free_all);
  check_int "everything credited back" 0
    (st.Ledger.s_charged - st.Ledger.s_credited);
  check "conserved" true st.Ledger.s_conserved

let test_free_all_racing_mid_epoch_sweep () =
  (* Kick an epoch with one batch, then dump the rest of the heap into
     quarantine while the sweep is in flight: the mid-epoch arrivals
     must ride the next pass (the resumable-epoch path), every credit
     must land, and the shadow-state sanitizer must stay silent. *)
  let led, _, san, was_in_flight =
    with_ledger ~mode:(Runtime.Safe Revoker.Reloaded) ~sanitize:true
      (fun rt led ctx ->
        let cap = Ledger.register led ~tenant:0 ~quota:(1 lsl 20) rt in
        let first = Array.init 16 (fun _ -> Option.get (Ledger.malloc cap ctx 1024)) in
        let rest = Array.init 48 (fun _ -> Option.get (Ledger.malloc cap ctx 512)) in
        ignore rest;
        Array.iter (fun c -> Ledger.free cap ctx c) first;
        let mrs = Option.get rt.Runtime.mrs in
        Mrs.flush mrs ctx;
        (* wait (bounded) for the revoker to actually take the batch *)
        let rv = Option.get rt.Runtime.revoker in
        let tries = ref 0 in
        while (not (Revoker.in_flight rv)) && !tries < 200 do
          incr tries;
          M.sleep ctx 1_000
        done;
        let in_flight = Revoker.in_flight rv in
        let count, _bytes = Ledger.free_all cap ctx in
        check_int "free_all hands over the live rest" 48 count;
        Mrs.wait_drained mrs ctx;
        in_flight)
  in
  check "epoch was in flight at free_all" true was_in_flight;
  let st = Ledger.account_stats led ~tenant:0 in
  check_int "every charge credited back" 0
    (st.Ledger.s_charged - st.Ledger.s_credited);
  check "conserved" true st.Ledger.s_conserved;
  match san with
  | Some san -> check "sanitizer clean" true (Sanitizer.ok san)
  | None -> assert false

(* ---- the quota-conservation rule ---- *)

let test_skip_credit_fault_detected () =
  (* Arm the seeded ledger mutation: one refund is dropped on the floor,
     so the region's [Reuse] arrives while the sanitizer's mirror still
     holds the charge. The quota-conservation rule must fire and the
     ledger-side identity must break. *)
  let led, _, san, () =
    with_ledger ~mode:(Runtime.Safe Revoker.Reloaded) ~sanitize:true
      ~fault:Ledger.Skip_credit (fun rt led ctx ->
        let cap = Ledger.register led ~tenant:0 ~quota:(1 lsl 20) rt in
        let c = Option.get (Ledger.malloc cap ctx 1024) in
        Ledger.free cap ctx c;
        drain rt ctx)
  in
  let st = Ledger.account_stats led ~tenant:0 in
  check "ledger identity broken" false st.Ledger.s_conserved;
  (match san with
  | Some san ->
      check "sanitizer flags it" false (Sanitizer.ok san);
      check "quota-conservation rule fired" true
        (Sanitizer.count san "quota-conservation" >= 1)
  | None -> assert false);
  check "rule is listed" true
    (List.mem_assoc "quota-conservation" Sanitizer.all_rules)

(* ---- the storm workload end to end ---- *)

let test_tenantecon_storm_identities () =
  let config =
    {
      Tenantecon.default_config with
      Tenantecon.requests = 150;
      slices = 8;
    }
  in
  let r =
    Tenantecon.run ~config ~mode:(Runtime.Safe Revoker.Reloaded) ()
  in
  check "serving identity exact" true r.Tenantecon.identity_ok;
  check "quota ledger conserved" true r.Tenantecon.conserved;
  check "storm fired" true (r.Tenantecon.storm_tenant > 0);
  check "storm handed bytes to quarantine" true (r.Tenantecon.storm_freed_bytes > 0);
  let crashed =
    List.filter (fun o -> o.Tenantecon.o_crashed) r.Tenantecon.per_tenant
  in
  check_int "exactly one tenant crashed" 1 (List.length crashed);
  check "largest tenant crashed" true
    (List.for_all
       (fun o ->
         o.Tenantecon.o_quota
         <= (List.hd crashed).Tenantecon.o_quota)
       r.Tenantecon.per_tenant)

let test_tenantecon_deterministic () =
  let config =
    { Tenantecon.default_config with Tenantecon.requests = 80; slices = 4 }
  in
  let run () = Tenantecon.run ~config ~mode:(Runtime.Safe Revoker.Reloaded) () in
  let a = run () and b = run () in
  check "identical wall clock" true (a.Tenantecon.wall_cycles = b.Tenantecon.wall_cycles);
  check "identical per-tenant rows" true
    (a.Tenantecon.per_tenant = b.Tenantecon.per_tenant);
  check "identical slice curve" true
    (a.Tenantecon.slice_p999 = b.Tenantecon.slice_p999)

let () =
  Alcotest.run "tenant"
    [
      ( "quota",
        [
          Alcotest.test_case "exact-fit charge" `Quick test_exact_fit_charge;
          Alcotest.test_case "sealed capability revoked" `Quick
            test_sealed_capability_revoked;
        ] );
      ( "overcommit",
        [
          Alcotest.test_case "deny" `Quick test_deny_at_exhaustion_deny;
          Alcotest.test_case "steal-from-idle" `Quick test_deny_at_exhaustion_steal;
          Alcotest.test_case "trigger-revocation" `Quick
            test_deny_at_exhaustion_revoke;
        ] );
      ( "free_all",
        [
          Alcotest.test_case "double free_all is a no-op" `Quick
            test_free_all_noop_when_empty;
          Alcotest.test_case "racing a mid-epoch sweep" `Quick
            test_free_all_racing_mid_epoch_sweep;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "skip-credit fault detected" `Quick
            test_skip_credit_fault_detected;
        ] );
      ( "storm",
        [
          Alcotest.test_case "identities hold end to end" `Quick
            test_tenantecon_storm_identities;
          Alcotest.test_case "deterministic" `Quick test_tenantecon_deterministic;
        ] );
    ]
