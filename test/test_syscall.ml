(* Kernel syscall drain-cost sampling: the revoker's quiesce-drain model
   must be deterministic under a fixed seed and the configured cap must
   actually bound the heavy-tailed Pareto draw. *)

module Syscall = Kernel.Syscall
module Prng = Sim.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let draws ~seed ~n profile =
  let rng = Prng.create ~seed in
  List.init n (fun _ -> Syscall.draw_drain rng profile)

let test_deterministic () =
  let a = draws ~seed:42 ~n:500 Syscall.default_profile in
  let b = draws ~seed:42 ~n:500 Syscall.default_profile in
  check "same seed, same drain sequence" true (a = b);
  let c = draws ~seed:43 ~n:500 Syscall.default_profile in
  check "different seed, different sequence" true (a <> c)

let test_cap_binds () =
  (* a deliberately low cap with a heavy tail: a sizeable fraction of
     raw Pareto draws land above it, so truncation must be visible *)
  let p = { Syscall.default_profile with drain_cap = 10_000 } in
  let ds = draws ~seed:7 ~n:2_000 p in
  check "every draw within the cap" true (List.for_all (fun d -> d <= 10_000) ds);
  check "no draw below the Pareto scale" true
    (List.for_all (fun d -> d >= int_of_float p.Syscall.drain_scale - 1) ds);
  check "the cap actually truncates (some draws sit exactly on it)" true
    (List.exists (fun d -> d = 10_000) ds)

let test_light_profile_bounded () =
  let p = Syscall.light_profile in
  let ds = draws ~seed:11 ~n:10_000 p in
  check "light profile never exceeds its drain cap" true
    (List.for_all (fun d -> d <= p.Syscall.drain_cap) ds);
  check "light drains are positive" true (List.for_all (fun d -> d > 0) ds)

let test_monotone_seed_independence () =
  (* splitting the stream does not change what a fixed-seed consumer
     draws: draw_drain must consume only from the rng it is handed *)
  let rng = Prng.create ~seed:5 in
  let first = Syscall.draw_drain rng Syscall.default_profile in
  let rng' = Prng.create ~seed:5 in
  ignore (Prng.split rng');
  let first' = Syscall.draw_drain rng' Syscall.default_profile in
  check_int "split advances the parent stream deterministically"
    (Syscall.draw_drain (Prng.create ~seed:5) Syscall.default_profile)
    first;
  (* both values are valid draws regardless *)
  check "split-stream draw within cap" true
    (first' <= Syscall.default_profile.Syscall.drain_cap)

let () =
  Alcotest.run "syscall"
    [
      ( "drain",
        [
          Alcotest.test_case "deterministic under fixed seed" `Quick
            test_deterministic;
          Alcotest.test_case "drain cap bounds the Pareto draw" `Quick
            test_cap_binds;
          Alcotest.test_case "light profile bounded" `Quick
            test_light_profile_bounded;
          Alcotest.test_case "stream discipline" `Quick
            test_monotone_seed_independence;
        ] );
    ]
