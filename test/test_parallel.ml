(* Parallel.Pool: submission-order results, deterministic error
   selection, and the jobs-determinism contract for real simulation
   fan-outs (the library-level half of the CI gate that diffs ccr_serve
   / ccr_chaos output across --jobs values). *)

module Pool = Parallel.Pool
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Serve = Workload.Serve
module Slo = Service.Slo

let check = Alcotest.(check bool)

let test_default_jobs () =
  let j = Pool.default_jobs () in
  check "at least 1" true (j >= 1);
  check "capped" true (j <= 16)

let test_order_preserved () =
  let xs = List.init 67 (fun i -> i) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        (List.map (fun i -> i * i) xs)
        (Pool.map ~jobs (fun i -> i * i) xs))
    [ 1; 2; 4; 9 ]

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun i -> i) []);
  Alcotest.(check (list int)) "one" [ 42 ] (Pool.map ~jobs:4 (fun i -> i) [ 42 ])

let test_more_jobs_than_items () =
  Alcotest.(check (list int))
    "jobs > items" [ 2; 4; 6 ]
    (Pool.map ~jobs:12 (( * ) 2) [ 1; 2; 3 ])

let test_lowest_failure_wins () =
  (* items 2 and 5 both raise; the lowest index must surface on every
     schedule, so error output is as deterministic as success output *)
  List.iter
    (fun jobs ->
      match
        Pool.map ~jobs
          (fun i -> if i = 2 || i = 5 then failwith (string_of_int i) else i)
          [ 0; 1; 2; 3; 4; 5; 6 ]
      with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d" jobs)
            "2" msg)
    [ 1; 3; 8 ]

let test_all_items_run_despite_failure () =
  (* a failure must not stop other items: every element is attempted *)
  let hit = Array.make 16 false in
  (try
     ignore
       (Pool.map ~jobs:4
          (fun i ->
            hit.(i) <- true;
            if i = 0 then failwith "boom")
          (List.init 16 (fun i -> i)))
   with Failure _ -> ());
  check "all attempted" true (Array.for_all (fun b -> b) hit)

(* ---- simulation determinism across jobs ---- *)

(* Identical (seed, mode) simulation points fanned out with different
   jobs values must produce identical results: the pool only reorders
   host execution, never simulated behaviour. *)

let spec_points =
  let p = Workload.Profile.find "hmmer_retro" in
  List.concat_map
    (fun mode -> List.map (fun seed -> (p, mode, seed)) [ 1; 2 ])
    [ Runtime.Safe Revoker.Cornucopia; Runtime.Safe Revoker.Reloaded ]

let run_spec_points ~jobs =
  Pool.map ~jobs
    (fun (p, mode, seed) ->
      let r = Workload.Spec.run ~seed ~ops_scale:0.02 ~mode p in
      ( r.Workload.Result.wall_cycles,
        r.Workload.Result.cpu_cycles,
        r.Workload.Result.bus_total ))
    spec_points

let test_spec_jobs_deterministic () =
  let seq = run_spec_points ~jobs:1 in
  let par = run_spec_points ~jobs:4 in
  Alcotest.(check (list (triple int int int))) "jobs 1 == jobs 4" seq par

let serve_outcome ~jobs =
  let cfg = { Serve.default_config with Serve.requests = 400; seed = 7 } in
  Pool.map ~jobs
    (fun mode ->
      let o = Serve.run ~config:cfg ~governed:false ~mode () in
      ( (o.Serve.offered, o.Serve.served, o.Serve.shed_depth),
        (match Slo.percentile o.Serve.slo 99.0 with Some v -> v | None -> 0.0) ))
    [ Runtime.Safe Revoker.Cornucopia; Runtime.Safe Revoker.Reloaded ]

let test_serve_jobs_deterministic () =
  Alcotest.(check (list (pair (triple int int int) (float 0.0))))
    "serve jobs 1 == jobs 4" (serve_outcome ~jobs:1) (serve_outcome ~jobs:4)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "jobs > items" `Quick test_more_jobs_than_items;
          Alcotest.test_case "lowest failure wins" `Quick test_lowest_failure_wins;
          Alcotest.test_case "failure isolation" `Quick
            test_all_items_run_despite_failure;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "spec points" `Quick test_spec_jobs_deterministic;
          Alcotest.test_case "serve points" `Quick test_serve_jobs_deterministic;
        ] );
    ]
