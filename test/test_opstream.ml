(* Compiled op-stream equivalence tests.

   The compiled interpreter (Workload.Opstream) must be *bit-for-bit*
   equivalent to the reference per-op interpreter (Spec.app_body): same
   Result, same simulated cycles, same per-core cache and bus state,
   same trace stream — for any profile, seed, temporal-safety mode and
   allocator. The observation below captures all of it; a single
   diverging cycle anywhere in the run shifts every later event time
   and fails the comparison.

   Runs that arm chaos hooks or a load-filter barrier (cheriot) must
   fall back to the reference interpreter soundly: requesting Compiled
   still produces exactly the Reference observation, never a
   Divergence. *)

module M = Sim.Machine
module Trace = Sim.Trace
module Prng = Sim.Prng
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Profile = Workload.Profile
module Spec = Workload.Spec
module Opstream = Workload.Opstream

let check = Alcotest.(check bool)

(* ---- observation ---- *)

type observation = {
  o_result : Workload.Result.t;
  o_totals : M.totals;
  o_caches : Tagmem.Cache.stats list; (* per core *)
  o_trace_total : int;
  o_trace_dropped : int;
  o_events : (int * int * int * string * int * int) list;
}

let observe ?allocator ?on_runtime ~interp ~seed ~mode p =
  let tr = Trace.create ~capacity:65536 () in
  let mref = ref None in
  let r =
    Spec.run ~seed ?allocator ~tracer:tr ~interp
      ~on_runtime:(fun rt ->
        mref := Some rt.Runtime.machine;
        match on_runtime with Some f -> f rt | None -> ())
      ~mode p
  in
  let m = Option.get !mref in
  {
    o_result = r;
    o_totals = M.totals m;
    o_caches = List.init (M.num_cores m) (fun i -> M.cache_stats m i);
    o_trace_total = Trace.total tr;
    o_trace_dropped = Trace.dropped tr;
    o_events =
      List.map
        (fun e ->
          ( e.Trace.time,
            e.Trace.core,
            e.Trace.pid,
            Trace.kind_name e.Trace.kind,
            e.Trace.arg,
            e.Trace.arg2 ))
        (Trace.to_list tr);
  }

let equivalent ?allocator ?on_runtime ~seed ~mode p =
  let a = observe ?allocator ?on_runtime ~interp:Spec.Reference ~seed ~mode p in
  let b = observe ?allocator ?on_runtime ~interp:Spec.Compiled ~seed ~mode p in
  a = b

(* ---- fixed profiles across every strategy ---- *)

let tiny name ~ops ~slots =
  { (Profile.find name) with Profile.ops; slots }

let strategies =
  [
    ("baseline", Runtime.Baseline);
    ("paint+sync", Runtime.Safe Revoker.Paint_sync);
    ("cherivoke", Runtime.Safe Revoker.Cherivoke);
    ("cornucopia", Runtime.Safe Revoker.Cornucopia);
    ("reloaded", Runtime.Safe Revoker.Reloaded);
  ]

let test_spec_profiles_all_strategies () =
  let p = tiny "hmmer_retro" ~ops:2_500 ~slots:300 in
  List.iter
    (fun (name, mode) ->
      check (Printf.sprintf "hmmer_retro tiny, %s" name) true
        (equivalent ~seed:1 ~mode p))
    strategies

let test_spec_profile_shapes () =
  (* distinct allocation/access shapes: pointer-chase-heavy mixture
     sizes (omnetpp), huge fixed objects in a tiny table (libquantum),
     near-zero churn (bzip2, no revocation pressure) *)
  List.iter
    (fun (label, p, mode) ->
      check label true (equivalent ~seed:3 ~mode p))
    [
      ( "omnetpp tiny, reloaded",
        tiny "omnetpp" ~ops:1_500 ~slots:500,
        Runtime.Safe Revoker.Reloaded );
      ( "xalancbmk tiny, cornucopia",
        tiny "xalancbmk" ~ops:1_200 ~slots:400,
        Runtime.Safe Revoker.Cornucopia );
      ( "libquantum tiny, reloaded",
        tiny "libquantum" ~ops:600 ~slots:12,
        Runtime.Safe Revoker.Reloaded );
      ( "bzip2 tiny, baseline",
        tiny "bzip2" ~ops:500 ~slots:64,
        Runtime.Baseline );
    ]

let test_jemalloc_and_seeds () =
  (* the compiler's length predictor must hold for both allocators, and
     nothing may depend on the specific seed *)
  let p = tiny "hmmer_retro" ~ops:1_500 ~slots:200 in
  List.iter
    (fun seed ->
      check
        (Printf.sprintf "jemalloc seed %d" seed)
        true
        (equivalent ~allocator:Runtime.Jemalloc ~seed
           ~mode:(Runtime.Safe Revoker.Reloaded) p);
      check
        (Printf.sprintf "snmalloc seed %d" seed)
        true
        (equivalent ~allocator:Runtime.Snmalloc ~seed
           ~mode:(Runtime.Safe Revoker.Cornucopia) p))
    [ 2; 7; 23 ]

(* ---- fallbacks ---- *)

let test_cheriot_falls_back () =
  (* cheriot's load filter can strip live tags, which the compiled
     schedule cannot represent: requesting Compiled must transparently
     run the reference loop (hmmer_nph3 at this scale is a known
     tag-stripping case), not raise Divergence *)
  let p = tiny "hmmer_nph3" ~ops:25_000 ~slots:6_300 in
  check "cheriot equivalence via fallback" true
    (equivalent ~seed:1 ~mode:(Runtime.Safe Revoker.Cheriot_filter) p)

let test_chaos_armed_falls_back () =
  (* an armed chaos hook (here: a tag-read hook that corrupts every
     512th read) flips the machine to reference interpretation *)
  let p = tiny "hmmer_retro" ~ops:1_200 ~slots:200 in
  let on_runtime rt =
    let n = ref 0 in
    M.set_tag_read_hook rt.Runtime.machine
      (Some
         (fun ~pa:_ ->
           incr n;
           !n mod 512 = 0))
  in
  check "chaos-armed equivalence via fallback" true
    (equivalent ~on_runtime ~seed:5 ~mode:(Runtime.Safe Revoker.Reloaded) p)

(* ---- random profiles ---- *)

let size_dist_gen =
  QCheck.Gen.(
    let fixed = map (fun n -> Profile.Fixed (16 + n)) (int_bound 4080) in
    let uniform =
      map2
        (fun lo span -> Profile.Uniform (16 + lo, 16 + lo + span))
        (int_bound 1024) (int_bound 2048)
    in
    let arm = oneof [ fixed; uniform ] in
    let mixture =
      let* n = int_range 2 3 in
      let* arms =
        list_size (return n)
          (pair (map (fun w -> 0.1 +. (float_of_int w /. 10.0)) (int_bound 30)) arm)
      in
      return (Profile.Mixture arms)
    in
    oneof [ fixed; uniform; mixture ])

let profile_gen =
  QCheck.Gen.(
    let* slots = int_range 8 300 in
    let* target_live = map (fun n -> float_of_int n /. 100.0) (int_range 10 100) in
    let* size = size_dist_gen in
    let* ops = int_range 200 1_500 in
    let* churn = map (fun n -> float_of_int n /. 100.0) (int_bound 40) in
    let* kill_only = map (fun n -> float_of_int n /. 100.0) (int_bound 10) in
    let* birth_only = map (fun n -> float_of_int n /. 100.0) (int_bound 10) in
    let* ptr_density = map (fun n -> float_of_int n /. 100.0) (int_bound 60) in
    let* reads_per_op = int_bound 6 in
    let* writes_per_op = int_bound 4 in
    let* chase_depth = int_bound 4 in
    let* hot_fraction = map (fun n -> float_of_int n /. 100.0) (int_bound 50) in
    let* hot_weight = map (fun n -> float_of_int n /. 100.0) (int_bound 100) in
    let* compute_per_op = int_bound 500 in
    return
      (Profile.make ~name:"random" ~slots ~target_live ~size ~ops ~churn
         ~kill_only ~birth_only ~ptr_density ~reads_per_op ~writes_per_op
         ~chase_depth ~hot_fraction ~hot_weight ~compute_per_op
         ~engages_revocation:true ()))

let case_gen =
  QCheck.Gen.(
    let* p = profile_gen in
    let* mode = oneofl (List.map snd strategies) in
    let* seed = int_range 1 1000 in
    return (p, mode, seed))

let case_arb =
  QCheck.make
    ~print:(fun ((p : Profile.t), mode, seed) ->
      Printf.sprintf
        "seed=%d mode=%s slots=%d live=%.2f ops=%d churn=%.2f kill=%.2f \
         birth=%.2f ptr=%.2f r=%d w=%d chase=%d hot=%.2f/%.2f compute=%d \
         mean_size=%.0f"
        seed (Runtime.mode_name mode) p.Profile.slots p.Profile.target_live
        p.Profile.ops p.Profile.churn p.Profile.kill_only p.Profile.birth_only
        p.Profile.ptr_density p.Profile.reads_per_op p.Profile.writes_per_op
        p.Profile.chase_depth p.Profile.hot_fraction p.Profile.hot_weight
        p.Profile.compute_per_op (Profile.mean_size p))
    case_gen

let prop_random_profiles =
  QCheck.Test.make ~name:"compiled == reference on random profiles" ~count:15
    case_arb (fun (p, mode, seed) -> equivalent ~seed ~mode p)

(* ---- mod_hilo ---- *)

let prop_mod_hilo =
  QCheck.Test.make ~name:"mod_hilo matches Prng.int's reduction" ~count:2000
    QCheck.(pair int64 (int_range 1 max_int))
    (fun (raw, n) ->
      (* clamp n into Prng.int's domain and x into the raw-draw range *)
      let n = 1 + (n mod ((1 lsl 31) - 1)) in
      let x = Int64.logand raw Int64.max_int in
      let hi = Int64.to_int (Int64.shift_right_logical x 31) in
      let lo = Int64.to_int (Int64.logand x 0x7FFF_FFFFL) in
      Opstream.mod_hilo hi lo n = Int64.to_int (Int64.rem x (Int64.of_int n)))

let () =
  Alcotest.run "opstream"
    [
      ( "equivalence",
        [
          Alcotest.test_case "spec profiles x strategies" `Quick
            test_spec_profiles_all_strategies;
          Alcotest.test_case "profile shapes" `Quick test_spec_profile_shapes;
          Alcotest.test_case "allocators and seeds" `Quick
            test_jemalloc_and_seeds;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_random_profiles ] );
      ( "fallback",
        [
          Alcotest.test_case "cheriot load filter" `Quick
            test_cheriot_falls_back;
          Alcotest.test_case "chaos hooks" `Quick test_chaos_armed_falls_back;
        ] );
      ( "kernels", List.map QCheck_alcotest.to_alcotest [ prop_mod_hilo ] );
    ]
