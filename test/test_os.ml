(* lib/os tests: copy-on-write fork, per-process revocation, exec, the
   reaper's quarantine handoff, the cross-process scheduler, and the
   multi-tenant driver under every strategy with the checkers attached. *)

module M = Sim.Machine
module Trace = Sim.Trace
module Cap = Cheri.Capability
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs
module Profile = Workload.Profile
module Tenant = Workload.Tenant
module Sanitizer = Analysis.Sanitizer
module Race = Analysis.Race

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let config =
  {
    M.default_config with
    heap_bytes = 4 lsl 20;
    mem_bytes = 48 lsl 20;
    seed = 11;
  }

let count_kind tr kind =
  let n = ref 0 in
  Trace.iter tr (fun e -> if e.Trace.kind = kind then incr n);
  !n

let with_os ?(mode = Runtime.Baseline) ?sched ?fault body =
  let os = Os.create ~config ?sched mode in
  (match fault with Some f -> Os.inject_fault os (Some f) | None -> ());
  let m = Os.machine os in
  let tr = Trace.create ~capacity:262144 () in
  M.attach_tracer m (Some tr);
  let san = Sanitizer.attach ?revoker:(Os.runtime (Os.init os)).Runtime.revoker m in
  Os.set_on_process os (fun p ->
      Sanitizer.register_process san ~pid:(Os.pid p)
        ?revoker:(Os.runtime p).Runtime.revoker ());
  Os.spawn_reaper os;
  ignore
    (M.spawn m ~name:"init" ~core:0 (fun ctx ->
         body os ctx;
         Os.wait_children os ctx;
         Os.shutdown os ctx));
  M.run m;
  Sanitizer.finish san;
  (os, tr, san)

(* ---- copy-on-write fork ---- *)

let test_fork_cow_isolation () =
  let seen = ref [] in
  let _, tr, san =
    with_os (fun os ctx ->
        let rt = Os.runtime (Os.init os) in
        let c = Runtime.malloc rt ctx 64 in
        M.store_u64 ctx c 42L;
        ignore
          (Os.fork os ctx ~parent:(Os.init os) ~name:"child" ~core:1
             (fun cctx proc ->
               seen := ("child-pre", M.load_u64 cctx c) :: !seen;
               M.store_u64 cctx c 7L;
               seen := ("child-post", M.load_u64 cctx c) :: !seen;
               Os.exit os cctx proc));
        Os.wait_children os ctx;
        seen := ("parent", M.load_u64 ctx c) :: !seen)
  in
  check "sanitizer clean" true (Sanitizer.ok san);
  let v tag = List.assoc tag !seen in
  check "child reads parent's value through the shared frame" true
    (v "child-pre" = 42L);
  check "child write lands in its private copy" true (v "child-post" = 7L);
  check "parent's frame is untouched by the child's write" true
    (v "parent" = 42L);
  check "the child's first write took a CoW fault" true
    (count_kind tr Trace.Cow_fault >= 1);
  check_int "one fork" 1 (count_kind tr Trace.Proc_fork)

let test_fork_shares_until_write () =
  let refs = ref (-1) in
  let _, _, _ =
    with_os (fun os ctx ->
        let rt = Os.runtime (Os.init os) in
        let c = Runtime.malloc rt ctx 64 in
        M.store_u64 ctx c 1L;
        let asp = Os.proc_aspace (Os.init os) in
        let phys = Vm.Aspace.phys asp in
        (match Vm.Aspace.translate asp (Cap.base c) with
        | Some (_, pte) ->
            ignore
              (Os.fork os ctx ~parent:(Os.init os) ~name:"child" ~core:1
                 (fun cctx proc ->
                   ignore (M.load_u64 cctx c);
                   refs := Vm.Phys.frame_refs phys pte.Vm.Pte.frame;
                   Os.exit os cctx proc))
        | None -> Alcotest.fail "heap page unmapped"))
  in
  check "frame shared (2 refs) while only reads happen" true (!refs = 2)

(* ---- CoW fault on a quarantined page ---- *)

let test_cow_fault_on_quarantined_page () =
  let mode = Runtime.Safe Revoker.Reloaded in
  let _, tr, san =
    with_os ~mode (fun os ctx ->
        let rt = Os.runtime (Os.init os) in
        (* two small objects land on the same heap page: free one (it is
           painted and quarantined), keep the other live *)
        let dead = Runtime.malloc rt ctx 64 in
        let live = Runtime.malloc rt ctx 64 in
        M.store_u64 ctx live 5L;
        Runtime.free rt ctx dead;
        ignore
          (Os.fork os ctx ~parent:(Os.init os) ~name:"child" ~core:1
             (fun cctx proc ->
               (* the child's first store hits the CoW page that also
                  holds the quarantined region *)
               M.store_u64 cctx live 9L;
               (* drain the child's inherited quarantine through its own
                  revoker before exiting *)
               (match (Os.runtime proc).Runtime.mrs with
               | Some mrs ->
                   Mrs.flush mrs cctx;
                   Mrs.wait_drained mrs cctx
               | None -> ());
               Os.exit os cctx proc)))
  in
  check "CoW fault fired on the quarantined page" true
    (count_kind tr Trace.Cow_fault >= 1);
  check "sanitizer clean across fork + quarantine + CoW" true
    (Sanitizer.ok san)

(* ---- stale CLG generation inherited across fork ---- *)

let test_fork_inherits_stale_generation () =
  let mode = Runtime.Safe Revoker.Reloaded in
  let gen_at_fork = ref false in
  let _, tr, san =
    with_os ~mode (fun os ctx ->
        let rt = Os.runtime (Os.init os) in
        let mrs = Option.get rt.Runtime.mrs in
        (* run one full epoch in the parent so its generation is odd:
           pages mapped afterwards carry the new generation, pages from
           before carry the old one *)
        let a = Runtime.malloc rt ctx 256 in
        ignore (M.load_u64 ctx a);
        Runtime.free rt ctx a;
        Mrs.flush mrs ctx;
        Mrs.wait_drained mrs ctx;
        let asp = Os.proc_aspace (Os.init os) in
        gen_at_fork := Vm.Pmap.generation (Vm.Aspace.pmap asp);
        let b = Runtime.malloc rt ctx 256 in
        M.store_u64 ctx b 3L;
        ignore
          (Os.fork os ctx ~parent:(Os.init os) ~name:"child" ~core:1
             (fun cctx proc ->
               let crt = Os.runtime proc in
               let cmrs = Option.get crt.Runtime.mrs in
               (* the child's address space starts on the inherited
                  (toggled) generation *)
               let casp = Os.proc_aspace proc in
               check "child inherits the parent's generation" true
                 (Vm.Pmap.generation (Vm.Aspace.pmap casp) = !gen_at_fork);
               (* free in the child and run its first epoch: soundness
                  requires the mixed-generation full visit *)
               let c = Runtime.malloc crt cctx 128 in
               M.store_cap cctx b (Cap.set_addr c (Cap.base c));
               Runtime.free crt cctx c;
               Mrs.flush cmrs cctx;
               Mrs.wait_drained cmrs cctx;
               (* the stale capability stored into [b]'s body has been
                  revoked by the child's sweep *)
               let reloaded = M.load_cap cctx b in
               check "stale cap revoked by the child's first epoch" false
                 (Cap.tag reloaded);
               Os.exit os cctx proc)))
  in
  check "parent ran an epoch before the fork" true
    (count_kind tr Trace.Clg_toggle >= 1);
  check "sanitizer clean across generation inheritance" true
    (Sanitizer.ok san)

(* ---- exit with a batch mid-epoch: quarantine handed to the reaper ---- *)

let test_exit_mid_epoch_drains () =
  let mode = Runtime.Safe Revoker.Reloaded in
  let child_q = ref 0 in
  let exited_q = ref (-1) in
  let os, tr, san =
    with_os ~mode (fun os ctx ->
        ignore
          (Os.fork os ctx ~parent:(Os.init os) ~name:"child" ~core:1
             (fun cctx proc ->
               let crt = Os.runtime proc in
               let cmrs = Option.get crt.Runtime.mrs in
               for _ = 1 to 16 do
                 let c = Runtime.malloc crt cctx 512 in
                 Runtime.free crt cctx c
               done;
               (* hand one batch to the revoker and exit immediately:
                  the epoch is still in flight when the process dies *)
               Mrs.flush cmrs cctx;
               child_q := Mrs.quarantine_bytes cmrs;
               Os.exit os cctx proc;
               exited_q := Mrs.quarantine_bytes cmrs)))
  in
  check "child exited with quarantine outstanding" true (!child_q > 0);
  check "quarantine still pending right after exit" true (!exited_q > 0);
  (* the reaper waited for the child's epochs to drain every byte *)
  let child = Option.get (Os.find_proc os 1) in
  check_int "child reaped" 0
    (match Os.proc_state child with Os.Reaped -> 0 | _ -> 1);
  check_int "no quarantined bytes leaked" 0
    (Os.proc_stats os child).Os.quarantine_bytes;
  check "Proc_exit recorded the handoff" true
    (let n = ref 0 in
     Trace.iter tr (fun e ->
         if e.Trace.kind = Trace.Proc_exit && e.Trace.arg > 0 then incr n);
     !n >= 1);
  check "sanitizer clean: every region completed its lifecycle" true
    (Sanitizer.ok san)

(* frames released by the reaper are reusable by others *)
let test_reap_recovers_frames () =
  let free_before = ref 0 and free_after = ref 0 in
  let os, _, _ =
    with_os (fun os ctx ->
        let phys = Vm.Aspace.phys (Os.proc_aspace (Os.init os)) in
        free_before := Vm.Phys.free_frames phys;
        ignore
          (Os.fork os ctx ~parent:(Os.init os) ~name:"child" ~core:1
             (fun cctx proc ->
               let crt = Os.runtime proc in
               (* map fresh private pages in the child *)
               for _ = 1 to 32 do
                 let c = Runtime.malloc crt cctx 4096 in
                 M.store_u64 cctx c 1L
               done;
               Os.exit os cctx proc));
        Os.wait_children os ctx;
        free_after := Vm.Phys.free_frames phys)
  in
  ignore os;
  check "reaper returned the child's frames to the shared pool" true
    (!free_after >= !free_before)

(* ---- exec ---- *)

let test_exec_fresh_image () =
  let mode = Runtime.Safe Revoker.Reloaded in
  let os, tr, san =
    with_os ~mode (fun os ctx ->
        ignore
          (Os.fork os ctx ~parent:(Os.init os) ~name:"child" ~core:1
             (fun cctx proc ->
               let crt = Os.runtime proc in
               let c = Runtime.malloc crt cctx 128 in
               M.store_u64 cctx c 1L;
               Runtime.free crt cctx c;
               let old_asid = Vm.Aspace.asid (Os.proc_aspace proc) in
               Os.exec os cctx proc ~name:"child-image2";
               check "exec installed a fresh asid" false
                 (Vm.Aspace.asid (Os.proc_aspace proc) = old_asid);
               (* the new image allocates from a clean heap *)
               let crt2 = Os.runtime proc in
               let d = Runtime.malloc crt2 cctx 128 in
               M.store_u64 cctx d 2L;
               check "new image's heap works" true (M.load_u64 cctx d = 2L);
               Runtime.free crt2 cctx d;
               (match crt2.Runtime.mrs with
               | Some mrs ->
                   Mrs.flush mrs cctx;
                   Mrs.wait_drained mrs cctx
               | None -> ());
               Os.exit os cctx proc)))
  in
  ignore os;
  check_int "one exec" 1 (count_kind tr Trace.Proc_exec);
  check "sanitizer clean across exec" true (Sanitizer.ok san)

(* ---- seeded fault: child adopts quarantine for immediate reuse ---- *)

let test_adopt_quarantine_fault_detected () =
  let mode = Runtime.Safe Revoker.Reloaded in
  let _, _, san =
    with_os ~mode ~fault:Os.Adopt_quarantine (fun os ctx ->
        let rt = Os.runtime (Os.init os) in
        let mrs = Option.get rt.Runtime.mrs in
        (* park regions in the parent's quarantine, then fork: the
           faulty kernel hands them to the child as reusable memory
           before the parent's epoch has closed *)
        let caps = List.init 8 (fun _ -> Runtime.malloc rt ctx 256) in
        List.iter (fun c -> Runtime.free rt ctx c) caps;
        check "parent holds quarantine at fork" true
          (Mrs.quarantine_bytes mrs > 0);
        ignore
          (Os.fork os ctx ~parent:(Os.init os) ~name:"child" ~core:1
             (fun cctx proc ->
               let crt = Os.runtime proc in
               (* reuse: the allocator hands back the adopted regions
                  while the parent's copies are still un-revoked *)
               let c = Runtime.malloc crt cctx 256 in
               M.store_u64 cctx c 13L;
               Os.exit os cctx proc));
        Mrs.flush mrs ctx;
        Mrs.wait_drained mrs ctx)
  in
  check "sanitizer caught the premature adoption" false (Sanitizer.ok san);
  check "reuse before the epoch closed" true
    (Sanitizer.count san "early-reuse" > 0
    || Sanitizer.count san "unpaint-not-dequarantined" > 0
    || Sanitizer.count san "dequeue-not-enqueued" > 0)

(* ---- multi-tenant acceptance: clean under every strategy ---- *)

let tiny = { (Profile.find "hmmer_retro") with Profile.ops = 1_200; slots = 200 }

let run_tenants ?(tenants = 2) ?sched mode =
  let tr = Trace.create ~capacity:4096 () in
  let san = ref None in
  let race = ref None in
  let r =
    Tenant.run ~seed:7 ~tenants ?sched ~tracer:tr ~mode tiny
      ~on_os:(fun os ->
        let m = Os.machine os in
        let s =
          Sanitizer.attach ?revoker:(Os.runtime (Os.init os)).Runtime.revoker m
        in
        Os.set_on_process os (fun p ->
            Sanitizer.register_process s ~pid:(Os.pid p)
              ?revoker:(Os.runtime p).Runtime.revoker ());
        san := Some s;
        race := Some (Race.attach m))
  in
  let s = Option.get !san in
  Sanitizer.finish s;
  (r, s, Option.get !race)

let test_tenant_all_strategies () =
  List.iter
    (fun strategy ->
      let name = Revoker.strategy_name strategy in
      let r, san, race = run_tenants (Runtime.Safe strategy) in
      check (name ^ ": both tenants ran") true
        (List.length r.Tenant.per_tenant = 2);
      List.iter
        (fun (t : Tenant.tenant_result) ->
          check (name ^ ": tenant did work") true (t.Tenant.t_ops > 0))
        r.Tenant.per_tenant;
      check (name ^ ": fairness is a ratio >= 1") true
        (r.Tenant.fairness >= 1.0);
      if not (Sanitizer.ok san) then
        Sanitizer.report Format.err_formatter san;
      check (name ^ ": sanitizer clean") true (Sanitizer.ok san);
      check (name ^ ": race-free") true (Race.ok race))
    Revoker.extended_strategies

let test_tenant_baseline () =
  let r, san, _ = run_tenants Runtime.Baseline in
  check "baseline tenants ran" true (List.length r.Tenant.per_tenant = 2);
  check "baseline sanitizer clean" true (Sanitizer.ok san)

let test_tenant_sched_policies () =
  let r_rr, _, _ =
    run_tenants ~sched:Os.Revsched.Round_robin
      (Runtime.Safe Revoker.Reloaded)
  in
  let r_p, _, _ =
    run_tenants ~sched:Os.Revsched.Pressure (Runtime.Safe Revoker.Reloaded)
  in
  check "round-robin grants recorded" true
    (List.exists
       (fun (s : Os.Revsched.stats) -> s.Os.Revsched.grants > 0)
       r_rr.Tenant.sched_stats);
  check "pressure grants recorded" true
    (List.exists
       (fun (s : Os.Revsched.stats) -> s.Os.Revsched.grants > 0)
       r_p.Tenant.sched_stats);
  (* round-robin grant counts never diverge by more than one among
     continuously-contending tenants; just assert both finished *)
  check "both policies complete" true
    (r_rr.Tenant.total_ops > 0 && r_p.Tenant.total_ops > 0)

let test_tenant_deterministic () =
  let r1, _, _ = run_tenants (Runtime.Safe Revoker.Reloaded) in
  let r2, _, _ = run_tenants (Runtime.Safe Revoker.Reloaded) in
  check_int "same wall cycles" r1.Tenant.wall_cycles r2.Tenant.wall_cycles;
  check_int "same total ops" r1.Tenant.total_ops r2.Tenant.total_ops

let () =
  Alcotest.run "os"
    [
      ( "fork",
        [
          Alcotest.test_case "cow isolation" `Quick test_fork_cow_isolation;
          Alcotest.test_case "frame sharing" `Quick test_fork_shares_until_write;
          Alcotest.test_case "cow fault on quarantined page" `Quick
            test_cow_fault_on_quarantined_page;
          Alcotest.test_case "stale generation inherited" `Quick
            test_fork_inherits_stale_generation;
        ] );
      ( "exit",
        [
          Alcotest.test_case "mid-epoch exit drains" `Quick
            test_exit_mid_epoch_drains;
          Alcotest.test_case "reap recovers frames" `Quick
            test_reap_recovers_frames;
        ] );
      ("exec", [ Alcotest.test_case "fresh image" `Quick test_exec_fresh_image ]);
      ( "faults",
        [
          Alcotest.test_case "adopt-quarantine detected" `Quick
            test_adopt_quarantine_fault_detected;
        ] );
      ( "tenant",
        [
          Alcotest.test_case "all strategies clean" `Quick
            test_tenant_all_strategies;
          Alcotest.test_case "baseline" `Quick test_tenant_baseline;
          Alcotest.test_case "sched policies" `Quick test_tenant_sched_policies;
          Alcotest.test_case "deterministic" `Quick test_tenant_deterministic;
        ] );
    ]
