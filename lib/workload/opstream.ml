module Capability = Cheri.Capability
module Machine = Sim.Machine
module Prng = Sim.Prng
module Regfile = Sim.Regfile
module Runtime = Ccr.Runtime

let granule = Objtable.granule

(* Register conventions shared with the reference interpreter (Spec). *)
let r_work = 1
let r_chase = 2
let r_recent = 3

exception Divergence of string

(* Entry kinds. One entry per reference-interpreter operation (plus one
   per prologue allocation); [K_none] records an op whose slot pick found
   nothing and therefore did nothing. *)
let k_none = 0
let k_kill = 1 (* churn without realloc *)
let k_churn = 2 (* free + realloc into the same slot *)
let k_birth = 3 (* alloc into a dead slot *)
let k_access = 4

type t = {
  n_prologue : int; (* leading entries that are table warm-up, not ops *)
  kinds : int array;
  slots : int array;
  sizes : int array; (* requested (sampled) allocation size *)
  lens : int array; (* predicted capability length / live-object length *)
  aux : int array; (* K_kill/K_churn: 1 = clear r_work after the free *)
  gidx : int array; (* shared granule-index stream, consumed positionally:
                       allocs push [(g lsl 1) lor is_ptr] per body store,
                       accesses push plain indices, reads then writes *)
  chase_hi : int array; (* raw PRNG draws for pointer-chase steps, split *)
  chase_lo : int array; (* into bits 31..62 / 0..30 (see [mod_hilo]) *)
}

let length s = Array.length s.kinds
let stream_ops s = length s - s.n_prologue

(* ---- growable int vector (compile-time only) ---- *)

module Vec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 1024 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let g = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 g 0 v.n;
      v.a <- g
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let to_array v = Array.sub v.a 0 v.n
end

(* ---- compilation ----

   Replays the reference interpreter's PRNG consumption exactly — same
   draws, same order — against a host-side shadow of the object table
   (liveness flags and object lengths are host bookkeeping in the
   reference too, so the shadow is exact, not approximate). Draws whose
   *reduction* depends on simulated machine state (pointer-chase steps:
   the modulus is the length of whatever capability the chase actually
   reached) are stored raw and reduced at execution time with the same
   arithmetic [Prng.int] would have used.

   Two machine-state assumptions are baked in and asserted (never
   silently) by the executor:
   - a live slot's capability is tagged: live slots hold malloc'd
     capabilities to unfreed memory, which nothing untags without chaos
     hooks armed (drivers fall back to the reference interpreter when
     [Machine.chaos_armed]);
   - [Runtime.malloc req] returns a capability of length
     [Alloc.Sizeclass.rounded_size req], for both allocators. *)

let compile (p : Profile.t) ~rng ~ops =
  let nslots = p.Profile.slots in
  let live = Bytes.make nslots '\000' in
  let lens = Array.make nslots 0 in
  let nlive = ref 0 in
  let kinds_v = Vec.create () in
  let slot_v = Vec.create () in
  let size_v = Vec.create () in
  let len_v = Vec.create () in
  let aux_v = Vec.create () in
  let gidx_v = Vec.create () in
  let hi_v = Vec.create () in
  let lo_v = Vec.create () in
  let is_live i = Bytes.get live i <> '\000' in
  (* shadow of [Objtable.probe]: draw-for-draw identical *)
  let probe ~lo ~hi ~want =
    let span = hi - lo in
    if span <= 0 then None
    else begin
      let start = lo + Prng.int rng span in
      let rec go i n =
        if n = 0 then None
        else if is_live i = want then Some i
        else go (if i + 1 >= hi then lo else i + 1) (n - 1)
      in
      go start span
    end
  in
  let random_live ~hot ~weight =
    if !nlive = 0 then None
    else begin
      let hot_slots = int_of_float (hot *. float_of_int nslots) in
      let use_hot = hot_slots > 0 && Prng.float rng 1.0 < weight in
      match
        if use_hot then probe ~lo:0 ~hi:hot_slots ~want:true else None
      with
      | Some i -> Some i
      | None -> probe ~lo:0 ~hi:nslots ~want:true
    end
  in
  let random_dead () =
    if !nlive >= nslots then None else probe ~lo:0 ~hi:nslots ~want:false
  in
  let push_entry k slot size len aux =
    Vec.push kinds_v k;
    Vec.push slot_v slot;
    Vec.push size_v size;
    Vec.push len_v len;
    Vec.push aux_v aux
  in
  (* shadow of [Spec.alloc_into]: sample, predict the malloc'd length,
     pre-draw the body-init store positions and pointer coin-flips *)
  let alloc_shadow slot =
    let size = Profile.sample rng p.Profile.size_c in
    let len = Alloc.Sizeclass.rounded_size size in
    let granules = len / granule in
    let stores = min granules 32 in
    for _ = 1 to stores do
      let g = Prng.int rng granules in
      let is_ptr = Prng.float rng 1.0 < p.Profile.ptr_density in
      Vec.push gidx_v ((g lsl 1) lor (if is_ptr then 1 else 0))
    done;
    if not (is_live slot) then begin
      Bytes.set live slot '\001';
      incr nlive
    end;
    lens.(slot) <- len;
    (size, len)
  in
  let churn ~realloc =
    match random_live ~hot:1.0 ~weight:0.0 with
    | None -> push_entry k_none 0 0 0 0
    | Some slot ->
        let clear = if Prng.bool rng then 1 else 0 in
        Bytes.set live slot '\000';
        decr nlive;
        if realloc then begin
          let size, len = alloc_shadow slot in
          push_entry k_churn slot size len clear
        end
        else push_entry k_kill slot 0 0 clear
  in
  let birth () =
    match random_dead () with
    | None -> push_entry k_none 0 0 0 0
    | Some slot ->
        let size, len = alloc_shadow slot in
        push_entry k_birth slot size len 0
  in
  let access () =
    match random_live ~hot:p.Profile.hot_fraction ~weight:p.Profile.hot_weight with
    | None -> push_entry k_none 0 0 0 0
    | Some slot ->
        let len = lens.(slot) in
        let window = min len 32768 in
        let n = window / granule in
        for _ = 1 to p.Profile.reads_per_op do
          Vec.push gidx_v (Prng.int rng n)
        done;
        for _ = 1 to p.Profile.writes_per_op do
          Vec.push gidx_v (Prng.int rng n)
        done;
        (* chase moduli depend on which capability the chase reaches at
           run time: store the raw 63-bit draw, reduce at exec *)
        for _ = 1 to p.Profile.chase_depth do
          let x = Int64.logand (Prng.next rng) Int64.max_int in
          Vec.push hi_v (Int64.to_int (Int64.shift_right_logical x 31));
          Vec.push lo_v (Int64.to_int (Int64.logand x 0x7FFF_FFFFL))
        done;
        push_entry k_access slot 0 len 0
  in
  let initial =
    int_of_float (p.Profile.target_live *. float_of_int nslots)
  in
  for slot = 0 to initial - 1 do
    let size, len = alloc_shadow slot in
    push_entry k_birth slot size len 0
  done;
  let n_prologue = kinds_v.Vec.n in
  for _ = 1 to ops do
    let x = Prng.float rng 1.0 in
    if x < p.Profile.churn then churn ~realloc:true
    else if x < p.Profile.churn +. p.Profile.kill_only then
      churn ~realloc:false
    else if
      x < p.Profile.churn +. p.Profile.kill_only +. p.Profile.birth_only
    then birth ()
    else access ()
  done;
  {
    n_prologue;
    kinds = Vec.to_array kinds_v;
    slots = Vec.to_array slot_v;
    sizes = Vec.to_array size_v;
    lens = Vec.to_array len_v;
    aux = Vec.to_array aux_v;
    gidx = Vec.to_array gidx_v;
    chase_hi = Vec.to_array hi_v;
    chase_lo = Vec.to_array lo_v;
  }

(* [mod_hilo hi lo n] = [x mod n] for [x = hi * 2^31 + lo] (the raw
   63-bit draw split at compile time), matching what
   [Prng.int rng n] = [Int64.rem (x) (of_int n)] would have returned for
   a non-negative [x]. Exact for every [n] < 2^31: [hi mod n] and
   [2^31 mod n] are each < 2^31, so their product is < 2^62 and the sum
   with [lo] (< 2^31) cannot overflow a 63-bit OCaml int. *)
let mod_hilo hi lo n = (((hi mod n) * (2147483648 mod n)) + lo) mod n

(* ---- execution ----

   The decode loop allocates nothing per op beyond what the reference
   semantics itself demands (the capability records loaded from or
   stored to simulated memory): table slots are addressed through the
   chunk "globals" with [load_cap_at]/[store_cap_at], data accesses use
   [touch_u64_at]/[store_u64_at], and safe points batch their STW
   checkpoint per scheduling slice ([Machine.safe_point_run]). *)

let exec (s : t) (p : Profile.t) rt ctx ~ops_done =
  let regs = Machine.regs (Machine.self ctx) in
  let table = Objtable.create rt ctx ~slots:p.Profile.slots in
  let nchunks = Objtable.chunk_count table in
  let chunks = Array.init nchunks (Objtable.chunk_cap table) in
  let chunk_bases = Array.map Capability.base chunks in
  let gpos = ref 0 in
  let cpos = ref 0 in
  let load_slot slot =
    let ci = slot / Objtable.chunk_slots in
    let va = chunk_bases.(ci) + (slot mod Objtable.chunk_slots * granule) in
    Machine.load_cap_at ctx chunks.(ci) va
  in
  let store_slot slot c =
    let ci = slot / Objtable.chunk_slots in
    let va = chunk_bases.(ci) + (slot mod Objtable.chunk_slots * granule) in
    Machine.store_cap_at ctx chunks.(ci) va c
  in
  let do_alloc i slot =
    let c = Runtime.malloc rt ctx s.sizes.(i) in
    let len = s.lens.(i) in
    if Capability.length c <> len then
      raise (Divergence "malloc length differs from compiled prediction");
    Regfile.set regs r_work c;
    let granules = len / granule in
    let stores = min granules 32 in
    let base = Capability.base c in
    for _ = 1 to stores do
      let e = s.gidx.(!gpos) in
      incr gpos;
      let g = e lsr 1 in
      let va = base + (g * granule) in
      if e land 1 = 1 then begin
        let v = Regfile.get regs r_recent in
        if Capability.tag v then Machine.store_cap_at ctx c va v
        else Machine.store_u64_at ctx c va (Int64.of_int g)
      end
      else Machine.store_u64_at ctx c va (Int64.of_int g)
    done;
    store_slot slot c;
    Regfile.set regs r_recent c
  in
  let do_kill i slot =
    let c = load_slot slot in
    if not (Capability.tag c) then
      raise (Divergence "live slot holds an untagged capability");
    Regfile.set regs r_work c;
    Runtime.free rt ctx c;
    if s.aux.(i) land 1 = 1 then Regfile.set regs r_work Capability.null;
    if Capability.equal (Regfile.get regs r_recent) c then
      Regfile.set regs r_recent Capability.null
  in
  let do_access i slot =
    let c = load_slot slot in
    if not (Capability.tag c) then
      raise (Divergence "live slot holds an untagged capability");
    Regfile.set regs r_work c;
    Regfile.set regs r_recent c;
    let len = Capability.length c in
    if len <> s.lens.(i) then
      raise (Divergence "object length differs from compiled prediction");
    let base = Capability.base c in
    for _ = 1 to p.Profile.reads_per_op do
      let g = s.gidx.(!gpos) in
      incr gpos;
      Machine.touch_u64_at ctx c (base + (g * granule))
    done;
    for _ = 1 to p.Profile.writes_per_op do
      let g = s.gidx.(!gpos) in
      incr gpos;
      Machine.store_u64_at ctx c (base + (g * granule)) (Int64.of_int slot)
    done;
    let cursor = ref c in
    for _ = 1 to p.Profile.chase_depth do
      let hi = s.chase_hi.(!cpos) and lo = s.chase_lo.(!cpos) in
      incr cpos;
      let cur = !cursor in
      let clen = Capability.length cur in
      if clen < granule then
        raise (Divergence "chase cursor shorter than a granule");
      let g = mod_hilo hi lo (clen / granule) in
      let va = Capability.base cur + (g * granule) in
      let next = Machine.load_cap_at ctx cur va in
      if Capability.tag next && Capability.can_load next then begin
        Regfile.set regs r_chase next;
        Machine.touch_u64_at ctx next (Capability.base next);
        cursor := next
      end
      else Machine.charge ctx Sim.Cost.alu
    done
  in
  let compute = p.Profile.compute_per_op in
  let n = Array.length s.kinds in
  for i = 0 to n - 1 do
    let slot = s.slots.(i) in
    (match s.kinds.(i) with
    | 0 (* K_none *) -> ()
    | 1 (* K_kill *) -> do_kill i slot
    | 2 (* K_churn *) ->
        do_kill i slot;
        do_alloc i slot
    | 3 (* K_birth *) -> do_alloc i slot
    | _ (* K_access *) -> do_access i slot);
    if i >= s.n_prologue then begin
      if compute > 0 then Machine.charge ctx compute;
      incr ops_done
    end
  done
