module Capability = Cheri.Capability
module Machine = Sim.Machine
module Prng = Sim.Prng
module Runtime = Ccr.Runtime

type config = {
  messages : int;
  outstanding : int;
  session_slots : int;
  temps_per_msg : int;
  compute_per_msg : int;
  warmup_fraction : float;
  seed : int;
}

let default_config =
  {
    messages = 24_000;
    outstanding = 16;
    session_slots = 20_000;
    temps_per_msg = 3;
    compute_per_msg = 50_000;
    warmup_fraction = 0.05;
    seed = 9;
  }

type request = { id : int; intended : int; submitted : int; client : int }

type shared = {
  mutable queue : request list; (* newest first *)
  mutable submitted : int;
  mutable completed : int;
  mutable inflight : int array;
  req_cv : Machine.condvar;
  done_cv : Machine.condvar;
  mutable sessions : Objtable.t option;
  init_cv : Machine.condvar;
  mutable finished_servers : int;
}

let r_work = 1

let process_message cfg rt ctx rng regs sessions =
  (* unmarshal: a burst of linked temporaries *)
  let temps =
    Array.init cfg.temps_per_msg (fun i ->
        let c = Runtime.malloc rt ctx (128 + (Prng.int rng 56 * 16)) in
        Machine.store_u64 ctx c (Int64.of_int i);
        let prev = Sim.Regfile.get regs r_work in
        if Capability.tag prev && Capability.length c >= 32 then
          Machine.store_cap ctx (Capability.incr_addr c 16) prev;
        Sim.Regfile.set regs r_work c;
        c)
  in
  (* touch session state *)
  for _ = 1 to 3 do
    match Objtable.random_live sessions rng ~hot:0.1 ~weight:0.5 with
    | None -> ()
    | Some slot ->
        let c = Objtable.get sessions ctx slot in
        if Capability.tag c then begin
          Sim.Regfile.set regs r_work c;
          ignore (Machine.load_u64 ctx c);
          Machine.store_u64 ctx (Capability.incr_addr c 8) 7L;
          (* occasional session-state reallocation *)
          if Prng.int rng 100 = 0 then begin
            let nv = Runtime.malloc rt ctx 256 in
            Machine.store_u64 ctx nv 1L;
            Objtable.put sessions ctx slot nv ~size:256;
            Runtime.free rt ctx c;
            Sim.Regfile.set regs r_work Capability.null
          end
        end
  done;
  Machine.charge ctx cfg.compute_per_msg;
  Array.iter (fun c -> Runtime.free rt ctx c) temps;
  Sim.Regfile.set regs r_work Capability.null

let run ?(config = default_config) ?tracer ~mode () =
  let cfg = config in
  let heap_bytes = 24 * 1024 * 1024 in
  let mconfig =
    {
      Machine.default_config with
      heap_bytes;
      mem_bytes = heap_bytes + (heap_bytes / 16) + (8 * 1024 * 1024);
      seed = cfg.seed;
    }
  in
  (* The revoker shares core 3 with a server thread: unlike the pinned
     regimes, revocation competes directly with foreground work. *)
  let rt = Runtime.create ~config:mconfig ~revoker_core:3 mode in
  let m = rt.Runtime.machine in
  Machine.attach_tracer m tracer;
  let sh =
    {
      queue = [];
      submitted = 0;
      completed = 0;
      inflight = [| 0; 0 |];
      req_cv = Machine.condvar ();
      done_cv = Machine.condvar ();
      sessions = None;
      init_cv = Machine.condvar ();
      finished_servers = 0;
    }
  in
  let latencies = ref [] and latencies_closed = ref [] in
  let warmup = int_of_float (cfg.warmup_fraction *. float_of_int cfg.messages) in
  let wall_end = ref 0 in
  let server id core =
    Machine.spawn m ~name:(Printf.sprintf "grpc-server-%d" id) ~core (fun ctx ->
        let regs = Machine.regs (Machine.self ctx) in
        let rng = Prng.create ~seed:(cfg.seed * 31 * (id + 1)) in
        if id = 0 then begin
          let sessions = Objtable.create rt ctx ~slots:cfg.session_slots in
          for slot = 0 to cfg.session_slots - 1 do
            let c = Runtime.malloc rt ctx 256 in
            Machine.store_u64 ctx c (Int64.of_int slot);
            Objtable.put sessions ctx slot c ~size:256
          done;
          sh.sessions <- Some sessions;
          Machine.broadcast ctx sh.init_cv
        end
        else
          while sh.sessions = None do
            Machine.wait ctx sh.init_cv
          done;
        let sessions = Option.get sh.sessions in
        let rec serve () =
          while sh.queue = [] && sh.completed + List.length sh.queue < cfg.messages
                && sh.submitted < cfg.messages do
            Machine.wait ctx sh.req_cv
          done;
          match sh.queue with
          | [] -> () (* all messages submitted and drained *)
          | req :: rest ->
              sh.queue <- rest;
              process_message cfg rt ctx rng regs sessions;
              sh.completed <- sh.completed + 1;
              let now = Machine.now ctx in
              if req.id >= warmup then begin
                latencies := Sim.Cost.cycles_to_us (now - req.intended) :: !latencies;
                latencies_closed :=
                  Sim.Cost.cycles_to_us (now - req.submitted) :: !latencies_closed
              end;
              sh.inflight.(req.client) <- sh.inflight.(req.client) - 1;
              Machine.broadcast ctx sh.done_cv;
              serve ()
        in
        serve ();
        sh.finished_servers <- sh.finished_servers + 1;
        Machine.broadcast ctx sh.req_cv;
        if sh.finished_servers = 2 then begin
          wall_end := Machine.now ctx;
          Runtime.finish rt ctx
        end)
  in
  let client id core =
    Machine.spawn m ~name:(Printf.sprintf "grpc-client-%d" id) ~core (fun ctx ->
        let quota = cfg.messages / 2 in
        for _ = 1 to quota do
          (* Coordinated-omission correction: stamp the intended issue
             time BEFORE waiting out the outstanding window. When the
             server stalls (e.g. a stop-the-world pause), the wait below
             grows and the difference shows up in the corrected latency
             instead of silently thinning the sample stream. *)
          Machine.charge ctx 1_500;
          let intended = Machine.now ctx in
          while sh.inflight.(id) >= cfg.outstanding do
            Machine.wait ctx sh.done_cv
          done;
          let req =
            { id = sh.submitted; intended; submitted = Machine.now ctx; client = id }
          in
          sh.submitted <- sh.submitted + 1;
          sh.inflight.(id) <- sh.inflight.(id) + 1;
          sh.queue <- sh.queue @ [ req ];
          Machine.broadcast ctx sh.req_cv
        done)
  in
  let s0 = server 0 2 in
  let s1 = server 1 3 in
  let _c0 = client 0 0 in
  let _c1 = client 1 1 in
  Machine.run m;
  let totals = Machine.totals m in
  {
    Result.workload = "grpc_qps";
    mode = Runtime.mode_name mode;
    wall_cycles = !wall_end;
    cpu_cycles = totals.Machine.cpu_cycles;
    app_cpu_cycles = Machine.thread_cpu_cycles s0 + Machine.thread_cpu_cycles s1;
    bus_total = totals.Machine.bus_transactions;
    bus_app_core =
      Machine.bus_transactions_of_core m 2 + Machine.bus_transactions_of_core m 3;
    peak_rss_pages = rt.Runtime.alloc.Alloc.Backend.peak_rss_pages ();
    clg_faults = totals.Machine.clg_faults;
    ops_done = cfg.messages;
    latencies_us = Array.of_list (List.rev !latencies);
    latencies_closed_us = Array.of_list (List.rev !latencies_closed);
    throughput =
      float_of_int cfg.messages /. (float_of_int !wall_end /. Sim.Cost.clock_hz);
    scrub_bytes = rt.Runtime.alloc.Alloc.Backend.scrub_bytes ();
    mrs = Runtime.mrs_stats rt;
    phases = Runtime.revoker_records rt;
  }
