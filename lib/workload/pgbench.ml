module Capability = Cheri.Capability
module Machine = Sim.Machine
module Prng = Sim.Prng
module Runtime = Ccr.Runtime

type config = {
  transactions : int;
  row_slots : int;
  history_slots : int;
  temp_allocs_per_tx : int;
  row_reads_per_tx : int;
  updates_per_tx : int;
  compute_per_tx : int;
  client_think : int;
  warmup_fraction : float;
  rate : float option;
  seed : int;
}

let default_config =
  {
    transactions = 6_000;
    row_slots = 2_400;
    history_slots = 1_200;
    temp_allocs_per_tx = 20;
    row_reads_per_tx = 30;
    updates_per_tx = 3;
    compute_per_tx = 40_000;
    client_think = 50_000;
    warmup_fraction = 0.05;
    rate = None;
    seed = 3;
  }

(* client <-> server mailbox *)
type mailbox = {
  mutable requests : int; (* outstanding request count *)
  mutable completed : int;
  mutable shutdown : bool;
  req_cv : Machine.condvar;
  rep_cv : Machine.condvar;
}

let r_work = 1
let r_temp_base = 4 (* r4.. hold in-flight temporaries *)

let row_size rng = 96 + (Prng.int rng 16 * 16)
let temp_size rng = 64 + (Prng.int rng 28 * 16)

let transaction cfg rt ctx rng regs ~rows ~history ~hist_next =
  (* parse/plan temporaries *)
  let ntemp = cfg.temp_allocs_per_tx in
  let temps =
    Array.init ntemp (fun i ->
        let c = Runtime.malloc rt ctx (temp_size rng) in
        if i < 8 then Sim.Regfile.set regs (r_temp_base + i) c;
        Machine.store_u64 ctx c (Int64.of_int i);
        (* plan/executor nodes point at each other: capability stores that
           make the temp pages sweep targets *)
        let prev = Sim.Regfile.get regs r_work in
        if Capability.tag prev && Capability.length c >= 32 then
          Machine.store_cap ctx (Capability.incr_addr c 16) prev;
        Sim.Regfile.set regs r_work c;
        c)
  in
  (* B-tree style row lookups *)
  for _ = 1 to cfg.row_reads_per_tx do
    match Objtable.random_live rows rng ~hot:0.2 ~weight:0.7 with
    | None -> ()
    | Some slot ->
        let c = Objtable.get rows ctx slot in
        if Capability.tag c then begin
          Sim.Regfile.set regs r_work c;
          ignore (Machine.load_u64 ctx c);
          ignore (Machine.load_u64 ctx (Capability.incr_addr c 32))
        end
  done;
  (* MVCC updates: allocate the new row version, free the old *)
  for _ = 1 to cfg.updates_per_tx do
    match Objtable.random_live rows rng ~hot:0.2 ~weight:0.7 with
    | None -> ()
    | Some slot ->
        let old = Objtable.get rows ctx slot in
        let nv = Runtime.malloc rt ctx (row_size rng) in
        Machine.store_u64 ctx nv 42L;
        (* a row version keeps a pointer to its predecessor (MVCC chain) *)
        if Capability.tag old && Capability.length nv >= 32 then
          Machine.store_cap ctx (Capability.incr_addr nv 16) old;
        Objtable.put rows ctx slot nv ~size:(Capability.length nv);
        if Capability.tag old then begin
          Sim.Regfile.set regs r_work old;
          Runtime.free rt ctx old;
          Sim.Regfile.set regs r_work Capability.null
        end
  done;
  (* history insert into a ring *)
  let h = !hist_next in
  hist_next := (h + 1) mod Objtable.slots history;
  if Objtable.is_live history h then begin
    let old = Objtable.get history ctx h in
    if Capability.tag old then Runtime.free rt ctx old;
    Objtable.kill history h
  end;
  let entry = Runtime.malloc rt ctx 96 in
  Machine.store_u64 ctx entry (Int64.of_int h);
  Objtable.put history ctx h entry ~size:96;
  (* WAL write *)
  Kernel.Syscall.perform_service ctx ~service:8_000;
  (* executor compute *)
  Machine.charge ctx cfg.compute_per_tx;
  (* commit: free temporaries *)
  Array.iter (fun c -> Runtime.free rt ctx c) temps;
  for i = 0 to 7 do
    Sim.Regfile.set regs (r_temp_base + i) Capability.null
  done

let run ?(config = default_config) ?tracer ~mode () =
  let cfg = config in
  let heap_bytes = 8 * 1024 * 1024 in
  let mconfig =
    {
      Machine.default_config with
      heap_bytes;
      mem_bytes = heap_bytes + (heap_bytes / 16) + (8 * 1024 * 1024);
      seed = cfg.seed;
    }
  in
  let rt = Runtime.create ~config:mconfig ~revoker_core:2 mode in
  let m = rt.Runtime.machine in
  Machine.attach_tracer m tracer;
  let rng_server = Prng.create ~seed:(cfg.seed * 131) in
  let rng_client = Prng.create ~seed:(cfg.seed * 257) in
  let box =
    {
      requests = 0;
      completed = 0;
      shutdown = false;
      req_cv = Machine.condvar ();
      rep_cv = Machine.condvar ();
    }
  in
  let latencies = ref [] in
  let warmup = int_of_float (cfg.warmup_fraction *. float_of_int cfg.transactions) in
  let wall_end = ref 0 in
  let server =
    Machine.spawn m ~name:"pgserver" ~core:3 (fun ctx ->
        let regs = Machine.regs (Machine.self ctx) in
        let rows = Objtable.create rt ctx ~slots:cfg.row_slots in
        for slot = 0 to cfg.row_slots - 1 do
          let c = Runtime.malloc rt ctx (row_size rng_server) in
          Machine.store_u64 ctx c (Int64.of_int slot);
          Objtable.put rows ctx slot c ~size:(Capability.length c)
        done;
        let history = Objtable.create rt ctx ~slots:cfg.history_slots in
        let hist_next = ref 0 in
        let rec serve () =
          while box.requests = 0 && not box.shutdown do
            Machine.wait ctx box.req_cv
          done;
          if box.requests > 0 then begin
            box.requests <- box.requests - 1;
            transaction cfg rt ctx rng_server regs ~rows ~history ~hist_next;
            box.completed <- box.completed + 1;
            Machine.broadcast ctx box.rep_cv;
            serve ()
          end
        in
        serve ();
        wall_end := Machine.now ctx;
        Runtime.finish rt ctx)
  in
  let _client =
    Machine.spawn m ~name:"pgclient" ~core:0 (fun ctx ->
        let interval =
          match cfg.rate with
          | Some r -> Some (int_of_float (Sim.Cost.clock_hz /. r))
          | None -> None
        in
        let start = Machine.now ctx in
        for i = 0 to cfg.transactions - 1 do
          let t0 =
            match interval with
            | Some iv ->
                let sched = start + (i * iv) in
                let now = Machine.now ctx in
                if now < sched then Machine.sleep ctx (sched - now);
                sched (* latency from scheduled start, ignoring lag *)
            | None -> Machine.now ctx
          in
          let target = box.completed + 1 in
          box.requests <- box.requests + 1;
          Machine.broadcast ctx box.req_cv;
          while box.completed < target do
            Machine.wait ctx box.rep_cv
          done;
          let lat = Machine.now ctx - t0 in
          if i >= warmup then
            latencies := Sim.Cost.cycles_to_us lat :: !latencies;
          (* client-side processing / think time *)
          match interval with
          | Some _ -> ()
          | None ->
              let think =
                int_of_float
                  (Prng.exponential rng_client
                     ~mean:(float_of_int cfg.client_think))
              in
              Machine.charge ctx 2_000;
              Machine.sleep ctx think
        done;
        box.shutdown <- true;
        Machine.broadcast ctx box.req_cv)
  in
  Machine.run m;
  let totals = Machine.totals m in
  let lats = Array.of_list (List.rev !latencies) in
  {
    Result.workload = (match cfg.rate with
      | None -> "pgbench"
      | Some r -> Printf.sprintf "pgbench@%.0f" r);
    mode = Runtime.mode_name mode;
    wall_cycles = !wall_end;
    cpu_cycles = totals.Machine.cpu_cycles;
    app_cpu_cycles = Machine.thread_cpu_cycles server;
    bus_total = totals.Machine.bus_transactions;
    bus_app_core = Machine.bus_transactions_of_core m 3;
    peak_rss_pages = rt.Runtime.alloc.Alloc.Backend.peak_rss_pages ();
    clg_faults = totals.Machine.clg_faults;
    ops_done = cfg.transactions;
    latencies_us = lats;
    latencies_closed_us = [||];
    throughput =
      float_of_int cfg.transactions
      /. (float_of_int !wall_end /. Sim.Cost.clock_hz);
    scrub_bytes = rt.Runtime.alloc.Alloc.Backend.scrub_bytes ();
    mrs = Runtime.mrs_stats rt;
    phases = Runtime.revoker_records rt;
  }
