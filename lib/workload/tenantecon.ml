(* Tenant economics under a bulk-reclamation storm.

   N tenant processes with heterogeneous quotas serve open-loop traffic
   through per-tenant admission queues whose quota gate sheds requests
   from over-budget tenants before they queue. Each request churns
   short-lived temporaries and a standing session ring through the
   tenant's sealed allocator capability, so quarantine lag shows up as
   quota balance. At [storm_at] of the horizon the largest tenant
   crashes: its queue drains as lost, [Ledger.free_all] hands its entire
   live heap to quarantine in one shot, and its capability is revoked —
   a revocation-pressure spike the remaining tenants (and the governor,
   when enabled) must ride out. The per-time-slice p99.9 curve shows the
   excursion; the quota ledger's conservation identity and the serving
   accounting identity are both checked exactly. *)

module Capability = Cheri.Capability
module Machine = Sim.Machine
module Prng = Sim.Prng
module Cost = Sim.Cost
module Runtime = Ccr.Runtime
module Ledger = Tenancy.Ledger
module Loadgen = Service.Loadgen
module Squeue = Service.Squeue
module Slo = Service.Slo
module Governor = Service.Governor

(* Tenants serve on the application cores; core 2 stays the revokers',
   core 0 hosts the generators and the reaper. *)
let tenant_cores = [| 3; 1; 0 |]

type config = {
  tenants : int;
  quota_base : int; (* tenant i's quota = quota_base * (i + 1) *)
  phys_frac : float; (* phys_limit as a fraction of Σ quotas (<1 over-commits) *)
  overcommit : Ledger.overcommit;
  sched : Os.Revsched.policy;
  requests : int; (* per tenant *)
  rate : float; (* per-tenant offered rate, req/s *)
  storm_at : float; (* fraction of the horizon; >= 1.0 disables the storm *)
  queue_depth : int;
  governed : bool;
  target_p99_us : float;
  block_bytes : int; (* session-ring block size *)
  ring_frac : float; (* standing ring charge as a fraction of quota *)
  temps_per_req : int;
  compute_per_req : int;
  slices : int; (* time slices for the p99.9 curve *)
  seed : int;
}

let default_config =
  {
    tenants = 3;
    quota_base = 768 * 1024;
    phys_frac = 0.8;
    overcommit = Ledger.Steal_from_idle;
    sched = Os.Revsched.Quota;
    requests = 1_200;
    rate = 40_000.0;
    storm_at = 0.5;
    queue_depth = 64;
    governed = true;
    target_p99_us = 1_000.0;
    block_bytes = 256;
    ring_frac = 0.75;
    temps_per_req = 2;
    compute_per_req = 20_000;
    slices = 20;
    seed = 7;
  }

type tenant_outcome = {
  o_pid : int;
  o_quota : int;
  o_offered : int;
  o_served : int;
  o_shed_quota : int;
  o_shed_depth : int;
  o_shed_deadline : int;
  o_lost : int;
  o_denied_quota : int; (* allocation denies inside admitted requests *)
  o_denied_phys : int;
  o_reclaims : int;
  o_p99_us : float;
  o_goodput : float; (* served requests per second of wall time *)
  o_balance : int; (* outstanding charge at the end of the run *)
  o_conserved : bool;
  o_grants : int;
  o_wait_cycles : int;
  o_crashed : bool;
}

type result = {
  mode : string;
  sched : string;
  overcommit : string;
  tenants : int;
  governed : bool;
  wall_cycles : int;
  phys_limit : int;
  quota_total : int;
  storm_tenant : int; (* pid, or -1 when the storm is disabled *)
  storm_cycles : int; (* simulated time of the crash *)
  storm_freed_allocs : int;
  storm_freed_bytes : int;
  quarantine_peak : int; (* machine-wide, sampled at request completions *)
  committed_peak : int; (* ledger Σ balances peak *)
  p999_us : float;
  p999_calm_us : float; (* worst slice p99.9 before the storm *)
  p999_storm_us : float; (* worst slice p99.9 at/after the storm *)
  slice_p999 : float array;
  identity_ok : bool; (* offered = served + shed + lost, every tenant *)
  conserved : bool; (* ledger conservation identity, every tenant *)
  per_tenant : tenant_outcome list;
}

(* Per-tenant shared state between the fork body and its generator. *)
type lane = {
  mutable queue : Squeue.t option;
  mutable pid : int;
  mutable offered : int;
  mutable lost_arrivals : int; (* arrivals after the crash, never offered *)
  mutable crashed : bool;
  slo : Slo.t;
}

let run ?tracer ?on_os ?(config = default_config) ~mode () =
  let cfg = config in
  if cfg.tenants < 1 then invalid_arg "Tenantecon.run: tenants must be >= 1";
  if cfg.quota_base <= 0 then invalid_arg "Tenantecon.run: quota_base must be > 0";
  if cfg.slices < 1 then invalid_arg "Tenantecon.run: slices must be >= 1";
  let quota i = cfg.quota_base * (i + 1) in
  let quota_total =
    List.fold_left ( + ) 0 (List.init cfg.tenants quota)
  in
  let phys_limit =
    max 4096 (int_of_float (cfg.phys_frac *. float_of_int quota_total))
  in
  (* VA heaps are sized so the economics, not the simulated hardware,
     are the binding constraint: the biggest tenant's quota plus its
     quarantine in flight must fit comfortably. *)
  let heap_bytes = max (4 * 1024 * 1024) (4 * quota (cfg.tenants - 1)) in
  let mconfig =
    {
      Machine.default_config with
      heap_bytes;
      mem_bytes =
        ((cfg.tenants + 1) * (heap_bytes + (heap_bytes / 16)))
        + (8 * 1024 * 1024);
      seed = cfg.seed;
    }
  in
  let os = Os.create ~config:mconfig ~sched:cfg.sched ~revoker_core:2 mode in
  let m = Os.machine os in
  Machine.attach_tracer m tracer;
  (match on_os with Some f -> f os | None -> ());
  Os.spawn_reaper os;
  let ledger = Ledger.create m ~phys_limit ~overcommit:cfg.overcommit () in
  let arrivals =
    Array.init cfg.tenants (fun i ->
        Loadgen.schedule
          {
            Loadgen.pattern = Loadgen.Poisson cfg.rate;
            requests = cfg.requests;
            seed = cfg.seed + (101 * i);
          })
  in
  let horizon =
    Array.fold_left
      (fun acc a -> max acc (if Array.length a = 0 then 0 else a.(Array.length a - 1)))
      1 arrivals
  in
  let storm_enabled = cfg.storm_at < 1.0 && cfg.requests > 0 in
  let lanes =
    Array.init cfg.tenants (fun _ ->
        {
          queue = None;
          pid = -1;
          offered = 0;
          lost_arrivals = 0;
          crashed = false;
          slo = Slo.create ~target_p99_us:cfg.target_p99_us ();
        })
  in
  let ready = Machine.condvar () in
  let ready_count = ref 0 in
  (* All generators release traffic against one common origin, fixed by
     the last tenant to come up — slices and the storm trigger share it. *)
  let start_time = ref (-1) in
  let storm_time () =
    !start_time + int_of_float (cfg.storm_at *. float_of_int horizon)
  in
  let slice_lat = Array.make cfg.slices [] in
  let all_lat = ref [] in
  let slice_of intended =
    let off = intended - !start_time in
    min (cfg.slices - 1) (max 0 (off * cfg.slices / max 1 horizon))
  in
  let quarantine_peak = ref 0 in
  let storm_cycles = ref 0 in
  let storm_freed = ref (0, 0) in
  let storm_pid = ref (-1) in
  let wall_end = ref 0 in
  let sample_quarantine () =
    let q =
      List.fold_left
        (fun acc p -> acc + (Os.proc_stats os p).Os.quarantine_bytes)
        0 (Os.procs os)
    in
    if q > !quarantine_peak then quarantine_peak := q
  in
  (* One request: unmarshal temporaries, refresh a session-ring slot,
     compute, respond, free — all charged to the tenant's capability. *)
  let process_request cap ctx rng ring ring_next =
    let temps =
      List.init cfg.temps_per_req (fun _ ->
          Ledger.malloc cap ctx (64 + (16 * Prng.int rng 12)))
    in
    List.iter
      (function
        | Some c -> Machine.store_u64 ctx c 1L
        | None -> ())
      temps;
    (match Ledger.malloc cap ctx cfg.block_bytes with
    | Some c ->
        Machine.store_u64 ctx c (Int64.of_int !ring_next);
        let slot = !ring_next mod Array.length ring in
        ring_next := !ring_next + 1;
        (match ring.(slot) with
        | Some old -> Ledger.free cap ctx old
        | None -> ());
        ring.(slot) <- Some c
    | None -> ());
    Machine.charge ctx cfg.compute_per_req;
    List.iter
      (function Some c -> Ledger.free cap ctx c | None -> ())
      temps
  in
  let tenant_body i lane cctx proc =
    let pid = Os.pid proc in
    lane.pid <- pid;
    let rt = Os.runtime proc in
    let rng = Prng.create ~seed:((cfg.seed * 7919) + pid) in
    let cap = Ledger.register ledger ~tenant:pid ~quota:(quota i) rt in
    Os.Revsched.set_debt (Os.sched os) ~pid (fun () ->
        Ledger.debt ledger ~tenant:pid);
    let queue =
      Squeue.create m ~max_depth:cfg.queue_depth
        ~quota_gate:(fun tn -> Ledger.over_quota ledger ~tenant:tn)
        ()
    in
    Os.Revsched.set_load (Os.sched os) ~pid (fun () ->
        min 1.0
          (float_of_int (Squeue.depth queue) /. float_of_int cfg.queue_depth));
    let gov =
      if cfg.governed && rt.Runtime.revoker <> None then
        Some
          (Governor.install ~target_p99_us:cfg.target_p99_us
             ~p99:(fun () -> Slo.p99_estimate lane.slo)
             rt
             ~depth:(fun () -> Squeue.depth queue)
             ())
      else None
    in
    (* Standing session ring: a live heap worth [ring_frac] of quota,
       built before serving starts, replaced block by block under load —
       the storm tenant's free_all hands all of it to quarantine. *)
    let slots =
      max 8 (int_of_float (cfg.ring_frac *. float_of_int (quota i))
             / Alloc.Sizeclass.rounded_size cfg.block_bytes)
    in
    let ring = Array.make slots None in
    Array.iteri
      (fun s _ ->
        match Ledger.malloc cap cctx cfg.block_bytes with
        | Some c ->
            Machine.store_u64 cctx c (Int64.of_int s);
            ring.(s) <- Some c
        | None -> ())
      ring;
    let ring_next = ref 0 in
    lane.queue <- Some queue;
    incr ready_count;
    if !ready_count = cfg.tenants then start_time := Machine.now cctx;
    Machine.broadcast cctx ready;
    let is_storm_tenant = storm_enabled && i = cfg.tenants - 1 in
    let crash () =
      lane.crashed <- true;
      ignore (Squeue.drain_lost queue cctx);
      Squeue.close queue cctx;
      storm_pid := pid;
      storm_cycles := Machine.now cctx;
      let freed = Ledger.free_all cap cctx in
      storm_freed := freed;
      Ledger.revoke_cap ledger pid;
      sample_quarantine ();
      Option.iter Governor.uninstall gov;
      Os.exit os cctx proc
    in
    let rec serve () =
      if is_storm_tenant && (not lane.crashed) && !start_time >= 0
         && Machine.now cctx >= storm_time ()
      then crash ()
      else begin
        if Squeue.depth queue = 0 then
          Option.iter (fun g -> Governor.maybe_eager g cctx) gov;
        match Squeue.take queue cctx with
        | None ->
            (* Graceful shutdown: return the standing ring through the
               ordinary quarantine path, then exit. *)
            Array.iteri
              (fun s slot ->
                match slot with
                | Some c ->
                    Ledger.free cap cctx c;
                    ring.(s) <- None
                | None -> ())
              ring;
            Option.iter Governor.uninstall gov;
            Os.exit os cctx proc
        | Some req ->
            process_request cap cctx rng ring ring_next;
            let lat =
              Slo.record lane.slo ~intended:req.Squeue.intended
                ~completed:(Machine.now cctx)
            in
            let s = slice_of req.Squeue.intended in
            slice_lat.(s) <- lat :: slice_lat.(s);
            all_lat := lat :: !all_lat;
            sample_quarantine ();
            serve ()
      end
    in
    serve ()
  in
  (* Per-tenant open-loop generators, non-user so a stop-the-world pause
     cannot park them: intended arrival times keep their meaning. *)
  let generator i lane =
    ignore
      (Machine.spawn m
         ~name:(Printf.sprintf "tenantecon-gen-%d" i)
         ~core:0 ~user:false
         (fun ctx ->
           while lane.queue = None || !start_time < 0 do
             Machine.wait ctx ready
           done;
           let queue = Option.get lane.queue in
           Array.iteri
             (fun r arr ->
               if lane.crashed then lane.lost_arrivals <- lane.lost_arrivals + 1
               else begin
                 let intended = !start_time + arr in
                 let dt = intended - Machine.now ctx in
                 if dt > 0 then Machine.sleep ctx dt;
                 if lane.crashed then
                   lane.lost_arrivals <- lane.lost_arrivals + 1
                 else begin
                   lane.offered <- lane.offered + 1;
                   Slo.note_offered lane.slo;
                   ignore
                     (Squeue.offer queue ctx
                        {
                          Squeue.id = (i * cfg.requests) + r;
                          intended;
                          cls = 0;
                          deadline = None;
                          tenant = lane.pid;
                        })
                 end
               end)
             arrivals.(i);
           if not lane.crashed then Squeue.close queue ctx))
  in
  ignore
    (Machine.spawn m ~name:"init" ~core:0 (fun ctx ->
         Array.iteri
           (fun i lane ->
             let core = tenant_cores.(i mod Array.length tenant_cores) in
             ignore
               (Os.fork os ctx ~parent:(Os.init os)
                  ~name:(Printf.sprintf "tenant-%d" i)
                  ~core (tenant_body i lane)))
           lanes;
         Array.iteri generator lanes;
         Os.wait_children os ctx;
         wall_end := Machine.now ctx;
         Os.shutdown os ctx));
  Machine.run m;
  let wall = !wall_end in
  let sched_stats = Os.Revsched.stats (Os.sched os) in
  let grants_of pid =
    match
      List.find_opt (fun (s : Os.Revsched.stats) -> s.Os.Revsched.pid = pid)
        sched_stats
    with
    | Some s -> (s.Os.Revsched.grants, s.Os.Revsched.wait_cycles)
    | None -> (0, 0)
  in
  let per_tenant =
    Array.to_list
      (Array.mapi
         (fun i lane ->
           let queue = Option.get lane.queue in
           let st = Ledger.account_stats ledger ~tenant:lane.pid in
           let served = Slo.served lane.slo in
           let grants, waits = grants_of lane.pid in
           {
             o_pid = lane.pid;
             o_quota = quota i;
             (* Every generated arrival: post-crash arrivals were never
                enqueued but still count as offered-and-lost traffic. *)
             o_offered = lane.offered + lane.lost_arrivals;
             o_served = served;
             o_shed_quota = Squeue.shed_quota queue;
             o_shed_depth = Squeue.shed_depth queue;
             o_shed_deadline = Squeue.shed_deadline queue;
             o_lost = Squeue.lost queue + lane.lost_arrivals;
             o_denied_quota = st.Ledger.s_denied_quota;
             o_denied_phys = st.Ledger.s_denied_phys;
             o_reclaims = st.Ledger.s_reclaims;
             o_p99_us =
               Option.value ~default:0.0 (Slo.percentile lane.slo 99.0);
             o_goodput =
               (if wall = 0 then 0.0
                else float_of_int served /. (float_of_int wall /. Cost.clock_hz));
             o_balance = st.Ledger.s_charged - st.Ledger.s_credited;
             o_conserved = st.Ledger.s_conserved;
             o_grants = grants;
             o_wait_cycles = waits;
             o_crashed = lane.crashed;
           })
         lanes)
  in
  let identity_ok =
    List.for_all
      (fun o ->
        o.o_offered
        = o.o_served + o.o_shed_quota + o.o_shed_depth + o.o_shed_deadline
          + o.o_lost)
      per_tenant
    && List.for_all (fun o -> o.o_offered = cfg.requests) per_tenant
  in
  let p999 xs = match xs with [] -> 0.0 | _ -> Stats.Summary.percentile xs 99.9 in
  let slice_p999 = Array.map p999 slice_lat in
  let storm_slice =
    if storm_enabled then
      min (cfg.slices - 1)
        (max 0 (int_of_float (cfg.storm_at *. float_of_int cfg.slices)))
    else cfg.slices
  in
  let fold_max lo hi =
    let acc = ref 0.0 in
    for s = lo to hi do
      if slice_p999.(s) > !acc then acc := slice_p999.(s)
    done;
    !acc
  in
  let n_allocs, n_bytes = !storm_freed in
  {
    mode = Runtime.mode_name mode;
    sched = Os.Revsched.policy_name cfg.sched;
    overcommit = Ledger.overcommit_name cfg.overcommit;
    tenants = cfg.tenants;
    governed = cfg.governed;
    wall_cycles = wall;
    phys_limit;
    quota_total;
    storm_tenant = !storm_pid;
    storm_cycles = !storm_cycles;
    storm_freed_allocs = n_allocs;
    storm_freed_bytes = n_bytes;
    quarantine_peak = !quarantine_peak;
    committed_peak = Ledger.peak_committed ledger;
    p999_us = p999 !all_lat;
    (* Slice 0 carries the cold-start transient (first epochs, cold
       caches); the calm figure starts at slice 1 so the storm excursion
       is measured against warmed-up steady state. *)
    p999_calm_us =
      (if storm_slice <= 1 then 0.0
       else fold_max (min 1 (storm_slice - 1)) (storm_slice - 1));
    p999_storm_us =
      (if storm_slice >= cfg.slices then 0.0
       else fold_max storm_slice (cfg.slices - 1));
    slice_p999;
    identity_ok;
    conserved = List.for_all (fun o -> o.o_conserved) per_tenant;
    per_tenant;
  }

let pp fmt (r : result) =
  Format.fprintf fmt
    "tenants=%d mode=%s sched=%s overcommit=%s governor=%s wall=%d cycles@."
    r.tenants r.mode r.sched r.overcommit
    (if r.governed then "on" else "off")
    r.wall_cycles;
  Format.fprintf fmt
    "  phys=%d committed-peak=%d quarantine-peak=%d p99.9=%.0fus \
     calm=%.0fus storm=%.0fus@."
    r.phys_limit r.committed_peak r.quarantine_peak r.p999_us r.p999_calm_us
    r.p999_storm_us;
  if r.storm_tenant >= 0 then
    Format.fprintf fmt "  storm: pid %d freed %d allocs / %d bytes at %d@."
      r.storm_tenant r.storm_freed_allocs r.storm_freed_bytes r.storm_cycles;
  Format.fprintf fmt "  slice p99.9 us:";
  Array.iter (fun v -> Format.fprintf fmt " %.0f" v) r.slice_p999;
  Format.fprintf fmt "@.";
  List.iter
    (fun o ->
      Format.fprintf fmt
        "  pid %d%s quota=%d: offered=%d served=%d shed(q/d/dl)=%d/%d/%d \
         lost=%d deny(q/p)=%d/%d reclaims=%d p99=%.0fus goodput=%.0f/s \
         balance=%d grants=%d%s@."
        o.o_pid
        (if o.o_crashed then "*" else "")
        o.o_quota o.o_offered o.o_served o.o_shed_quota o.o_shed_depth
        o.o_shed_deadline o.o_lost o.o_denied_quota o.o_denied_phys
        o.o_reclaims o.o_p99_us o.o_goodput o.o_balance o.o_grants
        (if o.o_conserved then "" else " NOT-CONSERVED"))
    r.per_tenant
