module Capability = Cheri.Capability
module Machine = Sim.Machine
module Prng = Sim.Prng
module Cost = Sim.Cost
module Runtime = Ccr.Runtime
module Loadgen = Service.Loadgen
module Squeue = Service.Squeue
module Slo = Service.Slo
module Governor = Service.Governor

type config = {
  pattern : Loadgen.pattern;
  requests : int;
  servers : int;
  queue_depth : int;
  deadline_us : float option;
  target_p99_us : float;
  session_slots : int;
  temps_per_req : int;
  compute_per_req : int;
  seed : int;
}

let default_config =
  {
    pattern = Loadgen.Poisson 20_000.0;
    requests = 6_000;
    servers = 2;
    queue_depth = 64;
    deadline_us = None;
    target_p99_us = 1_000.0;
    session_slots = 20_000;
    temps_per_req = 3;
    compute_per_req = 30_000;
    seed = 11;
  }

type outcome = {
  result : Result.t;
  offered : int;
  served : int;
  shed_depth : int;
  shed_deadline : int;
  slo : Slo.t;
  governor : Governor.stats option;
}

type shared = {
  mutable sessions : Objtable.t option;
  init_cv : Machine.condvar;
  mutable finished_servers : int;
}

let r_work = 1

(* One request: unmarshal temporaries, touch session state, compute,
   respond, free — the same allocation texture as the gRPC surrogate so
   the revoker has capability-bearing pages to care about. *)
let process_request cfg rt ctx rng regs sessions =
  let temps =
    Array.init cfg.temps_per_req (fun i ->
        let c = Runtime.malloc rt ctx (128 + (Prng.int rng 56 * 16)) in
        Machine.store_u64 ctx c (Int64.of_int i);
        let prev = Sim.Regfile.get regs r_work in
        if Capability.tag prev && Capability.length c >= 32 then
          Machine.store_cap ctx (Capability.incr_addr c 16) prev;
        Sim.Regfile.set regs r_work c;
        c)
  in
  for _ = 1 to 2 do
    match Objtable.random_live sessions rng ~hot:0.1 ~weight:0.5 with
    | None -> ()
    | Some slot ->
        let c = Objtable.get sessions ctx slot in
        if Capability.tag c then begin
          Sim.Regfile.set regs r_work c;
          ignore (Machine.load_u64 ctx c);
          Machine.store_u64 ctx (Capability.incr_addr c 8) 7L;
          if Prng.int rng 100 = 0 then begin
            let nv = Runtime.malloc rt ctx 256 in
            Machine.store_u64 ctx nv 1L;
            Objtable.put sessions ctx slot nv ~size:256;
            Runtime.free rt ctx c;
            Sim.Regfile.set regs r_work Capability.null
          end
        end
  done;
  Machine.charge ctx cfg.compute_per_req;
  Array.iter (fun c -> Runtime.free rt ctx c) temps;
  Sim.Regfile.set regs r_work Capability.null

(* Servers round-robin over cores 2, 3, 1: the first two land where the
   gRPC surrogate puts them, with the revoker sharing core 3 so
   revocation competes with foreground service. Core 0 is the
   generator's. *)
let server_core i = [| 2; 3; 1 |].(i mod 3)

let run ?(config = default_config) ?tracer ?on_runtime ?(governed = false)
    ?governor_config ~mode () =
  let cfg = config in
  if cfg.servers < 1 then invalid_arg "Serve.run: need at least one server";
  let heap_bytes = 24 * 1024 * 1024 in
  let mconfig =
    {
      Machine.default_config with
      heap_bytes;
      mem_bytes = heap_bytes + (heap_bytes / 16) + (8 * 1024 * 1024);
      seed = cfg.seed;
    }
  in
  let rt = Runtime.create ~config:mconfig ~revoker_core:3 mode in
  let m = rt.Runtime.machine in
  Machine.attach_tracer m tracer;
  Option.iter (fun f -> f rt) on_runtime;
  let arrivals =
    Loadgen.schedule
      { Loadgen.pattern = cfg.pattern; requests = cfg.requests; seed = cfg.seed }
  in
  let deadline = Option.map Cost.cycles_of_us cfg.deadline_us in
  let queue = Squeue.create m ~max_depth:cfg.queue_depth ?deadline () in
  let slo = Slo.create ~target_p99_us:cfg.target_p99_us () in
  let gov =
    if governed && rt.Runtime.revoker <> None then
      Some
        (Governor.install ?config:governor_config
           ~target_p99_us:cfg.target_p99_us
           ~p99:(fun () -> Slo.p99_estimate slo)
           rt
           ~depth:(fun () -> Squeue.depth queue)
           ())
    else None
  in
  let sh =
    { sessions = None; init_cv = Machine.condvar (); finished_servers = 0 }
  in
  let latencies = ref [] in
  let wall_end = ref 0 in
  (* The load generator models the outside world: spawned non-user so a
     stop-the-world pause cannot park it. It releases requests at their
     precomputed intended arrival times regardless of server progress —
     during a pause the queue (and the shed count) grows, and every
     served straggler's latency is measured from its intended arrival. *)
  let _generator =
    Machine.spawn m ~name:"serve-loadgen" ~core:0 ~user:false (fun ctx ->
        while sh.sessions = None do
          Machine.wait ctx sh.init_cv
        done;
        let t0 = Machine.now ctx in
        Array.iteri
          (fun i arr ->
            let intended = t0 + arr in
            let dt = intended - Machine.now ctx in
            if dt > 0 then Machine.sleep ctx dt;
            Slo.note_offered slo;
            ignore
              (Squeue.offer queue ctx
                 { Squeue.id = i; intended; cls = 0; deadline = None;
                   tenant = 0 }))
          arrivals;
        Squeue.close queue ctx)
  in
  let server id =
    Machine.spawn m
      ~name:(Printf.sprintf "serve-server-%d" id)
      ~core:(server_core id)
      (fun ctx ->
        let regs = Machine.regs (Machine.self ctx) in
        let rng = Prng.create ~seed:(cfg.seed * 31 * (id + 1)) in
        if id = 0 then begin
          let sessions = Objtable.create rt ctx ~slots:cfg.session_slots in
          for slot = 0 to cfg.session_slots - 1 do
            let c = Runtime.malloc rt ctx 256 in
            Machine.store_u64 ctx c (Int64.of_int slot);
            Objtable.put sessions ctx slot c ~size:256
          done;
          sh.sessions <- Some sessions;
          Machine.broadcast ctx sh.init_cv
        end
        else
          while sh.sessions = None do
            Machine.wait ctx sh.init_cv
          done;
        let sessions = Option.get sh.sessions in
        let rec serve () =
          (* An idle server is the trough signal: give the governor a
             chance to flush quarantine into the lull. *)
          if Squeue.depth queue = 0 then
            Option.iter (fun g -> Governor.maybe_eager g ctx) gov;
          match Squeue.take queue ctx with
          | None -> ()
          | Some req ->
              process_request cfg rt ctx rng regs sessions;
              let lat =
                Slo.record slo ~intended:req.Squeue.intended
                  ~completed:(Machine.now ctx)
              in
              latencies := lat :: !latencies;
              serve ()
        in
        serve ();
        sh.finished_servers <- sh.finished_servers + 1;
        if sh.finished_servers = cfg.servers then begin
          wall_end := Machine.now ctx;
          Option.iter Governor.uninstall gov;
          Runtime.finish rt ctx
        end)
  in
  let servers = List.init cfg.servers server in
  Machine.run m;
  let totals = Machine.totals m in
  let result =
    {
      Result.workload = "serve";
      mode = Runtime.mode_name mode;
      wall_cycles = !wall_end;
      cpu_cycles = totals.Machine.cpu_cycles;
      app_cpu_cycles =
        List.fold_left (fun a th -> a + Machine.thread_cpu_cycles th) 0 servers;
      bus_total = totals.Machine.bus_transactions;
      bus_app_core =
        Machine.bus_transactions_of_core m 2 + Machine.bus_transactions_of_core m 3;
      peak_rss_pages = rt.Runtime.alloc.Alloc.Backend.peak_rss_pages ();
      clg_faults = totals.Machine.clg_faults;
      ops_done = Slo.served slo;
      latencies_us = Array.of_list (List.rev !latencies);
      latencies_closed_us = [||];
      throughput =
        (if !wall_end = 0 then 0.0
         else
           float_of_int (Slo.served slo)
           /. (float_of_int !wall_end /. Cost.clock_hz));
      scrub_bytes = rt.Runtime.alloc.Alloc.Backend.scrub_bytes ();
      mrs = Runtime.mrs_stats rt;
      phases = Runtime.revoker_records rt;
    }
  in
  {
    result;
    offered = Slo.offered slo;
    served = Slo.served slo;
    shed_depth = Squeue.shed_depth queue;
    shed_deadline = Squeue.shed_deadline queue;
    slo;
    governor = Option.map Governor.stats gov;
  }
