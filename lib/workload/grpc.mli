(** The gRPC QPS surrogate (§5.3 of the paper).

    A two-thread asynchronous server pinned to cores 2 and 3 serves
    pipelined messages from two client threads on cores 0 and 1, each
    keeping a fixed number of requests outstanding (closed loop). Unlike
    the other workloads the background revoker is {e not} given a spare
    core: it shares core 3 with a server thread, so revocation directly
    competes with foreground work — the paper's source of 99.9th-
    percentile pathologies.

    Each message allocates and frees unmarshalling/response temporaries
    against the shared heap; a long-lived session/buffer table provides
    the capability-bearing pages the revoker must sweep.

    {b Coordinated omission.} A closed-loop client that measures latency
    from the actual send instant under-reports server stalls: while the
    server is paused (say, in a revocation stop-the-world) the client's
    outstanding window is full, so it simply stops issuing — the stalled
    interval contributes {e no} samples, and the tail looks clean
    precisely when it was worst. The latencies reported here are
    therefore measured from each request's {e intended} issue time,
    stamped before the client waits for window credit; the uncorrected
    closed-loop measurement is still recorded in
    [Result.latencies_closed_us] for comparison. *)

type config = {
  messages : int; (** total messages across all clients *)
  outstanding : int; (** pipelined requests per client thread *)
  session_slots : int; (** long-lived server state objects *)
  temps_per_msg : int;
  compute_per_msg : int;
  warmup_fraction : float;
  seed : int;
}

val default_config : config

val run :
  ?config:config -> ?tracer:Sim.Trace.t -> mode:Ccr.Runtime.mode -> unit -> Result.t
(** [latencies_us] holds post-warmup per-message latencies; [throughput]
    is messages per simulated second (QPS). *)
