(** Multi-tenant driver: N concurrent SPEC profiles in separate
    processes on one machine.

    Each tenant is a forked process ({!Os.fork}) running the same
    profile under its own deterministic operation stream, its own
    allocator clone, quarantine and revoker; the {!Os.Revsched} token
    arbitrates whose revocation epoch runs next. Reports aggregate
    throughput, per-tenant elapsed time and a fairness ratio (slowest
    tenant over fastest — 1.0 means perfectly fair). *)

type tenant_result = {
  t_pid : int;
  t_profile : string;
  t_ops : int;
  t_elapsed_cycles : int;  (** fork to exit *)
  t_quarantine_peak : int;  (** quarantined bytes when the tenant exited *)
}

type result = {
  mode : string;
  sched : string;
  tenants : int;
  wall_cycles : int;
  total_ops : int;
  throughput : float;  (** aggregate ops per million wall cycles *)
  fairness : float;  (** max tenant elapsed / min tenant elapsed *)
  per_tenant : tenant_result list;
  sched_stats : Os.Revsched.stats list;
}

val run :
  ?seed:int ->
  ?ops_scale:float ->
  ?policy:Ccr.Policy.t ->
  ?sched:Os.Revsched.policy ->
  ?tenants:int ->
  ?tracer:Sim.Trace.t ->
  ?on_os:(Os.t -> unit) ->
  mode:Ccr.Runtime.mode ->
  Profile.t ->
  result
(** [tenants] defaults to 2. [on_os] is called with the freshly-built
    process table after the tracer is attached but before any thread
    runs — analyses use it to register per-process shadow state via
    {!Os.set_on_process}. The same [seed] produces the same per-tenant
    streams across modes and scheduling policies. *)

val pp : Format.formatter -> result -> unit
