type t = {
  workload : string;
  mode : string;
  wall_cycles : int;
  cpu_cycles : int;
  app_cpu_cycles : int;
  bus_total : int;
  bus_app_core : int;
  peak_rss_pages : int;
  clg_faults : int;
  ops_done : int;
  latencies_us : float array;
  latencies_closed_us : float array;
  throughput : float;
  scrub_bytes : int; 
  mrs : Ccr.Mrs.stats option;
  phases : Ccr.Revoker.phase_record list;
}

let wall_ms t = Sim.Cost.cycles_to_ms t.wall_cycles

let pp_brief fmt t =
  Format.fprintf fmt "%-14s %-11s wall=%8.2fms cpu=%8.2fms bus=%9d rss=%5dp faults=%6d"
    t.workload t.mode (wall_ms t)
    (Sim.Cost.cycles_to_ms t.cpu_cycles)
    t.bus_total t.peak_rss_pages t.clg_faults
