module Prng = Sim.Prng

type size_dist =
  | Fixed of int
  | Uniform of int * int
  | Mixture of (float * size_dist) list

let rec sample_size rng = function
  | Fixed n -> n
  | Uniform (lo, hi) -> lo + Prng.int rng (max 1 (hi - lo))
  | Mixture parts ->
      let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 parts in
      let x = Prng.float rng total in
      let rec pick acc = function
        | [] -> invalid_arg "sample_size: empty mixture"
        | [ (_, d) ] -> sample_size rng d
        | (w, d) :: rest -> if x < acc +. w then sample_size rng d else pick (acc +. w) rest
      in
      pick 0.0 parts

(* Compiled sampler: mixture cumulative weights are precomputed once at
   profile construction instead of re-folding the weight list on every
   draw. Draw-for-draw identical to [sample_size]: the cumulative array
   holds the same left-fold partial sums ([acc +. w] in list order, NOT
   renormalized — renormalizing would change the float rounding and
   with it the sampled sequence), the total is the same fold's final
   value, and the comparison [x < cum.(i)] with the last arm taken
   unconditionally reproduces the reference walk bit for bit. *)
type sizer =
  | S_fixed of int
  | S_uniform of int * int (* lo, span = max 1 (hi - lo) *)
  | S_mixture of float * float array * sizer array (* total, cumulative, arms *)

let rec sizer_of = function
  | Fixed n -> S_fixed n
  | Uniform (lo, hi) -> S_uniform (lo, max 1 (hi - lo))
  | Mixture [] -> invalid_arg "sample_size: empty mixture"
  | Mixture parts ->
      let n = List.length parts in
      let cum = Array.make n 0.0 in
      let arms = Array.make n (S_fixed 0) in
      let _, _ =
        List.fold_left
          (fun (i, acc) (w, d) ->
            let acc = acc +. w in
            cum.(i) <- acc;
            arms.(i) <- sizer_of d;
            (i + 1, acc))
          (0, 0.0) parts
      in
      S_mixture (cum.(n - 1), cum, arms)

let rec sample rng = function
  | S_fixed n -> n
  | S_uniform (lo, span) -> lo + Prng.int rng span
  | S_mixture (total, cum, arms) ->
      let x = Prng.float rng total in
      let last = Array.length arms - 1 in
      let rec pick i =
        if i = last || x < cum.(i) then sample rng arms.(i) else pick (i + 1)
      in
      pick 0

let rec mean_of_dist = function
  | Fixed n -> float_of_int n
  | Uniform (lo, hi) -> float_of_int (lo + hi) /. 2.0
  | Mixture parts ->
      let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 parts in
      List.fold_left (fun acc (w, d) -> acc +. (w /. total *. mean_of_dist d)) 0.0 parts

type t = {
  name : string;
  slots : int;
  target_live : float;
  size : size_dist;
  size_c : sizer;
  ops : int;
  churn : float;
  kill_only : float;
  birth_only : float;
  ptr_density : float;
  reads_per_op : int;
  writes_per_op : int;
  chase_depth : int;
  hot_fraction : float;
  hot_weight : float;
  compute_per_op : int;
  engages_revocation : bool;
}

let make ~name ~slots ~target_live ~size ~ops ~churn ~kill_only ~birth_only
    ~ptr_density ~reads_per_op ~writes_per_op ~chase_depth ~hot_fraction
    ~hot_weight ~compute_per_op ~engages_revocation () =
  {
    name;
    slots;
    target_live;
    size;
    size_c = sizer_of size;
    ops;
    churn;
    kill_only;
    birth_only;
    ptr_density;
    reads_per_op;
    writes_per_op;
    chase_depth;
    hot_fraction;
    hot_weight;
    compute_per_op;
    engages_revocation;
  }

let mean_size t = mean_of_dist t.size

(* Calibration notes: heap sizes are 1/64 of the paper's Table 2 "Mean
   Alloc"; churn probabilities order the freed:allocated ratios as in the
   paper; pointer density and chase depth follow §5.4's
   "pointer-chase-heavy" classification (astar, omnetpp, xalancbmk). *)
let spec_all =
  [
    make ~name:"astar_lakes" ~slots:8_000 ~target_live:0.92
      ~size:(Mixture [ (0.7, Uniform (32, 512)); (0.3, Uniform (512, 1500)) ])
      ~ops:400_000 ~churn:0.18 ~kill_only:0.04 ~birth_only:0.04
      ~ptr_density:0.20 ~reads_per_op:5 ~writes_per_op:2 ~chase_depth:3
      ~hot_fraction:0.10 ~hot_weight:0.60 ~compute_per_op:2200
      ~engages_revocation:true ();
    make ~name:"bzip2" ~slots:64 ~target_live:0.80 ~size:(Fixed 65_536)
      ~ops:250_000 ~churn:0.00002 ~kill_only:0.0 ~birth_only:0.0
      ~ptr_density:0.0 ~reads_per_op:20 ~writes_per_op:10 ~chase_depth:0
      ~hot_fraction:0.25 ~hot_weight:0.80 ~compute_per_op:150
      ~engages_revocation:false ();
    make ~name:"gobmk_trevord" ~slots:8_000 ~target_live:0.95
      ~size:(Uniform (64, 448)) ~ops:350_000 ~churn:0.035 ~kill_only:0.005
      ~birth_only:0.005 ~ptr_density:0.10 ~reads_per_op:8 ~writes_per_op:3
      ~chase_depth:1 ~hot_fraction:0.15 ~hot_weight:0.70 ~compute_per_op:250
      ~engages_revocation:true ();
    make ~name:"hmmer_nph3" ~slots:6_300 ~target_live:0.95 ~size:(Fixed 128)
      ~ops:500_000 ~churn:0.40 ~kill_only:0.02 ~birth_only:0.02
      ~ptr_density:0.03 ~reads_per_op:6 ~writes_per_op:4 ~chase_depth:0
      ~hot_fraction:0.30 ~hot_weight:0.80 ~compute_per_op:900
      ~engages_revocation:true ();
    make ~name:"hmmer_retro" ~slots:2_600 ~target_live:0.95 ~size:(Fixed 128)
      ~ops:300_000 ~churn:0.27 ~kill_only:0.02 ~birth_only:0.02
      ~ptr_density:0.03 ~reads_per_op:6 ~writes_per_op:4 ~chase_depth:0
      ~hot_fraction:0.30 ~hot_weight:0.80 ~compute_per_op:700
      ~engages_revocation:true ();
    make ~name:"libquantum" ~slots:12 ~target_live:0.75
      ~size:(Mixture [ (0.6, Fixed 131_072); (0.4, Fixed 262_144) ])
      ~ops:250_000 ~churn:0.0012 ~kill_only:0.0 ~birth_only:0.0
      ~ptr_density:0.0 ~reads_per_op:12 ~writes_per_op:8 ~chase_depth:0
      ~hot_fraction:0.50 ~hot_weight:0.50 ~compute_per_op:50
      ~engages_revocation:true ();
    make ~name:"omnetpp" ~slots:31_000 ~target_live:0.92
      ~size:(Mixture [ (0.8, Uniform (32, 256)); (0.2, Uniform (256, 640)) ])
      ~ops:900_000 ~churn:0.48 ~kill_only:0.04 ~birth_only:0.04
      ~ptr_density:0.35 ~reads_per_op:4 ~writes_per_op:2 ~chase_depth:4
      ~hot_fraction:0.05 ~hot_weight:0.50 ~compute_per_op:1600
      ~engages_revocation:true ();
    make ~name:"sjeng" ~slots:700 ~target_live:1.0 ~size:(Fixed 4_096)
      ~ops:300_000 ~churn:0.0002 ~kill_only:0.0 ~birth_only:0.0
      ~ptr_density:0.05 ~reads_per_op:10 ~writes_per_op:2 ~chase_depth:1
      ~hot_fraction:0.20 ~hot_weight:0.85 ~compute_per_op:200
      ~engages_revocation:false ();
    make ~name:"xalancbmk" ~slots:40_000 ~target_live:0.92
      ~size:(Mixture [ (0.75, Uniform (32, 320)); (0.25, Uniform (320, 768)) ])
      ~ops:800_000 ~churn:0.38 ~kill_only:0.035 ~birth_only:0.035
      ~ptr_density:0.30 ~reads_per_op:4 ~writes_per_op:2 ~chase_depth:3
      ~hot_fraction:0.06 ~hot_weight:0.50 ~compute_per_op:1600
      ~engages_revocation:true ();
  ]

let spec_revoking = List.filter (fun p -> p.engages_revocation) spec_all

let find name =
  match List.find_opt (fun p -> p.name = name) spec_all with
  | Some p -> p
  | None -> raise Not_found

let heap_bytes_needed t =
  let live =
    float_of_int t.slots *. t.target_live *. mean_size t
  in
  let table = t.slots * 16 in
  let bytes = int_of_float (8.0 *. live) + (8 * table) + (2 * 1024 * 1024) in
  (* round to MiB *)
  (bytes + (1 lsl 20) - 1) / (1 lsl 20) * (1 lsl 20)
