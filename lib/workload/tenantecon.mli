(** Tenant economics under a bulk-reclamation storm.

    N tenant processes with heterogeneous quotas ([quota_base * (i+1)])
    serve open-loop Poisson traffic through per-tenant admission queues
    whose quota gate ({!Service.Squeue}) sheds requests from over-budget
    tenants before they queue. Every request churns temporaries and a
    standing session ring through the tenant's sealed allocator
    capability ({!Tenancy.Ledger}), so revocation lag — quota still
    charged for quarantined memory — feeds straight back into admission.
    The physical limit is [phys_frac × Σ quotas], over-committed by
    construction; exhaustion resolves through the configured
    {!Tenancy.Ledger.overcommit} policy.

    At [storm_at] of the horizon the {e largest} tenant crashes: its
    queue drains as lost, {!Tenancy.Ledger.free_all} hands its entire
    live heap to quarantine in one shot, its capability is revoked, and
    the zombie's quarantine drains through its own revoker under the
    chosen {!Os.Revsched.policy}. The per-slice p99.9 curve exposes the
    excursion the surviving tenants see; [identity_ok] checks the
    serving identity (offered = served + shed + lost, per tenant) and
    [conserved] the quota ledger's conservation identity. Deterministic
    for a fixed config and seed. *)

type config = {
  tenants : int;
  quota_base : int;  (** tenant i's quota = quota_base * (i + 1) *)
  phys_frac : float;  (** phys_limit / Σ quotas; < 1.0 over-commits *)
  overcommit : Tenancy.Ledger.overcommit;
  sched : Os.Revsched.policy;
  requests : int;  (** per tenant *)
  rate : float;  (** per-tenant offered rate, req/s *)
  storm_at : float;  (** fraction of the horizon; >= 1.0 disables *)
  queue_depth : int;
  governed : bool;
  target_p99_us : float;
  block_bytes : int;  (** session-ring block size *)
  ring_frac : float;  (** standing ring charge as a fraction of quota *)
  temps_per_req : int;
  compute_per_req : int;
  slices : int;  (** time slices for the p99.9 curve *)
  seed : int;
}

val default_config : config

type tenant_outcome = {
  o_pid : int;
  o_quota : int;
  o_offered : int;
  o_served : int;
  o_shed_quota : int;
  o_shed_depth : int;
  o_shed_deadline : int;
  o_lost : int;
  o_denied_quota : int;  (** allocation denies inside admitted requests *)
  o_denied_phys : int;
  o_reclaims : int;
  o_p99_us : float;
  o_goodput : float;  (** served requests per second of wall time *)
  o_balance : int;  (** outstanding charge at the end of the run *)
  o_conserved : bool;
  o_grants : int;
  o_wait_cycles : int;
  o_crashed : bool;
}

type result = {
  mode : string;
  sched : string;
  overcommit : string;
  tenants : int;
  governed : bool;
  wall_cycles : int;
  phys_limit : int;
  quota_total : int;
  storm_tenant : int;  (** pid, or -1 when the storm is disabled *)
  storm_cycles : int;
  storm_freed_allocs : int;
  storm_freed_bytes : int;
  quarantine_peak : int;  (** machine-wide, sampled at completions *)
  committed_peak : int;  (** peak Σ outstanding balances *)
  p999_us : float;
  p999_calm_us : float;
      (** worst slice p99.9 before the storm, excluding the cold-start
          slice 0 *)
  p999_storm_us : float;  (** worst slice p99.9 at/after the storm *)
  slice_p999 : float array;
  identity_ok : bool;
  conserved : bool;
  per_tenant : tenant_outcome list;
}

val run :
  ?tracer:Sim.Trace.t ->
  ?on_os:(Os.t -> unit) ->
  ?config:config ->
  mode:Ccr.Runtime.mode ->
  unit ->
  result
(** [on_os] runs after the OS is built but before any process forks —
    analyses hook {!Os.set_on_process} there. Raises [Invalid_argument]
    on a non-positive tenant count, quota base, or slice count. *)

val pp : Format.formatter -> result -> unit
