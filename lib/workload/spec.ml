module Capability = Cheri.Capability
module Machine = Sim.Machine
module Prng = Sim.Prng
module Runtime = Ccr.Runtime

let granule = 16

(* Register conventions for workload threads: r0 the table handle's spare,
   r1 the op's working object, r2 the chase cursor, r3 the most recently
   allocated object (source of capabilities stored into object bodies). *)
let r_work = 1
let r_chase = 2
let r_recent = 3

(* Initialize a fresh object's body: a bounded number of stores, a
   [ptr_density] fraction of which are capability stores of the most
   recently used object (creating inter-object pointers that revocation
   must later find). *)
let init_body (p : Profile.t) ctx rng regs cap =
  let granules = Capability.length cap / granule in
  let stores = min granules 32 in
  let base = Capability.base cap in
  for _ = 1 to stores do
    let g = Prng.int rng granules in
    let slot = Capability.set_addr cap (base + (g * granule)) in
    if Prng.float rng 1.0 < p.Profile.ptr_density then begin
      let v = Sim.Regfile.get regs r_recent in
      if Capability.tag v then Machine.store_cap ctx slot v
      else Machine.store_u64 ctx slot (Int64.of_int g)
    end
    else Machine.store_u64 ctx slot (Int64.of_int g)
  done

let alloc_into (p : Profile.t) rt ctx rng regs table slot =
  let size = Profile.sample rng p.Profile.size_c in
  let c = Runtime.malloc rt ctx size in
  Sim.Regfile.set regs r_work c;
  init_body p ctx rng regs c;
  Objtable.put table ctx slot c ~size:(Capability.length c);
  Sim.Regfile.set regs r_recent c

let access_op (p : Profile.t) ctx rng regs table =
  match
    Objtable.random_live table rng ~hot:p.Profile.hot_fraction
      ~weight:p.Profile.hot_weight
  with
  | None -> ()
  | Some slot ->
      let c = Objtable.get table ctx slot in
      if Capability.tag c then begin
        Sim.Regfile.set regs r_work c;
        Sim.Regfile.set regs r_recent c;
        let len = Capability.length c in
        let base = Capability.base c in
        let window = min len 32768 in
        let word_at g = Capability.set_addr c (base + (g * granule)) in
        for _ = 1 to p.Profile.reads_per_op do
          ignore (Machine.load_u64 ctx (word_at (Prng.int rng (window / granule))))
        done;
        for _ = 1 to p.Profile.writes_per_op do
          Machine.store_u64 ctx
            (word_at (Prng.int rng (window / granule)))
            (Int64.of_int slot)
        done;
        (* pointer chase: follow capabilities stored in object bodies *)
        let cursor = ref c in
        for _ = 1 to p.Profile.chase_depth do
          let cur = !cursor in
          let clen = Capability.length cur in
          if clen >= granule then begin
            let g = Prng.int rng (clen / granule) in
            let addr = Capability.base cur + (g * granule) in
            let next = Machine.load_cap ctx (Capability.set_addr cur addr) in
            if Capability.tag next && Capability.can_load next then begin
              Sim.Regfile.set regs r_chase next;
              ignore
                (Machine.load_u64 ctx (Capability.set_addr next (Capability.base next)));
              cursor := next
            end
            else Machine.charge ctx Sim.Cost.alu
          end
        done
      end

let churn_op (p : Profile.t) rt ctx rng regs table ~realloc =
  match Objtable.random_live table rng ~hot:1.0 ~weight:0.0 with
  | None -> ()
  | Some slot ->
      let c = Objtable.get table ctx slot in
      if Capability.tag c then begin
        Sim.Regfile.set regs r_work c;
        Runtime.free rt ctx c;
        (* The stale capability remains in the table slot (and possibly in
           other object bodies): exactly the dangling pointers revocation
           exists to neutralize. Clear only our register copy sometimes,
           modelling registers that hold dead pointers across epochs. *)
        if Prng.bool rng then Sim.Regfile.set regs r_work Capability.null;
        if Capability.equal (Sim.Regfile.get regs r_recent) c then
          Sim.Regfile.set regs r_recent Capability.null;
        Objtable.kill table slot;
        if realloc then alloc_into p rt ctx rng regs table slot
      end
      else Objtable.kill table slot

let birth_op (p : Profile.t) rt ctx rng regs table =
  match Objtable.random_dead table rng with
  | None -> ()
  | Some slot -> alloc_into p rt ctx rng regs table slot

(* The SPEC trace proper, reusable by any driver: build the object table,
   then run the deterministic operation stream against [rt]. Runs on the
   calling thread; multi-tenant drivers run one per process. *)
let app_body (p : Profile.t) rt ~rng ~ops ~ops_done ctx =
  let regs = Machine.regs (Machine.self ctx) in
  let table = Objtable.create rt ctx ~slots:p.Profile.slots in
  let initial =
    int_of_float (p.Profile.target_live *. float_of_int p.Profile.slots)
  in
  for slot = 0 to initial - 1 do
    alloc_into p rt ctx rng regs table slot
  done;
  for _ = 1 to ops do
    let x = Prng.float rng 1.0 in
    if x < p.Profile.churn then churn_op p rt ctx rng regs table ~realloc:true
    else if x < p.Profile.churn +. p.Profile.kill_only then
      churn_op p rt ctx rng regs table ~realloc:false
    else if x < p.Profile.churn +. p.Profile.kill_only +. p.Profile.birth_only
    then birth_op p rt ctx rng regs table
    else access_op p ctx rng regs table;
    if p.Profile.compute_per_op > 0 then
      Machine.charge ctx p.Profile.compute_per_op;
    incr ops_done
  done

type interp = Reference | Compiled

let run ?(seed = 1) ?(ops_scale = 1.0) ?policy ?(non_temporal = false)
    ?(allocator = Runtime.Snmalloc) ?tracer ?on_runtime ?(interp = Compiled)
    ~mode (p : Profile.t) =
  let heap_bytes = Profile.heap_bytes_needed p in
  let config =
    {
      Machine.default_config with
      heap_bytes;
      mem_bytes = heap_bytes + (heap_bytes / 16) + (8 * 1024 * 1024);
      seed;
    }
  in
  let rt =
    Runtime.create ~config ?policy ~revoker_core:2 ~non_temporal ~allocator mode
  in
  let m = rt.Runtime.machine in
  Machine.attach_tracer m tracer;
  (match on_runtime with Some f -> f rt | None -> ());
  let rng = Prng.create ~seed:(seed * 7919) in
  let ops = int_of_float (float_of_int p.Profile.ops *. ops_scale) in
  (* Compile after [on_runtime]: chaos hooks installed there can break
     the compiler's machine-state assumptions (tagged live slots,
     size-class-predicted lengths), so such runs take the reference
     interpreter — as do load-filter barriers (CHERIoT), which may strip
     a live slot's tag at load time, a machine-dependent outcome the
     compiled draw schedule cannot represent. Both paths consume the
     same PRNG stream. *)
  let stream =
    match interp with
    | Compiled when (not (Machine.chaos_armed m)) && not (Machine.load_filter_armed m)
      ->
        Some (Opstream.compile p ~rng ~ops)
    | Compiled | Reference -> None
  in
  let wall_end = ref 0 in
  let ops_done = ref 0 in
  let app =
    Machine.spawn m ~name:"app" ~core:3 (fun ctx ->
        (match stream with
        | Some s -> Opstream.exec s p rt ctx ~ops_done
        | None -> app_body p rt ~rng ~ops ~ops_done ctx);
        wall_end := Machine.now ctx;
        Runtime.finish rt ctx)
  in
  Machine.run m;
  let totals = Machine.totals m in
  {
    Result.workload = p.Profile.name;
    mode = Runtime.mode_name mode;
    wall_cycles = !wall_end;
    cpu_cycles = totals.Machine.cpu_cycles;
    app_cpu_cycles = Machine.thread_cpu_cycles app;
    bus_total = totals.Machine.bus_transactions;
    bus_app_core = Machine.bus_transactions_of_core m 3;
    peak_rss_pages = rt.Runtime.alloc.Alloc.Backend.peak_rss_pages ();
    clg_faults = totals.Machine.clg_faults;
    ops_done = !ops_done;
    latencies_us = [||];
    latencies_closed_us = [||];
    throughput = 0.0;
    scrub_bytes = rt.Runtime.alloc.Alloc.Backend.scrub_bytes ();
    mrs = Runtime.mrs_stats rt;
    phases = Runtime.revoker_records rt;
  }
