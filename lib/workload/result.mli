(** Measurements collected from one workload run. *)

type t = {
  workload : string;
  mode : string;
  wall_cycles : int; (** application start-to-finish *)
  cpu_cycles : int; (** busy cycles summed over all cores *)
  app_cpu_cycles : int; (** the application thread(s) only *)
  bus_total : int; (** bus transactions, all cores *)
  bus_app_core : int; (** application core(s) only *)
  peak_rss_pages : int;
  clg_faults : int;
  ops_done : int;
  latencies_us : float array;
      (** per-event latencies, empty for batch workloads. Measured from
          the {e intended} issue time wherever the workload has one
          (gRPC, rate-paced pgbench), so scheduler/revocation stalls
          appear as latency instead of being coordinated-omitted *)
  latencies_closed_us : float array;
      (** the classic closed-loop measurement (send → completion) for
          workloads that also keep it; empty elsewhere. The gap between
          the two columns is the coordinated-omission error *)
  throughput : float; (** events per second where meaningful, else 0 *)
  scrub_bytes : int; (** bytes zeroed at reuse *)
  mrs : Ccr.Mrs.stats option;
  phases : Ccr.Revoker.phase_record list;
}

val wall_ms : t -> float
val pp_brief : Format.formatter -> t -> unit
