(** The SPEC CPU2006 trace engine (§5.1 of the paper).

    Runs one profile under one temporal-safety mode on a fresh simulated
    machine: a single application thread pinned to core 3, the revoker
    (if any) pinned to core 2, exactly the paper's pinning regime. The
    application maintains an object table in simulated memory and
    executes a deterministic pseudo-random stream of churn / dangling-
    free / allocation / access operations, with pointer chasing and
    object bodies whose capability density matches the profile. *)

val app_body :
  Profile.t ->
  Ccr.Runtime.t ->
  rng:Sim.Prng.t ->
  ops:int ->
  ops_done:int ref ->
  Sim.Machine.ctx ->
  unit
(** The trace engine alone, on the calling thread: build the object
    table, then execute [ops] operations against the given runtime,
    bumping [ops_done] per op. {!run} wraps it in a fresh machine;
    {!Tenant.run} runs one per forked process. *)

type interp =
  | Reference  (** the original per-op interpreter ({!app_body}) *)
  | Compiled
      (** the {!Opstream} compiled path: bit-for-bit identical simulated
          behaviour, much faster host execution *)

val run :
  ?seed:int ->
  ?ops_scale:float ->
  ?policy:Ccr.Policy.t ->
  ?non_temporal:bool ->
  ?allocator:Ccr.Runtime.allocator_kind ->
  ?tracer:Sim.Trace.t ->
  ?on_runtime:(Ccr.Runtime.t -> unit) ->
  ?interp:interp ->
  mode:Ccr.Runtime.mode ->
  Profile.t ->
  Result.t
(** [ops_scale] multiplies the profile's operation count (default 1.0).
    The same [seed] produces the same operation stream across modes, so
    results are paired. [on_runtime] is called with the freshly-built
    runtime after the tracer is attached but before any thread runs —
    the hook analyses (sanitizer, race detector) use to subscribe.

    [interp] defaults to [Compiled]; runs that arm chaos hooks
    ({!Sim.Machine.chaos_armed}) or a capability-load filter barrier
    ({!Sim.Machine.load_filter_armed}, the CHERIoT strategy)
    automatically fall back to [Reference], whose per-op interpretation
    tolerates the machine states those can manufacture. *)
