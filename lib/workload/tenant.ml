module Machine = Sim.Machine
module Prng = Sim.Prng
module Runtime = Ccr.Runtime

(* Tenants run on the application cores; core 2 stays the revokers',
   core 0 also hosts the reaper. *)
let tenant_cores = [| 3; 1; 0 |]

type tenant_result = {
  t_pid : int;
  t_profile : string;
  t_ops : int;
  t_elapsed_cycles : int; (* fork to exit *)
  t_quarantine_peak : int;
}

type result = {
  mode : string;
  sched : string;
  tenants : int;
  wall_cycles : int;
  total_ops : int;
  throughput : float; (* aggregate ops per million wall cycles *)
  fairness : float; (* slowest tenant's elapsed / fastest's; 1.0 = fair *)
  per_tenant : tenant_result list;
  sched_stats : Os.Revsched.stats list;
}

let run ?(seed = 1) ?(ops_scale = 1.0) ?policy ?(sched = Os.Revsched.Round_robin)
    ?(tenants = 2) ?tracer ?on_os ~mode (p : Profile.t) =
  if tenants < 1 then invalid_arg "Tenant.run: tenants";
  let heap_bytes = Profile.heap_bytes_needed p in
  let config =
    {
      Machine.default_config with
      heap_bytes;
      (* every tenant maps its own heap and shadow out of the shared
         frame pool *)
      mem_bytes =
        (tenants * (heap_bytes + (heap_bytes / 16))) + (8 * 1024 * 1024);
      seed;
    }
  in
  let os = Os.create ~config ?policy ~sched ~revoker_core:2 mode in
  let m = Os.machine os in
  Machine.attach_tracer m tracer;
  (match on_os with Some f -> f os | None -> ());
  Os.spawn_reaper os;
  let ops = int_of_float (float_of_int p.Profile.ops *. ops_scale) in
  let ops_done = Array.make (tenants + 1) (ref 0) in
  let q_peak = Array.make (tenants + 1) 0 in
  let wall_end = ref 0 in
  ignore
    (Machine.spawn m ~name:"init" ~core:0 (fun ctx ->
         for i = 0 to tenants - 1 do
           let core = tenant_cores.(i mod Array.length tenant_cores) in
           let counter = ref 0 in
           let child =
             Os.fork os ctx ~parent:(Os.init os)
               ~name:(Printf.sprintf "tenant-%d" i)
               ~core
               (fun cctx proc ->
                 (* Each tenant runs the same profile under its own
                    deterministic stream, so tenants contend but stay
                    reproducible. *)
                 let rng =
                   Prng.create ~seed:((seed * 7919) + Os.pid proc)
                 in
                 Spec.app_body p (Os.runtime proc) ~rng ~ops
                   ~ops_done:counter cctx;
                 let pid = Os.pid proc in
                 q_peak.(pid) <-
                   max q_peak.(pid) (Os.proc_stats os proc).Os.quarantine_bytes;
                 Os.exit os cctx proc)
           in
           ops_done.(Os.pid child) <- counter
         done;
         Os.wait_children os ctx;
         wall_end := Machine.now ctx;
         Os.shutdown os ctx));
  Machine.run m;
  let per_tenant =
    List.filter_map
      (fun proc ->
        let pid = Os.pid proc in
        if pid = 0 then None
        else
          let st = Os.proc_stats os proc in
          Some
            {
              t_pid = pid;
              t_profile = p.Profile.name;
              t_ops = !(ops_done.(pid));
              t_elapsed_cycles = st.Os.elapsed_cycles;
              t_quarantine_peak = q_peak.(pid);
            })
      (Os.procs os)
  in
  let total_ops = List.fold_left (fun a t -> a + t.t_ops) 0 per_tenant in
  let elapsed = List.map (fun t -> t.t_elapsed_cycles) per_tenant in
  let fairness =
    match elapsed with
    | [] -> 1.0
    | e :: _ ->
        let mn = List.fold_left min e elapsed
        and mx = List.fold_left max e elapsed in
        if mn = 0 then 1.0 else float_of_int mx /. float_of_int mn
  in
  let wall = !wall_end in
  {
    mode = Runtime.mode_name mode;
    sched = Os.Revsched.policy_name sched;
    tenants;
    wall_cycles = wall;
    total_ops;
    throughput =
      (if wall = 0 then 0.0
       else float_of_int total_ops *. 1_000_000.0 /. float_of_int wall);
    fairness;
    per_tenant;
    sched_stats = Os.Revsched.stats (Os.sched os);
  }

let pp fmt (r : result) =
  Format.fprintf fmt
    "tenants=%d mode=%s sched=%s wall=%d cycles ops=%d throughput=%.2f \
     ops/Mcycle fairness=%.3f@."
    r.tenants r.mode r.sched r.wall_cycles r.total_ops r.throughput r.fairness;
  List.iter
    (fun t ->
      Format.fprintf fmt
        "  pid %d (%s): %d ops in %d cycles, peak quarantine %d bytes@."
        t.t_pid t.t_profile t.t_ops t.t_elapsed_cycles t.t_quarantine_peak)
    r.per_tenant;
  List.iter
    (fun (s : Os.Revsched.stats) ->
      Format.fprintf fmt "  sched pid %d: %d grants, %d cycles waited@."
        s.Os.Revsched.pid s.Os.Revsched.grants s.Os.Revsched.wait_cycles)
    r.sched_stats
