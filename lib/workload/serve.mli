(** The open-loop serving workload: [lib/service] wired to a runtime.

    A non-user load-generator thread on core 0 releases requests at the
    intended arrival times drawn by {!Service.Loadgen} — being non-user
    it is never parked by a revocation stop-the-world, so it models
    external clients whose traffic does not pause when the server does.
    Server threads (cores 2, 3, then 1) pull from a bounded
    {!Service.Squeue} (admission + deadline shedding), do gRPC-style
    per-request allocation work against a long-lived session table, and
    record latency from {e intended arrival} into {!Service.Slo}. The
    revoker shares core 3 with a server, so sweeps steal foreground
    cycles — the contention the SLO governor exists to manage.

    Accounting invariant, checked by [test_service] and the [--check]
    mode of [ccr_serve]: [served + shed_depth + shed_deadline = offered]
    with [offered = requests], exactly. *)

type config = {
  pattern : Service.Loadgen.pattern;
  requests : int;
  servers : int;  (** worker threads; 2 matches the gRPC surrogate *)
  queue_depth : int;  (** admission-control bound *)
  deadline_us : float option;  (** queue-delay drop threshold, if any *)
  target_p99_us : float;  (** SLO target fed to accounting + governor *)
  session_slots : int;
  temps_per_req : int;
  compute_per_req : int;
  seed : int;
}

val default_config : config
(** Poisson 20k req/s, 6000 requests, 2 servers, depth 64, no deadline,
    1 ms p99 target. *)

type outcome = {
  result : Result.t;  (** [latencies_us] = per-served-request, from intended arrival *)
  offered : int;
  served : int;
  shed_depth : int;
  shed_deadline : int;
  slo : Service.Slo.t;  (** histogram + violation counts *)
  governor : Service.Governor.stats option;  (** [None] when ungoverned *)
}

val run :
  ?config:config ->
  ?tracer:Sim.Trace.t ->
  ?on_runtime:(Ccr.Runtime.t -> unit) ->
  ?governed:bool ->
  ?governor_config:Service.Governor.config ->
  mode:Ccr.Runtime.mode ->
  unit ->
  outcome
(** [governed] (default [false]) installs a {!Service.Governor} over the
    runtime's revoker — ignored under [Baseline], which has none.
    [on_runtime] runs with the freshly built runtime (tracer already
    attached) before any thread spawns; the sanitizer and race detector
    attach through it. Fully deterministic: equal arguments give equal
    outcomes. *)
