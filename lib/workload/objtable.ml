module Capability = Cheri.Capability
module Machine = Sim.Machine
module Prng = Sim.Prng

let granule = 16
let chunk_slots = 256 (* one 4 KiB table chunk *)

type t = {
  rt : Ccr.Runtime.t;
  chunks : Capability.t array; (* "globals": caps to the table chunks *)
  nslots : int;
  live : Bytes.t;
  sizes : int array;
  mutable nlive : int;
}

let create rt ctx ~slots =
  if slots <= 0 then invalid_arg "Objtable.create";
  let nchunks = (slots + chunk_slots - 1) / chunk_slots in
  let chunks =
    Array.init nchunks (fun _ -> Ccr.Runtime.malloc rt ctx (chunk_slots * granule))
  in
  {
    rt;
    chunks;
    nslots = slots;
    live = Bytes.make slots '\000';
    sizes = Array.make slots 0;
    nlive = 0;
  }


let slots t = t.nslots
let chunk_count t = Array.length t.chunks

let chunk_cap t i =
  if i < 0 || i >= Array.length t.chunks then
    invalid_arg "Objtable: chunk out of range";
  t.chunks.(i)
let live_count t = t.nlive
let is_live t i = Bytes.get t.live i <> '\000'
let size_of t i = t.sizes.(i)

let slot_cap t i =
  if i < 0 || i >= t.nslots then invalid_arg "Objtable: slot out of range";
  let chunk = t.chunks.(i / chunk_slots) in
  Capability.set_addr chunk (Capability.base chunk + (i mod chunk_slots * granule))

let get t ctx i = Machine.load_cap ctx (slot_cap t i)

let put t ctx i c ~size =
  Machine.store_cap ctx (slot_cap t i) c;
  if not (is_live t i) then begin
    Bytes.set t.live i '\001';
    t.nlive <- t.nlive + 1
  end;
  t.sizes.(i) <- size

let kill t i =
  if is_live t i then begin
    Bytes.set t.live i '\000';
    t.nlive <- t.nlive - 1
  end

(* Linear-probe from a random start for a slot with the wanted liveness;
   O(slots) worst case but O(1) in the regimes the workloads run at. *)
let probe t rng ~lo ~hi ~want =
  let span = hi - lo in
  if span <= 0 then None
  else begin
    let start = lo + Prng.int rng span in
    let rec go i n =
      if n = 0 then None
      else if is_live t i = want then Some i
      else go (if i + 1 >= hi then lo else i + 1) (n - 1)
    in
    go start span
  end

let random_live t rng ~hot ~weight =
  if t.nlive = 0 then None
  else begin
    let hot_slots = int_of_float (hot *. float_of_int t.nslots) in
    let use_hot = hot_slots > 0 && Prng.float rng 1.0 < weight in
    match
      if use_hot then probe t rng ~lo:0 ~hi:hot_slots ~want:true else None
    with
    | Some i -> Some i
    | None -> probe t rng ~lo:0 ~hi:t.nslots ~want:true
  end

let random_dead t rng =
  if t.nlive >= t.nslots then None else probe t rng ~lo:0 ~hi:t.nslots ~want:false
