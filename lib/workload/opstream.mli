(** Compiled SPEC op streams: the reference interpreter's operation
    sequence lowered to flat, int-coded arrays, executed by a tight
    decode loop.

    The reference interpreter ({!Spec.app_body}) pays per operation for
    work that is invariant across the run: the mixture walk inside
    {!Profile.sample_size}, the [Prng.float] branch chain selecting the
    op kind, the linear probes over the liveness bitmap, and a fresh
    moved capability ([Capability.set_addr]) per simulated access. All
    of those consume only {e host-side} state (the PRNG and the table's
    liveness bookkeeping), so they can be replayed once, up front, into
    a flat encoding; the executor then touches the simulated machine —
    and nothing else — in exactly the reference order.

    {b Equivalence bar.} For a fixed seed the compiled path produces
    bit-for-bit the simulated cycles, cache and bus state, and trace
    stream of the reference interpreter (QCheck suite [test_opstream]).
    Two machine-state assumptions are asserted at execution, never
    silently absorbed: live slots hold tagged capabilities, and
    [Runtime.malloc] returns capabilities of the size-class-predicted
    length. Violating either (only possible with chaos hooks or a
    capability-load filter barrier armed, against which drivers fall
    back to the reference path — see {!Machine.chaos_armed} and
    {!Machine.load_filter_armed}) raises {!Divergence}. *)

type t
(** A compiled stream: prologue (table warm-up) allocations followed by
    the operation stream, with all PRNG draws pre-sampled. *)

exception Divergence of string
(** A compile-time machine-state assumption failed at execution. The
    simulation state is unusable after this — the executor may have
    consumed pre-sampled draws the reference would not have. *)

val compile : Profile.t -> rng:Sim.Prng.t -> ops:int -> t
(** Consumes from [rng] exactly the draws the reference interpreter
    would consume for the same profile and op count (including the
    prologue's); afterwards [rng] is positioned where the reference
    run would have left it. *)

val exec : t -> Profile.t -> Ccr.Runtime.t -> Sim.Machine.ctx -> ops_done:int ref -> unit
(** Run the stream on the calling simulated thread: builds the object
    table (same chunk allocations as the reference) and replays the
    operations. [ops_done] counts stream operations only, as in the
    reference. *)

val length : t -> int
(** Total entries (prologue + stream). *)

val stream_ops : t -> int
(** Stream operations (one per reference op, including no-op picks). *)

val mod_hilo : int -> int -> int -> int
(** [mod_hilo hi lo n] reduces the raw 63-bit draw [hi * 2^31 + lo]
    modulo [n], bit-identical to what [Prng.int] computes from the same
    raw draw. Exposed for the property test. *)
