(** The application's root data structure: a table of object pointers
    living in {e simulated memory}.

    Real programs keep their heap pointers in heap data structures; the
    table models that. Every slot is one capability granule, read with
    [load_cap] (and therefore subject to Reloaded's load barrier) and
    written with [store_cap] (setting capability-dirty bits). Stale
    pointers deliberately left in dead slots are what revocation exists
    to neutralize.

    The capabilities to the table chunks themselves are program
    "globals": they refer to never-freed memory, so holding them outside
    the register file cannot violate the revoker's invariant.

    Liveness flags and sizes are {e host-side} bookkeeping (the
    simulated program's control flow), not simulated state. *)

type t

val create : Ccr.Runtime.t -> Sim.Machine.ctx -> slots:int -> t
(** Allocates the table chunks from the runtime's heap. *)

val granule : int
(** Bytes per table slot (one capability granule). *)

val chunk_slots : int
(** Slots per table chunk; chunk [i] covers slots
    [i * chunk_slots .. (i + 1) * chunk_slots - 1]. *)

val chunk_count : t -> int

val chunk_cap : t -> int -> Cheri.Capability.t
(** The "global" capability to table chunk [i]. Compiled op-stream
    executors address slots through these directly (slot [s] lives at
    [base (chunk_cap t (s / chunk_slots)) + s mod chunk_slots * granule])
    instead of materialising a moved capability per access. *)

val slots : t -> int
val live_count : t -> int
val is_live : t -> int -> bool
val size_of : t -> int -> int

val get : t -> Sim.Machine.ctx -> int -> Cheri.Capability.t
(** Load the slot's capability from memory (a barriered load). *)

val put : t -> Sim.Machine.ctx -> int -> Cheri.Capability.t -> size:int -> unit
(** Store a capability into the slot and mark it live. *)

val kill : t -> int -> unit
(** Mark the slot dead in host bookkeeping; the stale capability stays
    in simulated memory (dangling). *)

val random_live : t -> Sim.Prng.t -> hot:float -> weight:float -> int option
(** Pick a live slot; with probability [weight] restrict to the first
    [hot] fraction of the table (working-set locality). *)

val random_dead : t -> Sim.Prng.t -> int option
