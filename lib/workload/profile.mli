(** SPEC CPU2006 INT workload profiles.

    Each profile is a synthetic stand-in for one CHERI-compatible SPEC
    benchmark, calibrated against the paper's Table 2 (mean allocated
    heap, freed:allocated ratio) and qualitative descriptions (pointer
    density, pointer-chase behaviour, locality). All byte quantities are
    scaled by 1/64 relative to the paper (DESIGN.md); operation counts
    may be further scaled at run time, which scales the cumulative
    freed:allocated ratio proportionally. *)

type size_dist =
  | Fixed of int
  | Uniform of int * int
  | Mixture of (float * size_dist) list
      (** weighted choice; weights need not sum to 1 *)

val sample_size : Sim.Prng.t -> size_dist -> int

type sizer
(** A compiled size distribution: mixture cumulative weights are
    precomputed once so the hot sampling path never re-folds the weight
    list. Draw-for-draw (and bit-for-bit) identical to {!sample_size}
    on the distribution it was compiled from. *)

val sizer_of : size_dist -> sizer

val sample : Sim.Prng.t -> sizer -> int
(** [sample rng (sizer_of d)] consumes the same PRNG draws and returns
    the same values as [sample_size rng d]. *)

type t = {
  name : string;
  slots : int; (** object-table capacity *)
  target_live : float; (** fraction of slots kept live in steady state *)
  size : size_dist;
  size_c : sizer; (** compiled form of [size]; kept in sync by {!make} *)
  ops : int; (** operations at scale 1.0 *)
  churn : float; (** P(op replaces a live object: free + alloc) *)
  kill_only : float; (** P(op frees leaving a dangling slot) *)
  birth_only : float; (** P(op allocates into a dead slot) *)
  ptr_density : float; (** fraction of body granules initialized with caps *)
  reads_per_op : int;
  writes_per_op : int;
  chase_depth : int; (** capability loads chased per access op *)
  hot_fraction : float;
  hot_weight : float;
  compute_per_op : int; (** ALU cycles per op *)
  engages_revocation : bool; (** paper: bzip2 and sjeng do not *)
}

val make :
  name:string ->
  slots:int ->
  target_live:float ->
  size:size_dist ->
  ops:int ->
  churn:float ->
  kill_only:float ->
  birth_only:float ->
  ptr_density:float ->
  reads_per_op:int ->
  writes_per_op:int ->
  chase_depth:int ->
  hot_fraction:float ->
  hot_weight:float ->
  compute_per_op:int ->
  engages_revocation:bool ->
  unit ->
  t
(** Smart constructor: fills [size_c] with [sizer_of size]. Prefer this
    to a record literal so the compiled sampler cannot drift from the
    declarative distribution. *)

val mean_size : t -> float

val spec_all : t list
(** The eight CHERI-compatible SPEC CPU2006 INT workloads of §5.1. *)

val spec_revoking : t list
(** Excluding bzip2 and sjeng (figure 1's note). *)

val find : string -> t
(** Lookup by name; raises [Not_found]. *)

val heap_bytes_needed : t -> int
(** Heap-region size to configure the machine with. *)
