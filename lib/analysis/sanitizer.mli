(** Shadow-state sanitizer for the revocation protocol.

    Subscribes to the machine's lossless event stream
    ({!Sim.Trace.subscribe}) and replays the quarantine lifecycle of
    every freed region against the paper's protocol:

    - epoch counters stay even outside revocations, odd inside, and
      advance by exactly two per epoch (§2.2.3);
    - no region leaves quarantine, and no freed memory is reused, before
      the epoch counter reaches {!Ccr.Epoch.clean_target} of the counter
      at paint time (§2.2.3);
    - the quarantine bitmap's byte accounting balances: painted bytes
      equal unpainted bytes plus the regions still in flight;
    - Cornucopia epochs that sweep concurrently issue TLB shootdowns
      (§2.2.5), and every sweeping strategy scans the kernel capability
      hoards while the hoards are non-empty (§4.4);
    - the capability-load generation toggles only with the world stopped,
      exactly once per epoch, and every core agrees afterwards (§4.1);
    - when an epoch ends, a shadow sweep of all mapped pages, user
      register files and kernel hoards finds no tagged capability whose
      base lies in a region that was quarantined when the epoch began
      (§3.2's invariant, checked against host state with zero simulated
      cost).

    All shadow state is partitioned by the events' process id: each
    process's revocation pipeline is checked as an independent protocol
    instance with its own epoch counter, region table and byte accounts.
    Single-process runs see exactly one partition (pid 0) and behave as
    before. A [Proc_fork] event clones the parent's still-quarantined
    regions into the child's partition (the child's copy-on-write bitmap
    carries their bits and its shim re-enqueues them).

    The checks are host-side only: attaching a sanitizer never charges a
    simulated cycle, so instrumented runs are cycle-identical to bare
    ones. *)

type violation = {
  v_rule : string;  (** stable rule identifier, e.g. ["early-reuse"] *)
  v_time : int;  (** core-local cycle of the offending event *)
  v_core : int;
  v_pid : int;  (** owning process of the offending event *)
  v_detail : string;
}

type t

val attach : ?revoker:Ccr.Revoker.t -> Sim.Machine.t -> t
(** Attach to the machine's tracer (installing a fresh tracer if none is
    attached yet) and begin checking. [revoker] enables the checks that
    need protocol context: strategy-specific rules, bitmap cross-checks
    and the hoard handle. Without it only the event-stream lifecycle
    rules run. *)

val register_process : t -> pid:int -> ?revoker:Ccr.Revoker.t -> unit -> unit
(** Give a process's partition its protocol context (its revoker), as
    [attach]'s [?revoker] does for pid 0. Partitions are created lazily
    for any pid seen in the stream, so this is only needed for the
    revoker-dependent checks. Wire it to {!Os.set_on_process}. *)

val detach : t -> unit
(** Stop observing; recorded violations remain readable. *)

val rebind : t -> ?revoker:Ccr.Revoker.t -> Sim.Machine.t -> unit
(** Re-attach this sanitizer to a fresh machine, clearing every recorded
    violation and all shadow state but reusing the existing allocation.
    Equivalent to [detach] + a fresh {!attach}, without constructing a
    new sanitizer — the model checker checks thousands of schedules per
    scenario with one sanitizer this way. [revoker] plays [attach]'s
    role for pid 0's partition. *)

val violations : t -> violation list
(** Violations in detection order (capped; see {!total_violations}). *)

val total_violations : t -> int
(** Including any beyond the storage cap. *)

val count : t -> string -> int
(** Number of violations of one rule. *)

val ok : t -> bool

val finish : t -> unit
(** Run the end-of-run checks (accounting balance, unterminated epoch).
    Call after {!Sim.Machine.run} returns. *)

val report : Format.formatter -> t -> unit
(** Human-readable summary: per-rule counts and first examples, with an
    explicit "…and N more" line whenever violations exceed what is shown
    or stored — truncation is always disclosed. *)

val all_rules : (string * string) list
(** Every stable rule identifier this sanitizer can report, with a
    one-line description — the vocabulary [ccr_check --list-rules]
    prints and [ccr_mc] assertions reference. *)
