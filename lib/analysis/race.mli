(** Vector-clock happens-before checker for quarantine hand-offs.

    Each core carries a vector clock, advanced by every traced event it
    initiates. Synchronization edges come from the machine's own
    coordination events:

    - a completed stop-the-world quiesce ([Stw_stopped]) makes the
      initiator inherit every core's history, and the release
      ([Stw_release]) publishes the initiator's history to every core —
      the paper's "thread_single" barrier (§4.4);
    - a TLB shootdown publishes the initiator's history to all cores
      (the IPI acknowledgement, §2.2.4);
    - the quarantine queue is a channel: [Quarantine_enq] joins the
      enqueuer's clock into the channel, [Quarantine_deq] joins the
      channel into the dequeuer (the revoker's condition-variable
      hand-off).

    A region's [Paint] is the racing access: the later [Unpaint] (bitmap
    clear) and [Reuse] (allocator release) must be ordered after it by
    those edges alone. A clear or reuse whose core's clock has not
    absorbed the paint is reported as a race — e.g. a thread resetting
    revocation state off to the side of the epoch protocol. A clean run
    of any strategy produces no reports: every hand-off flows through
    the quarantine channel or a stop-the-world.

    Multi-process runs partition the shadow state by the events' process
    id: paints are keyed per-process (fork gives two processes
    independent quarantine lives at the same virtual address) and each
    process's revoker hand-off is its own channel. Stop-the-world and
    shootdown joins stay global — scoped pauses synchronize fewer cores
    in reality, so the global join is conservative and can only miss
    races, never invent them. *)

type race = {
  c_rule : string;  (** ["unordered-clear"] or ["unordered-reuse"] *)
  c_addr : int;
  c_time : int;  (** when the unordered access happened *)
  c_core : int;  (** core of the unordered access *)
  c_pid : int;  (** owning process of the region's quarantine life *)
  c_paint_core : int;  (** core that painted the region *)
}

type t

val attach : Sim.Machine.t -> t
(** Subscribe to the machine's tracer (installing one if absent). *)

val detach : t -> unit
val races : t -> race list
val ok : t -> bool
val report : Format.formatter -> t -> unit

val all_rules : (string * string) list
(** Every stable rule identifier this checker can report, with a
    one-line description (see [ccr_check --list-rules]). *)
