module Capability = Cheri.Capability
module Machine = Sim.Machine
module Trace = Sim.Trace
module Epoch = Ccr.Epoch
module Revoker = Ccr.Revoker
module Revmap = Ccr.Revmap
module Pmap = Vm.Pmap
module Phys = Vm.Phys
module Pte = Vm.Pte

type violation = {
  v_rule : string;
  v_time : int;
  v_core : int;
  v_pid : int;
  v_detail : string;
}

(* Quarantine lifecycle of one freed region, mirrored from the event
   stream. [Cleared] regions await their [Reuse] event, which drops them
   from the table. *)
type state = Painted | Enqueued | Dequarantined | Cleared

let state_name = function
  | Painted -> "painted"
  | Enqueued -> "enqueued"
  | Dequarantined -> "dequarantined"
  | Cleared -> "cleared"

type region = {
  r_size : int;
  mutable r_painted_at : int;
      (* epoch counter when painted; clamped down on epoch abort *)
  mutable r_state : state;
}

(* One quota-charged allocation, mirrored from the ledger's event
   stream. [q_quarantined] flips when the region's [Paint] arrives; the
   entry leaves the table on [Quota_credit] — or on [Reuse], which is a
   conservation violation: memory left quarantine without its owner
   being refunded. *)
type qalloc = { q_size : int; mutable q_quarantined : bool }

let max_stored = 200

(* All shadow state is partitioned by process: each pid's revocation
   pipeline is an independent protocol instance with its own epoch
   counter, region table and byte accounts. Events carry the owning pid
   (0 for single-process runs, which therefore see exactly one
   partition). *)
type pstate = {
  pid : int;
  mutable revoker : Revoker.t option;
  regions : (int, region) Hashtbl.t;
  mutable counter : int; (* mirrored epoch counter *)
  mutable in_epoch : bool;
  mutable begin_arg : int;
  mutable in_stw : bool;
  (* per-epoch event counts, reset at [Epoch_begin] *)
  mutable ep_sweeps : int;
  mutable ep_shootdowns : int;
  mutable ep_hoard_scans : int;
  mutable ep_clg_toggles : int;
  (* independent byte accounts: event-derived vs. region-table-derived *)
  mutable painted_bytes : int;
  mutable unpainted_bytes : int;
  (* regions quarantined when the current epoch began, sorted by base *)
  mutable snapshot : (int * int) array;
  (* quota-ledger mirror: this pid as a tenant. The conservation
     identity charged − credited = live + quarantined is re-checked at
     every quota event. *)
  q_allocs : (int, qalloc) Hashtbl.t;
  mutable q_charged : int;
  mutable q_credited : int;
  mutable q_live : int;
  mutable q_quarantined : int;
}

type t = {
  mutable m : Machine.t;
  mutable tracer : Trace.t;
  mutable sub : int option;
  pstates : (int, pstate) Hashtbl.t;
  mutable stored : violation list; (* newest first, capped *)
  mutable total : int;
  counts : (string, int) Hashtbl.t;
}

let fresh_pstate pid =
  {
    pid;
    revoker = None;
    regions = Hashtbl.create 1024;
    counter = 0;
    in_epoch = false;
    begin_arg = 0;
    in_stw = false;
    ep_sweeps = 0;
    ep_shootdowns = 0;
    ep_hoard_scans = 0;
    ep_clg_toggles = 0;
    painted_bytes = 0;
    unpainted_bytes = 0;
    snapshot = [||];
    q_allocs = Hashtbl.create 64;
    q_charged = 0;
    q_credited = 0;
    q_live = 0;
    q_quarantined = 0;
  }

let pstate t pid =
  match Hashtbl.find_opt t.pstates pid with
  | Some ps -> ps
  | None ->
      let ps = fresh_pstate pid in
      Hashtbl.replace t.pstates pid ps;
      ps

let register_process t ~pid ?revoker () =
  let ps = pstate t pid in
  ps.revoker <- revoker

let strategy ps = Option.map Revoker.strategy ps.revoker

let violation t ~time ~core ~pid rule detail =
  t.total <- t.total + 1;
  Hashtbl.replace t.counts rule
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts rule));
  if t.total <= max_stored then
    t.stored <-
      { v_rule = rule; v_time = time; v_core = core; v_pid = pid;
        v_detail = detail }
      :: t.stored

(* ---- snapshot of quarantined regions, with binary search ---- *)

let take_snapshot ps =
  let acc = ref [] in
  Hashtbl.iter
    (fun addr r ->
      match r.r_state with
      | Painted | Enqueued -> acc := (addr, r.r_size) :: !acc
      | Dequarantined | Cleared -> ())
    ps.regions;
  let a = Array.of_list !acc in
  Array.sort (fun (x, _) (y, _) -> compare x y) a;
  ps.snapshot <- a

let in_snapshot ps a =
  let s = ps.snapshot in
  let n = Array.length s in
  if n = 0 then None
  else begin
    (* greatest base <= a *)
    let lo = ref 0 and hi = ref (n - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let base, _ = s.(mid) in
      if base <= a then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !best < 0 then None
    else
      let base, size = s.(!best) in
      if a < base + size then Some (base, size) else None
  end

(* The address space a pid's memory lives in: preferably its revoker's
   binding, else any live thread's, else (pid 0) the machine's initial
   space. *)
let aspace_of t ps =
  match ps.revoker with
  | Some rv -> Some (Revoker.aspace rv)
  | None -> (
      match Machine.aspace_of_pid t.m ps.pid with
      | Some a -> Some a
      | None -> if ps.pid = 0 then Some (Machine.aspace t.m) else None)

(* ---- end-of-epoch shadow sweep (host-side, zero simulated cost) ---- *)

let sweep_stale t ps ~time ~core =
  if Array.length ps.snapshot > 0 then begin
    let v = violation t ~time ~core ~pid:ps.pid in
    let mem = Machine.mem t.m in
    (match aspace_of t ps with
    | None -> ()
    | Some asp ->
        Pmap.iter (Vm.Aspace.pmap asp) ~f:(fun vpage pte ->
            let base = Phys.frame_addr pte.Pte.frame in
            Tagmem.Mem.iter_granules mem ~lo:base ~hi:(base + Phys.page_size)
              (fun pa tagged ->
                if tagged then
                  let c = Tagmem.Mem.read_cap mem pa in
                  match in_snapshot ps (Capability.base c) with
                  | Some (rbase, _) ->
                      let st =
                        match Hashtbl.find_opt ps.regions rbase with
                        | Some r -> state_name r.r_state
                        | None -> "gone"
                      in
                      let painted =
                        match ps.revoker with
                        | Some rv ->
                            if
                              Revmap.test_host (Revoker.revmap rv)
                                (Capability.base c)
                            then "painted"
                            else "unpainted"
                        | None -> "?"
                      in
                      v "stale-cap-memory"
                        (Printf.sprintf
                           "pa 0x%x (vpage 0x%x) holds cap 0x%x into \
                            quarantined 0x%x (%s, bitmap %s) after epoch %d"
                           pa vpage (Capability.base c) rbase st painted
                           ps.counter)
                  | None -> ())));
    List.iter
      (fun th ->
        if Machine.thread_pid th = ps.pid then
          Sim.Regfile.iteri (Machine.regs th) (fun i c ->
              if Capability.tag c then
                match in_snapshot ps (Capability.base c) with
                | Some (rbase, _) ->
                    v "stale-cap-regfile"
                      (Printf.sprintf
                         "%s r%d holds cap into quarantined 0x%x after epoch \
                          %d"
                         (Machine.thread_name th) i rbase ps.counter)
                | None -> ()))
      (Machine.user_threads t.m);
    match ps.revoker with
    | None -> ()
    | Some rv ->
        Kernel.Hoard.iter (Revoker.hoards rv) ~f:(fun h c ->
            if Capability.tag c then
              match in_snapshot ps (Capability.base c) with
              | Some (rbase, _) ->
                  v "stale-cap-hoard"
                    (Printf.sprintf
                       "hoard handle %d holds cap into quarantined 0x%x \
                        after epoch %d"
                       h rbase ps.counter)
              | None -> ())
  end

let table_bytes ps =
  Hashtbl.fold
    (fun _ r acc ->
      match r.r_state with
      | Painted | Enqueued | Dequarantined -> acc + r.r_size
      | Cleared -> acc)
    ps.regions 0

let check_accounting t ps ~time ~core =
  let v = violation t ~time ~core ~pid:ps.pid in
  let live = table_bytes ps in
  let net = ps.painted_bytes - ps.unpainted_bytes in
  if live <> net then
    v "quarantine-accounting"
      (Printf.sprintf
         "painted-unpainted = %d bytes but region table holds %d" net live);
  match ps.revoker with
  | None -> ()
  | Some rv ->
      let bitmap = Revmap.set_bits (Revoker.revmap rv) * 16 in
      if bitmap <> net then
        v "quarantine-accounting"
          (Printf.sprintf "revocation bitmap holds %d bytes, events say %d"
             bitmap net)

(* Per-tenant quota conservation: charged − credited must equal the
   bytes still held (live + quarantined) after every quota event. The
   identity can only drift through a protocol violation (double charge,
   credit for an unknown region, reuse without credit), each of which is
   also reported individually under the same rule. *)
let check_quota t ps ~time ~core =
  if ps.q_charged <> 0 || ps.q_credited <> 0 then begin
    let held = ps.q_live + ps.q_quarantined in
    if ps.q_charged - ps.q_credited <> held then
      violation t ~time ~core ~pid:ps.pid "quota-conservation"
        (Printf.sprintf
           "charged %d - credited %d = %d bytes but live %d + quarantined %d \
            = %d"
           ps.q_charged ps.q_credited
           (ps.q_charged - ps.q_credited)
           ps.q_live ps.q_quarantined held)
  end

(* Fork: the child's copy-on-write bitmap carries every bit the parent's
   did, and the kernel re-enqueues the parent's still-quarantined
   regions in the child's shim. Mirror that here: the parent's regions
   that are still in quarantine start a fresh [Painted] life in the
   child's partition. *)
let on_fork t parent_ps ~child_pid =
  let child = pstate t child_pid in
  Hashtbl.iter
    (fun addr (r : region) ->
      match r.r_state with
      | Painted | Enqueued | Dequarantined ->
          Hashtbl.replace child.regions addr
            { r_size = r.r_size; r_painted_at = child.counter;
              r_state = Painted };
          child.painted_bytes <- child.painted_bytes + r.r_size
      | Cleared -> ())
    parent_ps.regions

(* ---- per-event transition function ---- *)

let on_event t (e : Trace.event) =
  let time = e.Trace.time and core = e.Trace.core in
  let ps = pstate t e.Trace.pid in
  let v = violation t ~time ~core ~pid:ps.pid in
  match e.Trace.kind with
  | Trace.Stw_stopped -> ps.in_stw <- true
  | Trace.Stw_release -> ps.in_stw <- false
  | Trace.Epoch_begin ->
      let arg = e.Trace.arg in
      if ps.in_epoch then v "epoch-unbalanced" "Epoch_begin inside an epoch";
      if arg land 1 <> 0 then
        v "epoch-parity" (Printf.sprintf "epoch begins at odd counter %d" arg);
      if arg <> ps.counter then
        v "epoch-monotonic"
          (Printf.sprintf "epoch begins at %d, expected counter %d" arg
             ps.counter);
      ps.in_epoch <- true;
      ps.begin_arg <- arg;
      ps.counter <- arg + 1;
      ps.ep_sweeps <- 0;
      ps.ep_shootdowns <- 0;
      ps.ep_hoard_scans <- 0;
      ps.ep_clg_toggles <- 0;
      take_snapshot ps
  | Trace.Epoch_end ->
      let arg = e.Trace.arg in
      if not ps.in_epoch then v "epoch-unbalanced" "Epoch_end outside an epoch";
      if arg land 1 <> 0 then
        v "epoch-parity" (Printf.sprintf "epoch ends at odd counter %d" arg);
      if ps.in_epoch && arg <> ps.begin_arg + 2 then
        v "epoch-monotonic"
          (Printf.sprintf "epoch began at %d but ends at %d" ps.begin_arg arg);
      ps.counter <- arg;
      ps.in_epoch <- false;
      (match strategy ps with
      | Some Revoker.Cornucopia ->
          if ps.ep_sweeps > 0 && ps.ep_shootdowns = 0 then
            v "missing-shootdown"
              (Printf.sprintf
                 "Cornucopia epoch swept %d pages with no TLB shootdown"
                 ps.ep_sweeps)
      | _ -> ());
      (match ps.revoker with
      | Some rv when Revoker.strategy rv <> Revoker.Paint_sync ->
          if
            Kernel.Hoard.size (Revoker.hoards rv) > 0
            && ps.ep_hoard_scans = 0
          then
            v "missing-hoard-scan"
              (Printf.sprintf
                 "epoch ended with %d hoarded capabilities never scanned"
                 (Kernel.Hoard.size (Revoker.hoards rv)))
      | Some _ | None -> ());
      (match strategy ps with
      | Some Revoker.Paint_sync | None -> ()
      | Some _ -> sweep_stale t ps ~time ~core);
      check_accounting t ps ~time ~core;
      ps.snapshot <- [||]
  | Trace.Paint -> (
      let addr = e.Trace.arg and size = e.Trace.arg2 in
      (match Hashtbl.find_opt ps.q_allocs addr with
      | Some q when not q.q_quarantined ->
          q.q_quarantined <- true;
          ps.q_live <- ps.q_live - q.q_size;
          ps.q_quarantined <- ps.q_quarantined + q.q_size
      | Some _ | None -> ());
      match Hashtbl.find_opt ps.regions addr with
      | Some r when r.r_state <> Cleared ->
          v "double-paint"
            (Printf.sprintf "0x%x painted while already %s" addr
               (state_name r.r_state));
          ps.painted_bytes <- ps.painted_bytes + size
      | Some _ | None ->
          Hashtbl.replace ps.regions addr
            { r_size = size; r_painted_at = ps.counter; r_state = Painted };
          ps.painted_bytes <- ps.painted_bytes + size)
  | Trace.Unpaint -> (
      let addr = e.Trace.arg and size = e.Trace.arg2 in
      ps.unpainted_bytes <- ps.unpainted_bytes + size;
      match Hashtbl.find_opt ps.regions addr with
      | None ->
          v "unpaint-not-dequarantined"
            (Printf.sprintf "0x%x cleared but never painted" addr)
      | Some r ->
          if r.r_state <> Dequarantined then
            v "unpaint-not-dequarantined"
              (Printf.sprintf "0x%x cleared while %s" addr
                 (state_name r.r_state));
          r.r_state <- Cleared)
  | Trace.Quarantine_enq -> (
      let addr = e.Trace.arg in
      match Hashtbl.find_opt ps.regions addr with
      | Some ({ r_state = Painted; _ } as r) -> r.r_state <- Enqueued
      | Some r ->
          v "enqueue-unpainted"
            (Printf.sprintf "0x%x enqueued while %s" addr (state_name r.r_state))
      | None ->
          v "enqueue-unpainted"
            (Printf.sprintf "0x%x enqueued but never painted" addr))
  | Trace.Quarantine_deq -> (
      let addr = e.Trace.arg in
      match Hashtbl.find_opt ps.regions addr with
      | Some ({ r_state = Enqueued; _ } as r) ->
          if ps.counter < Epoch.clean_target r.r_painted_at then
            v "early-dequarantine"
              (Printf.sprintf
                 "0x%x painted at epoch %d left quarantine at %d (clean \
                  target %d)"
                 addr r.r_painted_at ps.counter
                 (Epoch.clean_target r.r_painted_at));
          r.r_state <- Dequarantined
      | Some r ->
          v "dequeue-not-enqueued"
            (Printf.sprintf "0x%x dequeued while %s" addr (state_name r.r_state))
      | None ->
          v "dequeue-not-enqueued"
            (Printf.sprintf "0x%x dequeued but never painted" addr))
  | Trace.Reuse -> (
      let addr = e.Trace.arg in
      (* A quota-tracked region leaving quarantine must have been
         credited first ([Quota_credit] precedes [Reuse] by contract).
         If it is still in the mirror, its owner was never refunded.
         Repair the mirror as if the credit had happened so a single
         skipped credit reports exactly once. *)
      (match Hashtbl.find_opt ps.q_allocs addr with
      | Some q ->
          v "quota-conservation"
            (Printf.sprintf
               "0x%x (%d bytes charged to pid %d) left quarantine without a \
                quota credit"
               addr q.q_size ps.pid);
          ps.q_credited <- ps.q_credited + q.q_size;
          if q.q_quarantined then
            ps.q_quarantined <- ps.q_quarantined - q.q_size
          else ps.q_live <- ps.q_live - q.q_size;
          Hashtbl.remove ps.q_allocs addr
      | None -> ());
      match Hashtbl.find_opt ps.regions addr with
      | None -> v "early-reuse" (Printf.sprintf "0x%x reused, never painted" addr)
      | Some r ->
          (match r.r_state with
          | Painted | Enqueued ->
              v "early-reuse"
                (Printf.sprintf "0x%x reused while still %s" addr
                   (state_name r.r_state))
          | Dequarantined | Cleared ->
              if ps.counter < Epoch.clean_target r.r_painted_at then
                v "early-reuse"
                  (Printf.sprintf
                     "0x%x painted at epoch %d reused at %d (clean target %d)"
                     addr r.r_painted_at ps.counter
                     (Epoch.clean_target r.r_painted_at)));
          Hashtbl.remove ps.regions addr)
  | Trace.Tlb_shootdown -> ps.ep_shootdowns <- ps.ep_shootdowns + 1
  | Trace.Hoard_scan -> ps.ep_hoard_scans <- ps.ep_hoard_scans + 1
  | Trace.Page_sweep -> ps.ep_sweeps <- ps.ep_sweeps + 1
  | Trace.Clg_toggle -> (
      ps.ep_clg_toggles <- ps.ep_clg_toggles + 1;
      if not ps.in_stw then
        v "clg-toggle-outside-stw"
          "capability-load generation flipped without the world stopped";
      if ps.ep_clg_toggles > 1 then
        v "clg-double-toggle"
          (Printf.sprintf "generation flipped %d times in one epoch"
             ps.ep_clg_toggles);
      (* Only cores running this process's address space adopt the new
         generation; they must all agree with the page map's. *)
      match aspace_of t ps with
      | None -> ()
      | Some asp ->
          let asid = Vm.Aspace.asid asp in
          let gen = Pmap.generation (Vm.Aspace.pmap asp) in
          for i = 0 to Machine.num_cores t.m - 1 do
            if Machine.core_asid t.m i = asid && Machine.core_clg t.m i <> gen
            then
              v "clg-core-disagreement"
                (Printf.sprintf
                   "core %d generation differs from pid %d's page map after \
                    toggle"
                   i ps.pid)
          done)
  | Trace.Proc_fork -> on_fork t ps ~child_pid:e.Trace.arg
  | Trace.Epoch_abort ->
      (* The epoch was retracted: the on-machine counter moved back to the
         pre-begin (even) value without the epoch's work completing. Roll
         the mirror back too and clamp any paint stamp recorded during the
         aborted epoch — those stamps are now "from the future" and would
         otherwise mark sound later deliveries as early. Clamping is the
         exact mirror of what the shim does to its batch stamps: regions
         painted before the retried epoch begins are covered by it just
         like anything painted at the restored counter. *)
      let arg = e.Trace.arg in
      if not ps.in_epoch then
        v "epoch-unbalanced" "Epoch_abort outside an epoch";
      if arg land 1 <> 0 then
        v "epoch-parity" (Printf.sprintf "epoch aborts to odd counter %d" arg);
      if ps.in_epoch && arg <> ps.begin_arg then
        v "epoch-monotonic"
          (Printf.sprintf "epoch began at %d but aborts to %d" ps.begin_arg arg);
      ps.counter <- arg;
      ps.in_epoch <- false;
      ps.snapshot <- [||];
      Hashtbl.iter
        (fun _ (r : region) ->
          if r.r_painted_at > arg then r.r_painted_at <- arg)
        ps.regions
  | Trace.Epoch_resume ->
      if not ps.in_epoch then
        v "epoch-unbalanced" "Epoch_resume outside an epoch"
  | Trace.Quota_charge ->
      let addr = e.Trace.arg and size = e.Trace.arg2 in
      (match Hashtbl.find_opt ps.q_allocs addr with
      | Some q ->
          v "quota-conservation"
            (Printf.sprintf
               "0x%x charged while already held (%d bytes, %s)" addr q.q_size
               (if q.q_quarantined then "quarantined" else "live"));
          ps.q_credited <- ps.q_credited + q.q_size;
          if q.q_quarantined then
            ps.q_quarantined <- ps.q_quarantined - q.q_size
          else ps.q_live <- ps.q_live - q.q_size
      | None -> ());
      Hashtbl.replace ps.q_allocs addr { q_size = size; q_quarantined = false };
      ps.q_charged <- ps.q_charged + size;
      ps.q_live <- ps.q_live + size;
      check_quota t ps ~time ~core
  | Trace.Quota_credit ->
      let addr = e.Trace.arg and size = e.Trace.arg2 in
      (match Hashtbl.find_opt ps.q_allocs addr with
      | None ->
          v "quota-conservation"
            (Printf.sprintf "0x%x credited %d bytes but was never charged"
               addr size)
      | Some q ->
          if q.q_size <> size then
            v "quota-conservation"
              (Printf.sprintf "0x%x credited %d bytes but was charged %d" addr
                 size q.q_size);
          ps.q_credited <- ps.q_credited + q.q_size;
          if q.q_quarantined then
            ps.q_quarantined <- ps.q_quarantined - q.q_size
          else ps.q_live <- ps.q_live - q.q_size;
          Hashtbl.remove ps.q_allocs addr);
      check_quota t ps ~time ~core
  | Trace.Free_all ->
      (* arg2 is the total charge handed to quarantine in one shot; it
         can never exceed what the tenant still holds live. *)
      if e.Trace.arg2 > ps.q_live then
        v "quota-conservation"
          (Printf.sprintf
             "free_all hands %d bytes to quarantine but only %d are live"
             e.Trace.arg2 ps.q_live);
      check_quota t ps ~time ~core
  | Trace.Proc_kill | Trace.Stw_abandon | Trace.Strategy_downshift
  | Trace.Quarantine_abandoned | Trace.Tag_corruption | Trace.Shootdown_retry
  | Trace.Chaos_inject | Trace.Stw_request | Trace.Clg_fault
  | Trace.Context_switch | Trace.Revoke_batch | Trace.Cow_fault
  | Trace.Proc_exec | Trace.Proc_exit | Trace.Sched_grant | Trace.Req_shed
  | Trace.Req_lost | Trace.Brownout_shift | Trace.Governor_defer
  | Trace.Governor_force | Trace.Governor_quantum | Trace.Slo_violation
  | Trace.Quota_deny | Trace.Custom _ ->
      ()

let attach ?revoker m =
  let tracer =
    match Machine.tracer m with
    | Some tr -> tr
    | None ->
        let tr = Trace.create () in
        Machine.attach_tracer m (Some tr);
        tr
  in
  let t =
    {
      m;
      tracer;
      sub = None;
      pstates = Hashtbl.create 8;
      stored = [];
      total = 0;
      counts = Hashtbl.create 16;
    }
  in
  register_process t ~pid:0 ?revoker ();
  t.sub <- Some (Trace.subscribe tracer (on_event t));
  t

let detach t =
  match t.sub with
  | None -> ()
  | Some id ->
      Trace.unsubscribe t.tracer id;
      t.sub <- None

(* Point an existing sanitizer at a fresh machine, dropping all recorded
   state but reusing the allocation (the hash tables shrink in place).
   The model checker re-runs thousands of schedules against one
   sanitizer this way instead of allocating one per schedule. *)
let rebind t ?revoker m =
  detach t;
  let tracer =
    match Machine.tracer m with
    | Some tr -> tr
    | None ->
        let tr = Trace.create () in
        Machine.attach_tracer m (Some tr);
        tr
  in
  t.m <- m;
  t.tracer <- tracer;
  Hashtbl.reset t.pstates;
  Hashtbl.reset t.counts;
  t.stored <- [];
  t.total <- 0;
  register_process t ~pid:0 ?revoker ();
  t.sub <- Some (Trace.subscribe tracer (on_event t))

let finish t =
  let time = Machine.global_time t.m in
  let pids =
    List.sort compare (Hashtbl.fold (fun pid _ acc -> pid :: acc) t.pstates [])
  in
  List.iter
    (fun pid ->
      let ps = pstate t pid in
      if ps.in_epoch then
        violation t ~time ~core:(-1) ~pid "epoch-unbalanced"
          "run finished inside an open epoch";
      check_accounting t ps ~time ~core:(-1);
      check_quota t ps ~time ~core:(-1))
    pids

let violations t = List.rev t.stored
let total_violations t = t.total
let count t rule = Option.value ~default:0 (Hashtbl.find_opt t.counts rule)
let ok t = t.total = 0

let max_reported = 10

let report fmt t =
  if ok t then Format.fprintf fmt "sanitizer: no violations@."
  else begin
    Format.fprintf fmt "sanitizer: %d violation(s)@." t.total;
    let rules =
      List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.counts [])
    in
    List.iter (fun (r, n) -> Format.fprintf fmt "  %-28s %6d@." r n) rules;
    let shown = ref 0 in
    List.iter
      (fun v ->
        if !shown < max_reported then begin
          incr shown;
          Format.fprintf fmt "  [%d @ core %d, pid %d] %s: %s@." v.v_time
            v.v_core v.v_pid v.v_rule v.v_detail
        end)
      (violations t);
    (* Never truncate silently: disclose everything beyond both the
       display limit and the storage cap ([t.total] counts violations the
       capped store dropped). *)
    if t.total > !shown then
      Format.fprintf fmt "  …and %d more violation(s) (%d stored)@."
        (t.total - !shown)
        (List.length t.stored)
  end

let all_rules =
  [
    ("epoch-unbalanced", "Epoch_begin/end/abort/resume nesting is broken");
    ("epoch-parity", "epoch counter odd at a begin/end/abort boundary");
    ("epoch-monotonic", "epoch counter skipped or moved backwards");
    ("missing-shootdown", "Cornucopia epoch swept pages with no TLB shootdown");
    ("missing-hoard-scan", "epoch ended with kernel hoards never scanned");
    ("double-paint", "region painted while already in quarantine");
    ("unpaint-not-dequarantined", "bitmap cleared for a region not dequarantined");
    ("enqueue-unpainted", "region enqueued without being painted first");
    ("dequeue-not-enqueued", "region dequeued that was never enqueued");
    ("early-dequarantine", "region left quarantine before its clean target");
    ("early-reuse", "freed memory reused before its clean target");
    ("clg-toggle-outside-stw", "load generation flipped without the world stopped");
    ("clg-double-toggle", "load generation flipped more than once per epoch");
    ("clg-core-disagreement", "a core's generation differs from the page map's");
    ("stale-cap-memory", "tagged cap into quarantined memory survived the epoch");
    ("stale-cap-regfile", "register holds a cap into quarantine after the epoch");
    ("stale-cap-hoard", "kernel hoard holds a cap into quarantine after the epoch");
    ("quarantine-accounting", "painted/unpainted/bitmap byte accounts disagree");
    ("quota-conservation",
     "per-tenant charged − credited drifted from live + quarantined");
  ]
