module Capability = Cheri.Capability
module Machine = Sim.Machine
module Trace = Sim.Trace
module Epoch = Ccr.Epoch
module Revoker = Ccr.Revoker
module Revmap = Ccr.Revmap
module Pmap = Vm.Pmap
module Phys = Vm.Phys
module Pte = Vm.Pte

type violation = {
  v_rule : string;
  v_time : int;
  v_core : int;
  v_detail : string;
}

(* Quarantine lifecycle of one freed region, mirrored from the event
   stream. [Cleared] regions await their [Reuse] event, which drops them
   from the table. *)
type state = Painted | Enqueued | Dequarantined | Cleared

let state_name = function
  | Painted -> "painted"
  | Enqueued -> "enqueued"
  | Dequarantined -> "dequarantined"
  | Cleared -> "cleared"

type region = {
  r_size : int;
  r_painted_at : int; (* epoch counter when painted *)
  mutable r_state : state;
}

let max_stored = 200

type t = {
  m : Machine.t;
  revoker : Revoker.t option;
  tracer : Trace.t;
  mutable sub : int option;
  regions : (int, region) Hashtbl.t;
  mutable counter : int; (* mirrored epoch counter *)
  mutable in_epoch : bool;
  mutable begin_arg : int;
  mutable in_stw : bool;
  (* per-epoch event counts, reset at [Epoch_begin] *)
  mutable ep_sweeps : int;
  mutable ep_shootdowns : int;
  mutable ep_hoard_scans : int;
  mutable ep_clg_toggles : int;
  (* independent byte accounts: event-derived vs. region-table-derived *)
  mutable painted_bytes : int;
  mutable unpainted_bytes : int;
  (* regions quarantined when the current epoch began, sorted by base *)
  mutable snapshot : (int * int) array;
  mutable stored : violation list; (* newest first, capped *)
  mutable total : int;
  counts : (string, int) Hashtbl.t;
}

let strategy t = Option.map Revoker.strategy t.revoker

let violation t ~time ~core rule detail =
  t.total <- t.total + 1;
  Hashtbl.replace t.counts rule
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts rule));
  if t.total <= max_stored then
    t.stored <-
      { v_rule = rule; v_time = time; v_core = core; v_detail = detail }
      :: t.stored

(* ---- snapshot of quarantined regions, with binary search ---- *)

let take_snapshot t =
  let acc = ref [] in
  Hashtbl.iter
    (fun addr r ->
      match r.r_state with
      | Painted | Enqueued -> acc := (addr, r.r_size) :: !acc
      | Dequarantined | Cleared -> ())
    t.regions;
  let a = Array.of_list !acc in
  Array.sort (fun (x, _) (y, _) -> compare x y) a;
  t.snapshot <- a

let in_snapshot t a =
  let s = t.snapshot in
  let n = Array.length s in
  if n = 0 then None
  else begin
    (* greatest base <= a *)
    let lo = ref 0 and hi = ref (n - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let base, _ = s.(mid) in
      if base <= a then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !best < 0 then None
    else
      let base, size = s.(!best) in
      if a < base + size then Some (base, size) else None
  end

(* ---- end-of-epoch shadow sweep (host-side, zero simulated cost) ---- *)

let sweep_stale t ~time ~core =
  if Array.length t.snapshot > 0 then begin
    let mem = Machine.mem t.m in
    let pmap = Vm.Aspace.pmap (Machine.aspace t.m) in
    Pmap.iter pmap ~f:(fun vpage pte ->
        let base = Phys.frame_addr pte.Pte.frame in
        Tagmem.Mem.iter_granules mem ~lo:base ~hi:(base + Phys.page_size)
          (fun pa tagged ->
            if tagged then
              let c = Tagmem.Mem.read_cap mem pa in
              match in_snapshot t (Capability.base c) with
              | Some (rbase, _) ->
                  let st =
                    match Hashtbl.find_opt t.regions rbase with
                    | Some r -> state_name r.r_state
                    | None -> "gone"
                  in
                  let painted =
                    match t.revoker with
                    | Some rv ->
                        if
                          Revmap.test_host (Revoker.revmap rv)
                            (Capability.base c)
                        then "painted"
                        else "unpainted"
                    | None -> "?"
                  in
                  violation t ~time ~core "stale-cap-memory"
                    (Printf.sprintf
                       "pa 0x%x (vpage 0x%x) holds cap 0x%x into quarantined \
                        0x%x (%s, bitmap %s) after epoch %d"
                       pa vpage (Capability.base c) rbase st painted t.counter)
              | None -> ()));
    List.iter
      (fun th ->
        Sim.Regfile.iteri (Machine.regs th) (fun i c ->
            if Capability.tag c then
              match in_snapshot t (Capability.base c) with
              | Some (rbase, _) ->
                  violation t ~time ~core "stale-cap-regfile"
                    (Printf.sprintf
                       "%s r%d holds cap into quarantined 0x%x after epoch %d"
                       (Machine.thread_name th) i rbase t.counter)
              | None -> ()))
      (Machine.user_threads t.m);
    match t.revoker with
    | None -> ()
    | Some rv ->
        Kernel.Hoard.iter (Revoker.hoards rv) ~f:(fun h c ->
            if Capability.tag c then
              match in_snapshot t (Capability.base c) with
              | Some (rbase, _) ->
                  violation t ~time ~core "stale-cap-hoard"
                    (Printf.sprintf
                       "hoard handle %d holds cap into quarantined 0x%x \
                        after epoch %d"
                       h rbase t.counter)
              | None -> ())
  end

let table_bytes t =
  Hashtbl.fold
    (fun _ r acc ->
      match r.r_state with
      | Painted | Enqueued | Dequarantined -> acc + r.r_size
      | Cleared -> acc)
    t.regions 0

let check_accounting t ~time ~core =
  let live = table_bytes t in
  let net = t.painted_bytes - t.unpainted_bytes in
  if live <> net then
    violation t ~time ~core "quarantine-accounting"
      (Printf.sprintf
         "painted-unpainted = %d bytes but region table holds %d" net live);
  match t.revoker with
  | None -> ()
  | Some rv ->
      let bitmap = Revmap.set_bits (Revoker.revmap rv) * 16 in
      if bitmap <> net then
        violation t ~time ~core "quarantine-accounting"
          (Printf.sprintf "revocation bitmap holds %d bytes, events say %d"
             bitmap net)

(* ---- per-event transition function ---- *)

let on_event t (e : Trace.event) =
  let time = e.Trace.time and core = e.Trace.core in
  let v = violation t ~time ~core in
  match e.Trace.kind with
  | Trace.Stw_stopped -> t.in_stw <- true
  | Trace.Stw_release -> t.in_stw <- false
  | Trace.Epoch_begin ->
      let arg = e.Trace.arg in
      if t.in_epoch then v "epoch-unbalanced" "Epoch_begin inside an epoch";
      if arg land 1 <> 0 then
        v "epoch-parity" (Printf.sprintf "epoch begins at odd counter %d" arg);
      if arg <> t.counter then
        v "epoch-monotonic"
          (Printf.sprintf "epoch begins at %d, expected counter %d" arg
             t.counter);
      t.in_epoch <- true;
      t.begin_arg <- arg;
      t.counter <- arg + 1;
      t.ep_sweeps <- 0;
      t.ep_shootdowns <- 0;
      t.ep_hoard_scans <- 0;
      t.ep_clg_toggles <- 0;
      take_snapshot t
  | Trace.Epoch_end ->
      let arg = e.Trace.arg in
      if not t.in_epoch then v "epoch-unbalanced" "Epoch_end outside an epoch";
      if arg land 1 <> 0 then
        v "epoch-parity" (Printf.sprintf "epoch ends at odd counter %d" arg);
      if t.in_epoch && arg <> t.begin_arg + 2 then
        v "epoch-monotonic"
          (Printf.sprintf "epoch began at %d but ends at %d" t.begin_arg arg);
      t.counter <- arg;
      t.in_epoch <- false;
      (match strategy t with
      | Some Revoker.Cornucopia ->
          if t.ep_sweeps > 0 && t.ep_shootdowns = 0 then
            v "missing-shootdown"
              (Printf.sprintf
                 "Cornucopia epoch swept %d pages with no TLB shootdown"
                 t.ep_sweeps)
      | _ -> ());
      (match t.revoker with
      | Some rv when Revoker.strategy rv <> Revoker.Paint_sync ->
          if
            Kernel.Hoard.size (Revoker.hoards rv) > 0
            && t.ep_hoard_scans = 0
          then
            v "missing-hoard-scan"
              (Printf.sprintf
                 "epoch ended with %d hoarded capabilities never scanned"
                 (Kernel.Hoard.size (Revoker.hoards rv)))
      | Some _ | None -> ());
      (match strategy t with
      | Some Revoker.Paint_sync | None -> ()
      | Some _ -> sweep_stale t ~time ~core);
      check_accounting t ~time ~core;
      t.snapshot <- [||]
  | Trace.Paint -> (
      let addr = e.Trace.arg and size = e.Trace.arg2 in
      match Hashtbl.find_opt t.regions addr with
      | Some r when r.r_state <> Cleared ->
          v "double-paint"
            (Printf.sprintf "0x%x painted while already %s" addr
               (state_name r.r_state));
          t.painted_bytes <- t.painted_bytes + size
      | Some _ | None ->
          Hashtbl.replace t.regions addr
            { r_size = size; r_painted_at = t.counter; r_state = Painted };
          t.painted_bytes <- t.painted_bytes + size)
  | Trace.Unpaint -> (
      let addr = e.Trace.arg and size = e.Trace.arg2 in
      t.unpainted_bytes <- t.unpainted_bytes + size;
      match Hashtbl.find_opt t.regions addr with
      | None ->
          v "unpaint-not-dequarantined"
            (Printf.sprintf "0x%x cleared but never painted" addr)
      | Some r ->
          if r.r_state <> Dequarantined then
            v "unpaint-not-dequarantined"
              (Printf.sprintf "0x%x cleared while %s" addr
                 (state_name r.r_state));
          r.r_state <- Cleared)
  | Trace.Quarantine_enq -> (
      let addr = e.Trace.arg in
      match Hashtbl.find_opt t.regions addr with
      | Some ({ r_state = Painted; _ } as r) -> r.r_state <- Enqueued
      | Some r ->
          v "enqueue-unpainted"
            (Printf.sprintf "0x%x enqueued while %s" addr (state_name r.r_state))
      | None ->
          v "enqueue-unpainted"
            (Printf.sprintf "0x%x enqueued but never painted" addr))
  | Trace.Quarantine_deq -> (
      let addr = e.Trace.arg in
      match Hashtbl.find_opt t.regions addr with
      | Some ({ r_state = Enqueued; _ } as r) ->
          if t.counter < Epoch.clean_target r.r_painted_at then
            v "early-dequarantine"
              (Printf.sprintf
                 "0x%x painted at epoch %d left quarantine at %d (clean \
                  target %d)"
                 addr r.r_painted_at t.counter
                 (Epoch.clean_target r.r_painted_at));
          r.r_state <- Dequarantined
      | Some r ->
          v "dequeue-not-enqueued"
            (Printf.sprintf "0x%x dequeued while %s" addr (state_name r.r_state))
      | None ->
          v "dequeue-not-enqueued"
            (Printf.sprintf "0x%x dequeued but never painted" addr))
  | Trace.Reuse -> (
      let addr = e.Trace.arg in
      match Hashtbl.find_opt t.regions addr with
      | None -> v "early-reuse" (Printf.sprintf "0x%x reused, never painted" addr)
      | Some r ->
          (match r.r_state with
          | Painted | Enqueued ->
              v "early-reuse"
                (Printf.sprintf "0x%x reused while still %s" addr
                   (state_name r.r_state))
          | Dequarantined | Cleared ->
              if t.counter < Epoch.clean_target r.r_painted_at then
                v "early-reuse"
                  (Printf.sprintf
                     "0x%x painted at epoch %d reused at %d (clean target %d)"
                     addr r.r_painted_at t.counter
                     (Epoch.clean_target r.r_painted_at)));
          Hashtbl.remove t.regions addr)
  | Trace.Tlb_shootdown -> t.ep_shootdowns <- t.ep_shootdowns + 1
  | Trace.Hoard_scan -> t.ep_hoard_scans <- t.ep_hoard_scans + 1
  | Trace.Page_sweep -> t.ep_sweeps <- t.ep_sweeps + 1
  | Trace.Clg_toggle ->
      t.ep_clg_toggles <- t.ep_clg_toggles + 1;
      if not t.in_stw then
        v "clg-toggle-outside-stw"
          "capability-load generation flipped without the world stopped";
      if t.ep_clg_toggles > 1 then
        v "clg-double-toggle"
          (Printf.sprintf "generation flipped %d times in one epoch"
             t.ep_clg_toggles);
      let gen0 = Machine.core_clg t.m 0 in
      for i = 1 to Machine.num_cores t.m - 1 do
        if Machine.core_clg t.m i <> gen0 then
          v "clg-core-disagreement"
            (Printf.sprintf "core %d generation differs from core 0 after \
                             toggle" i)
      done
  | Trace.Stw_request | Trace.Clg_fault | Trace.Context_switch
  | Trace.Revoke_batch | Trace.Custom _ ->
      ()

let attach ?revoker m =
  let tracer =
    match Machine.tracer m with
    | Some tr -> tr
    | None ->
        let tr = Trace.create () in
        Machine.attach_tracer m (Some tr);
        tr
  in
  let t =
    {
      m;
      revoker;
      tracer;
      sub = None;
      regions = Hashtbl.create 1024;
      counter = 0;
      in_epoch = false;
      begin_arg = 0;
      in_stw = false;
      ep_sweeps = 0;
      ep_shootdowns = 0;
      ep_hoard_scans = 0;
      ep_clg_toggles = 0;
      painted_bytes = 0;
      unpainted_bytes = 0;
      snapshot = [||];
      stored = [];
      total = 0;
      counts = Hashtbl.create 16;
    }
  in
  t.sub <- Some (Trace.subscribe tracer (on_event t));
  t

let detach t =
  match t.sub with
  | None -> ()
  | Some id ->
      Trace.unsubscribe t.tracer id;
      t.sub <- None

let finish t =
  let time = Machine.global_time t.m in
  if t.in_epoch then
    violation t ~time ~core:(-1) "epoch-unbalanced"
      "run finished inside an open epoch";
  check_accounting t ~time ~core:(-1)

let violations t = List.rev t.stored
let total_violations t = t.total
let count t rule = Option.value ~default:0 (Hashtbl.find_opt t.counts rule)
let ok t = t.total = 0

let report fmt t =
  if ok t then Format.fprintf fmt "sanitizer: no violations@."
  else begin
    Format.fprintf fmt "sanitizer: %d violation(s)@." t.total;
    let rules =
      List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.counts [])
    in
    List.iter (fun (r, n) -> Format.fprintf fmt "  %-28s %6d@." r n) rules;
    let shown = ref 0 in
    List.iter
      (fun v ->
        if !shown < 10 then begin
          incr shown;
          Format.fprintf fmt "  [%d @ core %d] %s: %s@." v.v_time v.v_core
            v.v_rule v.v_detail
        end)
      (violations t)
  end
