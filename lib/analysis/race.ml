module Machine = Sim.Machine
module Trace = Sim.Trace

type race = {
  c_rule : string;
  c_addr : int;
  c_time : int;
  c_core : int;
  c_pid : int;
  c_paint_core : int;
}

type access = { a_vc : int array; a_core : int }

type t = {
  tracer : Trace.t;
  mutable sub : int option;
  ncores : int;
  vc : int array array; (* per-core vector clocks *)
  chans : (int, int array) Hashtbl.t;
      (* per-process quarantine queues, modelled as channels: each
         process's batches flow through its own revoker *)
  paints : (int * int, access) Hashtbl.t;
      (* (pid, region base) -> painting access; regions are per-process
         since fork gives two processes independent quarantine lives at
         the same virtual address *)
  mutable found : race list; (* newest first *)
}

let chan t pid =
  match Hashtbl.find_opt t.chans pid with
  | Some c -> c
  | None ->
      let c = Array.make t.ncores 0 in
      Hashtbl.replace t.chans pid c;
      c

let join dst src =
  for k = 0 to Array.length dst - 1 do
    if src.(k) > dst.(k) then dst.(k) <- src.(k)
  done

let leq a b =
  let ok = ref true in
  for k = 0 to Array.length a - 1 do
    if a.(k) > b.(k) then ok := false
  done;
  !ok

let check t (e : Trace.event) rule =
  let addr = e.Trace.arg and core = e.Trace.core in
  match Hashtbl.find_opt t.paints (e.Trace.pid, addr) with
  | None -> ()
  | Some a ->
      if not (leq a.a_vc t.vc.(core)) then
        t.found <-
          {
            c_rule = rule;
            c_addr = addr;
            c_time = e.Trace.time;
            c_core = core;
            c_pid = e.Trace.pid;
            c_paint_core = a.a_core;
          }
          :: t.found

let on_event t (e : Trace.event) =
  let core = e.Trace.core in
  if core >= 0 && core < Array.length t.vc then begin
    let me = t.vc.(core) in
    me.(core) <- me.(core) + 1;
    match e.Trace.kind with
    | Trace.Stw_stopped ->
        (* every user thread has parked: the initiator has observed them *)
        Array.iter (fun other -> join me other) t.vc
    | Trace.Stw_release ->
        (* the world resumes having observed whatever the initiator did *)
        Array.iter (fun other -> join other me) t.vc
    | Trace.Tlb_shootdown ->
        (* the IPI is acknowledged by every core *)
        Array.iter (fun other -> join other me) t.vc
    | Trace.Proc_kill ->
        (* the victim's threads are torn down at their next scheduling
           point before the killer proceeds: the killer has observed
           everything they published (it re-enqueues their quarantine) *)
        Array.iter (fun other -> join me other) t.vc
    | Trace.Quarantine_enq -> join (chan t e.Trace.pid) me
    | Trace.Quarantine_deq -> join me (chan t e.Trace.pid)
    | Trace.Paint ->
        Hashtbl.replace t.paints (e.Trace.pid, e.Trace.arg)
          { a_vc = Array.copy me; a_core = core }
    | Trace.Unpaint -> check t e "unordered-clear"
    | Trace.Reuse ->
        check t e "unordered-reuse";
        Hashtbl.remove t.paints (e.Trace.pid, e.Trace.arg)
    | _ -> ()
  end

let attach m =
  let tracer =
    match Machine.tracer m with
    | Some tr -> tr
    | None ->
        let tr = Trace.create () in
        Machine.attach_tracer m (Some tr);
        tr
  in
  let n = Machine.num_cores m in
  let t =
    {
      tracer;
      sub = None;
      ncores = n;
      vc = Array.init n (fun _ -> Array.make n 0);
      chans = Hashtbl.create 8;
      paints = Hashtbl.create 1024;
      found = [];
    }
  in
  t.sub <- Some (Trace.subscribe tracer (on_event t));
  t

let detach t =
  match t.sub with
  | None -> ()
  | Some id ->
      Trace.unsubscribe t.tracer id;
      t.sub <- None

let races t = List.rev t.found
let ok t = t.found = []

let report fmt t =
  if ok t then Format.fprintf fmt "race detector: no races@."
  else begin
    Format.fprintf fmt "race detector: %d race(s)@." (List.length t.found);
    let shown = ref 0 in
    List.iter
      (fun r ->
        if !shown < 10 then begin
          incr shown;
          Format.fprintf fmt
            "  [%d] %s of 0x%x on core %d (pid %d), painted on core %d@."
            r.c_time r.c_rule r.c_addr r.c_core r.c_pid r.c_paint_core
        end)
      (races t)
  end

let all_rules =
  [
    ( "unordered-clear",
      "bitmap clear not happens-after the region's paint" );
    ( "unordered-reuse",
      "allocator release not happens-after the region's paint" );
  ]
