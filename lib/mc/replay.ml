type result = { passed : bool; output : string }

let run (sched : Schedule.t) =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  match Scenario.find sched.Schedule.scenario with
  | None ->
      Format.fprintf fmt "replay: unknown scenario %S@." sched.Schedule.scenario;
      Format.pp_print_flush fmt ();
      { passed = false; output = Buffer.contents buf }
  | Some sc ->
      Format.fprintf fmt "replaying %a" Schedule.pp sched;
      let r =
        Explorer.run_one ~scenario:sc ~strategy:sched.Schedule.strategy
          ?fault:sched.Schedule.fault ~prefix:sched.Schedule.choices ()
      in
      Format.fprintf fmt "-- %d choice point(s) traversed@." r.Explorer.r_points;
      Format.fprintf fmt "-- trace tail:@.%s" r.Explorer.r_trace;
      (match r.Explorer.r_violation with
      | Some (rules, detail) ->
          Format.fprintf fmt "-- violation: %s@." detail;
          Format.fprintf fmt "-- rules observed: %s@."
            (String.concat ", " rules);
          Format.fprintf fmt "%s" r.Explorer.r_report
      | None -> Format.fprintf fmt "-- clean: no checker reports@.");
      let passed =
        match (sched.Schedule.expect, r.Explorer.r_violation) with
        | Some rule, Some (rules, _) -> List.mem rule rules
        | Some _, None -> false
        | None, Some _ -> false
        | None, None -> true
      in
      Format.fprintf fmt "replay: %s@."
        (if passed then "PASS"
         else
           match sched.Schedule.expect with
           | Some rule -> Printf.sprintf "FAIL (expected rule %S)" rule
           | None -> "FAIL (expected a clean run)");
      Format.pp_print_flush fmt ();
      { passed; output = Buffer.contents buf }

let run_file path =
  match Schedule.load path with
  | Error msg ->
      { passed = false; output = Printf.sprintf "replay: %s: %s\n" path msg }
  | Ok sched -> run sched
