(** Re-execute a saved schedule under the full checker set.

    [ccr_mc --replay FILE] lands here: rebuild the schedule's scenario,
    force its recorded choices, and report what the checkers saw — the
    event-trace tail, every sanitizer/race violation, the end-state
    assertion results. The verdict depends on the schedule's [expect]
    line: with one, the replay {e passes} iff the expected rule is
    observed (a mutation reproduction artifact); without one, it passes
    iff the run is completely clean (a determinism witness). *)

type result = {
  passed : bool;
  output : string;  (** full human-readable report *)
}

val run : Schedule.t -> result

val run_file : string -> result
(** {!Schedule.load} then {!run}; load errors become a failed result. *)
