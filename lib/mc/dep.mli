(** Dependence relation over schedule-segment footprints.

    The explorer partitions each execution into {e segments}: the events
    emitted between two consecutive scheduling (or chaos-branch)
    decisions. Two segments {e commute} — swapping their order cannot
    change any protocol-visible state — when their footprints are
    disjoint under this relation; DPOR only backtracks where they do
    not.

    Footprint items, derived from {!Sim.Trace} events and capability
    stores:

    - {e region} items for the quarantine lifecycle events ([Paint],
      [Unpaint], [Quarantine_enq], [Quarantine_deq], [Reuse]): two
      segments conflict iff their regions overlap;
    - {e capability-store} items (one 16-byte granule per tagged store,
      from {!Sim.Machine.set_cap_store_hook}): conflict on the same
      granule or with any overlapping region;
    - {e global} items for every event that touches machine-wide
      protocol state — epoch transitions, stop-the-world phases, CLG
      toggles and faults, TLB shootdowns, hoard scans, page sweeps
      ([Page_sweep]'s argument is a physical frame, not comparable with
      virtual region bases, so the whole event is global), process
      lifecycle and chaos injections. A global item conflicts with any
      non-empty footprint.

    Scheduler bookkeeping ([Context_switch]) and observability-only
    events (governor, serving, [Custom]) contribute nothing: they carry
    no protocol state.

    The relation is an over-approximation with respect to the checked
    properties (the sanitizer's per-region lifecycle rules and the
    end-state assertions): segments judged independent may interleave
    their effects on incidental state — e.g. the order of two disjoint
    regions inside one quarantine batch — but no checked predicate can
    distinguish those orders. See DESIGN.md, "Model checking". *)

type footprint

val empty : footprint
val is_empty : footprint -> bool

val add_event : footprint -> Sim.Trace.event -> footprint
(** Fold a traced event into the footprint. *)

val add_cap_store : footprint -> vaddr:int -> footprint
(** Fold a tagged capability store (granule-aligned) into the footprint. *)

val dependent : footprint -> footprint -> bool
(** Symmetric. Empty footprints are independent of everything. *)

val pp : Format.formatter -> footprint -> unit
