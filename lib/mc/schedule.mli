(** Replayable schedules: the choice sequence of one explored execution.

    A schedule is the list of decisions the explorer made at each choice
    point — which eligible thread ran when several could
    ({!choice.Sched}, by {!Sim.Machine.thread_id}), and whether a
    branchable chaos fault fired at a consultation point
    ({!choice.Branch}). Replaying the same choices over the same
    scenario/strategy/fault reproduces the execution exactly: everything
    between choice points is deterministic.

    Schedules serialize to a small line-oriented text format so CI can
    upload a violation's minimal reproduction as an artifact and
    [ccr_mc --replay] can re-execute it:

    {v
# ccr_mc schedule v1
scenario free-during-sweep
strategy reloaded
fault early-dequarantine
expect early-dequarantine
sched 2
branch sweep-crash 1
    v}

    [fault] and [expect] lines are optional; [sched]/[branch] lines are
    the choices in order. An empty choice list is a valid schedule (the
    machine's default interleaving already reproduces the finding). *)

type choice =
  | Sched of int  (** run the eligible thread with this {!Sim.Machine.thread_id} *)
  | Branch of string * bool
      (** chaos consultation ({!Chaos.kind_name}): inject or not *)

val pp_choice : Format.formatter -> choice -> unit

type t = {
  scenario : string;
  strategy : Ccr.Revoker.strategy;
  fault : Ccr.Revoker.fault option;
  expect : string option;  (** rule the replay must observe to succeed *)
  choices : choice list;
}

val pp : Format.formatter -> t -> unit
(** The file format, exactly. *)

val save : string -> t -> unit

val load : string -> (t, string) result
(** Parse a file written by {!save} (or by hand). *)
