module Machine = Sim.Machine
module Trace = Sim.Trace
module Cap = Cheri.Capability
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs
module Epoch = Ccr.Epoch
module Revmap = Ccr.Revmap
module Sanitizer = Analysis.Sanitizer

type handles = {
  machine : Machine.t;
  tracer : Trace.t;
  end_checks : unit -> string list;
}

type t = {
  s_name : string;
  s_doc : string;
  s_branch : bool;
  s_build :
    strategy:Revoker.strategy ->
    fault:Revoker.fault option ->
    sanitizer:(?revoker:Revoker.t -> Machine.t -> Sanitizer.t) ->
    decide:(Chaos.kind -> bool) ->
    handles;
}

let name t = t.s_name
let doc t = t.s_doc
let branchable t = t.s_branch

(* Two cores — revoker on 0, applications on 1 — and a tiny heap: small
   enough that the interesting interleavings number in the hundreds, not
   the billions. *)
let cfg =
  {
    Machine.default_config with
    cores = 2;
    heap_bytes = 1 lsl 20;
    mem_bytes = 8 lsl 20;
    seed = 7;
  }

let std_end_checks ~revokers ~mrss () =
  let msgs = ref [] in
  let add m = msgs := m :: !msgs in
  List.iter
    (fun rv ->
      let e = Epoch.counter (Revoker.epoch rv) in
      if e land 1 <> 0 then
        add (Printf.sprintf "epoch counter odd at end: %d" e);
      let bits = Revmap.set_bits (Revoker.revmap rv) in
      if bits <> 0 then
        add (Printf.sprintf "revocation bitmap still holds %d granule(s)" bits))
    revokers;
  List.iter
    (fun mrs ->
      let q = Mrs.quarantine_bytes mrs in
      if q <> 0 then add (Printf.sprintf "quarantine not drained: %d byte(s)" q);
      let ab = Mrs.abandoned_bytes mrs in
      if ab <> 0 then
        add (Printf.sprintf "%d quarantined byte(s) abandoned at finish" ab))
    mrss;
  List.rev !msgs

(* The ccr_check mutation rig's alias scatter: the freed victim stays
   reachable through a table slot, a register and a kernel hoard, so a
   protocol mutation is observable on every schedule. *)
let alias_victim mrs hoards ctx =
  let regs = Machine.regs (Machine.self ctx) in
  let table = Mrs.malloc mrs ctx 4096 in
  Sim.Regfile.set regs 0 table;
  let slot i = Cap.set_addr table (Cap.base table + (i * 16)) in
  let victim = Mrs.malloc mrs ctx 128 in
  Machine.store_u64 ctx victim 0x5ec2e7L;
  Machine.store_cap ctx (slot 0) victim;
  Sim.Regfile.set regs 5 victim;
  ignore (Kernel.Hoard.register hoards ctx victim);
  victim

(* Direct machine + revoker + shim world shared by the three
   single-process scenarios. *)
let single_process ~strategy ~fault ?recovery () =
  let m = Machine.create cfg in
  let tr = Trace.create ~capacity:65536 () in
  Machine.attach_tracer m (Some tr);
  let alloc = Alloc.Backend.snmalloc (Alloc.Allocator.create m) in
  let hoards = Kernel.Hoard.create () in
  let rv = Revoker.create m ~strategy ~core:0 ?recovery ~hoards () in
  let mrs = Mrs.create m ~alloc ~revoker:rv () in
  Revoker.inject_fault rv fault;
  (m, tr, rv, mrs, hoards)

let build_free_during_sweep ~strategy ~fault
    ~(sanitizer : ?revoker:Revoker.t -> Machine.t -> Sanitizer.t) ~decide:_ =
  let m, tr, rv, mrs, hoards = single_process ~strategy ~fault () in
  let san = sanitizer ~revoker:rv m in
  ignore (san : Sanitizer.t);
  let app2_done = ref false in
  let cv = Machine.condvar () in
  ignore
    (Machine.spawn m ~name:"app1" ~core:1 (fun ctx ->
         let victim = alias_victim mrs hoards ctx in
         Mrs.free mrs ctx victim;
         Mrs.flush mrs ctx;
         Mrs.wait_drained mrs ctx;
         while not !app2_done do
           Machine.wait ctx cv
         done;
         Mrs.finish mrs ctx));
  ignore
    (Machine.spawn m ~name:"app2" ~core:1 (fun ctx ->
         let c = Mrs.malloc mrs ctx 256 in
         Machine.store_u64 ctx c 1L;
         Mrs.free mrs ctx c;
         Mrs.flush mrs ctx;
         Mrs.wait_drained mrs ctx;
         app2_done := true;
         Machine.broadcast ctx cv));
  {
    machine = m;
    tracer = tr;
    end_checks = std_end_checks ~revokers:[ rv ] ~mrss:[ mrs ];
  }

let build_bulk_free ~strategy ~fault
    ~(sanitizer : ?revoker:Revoker.t -> Machine.t -> Sanitizer.t) ~decide:_ =
  let m, tr, rv, mrs, hoards = single_process ~strategy ~fault () in
  let san = sanitizer ~revoker:rv m in
  ignore (san : Sanitizer.t);
  let app2_done = ref false in
  let cv = Machine.condvar () in
  ignore
    (Machine.spawn m ~name:"app1" ~core:1 (fun ctx ->
         let victim = alias_victim mrs hoards ctx in
         let burst =
           List.map (fun sz -> Mrs.malloc mrs ctx sz) [ 256; 192; 320 ]
         in
         List.iter (fun c -> Machine.store_u64 ctx c 3L) burst;
         (* one batch, several regions: the victim plus the burst *)
         Mrs.free mrs ctx victim;
         List.iter (fun c -> Mrs.free mrs ctx c) burst;
         Mrs.flush mrs ctx;
         Mrs.wait_drained mrs ctx;
         while not !app2_done do
           Machine.wait ctx cv
         done;
         Mrs.finish mrs ctx));
  ignore
    (Machine.spawn m ~name:"app2" ~core:1 (fun ctx ->
         let a = Mrs.malloc mrs ctx 256 in
         let b = Mrs.malloc mrs ctx 128 in
         (* cross-linked: each block holds a capability to the other *)
         Machine.store_cap ctx (Cap.set_addr a (Cap.base a)) b;
         Machine.store_cap ctx (Cap.set_addr b (Cap.base b)) a;
         Mrs.free mrs ctx b;
         Mrs.free mrs ctx a;
         Mrs.flush mrs ctx;
         Mrs.wait_drained mrs ctx;
         app2_done := true;
         Machine.broadcast ctx cv));
  {
    machine = m;
    tracer = tr;
    end_checks = std_end_checks ~revokers:[ rv ] ~mrss:[ mrs ];
  }

(* Tightened recovery budget: one sweep-crash resume, one quiesce retry,
   two epoch aborts before downshifting — every recovery path is a few
   branch decisions away instead of many. *)
let crash_recovery =
  {
    Revoker.default_recovery with
    watchdog_timeout = 150_000;
    max_quiesce_retries = 1;
    backoff_base = 2_000;
    max_crash_retries = 1;
    max_epoch_aborts = 2;
  }

let build_crash_mid_sweep ~strategy ~fault
    ~(sanitizer : ?revoker:Revoker.t -> Machine.t -> Sanitizer.t) ~decide =
  let m, tr, rv, mrs, hoards =
    single_process ~strategy ~fault ~recovery:crash_recovery ()
  in
  let san = sanitizer ~revoker:rv m in
  ignore (san : Sanitizer.t);
  ignore
    (Chaos.install_branch m ~revoker:rv ~budget:2 ~stuck_drain:500_000
       ~kinds:[ Chaos.Sweep_crash; Chaos.Stuck_quiesce ]
       ~decide ());
  ignore
    (Machine.spawn m ~name:"app" ~core:1 (fun ctx ->
         let victim = alias_victim mrs hoards ctx in
         Mrs.free mrs ctx victim;
         Mrs.flush mrs ctx;
         (* one syscall the quiesce can catch mid-drain: with the
            branchable stuck-quiesce inflation its drain outlasts the
            watchdog *)
         Kernel.Syscall.perform_service ctx ~service:150_000;
         Mrs.wait_drained mrs ctx;
         Mrs.finish mrs ctx));
  {
    machine = m;
    tracer = tr;
    end_checks = std_end_checks ~revokers:[ rv ] ~mrss:[ mrs ];
  }

let build_fork_during_epoch ~strategy ~fault ~sanitizer ~decide:_ =
  let os = Os.create ~config:cfg ~revoker_core:0 (Runtime.Safe strategy) in
  let m = Os.machine os in
  let tr = Trace.create ~capacity:65536 () in
  Machine.attach_tracer m (Some tr);
  let rt = Os.runtime (Os.init os) in
  let san = sanitizer ?revoker:rt.Runtime.revoker m in
  Os.set_on_process os (fun p ->
      Sanitizer.register_process san ~pid:(Os.pid p)
        ?revoker:(Os.runtime p).Runtime.revoker ());
  (match rt.Runtime.revoker with
  | Some rv -> Revoker.inject_fault rv fault
  | None -> ());
  Os.spawn_reaper os;
  ignore
    (Machine.spawn m ~name:"init" ~core:1 (fun ctx ->
         let mrs = Option.get rt.Runtime.mrs in
         let victim = Mrs.malloc mrs ctx 128 in
         Machine.store_u64 ctx victim 0x5ec2e7L;
         Sim.Regfile.set (Machine.regs (Machine.self ctx)) 5 victim;
         Mrs.free mrs ctx victim;
         Mrs.flush mrs ctx;
         (* fork while the victim's epoch may still be in flight: the
            child inherits the painted quarantine across the fork *)
         ignore
           (Os.fork os ctx ~parent:(Os.init os) ~name:"child" ~core:1
              (fun cctx proc ->
                let crt = Os.runtime proc in
                let cmrs = Option.get crt.Runtime.mrs in
                let c = Mrs.malloc cmrs cctx 192 in
                Machine.store_u64 cctx c 2L;
                Mrs.free cmrs cctx c;
                Mrs.flush cmrs cctx;
                Mrs.wait_drained cmrs cctx;
                Os.exit os cctx proc));
         Mrs.wait_drained mrs ctx;
         Os.wait_children os ctx;
         Os.shutdown os ctx));
  let end_checks () =
    let procs = Os.procs os in
    let revokers =
      List.filter_map (fun p -> (Os.runtime p).Runtime.revoker) procs
    in
    let mrss = List.filter_map (fun p -> (Os.runtime p).Runtime.mrs) procs in
    std_end_checks ~revokers ~mrss ()
  in
  { machine = m; tracer = tr; end_checks }

let all =
  [
    {
      s_name = "free-during-sweep";
      s_doc = "two threads free and drain while the revoker sweeps";
      s_branch = false;
      s_build = build_free_during_sweep;
    };
    {
      s_name = "bulk-free";
      s_doc = "a four-block burst races two cross-linked frees";
      s_branch = false;
      s_build = build_bulk_free;
    };
    {
      s_name = "crash-mid-sweep";
      s_doc = "branchable sweep crashes and stuck quiesces under a tight recovery budget";
      s_branch = true;
      s_build = build_crash_mid_sweep;
    };
    {
      s_name = "fork-during-epoch";
      s_doc = "fork and child exit while the parent's epoch is in flight";
      s_branch = false;
      s_build = build_fork_during_epoch;
    };
  ]

let find n = List.find_opt (fun t -> t.s_name = n) all

let build t ~strategy ?fault ~sanitizer ~decide () =
  t.s_build ~strategy ~fault ~sanitizer ~decide
