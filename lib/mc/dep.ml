module Trace = Sim.Trace

type footprint = {
  globals : string list; (* machine-wide protocol state touched *)
  regions : (int * int) list; (* quarantine regions: base, size *)
  caps : int list; (* granules hit by tagged capability stores *)
}

let empty = { globals = []; regions = []; caps = [] }
let is_empty f = f.globals = [] && f.regions = [] && f.caps = []
let granule a = a land lnot 15

let add_event f (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Paint | Trace.Unpaint | Trace.Quarantine_enq | Trace.Quarantine_deq
  | Trace.Reuse | Trace.Quota_charge | Trace.Quota_credit ->
      (* arg: region base; arg2: size (0 if unused — cover one granule) *)
      let r = (e.Trace.arg, max e.Trace.arg2 16) in
      if List.mem r f.regions then f else { f with regions = r :: f.regions }
  | Trace.Context_switch | Trace.Req_shed | Trace.Req_lost
  | Trace.Brownout_shift | Trace.Governor_defer | Trace.Governor_force
  | Trace.Governor_quantum | Trace.Slo_violation | Trace.Quota_deny
  | Trace.Free_all | Trace.Custom _ ->
      f
  | k ->
      let g = Trace.kind_name k in
      if List.mem g f.globals then f else { f with globals = g :: f.globals }

let add_cap_store f ~vaddr =
  let g = granule vaddr in
  if List.mem g f.caps then f else { f with caps = g :: f.caps }

let overlap (b1, s1) (b2, s2) = b1 < b2 + s2 && b2 < b1 + s1

(* Regions and cap-store granules live in one address comparison; a
   granule is a 16-byte region. *)
let spans f = f.regions @ List.map (fun a -> (a, 16)) f.caps

let dependent f1 f2 =
  if is_empty f1 || is_empty f2 then false
  else if f1.globals <> [] || f2.globals <> [] then true
  else
    let s2 = spans f2 in
    List.exists (fun r -> List.exists (overlap r) s2) (spans f1)

let pp fmt f =
  if is_empty f then Format.fprintf fmt "(empty)"
  else begin
    List.iter (fun g -> Format.fprintf fmt "%s " g) f.globals;
    List.iter (fun (b, s) -> Format.fprintf fmt "[%#x+%d] " b s) f.regions;
    List.iter (fun a -> Format.fprintf fmt "cap:%#x " a) f.caps
  end
