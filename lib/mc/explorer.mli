(** Stateless-search DPOR explorer over {!Scenario} configurations.

    Each {e execution} recreates the scenario's machine from scratch,
    installs a scheduling oracle ({!Sim.Machine.set_sched_oracle}) and a
    chaos [decide] callback, and drives {!Sim.Machine.run} to
    completion. A {e choice point} is an oracle consultation with two or
    more eligible threads, or a chaos consultation (always two arms);
    forced picks consume nothing. The decisions of one execution form
    its {!Schedule.choice} list; everything between choice points is
    deterministic, so re-supplying a prefix replays it exactly.

    The search is a depth-first walk of the choice tree with
    Flanagan–Godefroid dynamic partial-order reduction: after each
    execution, for every scheduled segment the latest dependent segment
    of a different thread (under {!Dep.dependent}) seeds a backtrack
    point; sleep sets prune choices whose subtrees were already covered
    by an explored sibling, carrying the sibling's segment footprint so
    a sleeping entry is dropped as soon as a dependent segment executes.
    Chaos branch points are never pruned — both arms are always
    explored. Per-execution checks: the full sanitizer rule set, the
    happens-before race rules, deadlock, and the scenario's end-state
    assertions. Exploration stops at the first violating execution; its
    schedule is then minimized to the shortest prefix that still
    reproduces the leading rule under default continuation.

    [naive] mode disables both reductions (every choice of every node is
    a backtrack point, no sleep sets) — the exhaustive enumeration DPOR
    is measured against. *)

type violation = {
  v_rules : string list;  (** rules observed, first = the leading one *)
  v_detail : string;  (** first violation, human-readable *)
  v_report : string;  (** full checker report of the minimized replay *)
  v_schedule : Schedule.choice list;  (** minimal reproducing prefix *)
}

type outcome = {
  executions : int;  (** schedules actually run (minimization excluded) *)
  max_points : int;  (** deepest choice-point count seen in one execution *)
  backtracks : int;  (** dependent pairs that seeded backtrack points *)
  capped : bool;  (** [max_schedules] exhausted before the tree was *)
  diverged : int;  (** prefix replays that went structurally off-path *)
  min_trials : int;  (** executions spent minimizing the violation *)
  violation : violation option;
}

val explore :
  scenario:Scenario.t ->
  strategy:Ccr.Revoker.strategy ->
  ?fault:Ccr.Revoker.fault ->
  ?naive:bool ->
  ?max_schedules:int ->
  ?depth:int ->
  ?root:Schedule.choice ->
  unit ->
  outcome
(** Explore the scenario's choice tree. [max_schedules] (default 400)
    bounds executions; [depth] (default 48) bounds the choice points
    that become backtrackable nodes (deeper points still execute, under
    default continuation). [root] pins the first choice point to one
    arm and never backtracks it — the unit of parallel subtree
    exploration (run one [explore] per arm of {!root_candidates} and
    merge). One sanitizer is allocated per call and rebound across
    executions ({!Analysis.Sanitizer.rebind}). *)

val root_candidates :
  scenario:Scenario.t ->
  strategy:Ccr.Revoker.strategy ->
  ?fault:Ccr.Revoker.fault ->
  unit ->
  Schedule.choice list
(** Arms of the first choice point (one probe execution); empty when the
    scenario has no choice point under this strategy. *)

type run_report = {
  r_violation : (string list * string) option;  (** rules, first detail *)
  r_report : string;  (** checker reports (empty when clean) *)
  r_trace : string;  (** tail of the event trace *)
  r_end_errors : string list;
  r_points : int;  (** choice points traversed *)
  r_choices : Schedule.choice list;  (** full decision record *)
}

val run_one :
  scenario:Scenario.t ->
  strategy:Ccr.Revoker.strategy ->
  ?fault:Ccr.Revoker.fault ->
  prefix:Schedule.choice list ->
  unit ->
  run_report
(** Execute exactly one schedule: follow [prefix], then the machine's
    default picks — the replay entry point. *)
