module Machine = Sim.Machine
module Trace = Sim.Trace
module Revoker = Ccr.Revoker
module Sanitizer = Analysis.Sanitizer
module Race = Analysis.Race

type violation = {
  v_rules : string list;
  v_detail : string;
  v_report : string;
  v_schedule : Schedule.choice list;
}

type outcome = {
  executions : int;
  max_points : int;
  backtracks : int;
  capped : bool;
  diverged : int;
  min_trials : int;
  violation : violation option;
}

type run_report = {
  r_violation : (string list * string) option;
  r_report : string;
  r_trace : string;
  r_end_errors : string list;
  r_points : int;
  r_choices : Schedule.choice list;
}

(* ---- one execution ---- *)

(* A choice point traversed by one execution: its arms, the arm taken,
   the footprint of the segment that followed, and the sleep set in
   force when the point was reached. *)
type point = {
  p_cands : Schedule.choice list;
  p_taken : Schedule.choice;
  p_owner : int option; (* Sched tid; None at chaos branch points *)
  mutable p_fp : Dep.footprint;
  p_sleep : (Schedule.choice * Dep.footprint) list;
  p_branch : bool;
}

type exec = {
  x_points : point array;
  x_choices : Schedule.choice list;
  x_violation : (string list * string) option;
  x_report : string;
  x_end_errors : string list;
  x_diverged : bool;
  x_trace : string;
}

(* Execute one schedule: follow [prefix] at the first choice points,
   then (use_sleep) redirect away from sleeping arms or (otherwise) take
   the machine's default pick. [pre_sleep.(k)] are the sleep entries the
   DFS accumulated at prefix node k (siblings explored before the forced
   arm), re-applied so sleep state is rebuilt identically on replay. *)
let run_exec ~san_cell ~scenario ~strategy ~fault ~prefix ~pre_sleep ~use_sleep
    ~want_trace () =
  let points = ref [] (* reversed *) in
  let npoints = ref 0 in
  let cur = ref Dep.empty in
  let sleep_cur = ref [] in
  let diverged = ref false in
  let consultations = ref 0 in
  let close_segment () =
    (match !points with
    | p :: _ ->
        p.p_fp <- !cur;
        sleep_cur :=
          List.filter (fun (_, f) -> not (Dep.dependent f !cur)) !sleep_cur
    | [] -> ());
    cur := Dep.empty
  in
  let record ~cands ~taken ~owner ~branch =
    let k = !npoints in
    incr npoints;
    (if k < Array.length pre_sleep then
       let add =
         List.filter
           (fun (c, _) -> c <> taken && not (List.mem_assoc c !sleep_cur))
           pre_sleep.(k)
       in
       sleep_cur := add @ !sleep_cur);
    points :=
      {
        p_cands = cands;
        p_taken = taken;
        p_owner = owner;
        p_fp = Dep.empty;
        p_sleep = !sleep_cur;
        p_branch = branch;
      }
      :: !points
  in
  let choose_sched ~default cands =
    incr consultations;
    if !consultations > 2_000_000 then
      failwith "mc: runaway schedule (consultation budget exceeded)";
    match cands with
    | [ only ] -> only
    | _ ->
        close_segment ();
        let arms =
          List.map (fun th -> Schedule.Sched (Machine.thread_id th)) cands
        in
        let k = !npoints in
        let dflt = Schedule.Sched (Machine.thread_id default) in
        let taken =
          if k < Array.length prefix then begin
            let c = prefix.(k) in
            if List.mem c arms then c
            else begin
              diverged := true;
              dflt
            end
          end
          else if not use_sleep then dflt
          else begin
            let sleeping c = List.mem_assoc c !sleep_cur in
            if not (sleeping dflt) then dflt
            else
              match List.find_opt (fun c -> not (sleeping c)) arms with
              | Some c -> c
              | None -> dflt
          end
        in
        let tid = match taken with Schedule.Sched t -> t | _ -> assert false in
        let th = List.find (fun th -> Machine.thread_id th = tid) cands in
        record ~cands:arms ~taken ~owner:(Some tid) ~branch:false;
        th
  in
  let decide kind =
    incr consultations;
    close_segment ();
    let kname = Chaos.kind_name kind in
    let arms =
      [ Schedule.Branch (kname, false); Schedule.Branch (kname, true) ]
    in
    let k = !npoints in
    let taken =
      if k < Array.length prefix then
        match prefix.(k) with
        | Schedule.Branch (n, b) when n = kname -> Schedule.Branch (n, b)
        | _ ->
            diverged := true;
            Schedule.Branch (kname, false)
      else Schedule.Branch (kname, false)
    in
    record ~cands:arms ~taken ~owner:None ~branch:true;
    match taken with Schedule.Branch (_, b) -> b | _ -> false
  in
  let san = ref None in
  let sanitizer ?revoker m =
    let s =
      match !san_cell with
      | None ->
          let s = Sanitizer.attach ?revoker m in
          san_cell := Some s;
          s
      | Some s ->
          Sanitizer.rebind s ?revoker m;
          s
    in
    san := Some s;
    s
  in
  let h = Scenario.build scenario ~strategy ?fault ~sanitizer ~decide () in
  let race = Race.attach h.Scenario.machine in
  Machine.set_sched_oracle h.Scenario.machine (Some choose_sched);
  ignore
    (Trace.subscribe h.Scenario.tracer (fun e -> cur := Dep.add_event !cur e)
      : int);
  Machine.set_cap_store_hook h.Scenario.machine
    (Some (fun ~vaddr _cap -> cur := Dep.add_cap_store !cur ~vaddr));
  let crash = ref None in
  (try Machine.run h.Scenario.machine with
  | Machine.Deadlock msg -> crash := Some ("deadlock", msg)
  | Failure msg when String.length msg >= 4 && String.sub msg 0 4 = "mc: " ->
      crash := Some ("runaway", msg));
  close_segment ();
  let san = Option.get !san in
  Sanitizer.finish san;
  Race.detach race;
  let end_errors =
    match !crash with Some _ -> [] | None -> h.Scenario.end_checks ()
  in
  let san_rules =
    List.fold_left
      (fun acc v ->
        if List.mem v.Sanitizer.v_rule acc then acc else acc @ [ v.Sanitizer.v_rule ])
      []
      (Sanitizer.violations san)
  in
  let race_rules =
    List.fold_left
      (fun acc r ->
        if List.mem r.Race.c_rule acc then acc else acc @ [ r.Race.c_rule ])
      [] (Race.races race)
  in
  let rules =
    (match !crash with Some (r, _) -> [ r ] | None -> [])
    @ san_rules @ race_rules
    @ (if end_errors <> [] then [ "end-state" ] else [])
  in
  let detail =
    match (!crash, Sanitizer.violations san, Race.races race, end_errors) with
    | Some (_, msg), _, _, _ -> msg
    | None, v :: _, _, _ ->
        Printf.sprintf "%s: %s" v.Sanitizer.v_rule v.Sanitizer.v_detail
    | None, [], r :: _, _ -> Printf.sprintf "%s at %#x" r.Race.c_rule r.Race.c_addr
    | None, [], [], e :: _ -> e
    | None, [], [], [] -> ""
  in
  let report =
    if rules = [] then ""
    else begin
      let buf = Buffer.create 256 in
      let fmt = Format.formatter_of_buffer buf in
      (match !crash with
      | Some (r, msg) -> Format.fprintf fmt "%s: %s@." r msg
      | None -> ());
      if not (Sanitizer.ok san) then Sanitizer.report fmt san;
      if not (Race.ok race) then Race.report fmt race;
      List.iter (fun e -> Format.fprintf fmt "end-state: %s@." e) end_errors;
      Format.pp_print_flush fmt ();
      Buffer.contents buf
    end
  in
  let trace_txt =
    if not want_trace then ""
    else begin
      let buf = Buffer.create 4096 in
      let fmt = Format.formatter_of_buffer buf in
      Trace.dump fmt ~last:150 h.Scenario.tracer;
      Format.pp_print_flush fmt ();
      Buffer.contents buf
    end
  in
  let pts = Array.of_list (List.rev !points) in
  {
    x_points = pts;
    x_choices = List.map (fun p -> p.p_taken) (Array.to_list pts);
    x_violation = (if rules = [] then None else Some (rules, detail));
    x_report = report;
    x_end_errors = end_errors;
    x_diverged = !diverged;
    x_trace = trace_txt;
  }

(* ---- the DFS with DPOR ---- *)

type node = {
  n_cands : Schedule.choice list;
  mutable n_taken : Schedule.choice;
  mutable n_done : Schedule.choice list; (* exploration order; taken last *)
  mutable n_backtrack : Schedule.choice list;
  mutable n_sleep : (Schedule.choice * Dep.footprint) list;
  mutable n_fps : (Schedule.choice * Dep.footprint) list;
  n_branch : bool;
}

let explore ~scenario ~strategy ?fault ?(naive = false) ?(max_schedules = 400)
    ?(depth = 48) ?root () =
  let san_cell = ref None in
  let stack : node option array = Array.make (max depth 1) None in
  let len = ref 0 in
  let executions = ref 0 in
  let max_points = ref 0 in
  let backtracks = ref 0 in
  let capped = ref false in
  let diverged_n = ref 0 in
  let violation = ref None in
  let min_trials = ref 0 in
  let add_backtrack nd c =
    if not (List.mem c nd.n_backtrack) then begin
      nd.n_backtrack <- nd.n_backtrack @ [ c ];
      incr backtracks
    end
  in
  let process (x : exec) =
    max_points := max !max_points (Array.length x.x_points);
    if x.x_diverged then incr diverged_n;
    let n = Array.length x.x_points in
    let limit = min n (Array.length stack) in
    let k = ref 0 in
    let ok = ref true in
    while !ok && !k < limit do
      let p = x.x_points.(!k) in
      if !k < !len then begin
        match stack.(!k) with
        | Some nd when nd.n_cands = p.p_cands && nd.n_taken = p.p_taken ->
            if not (List.mem_assoc p.p_taken nd.n_fps) then
              nd.n_fps <- (p.p_taken, p.p_fp) :: nd.n_fps
        | _ ->
            (* structural divergence: the tree below here changed *)
            len := !k;
            ok := false
      end
      else if !k = !len then begin
        stack.(!k) <-
          Some
            {
              n_cands = p.p_cands;
              n_taken = p.p_taken;
              n_done = [ p.p_taken ];
              n_backtrack =
                (if naive || p.p_branch then p.p_cands else [ p.p_taken ]);
              n_sleep = (if naive then [] else p.p_sleep);
              n_fps = [ (p.p_taken, p.p_fp) ];
              n_branch = p.p_branch;
            };
        incr len
      end;
      incr k
    done;
    if !ok && n < !len then len := n;
    (* Backtrack seeding: for each scheduled segment, its latest
       dependent predecessor from a different thread must be reorderable
       — add the later thread to the earlier node's backtrack set (or
       every arm when that thread is not eligible there: the
       persistent-set fallback). Branch points are skipped on both
       sides: both their arms are always explored. *)
    if not naive then
      for j = 1 to n - 1 do
        let pj = x.x_points.(j) in
        match pj.p_owner with
        | None -> ()
        | Some qj ->
            if not (Dep.is_empty pj.p_fp) then begin
              let found = ref false in
              let i = ref (j - 1) in
              while (not !found) && !i >= 0 do
                let pi = x.x_points.(!i) in
                (match pi.p_owner with
                | Some qi when qi <> qj && Dep.dependent pi.p_fp pj.p_fp ->
                    found := true;
                    if !i < !len then begin
                      match stack.(!i) with
                      | Some nd when not nd.n_branch ->
                          let want = Schedule.Sched qj in
                          if List.mem want nd.n_cands then add_backtrack nd want
                          else List.iter (add_backtrack nd) nd.n_cands
                      | Some _ | None -> ()
                    end
                | Some _ | None -> ());
                decr i
              done
            end
      done
  in
  let min_frontier = match root with Some _ -> 1 | None -> 0 in
  let next_frontier () =
    let rec scan d =
      if d < min_frontier then None
      else
        match stack.(d) with
        | None -> scan (d - 1)
        | Some nd -> (
            let pending =
              List.filter
                (fun c ->
                  (not (List.mem c nd.n_done))
                  && not (List.mem_assoc c nd.n_sleep))
                nd.n_backtrack
            in
            match pending with
            | [] -> scan (d - 1)
            | c :: _ ->
                nd.n_done <- nd.n_done @ [ c ];
                nd.n_taken <- c;
                len := d + 1;
                let prefix =
                  Array.init (d + 1) (fun k -> (Option.get stack.(k)).n_taken)
                in
                let pre_sleep =
                  Array.init (d + 1) (fun k ->
                      let nd = Option.get stack.(k) in
                      List.filter_map
                        (fun c' ->
                          if c' = nd.n_taken then None
                          else
                            Option.map
                              (fun fp -> (c', fp))
                              (List.assoc_opt c' nd.n_fps))
                        nd.n_done)
                in
                Some (prefix, pre_sleep))
    in
    scan (!len - 1)
  in
  let minimize rules detail (x : exec) =
    let target = match rules with r :: _ -> Some r | [] -> None in
    let full = Array.of_list x.x_choices in
    let nfull = Array.length full in
    let matches (y : exec) =
      match y.x_violation with
      | None -> false
      | Some (rs, _) -> (
          match target with Some r -> List.mem r rs | None -> true)
    in
    let rec try_l l =
      if l > nfull then None
      else begin
        let y =
          run_exec ~san_cell ~scenario ~strategy ~fault
            ~prefix:(Array.sub full 0 l) ~pre_sleep:[||] ~use_sleep:false
            ~want_trace:false ()
        in
        incr min_trials;
        if matches y then Some (Array.to_list (Array.sub full 0 l), y)
        else try_l (l + 1)
      end
    in
    match try_l 0 with
    | Some (sched, y) ->
        {
          v_rules = (match y.x_violation with Some (r, _) -> r | None -> rules);
          v_detail =
            (match y.x_violation with Some (_, d) -> d | None -> detail);
          v_report = y.x_report;
          v_schedule = sched;
        }
    | None ->
        (* the full recorded schedule reproduces by construction; if the
           leading rule still shifted, fall back to the original record *)
        {
          v_rules = rules;
          v_detail = detail;
          v_report = x.x_report;
          v_schedule = x.x_choices;
        }
  in
  let rec loop prefix pre_sleep =
    if !executions >= max_schedules then capped := true
    else begin
      let x =
        run_exec ~san_cell ~scenario ~strategy ~fault ~prefix ~pre_sleep
          ~use_sleep:(not naive) ~want_trace:false ()
      in
      incr executions;
      process x;
      match x.x_violation with
      | Some (rules, detail) -> violation := Some (minimize rules detail x)
      | None -> (
          match next_frontier () with
          | None -> ()
          | Some (p, ps) -> loop p ps)
    end
  in
  let prefix0 = match root with Some c -> [| c |] | None -> [||] in
  loop prefix0 [||];
  {
    executions = !executions;
    max_points = !max_points;
    backtracks = !backtracks;
    capped = !capped;
    diverged = !diverged_n;
    min_trials = !min_trials;
    violation = !violation;
  }

let root_candidates ~scenario ~strategy ?fault () =
  let san_cell = ref None in
  let x =
    run_exec ~san_cell ~scenario ~strategy ~fault ~prefix:[||] ~pre_sleep:[||]
      ~use_sleep:false ~want_trace:false ()
  in
  if Array.length x.x_points = 0 then [] else x.x_points.(0).p_cands

let run_one ~scenario ~strategy ?fault ~prefix () =
  let san_cell = ref None in
  let x =
    run_exec ~san_cell ~scenario ~strategy ~fault
      ~prefix:(Array.of_list prefix) ~pre_sleep:[||] ~use_sleep:false
      ~want_trace:true ()
  in
  {
    r_violation = x.x_violation;
    r_report = x.x_report;
    r_trace = x.x_trace;
    r_end_errors = x.x_end_errors;
    r_points = Array.length x.x_points;
    r_choices = x.x_choices;
  }
