module Revoker = Ccr.Revoker

type choice = Sched of int | Branch of string * bool

let pp_choice fmt = function
  | Sched tid -> Format.fprintf fmt "sched %d" tid
  | Branch (kind, fire) ->
      Format.fprintf fmt "branch %s %d" kind (if fire then 1 else 0)

type t = {
  scenario : string;
  strategy : Revoker.strategy;
  fault : Revoker.fault option;
  expect : string option;
  choices : choice list;
}

let pp fmt t =
  Format.fprintf fmt "# ccr_mc schedule v1@.";
  Format.fprintf fmt "scenario %s@." t.scenario;
  Format.fprintf fmt "strategy %s@." (Revoker.strategy_name t.strategy);
  (match t.fault with
  | Some f -> Format.fprintf fmt "fault %s@." (Revoker.fault_name f)
  | None -> ());
  (match t.expect with
  | Some rule -> Format.fprintf fmt "expect %s@." rule
  | None -> ());
  List.iter (fun c -> Format.fprintf fmt "%a@." pp_choice c) t.choices

let save path t =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  pp fmt t;
  Format.pp_print_flush fmt ();
  close_out oc

let load path =
  let ( let* ) = Result.bind in
  let parse_line lineno acc line =
    let* acc = acc in
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Ok acc
    else
      match String.split_on_char ' ' line with
      | [ "scenario"; name ] -> Ok { acc with scenario = name }
      | [ "strategy"; name ] -> (
          match Revoker.strategy_of_name name with
          | Some s -> Ok { acc with strategy = s }
          | None ->
              Error (Printf.sprintf "line %d: unknown strategy %S" lineno name))
      | [ "fault"; name ] -> (
          match Revoker.fault_of_name name with
          | Some f -> Ok { acc with fault = Some f }
          | None ->
              Error (Printf.sprintf "line %d: unknown fault %S" lineno name))
      | [ "expect"; rule ] -> Ok { acc with expect = Some rule }
      | [ "sched"; tid ] -> (
          match int_of_string_opt tid with
          | Some tid -> Ok { acc with choices = Sched tid :: acc.choices }
          | None -> Error (Printf.sprintf "line %d: bad thread id" lineno))
      | [ "branch"; kind; fire ] -> (
          match (Chaos.kind_of_name kind, fire) with
          | Some _, ("0" | "1") ->
              Ok
                {
                  acc with
                  choices = Branch (kind, fire = "1") :: acc.choices;
                }
          | None, _ ->
              Error (Printf.sprintf "line %d: unknown chaos kind %S" lineno kind)
          | _, _ -> Error (Printf.sprintf "line %d: branch arm must be 0/1" lineno))
      | _ -> Error (Printf.sprintf "line %d: unparsable %S" lineno line)
  in
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let empty =
        {
          scenario = "";
          strategy = Revoker.Reloaded;
          fault = None;
          expect = None;
          choices = [];
        }
      in
      let* t =
        List.fold_left
          (fun (acc, n) line -> (parse_line n acc line, n + 1))
          (Ok empty, 1)
          (List.rev !lines)
        |> fst
      in
      if t.scenario = "" then Error "missing \"scenario\" line"
      else Ok { t with choices = List.rev t.choices }
