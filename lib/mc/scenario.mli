(** Small model-checking configurations.

    Each scenario builds a deliberately tiny machine — two cores
    (revoker on 0, applications on 1), a 1 MiB heap, one or two
    quarantined regions — whose every safe-point interleaving the
    explorer can enumerate. All scenarios scatter aliases of a freed
    victim through memory, a register file and a kernel hoard (the
    [ccr_check] mutation rig), so a protocol mutation is observable on
    any schedule; all end by draining the quarantine completely, so the
    end-state assertions (epoch counter even, revocation bitmap empty,
    quarantine drained, nothing abandoned) are meaningful.

    - ["free-during-sweep"]: two application threads free and churn
      while the revoker sweeps; the second thread's frees race the
      victim's epoch.
    - ["bulk-free"]: one thread frees a four-block burst (one batch,
      several regions) while the other frees two cross-linked blocks.
    - ["crash-mid-sweep"]: one application thread plus branchable chaos
      ({!Chaos.install_branch}): every sweep page-visit may crash the
      sweep ([Epoch_resume]/[Epoch_abort] paths) and the one syscall may
      stick its quiesce drain ([Stw_abandon] path), under a tightened
      recovery budget.
    - ["fork-during-epoch"]: an [Os] world where init frees the victim,
      flushes, then forks a child that allocates, frees and exits while
      the parent's epoch may still be in flight — quarantine crossing
      [fork], the reaper draining a zombie.

    Scenario builders are deterministic: machine behaviour depends only
    on (strategy, fault, the oracle's decisions). *)

type handles = {
  machine : Sim.Machine.t;
  tracer : Sim.Trace.t;
  end_checks : unit -> string list;
      (** Run after {!Sim.Machine.run}: one message per violated
          end-state assertion, empty when clean. *)
}

type t

val name : t -> string
val doc : t -> string

val branchable : t -> bool
(** The scenario consults the chaos [decide] callback. *)

val all : t list
val find : string -> t option

val build :
  t ->
  strategy:Ccr.Revoker.strategy ->
  ?fault:Ccr.Revoker.fault ->
  sanitizer:(?revoker:Ccr.Revoker.t -> Sim.Machine.t -> Analysis.Sanitizer.t) ->
  decide:(Chaos.kind -> bool) ->
  unit ->
  handles
(** Construct the machine, threads, revoker(s) and shim(s); [sanitizer]
    is called once the pid-0 revoker exists (the explorer passes
    attach-or-{!Analysis.Sanitizer.rebind}); [decide] is consulted by
    branchable scenarios at each potential injection site. The caller
    installs its scheduling oracle on [handles.machine] and then calls
    {!Sim.Machine.run}. *)
