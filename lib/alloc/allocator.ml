module Capability = Cheri.Capability
module Perms = Cheri.Perms
module Layout = Vm.Layout
module Machine = Sim.Machine
module Cost = Sim.Cost

let chunk_size = 64 * 1024

type t = {
  m : Machine.t;
  aspace : Vm.Aspace.t; (* the address space whose heap this allocator serves *)
  heap_cap : Capability.t;
  free_lists : int list array; (* per size class: slot base addresses *)
  large_free : (int, int list) Hashtbl.t; (* rounded size -> addresses *)
  live : (int, int) Hashtbl.t; (* base addr -> rounded size *)
  dirty : (int, unit) Hashtbl.t; (* recycled blocks needing a reuse-time scrub *)
  heap_limit : int;
  mutable bump : int;
  mutable live_bytes : int;
  mutable total_allocated : int;
  mutable total_freed : int;
  mutable allocations : int;
  mutable peak_rss : int;
  mutable scrubs : int;
  mutable scrub_bytes : int;
}

let create ?aspace m =
  let aspace = match aspace with Some a -> a | None -> Machine.aspace m in
  let layout = Vm.Aspace.layout aspace in
  let heap_base = layout.Layout.heap_base in
  let heap_limit = layout.Layout.heap_limit in
  let root = Capability.root ~length:(1 lsl 40) in
  let heap_cap =
    Capability.set_bounds root ~base:heap_base ~length:(heap_limit - heap_base)
  in
  assert (Capability.tag heap_cap);
  {
    m;
    aspace;
    heap_cap;
    free_lists = Array.make Sizeclass.num_classes [];
    large_free = Hashtbl.create 64;
    live = Hashtbl.create 4096;
    dirty = Hashtbl.create 4096;
    heap_limit;
    bump = heap_base;
    live_bytes = 0;
    total_allocated = 0;
    total_freed = 0;
    allocations = 0;
    peak_rss = 0;
    scrubs = 0;
    scrub_bytes = 0;
  }

let heap_cap t = t.heap_cap

let note_rss t =
  let rss = Vm.Aspace.mapped_pages t.aspace in
  if rss > t.peak_rss then t.peak_rss <- rss

(* Fork: the child's heap is byte-identical to the parent's (copy-on-write),
   so its allocator state must be too. Free lists and the live/dirty sets are
   duplicated; lifetime statistics restart from zero for the new process. *)
let clone t ~aspace =
  {
    m = t.m;
    aspace;
    heap_cap = t.heap_cap;
    free_lists = Array.copy t.free_lists;
    large_free = Hashtbl.copy t.large_free;
    live = Hashtbl.copy t.live;
    dirty = Hashtbl.copy t.dirty;
    heap_limit = t.heap_limit;
    bump = t.bump;
    live_bytes = t.live_bytes;
    total_allocated = 0;
    total_freed = 0;
    allocations = 0;
    peak_rss = 0;
    scrubs = 0;
    scrub_bytes = 0;
  }

let align_up x a = (x + a - 1) land lnot (a - 1)

let bump_alloc t ctx ~size ~align =
  let base = align_up t.bump align in
  if base + size > t.heap_limit then raise Out_of_memory;
  t.bump <- base + size;
  Machine.map ctx ~vaddr:base ~len:size ~writable:true;
  base

let carve_chunk t ctx cls =
  let slot = Sizeclass.size_of_class cls in
  let base = bump_alloc t ctx ~size:chunk_size ~align:Vm.Phys.page_size in
  let nslots = chunk_size / slot in
  let slots = ref [] in
  for i = nslots - 1 downto 0 do
    slots := (base + (i * slot)) :: !slots
  done;
  t.free_lists.(cls) <- !slots @ t.free_lists.(cls)

let derive t base size =
  let c = Capability.set_bounds_exact t.heap_cap ~base ~length:size in
  assert (Capability.tag c);
  Capability.restrict_perms c Perms.read_write

let malloc t ctx req =
  Machine.charge ctx Cost.malloc_fixed;
  let size = Sizeclass.rounded_size req in
  let base =
    match Sizeclass.class_of_size size with
    | Some cls -> (
        (match t.free_lists.(cls) with
        | [] -> carve_chunk t ctx cls
        | _ :: _ -> ());
        match t.free_lists.(cls) with
        | base :: rest ->
            t.free_lists.(cls) <- rest;
            base
        | [] -> assert false)
    | None -> (
        match Hashtbl.find_opt t.large_free size with
        | Some (base :: rest) ->
            Hashtbl.replace t.large_free size rest;
            base
        | Some [] | None ->
            bump_alloc t ctx ~size ~align:(Cheri.Compress.required_alignment size))
  in
  Hashtbl.replace t.live base size;
  t.live_bytes <- t.live_bytes + size;
  t.total_allocated <- t.total_allocated + size;
  t.allocations <- t.allocations + 1;
  let cap = derive t base size in
  (* Freed memory is "poisoned" lazily: zeroing is deferred until reuse
     (§2.2.2, footnote 7 of the paper), so recycled blocks are scrubbed
     here while fresh mappings arrive pre-zeroed. *)
  if Hashtbl.mem t.dirty base then begin
    Hashtbl.remove t.dirty base;
    t.scrubs <- t.scrubs + 1;
    t.scrub_bytes <- t.scrub_bytes + size;
    Machine.zero ctx cap
  end
  else Machine.touch ctx cap ~write:true;
  note_rss t;
  cap

let lookup_live t base op =
  match Hashtbl.find_opt t.live base with
  | Some size -> size
  | None ->
      invalid_arg
        (Printf.sprintf "Allocator.%s: %#x is not a live allocation (double free?)" op base)

let return_to_lists t ~addr ~size =
  Hashtbl.replace t.dirty addr ();
  match Sizeclass.class_of_size size with
  | Some cls when Sizeclass.size_of_class cls = size ->
      t.free_lists.(cls) <- addr :: t.free_lists.(cls)
  | Some _ | None ->
      let l = Option.value ~default:[] (Hashtbl.find_opt t.large_free size) in
      Hashtbl.replace t.large_free size (addr :: l)

let withdraw t ctx cap =
  Machine.charge ctx Cost.free_fixed;
  let base = Capability.base cap in
  let size = lookup_live t base "withdraw" in
  Hashtbl.remove t.live base;
  t.live_bytes <- t.live_bytes - size;
  t.total_freed <- t.total_freed + size;
  size

let free t ctx cap =
  let base = Capability.base cap in
  let size = withdraw t ctx cap in
  Machine.touch ctx cap ~write:true;
  return_to_lists t ~addr:base ~size

let release_range t ctx ~addr ~size =
  Machine.charge ctx Cost.free_fixed;
  return_to_lists t ~addr ~size

let usable_size t ~addr = Hashtbl.find_opt t.live addr
let live_bytes t = t.live_bytes
let total_allocated_bytes t = t.total_allocated
let total_freed_bytes t = t.total_freed
let allocation_count t = t.allocations
let peak_rss_pages t = t.peak_rss

let scrub_count t = t.scrubs
let scrub_bytes t = t.scrub_bytes
