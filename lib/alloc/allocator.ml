module Capability = Cheri.Capability
module Perms = Cheri.Perms
module Layout = Vm.Layout
module Machine = Sim.Machine
module Cost = Sim.Cost

let chunk_size = 64 * 1024
let granule = Sizeclass.granule

(* The live and dirty sets are keyed by block base address. Every base is
   granule-aligned (size classes are multiples of the granule, the bump
   pointer aligns to at least a granule), so they are stored as flat
   per-granule tables indexed by (addr - heap_base) / granule — a packed
   u16 table holding the live block's rounded size in granules (0 =
   dead, 0xffff = huge, spilled to a side table) and a dirty bitmap.
   Hashtables here cost ~60% of a mature-heap malloc/free pair (hashing
   plus cache-cold bucket chains); the flat tables make both lookups one
   indexed load, and packing the size table 2 bytes per granule keeps a
   31k-slot live set inside a couple of megabytes of host cache. The
   tables grow with the bump pointer, never the whole heap region, so a
   sparsely-used heap stays cheap. *)

(* Per-size-class free stack: a growable int array popped/pushed at the
   top. Replaces [int list] heads — the conses landed all over the minor
   heap, so a mature heap's pop was a guaranteed host-cache miss, where
   the stack top stays hot. Pop order is identical to the list version:
   pushes mirror conses, and bulk refills (carve_chunk) only ever happen
   when the stack is empty, so "prepend" degenerates to a reversed push
   run. *)
type stack = { mutable sp : int; mutable elems : int array }

let stack_create () = { sp = 0; elems = Array.make 64 0 }

let stack_push s v =
  if s.sp = Array.length s.elems then begin
    let e = Array.make (2 * s.sp) 0 in
    Array.blit s.elems 0 e 0 s.sp;
    s.elems <- e
  end;
  s.elems.(s.sp) <- v;
  s.sp <- s.sp + 1

let stack_clone s = { sp = s.sp; elems = Array.copy s.elems }

(* Rounded sizes are granule multiples; [huge_marker] spills the (rare)
   blocks of 0xffff granules (~1 MiB) or more to [huge_sizes]. *)
let huge_marker = 0xffff

type t = {
  m : Machine.t;
  aspace : Vm.Aspace.t; (* the address space whose heap this allocator serves *)
  heap_cap : Capability.t;
  free_lists : stack array; (* per size class: slot base addresses *)
  large_free : (int, int list) Hashtbl.t; (* rounded size -> addresses *)
  mutable live_size : Bytes.t; (* u16 per granule: live size in granules *)
  huge_sizes : (int, int) Hashtbl.t; (* granule index -> byte size *)
  mutable dirty_bits : Bytes.t; (* per-granule: freed block awaiting reuse scrub *)
  heap_base : int;
  heap_limit : int;
  mutable bump : int;
  mutable live_bytes : int;
  mutable total_allocated : int;
  mutable total_freed : int;
  mutable allocations : int;
  mutable peak_rss : int;
  mutable scrubs : int;
  mutable scrub_bytes : int;
}

let gidx t addr = (addr - t.heap_base) / granule
let meta_len t = Bytes.length t.live_size / 2

let size_entry t g = Bytes.get_uint16_le t.live_size (g * 2)

let set_size_entry t g v = Bytes.set_uint16_le t.live_size (g * 2) v

(* Record a live block's rounded size; 0 clears. *)
let set_live_size t g size =
  if size = 0 then begin
    if size_entry t g = huge_marker then Hashtbl.remove t.huge_sizes g;
    set_size_entry t g 0
  end
  else
    let gr = size / granule in
    if gr >= huge_marker then begin
      Hashtbl.replace t.huge_sizes g size;
      set_size_entry t g huge_marker
    end
    else set_size_entry t g gr

let get_live_size t g =
  match size_entry t g with
  | 0 -> 0
  | e when e = huge_marker -> Hashtbl.find t.huge_sizes g
  | e -> e * granule

(* Grow the metadata tables to cover granule indices [0, n). *)
let ensure_meta t n =
  if n > meta_len t then begin
    let n' = max n (max 1024 (2 * meta_len t)) in
    let a = Bytes.make (n' * 2) '\000' in
    Bytes.blit t.live_size 0 a 0 (Bytes.length t.live_size);
    t.live_size <- a;
    let b = Bytes.make ((n' + 7) / 8) '\000' in
    Bytes.blit t.dirty_bits 0 b 0 (Bytes.length t.dirty_bits);
    t.dirty_bits <- b
  end

let is_dirty t g =
  Char.code (Bytes.unsafe_get t.dirty_bits (g lsr 3)) land (1 lsl (g land 7)) <> 0

let set_dirty t g v =
  let byte = Char.code (Bytes.unsafe_get t.dirty_bits (g lsr 3)) in
  let bit = 1 lsl (g land 7) in
  Bytes.unsafe_set t.dirty_bits (g lsr 3)
    (Char.unsafe_chr (if v then byte lor bit else byte land lnot bit))

let create ?aspace m =
  let aspace = match aspace with Some a -> a | None -> Machine.aspace m in
  let layout = Vm.Aspace.layout aspace in
  let heap_base = layout.Layout.heap_base in
  let heap_limit = layout.Layout.heap_limit in
  let root = Capability.root ~length:(1 lsl 40) in
  let heap_cap =
    Capability.set_bounds root ~base:heap_base ~length:(heap_limit - heap_base)
  in
  assert (Capability.tag heap_cap);
  {
    m;
    aspace;
    heap_cap;
    free_lists = Array.init Sizeclass.num_classes (fun _ -> stack_create ());
    large_free = Hashtbl.create 64;
    live_size = Bytes.empty;
    huge_sizes = Hashtbl.create 8;
    dirty_bits = Bytes.empty;
    heap_base;
    heap_limit;
    bump = heap_base;
    live_bytes = 0;
    total_allocated = 0;
    total_freed = 0;
    allocations = 0;
    peak_rss = 0;
    scrubs = 0;
    scrub_bytes = 0;
  }

let heap_cap t = t.heap_cap

let note_rss t =
  let rss = Vm.Aspace.mapped_pages t.aspace in
  if rss > t.peak_rss then t.peak_rss <- rss

(* Fork: the child's heap is byte-identical to the parent's (copy-on-write),
   so its allocator state must be too. Free lists and the live/dirty sets are
   duplicated; lifetime statistics restart from zero for the new process. *)
let clone t ~aspace =
  {
    m = t.m;
    aspace;
    heap_cap = t.heap_cap;
    free_lists = Array.map stack_clone t.free_lists;
    large_free = Hashtbl.copy t.large_free;
    live_size = Bytes.copy t.live_size;
    huge_sizes = Hashtbl.copy t.huge_sizes;
    dirty_bits = Bytes.copy t.dirty_bits;
    heap_base = t.heap_base;
    heap_limit = t.heap_limit;
    bump = t.bump;
    live_bytes = t.live_bytes;
    total_allocated = 0;
    total_freed = 0;
    allocations = 0;
    peak_rss = 0;
    scrubs = 0;
    scrub_bytes = 0;
  }

let align_up x a = (x + a - 1) land lnot (a - 1)

let bump_alloc t ctx ~size ~align =
  let base = align_up t.bump align in
  if base + size > t.heap_limit then raise Out_of_memory;
  t.bump <- base + size;
  ensure_meta t (gidx t t.bump);
  Machine.map ctx ~vaddr:base ~len:size ~writable:true;
  base

(* Only called with an empty stack (malloc refills on demand), so the
   reversed push run serves slots in ascending-address order, exactly as
   the old list prepend did. *)
let carve_chunk t ctx cls =
  let slot = Sizeclass.size_of_class cls in
  let base = bump_alloc t ctx ~size:chunk_size ~align:Vm.Phys.page_size in
  let nslots = chunk_size / slot in
  let s = t.free_lists.(cls) in
  for i = nslots - 1 downto 0 do
    stack_push s (base + (i * slot))
  done

let derive t base size =
  let c = Capability.set_bounds_exact t.heap_cap ~base ~length:size in
  assert (Capability.tag c);
  Capability.restrict_perms c Perms.read_write

let malloc t ctx req =
  Machine.charge ctx Cost.malloc_fixed;
  let size = Sizeclass.rounded_size req in
  let base =
    match Sizeclass.class_of_size size with
    | Some cls ->
        let s = t.free_lists.(cls) in
        if s.sp = 0 then carve_chunk t ctx cls;
        s.sp <- s.sp - 1;
        s.elems.(s.sp)
    | None -> (
        match Hashtbl.find_opt t.large_free size with
        | Some (base :: rest) ->
            Hashtbl.replace t.large_free size rest;
            base
        | Some [] | None ->
            bump_alloc t ctx ~size ~align:(Cheri.Compress.required_alignment size))
  in
  let g = gidx t base in
  set_live_size t g size;
  t.live_bytes <- t.live_bytes + size;
  t.total_allocated <- t.total_allocated + size;
  t.allocations <- t.allocations + 1;
  let cap = derive t base size in
  (* Freed memory is "poisoned" lazily: zeroing is deferred until reuse
     (§2.2.2, footnote 7 of the paper), so recycled blocks are scrubbed
     here while fresh mappings arrive pre-zeroed. *)
  if is_dirty t g then begin
    set_dirty t g false;
    t.scrubs <- t.scrubs + 1;
    t.scrub_bytes <- t.scrub_bytes + size;
    Machine.zero ctx cap
  end
  else Machine.touch ctx cap ~write:true;
  note_rss t;
  cap

(* A base is a live allocation iff it is granule-aligned, inside the
   bumped region, and its granule's size entry is nonzero. *)
let live_size_at t base =
  if
    base land (granule - 1) <> 0
    || base < t.heap_base
    || gidx t base >= meta_len t
  then 0
  else get_live_size t (gidx t base)

let lookup_live t base op =
  match live_size_at t base with
  | 0 ->
      invalid_arg
        (Printf.sprintf "Allocator.%s: %#x is not a live allocation (double free?)" op base)
  | size -> size

let return_to_lists t ~addr ~size =
  set_dirty t (gidx t addr) true;
  match Sizeclass.class_of_size size with
  | Some cls when Sizeclass.size_of_class cls = size ->
      stack_push t.free_lists.(cls) addr
  | Some _ | None ->
      let l = Option.value ~default:[] (Hashtbl.find_opt t.large_free size) in
      Hashtbl.replace t.large_free size (addr :: l)

let withdraw t ctx cap =
  Machine.charge ctx Cost.free_fixed;
  let base = Capability.base cap in
  let size = lookup_live t base "withdraw" in
  set_live_size t (gidx t base) 0;
  t.live_bytes <- t.live_bytes - size;
  t.total_freed <- t.total_freed + size;
  size

let free t ctx cap =
  let base = Capability.base cap in
  let size = withdraw t ctx cap in
  Machine.touch ctx cap ~write:true;
  return_to_lists t ~addr:base ~size

let release_range t ctx ~addr ~size =
  Machine.charge ctx Cost.free_fixed;
  return_to_lists t ~addr ~size

let usable_size t ~addr =
  match live_size_at t addr with 0 -> None | size -> Some size
let live_bytes t = t.live_bytes
let total_allocated_bytes t = t.total_allocated
let total_freed_bytes t = t.total_freed
let allocation_count t = t.allocations
let peak_rss_pages t = t.peak_rss

let scrub_count t = t.scrubs
let scrub_bytes t = t.scrub_bytes
