(** The heap allocator (snmalloc-inspired slab allocator).

    Serves bounded capabilities out of the address space's heap region,
    mapping pages on demand and never returning address space to the
    system (as snmalloc on CheriBSD, §6.2 of the paper). Metadata —
    free lists, slot sizes — is held {e out of band}, outside the swept
    address space, matching a CHERI-enlightened allocator whose internal
    state is unreachable from client capabilities; the allocator
    re-derives capabilities from its heap-spanning progenitor rather
    than storing client pointers.

    This allocator reuses freed memory {e immediately}; temporal safety
    comes from wrapping it with {!Ccr.Mrs}, which interposes quarantine
    between [free] and reuse. *)

type t

val create : ?aspace:Vm.Aspace.t -> Sim.Machine.t -> t
(** [aspace] (default: the machine's initial address space) is the space
    whose heap region is served and whose mapped-page count feeds
    {!note_rss}. *)

val clone : t -> aspace:Vm.Aspace.t -> t
(** Fork support: duplicate the allocator's metadata (free lists, live
    and dirty sets, bump pointer) for a copy-on-write child whose heap
    contents are identical. Lifetime statistics start from zero. *)

val heap_cap : t -> Cheri.Capability.t
(** The allocator's progenitor capability spanning the whole heap. *)

val malloc : t -> Sim.Machine.ctx -> int -> Cheri.Capability.t
(** Allocate; the returned capability is tagged, has exact bounds over
    the (size-class-rounded) block and {!Cheri.Perms.read_write}. Raises
    [Out_of_memory] when the heap region is exhausted. *)

val free : t -> Sim.Machine.ctx -> Cheri.Capability.t -> unit
(** Return a block for immediate reuse. The capability must be one
    returned by [malloc] of this allocator (checked: base must be a live
    allocation). Raises [Invalid_argument] otherwise (double free or
    wild free). *)

val release_range : t -> Sim.Machine.ctx -> addr:int -> size:int -> unit
(** Dequarantine path used by the mrs shim: return the block at [addr]
    (previously [withdraw]n) to the free lists. *)

val withdraw : t -> Sim.Machine.ctx -> Cheri.Capability.t -> int
(** Remove the allocation from the live set {e without} making it
    reusable (it is entering quarantine); returns its rounded size. *)

val usable_size : t -> addr:int -> int option
(** Rounded size of the live allocation starting at [addr]. *)

(** {1 Statistics} *)

val live_bytes : t -> int
val total_allocated_bytes : t -> int
val total_freed_bytes : t -> int
val allocation_count : t -> int
val peak_rss_pages : t -> int

val scrub_count : t -> int
(** Number of reuse-time zeroings performed. *)

val scrub_bytes : t -> int
val note_rss : t -> unit
(** Fold the current mapped-page count into the peak (mrs calls this when
    quarantine grows). *)
