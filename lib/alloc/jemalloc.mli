(** A jemalloc-flavoured allocator.

    The public CheriBSD 23.11 release ships Reloaded with a lightly
    modified jemalloc rather than snmalloc (paper §10); this module
    provides that second allocator so allocator sensitivity can be
    studied (the paper's footnote 23 attributes large overhead swings to
    allocator choice alone).

    Design differences from {!Allocator} (the snmalloc-style one):
    - small classes are served from {e runs}: page-aligned spans carved
      into equal regions with an in-run occupancy bitmap (jemalloc's
      run/bin structure) rather than global free lists;
    - each bin allocates from the lowest-address non-full run
      (address-ordered first fit), improving locality of recycled memory;
    - fully-empty runs are retired to a shared run cache and reused by
      any bin.

    The temporal-safety surface (withdraw / release_range) matches
    {!Allocator}, so it can sit under a quarantine shim interchangeably. *)

type t

val create : ?aspace:Vm.Aspace.t -> Sim.Machine.t -> t
val malloc : t -> Sim.Machine.ctx -> int -> Cheri.Capability.t
val free : t -> Sim.Machine.ctx -> Cheri.Capability.t -> unit

val withdraw : t -> Sim.Machine.ctx -> Cheri.Capability.t -> int
(** Remove from the live set without making the region reusable (it is
    entering quarantine); returns the rounded size. *)

val release_range : t -> Sim.Machine.ctx -> addr:int -> size:int -> unit
(** Return a withdrawn region to its run (or the large map). *)

val usable_size : t -> addr:int -> int option
val live_bytes : t -> int
val allocation_count : t -> int
val peak_rss_pages : t -> int

val run_count : t -> int
(** Number of live small-object runs (for fragmentation studies). *)

val note_rss : t -> unit
val scrub_bytes : t -> int

val check_invariants : t -> unit
(** Walk every run and assert occupancy bitmaps agree with the live set;
    raises [Failure] on corruption. Test hook. *)
