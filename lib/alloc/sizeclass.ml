let granule = 16
let large_threshold = 16 * 1024
let page = Vm.Phys.page_size

(* Powers of two and midpoints: 16, 24, 32, 48, 64, 96, ... up to the
   large threshold. All multiples of the granule except 24, which we skip
   (tag granularity demands 16-byte multiples). *)
let sizes =
  let rec build acc s =
    if s >= large_threshold then List.rev (large_threshold :: acc)
    else
      let mid = s + (s / 2) in
      let acc = s :: acc in
      let acc = if mid < large_threshold && mid mod granule = 0 then mid :: acc else acc in
      build acc (s * 2)
  in
  Array.of_list (build [] granule)

let num_classes = Array.length sizes

let size_of_class i =
  if i < 0 || i >= num_classes then invalid_arg "Sizeclass.size_of_class";
  sizes.(i)

(* class_of_size runs on every malloc AND every free (the free lists are
   keyed by class); a linear scan over [sizes] was measurable there. The
   table maps ceil(sz / granule) straight to the class index. *)
let class_table =
  let t = Array.make ((large_threshold / granule) + 1) 0 in
  let rec find sz i = if sizes.(i) >= sz then i else find sz (i + 1) in
  for g = 0 to Array.length t - 1 do
    t.(g) <- find (g * granule) 0
  done;
  t

let class_of_size sz =
  if sz > large_threshold then None
  else Some class_table.((sz + granule - 1) / granule)

(* Large sizes are quantized to quarter-power-of-two steps (at least one
   page) so freed spans are actually reusable: without quantization every
   distinct request size would occupy its own free bucket forever. At most
   ~12.5% internal fragmentation, in line with real chunk allocators. *)
let round_large sz =
  let sz = max sz page in
  let b = ref page in
  while !b * 2 <= sz do
    b := !b * 2
  done;
  let step = max page (!b / 4) in
  let sz = (sz + step - 1) / step * step in
  Cheri.Compress.round_length ((sz + page - 1) / page * page)

let rounded_size sz =
  let sz = max sz granule in
  match class_of_size sz with
  | Some c -> sizes.(c)
  | None -> round_large sz
