(** The allocator interface the temporal-safety stack is generic over.

    The paper evaluates with snmalloc but ships with a lightly modified
    jemalloc (§10), and attributes large overhead swings to allocator
    choice alone (footnote 23); the quarantine shim therefore talks to
    allocators only through this record. *)

type t = {
  name : string;
  malloc : Sim.Machine.ctx -> int -> Cheri.Capability.t;
  free : Sim.Machine.ctx -> Cheri.Capability.t -> unit;
      (** immediate-reuse free (no temporal safety) *)
  withdraw : Sim.Machine.ctx -> Cheri.Capability.t -> int;
      (** remove from the live set for quarantine; returns rounded size *)
  release_range : Sim.Machine.ctx -> addr:int -> size:int -> unit;
      (** dequarantine: make the region reusable again *)
  live_bytes : unit -> int;
  note_rss : unit -> unit;
  peak_rss_pages : unit -> int;
  scrub_bytes : unit -> int;
  allocation_count : unit -> int;
  clone : (aspace:Vm.Aspace.t -> t) option;
      (** duplicate metadata for a copy-on-write fork child ([None] when
          the allocator does not support fork, as with the run-based
          jemalloc) *)
}

val snmalloc : Allocator.t -> t
val jemalloc : Jemalloc.t -> t
