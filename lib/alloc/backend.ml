type t = {
  name : string;
  malloc : Sim.Machine.ctx -> int -> Cheri.Capability.t;
  free : Sim.Machine.ctx -> Cheri.Capability.t -> unit;
  withdraw : Sim.Machine.ctx -> Cheri.Capability.t -> int;
  release_range : Sim.Machine.ctx -> addr:int -> size:int -> unit;
  live_bytes : unit -> int;
  note_rss : unit -> unit;
  peak_rss_pages : unit -> int;
  scrub_bytes : unit -> int;
  allocation_count : unit -> int;
  clone : (aspace:Vm.Aspace.t -> t) option;
}

let rec snmalloc a =
  {
    name = "snmalloc";
    malloc = (fun ctx size -> Allocator.malloc a ctx size);
    free = (fun ctx cap -> Allocator.free a ctx cap);
    withdraw = (fun ctx cap -> Allocator.withdraw a ctx cap);
    release_range = (fun ctx ~addr ~size -> Allocator.release_range a ctx ~addr ~size);
    live_bytes = (fun () -> Allocator.live_bytes a);
    note_rss = (fun () -> Allocator.note_rss a);
    peak_rss_pages = (fun () -> Allocator.peak_rss_pages a);
    scrub_bytes = (fun () -> Allocator.scrub_bytes a);
    allocation_count = (fun () -> Allocator.allocation_count a);
    clone = Some (fun ~aspace -> snmalloc (Allocator.clone a ~aspace));
  }

let jemalloc j =
  {
    name = "jemalloc";
    malloc = (fun ctx size -> Jemalloc.malloc j ctx size);
    free = (fun ctx cap -> Jemalloc.free j ctx cap);
    withdraw = (fun ctx cap -> Jemalloc.withdraw j ctx cap);
    release_range = (fun ctx ~addr ~size -> Jemalloc.release_range j ctx ~addr ~size);
    live_bytes = (fun () -> Jemalloc.live_bytes j);
    note_rss = (fun () -> Jemalloc.note_rss j);
    peak_rss_pages = (fun () -> Jemalloc.peak_rss_pages j);
    scrub_bytes = (fun () -> Jemalloc.scrub_bytes j);
    allocation_count = (fun () -> Jemalloc.allocation_count j);
    clone = None;
  }
