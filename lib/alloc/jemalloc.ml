module Capability = Cheri.Capability
module Perms = Cheri.Perms
module Layout = Vm.Layout
module Machine = Sim.Machine
module Cost = Sim.Cost

let run_pages = 4 (* 16 KiB runs, as jemalloc uses for small bins *)
let run_bytes = run_pages * Vm.Phys.page_size

type run = {
  r_base : int;
  r_class : int; (* size-class index *)
  r_region : int; (* bytes per region *)
  r_nregions : int;
  occupancy : Bytes.t; (* 1 byte per region: '\001' live or quarantined *)
  mutable r_used : int;
}

type t = {
  m : Machine.t;
  aspace : Vm.Aspace.t;
  heap_cap : Capability.t;
  bins : run list array; (* per class: non-full runs, address-ordered *)
  full : (int, run) Hashtbl.t; (* run base -> run, when full *)
  run_of_addr : (int, run) Hashtbl.t; (* run base page -> run *)
  mutable run_cache : int list; (* retired run bases *)
  large_free : (int, int list) Hashtbl.t;
  live : (int, int) Hashtbl.t; (* base -> rounded size *)
  dirty : (int, unit) Hashtbl.t;
  heap_limit : int;
  mutable bump : int;
  mutable live_bytes : int;
  mutable allocations : int;
  mutable peak_rss : int;
  mutable runs : int;
  mutable scrub_bytes : int;
}

let create ?aspace m =
  let aspace = match aspace with Some a -> a | None -> Machine.aspace m in
  let layout = Vm.Aspace.layout aspace in
  let heap_base = layout.Layout.heap_base in
  let heap_limit = layout.Layout.heap_limit in
  let root = Capability.root ~length:(1 lsl 40) in
  let heap_cap =
    Capability.set_bounds root ~base:heap_base ~length:(heap_limit - heap_base)
  in
  assert (Capability.tag heap_cap);
  {
    m;
    aspace;
    heap_cap;
    bins = Array.make Sizeclass.num_classes [];
    full = Hashtbl.create 64;
    run_of_addr = Hashtbl.create 256;
    run_cache = [];
    large_free = Hashtbl.create 16;
    live = Hashtbl.create 4096;
    dirty = Hashtbl.create 4096;
    heap_limit;
    bump = heap_base;
    live_bytes = 0;
    allocations = 0;
    peak_rss = 0;
    runs = 0;
    scrub_bytes = 0;
  }

let note_rss t =
  let rss = Vm.Aspace.mapped_pages t.aspace in
  if rss > t.peak_rss then t.peak_rss <- rss

let align_up x a = (x + a - 1) land lnot (a - 1)

let bump_alloc t ctx ~size ~align =
  let base = align_up t.bump align in
  if base + size > t.heap_limit then raise Out_of_memory;
  t.bump <- base + size;
  Machine.map ctx ~vaddr:base ~len:size ~writable:true;
  base

let fresh_run t ctx cls =
  let region = Sizeclass.size_of_class cls in
  let base =
    match t.run_cache with
    | b :: rest ->
        t.run_cache <- rest;
        b
    | [] -> bump_alloc t ctx ~size:run_bytes ~align:Vm.Phys.page_size
  in
  let n = run_bytes / region in
  let run =
    {
      r_base = base;
      r_class = cls;
      r_region = region;
      r_nregions = n;
      occupancy = Bytes.make n '\000';
      r_used = 0;
    }
  in
  Hashtbl.replace t.run_of_addr base run;
  t.runs <- t.runs + 1;
  run

(* insert keeping address order: lowest-address non-full run first, the
   heart of jemalloc's locality story *)
let rec insert_sorted run = function
  | [] -> [ run ]
  | r :: rest as l ->
      if run.r_base < r.r_base then run :: l else r :: insert_sorted run rest

let retire_run t run =
  Hashtbl.remove t.run_of_addr run.r_base;
  t.run_cache <- run.r_base :: t.run_cache;
  t.runs <- t.runs - 1

(* Runs are page-aligned spans of [run_pages] pages: the containing run's
   base is one of the [run_pages] page-aligned addresses at or below
   [addr]. *)
let run_containing t addr =
  let rec probe base n =
    if n = 0 then None
    else
      match Hashtbl.find_opt t.run_of_addr base with
      | Some run when addr >= run.r_base && addr < run.r_base + run_bytes ->
          Some run
      | _ -> probe (base - Vm.Phys.page_size) (n - 1)
  in
  probe (addr land lnot (Vm.Phys.page_size - 1)) run_pages

let derive t base size =
  let c = Capability.set_bounds_exact t.heap_cap ~base ~length:size in
  assert (Capability.tag c);
  Capability.restrict_perms c Perms.read_write

let alloc_small t ctx cls =
  let run =
    match t.bins.(cls) with
    | r :: _ -> r
    | [] ->
        let r = fresh_run t ctx cls in
        t.bins.(cls) <- [ r ];
        r
  in
  (* first-fit within the run *)
  let rec find i =
    if i >= run.r_nregions then invalid_arg "Jemalloc: full run in bin"
    else if Bytes.get run.occupancy i = '\000' then i
    else find (i + 1)
  in
  let i = find 0 in
  Bytes.set run.occupancy i '\001';
  run.r_used <- run.r_used + 1;
  if run.r_used = run.r_nregions then begin
    t.bins.(cls) <- List.filter (fun r -> r.r_base <> run.r_base) t.bins.(cls);
    Hashtbl.replace t.full run.r_base run
  end;
  run.r_base + (i * run.r_region)

let malloc t ctx req =
  Machine.charge ctx Cost.malloc_fixed;
  let size = Sizeclass.rounded_size req in
  let base =
    match Sizeclass.class_of_size size with
    | Some cls when Sizeclass.size_of_class cls = size && size <= run_bytes ->
        alloc_small t ctx cls
    | _ -> (
        match Hashtbl.find_opt t.large_free size with
        | Some (b :: rest) ->
            Hashtbl.replace t.large_free size rest;
            b
        | Some [] | None ->
            bump_alloc t ctx ~size ~align:(Cheri.Compress.required_alignment size))
  in
  Hashtbl.replace t.live base size;
  t.live_bytes <- t.live_bytes + size;
  t.allocations <- t.allocations + 1;
  let cap = derive t base size in
  if Hashtbl.mem t.dirty base then begin
    Hashtbl.remove t.dirty base;
    t.scrub_bytes <- t.scrub_bytes + size;
    Machine.zero ctx cap
  end
  else Machine.touch ctx cap ~write:true;
  note_rss t;
  cap

let withdraw t ctx cap =
  Machine.charge ctx Cost.free_fixed;
  let base = Capability.base cap in
  match Hashtbl.find_opt t.live base with
  | None ->
      invalid_arg
        (Printf.sprintf "Jemalloc.withdraw: %#x is not a live allocation" base)
  | Some size ->
      Hashtbl.remove t.live base;
      t.live_bytes <- t.live_bytes - size;
      size

(* Return a region to its run: flips the occupancy bit; a run emptied by
   this release leaves its bin and is retired to the cache. *)
let release_range t ctx ~addr ~size =
  Machine.charge ctx Cost.free_fixed;
  Hashtbl.replace t.dirty addr ();
  match run_containing t addr with
  | Some run when size = run.r_region ->
      let i = (addr - run.r_base) / run.r_region in
      if Bytes.get run.occupancy i = '\000' then
        invalid_arg "Jemalloc.release_range: double release";
      Bytes.set run.occupancy i '\000';
      let was_full = run.r_used = run.r_nregions in
      run.r_used <- run.r_used - 1;
      if was_full then begin
        Hashtbl.remove t.full run.r_base;
        t.bins.(run.r_class) <- insert_sorted run t.bins.(run.r_class)
      end;
      if run.r_used = 0 then begin
        t.bins.(run.r_class) <-
          List.filter (fun r -> r.r_base <> run.r_base) t.bins.(run.r_class);
        retire_run t run
      end
  | Some _ | None ->
      let l = Option.value ~default:[] (Hashtbl.find_opt t.large_free size) in
      Hashtbl.replace t.large_free size (addr :: l)

let free t ctx cap =
  let base = Capability.base cap in
  let size = withdraw t ctx cap in
  Machine.touch ctx cap ~write:true;
  release_range t ctx ~addr:base ~size

let usable_size t ~addr = Hashtbl.find_opt t.live addr
let live_bytes t = t.live_bytes
let allocation_count t = t.allocations
let peak_rss_pages t = t.peak_rss
let run_count t = t.runs
let scrub_bytes t = t.scrub_bytes

let check_invariants t =
  Hashtbl.iter
    (fun base run ->
      if base <> run.r_base then failwith "Jemalloc: run index corrupt";
      let used = ref 0 in
      Bytes.iter (fun c -> if c <> '\000' then incr used) run.occupancy;
      if !used <> run.r_used then failwith "Jemalloc: occupancy count corrupt")
    t.run_of_addr;
  Array.iteri
    (fun cls runs ->
      List.iter
        (fun r ->
          if r.r_class <> cls then failwith "Jemalloc: run in wrong bin";
          if r.r_used >= r.r_nregions then failwith "Jemalloc: full run in bin";
          if r.r_used = 0 then failwith "Jemalloc: empty run not retired")
        runs;
      ignore
        (List.fold_left
           (fun prev r ->
             if r.r_base < prev then failwith "Jemalloc: bin not address-ordered";
             r.r_base)
           min_int runs))
    t.bins
