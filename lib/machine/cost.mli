(** Cycle cost model (see DESIGN.md).

    All constants are in core clock cycles at {!clock_hz}. Cache and DRAM
    latencies live in {!Tagmem.Cache}; everything else is here. *)

val clock_hz : float
(** 2.5 GHz, Morello's clock. *)

val alu : int (** one unit of pure computation *)

val tlb_walk : int (** page-table walk on TLB miss *)

val trap : int (** trap entry + exit *)

val clg_fault_fixed : int
(** fixed software cost of a capability-load-generation fault, on top of
    the trap and the page sweep *)

val tlb_shootdown_per_core : int
val context_switch : int
val pmap_lock : int
val pte_update : int
val page_zero : int (** zeroing a fresh 4 KiB frame *)

val quiesce_per_thread : int
(** [thread_single]-style suspension bookkeeping per target thread *)

val stw_base : int (** fixed entry/exit cost of a stop-the-world phase *)

val malloc_fixed : int (** allocator fast-path bookkeeping *)

val free_fixed : int

val mrs_shim : int
(** per-call overhead of the LD_PRELOAD interposition shim wrapping the
    allocator (the paper's footnote 10 expects the shim to out-cost an
    enlightened allocator's bookkeeping) *)

val syscall_entry : int

val aspace_switch : int
(** extra cost of switching address spaces on a core (full TLB flush +
    root page-table install), on top of {!context_switch} *)

val cow_copy : int
(** duplicating a shared 4 KiB frame on a copy-on-write break (read +
    write of the whole page, tags included) *)

val fork_base : int
(** fixed kernel cost of [fork]/[exec] (process table, pmap clone setup);
    per-page PTE work is charged separately at {!pte_update}. *)

val cycles_to_ms : int -> float
val cycles_to_us : int -> float
val cycles_of_us : float -> int
