type kind =
  | Stw_request
  | Stw_stopped
  | Stw_release
  | Clg_fault
  | Context_switch
  | Epoch_begin
  | Epoch_end
  | Revoke_batch
  | Paint
  | Unpaint
  | Quarantine_enq
  | Quarantine_deq
  | Reuse
  | Tlb_shootdown
  | Clg_toggle
  | Hoard_scan
  | Page_sweep
  | Cow_fault
  | Proc_fork
  | Proc_exec
  | Proc_exit
  | Proc_kill
  | Sched_grant
  | Stw_abandon
  | Epoch_abort
  | Epoch_resume
  | Strategy_downshift
  | Quarantine_abandoned
  | Tag_corruption
  | Shootdown_retry
  | Chaos_inject
  | Req_shed
  | Req_lost
  | Brownout_shift
  | Governor_defer
  | Governor_force
  | Governor_quantum
  | Slo_violation
  | Quota_charge
  | Quota_deny
  | Quota_credit
  | Free_all
  | Custom of string

let kind_name = function
  | Stw_request -> "stw-request"
  | Stw_stopped -> "stw-stopped"
  | Stw_release -> "stw-release"
  | Clg_fault -> "clg-fault"
  | Context_switch -> "context-switch"
  | Epoch_begin -> "epoch-begin"
  | Epoch_end -> "epoch-end"
  | Revoke_batch -> "revoke-batch"
  | Paint -> "paint"
  | Unpaint -> "unpaint"
  | Quarantine_enq -> "quarantine-enq"
  | Quarantine_deq -> "quarantine-deq"
  | Reuse -> "reuse"
  | Tlb_shootdown -> "tlb-shootdown"
  | Clg_toggle -> "clg-toggle"
  | Hoard_scan -> "hoard-scan"
  | Page_sweep -> "page-sweep"
  | Cow_fault -> "cow-fault"
  | Proc_fork -> "proc-fork"
  | Proc_exec -> "proc-exec"
  | Proc_exit -> "proc-exit"
  | Proc_kill -> "proc-kill"
  | Sched_grant -> "sched-grant"
  | Stw_abandon -> "stw-abandon"
  | Epoch_abort -> "epoch-abort"
  | Epoch_resume -> "epoch-resume"
  | Strategy_downshift -> "strategy-downshift"
  | Quarantine_abandoned -> "quarantine-abandoned"
  | Tag_corruption -> "tag-corruption"
  | Shootdown_retry -> "shootdown-retry"
  | Chaos_inject -> "chaos-inject"
  | Req_shed -> "req-shed"
  | Req_lost -> "req-lost"
  | Brownout_shift -> "brownout-shift"
  | Governor_defer -> "governor-defer"
  | Governor_force -> "governor-force"
  | Governor_quantum -> "governor-quantum"
  | Slo_violation -> "slo-violation"
  | Quota_charge -> "quota-charge"
  | Quota_deny -> "quota-deny"
  | Quota_credit -> "quota-credit"
  | Free_all -> "free-all"
  | Custom s -> s

type event = {
  time : int;
  core : int;
  pid : int;
  kind : kind;
  arg : int;
  arg2 : int;
}

type t = {
  ring : event array;
  mutable next : int; (* total emitted *)
  mutable subscribers : (int * (event -> unit)) list;
  mutable next_sub : int;
  mutable warn_on_drop : bool;
  mutable warned : bool;
}

let dummy = { time = 0; core = -1; pid = 0; kind = Custom "empty"; arg = 0; arg2 = 0 }

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create";
  {
    ring = Array.make capacity dummy;
    next = 0;
    subscribers = [];
    next_sub = 0;
    warn_on_drop = false;
    warned = false;
  }

let set_warn_on_drop t flag = t.warn_on_drop <- flag

let emit t ~time ~core ?(pid = 0) ?(arg2 = 0) kind arg =
  let e = { time; core; pid; kind; arg; arg2 } in
  if t.next >= Array.length t.ring && t.warn_on_drop && not t.warned then begin
    t.warned <- true;
    Printf.eprintf
      "Trace: ring capacity %d exceeded; older events are being dropped \
       (subscribers still observe the full stream)\n%!"
      (Array.length t.ring)
  end;
  t.ring.(t.next mod Array.length t.ring) <- e;
  t.next <- t.next + 1;
  match t.subscribers with
  | [] -> ()
  | subs -> List.iter (fun (_, f) -> f e) subs

let subscribe t f =
  let id = t.next_sub in
  t.next_sub <- t.next_sub + 1;
  (* oldest-first callback order *)
  t.subscribers <- t.subscribers @ [ (id, f) ];
  id

let unsubscribe t id =
  t.subscribers <- List.filter (fun (i, _) -> i <> id) t.subscribers

let length t = min t.next (Array.length t.ring)
let total t = t.next
let dropped t = max 0 (t.next - Array.length t.ring)

let to_list t =
  let cap = Array.length t.ring in
  let n = length t in
  let first = t.next - n in
  List.init n (fun i -> t.ring.((first + i) mod cap))

let iter t f = List.iter f (to_list t)

let clear t =
  t.next <- 0;
  t.warned <- false

let pp_event fmt e =
  let pid = if e.pid = 0 then "" else Printf.sprintf " p%d" e.pid in
  if e.arg2 = 0 then
    Format.fprintf fmt "%12d c%d%s %-14s %#x" e.time e.core pid
      (kind_name e.kind) e.arg
  else
    Format.fprintf fmt "%12d c%d%s %-14s %#x %#x" e.time e.core pid
      (kind_name e.kind) e.arg e.arg2

let dump fmt ?last t =
  let events = to_list t in
  let events =
    match last with
    | None -> events
    | Some n ->
        let len = List.length events in
        List.filteri (fun i _ -> i >= len - n) events
  in
  if dropped t > 0 then
    Format.fprintf fmt "(%d events emitted; %d older events dropped)@." t.next
      (dropped t);
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) events
