type kind =
  | Stw_request
  | Stw_stopped
  | Stw_release
  | Clg_fault
  | Context_switch
  | Epoch_begin
  | Epoch_end
  | Revoke_batch
  | Paint
  | Unpaint
  | Quarantine_enq
  | Quarantine_deq
  | Reuse
  | Tlb_shootdown
  | Clg_toggle
  | Hoard_scan
  | Page_sweep
  | Cow_fault
  | Proc_fork
  | Proc_exec
  | Proc_exit
  | Proc_kill
  | Sched_grant
  | Stw_abandon
  | Epoch_abort
  | Epoch_resume
  | Strategy_downshift
  | Quarantine_abandoned
  | Tag_corruption
  | Shootdown_retry
  | Chaos_inject
  | Req_shed
  | Req_lost
  | Brownout_shift
  | Governor_defer
  | Governor_force
  | Governor_quantum
  | Slo_violation
  | Quota_charge
  | Quota_deny
  | Quota_credit
  | Free_all
  | Custom of string

let kind_name = function
  | Stw_request -> "stw-request"
  | Stw_stopped -> "stw-stopped"
  | Stw_release -> "stw-release"
  | Clg_fault -> "clg-fault"
  | Context_switch -> "context-switch"
  | Epoch_begin -> "epoch-begin"
  | Epoch_end -> "epoch-end"
  | Revoke_batch -> "revoke-batch"
  | Paint -> "paint"
  | Unpaint -> "unpaint"
  | Quarantine_enq -> "quarantine-enq"
  | Quarantine_deq -> "quarantine-deq"
  | Reuse -> "reuse"
  | Tlb_shootdown -> "tlb-shootdown"
  | Clg_toggle -> "clg-toggle"
  | Hoard_scan -> "hoard-scan"
  | Page_sweep -> "page-sweep"
  | Cow_fault -> "cow-fault"
  | Proc_fork -> "proc-fork"
  | Proc_exec -> "proc-exec"
  | Proc_exit -> "proc-exit"
  | Proc_kill -> "proc-kill"
  | Sched_grant -> "sched-grant"
  | Stw_abandon -> "stw-abandon"
  | Epoch_abort -> "epoch-abort"
  | Epoch_resume -> "epoch-resume"
  | Strategy_downshift -> "strategy-downshift"
  | Quarantine_abandoned -> "quarantine-abandoned"
  | Tag_corruption -> "tag-corruption"
  | Shootdown_retry -> "shootdown-retry"
  | Chaos_inject -> "chaos-inject"
  | Req_shed -> "req-shed"
  | Req_lost -> "req-lost"
  | Brownout_shift -> "brownout-shift"
  | Governor_defer -> "governor-defer"
  | Governor_force -> "governor-force"
  | Governor_quantum -> "governor-quantum"
  | Slo_violation -> "slo-violation"
  | Quota_charge -> "quota-charge"
  | Quota_deny -> "quota-deny"
  | Quota_credit -> "quota-credit"
  | Free_all -> "free-all"
  | Custom s -> s

type event = {
  time : int;
  core : int;
  pid : int;
  kind : kind;
  arg : int;
  arg2 : int;
}

(* The ring stores events unboxed across parallel int arrays — the hot
   [emit] path writes six ints and allocates nothing. Kinds are stored
   as small integer codes; [Custom] names are interned once and coded
   past the fixed constructors. *)

let code_stw_request = 0

let fixed_kinds =
  [|
    Stw_request; Stw_stopped; Stw_release; Clg_fault; Context_switch;
    Epoch_begin; Epoch_end; Revoke_batch; Paint; Unpaint; Quarantine_enq;
    Quarantine_deq; Reuse; Tlb_shootdown; Clg_toggle; Hoard_scan; Page_sweep;
    Cow_fault; Proc_fork; Proc_exec; Proc_exit; Proc_kill; Sched_grant;
    Stw_abandon; Epoch_abort; Epoch_resume; Strategy_downshift;
    Quarantine_abandoned; Tag_corruption; Shootdown_retry; Chaos_inject;
    Req_shed; Req_lost; Brownout_shift; Governor_defer; Governor_force;
    Governor_quantum; Slo_violation; Quota_charge; Quota_deny; Quota_credit;
    Free_all;
  |]

let custom_base = Array.length fixed_kinds

let fixed_code = function
  | Stw_request -> 0
  | Stw_stopped -> 1
  | Stw_release -> 2
  | Clg_fault -> 3
  | Context_switch -> 4
  | Epoch_begin -> 5
  | Epoch_end -> 6
  | Revoke_batch -> 7
  | Paint -> 8
  | Unpaint -> 9
  | Quarantine_enq -> 10
  | Quarantine_deq -> 11
  | Reuse -> 12
  | Tlb_shootdown -> 13
  | Clg_toggle -> 14
  | Hoard_scan -> 15
  | Page_sweep -> 16
  | Cow_fault -> 17
  | Proc_fork -> 18
  | Proc_exec -> 19
  | Proc_exit -> 20
  | Proc_kill -> 21
  | Sched_grant -> 22
  | Stw_abandon -> 23
  | Epoch_abort -> 24
  | Epoch_resume -> 25
  | Strategy_downshift -> 26
  | Quarantine_abandoned -> 27
  | Tag_corruption -> 28
  | Shootdown_retry -> 29
  | Chaos_inject -> 30
  | Req_shed -> 31
  | Req_lost -> 32
  | Brownout_shift -> 33
  | Governor_defer -> 34
  | Governor_force -> 35
  | Governor_quantum -> 36
  | Slo_violation -> 37
  | Quota_charge -> 38
  | Quota_deny -> 39
  | Quota_credit -> 40
  | Free_all -> 41
  | Custom _ -> invalid_arg "Trace.fixed_code"

type t = {
  mask : int; (* capacity - 1; capacity is a power of two *)
  times : int array;
  cores : int array;
  pids : int array;
  kinds : int array;
  args : int array;
  arg2s : int array;
  mutable next : int; (* total emitted *)
  (* interning table for [Custom] kinds *)
  custom_ids : (string, int) Hashtbl.t;
  mutable custom_names : string array;
  mutable ncustom : int;
  (* subscribers, oldest-first, in a growable array *)
  mutable sub_ids : int array;
  mutable sub_fns : (event -> unit) array;
  mutable nsubs : int;
  mutable has_subs : bool;
  mutable next_sub : int;
  mutable warn_on_drop : bool;
  mutable warned : bool;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create";
  let cap = pow2_at_least capacity 1 in
  {
    mask = cap - 1;
    times = Array.make cap 0;
    cores = Array.make cap 0;
    pids = Array.make cap 0;
    kinds = Array.make cap code_stw_request;
    args = Array.make cap 0;
    arg2s = Array.make cap 0;
    next = 0;
    custom_ids = Hashtbl.create 8;
    custom_names = [||];
    ncustom = 0;
    sub_ids = [||];
    sub_fns = [||];
    nsubs = 0;
    has_subs = false;
    next_sub = 0;
    warn_on_drop = false;
    warned = false;
  }

let capacity t = t.mask + 1

let set_warn_on_drop t flag = t.warn_on_drop <- flag

let intern t name =
  match Hashtbl.find_opt t.custom_ids name with
  | Some id -> id
  | None ->
      let id = t.ncustom in
      Hashtbl.add t.custom_ids name id;
      if id >= Array.length t.custom_names then begin
        let grown = Array.make (max 8 (2 * (id + 1))) "" in
        Array.blit t.custom_names 0 grown 0 t.ncustom;
        t.custom_names <- grown
      end;
      t.custom_names.(id) <- name;
      t.ncustom <- id + 1;
      id

let kind_code t = function
  | Custom s -> custom_base + intern t s
  | k -> fixed_code k

let kind_of_code t code =
  if code < custom_base then fixed_kinds.(code)
  else Custom t.custom_names.(code - custom_base)

let event_at t j =
  {
    time = t.times.(j);
    core = t.cores.(j);
    pid = t.pids.(j);
    kind = kind_of_code t t.kinds.(j);
    arg = t.args.(j);
    arg2 = t.arg2s.(j);
  }

let emit t ~time ~core ?(pid = 0) ?(arg2 = 0) kind arg =
  let i = t.next in
  if i > t.mask && t.warn_on_drop && not t.warned then begin
    t.warned <- true;
    Printf.eprintf
      "Trace: ring capacity %d exceeded; older events are being dropped \
       (subscribers still observe the full stream)\n%!"
      (t.mask + 1)
  end;
  let j = i land t.mask in
  t.times.(j) <- time;
  t.cores.(j) <- core;
  t.pids.(j) <- pid;
  t.kinds.(j) <- kind_code t kind;
  t.args.(j) <- arg;
  t.arg2s.(j) <- arg2;
  t.next <- i + 1;
  if t.has_subs then begin
    let e = { time; core; pid; kind; arg; arg2 } in
    for k = 0 to t.nsubs - 1 do
      t.sub_fns.(k) e
    done
  end

let subscribe t f =
  let id = t.next_sub in
  t.next_sub <- t.next_sub + 1;
  (* oldest-first callback order: append at the tail of the array *)
  if t.nsubs >= Array.length t.sub_ids then begin
    let cap = max 4 (2 * (t.nsubs + 1)) in
    let ids = Array.make cap 0 and fns = Array.make cap (fun (_ : event) -> ()) in
    Array.blit t.sub_ids 0 ids 0 t.nsubs;
    Array.blit t.sub_fns 0 fns 0 t.nsubs;
    t.sub_ids <- ids;
    t.sub_fns <- fns
  end;
  t.sub_ids.(t.nsubs) <- id;
  t.sub_fns.(t.nsubs) <- f;
  t.nsubs <- t.nsubs + 1;
  t.has_subs <- true;
  id

let unsubscribe t id =
  let w = ref 0 in
  for r = 0 to t.nsubs - 1 do
    if t.sub_ids.(r) <> id then begin
      t.sub_ids.(!w) <- t.sub_ids.(r);
      t.sub_fns.(!w) <- t.sub_fns.(r);
      incr w
    end
  done;
  t.nsubs <- !w;
  t.has_subs <- !w > 0

let length t = min t.next (t.mask + 1)
let total t = t.next
let dropped t = max 0 (t.next - (t.mask + 1))

let to_list t =
  let n = length t in
  let first = t.next - n in
  List.init n (fun i -> event_at t ((first + i) land t.mask))

let iter t f = List.iter f (to_list t)

let clear t =
  t.next <- 0;
  t.warned <- false

let pp_event fmt e =
  let pid = if e.pid = 0 then "" else Printf.sprintf " p%d" e.pid in
  if e.arg2 = 0 then
    Format.fprintf fmt "%12d c%d%s %-14s %#x" e.time e.core pid
      (kind_name e.kind) e.arg
  else
    Format.fprintf fmt "%12d c%d%s %-14s %#x %#x" e.time e.core pid
      (kind_name e.kind) e.arg e.arg2

let dump fmt ?last t =
  let events = to_list t in
  let events =
    match last with
    | None -> events
    | Some n ->
        let len = List.length events in
        List.filteri (fun i _ -> i >= len - n) events
  in
  if dropped t > 0 then
    Format.fprintf fmt "(%d events emitted; %d older events dropped)@." t.next
      (dropped t);
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) events
