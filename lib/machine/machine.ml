module Capability = Cheri.Capability
module Mem = Tagmem.Mem
module Cache = Tagmem.Cache
module Pte = Vm.Pte
module Pmap = Vm.Pmap
module Tlb = Vm.Tlb
module Phys = Vm.Phys
module Aspace = Vm.Aspace
module Layout = Vm.Layout

type config = {
  cores : int;
  mem_bytes : int;
  heap_bytes : int;
  quantum : int;
  seed : int;
}

let default_config =
  {
    cores = 4;
    mem_bytes = 64 * 1024 * 1024;
    heap_bytes = 16 * 1024 * 1024;
    quantum = 4096;
    seed = 42;
  }

type state =
  | Created
  | Runnable
  | Running
  | Sleeping
  | Waiting of condvar
  | Waiting_stw
  | Parked of state
  | Finished

and condvar = { mutable waiters : thread list }

and thread = {
  tid : int;
  name : string;
  tcore : int;
  user : bool;
  pid : int;
  mutable asp : Aspace.t;
  regs : Regfile.t;
  body : ctx -> unit;
  mutable state : state;
  mutable wake_time : int;
  mutable in_syscall : bool;
  mutable syscall_drain : int;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable cpu : int;
  mutable last_ran : int;
  mutable slice_start : int;
  mutable killed : bool;
  mutable sp_checked : bool;
      (* a stop-the-world checkpoint already ran in the current slice
         and did not park; reset at every resume. Lets [safe_point_run]
         skip re-reading [m.stw] for the rest of the slice. *)
}

and core = {
  cid : int;
  mutable clock : int;
  mutable clg : bool;
  mutable casid : int; (* asid of the currently-installed address space *)
  cache : Cache.t;
  tlb : Tlb.t;
  mutable resident : int;
  mutable busy : int;
}

and stw = {
  initiator : thread;
  t0 : int;
  deadline : int option; (* watchdog: give up waiting past this time *)
  mutable pending : thread list;
  mutable parked : thread list;
  mutable stopped_at : int;
}

and t = {
  cfg : config;
  mem : Mem.t;
  phys : Phys.t;
  aspace : Aspace.t;
  cores : core array;
  mutable threads : thread list; (* in spawn order *)
  mutable next_tid : int;
  mutable seq : int;
  mutable stw : stw option;
  (* CLG fault handlers and load filters are per address space: each
     process's revoker registers under its own asid. *)
  clg_handlers : (int, ctx -> vaddr:int -> Pte.t -> unit) Hashtbl.t;
  load_filters : (int, ctx -> Capability.t -> Capability.t) Hashtbl.t;
  mutable store_hook : (vaddr:int -> Capability.t -> unit) option;
  (* Fault-injection hooks (lib/chaos): generic callbacks so this layer
     knows nothing about fault schedules. All default to absent. *)
  mutable drain_hook : (ctx -> int -> int) option;
      (* rewrite the uninterruptible drain charged when a quiesce
         catches this thread mid-syscall *)
  mutable ack_hook : (core:int -> bool) option;
      (* [true] = this core's shootdown ack was lost; the IPI loop
         retries (bounded) until the ack lands *)
  mutable tag_hook : (pa:int -> bool) option;
      (* [true] = this tag read returns corrupted data once; the
         machine detects it (tag parity), charges a re-read, retries *)
  mutable sched_oracle : (default:thread -> thread list -> thread) option;
      (* model-checking hook: when installed, every scheduler pick
         presents ALL eligible threads (spawn order) plus the thread the
         built-in policy would choose, and runs whatever the oracle
         returns instead *)
  prng : Prng.t;
  mutable ctx_switches : int;
  mutable stw_count : int;
  mutable clg_faults : int;
  mutable park_busy : int; (* STW parks caught in a runnable state *)
  mutable park_idle : int; (* STW parks of already-blocked threads *)
  park_debug : bool; (* CCR_PARK_DEBUG, read once at creation *)
  mutable trace : Trace.t option;
}

and ctx = { m : t; th : thread }

exception Deadlock of string

exception
  Capability_fault of { cap : Capability.t; op : string; vaddr : int }

exception Page_fault of { vaddr : int; write : bool }

exception Quiesce_timeout of { stalled : int; waited : int }
(* A watchdogged stop-the-world gave up: [stalled] threads never parked
   (or parked past the deadline) after [waited] cycles. The world has
   already been released when this is raised. *)

exception Thread_killed
(* Raised inside a fiber whose thread was torn down by [kill_pid]; the
   scheduler discontinues the stored continuation with it so that
   [Fun.protect] finalizers (lock releases, gate releases) run. *)

type _ Effect.t += Yield : unit Effect.t

let page_size = Phys.page_size

let create cfg =
  let mem = Mem.create ~size:cfg.mem_bytes in
  let phys = Phys.create mem in
  let layout = Layout.make ~heap_bytes:cfg.heap_bytes in
  let aspace = Aspace.create phys layout ~asid:0 in
  (* The shadow bitmap is a kernel-provided object: mapped eagerly,
     writable, but never allowed to carry capabilities. *)
  let _ =
    Aspace.map_range aspace ~vaddr:layout.Layout.shadow_base
      ~len:(layout.Layout.shadow_limit - layout.Layout.shadow_base)
      ~writable:true
  in
  Pmap.iter (Aspace.pmap aspace) ~f:(fun _ pte -> pte.Pte.cap_store <- false);
  let cores =
    Array.init cfg.cores (fun cid ->
        {
          cid;
          clock = 0;
          clg = false;
          casid = 0;
          cache = Cache.create ();
          tlb = Tlb.create ();
          resident = -1;
          busy = 0;
        })
  in
  {
    cfg;
    mem;
    phys;
    aspace;
    cores;
    threads = [];
    next_tid = 0;
    seq = 0;
    stw = None;
    clg_handlers = Hashtbl.create 8;
    load_filters = Hashtbl.create 8;
    store_hook = None;
    drain_hook = None;
    ack_hook = None;
    tag_hook = None;
    sched_oracle = None;
    prng = Prng.create ~seed:cfg.seed;
    ctx_switches = 0;
    stw_count = 0;
    clg_faults = 0;
    park_busy = 0;
    park_idle = 0;
    park_debug = Sys.getenv_opt "CCR_PARK_DEBUG" <> None;
    trace = None;
  }

let mem m = m.mem
let aspace m = m.aspace
let layout m = Aspace.layout m.aspace
let prng m = m.prng
let num_cores m = Array.length m.cores
let core_clock m i = m.cores.(i).clock

let global_time m =
  Array.fold_left (fun acc c -> max acc c.clock) 0 m.cores

let cache_stats m i = Cache.stats m.cores.(i).cache
let attach_tracer m t =
  (match t with Some tr -> Trace.set_warn_on_drop tr true | None -> ());
  m.trace <- t

let tracer m = m.trace

let trace_emit m ~time ~core ?(pid = 0) ?(arg2 = 0) kind arg =
  match m.trace with
  | None -> ()
  | Some t -> Trace.emit t ~time ~core ~pid ~arg2 kind arg

let spawn m ~name ~core ?(user = true) ?(pid = 0) ?aspace body =
  if core < 0 || core >= Array.length m.cores then invalid_arg "Machine.spawn: core";
  let asp = match aspace with Some a -> a | None -> m.aspace in
  let th =
    {
      tid = m.next_tid;
      name;
      tcore = core;
      user;
      pid;
      asp;
      regs = Regfile.create ();
      body;
      state = Created;
      wake_time = 0;
      in_syscall = false;
      syscall_drain = 0;
      cont = None;
      cpu = 0;
      last_ran = 0;
      slice_start = 0;
      killed = false;
      sp_checked = false;
    }
  in
  m.next_tid <- m.next_tid + 1;
  m.threads <- m.threads @ [ th ];
  th

let thread_name th = th.name
let thread_id th = th.tid
let thread_cpu_cycles th = th.cpu
let thread_pid th = th.pid
let thread_aspace th = th.asp
let regs th = th.regs
let self ctx = ctx.th
let machine ctx = ctx.m
let core_id ctx = ctx.th.tcore
let core_of ctx = ctx.m.cores.(ctx.th.tcore)
let now ctx = (core_of ctx).clock
let ctx_pid ctx = ctx.th.pid
let ctx_aspace ctx = ctx.th.asp
let user_threads m = List.filter (fun th -> th.user) m.threads
let find_thread m name = List.find_opt (fun th -> th.name = name) m.threads
let core_asid m i = m.cores.(i).casid

(* Host-side: rebind a thread to another address space; the switch takes
   architectural effect (TLB flush, generation resync) at its next
   resume. Used by [exec] to move a process's service threads over. *)
let assign_aspace th a = th.asp <- a

let aspace_of_pid m pid =
  let rec find = function
    | [] -> None
    | th :: rest ->
        if th.pid = pid && th.state <> Finished then Some th.asp
        else find rest
  in
  find m.threads

let charge ctx n =
  assert (n >= 0);
  let c = core_of ctx in
  c.clock <- c.clock + n;
  c.busy <- c.busy + n;
  ctx.th.cpu <- ctx.th.cpu + n

(* Earliest simulated instant at which [th] could next be scheduled, or
   [None] if it cannot run until some event changes its state. Defined
   here (rather than with the scheduler below) because the yield fast
   path in {!safe_point} consults it. *)
let eligible_time m th =
  let c = m.cores.(th.tcore) in
  match th.state with
  | Created | Runnable -> Some (max c.clock th.wake_time)
  | Sleeping -> Some (max c.clock th.wake_time)
  | Waiting_stw -> (
      (* A watchdogged STW initiator is schedulable at its deadline even
         if the quiesce never completes; without a deadline it can only
         be woken by [wake_initiator]. *)
      match m.stw with
      | Some s when s.initiator.tid = th.tid && s.deadline <> None ->
          Some (max c.clock th.wake_time)
      | _ -> None)
  | Running | Waiting _ | Parked _ | Finished -> None

(* Sole-eligible yield fast path: when yielding at [tmine] while every
   other thread is either unschedulable or strictly later, [pick] is
   guaranteed to choose this very thread again with nothing running in
   between (ties lose to the incumbent's larger [last_ran], hence the
   strict [>]). The caller then replicates [resume]'s bookkeeping inline
   — clock advance, slice reset, [sp_checked], [seq]/[last_ran] — and
   skips the fiber round trip entirely, which costs an effect capture
   plus a continuation switch per quantum. Disabled under an STW (parking
   must go through the real scheduler) and under a scheduling oracle
   (the oracle must be offered every candidate set). *)
let sole_eligible m th tmine =
  (match m.stw with None -> true | Some _ -> false)
  && (match m.sched_oracle with None -> true | Some _ -> false)
  && List.for_all
       (fun other ->
         other.tid = th.tid
         ||
         match eligible_time m other with
         | None -> true
         | Some t -> t > tmine)
       m.threads

(* [resume]'s self-resume bookkeeping, exactly: same-core, same-resident,
   same-aspace, so no context-switch or TLB work applies. *)
let self_resume ctx tmine =
  let th = ctx.th in
  let c = core_of ctx in
  c.clock <- max c.clock tmine;
  th.slice_start <- c.clock;
  th.sp_checked <- false;
  ctx.m.seq <- ctx.m.seq + 1;
  th.last_ran <- ctx.m.seq

(* ---- stop-the-world bookkeeping ---- *)

let remove_thread l th = List.filter (fun x -> x.tid <> th.tid) l

let wake_initiator s =
  let ini = s.initiator in
  (match ini.state with
  | Waiting_stw ->
      ini.state <- Runnable;
      (* With a watchdog armed, never sleep past the deadline even if
         the quiesce nominally completed later (a long syscall drain):
         the initiator wakes at the deadline and abandons the pause.
         [wake_time] was pre-set to the deadline when the wait began,
         so it must be overwritten, not maxed. *)
      (match s.deadline with
      | None -> ini.wake_time <- max ini.wake_time s.stopped_at
      | Some d -> ini.wake_time <- min d (max s.t0 s.stopped_at))
  | _ -> ());
  ()

(* Park [th] in place at [time] (plus syscall drain if applicable),
   remembering the state to restore at release. The busy/idle counters
   live in the machine (not module globals): campaigns fan machines out
   across domains with [Parallel.Pool.map], and shared refs would race. *)
let park m s th ~time =
  (match th.state with
   | Running | Runnable | Created ->
       m.park_busy <- m.park_busy + 1;
       if m.park_debug then
         Printf.eprintf "park busy: %s at %d\n" th.name time
   | _ -> m.park_idle <- m.park_idle + 1);
  let time = if th.in_syscall then time + th.syscall_drain else time in
  s.pending <- remove_thread s.pending th;
  s.parked <- th :: s.parked;
  s.stopped_at <- max s.stopped_at time;
  (match th.state with
  | Running | Created -> th.state <- Parked Runnable
  | st -> th.state <- Parked st);
  if s.pending = [] then wake_initiator s

let park_counts m = (m.park_busy, m.park_idle)

let perform_yield () = Effect.perform Yield

(* The single safe-point/stw check every blocking or yielding operation
   goes through. Returns after any STW parking has been resolved. *)
let checkpoint ctx =
  match ctx.m.stw with
  | Some s
    when ctx.th.user
         && ctx.th.tid <> s.initiator.tid
         && List.exists (fun x -> x.tid = ctx.th.tid) s.pending ->
      let time = max (core_of ctx).clock s.t0 in
      park ctx.m s ctx.th ~time;
      perform_yield ()
  | Some _ | None -> ()

(* Quantum-expiry yield shared by {!safe_point} and {!safe_point_run}:
   self-resumes inline when this thread is the sole-eligible one. *)
let quantum_yield ctx =
  let th = ctx.th in
  let tmine = max (core_of ctx).clock th.wake_time in
  if sole_eligible ctx.m th tmine then self_resume ctx tmine
  else begin
    th.state <- Runnable;
    perform_yield ()
  end

let safe_point ctx =
  checkpoint ctx;
  let c = core_of ctx in
  if c.clock - ctx.th.slice_start >= ctx.m.cfg.quantum then quantum_yield ctx

(* Batched safe point for op-stream runs: observably identical to
   {!safe_point}, but the STW checkpoint is re-executed only on the first
   call after a resume. Soundness: the scheduler is cooperative and
   single-domain, so while a thread runs uninterrupted no other thread
   can install a stop-the-world or add it to a pending set — [m.stw] and
   the thread's membership in [s.pending] are frozen for the rest of the
   slice once one checkpoint has seen them. [sp_checked] is set before
   the checkpoint runs: if the checkpoint parks (yields), [resume] clears
   the flag, and the loop re-checks against whatever world greeted the
   wakeup. The quantum check is preserved on every call so preemption
   yields land at the same simulated instants as the per-op path. *)
let safe_point_run ctx =
  let th = ctx.th in
  while not th.sp_checked do
    th.sp_checked <- true;
    checkpoint ctx
  done;
  let c = core_of ctx in
  if c.clock - th.slice_start >= ctx.m.cfg.quantum then quantum_yield ctx

let yield ctx =
  checkpoint ctx;
  quantum_yield ctx

let sleep ctx n =
  checkpoint ctx;
  if n > 0 then begin
    let th = ctx.th in
    th.wake_time <- (core_of ctx).clock + n;
    (* Sole-eligible: the scheduler would re-pick this thread at its own
       wake time with nothing in between, so jump the core clock there
       directly. Any thread eligible before (or at) the wake time takes
       the real scheduler path. *)
    if sole_eligible ctx.m th th.wake_time then self_resume ctx th.wake_time
    else begin
      th.state <- Sleeping;
      perform_yield ()
    end
  end

let condvar () = { waiters = [] }

(* Register on the condvar before the STW checkpoint: a thread parked at
   the checkpoint must already be a waiter, so a broadcast issued while
   it is parked (or between the release and its resume) flips its parked
   state to runnable instead of being lost. Registering after the
   checkpoint loses exactly those wakeups. *)
let wait ctx cv =
  cv.waiters <- ctx.th :: cv.waiters;
  ctx.th.state <- Waiting cv;
  checkpoint ctx;
  perform_yield ()

let broadcast ctx cv =
  let t = (core_of ctx).clock in
  List.iter
    (fun th ->
      (match th.state with
      | Waiting _ ->
          th.state <- Runnable;
          th.wake_time <- max th.wake_time t
      | Parked (Waiting _) ->
          th.state <- Parked Runnable;
          th.wake_time <- max th.wake_time t
      | _ -> ());
      ())
    cv.waiters;
  cv.waiters <- []

(* Host-side teardown of every user thread belonging to [pid] (an
   external kill, as opposed to the thread running off the end of its
   body). Marked threads die at their next resume: the scheduler
   discontinues their continuation with [Thread_killed] so finalizers
   run. Blocked threads are made schedulable so the death is prompt;
   threads parked under an active STW stay parked (they are quiesced)
   and die after the release. Returns the number of threads killed. *)
let kill_pid m pid =
  let n = ref 0 in
  List.iter
    (fun th ->
      if th.user && th.pid = pid && th.state <> Finished && not th.killed then begin
        incr n;
        th.killed <- true;
        match th.state with
        | Waiting _ ->
            (* stays on the condvar's waiter list; broadcast skips
               non-Waiting threads so the stale entry is harmless *)
            th.state <- Runnable
        | Sleeping ->
            th.state <- Runnable;
            th.wake_time <- m.cores.(th.tcore).clock
        | Parked _ -> th.state <- Parked Runnable
        | Created | Runnable | Running | Waiting_stw | Finished -> ()
      end)
    m.threads;
  !n

let set_drain_hook m h = m.drain_hook <- h
let set_sched_oracle m o = m.sched_oracle <- o
let set_shootdown_ack_hook m h = m.ack_hook <- h
let set_tag_read_hook m h = m.tag_hook <- h

let enter_syscall ctx ~drain =
  charge ctx Cost.syscall_entry;
  let drain = match ctx.m.drain_hook with Some h -> h ctx drain | None -> drain in
  ctx.th.in_syscall <- true;
  ctx.th.syscall_drain <- max 0 drain

let exit_syscall ctx =
  ctx.th.in_syscall <- false;
  ctx.th.syscall_drain <- 0

type stw_report = { requested_at : int; stopped_at : int; released_at : int }

(* Restore every parked thread and drop the stw record. Shared by the
   normal release, the watchdog abandon, and the exceptional unwind. *)
let release_world m s ~released_at =
  List.iter
    (fun x ->
      match x.state with
      | Parked saved ->
          x.state <- saved;
          x.wake_time <- max x.wake_time released_at
      | _ -> ())
    s.parked;
  m.stw <- None

let stop_the_world ctx ?scope ?timeout f =
  let m = ctx.m and th = ctx.th in
  if th.user then invalid_arg "stop_the_world: user threads may not stop the world";
  if m.stw <> None then invalid_arg "stop_the_world: nested";
  charge ctx Cost.stw_base;
  let t0 = (core_of ctx).clock in
  let deadline =
    match timeout with
    | None -> None
    | Some dt -> if dt <= 0 then invalid_arg "stop_the_world: timeout" else Some (t0 + dt)
  in
  let in_scope x =
    match scope with None -> true | Some pids -> List.mem x.pid pids
  in
  let targets =
    List.filter (fun x -> x.user && x.state <> Finished && in_scope x) m.threads
  in
  let s =
    { initiator = th; t0; deadline; pending = targets; parked = []; stopped_at = t0 }
  in
  m.stw <- Some s;
  m.stw_count <- m.stw_count + 1;
  (* Threads that are off-core (blocked, sleeping, not yet started) are
     suspended in place; running/runnable ones park at their next safe
     point. *)
  List.iter
    (fun x ->
      match x.state with
      | Runnable | Running -> ()
      | Created | Sleeping | Waiting _ ->
          park m s x ~time:(max m.cores.(x.tcore).clock t0)
      | Waiting_stw | Parked _ | Finished -> ())
    s.pending;
  if s.pending <> [] then begin
    th.state <- Waiting_stw;
    (* With a watchdog armed the initiator is independently schedulable
       at the deadline (see [eligible_time]); otherwise only
       [wake_initiator] can wake it. *)
    (match deadline with Some d -> th.wake_time <- d | None -> ());
    perform_yield ()
  end;
  charge ctx (Cost.quiesce_per_thread * List.length targets);
  trace_emit m ~time:t0 ~core:th.tcore ~pid:th.pid Trace.Stw_request
    (List.length targets);
  let timed_out =
    match deadline with
    | None -> false
    | Some d -> s.pending <> [] || s.stopped_at > d
  in
  if timed_out then begin
    (* Quiesce watchdog: some thread never reached a safe point (or its
       uninterruptible drain runs past the deadline). Give the world
       back exactly as found and report the stall to the caller. *)
    let now = max (core_of ctx).clock t0 in
    let stalled = List.length s.pending in
    trace_emit m ~time:now ~core:th.tcore ~pid:th.pid ~arg2:(now - t0)
      Trace.Stw_abandon stalled;
    release_world m s ~released_at:now;
    raise (Quiesce_timeout { stalled; waited = now - t0 })
  end;
  let stopped_at = max s.stopped_at (core_of ctx).clock in
  trace_emit m ~time:stopped_at ~core:th.tcore ~pid:th.pid Trace.Stw_stopped 0;
  let result =
    try f ()
    with e ->
      (* Never leave the machine wedged: an exception inside the paused
         section (an induced sweep crash, a protocol failure) must still
         release every parked thread before unwinding. *)
      release_world m s ~released_at:(core_of ctx).clock;
      raise e
  in
  let released_at = (core_of ctx).clock in
  trace_emit m ~time:released_at ~core:th.tcore ~pid:th.pid Trace.Stw_release
    (released_at - t0);
  release_world m s ~released_at;
  (result, { requested_at = t0; stopped_at; released_at })

(* ---- CLG ---- *)

(* Toggle the CLG of the caller's address space: the per-core bit flips
   only on cores that have this space installed; cores running other
   processes keep their own generation and resync at their next
   address-space switch. With a single process every core matches, which
   is exactly the old machine-wide behaviour. *)
let toggle_clg ctx =
  let m = ctx.m in
  (match m.stw with
  | Some s when s.initiator.tid = ctx.th.tid -> ()
  | _ -> invalid_arg "toggle_clg: requires the world stopped by the caller");
  let asid = Aspace.asid ctx.th.asp in
  Array.iter
    (fun c ->
      if c.casid = asid then begin
        c.clg <- not c.clg;
        charge ctx Cost.alu
      end)
    m.cores;
  let pmap = Aspace.pmap ctx.th.asp in
  Pmap.set_generation pmap (not (Pmap.generation pmap));
  trace_emit m ~time:(core_of ctx).clock ~core:ctx.th.tcore ~pid:ctx.th.pid
    Trace.Clg_toggle
    (if Pmap.generation pmap then 1 else 0)

let core_clg m i = m.cores.(i).clg

let set_clg_fault_handler m ?(asid = 0) h =
  match h with
  | None -> Hashtbl.remove m.clg_handlers asid
  | Some h -> Hashtbl.replace m.clg_handlers asid h

let set_cap_load_filter m ?(asid = 0) f =
  match f with
  | None -> Hashtbl.remove m.load_filters asid
  | Some f -> Hashtbl.replace m.load_filters asid f

let set_cap_store_hook m h = m.store_hook <- h

(* ---- translation ---- *)

let rec translate_entry ctx va ~write =
  let vpage = va / page_size in
  let c = core_of ctx in
  let e =
    match Tlb.lookup c.tlb ~vpage with
    | Some e -> e
    | None -> (
        charge ctx Cost.tlb_walk;
        match Pmap.lookup (Aspace.pmap ctx.th.asp) ~vpage with
        | None -> raise (Page_fault { vaddr = va; write })
        | Some pte -> Tlb.insert c.tlb ~vpage pte)
  in
  if write && not e.Tlb.pte.Pte.writable then
    if e.Tlb.pte.Pte.cow then begin
      (* Copy-on-write break: trap, privatise the frame under the pmap
         lock, and retry. The PTE is mutated in place, so sibling cores
         sharing this space observe the new frame through their own TLB
         entries; no cross-space effect is possible since each space has
         private PTEs. *)
      charge ctx Cost.trap;
      let pmap = Aspace.pmap ctx.th.asp in
      let contended = Pmap.lock pmap ~who:ctx.th.tid in
      charge ctx (if contended then 2 * Cost.pmap_lock else Cost.pmap_lock);
      let copied =
        Fun.protect
          ~finally:(fun () -> Pmap.unlock pmap ~who:ctx.th.tid)
          (fun () ->
            if e.Tlb.pte.Pte.cow then Aspace.cow_break ctx.th.asp ~vpage
            else false (* raced with a sibling thread's break *))
      in
      charge ctx Cost.pte_update;
      if copied then charge ctx Cost.cow_copy;
      Tlb.refresh e;
      trace_emit ctx.m ~time:c.clock ~core:ctx.th.tcore ~pid:ctx.th.pid
        ~arg2:(if copied then 1 else 0)
        Trace.Cow_fault va;
      translate_entry ctx va ~write
    end
    else raise (Page_fault { vaddr = va; write })
  else e

let translate ctx va =
  match
    try Some (translate_entry ctx va ~write:false) with Page_fault _ -> None
  with
  | None -> None
  | Some e ->
      Some (Phys.frame_addr e.Tlb.pte.Pte.frame + (va land (page_size - 1)), e.Tlb.pte)

(* ---- data access ---- *)

let data_access ctx cap ~width ~write ~op =
  safe_point ctx;
  let ok = if write then Capability.can_store ~width cap else Capability.can_load ~width cap in
  if not ok then
    raise (Capability_fault { cap; op; vaddr = Capability.addr cap });
  let va = Capability.addr cap in
  let e = translate_entry ctx va ~write in
  let pa = Phys.frame_addr e.Tlb.pte.Pte.frame + (va land (page_size - 1)) in
  charge ctx (Cache.access (core_of ctx).cache ~addr:pa ~write);
  pa

(* Address-parameterized twin of [data_access]: semantically the access
   [f ctx (Capability.set_addr cap va)] without materialising the moved
   capability, and with the batched [safe_point_run] in place of the
   per-op [safe_point] (same observable behaviour, see above). The moved
   capability is only built on the (run-ending) fault path, so the fault
   payload matches the reference access byte for byte. *)
let data_access_at ctx cap va ~width ~write ~op =
  safe_point_run ctx;
  let ok =
    if write then Capability.can_store_at ~width cap ~addr:va
    else Capability.can_load_at ~width cap ~addr:va
  in
  if not ok then
    raise (Capability_fault { cap = Capability.set_addr cap va; op; vaddr = va });
  let e = translate_entry ctx va ~write in
  let pa = Phys.frame_addr e.Tlb.pte.Pte.frame + (va land (page_size - 1)) in
  charge ctx (Cache.access (core_of ctx).cache ~addr:pa ~write);
  pa

let load_u64 ctx cap =
  let pa = data_access ctx cap ~width:8 ~write:false ~op:"load_u64" in
  Mem.read_u64 ctx.m.mem pa

let store_u64 ctx cap v =
  let pa = data_access ctx cap ~width:8 ~write:true ~op:"store_u64" in
  Mem.write_u64 ctx.m.mem pa v

let touch_u64_at ctx cap va =
  ignore (data_access_at ctx cap va ~width:8 ~write:false ~op:"load_u64")

let store_u64_at ctx cap va v =
  let pa = data_access_at ctx cap va ~width:8 ~write:true ~op:"store_u64" in
  Mem.write_u64 ctx.m.mem pa v

let load_u64_bit ctx cap va ~bit =
  let pa = data_access_at ctx cap va ~width:8 ~write:false ~op:"load_u64" in
  Mem.read_u64_bit ctx.m.mem pa bit

let rmw_u64 ctx cap f =
  let pa = data_access ctx cap ~width:8 ~write:true ~op:"rmw_u64" in
  (* one extra cache access for the read half; no safe point in between *)
  charge ctx (Cache.access (core_of ctx).cache ~addr:pa ~write:false);
  let old = Mem.read_u64 ctx.m.mem pa in
  Mem.write_u64 ctx.m.mem pa (f old);
  old

let touch ctx cap ~write =
  ignore (data_access ctx cap ~width:1 ~write ~op:"touch")

let granule = Mem.granule

let zero ctx cap =
  safe_point ctx;
  if not (Capability.can_store cap) then
    raise (Capability_fault { cap; op = "zero"; vaddr = Capability.addr cap });
  let base = Capability.base cap and len = Capability.length cap in
  let line = Tagmem.Cache.line_size in
  let va = ref base in
  while !va < base + len do
    let e = translate_entry ctx !va ~write:true in
    let pa = Phys.frame_addr e.Tlb.pte.Pte.frame + (!va land (page_size - 1)) in
    let page_end = (!va lor (page_size - 1)) + 1 in
    let chunk_end = min (base + len) page_end in
    let a = ref pa in
    while !a < pa + (chunk_end - !va) do
      charge ctx (Cache.access_stream (core_of ctx).cache ~addr:!a ~write:true);
      a := !a + line
    done;
    Mem.fill ctx.m.mem ~lo:pa ~hi:(pa + (chunk_end - !va)) 0;
    va := chunk_end
  done

(* Shared body of [load_cap] and [load_cap_at]: the authorizing
   capability plus an explicit virtual address ([Capability.addr cap] on
   the reference path). [fast] selects the batched safe point; the moved
   capability is only constructed for fault payloads. *)
let rec load_cap_body ctx cap va ~fast =
  if fast then safe_point_run ctx else safe_point ctx;
  if not (Capability.can_load_at ~width:granule cap ~addr:va) then
    raise
      (Capability_fault
         { cap = Capability.set_addr cap va; op = "load_cap"; vaddr = va });
  if va land (granule - 1) <> 0 then
    raise
      (Capability_fault
         { cap = Capability.set_addr cap va; op = "load_cap(align)"; vaddr = va });
  let e = translate_entry ctx va ~write:false in
  let pa = Phys.frame_addr e.Tlb.pte.Pte.frame + (va land (page_size - 1)) in
  charge ctx (Cache.access (core_of ctx).cache ~addr:pa ~write:false);
  let tagged = Mem.read_tag ctx.m.mem pa in
  let c = core_of ctx in
  let mismatch = e.Tlb.clg_snapshot <> c.clg || e.Tlb.pte.Pte.load_trap in
  if tagged && mismatch then begin
    (* Capability load generation fault (§4.1): trap, let the registered
       handler bring the page to the current generation, re-execute. *)
    ctx.m.clg_faults <- ctx.m.clg_faults + 1;
    trace_emit ctx.m ~time:(core_of ctx).clock ~core:ctx.th.tcore
      ~pid:ctx.th.pid Trace.Clg_fault va;
    charge ctx Cost.trap;
    (match Hashtbl.find_opt ctx.m.clg_handlers (Aspace.asid ctx.th.asp) with
    | None ->
        (* No software component installed: the PTE may already be
           current (stale TLB); refresh and re-check. *)
        Tlb.refresh e;
        if e.Tlb.clg_snapshot <> c.clg then
          failwith "CLG fault with no handler installed"
    | Some h ->
        charge ctx Cost.clg_fault_fixed;
        h ctx ~vaddr:va e.Tlb.pte;
        Tlb.refresh e;
        if e.Tlb.clg_snapshot <> c.clg && not e.Tlb.pte.Pte.load_trap then
          failwith "CLG fault handler did not update the generation");
    load_cap_body ctx cap va ~fast
  end
  else begin
    let v = Mem.read_cap ctx.m.mem pa in
    let v =
      if Capability.tag v && not (Capability.can_load_cap_at cap ~addr:va) then
        Capability.clear_tag v
      else v
    in
    if Hashtbl.length ctx.m.load_filters = 0 then v
    else
      match Hashtbl.find_opt ctx.m.load_filters (Aspace.asid ctx.th.asp) with
      | Some f when Capability.tag v -> f ctx v
      | Some _ | None -> v
  end

let load_cap ctx cap = load_cap_body ctx cap (Capability.addr cap) ~fast:false
let load_cap_at ctx cap va = load_cap_body ctx cap va ~fast:true

let store_cap_body ctx cap va v ~fast =
  if fast then safe_point_run ctx else safe_point ctx;
  if not (Capability.can_store_at ~width:granule cap ~addr:va) then
    raise
      (Capability_fault
         { cap = Capability.set_addr cap va; op = "store_cap"; vaddr = va });
  if va land (granule - 1) <> 0 then
    raise
      (Capability_fault
         { cap = Capability.set_addr cap va; op = "store_cap(align)"; vaddr = va });
  if Capability.tag v && not (Capability.can_store_cap_at cap ~addr:va) then
    raise
      (Capability_fault
         { cap = Capability.set_addr cap va; op = "store_cap(perm)"; vaddr = va });
  let e = translate_entry ctx va ~write:true in
  let pte = e.Tlb.pte in
  if Capability.tag v && not pte.Pte.cap_store then
    raise
      (Capability_fault
         { cap = Capability.set_addr cap va; op = "store_cap(page)"; vaddr = va });
  let pa = Phys.frame_addr pte.Pte.frame + (va land (page_size - 1)) in
  charge ctx (Cache.access (core_of ctx).cache ~addr:pa ~write:true);
  if Capability.tag v then begin
    (* hardware capability-dirty tracking (§4.2) *)
    if not pte.Pte.cap_dirty then begin
      pte.Pte.cap_dirty <- true;
      charge ctx 3
    end;
    match ctx.m.store_hook with Some h -> h ~vaddr:va v | None -> ()
  end;
  Mem.write_cap ctx.m.mem pa v

let store_cap ctx cap v = store_cap_body ctx cap (Capability.addr cap) v ~fast:false
let store_cap_at ctx cap va v = store_cap_body ctx cap va v ~fast:true

(* ---- kernel-mode physical access ---- *)

(* Transient tag-read corruption (chaos tag hook): the tag bit arrives
   with bad parity, the hardware detects it, charges a trap plus a
   repeat access, and re-reads. The loop terminates because the hook
   models *transient* upsets (the engine disarms each hit); a hook that
   corrupted a read forever would spin, which is the correct model of
   unrecoverable memory. *)
let rec tag_retry ctx ~pa ~sweep =
  match ctx.m.tag_hook with
  | Some h when h ~pa ->
      trace_emit ctx.m ~time:(core_of ctx).clock ~core:ctx.th.tcore
        ~pid:ctx.th.pid ~arg2:(if sweep then 1 else 0) Trace.Tag_corruption pa;
      charge ctx (Cost.trap + Cache.access (core_of ctx).cache ~addr:pa ~write:false);
      tag_retry ctx ~pa ~sweep
  | Some _ | None -> ()

let kern_read_cap ctx ~pa =
  charge ctx (Cache.access (core_of ctx).cache ~addr:pa ~write:false);
  tag_retry ctx ~pa ~sweep:true;
  Mem.read_cap ctx.m.mem pa

let kern_read_cap_nt ctx ~pa =
  charge ctx (Cache.access_nt (core_of ctx).cache ~addr:pa ~write:false);
  tag_retry ctx ~pa ~sweep:true;
  Mem.read_cap ctx.m.mem pa

let kern_read_cap_stream ctx ~pa =
  charge ctx (Cache.access_stream (core_of ctx).cache ~addr:pa ~write:false);
  tag_retry ctx ~pa ~sweep:true;
  Mem.read_cap ctx.m.mem pa

let kern_clear_tag ctx ~pa =
  charge ctx (Cache.access (core_of ctx).cache ~addr:pa ~write:true);
  Mem.clear_tag ctx.m.mem pa

let kern_read_tag ctx ~pa =
  charge ctx (Cache.access (core_of ctx).cache ~addr:pa ~write:false);
  tag_retry ctx ~pa ~sweep:false;
  Mem.read_tag ctx.m.mem pa

let kern_access ctx ~pa ~write =
  charge ctx (Cache.access (core_of ctx).cache ~addr:pa ~write)

let tag_hook_armed m = m.tag_hook <> None

let chaos_armed m =
  m.tag_hook <> None || m.ack_hook <> None || m.drain_hook <> None
  || m.sched_oracle <> None

let load_filter_armed m = Hashtbl.length m.load_filters > 0

(* Batched sweep read of [count] consecutive known-untagged granules in
   one cache line: a single charge covering exactly what [count]
   [kern_read_cap_stream] (resp. [_nt]) calls would have cost, without
   materialising the untagged capability values. Only sound when no tag
   read hook is armed ([tag_hook_armed] is false): the per-granule loop
   consults the hook on every read, and this helper does not. *)
let kern_read_untagged_run ?(non_temporal = false) ctx ~pa ~count =
  let cache = (core_of ctx).cache in
  charge ctx
    (if non_temporal then Cache.access_nt_run cache ~addr:pa ~write:false ~count
     else Cache.access_stream_run cache ~addr:pa ~write:false ~count)

(* ---- VM operations ---- *)

let with_pmap_lock ctx f =
  let pmap = Aspace.pmap ctx.th.asp in
  let contended = Pmap.lock pmap ~who:ctx.th.tid in
  charge ctx (if contended then 2 * Cost.pmap_lock else Cost.pmap_lock);
  Fun.protect ~finally:(fun () -> Pmap.unlock pmap ~who:ctx.th.tid) f

(* Invalidate [vpages] on every core that has the given address space
   installed (all cores when [asid] is omitted — the machine-wide IPI of
   the single-process model). The IPI protocol is acknowledged: a core
   whose ack is lost (chaos ack hook) is re-IPI'd, bounded by
   [max_shootdown_retries]; exhausting the bound is a hard protocol
   failure since revocation soundness depends on the invalidation. *)
let max_shootdown_retries = 4

let tlb_shootdown ?asid ctx ~vpages =
  if vpages <> [] then begin
    let hit c = match asid with None -> true | Some a -> c.casid = a in
    let unacked =
      ref (Array.to_list (Array.map (fun c -> c.cid) ctx.m.cores)
           |> List.filter (fun cid -> hit ctx.m.cores.(cid)))
    in
    let attempt = ref 0 in
    while !unacked <> [] do
      if !attempt > max_shootdown_retries then
        failwith "tlb_shootdown: ack never arrived";
      let still = ref [] in
      List.iter
        (fun cid ->
          let c = ctx.m.cores.(cid) in
          Tlb.invalidate_pages c.tlb ~vpages;
          charge ctx Cost.tlb_shootdown_per_core;
          let lost =
            match ctx.m.ack_hook with Some h -> h ~core:cid | None -> false
          in
          if lost then begin
            (* The invalidation may or may not have landed before the
               ack was dropped; resending is idempotent, so treat the
               whole core as un-acked and retry. *)
            trace_emit ctx.m ~time:(core_of ctx).clock ~core:ctx.th.tcore
              ~pid:ctx.th.pid ~arg2:(!attempt + 1) Trace.Shootdown_retry cid;
            still := cid :: !still
          end)
        !unacked;
      unacked := List.rev !still;
      incr attempt
    done;
    trace_emit ctx.m ~time:(core_of ctx).clock ~core:ctx.th.tcore
      ~pid:ctx.th.pid Trace.Tlb_shootdown (List.length vpages)
  end

let map ctx ~vaddr ~len ~writable =
  with_pmap_lock ctx (fun () ->
      let fresh = Aspace.map_range ctx.th.asp ~vaddr ~len ~writable in
      charge ctx (fresh * (Cost.page_zero + Cost.pte_update)))

let unmap ctx ~vaddr ~len =
  let vpages =
    with_pmap_lock ctx (fun () ->
        let vpages = Aspace.unmap_range ctx.th.asp ~vaddr ~len in
        charge ctx (List.length vpages * Cost.pte_update);
        vpages)
  in
  tlb_shootdown ctx ~asid:(Aspace.asid ctx.th.asp) ~vpages

(* Switch the calling thread to another address space immediately:
   exec's tail end. The core takes a full TLB flush and resyncs its CLG
   bit from the new space's generation. *)
let adopt_aspace ctx a =
  ctx.th.asp <- a;
  let c = core_of ctx in
  Tlb.flush c.tlb;
  c.casid <- Aspace.asid a;
  c.clg <- Pmap.generation (Aspace.pmap a);
  charge ctx Cost.aspace_switch

(* ---- scheduler ---- *)

(* [eligible_time] is defined above, next to the yield fast path. *)

let pick m =
  let best = ref None in
  List.iter
    (fun th ->
      match eligible_time m th with
      | None -> ()
      | Some t -> (
          match !best with
          | Some (bt, bth) when bt < t || (bt = t && bth.last_ran <= th.last_ran) ->
              ()
          | _ -> best := Some (t, th)))
    m.threads;
  match (m.sched_oracle, !best) with
  | None, b | _, (None as b) -> b
  | Some oracle, Some (_, default) -> (
      (* Present every eligible thread (m.threads is in spawn order, so
         the candidate list is deterministic) and run the oracle's
         choice at its own eligible time. Any eligible thread is a legal
         next step: wake times and core clocks are re-imposed by
         [resume], so the oracle only reorders commits, never violates
         causality. *)
      let cands =
        List.filter (fun th -> eligible_time m th <> None) m.threads
      in
      let chosen = oracle ~default cands in
      match eligible_time m chosen with
      | Some t -> Some (t, chosen)
      | None ->
          invalid_arg "Machine: scheduling oracle returned an ineligible thread")

let dump_states m =
  let b = Buffer.create 256 in
  List.iter
    (fun th ->
      let s =
        match th.state with
        | Created -> "created"
        | Runnable -> "runnable"
        | Running -> "running"
        | Sleeping -> Printf.sprintf "sleeping(until %d)" th.wake_time
        | Waiting _ -> "waiting"
        | Waiting_stw -> "waiting-stw"
        | Parked _ -> "parked"
        | Finished -> "finished"
      in
      Buffer.add_string b (Printf.sprintf "%s[%d]@core%d: %s; " th.name th.tid th.tcore s))
    m.threads;
  Buffer.contents b

let on_finish m th =
  th.state <- Finished;
  match m.stw with
  | Some s when List.exists (fun x -> x.tid = th.tid) s.pending ->
      s.pending <- remove_thread s.pending th;
      s.stopped_at <- max s.stopped_at m.cores.(th.tcore).clock;
      if s.pending = [] then wake_initiator s
  | Some _ | None -> ()

let resume m th =
  let c = m.cores.(th.tcore) in
  let t = match eligible_time m th with Some t -> t | None -> assert false in
  c.clock <- max c.clock t;
  if c.resident <> th.tid then begin
    if c.resident >= 0 then begin
      m.ctx_switches <- m.ctx_switches + 1;
      (match m.trace with
      | Some t ->
          Trace.emit t ~time:c.clock ~core:c.cid ~pid:th.pid
            Trace.Context_switch th.tid
      | None -> ());
      c.clock <- c.clock + Cost.context_switch;
      c.busy <- c.busy + Cost.context_switch;
      th.cpu <- th.cpu + Cost.context_switch
    end;
    c.resident <- th.tid
  end;
  (* Address-space switch: full TLB flush plus CLG resync from the
     incoming space's generation. Free when the space is already
     installed — in particular always free in single-process runs. *)
  let asid = Aspace.asid th.asp in
  if c.casid <> asid then begin
    Tlb.flush c.tlb;
    c.casid <- asid;
    c.clg <- Pmap.generation (Aspace.pmap th.asp);
    c.clock <- c.clock + Cost.aspace_switch;
    c.busy <- c.busy + Cost.aspace_switch;
    th.cpu <- th.cpu + Cost.aspace_switch
  end;
  th.slice_start <- c.clock;
  th.sp_checked <- false;
  m.seq <- m.seq + 1;
  th.last_ran <- m.seq;
  th.state <- Running;
  match th.cont with
  | Some k ->
      th.cont <- None;
      if th.killed then
        (* Tear the fiber down through its own stack so Fun.protect
           finalizers (gate releases, pmap unlocks) still run; the
           exception lands in this thread's [exnc] below. *)
        Effect.Deep.discontinue k Thread_killed
      else Effect.Deep.continue k ()
  | None when th.killed -> on_finish m th
  | None ->
      let handler =
        {
          Effect.Deep.retc = (fun () -> on_finish m th);
          exnc =
            (fun e ->
              match e with Thread_killed -> on_finish m th | e -> raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      th.cont <- Some k)
              | _ -> None);
        }
      in
      let ctx = { m; th } in
      Effect.Deep.match_with
        (fun () ->
          checkpoint ctx;
          th.body ctx)
        () handler

let run m =
  let rec loop () =
    match pick m with
    | Some (_, th) ->
        resume m th;
        (* If the thread left itself Running (yield without state change),
           make it runnable again. *)
        if th.state = Running then th.state <- Runnable;
        loop ()
    | None ->
        if List.exists (fun th -> th.state <> Finished) m.threads then
          raise (Deadlock (dump_states m))
  in
  loop ()

(* ---- statistics ---- *)

type totals = {
  wall_cycles : int;
  cpu_cycles : int;
  bus_transactions : int;
  context_switches : int;
  stw_count : int;
  clg_faults : int;
}

let bus_transactions_of_core m i = Cache.bus_total (Cache.stats m.cores.(i).cache)

let totals m =
  let cpu = Array.fold_left (fun acc c -> acc + c.busy) 0 m.cores in
  let bus =
    Array.fold_left (fun acc c -> acc + Cache.bus_total (Cache.stats c.cache)) 0 m.cores
  in
  {
    wall_cycles = global_time m;
    cpu_cycles = cpu;
    bus_transactions = bus;
    context_switches = m.ctx_switches;
    stw_count = m.stw_count;
    clg_faults = m.clg_faults;
  }

let clg_fault_count (m : t) = m.clg_faults
