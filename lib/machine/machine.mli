(** The simulated multicore CHERI machine.

    Cores execute cooperative threads (OCaml effect-based coroutines) under
    a deterministic discrete-event scheduler: the runnable thread whose
    core has the smallest local clock runs next, so cross-core orderings
    are faithful to the simulated timeline. Threads charge cycles
    explicitly for every architectural action; memory operations go
    through per-core TLBs and caches, producing the latency and
    bus-traffic figures the evaluation reports.

    Architectural features modelled (the ones the paper's revokers need):
    - tagged memory with capability load/store instructions;
    - per-PTE capability-dirty bits set on capability stores (§2.2.4);
    - per-PTE capability load generation vs. an in-core generation bit,
      trapping mismatched tagged loads to a registered handler (§4.1);
    - TLBs that latch PTE snapshots, with explicit shootdowns;
    - a [thread_single]-style stop-the-world that quiesces user threads,
      charging for in-flight syscall draining (§4.4). *)

type t
type thread

type ctx
(** Execution context: the machine plus the current thread. Every
    operation a simulated program performs takes the [ctx] it was given
    at spawn time. *)

(** {1 Construction} *)

type config = {
  cores : int; (** number of cores (4 on Morello) *)
  mem_bytes : int; (** physical memory size *)
  heap_bytes : int; (** heap region of the single simulated process *)
  quantum : int; (** cycles between safe points *)
  seed : int;
}

val default_config : config
val create : config -> t

(** {1 Topology and global state} *)

val mem : t -> Tagmem.Mem.t
val aspace : t -> Vm.Aspace.t
val layout : t -> Vm.Layout.t
val prng : t -> Prng.t
val num_cores : t -> int
val core_clock : t -> int -> int
(** Local clock of a core, in cycles. *)

val global_time : t -> int
(** Max over core clocks. *)

val cache_stats : t -> int -> Tagmem.Cache.stats
(** Cache/bus statistics of a core. *)

(** {1 Threads} *)

val spawn :
  t ->
  name:string ->
  core:int ->
  ?user:bool ->
  ?pid:int ->
  ?aspace:Vm.Aspace.t ->
  (ctx -> unit) ->
  thread
(** Create a thread pinned to [core]. [user] threads (default [true]) are
    quiesced by stop-the-world; revoker/system threads pass
    [~user:false]. [pid] (default 0) and [aspace] (default: the
    machine's primordial space) attach the thread to a process; the
    single-process world never passes either. The body runs when {!run}
    is called. *)

val run : t -> unit
(** Drive the machine until every thread has finished. Raises
    [Deadlock] if live threads remain but none can make progress. *)

exception Deadlock of string

val thread_name : thread -> string

val thread_id : thread -> int
(** Stable spawn-order identifier, unique within a machine — the handle
    scheduling oracles and replay schedules use to name a thread. *)

val thread_cpu_cycles : thread -> int
(** Total on-core cycles this thread has consumed. *)

val thread_pid : thread -> int
val thread_aspace : thread -> Vm.Aspace.t
val regs : thread -> Regfile.t
val self : ctx -> thread
val machine : ctx -> t
val core_id : ctx -> int
val now : ctx -> int
(** The current thread's core clock. *)

val ctx_pid : ctx -> int
(** Process id of the current thread (0 in single-process runs). *)

val ctx_aspace : ctx -> Vm.Aspace.t
(** Address space the current thread executes in. *)

val user_threads : t -> thread list
val find_thread : t -> string -> thread option

exception Thread_killed
(** Delivered inside a fiber torn down by {!kill_pid}: the scheduler
    discontinues the thread's stored continuation with this exception at
    its next resume, so [Fun.protect] finalizers on its stack run. *)

val kill_pid : t -> int -> int
(** Host-side external kill: mark every live user thread of the pid for
    teardown and make blocked ones schedulable so death is prompt.
    Threads parked under an active stop-the-world stay parked (they are
    already quiesced) and die after the release; a killed thread that a
    quiesce was still waiting on is removed from the pending set when it
    dies, so a kill can unstick a stalled pause rather than wedge it.
    Returns the number of threads marked. Non-user (revoker/service)
    threads are untouched — they must keep draining the dead process's
    quarantine. *)

val core_asid : t -> int -> int
(** Asid of the address space currently installed on a core. *)

val aspace_of_pid : t -> int -> Vm.Aspace.t option
(** Address space of any live thread belonging to [pid] — how analyses
    resolve a process's current space without holding a stale handle
    across [exec]. *)

val assign_aspace : thread -> Vm.Aspace.t -> unit
(** Host-side rebinding (exec): takes architectural effect — TLB flush,
    CLG resync — when the thread is next resumed. *)

val adopt_aspace : ctx -> Vm.Aspace.t -> unit
(** Switch the calling thread to another space immediately, flushing the
    core's TLB and resyncing its CLG bit; charges {!Cost.aspace_switch}. *)

(** {1 Time and synchronization} *)

val charge : ctx -> int -> unit
(** Consume cycles of pure computation (no safe point). *)

val safe_point : ctx -> unit
(** Possibly yield: preemption if the quantum expired, parking if a
    stop-the-world is pending. Simulated programs call this (or any
    memory operation, which calls it implicitly) often. *)

val safe_point_run : ctx -> unit
(** Batched safe point for tight op-stream loops: observably identical
    to {!safe_point} — the quantum check still runs on every call, so
    preemption lands at the same simulated instants — but the
    stop-the-world checkpoint is re-executed only on the first call
    after each resume. Sound because the scheduler is cooperative and
    single-domain: no stop-the-world can be installed, nor this thread
    added to a pending set, while it runs uninterrupted. *)

val sleep : ctx -> int -> unit
(** Block for the given number of cycles of wall time (off core). *)

type condvar

val condvar : unit -> condvar
val wait : ctx -> condvar -> unit
val broadcast : ctx -> condvar -> unit
(** Wake all waiters; they resume no earlier than the caller's now. *)

val yield : ctx -> unit
(** Unconditionally give up the core to same-core peers. *)

(** {1 Syscall modelling} *)

val enter_syscall : ctx -> drain:int -> unit
(** Mark the thread as executing a system call whose abort/completion
    would cost [drain] cycles if a stop-the-world arrives meanwhile. *)

val exit_syscall : ctx -> unit

(** {1 Stop-the-world} *)

type stw_report = {
  requested_at : int;
  stopped_at : int; (** all user threads parked *)
  released_at : int; (** world resumed *)
}

exception Quiesce_timeout of { stalled : int; waited : int }
(** A watchdogged stop-the-world gave up: [stalled] threads had still
    not parked at the deadline (0 when every thread parked but an
    uninterruptible syscall drain pushed the quiesce past it). The
    world has already been released — parked threads restored, the STW
    slot cleared, [Stw_abandon] emitted — when this reaches the caller,
    so retrying is always legal. *)

val stop_the_world :
  ctx -> ?scope:int list -> ?timeout:int -> (unit -> 'a) -> 'a * stw_report
(** [stop_the_world ctx f] quiesces every user thread (draining in-flight
    syscalls), runs [f] with the world stopped, releases, and reports the
    phase boundaries. Only non-user threads may call this.
    [?scope] restricts quiescence to the user threads of the listed
    pids — a per-process pause whose cost scales with that process's
    thread count, not the machine's (the multi-tenant point of §4.4).
    Omitted: every user thread, the original machine-wide pause.
    [?timeout] arms a quiesce watchdog: if the world has not stopped
    [timeout] cycles after the request, the pause is abandoned and
    {!Quiesce_timeout} raised ([f] never runs). Omitted: wait forever,
    the original behaviour. An exception escaping [f] (with or without
    a watchdog) still releases every parked thread before unwinding —
    the machine is never left stopped. *)

(** {1 Capability load generation (the load barrier)} *)

val toggle_clg : ctx -> unit
(** Flip the in-core generation bit of every core running the caller's
    address space, and that space's pmap generation for newly-installed
    PTEs. PTEs themselves are untouched (§4.1). Cores running other
    processes are unaffected (they resync at their next space switch);
    with a single process this is every core, the original machine-wide
    toggle. Must be called with the world stopped. *)

val core_clg : t -> int -> bool

val set_clg_fault_handler :
  t -> ?asid:int -> (ctx -> vaddr:int -> Vm.Pte.t -> unit) option -> unit
(** Handler invoked (in the faulting thread, trap cost already charged)
    when a tagged capability load hits a generation mismatch. The handler
    must bring the PTE to the current generation (or the load will fault
    forever). Registered per address space ([asid], default 0): each
    process's revoker handles only its own faults. [None] unregisters. *)

val set_cap_load_filter :
  t -> ?asid:int -> (ctx -> Cheri.Capability.t -> Cheri.Capability.t) option -> unit
(** CHERIoT-style architectural load filter (§6.3): applied to every
    tagged capability as it is loaded, with no trap. Per address space,
    like the CLG handler. *)

val set_cap_store_hook :
  t -> (vaddr:int -> Cheri.Capability.t -> unit) option -> unit
(** Observation hook for tagged capability stores (test instrumentation):
    called with the target address and the stored value. *)

(** {1 Fault-injection hooks}

    Generic callbacks the chaos engine ([lib/chaos]) installs; the
    machine knows nothing about fault schedules. All absent by
    default, in which case behaviour is exactly the unhooked machine. *)

val set_sched_oracle :
  t -> (default:thread -> thread list -> thread) option -> unit
(** Install (or clear) a scheduling oracle. When present, every
    scheduler pick calls it with the full list of eligible threads (in
    spawn order) and [default], the thread the built-in
    smallest-clock/least-recently-ran policy would choose; whatever it
    returns runs next. Returning [default] reproduces the unhooked
    machine exactly; returning any other eligible thread explores a
    different but causally legal interleaving (wake times and core
    clocks are still honoured at resume). The model checker ([lib/mc])
    drives the machine through inequivalent safe-point interleavings
    with this hook. Raises [Invalid_argument] if the oracle returns a
    thread that is not currently eligible. *)

val set_drain_hook : t -> (ctx -> int -> int) option -> unit
(** Rewrite the uninterruptible drain a thread declares on syscall
    entry — a "stuck quiesce" returns a drain longer than any watchdog
    deadline, so a pause that catches the thread mid-syscall times out. *)

val set_shootdown_ack_hook : t -> (core:int -> bool) option -> unit
(** Consulted once per core per shootdown attempt; [true] means that
    core's ack was lost. The IPI loop emits [Shootdown_retry] and
    resends (idempotent) up to a bound, then fails hard — revocation
    soundness depends on the invalidation landing. *)

val set_tag_read_hook : t -> (pa:int -> bool) option -> unit
(** Consulted on kernel-mode tag/capability reads (the sweep's access
    path); [true] means this read's tag bit arrived corrupted. The
    machine detects it (tag parity), emits [Tag_corruption], charges a
    trap plus a repeat access, and re-reads — transient upsets cost
    time but never corrupt a revocation verdict. *)

(** {1 Memory operations} (virtual addresses via capabilities) *)

exception
  Capability_fault of {
    cap : Cheri.Capability.t;
    op : string;
    vaddr : int;
  }
(** Raised when a dereference check fails — the simulated program's bug
    (or an attack being stopped). *)

exception Page_fault of { vaddr : int; write : bool }
(** Stores to copy-on-write pages do not raise this: they trap, privatise
    the frame ({!Vm.Aspace.cow_break}, charged), emit [Cow_fault], and
    retry transparently. *)

val load_u64 : ctx -> Cheri.Capability.t -> int64
val store_u64 : ctx -> Cheri.Capability.t -> int64 -> unit

val rmw_u64 : ctx -> Cheri.Capability.t -> (int64 -> int64) -> int64
(** Atomic read-modify-write of an 8-byte word (LL/SC-style): the update
    happens with no intervening safe point, charged as one read and one
    write. Returns the old value. The revocation bitmap's paint/clear
    words are updated this way — a plain load;or;store pair can be
    preempted and resurrect bits the revoker just cleared. *)

val load_cap : ctx -> Cheri.Capability.t -> Cheri.Capability.t
(** Load the 16-byte granule at the capability's address. Subject to the
    load barrier: may invoke the CLG fault handler and re-execute. *)

val store_cap : ctx -> Cheri.Capability.t -> Cheri.Capability.t -> unit
(** Store a capability; sets the page's capability-dirty bit when storing
    a tagged value. *)

val touch : ctx -> Cheri.Capability.t -> write:bool -> unit
(** Data access for cost purposes only (cache + TLB), one granule. *)

(** {2 Address-parameterized accesses}

    Each [*_at] operation is semantically the corresponding plain
    operation applied to [Capability.set_addr cap addr], without
    allocating the moved capability, and with the {!safe_point_run}
    batched checkpoint in place of the per-op {!safe_point} (observably
    identical — see {!safe_point_run}). Identical charges, faults,
    load-barrier and filter behaviour; the compiled op-stream
    interpreter's access path. *)

val touch_u64_at : ctx -> Cheri.Capability.t -> int -> unit
(** [load_u64] at the given address with the value discarded — no
    simulated state differs from the load. *)

val store_u64_at : ctx -> Cheri.Capability.t -> int -> int64 -> unit
val load_cap_at : ctx -> Cheri.Capability.t -> int -> Cheri.Capability.t
val store_cap_at : ctx -> Cheri.Capability.t -> int -> Cheri.Capability.t -> unit

val load_u64_bit : ctx -> Cheri.Capability.t -> int -> bit:int -> bool
(** [load_u64] at the given address, returning only bit [bit]
    (0-indexed, LSB first) of the value: identical charges and faults,
    no [Int64] boxing. The revocation-map probe, which runs once per
    tagged granule swept, tests its shadow-bitmap words this way. *)

val zero : ctx -> Cheri.Capability.t -> unit
(** Zero the capability's whole bounds (clearing tags), charging one
    cache write per 64-byte line — the allocator's reuse-time scrub. *)

(** {1 Kernel-mode access} (physical, no load barrier, cache-charged) *)

val kern_read_cap : ctx -> pa:int -> Cheri.Capability.t
val kern_clear_tag : ctx -> pa:int -> unit
val kern_read_tag : ctx -> pa:int -> bool
val kern_access : ctx -> pa:int -> write:bool -> unit
(** Charge one cache access without data movement (bitmap probes etc.). *)

val kern_read_cap_nt : ctx -> pa:int -> Cheri.Capability.t
(** Non-temporal variant (§5.6 ablation). *)

val kern_read_cap_stream : ctx -> pa:int -> Cheri.Capability.t
(** Streaming (prefetched) variant — the sweep loop's access pattern. *)

val tag_hook_armed : t -> bool
(** A chaos tag-read hook is installed: per-granule kernel reads must be
    used on the sweep path so every read consults the hook. *)

val chaos_armed : t -> bool
(** Any fault-injection hook (tag read, shootdown ack, syscall drain) or
    scheduling oracle is installed. Drivers with a precompiled fast path
    (the op-stream interpreter) consult this to fall back to their
    reference loop: fault campaigns are about failure semantics, not
    throughput, and the reference interpreter is the authoritative
    semantics when threads can be torn down or epochs aborted mid-run. *)

val load_filter_armed : t -> bool
(** A capability-load filter is installed for some address space
    (CHERIoT-style load barrier, {!set_cap_load_filter}). Filters may
    strip tags on loads of {e live} data the program will touch again,
    which precompiled op streams cannot predict — another reason to
    fall back to the reference interpreter. *)

val kern_read_untagged_run : ?non_temporal:bool -> ctx -> pa:int -> count:int -> unit
(** Batched cost of reading [count] consecutive known-untagged granules
    within one cache line, starting at [pa]: one charge, identical
    cycles, bus transactions and cache state to [count] individual
    [kern_read_cap_stream] (resp. [kern_read_cap_nt]) calls. The
    word-scan sweep's cost model. Caller must have checked
    {!tag_hook_armed} is false. *)

(** {1 VM operations} *)

val map : ctx -> vaddr:int -> len:int -> writable:bool -> unit
(** Map pages (zeroed), charging per fresh page. *)

val unmap : ctx -> vaddr:int -> len:int -> unit
(** Unmap and shoot down. *)

val tlb_shootdown : ?asid:int -> ctx -> vpages:int list -> unit
(** Invalidate the pages on every core with address space [asid]
    installed (every core when omitted), charging the initiating thread
    per core hit. *)

val with_pmap_lock : ctx -> (unit -> 'a) -> 'a

val translate : ctx -> int -> (int * Vm.Pte.t) option
(** TLB-charged translation, as the hardware walker would do. *)

(** {1 Tracing} *)

val attach_tracer : t -> Trace.t option -> unit
(** Attach (or detach) an event recorder: the machine then emits
    stop-the-world request/stop/release, CLG-fault, CLG-toggle,
    TLB-shootdown, and context-switch events; other layers may emit
    through the same recorder. Attaching enables the recorder's
    drop warning ({!Trace.set_warn_on_drop}) so a truncated ring is
    never silently observed. *)

val tracer : t -> Trace.t option

val trace_emit :
  t -> time:int -> core:int -> ?pid:int -> ?arg2:int -> Trace.kind -> int -> unit
(** Emit through the attached recorder, if any — the emission point used
    by higher layers (revoker, revmap, sweep) so analyses can subscribe
    to one stream. No-op without a tracer. *)

(** {1 Statistics} *)

type totals = {
  wall_cycles : int;
  cpu_cycles : int; (** sum of busy cycles over all cores *)
  bus_transactions : int;
  context_switches : int;
  stw_count : int;
  clg_faults : int;
}

val totals : t -> totals
val clg_fault_count : t -> int
val bus_transactions_of_core : t -> int -> int

val park_counts : t -> int * int
(** Diagnostic counters: STW parks from runnable vs blocked states,
    per machine (set [CCR_PARK_DEBUG] to also log busy parks; the
    variable is read once at machine creation). *)
