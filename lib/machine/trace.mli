(** Bounded event tracing with lossless subscribers.

    A fixed-capacity ring of timestamped events, cheap enough to leave
    attached to a machine during benchmarking. The machine emits
    scheduler- and barrier-level events when a tracer is attached
    ({!Machine.attach_tracer}); higher layers (the revoker, the shim) may
    emit their own through the same recorder.

    The ring drops old events once full — fine for post-mortem dumps,
    fatal for protocol checkers. Analyses that must observe every event
    (e.g. [Analysis.Sanitizer]) register a {!subscribe} callback, which
    is invoked synchronously on every {!emit} and bypasses the ring
    entirely. *)

type kind =
  | Stw_request
  | Stw_stopped
  | Stw_release
  | Clg_fault
  | Context_switch
  | Epoch_begin  (** arg: epoch counter before the begin increment *)
  | Epoch_end  (** arg: epoch counter after the end increment *)
  | Revoke_batch  (** arg: quarantine bytes handed to the epoch *)
  | Paint  (** arg: region base; arg2: size (quarantine bitmap set) *)
  | Unpaint  (** arg: region base; arg2: size (bitmap cleared) *)
  | Quarantine_enq  (** arg: region base; arg2: size (batch to revoker) *)
  | Quarantine_deq  (** arg: region base; arg2: size (epoch closed) *)
  | Reuse  (** arg: region base; arg2: size (returned to allocator) *)
  | Tlb_shootdown  (** arg: number of pages invalidated on every core *)
  | Clg_toggle  (** arg: the new generation (0/1) all cores adopt *)
  | Hoard_scan  (** arg: hoarded capabilities scanned *)
  | Page_sweep  (** arg: frame base swept; arg2: capabilities revoked *)
  | Cow_fault  (** arg: faulting vaddr; arg2: 1 iff a physical copy was made *)
  | Proc_fork  (** arg: child pid; arg2: pages downgraded to CoW *)
  | Proc_exec  (** arg: pages released from the replaced image *)
  | Proc_exit  (** arg: quarantine bytes handed to the reaper *)
  | Proc_kill
      (** pid: the victim; arg: user threads torn down; arg2: quarantine
          bytes flushed to the victim's revoker *)
  | Sched_grant
      (** arg: pid granted the revocation token; arg2: waiters remaining *)
  | Stw_abandon
      (** arg: threads still unparked at the deadline; arg2: cycles waited.
          Emitted instead of [Stw_stopped] when a quiesce watchdog fires —
          the world was released without ever being fully stopped. *)
  | Epoch_abort
      (** arg: epoch counter restored (the value [Epoch_begin] carried);
          arg2: consecutive aborts so far. The in-flight revocation pass
          was given up; its batches remain quarantined. *)
  | Epoch_resume
      (** arg: current (odd) epoch counter; arg2: retry attempt number.
          A crashed sweep restarts from its checkpoint inside the SAME
          open epoch — the counter does not move. *)
  | Strategy_downshift
      (** arg: old strategy code; arg2: new strategy code
          (see [Revoker.strategy_code]) *)
  | Quarantine_abandoned
      (** arg: bytes dropped from the fill buffer at [Mrs.finish] *)
  | Tag_corruption
      (** arg: physical address whose tag read was corrupted (detected
          and re-read; arg2: 1 iff during a kernel sweep read) *)
  | Shootdown_retry
      (** arg: core whose shootdown ack was lost; arg2: retry attempt *)
  | Chaos_inject  (** arg: fault id in its schedule; arg2: fault-kind code *)
  | Req_shed
      (** arg: request id dropped by serving-layer admission control;
          arg2: 0 for a queue-depth drop, 1 for a deadline drop, 2 for a
          brownout (priority-class) drop *)
  | Req_lost
      (** arg: request id the host had admitted but never answered —
          lost in flight by a crash; arg2: 0 if dropped from the
          admission queue at the crash, 1 if the response to an
          in-service request was lost *)
  | Brownout_shift
      (** arg: 1 entering brownout, 0 leaving it; arg2: admission-queue
          depth at the transition *)
  | Governor_defer
      (** arg: cycles the revocation governor held an epoch back waiting
          for a load trough; arg2: queue depth when the epoch was finally
          released *)
  | Governor_force
      (** arg: quarantined bytes; arg2: queue depth. The governor stopped
          deferring because [Policy.should_block] pressure won — the
          epoch runs into live traffic. *)
  | Governor_quantum
      (** arg: pages granted to the next concurrent-sweep slice;
          arg2: pages already visited this epoch *)
  | Slo_violation
      (** arg: serving p99 latency estimate (µs, rounded); arg2: the SLO
          target (µs). Emitted by the governor when it must act while the
          tail is already over target. *)
  | Quota_charge
      (** pid: the tenant billed; arg: region base; arg2: bytes charged
          against the tenant's quota (allocation granularity — the
          size-class rounded size, not the requested size) *)
  | Quota_deny
      (** pid: the tenant refused; arg: bytes the allocation would have
          charged; arg2: 0 when the tenant's own quota was exhausted,
          1 when physical memory was exhausted and the over-commit
          policy could not reclaim enough *)
  | Quota_credit
      (** pid: the tenant refunded; arg: region base; arg2: bytes
          credited back. Emitted when the region leaves quarantine —
          always before the corresponding [Reuse]; quarantined-but-
          unrevoked memory still counts against its owner. *)
  | Free_all
      (** pid: the tenant; arg: live allocations handed to quarantine
          in one shot; arg2: total bytes (quota charge units) *)
  | Custom of string

val kind_name : kind -> string

type event = {
  time : int; (** cycles, initiator's core clock *)
  core : int;
  pid : int; (** owning process; 0 for kernel/single-process activity *)
  kind : kind;
  arg : int; (** kind-specific: vaddr, counter value, bytes, ... *)
  arg2 : int; (** secondary payload (region size, revoked count); 0 if unused *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events; older events are overwritten.

    The requested capacity is rounded {e up} to the next power of two
    (4096 stays 4096; 3 becomes 4): the ring indexes with a bit mask on
    its zero-allocation emit path. {!capacity} reports the effective
    value; {!length}/{!total}/{!dropped} account against it. *)

val capacity : t -> int
(** Effective (power-of-two) ring capacity. *)

val emit : t -> time:int -> core:int -> ?pid:int -> ?arg2:int -> kind -> int -> unit

val subscribe : t -> (event -> unit) -> int
(** Register a lossless callback invoked on every subsequent {!emit}
    (before any ring overwrite can drop the event). Returns an id for
    {!unsubscribe}. Callbacks run in subscription order (oldest first);
    with no subscribers registered, [emit] skips event construction and
    dispatch entirely. *)

val unsubscribe : t -> int -> unit

val set_warn_on_drop : t -> bool -> unit
(** When enabled, the first event that overwrites an unread slot prints
    a one-shot warning to stderr. {!Machine.attach_tracer} enables this
    so a truncated ring is never silently mistaken for the full stream. *)

val length : t -> int
(** Events currently retained (≤ capacity). *)

val total : t -> int
(** Events emitted since creation (retained or not). *)

val dropped : t -> int
(** Events overwritten since creation. *)

val to_list : t -> event list
(** Retained events, oldest first. *)

val iter : t -> (event -> unit) -> unit
val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
val dump : Format.formatter -> ?last:int -> t -> unit
(** Print the most recent [last] events (default: all retained),
    prefixed by an emitted/dropped accounting line when the ring has
    overflowed. *)
