(** Deterministic fault injection for the revocation stack.

    A {!schedule} is planned from a seed: for each fault kind applicable
    to the strategy under test, one fault with a seed-chosen arming cycle
    and magnitude. {!install} wires the schedule into the generic chaos
    hooks the lower layers expose — the machine's syscall-drain,
    shootdown-ack and tag-read hooks, the revoker's per-page sweep hook,
    the shim's release-stall hook, and a caller-supplied kill closure —
    so no layer below this one knows any chaos type.

    Every injection is announced with a [Chaos_inject] trace event
    (arg: fault id, arg2: kind code) and counted, so a campaign can
    assert both that faults actually fired and that the run recovered. *)

type kind =
  | Sweep_crash  (** the sweep raises {!Ccr.Revoker.Induced_crash} mid-page *)
  | Stuck_quiesce
      (** syscalls declare drains longer than any watchdog deadline *)
  | Shootdown_ack_loss  (** a shootdown IPI ack is dropped (machine retries) *)
  | Tag_corruption
      (** transient tag upset on a kernel read (machine detects, re-reads) *)
  | Quarantine_stall  (** batch releases stall on the revoker thread *)
  | Tenant_kill  (** a victim process is killed at an arbitrary phase *)
  | Inflight_loss
      (** admitted-but-incomplete requests are destroyed at a host crash
          (queue drained via the harness's drop closure) *)

val kind_name : kind -> string
val kind_code : kind -> int
val all_kinds : kind list
val kind_of_name : string -> kind option

val applicable : Ccr.Revoker.strategy -> kind -> bool
(** Whether the kind can manifest at all under the strategy (Paint_sync
    never sweeps; only Cornucopia sends per-page shootdowns by default). *)

type fault = {
  f_id : int;
  f_kind : kind;
  f_at : int;  (** core-clock cycle at which the fault arms *)
  f_param : int;  (** magnitude: stall / drain-inflation cycles *)
  f_count : int;  (** injections before the fault disarms *)
}

type schedule = { sched_id : int; horizon : int; faults : fault list }

val schedule_id : schedule -> int
(** Deterministic digest of the schedule, carried into result JSON. *)

val plan :
  seed:int ->
  strategy:Ccr.Revoker.strategy ->
  horizon:int ->
  ?kinds:kind list ->
  unit ->
  schedule
(** Deterministic in all arguments. Arming points land in the first half
    of [horizon]; magnitudes stay inside {!Ccr.Revoker.default_recovery}'s
    retry budgets so each injection is recoverable by construction. *)

type t

val install :
  Sim.Machine.t ->
  revoker:Ccr.Revoker.t option ->
  mrs:Ccr.Mrs.t option ->
  ?kill:(Sim.Machine.ctx -> int) ->
  ?drop_inflight:(Sim.Machine.ctx -> int) ->
  schedule ->
  t
(** Arm the schedule. [kill] (for [Tenant_kill]) and [drop_inflight]
    (for [Inflight_loss]) are each invoked once from a controller thread
    at their fault's arming cycle and should return the number of
    threads killed / requests destroyed (0 marks the fault
    spent-unfired). Call before {!Sim.Machine.run}. *)

val uninstall : t -> unit
(** Clear the machine-level hooks (revoker/shim hooks die with their
    owners). *)

val install_branch :
  Sim.Machine.t ->
  ?revoker:Ccr.Revoker.t ->
  ?budget:int ->
  ?stuck_drain:int ->
  kinds:kind list ->
  decide:(kind -> bool) ->
  unit ->
  t
(** Model-checking variant of {!install}: instead of seed-chosen arming
    cycles, every potential injection site consults [decide] — the
    sweep's per-page visits for [Sweep_crash], syscall entries for
    [Stuck_quiesce] — so inject-vs-don't is a branch point the model
    checker enumerates, making the crash/resume protocol paths
    ([Stw_abandon], [Epoch_abort], [Epoch_resume]) reachable by search
    rather than by luck. [budget] (default 1) bounds the number of
    [true] answers acted on per kind, keeping the branching finite;
    [decide] is not consulted once the budget is spent. [stuck_drain]
    (default 10^9) is the drain inflation for [Stuck_quiesce]. Only
    [Sweep_crash] and [Stuck_quiesce] are branchable — the other kinds
    perturb cost, not protocol control flow; passing them raises
    [Invalid_argument]. Injections emit [Chaos_inject] and count in
    {!outcomes} exactly like scheduled faults. *)

type outcome = {
  o_kind : kind;
  o_id : int;
  o_injected : int;  (** times this fault actually fired *)
  o_spent : bool;  (** its injection budget was exhausted *)
}

val outcomes : t -> outcome list
val injected : t -> int

val unfired : t -> kind list
(** Kinds whose fault never fired — a campaign treats these as failures
    (the schedule was not actually exercised). *)
