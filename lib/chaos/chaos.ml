module Machine = Sim.Machine
module Prng = Sim.Prng
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs

type kind =
  | Sweep_crash
  | Stuck_quiesce
  | Shootdown_ack_loss
  | Tag_corruption
  | Quarantine_stall
  | Tenant_kill
  | Inflight_loss

let kind_name = function
  | Sweep_crash -> "sweep-crash"
  | Stuck_quiesce -> "stuck-quiesce"
  | Shootdown_ack_loss -> "shootdown-ack-loss"
  | Tag_corruption -> "tag-corruption"
  | Quarantine_stall -> "quarantine-stall"
  | Tenant_kill -> "tenant-kill"
  | Inflight_loss -> "inflight-loss"

let kind_code = function
  | Sweep_crash -> 0
  | Stuck_quiesce -> 1
  | Shootdown_ack_loss -> 2
  | Tag_corruption -> 3
  | Quarantine_stall -> 4
  | Tenant_kill -> 5
  | Inflight_loss -> 6

let all_kinds =
  [
    Sweep_crash;
    Stuck_quiesce;
    Shootdown_ack_loss;
    Tag_corruption;
    Quarantine_stall;
    Tenant_kill;
    Inflight_loss;
  ]

let kind_of_name s =
  List.find_opt (fun k -> kind_name k = s) all_kinds

(* Which kinds can possibly manifest under a strategy. Paint_sync never
   sweeps and never stops the world, so only the quarantine pipeline and
   process lifetime are attackable; ack loss needs Cornucopia's per-page
   shootdowns (the only default configuration that sends any). *)
let applicable strategy kind =
  match (kind, strategy) with
  | (Quarantine_stall | Tenant_kill | Inflight_loss), _ -> true
  | _, Revoker.Paint_sync -> false
  | Shootdown_ack_loss, Revoker.Cornucopia -> true
  | Shootdown_ack_loss, _ -> false
  | (Sweep_crash | Stuck_quiesce | Tag_corruption), _ -> true

type fault = {
  f_id : int;
  f_kind : kind;
  f_at : int; (* core-clock cycle at which the fault arms *)
  f_param : int; (* magnitude: stall/inflation cycles, or unused *)
  f_count : int; (* injections before the fault disarms *)
}

type schedule = { sched_id : int; horizon : int; faults : fault list }

let schedule_id t = t.sched_id

(* One fault per applicable kind, armed at a seed-chosen point in the
   first part of the run (late arming risks never firing: the workload
   may drain before the trigger is reached). All magnitudes stay inside
   the recovery budgets given to the campaign's revokers, so every
   injection is recoverable by construction; pushing past the budgets is
   the storm rig's job, not the sweep's. *)
let plan ~seed ~strategy ~horizon ?(kinds = all_kinds) () =
  let rng = Prng.create ~seed:(seed * 0x9e3779b9 + 0x5ca1ab1e) in
  let kinds = List.filter (applicable strategy) kinds in
  let faults =
    List.mapi
      (fun i k ->
        let at = (horizon / 20) + Prng.int rng (max 1 (horizon * 2 / 5)) in
        let param, count =
          match k with
          | Sweep_crash -> (0, 1 + Prng.int rng 2)
          | Stuck_quiesce ->
              (* inflate drains well past any campaign watchdog for a
                 window of syscalls *)
              (1_000_000_000, 2 + Prng.int rng 3)
          | Shootdown_ack_loss -> (0, 1 + Prng.int rng 3)
          | Tag_corruption -> (0, 2 + Prng.int rng 6)
          | Quarantine_stall -> (50_000 + Prng.int rng 200_000, 1 + Prng.int rng 2)
          | Tenant_kill -> (0, 1)
          | Inflight_loss -> (0, 1)
        in
        { f_id = i; f_kind = k; f_at = at; f_param = param; f_count = count })
      kinds
  in
  let sched_id =
    List.fold_left
      (fun acc f ->
        ((acc * 31) + (kind_code f.f_kind * 7) + f.f_at + f.f_count)
        land 0x3fffffff)
      (seed land 0xffff) faults
  in
  { sched_id; horizon; faults }

(* ---- the armed engine ---- *)

type armed = {
  fault : fault;
  mutable remaining : int;
  mutable injected : int;
  (* Tag_corruption: physical addresses already upset (one transient
     upset per location, so the machine's re-read makes progress) *)
  corrupted : (int, unit) Hashtbl.t;
}

type t = {
  m : Machine.t;
  schedule : schedule;
  arms : armed list;
}

let emit t ctx (a : armed) =
  a.injected <- a.injected + 1;
  a.remaining <- a.remaining - 1;
  Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
    ~pid:(Machine.ctx_pid ctx) ~arg2:(kind_code a.fault.f_kind)
    Sim.Trace.Chaos_inject a.fault.f_id

let active a now = now >= a.fault.f_at && a.remaining > 0

let find t k = List.filter (fun a -> a.fault.f_kind = k) t.arms

let install m ~revoker ~mrs ?kill ?drop_inflight schedule =
  let t =
    {
      m;
      schedule;
      arms =
        List.map
          (fun f ->
            {
              fault = f;
              remaining = f.f_count;
              injected = 0;
              corrupted = Hashtbl.create 16;
            })
          schedule.faults;
    }
  in
  let has k = find t k <> [] in
  (* sweep-thread crash mid-page *)
  (match revoker with
  | Some rv when has Sweep_crash ->
      Revoker.set_sweep_hook rv
        (Some
           (fun ctx _vp ->
             match
               List.find_opt (fun a -> active a (Machine.now ctx))
                 (find t Sweep_crash)
             with
             | Some a ->
                 emit t ctx a;
                 raise Revoker.Induced_crash
             | None -> ()))
  | Some _ | None -> ());
  (* stuck quiesce: syscalls entered during the window declare an
     uninterruptible drain longer than any watchdog deadline *)
  if has Stuck_quiesce then
    Machine.set_drain_hook m
      (Some
         (fun ctx drain ->
           match
             List.find_opt (fun a -> active a (Machine.now ctx))
               (find t Stuck_quiesce)
           with
           | Some a ->
               emit t ctx a;
               drain + a.fault.f_param
           | None -> drain));
  (* TLB-shootdown ack loss (the machine retries the idempotent IPI).
     These hooks carry no ctx, so arming is gated on the global clock;
     the machine itself emits the [Shootdown_retry] / [Tag_corruption]
     evidence events. *)
  if has Shootdown_ack_loss then
    Machine.set_shootdown_ack_hook m
      (Some
         (fun ~core:_ ->
           match
             List.find_opt
               (fun a -> active a (Machine.global_time m))
               (find t Shootdown_ack_loss)
           with
           | Some a ->
               a.injected <- a.injected + 1;
               a.remaining <- a.remaining - 1;
               true
           | None -> false));
  (* transient tag-read corruption on the sweep's access path; one upset
     per physical location so the machine's re-read converges *)
  if has Tag_corruption then
    Machine.set_tag_read_hook m
      (Some
         (fun ~pa ->
           match
             List.find_opt
               (fun a ->
                 active a (Machine.global_time m)
                 && not (Hashtbl.mem a.corrupted pa))
               (find t Tag_corruption)
           with
           | Some a ->
               Hashtbl.replace a.corrupted pa ();
               a.injected <- a.injected + 1;
               a.remaining <- a.remaining - 1;
               true
           | None -> false));
  (* quarantine-drain stall: batch releases sleep on the revoker thread *)
  (match mrs with
  | Some shim when has Quarantine_stall ->
      Mrs.set_release_stall shim
        (Some
           (fun ctx ->
             match
               List.find_opt (fun a -> active a (Machine.now ctx))
                 (find t Quarantine_stall)
             with
             | Some a ->
                 emit t ctx a;
                 a.fault.f_param
             | None -> 0))
  | Some _ | None -> ());
  (* tenant kill: a controller thread sleeps to the arming point, then
     invokes the harness's kill closure (typically Os.kill of a victim) *)
  (match kill with
  | Some do_kill when has Tenant_kill ->
      List.iter
        (fun a ->
          ignore
            (Machine.spawn m
               ~name:(Printf.sprintf "chaos-kill-%d" a.fault.f_id)
               ~core:0 ~user:false (fun ctx ->
                 let dt = a.fault.f_at - Machine.now ctx in
                 if dt > 0 then Machine.sleep ctx dt;
                 if do_kill ctx > 0 then emit t ctx a
                 else a.remaining <- 0)))
        (find t Tenant_kill)
  | Some _ | None -> ());
  (* in-flight loss: at the arming cycle a controller thread invokes the
     harness's drop closure (typically Squeue.drain_lost on a crashing
     host's queue) and reports how many admitted requests it destroyed *)
  (match drop_inflight with
  | Some do_drop when has Inflight_loss ->
      List.iter
        (fun a ->
          ignore
            (Machine.spawn m
               ~name:(Printf.sprintf "chaos-inflight-%d" a.fault.f_id)
               ~core:0 ~user:false (fun ctx ->
                 let dt = a.fault.f_at - Machine.now ctx in
                 if dt > 0 then Machine.sleep ctx dt;
                 if do_drop ctx > 0 then emit t ctx a
                 else a.remaining <- 0)))
        (find t Inflight_loss)
  | Some _ | None -> ());
  t

let uninstall t =
  Machine.set_drain_hook t.m None;
  Machine.set_shootdown_ack_hook t.m None;
  Machine.set_tag_read_hook t.m None

(* ---- branchable fault points (model checking) ----

   Instead of arming cycles drawn from a seed, every potential injection
   site consults a [decide] callback: the model checker answers it from
   the schedule prefix it is exploring, so inject-vs-don't becomes a
   branch point of the search rather than a coin toss. Only the two
   kinds that create the crash/resume protocol paths (Stw_abandon,
   Epoch_abort, Epoch_resume) are branchable — the others perturb cost,
   not control flow. [decide] is consulted only while the injection
   budget lasts, keeping the branching factor finite. *)

let install_branch m ?revoker ?(budget = 1) ?(stuck_drain = 1_000_000_000)
    ~kinds ~decide () =
  let mk_fault i k param =
    { f_id = i; f_kind = k; f_at = 0; f_param = param; f_count = budget }
  in
  let faults =
    List.mapi
      (fun i k ->
        match k with
        | Sweep_crash -> mk_fault i k 0
        | Stuck_quiesce -> mk_fault i k stuck_drain
        | Shootdown_ack_loss | Tag_corruption | Quarantine_stall | Tenant_kill
        | Inflight_loss ->
            invalid_arg
              (Printf.sprintf "Chaos.install_branch: %s is not branchable"
                 (kind_name k)))
      kinds
  in
  let t =
    {
      m;
      schedule = { sched_id = 0; horizon = 0; faults };
      arms =
        List.map
          (fun f ->
            {
              fault = f;
              remaining = f.f_count;
              injected = 0;
              corrupted = Hashtbl.create 1;
            })
          faults;
    }
  in
  (match revoker with
  | Some rv when find t Sweep_crash <> [] ->
      Revoker.set_sweep_hook rv
        (Some
           (fun ctx _vp ->
             match
               List.find_opt (fun a -> a.remaining > 0) (find t Sweep_crash)
             with
             | Some a when decide Sweep_crash ->
                 emit t ctx a;
                 raise Revoker.Induced_crash
             | Some _ | None -> ()))
  | Some _ | None -> ());
  if find t Stuck_quiesce <> [] then
    Machine.set_drain_hook m
      (Some
         (fun ctx drain ->
           match
             List.find_opt (fun a -> a.remaining > 0) (find t Stuck_quiesce)
           with
           | Some a when decide Stuck_quiesce ->
               emit t ctx a;
               drain + a.fault.f_param
           | Some _ | None -> drain));
  t

(* ---- accounting ---- *)

type outcome = { o_kind : kind; o_id : int; o_injected : int; o_spent : bool }

let outcomes t =
  List.map
    (fun a ->
      {
        o_kind = a.fault.f_kind;
        o_id = a.fault.f_id;
        o_injected = a.injected;
        o_spent = a.remaining = 0;
      })
    t.arms

let injected t = List.fold_left (fun acc a -> acc + a.injected) 0 t.arms

let unfired t =
  List.filter_map
    (fun a -> if a.injected = 0 then Some a.fault.f_kind else None)
    t.arms
