let default_jobs () = max 1 (min 16 (Domain.recommended_domain_count ()))

(* The one --jobs validator every campaign CLI shares, so a zero or
   negative width is a usage error at the command line instead of
   whatever [map]'s clamping would silently do. *)
let validate_jobs j =
  if j >= 1 then Ok j
  else
    Error
      (Printf.sprintf "--jobs must be a positive integer (got %d)" j)

type 'b outcome =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if jobs = 1 then List.map f xs
  else begin
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (* each slot is written by exactly one domain (the one that won
           the fetch-and-add for index [i]) and read only after the
           join, so plain array stores are race-free *)
        (results.(i) <-
           (match f items.(i) with
            | v -> Done v
            | exception e -> Failed (e, Printexc.get_raw_backtrace ())));
        worker ()
      end
    in
    let spawned = min (jobs - 1) (max 0 (n - 1)) in
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (* re-raise the lowest-indexed failure so error reporting is as
       deterministic as success output *)
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Pending | Failed _ -> assert false)
         results)
  end
