(** Deterministic domain-parallel fan-out for independent simulations.

    Each campaign cell / serve point / chaos schedule is a self-contained
    seeded simulation touching no global mutable state, so they can run
    on separate domains. [map] preserves submission order in its result
    list, making the output of every consumer identical for any [~jobs]
    value — the jobs-determinism contract enforced by CI (see DESIGN.md,
    "Simulator performance").

    Workers must not print: anything destined for the user is returned
    as data (or a buffer) and emitted by the calling domain in
    submission order. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [1, 16]. *)

val validate_jobs : int -> (int, string) result
(** [Ok j] when [j >= 1], otherwise [Error msg] with a usage message.
    Every campaign CLI funnels its [--jobs] argument through this one
    helper so a zero/negative width is rejected uniformly instead of
    falling through to {!map}'s internal clamping. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs], running up to
    [jobs] applications concurrently on separate domains, and returns
    the results in the order of [xs]. [jobs] defaults to
    {!default_jobs}; [jobs <= 1] degenerates to sequential [List.map]
    on the calling domain (no domains spawned).

    Work is handed out dynamically (an atomic next-index counter), so
    which domain runs which element is nondeterministic — but element
    [i]'s result is always slot [i], and [f] must not depend on shared
    mutable state, so the result list is deterministic.

    If any application raises, the exception of the {e lowest-indexed}
    failing element is re-raised on the calling domain (with its
    backtrace) after all domains have been joined. *)
