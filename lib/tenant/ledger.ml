(* The quota ledger: sealed per-tenant allocator capabilities in the
   CHERIoT mould, ported onto the quarantine pipeline. Every tenant
   holds a sealed capability minted by [register]; allocation charges
   its quota at allocation granularity (the size-class rounded size) and
   the charge is credited back only when the memory leaves quarantine —
   via the shim's release hook, strictly before the [Reuse] event — so
   quarantined-but-unrevoked memory still counts against its owner and
   revocation lag is an economic cost each tenant feels. *)

module Capability = Cheri.Capability
module Machine = Sim.Machine
module Trace = Sim.Trace
module Backend = Alloc.Backend
module Runtime = Ccr.Runtime
module Mrs = Ccr.Mrs

type overcommit = Deny | Steal_from_idle | Trigger_revocation

let overcommit_name = function
  | Deny -> "deny"
  | Steal_from_idle -> "steal"
  | Trigger_revocation -> "revoke"

let all_overcommits = [ Deny; Steal_from_idle; Trigger_revocation ]

let overcommit_of_name = function
  | "deny" -> Some Deny
  | "steal" -> Some Steal_from_idle
  | "revoke" -> Some Trigger_revocation
  | _ -> None

type fault = Skip_credit

let fault_name = function Skip_credit -> "skip-credit"

(* Whether an allocation's charge is still live or parked in quarantine
   (freed, awaiting revocation — still billed to its owner). *)
type entry_state = Live | Quarantined

type alloc_entry = {
  e_size : int; (* the charge: size-class rounded bytes *)
  e_cap : Capability.t;
  mutable e_state : entry_state;
}

type account = {
  a_tenant : int;
  a_quota : int;
  a_rt : Runtime.t;
  allocs : (int, alloc_entry) Hashtbl.t; (* base -> charge entry *)
  mutable charged : int;
  mutable credited : int;
  mutable live : int; (* bytes of Live entries *)
  mutable quarantined : int; (* bytes of Quarantined entries *)
  mutable denied_quota : int;
  mutable denied_phys : int;
  mutable free_alls : int;
  mutable reclaims : int; (* times picked as an over-commit victim *)
  mutable peak_balance : int;
}

type t = {
  m : Machine.t;
  phys_limit : int;
  overcommit : overcommit;
  accounts : (int, account) Hashtbl.t;
  seals : (int, int) Hashtbl.t; (* tenant -> currently valid seal stamp *)
  mutable next_stamp : int;
  mutable committed : int; (* Σ outstanding balances, all tenants *)
  mutable peak_committed : int;
  mutable fault : fault option;
}

(* The sealed capability: unforgeable only by convention in the host
   language, but the seal stamp gives it CHERIoT's revocable-authority
   semantics — [revoke_cap] invalidates every capability minted for a
   tenant without touching the tenant's memory. *)
type cap = { c_tenant : int; c_stamp : int; c_ledger : t }

let create m ~phys_limit ~overcommit () =
  if phys_limit <= 0 then invalid_arg "Ledger.create: phys_limit must be > 0";
  {
    m;
    phys_limit;
    overcommit;
    accounts = Hashtbl.create 8;
    seals = Hashtbl.create 8;
    next_stamp = 1;
    committed = 0;
    peak_committed = 0;
    fault = None;
  }

let phys_limit t = t.phys_limit
let overcommit t = t.overcommit
let committed t = t.committed
let peak_committed t = t.peak_committed
let inject_fault t f = t.fault <- f

let balance a = a.charged - a.credited

let account t tenant =
  match Hashtbl.find_opt t.accounts tenant with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ledger: unknown tenant %d" tenant)

let unseal op (c : cap) =
  let t = c.c_ledger in
  (match Hashtbl.find_opt t.seals c.c_tenant with
  | Some stamp when stamp = c.c_stamp -> ()
  | Some _ | None ->
      invalid_arg
        (Printf.sprintf "%s: revoked or forged allocator capability (tenant %d)"
           op c.c_tenant));
  account t c.c_tenant

let emit t ctx ~pid ?arg2 kind arg =
  Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
    ~pid ?arg2 kind arg

(* Credit path: runs on the tenant's revoker thread for each entry of a
   clean batch, before the bitmap clear and the [Reuse] event (see
   [Mrs.set_on_release]) — or inline at [free] under a baseline runtime,
   which has no quarantine to park the charge in. The [Skip_credit]
   fault drops the whole credit (bookkeeping and event): the sanitizer's
   quota-conservation rule must notice the [Reuse] of a still-charged
   region. *)
let credit t a ctx ~addr =
  match Hashtbl.find_opt a.allocs addr with
  | None -> () (* not a ledger allocation (e.g. adopted quarantine) *)
  | Some e -> (
      match t.fault with
      | Some Skip_credit -> Hashtbl.remove a.allocs addr
      | None ->
          a.credited <- a.credited + e.e_size;
          (match e.e_state with
          | Quarantined -> a.quarantined <- a.quarantined - e.e_size
          | Live -> a.live <- a.live - e.e_size);
          t.committed <- t.committed - e.e_size;
          Hashtbl.remove a.allocs addr;
          emit t ctx ~pid:a.a_tenant ~arg2:e.e_size Trace.Quota_credit addr)

let register t ~tenant ~quota rt =
  if quota <= 0 then invalid_arg "Ledger.register: quota must be > 0";
  if Hashtbl.mem t.accounts tenant then
    invalid_arg (Printf.sprintf "Ledger.register: tenant %d already registered"
                   tenant);
  let a =
    {
      a_tenant = tenant;
      a_quota = quota;
      a_rt = rt;
      allocs = Hashtbl.create 256;
      charged = 0;
      credited = 0;
      live = 0;
      quarantined = 0;
      denied_quota = 0;
      denied_phys = 0;
      free_alls = 0;
      reclaims = 0;
      peak_balance = 0;
    }
  in
  Hashtbl.replace t.accounts tenant a;
  (* One account per runtime: the release hook is the account's credit
     stream. *)
  (match rt.Runtime.mrs with
  | Some mrs ->
      Mrs.set_on_release mrs
        (Some (fun ctx ~addr ~size:_ -> credit t a ctx ~addr))
  | None -> ());
  let stamp = t.next_stamp in
  t.next_stamp <- t.next_stamp + 1;
  Hashtbl.replace t.seals tenant stamp;
  { c_tenant = tenant; c_stamp = stamp; c_ledger = t }

let revoke_cap t tenant = Hashtbl.remove t.seals tenant

let deny t a ctx ~rounded ~phys =
  if phys then a.denied_phys <- a.denied_phys + 1
  else a.denied_quota <- a.denied_quota + 1;
  emit t ctx ~pid:a.a_tenant ~arg2:(if phys then 1 else 0) Trace.Quota_deny
    rounded;
  None

(* Deterministic over-commit victim: the account with the most charge
   parked in quarantine (ties to the lowest pid), preferring someone
   other than the requester — "steal from idle" — but falling back to
   the requester's own quarantine when it is the only debtor. *)
let victim t requester =
  let best =
    Hashtbl.fold
      (fun _ a best ->
        if a.quarantined = 0 then best
        else
          match best with
          | None -> Some a
          | Some b ->
              let pref x = (x.a_tenant <> requester.a_tenant), x.quarantined in
              let (oa, qa) = pref a and (ob, qb) = pref b in
              if oa <> ob then if oa then Some a else best
              else if qa > qb || (qa = qb && a.a_tenant < b.a_tenant) then
                Some a
              else best)
      t.accounts None
  in
  best

let reclaim_tries = 32

(* Physical exhaustion: Σ outstanding balances would exceed the physical
   heap. Resolve per policy; [true] means the allocation may proceed. *)
let ensure_physical t a ctx rounded =
  let exhausted () = t.committed + rounded > t.phys_limit in
  if not (exhausted ()) then true
  else
    match t.overcommit with
    | Deny -> false
    | Steal_from_idle ->
        let rec loop tries =
          if not (exhausted ()) then true
          else if tries = 0 then false
          else
            match victim t a with
            | None -> false
            | Some v -> (
                match v.a_rt.Runtime.mrs with
                | None -> false
                | Some mrs ->
                    v.reclaims <- v.reclaims + 1;
                    Mrs.flush mrs ctx;
                    if Mrs.quarantine_bytes mrs = 0 then false
                    else begin
                      Mrs.wait_release mrs ctx;
                      loop (tries - 1)
                    end)
        in
        loop reclaim_tries
    | Trigger_revocation ->
        (* Kick every debtor's revocation, then wait for drains until
           the committed sum fits (or progress stops). *)
        let rec loop tries =
          if not (exhausted ()) then true
          else if tries = 0 then false
          else begin
            let debtors =
              Hashtbl.fold (fun _ acct acc -> acct :: acc) t.accounts []
              |> List.filter (fun acct -> acct.quarantined > 0)
              |> List.sort (fun x y -> compare x.a_tenant y.a_tenant)
            in
            List.iter
              (fun acct ->
                match acct.a_rt.Runtime.mrs with
                | Some mrs -> Mrs.flush mrs ctx
                | None -> ())
              debtors;
            match victim t a with
            | None -> false
            | Some v -> (
                match v.a_rt.Runtime.mrs with
                | None -> false
                | Some mrs ->
                    if Mrs.quarantine_bytes mrs = 0 then false
                    else begin
                      v.reclaims <- v.reclaims + 1;
                      Mrs.wait_release mrs ctx;
                      loop (tries - 1)
                    end)
          end
        in
        loop reclaim_tries

let malloc cap ctx size =
  let t = cap.c_ledger in
  let a = unseal "Ledger.malloc" cap in
  let rounded = Alloc.Sizeclass.rounded_size size in
  if balance a + rounded > a.a_quota then deny t a ctx ~rounded ~phys:false
  else if not (ensure_physical t a ctx rounded) then
    deny t a ctx ~rounded ~phys:true
  else begin
    let c = Runtime.malloc a.a_rt ctx size in
    let base = Capability.base c in
    a.charged <- a.charged + rounded;
    a.live <- a.live + rounded;
    t.committed <- t.committed + rounded;
    if balance a > a.peak_balance then a.peak_balance <- balance a;
    if t.committed > t.peak_committed then t.peak_committed <- t.committed;
    Hashtbl.replace a.allocs base { e_size = rounded; e_cap = c; e_state = Live };
    emit t ctx ~pid:a.a_tenant ~arg2:rounded Trace.Quota_charge base;
    Some c
  end

(* Move one live charge to quarantine and hand the memory to the shim.
   Shared by [free] and [free_all]; the caller has already unsealed. *)
let quarantine_one t a ctx base (e : alloc_entry) =
  e.e_state <- Quarantined;
  a.live <- a.live - e.e_size;
  a.quarantined <- a.quarantined + e.e_size;
  Runtime.free a.a_rt ctx e.e_cap;
  (* A baseline runtime returns memory to the allocator immediately —
     there is no quarantine to park the charge in, so credit inline. *)
  if a.a_rt.Runtime.mrs = None then credit t a ctx ~addr:base

let free cap ctx c =
  let t = cap.c_ledger in
  let a = unseal "Ledger.free" cap in
  let base = Capability.base c in
  match Hashtbl.find_opt a.allocs base with
  | None ->
      invalid_arg
        (Printf.sprintf "Ledger.free: 0x%x is not a live allocation of tenant %d"
           base a.a_tenant)
  | Some { e_state = Quarantined; _ } ->
      invalid_arg
        (Printf.sprintf "Ledger.free: double free of 0x%x (tenant %d)" base
           a.a_tenant)
  | Some e -> quarantine_one t a ctx base e

(* The CHERIoT [heap_free_all] analogue: hand the tenant's entire live
   heap to quarantine in one shot — post-failure cleanup that needs no
   cooperation from the (possibly crashed) tenant code. The charges stay
   on the books until revocation completes; only then are they credited
   back, so a bulk free is a quarantine debt spike, not a refund. *)
let free_all cap ctx =
  let t = cap.c_ledger in
  let a = unseal "Ledger.free_all" cap in
  let live =
    Hashtbl.fold
      (fun base e acc ->
        match e.e_state with Live -> (base, e) :: acc | Quarantined -> acc)
      a.allocs []
    |> List.sort (fun (x, _) (y, _) -> compare x y)
  in
  match live with
  | [] -> (0, 0) (* nothing live: a repeated free_all is a no-op *)
  | _ ->
      let bytes = List.fold_left (fun s (_, e) -> s + e.e_size) 0 live in
      a.free_alls <- a.free_alls + 1;
      emit t ctx ~pid:a.a_tenant ~arg2:bytes Trace.Free_all (List.length live);
      List.iter (fun (base, e) -> quarantine_one t a ctx base e) live;
      (match a.a_rt.Runtime.mrs with
      | Some mrs -> Mrs.flush mrs ctx
      | None -> ());
      (List.length live, bytes)

(* ---- probes ---- *)

let over_quota t ~tenant =
  match Hashtbl.find_opt t.accounts tenant with
  | None -> false
  | Some a -> balance a >= a.a_quota

let debt t ~tenant =
  match Hashtbl.find_opt t.accounts tenant with
  | None -> 0
  | Some a -> a.quarantined

let quota t ~tenant = (account t tenant).a_quota
let tenants t = List.sort compare (Hashtbl.fold (fun p _ l -> p :: l) t.seals [])

(* ---- statistics and the conservation identity ---- *)

type account_stats = {
  s_tenant : int;
  s_quota : int;
  s_charged : int;
  s_credited : int;
  s_live : int;
  s_quarantined : int;
  s_denied_quota : int;
  s_denied_phys : int;
  s_free_alls : int;
  s_reclaims : int;
  s_peak_balance : int;
  s_conserved : bool;
}

(* The ledger-side conservation identity, computed against the entry
   table rather than the running live/quarantined counters so a
   bookkeeping bug in either side cannot hide: charged − credited must
   equal the bytes the table still holds. *)
let conserved a =
  let held =
    Hashtbl.fold (fun _ (e : alloc_entry) s -> s + e.e_size) a.allocs 0
  in
  balance a = held && a.live + a.quarantined = held

let account_stats_of a =
  {
    s_tenant = a.a_tenant;
    s_quota = a.a_quota;
    s_charged = a.charged;
    s_credited = a.credited;
    s_live = a.live;
    s_quarantined = a.quarantined;
    s_denied_quota = a.denied_quota;
    s_denied_phys = a.denied_phys;
    s_free_alls = a.free_alls;
    s_reclaims = a.reclaims;
    s_peak_balance = a.peak_balance;
    s_conserved = conserved a;
  }

let account_stats t ~tenant = account_stats_of (account t tenant)

let all_stats t =
  Hashtbl.fold (fun _ a acc -> account_stats_of a :: acc) t.accounts []
  |> List.sort (fun x y -> compare x.s_tenant y.s_tenant)

let cap_tenant (c : cap) = c.c_tenant
