(** Quota'd per-tenant allocator capabilities — the CHERIoT allocation
    economics model (sealed allocator capabilities, independent quotas,
    deliberate over-commit, [heap_free_all]) ported onto the quarantine
    pipeline.

    Each tenant registers its {!Ccr.Runtime.t} with the shared ledger
    and receives a {e sealed} allocator capability ({!cap}); every
    allocation through the capability charges the tenant's quota at
    allocation granularity (the size-class rounded size). The charge is
    credited back only when the memory {e leaves quarantine}: freeing
    moves the charge from live to quarantined, and the refund lands —
    via the shim's release hook, strictly before the region's [Reuse]
    trace event — once revocation completes. Quarantined-but-unrevoked
    memory therefore still counts against its owner: revocation lag is
    an economic cost each tenant feels, and the {!debt} probe feeds the
    [Quota] revocation-scheduling policy ({!Os.Revsched.set_debt}).

    The sum of quotas may exceed the physical heap ({e over-commit}).
    When an allocation would push the machine-wide committed sum past
    [phys_limit], the {!overcommit} policy resolves it: deny the
    allocation, steal from idle (force the biggest quarantine debtor's
    revocation and wait for the refund), or trigger revocation for every
    debtor. A tenant's own quota exhaustion is always a plain deny.

    Conservation invariant, checked by the sanitizer's
    [quota-conservation] rule at every trace point and by {!conserved}
    ledger-side: per tenant, [charged − credited = live + quarantined],
    exactly. *)

type t

type cap
(** A sealed allocator capability: authority to allocate against one
    tenant's quota. Invalidated wholesale by {!revoke_cap} — any later
    use raises [Invalid_argument], the moral equivalent of a failed
    unseal. *)

type overcommit =
  | Deny  (** physical exhaustion refuses the allocation outright *)
  | Steal_from_idle
      (** force the largest quarantine debtor (preferring other tenants)
          through revocation and retry once its refund lands *)
  | Trigger_revocation
      (** flush every debtor's quarantine to its revoker, wait for the
          largest refund, retry *)

val overcommit_name : overcommit -> string
(** ["deny"], ["steal"], ["revoke"]. *)

val overcommit_of_name : string -> overcommit option
val all_overcommits : overcommit list

type fault = Skip_credit
    (** Seeded ledger mutation: drop a refund on the floor — the charge
        entry vanishes without a [Quota_credit], so the region's [Reuse]
        must trip the sanitizer's [quota-conservation] rule. *)

val fault_name : fault -> string

val create : Sim.Machine.t -> phys_limit:int -> overcommit:overcommit -> unit -> t
(** A ledger arbitrating one physical heap of [phys_limit] bytes.
    Raises [Invalid_argument] if [phys_limit <= 0]. *)

val register : t -> tenant:int -> quota:int -> Ccr.Runtime.t -> cap
(** Open tenant [tenant]'s account with an independent [quota] and mint
    its sealed allocator capability. Installs the credit stream on the
    runtime's shim ([Mrs.set_on_release]) — at most one account per
    runtime. [tenant] must be the owning process's pid (0 for a
    single-process runtime): quota trace events carry it, and the
    sanitizer cross-checks them against the shim's per-pid [Reuse]
    stream. Raises [Invalid_argument] on a duplicate tenant or
    [quota <= 0]. *)

val revoke_cap : t -> int -> unit
(** Invalidate every capability minted for the tenant (the account and
    its pending credits survive — a crashed tenant's quarantine still
    drains and refunds). *)

val malloc : cap -> Sim.Machine.ctx -> int -> Cheri.Capability.t option
(** Allocate against the capability's quota. [None] is a deny, traced
    as [Quota_deny]: the tenant's own quota could not cover the rounded
    charge ([arg2 = 0]), or physical memory was exhausted and the
    over-commit policy could not reclaim enough ([arg2 = 1]).
    Successful charges are traced as [Quota_charge]. *)

val free : cap -> Sim.Machine.ctx -> Cheri.Capability.t -> unit
(** Hand the allocation to quarantine; its charge moves live →
    quarantined and stays billed until revocation credits it back.
    Raises [Invalid_argument] on a double free or a capability the
    ledger never charged to this tenant. *)

val free_all : cap -> Sim.Machine.ctx -> int * int
(** The [heap_free_all] analogue: hand the tenant's {e entire} live heap
    to quarantine in one shot and flush it to the revoker — post-failure
    cleanup needing no cooperation from tenant code. Returns
    [(allocations, charge bytes)] handed over; traced as [Free_all].
    Calling it again with nothing live is a no-op returning [(0, 0)]. *)

val over_quota : t -> tenant:int -> bool
(** [true] while the tenant's outstanding balance has reached its quota
    — the serving layer's admission gate ({!Service.Squeue.create}'s
    [quota_gate]). Unknown tenants are not gated. *)

val debt : t -> tenant:int -> int
(** Charge bytes parked in quarantine — the tenant's revocation-lag
    cost, fed to the [Quota] scheduling policy. 0 for unknown tenants. *)

val quota : t -> tenant:int -> int
val tenants : t -> int list
val phys_limit : t -> int
val overcommit : t -> overcommit

val committed : t -> int
(** Σ outstanding balances across all tenants — the ledger's view of
    physical heap pressure. *)

val peak_committed : t -> int

val inject_fault : t -> fault option -> unit
(** Arm (or disarm) the seeded ledger mutation. Only conservation-rule
    self-tests should set this. *)

val cap_tenant : cap -> int

type account_stats = {
  s_tenant : int;
  s_quota : int;
  s_charged : int;
  s_credited : int;
  s_live : int;
  s_quarantined : int;
  s_denied_quota : int; (** allocations denied by the tenant's own quota *)
  s_denied_phys : int; (** allocations denied at physical exhaustion *)
  s_free_alls : int;
  s_reclaims : int; (** times forced through revocation as an over-commit victim *)
  s_peak_balance : int;
  s_conserved : bool; (** the conservation identity, against the entry table *)
}

val account_stats : t -> tenant:int -> account_stats
val all_stats : t -> account_stats list
(** Sorted by tenant pid. *)
