module Capability = Cheri.Capability
module Machine = Sim.Machine
module Cost = Sim.Cost

type t = {
  caps : (int, Capability.t) Hashtbl.t;
  mutable next : int;
  mutable on_scan : (int -> unit) option;
  mutable scans : int;
}

let create () = { caps = Hashtbl.create 64; next = 0; on_scan = None; scans = 0 }

let register t ctx c =
  Machine.charge ctx Cost.syscall_entry;
  let h = t.next in
  t.next <- t.next + 1;
  Hashtbl.replace t.caps h c;
  h

let retrieve t ctx h =
  Machine.charge ctx Cost.syscall_entry;
  match Hashtbl.find_opt t.caps h with
  | Some c -> c
  | None -> raise Not_found

let deregister t ctx h =
  Machine.charge ctx Cost.syscall_entry;
  Hashtbl.remove t.caps h

let scan t ~f =
  let n = Hashtbl.length t.caps in
  Hashtbl.iter
    (fun h c -> if Capability.tag c then Hashtbl.replace t.caps h (f c))
    t.caps;
  t.scans <- t.scans + 1;
  (match t.on_scan with Some g -> g n | None -> ());
  n

let set_scan_hook t g = t.on_scan <- g
let scan_count t = t.scans
let iter t ~f = Hashtbl.iter f t.caps
let size t = Hashtbl.length t.caps
