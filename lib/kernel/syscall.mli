(** System-call modelling.

    What matters to the revoker is not what a syscall does but how long a
    stop-the-world must wait for it: in-flight calls are completed or
    aborted before the thread can be quiesced (§4.4), producing the
    long-tailed pause outliers of §5.4.1. Each call draws a {e drain
    cost} from a heavy-tailed distribution; if a stop-the-world arrives
    while the call is in flight, the initiator pays that drain. *)

type profile = {
  service_mean : int; (** mean on-CPU-ish service cycles (slept, off core) *)
  drain_scale : float; (** Pareto scale of the quiesce-drain cost, cycles *)
  drain_shape : float; (** Pareto shape; smaller = heavier tail *)
  drain_cap : int; (** upper bound on the drain, cycles *)
}

val default_profile : profile
(** ~2 µs service, drains mostly a few µs with a tail into milliseconds. *)

val light_profile : profile
(** Short calls that rarely obstruct quiesce. *)

val draw_drain : Sim.Prng.t -> profile -> int
(** One drain-cost draw: a Pareto([drain_scale], [drain_shape]) sample
    truncated to [drain_cap]. Exposed so tests can pin the sampling
    distribution (determinism under a fixed seed, the cap actually
    binding) without running a whole syscall. *)

val perform : ?profile:profile -> Sim.Machine.ctx -> unit
(** Execute one blocking syscall: enter (drain drawn), sleep the service
    time, exit. *)

val perform_service : ?profile:profile -> Sim.Machine.ctx -> service:int -> unit
(** Same with an explicit service time. *)
