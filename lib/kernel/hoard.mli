(** Kernel capability hoards (§4.4 of the paper).

    User pointers flow into the kernel and may be {e hoarded} — retained
    across system calls by asynchronous facilities (kqueue, aio) and
    returned to userspace later. During a revocation epoch the kernel
    must scan everything it holds on behalf of the program, and must
    never divulge an unchecked capability afterwards.

    Saved register files of off-core threads are the other hoard; the
    revoker scans those via {!Sim.Regfile} directly. *)

type t

val create : unit -> t

val register : t -> Sim.Machine.ctx -> Cheri.Capability.t -> int
(** Hand a capability to the kernel (an aio/kevent registration);
    returns a handle. Charged as a light syscall. *)

val retrieve : t -> Sim.Machine.ctx -> int -> Cheri.Capability.t
(** Get the capability back (completion delivery). Returns whatever the
    kernel now holds — possibly revoked (untagged) if a sweep happened
    in between. Raises [Not_found] for a bogus handle. *)

val deregister : t -> Sim.Machine.ctx -> int -> unit

val scan : t -> f:(Cheri.Capability.t -> Cheri.Capability.t) -> int
(** Apply the revoker's check to every hoarded capability; returns the
    number held (for cost accounting by the caller). Bumps the scan
    counter and invokes the scan hook, if any. *)

val set_scan_hook : t -> (int -> unit) option -> unit
(** Observation hook invoked after every {!scan} with the number of
    capabilities held — lets checkers assert the revoker really visited
    the kernel's hoards during an epoch. *)

val scan_count : t -> int
(** Number of {!scan} passes performed since creation. *)

val iter : t -> f:(int -> Cheri.Capability.t -> unit) -> unit
(** Non-mutating, uncharged walk over the held capabilities — for
    shadow-state inspection by analyses, not for simulated programs. *)

val size : t -> int
