(* [lookup] runs on every simulated TLB miss, and a mature workload's
   random heap traffic misses the (architecturally small) TLB most of
   the time — so the authoritative hashtable sits behind a host-side
   direct-mapped cache of the option values themselves. The cache is
   pure memoization: [enter]/[remove] keep it exact, and hits return the
   same option [Hashtbl.find_opt] would, without hashing or allocation. *)
let cache_size = 8192 (* power of two *)

type t = {
  asid : int;
  pages : (int, Pte.t) Hashtbl.t;
  cache_key : int array; (* vpage, or -1 = unknown *)
  cache_val : Pte.t option array;
  mutable generation : bool;
  mutable lock_holder : int option;
  mutable lock_acquisitions : int;
  mutable contended : int;
  mutable busy_count : int;
}

let create ~asid =
  {
    asid;
    pages = Hashtbl.create 1024;
    cache_key = Array.make cache_size (-1);
    cache_val = Array.make cache_size None;
    generation = false;
    lock_holder = None;
    lock_acquisitions = 0;
    contended = 0;
    busy_count = 0;
  }

let asid t = t.asid

let cache_store t ~vpage v =
  let s = vpage land (cache_size - 1) in
  t.cache_key.(s) <- vpage;
  t.cache_val.(s) <- v

let enter t ~vpage pte =
  Hashtbl.replace t.pages vpage pte;
  cache_store t ~vpage (Some pte)

let remove t ~vpage =
  Hashtbl.remove t.pages vpage;
  cache_store t ~vpage None

let lookup t ~vpage =
  let s = vpage land (cache_size - 1) in
  if t.cache_key.(s) = vpage then t.cache_val.(s)
  else begin
    let v = Hashtbl.find_opt t.pages vpage in
    t.cache_key.(s) <- vpage;
    t.cache_val.(s) <- v;
    v
  end
let mem t ~vpage = Hashtbl.mem t.pages vpage
let page_count t = Hashtbl.length t.pages
let fold t ~init ~f = Hashtbl.fold f t.pages init
let iter t ~f = Hashtbl.iter f t.pages

let sorted_vpages t =
  let l = Hashtbl.fold (fun k _ acc -> k :: acc) t.pages [] in
  List.sort compare l

let generation t = t.generation
let set_generation t g = t.generation <- g

let lock t ~who =
  match t.lock_holder with
  | Some owner when owner = who -> invalid_arg "Pmap.lock: re-entrant acquisition"
  | Some _ ->
      (* Cooperative scheduling: the previous holder must have released at
         its last safe point; observing a holder here means contention. *)
      t.contended <- t.contended + 1;
      t.lock_holder <- Some who;
      t.lock_acquisitions <- t.lock_acquisitions + 1;
      true
  | None ->
      t.lock_holder <- Some who;
      t.lock_acquisitions <- t.lock_acquisitions + 1;
      false

let unlock t ~who =
  match t.lock_holder with
  | Some owner when owner = who -> t.lock_holder <- None
  | _ -> invalid_arg "Pmap.unlock: not the holder"

let lock_acquisitions t = t.lock_acquisitions
let busy t = t.busy_count <- t.busy_count + 1

let unbusy t =
  if t.busy_count <= 0 then invalid_arg "Pmap.unbusy: not busy";
  t.busy_count <- t.busy_count - 1

let is_busy t = t.busy_count > 0
