type t = {
  mutable frame : int;
  mutable readable : bool;
  mutable writable : bool;
  mutable cap_store : bool;
  mutable cap_dirty : bool;
  mutable clg : bool;
  mutable load_trap : bool;
  mutable wired : bool;
  mutable cow : bool; (* write-protected only to force a copy-on-write break *)
}

let make ~frame ~writable ~clg =
  {
    frame;
    readable = true;
    writable;
    cap_store = true;
    cap_dirty = false;
    clg;
    load_trap = false;
    wired = false;
    cow = false;
  }

let pp fmt t =
  Format.fprintf fmt "pte{f=%d %s%s%s cd=%b clg=%b}" t.frame
    (if t.readable then "r" else "-")
    (if t.writable then "w" else "-")
    (if t.cap_store then "c" else "-")
    t.cap_dirty t.clg
