(** Per-core translation lookaside buffer.

    Entries cache a reference to the live PTE {e plus snapshots} of the
    fields the hardware latches at fill time: the writable bit and the
    capability-load-generation bit. A PTE updated by the revoker on
    another core is therefore {e not} seen by this core until the entry is
    invalidated (shootdown) or evicted — the staleness that §4.3's
    double-locking fault path exists to resolve. *)

type entry = {
  vpage : int;
  pte : Pte.t;
  mutable clg_snapshot : bool;
  mutable writable_snapshot : bool;
}

type t

val create : ?entries:int -> unit -> t
(** [entries] defaults to 256 (direct-mapped by vpage). *)

val lookup : t -> vpage:int -> entry option
(** A hit returns the cached entry (statistics updated). *)

val insert : t -> vpage:int -> Pte.t -> entry
(** Fill after a page-table walk, snapshotting [clg] and [writable]. *)

val refresh : entry -> unit
(** Re-latch the snapshots from the live PTE (what the fault handler's
    cheap path does after finding the PTE already current). *)

val invalidate_page : t -> vpage:int -> unit

val invalidate_pages : t -> vpages:int list -> unit
(** Batch invalidation — one received (acknowledged) shootdown IPI.
    Counts once towards {!shootdowns} per non-empty batch, so a machine
    that re-IPIs a core after a lost ack leaves a visible double-count. *)

val flush : t -> unit

val hits : t -> int
val misses : t -> int

val shootdowns : t -> int
(** Shootdown batches this TLB has received (acks sent). *)
