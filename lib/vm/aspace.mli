(** An address space: layout + pmap + frame allocation.

    Translation here is the raw page-table walk; per-core TLB caching and
    its costs live in the machine layer. *)

type t

val create : Phys.t -> Layout.t -> asid:int -> t
val pmap : t -> Pmap.t
val layout : t -> Layout.t
val phys : t -> Phys.t

val map_range : t -> vaddr:int -> len:int -> writable:bool -> int
(** Map (and zero) all pages covering [\[vaddr, vaddr+len)] that are not
    already mapped; new PTEs adopt the pmap's current generation. Returns
    the number of pages freshly mapped. *)

val unmap_range : t -> vaddr:int -> len:int -> int list
(** Unmap every mapped page in the range, freeing frames; returns the
    vpages removed (caller must shoot down TLBs). *)

val translate : t -> int -> (int * Pte.t) option
(** [translate t va] walks the page table: physical address + PTE, or
    [None] if unmapped. *)

val mapped_pages : t -> int
val resident_bytes : t -> int

val asid : t -> int
(** The pmap's address-space id. *)

val fork : t -> asid:int -> t * int list
(** Copy-on-write duplicate: child PTEs share the parent's frames
    (reference-counted) with writable pages downgraded to read-only +
    [cow] on both sides; the child pmap inherits the parent's CLG
    generation and per-page [clg] bits (§4.3). Returns the child and the
    parent vpages that lost write permission — shoot those down. *)

val cow_break : t -> vpage:int -> bool
(** Resolve a CoW fault: privatise the frame (copying it if still
    shared) and restore write permission. Returns [true] iff a physical
    copy was made. *)

val release_all : t -> int
(** Unmap everything, dropping one reference per frame; returns the
    number of pages released. Used by [exec] and process reaping. *)
