let page_size = 4096
let page_shift = 12

type t = {
  mem : Tagmem.Mem.t;
  total : int;
  mutable free : int list;
  mutable nfree : int;
  refs : int array; (* sharing count per frame; 0 = free *)
}

let create mem =
  let total = Tagmem.Mem.size mem / page_size in
  let rec frames i acc = if i < 0 then acc else frames (i - 1) (i :: acc) in
  {
    mem;
    total;
    free = frames (total - 1) [];
    nfree = total;
    refs = Array.make total 0;
  }

let mem t = t.mem
let total_frames t = t.total
let free_frames t = t.nfree

let alloc_frame t =
  match t.free with
  | [] -> raise Out_of_memory
  | f :: rest ->
      t.free <- rest;
      t.nfree <- t.nfree - 1;
      t.refs.(f) <- 1;
      f

let ref_frame t f =
  assert (f >= 0 && f < t.total && t.refs.(f) > 0);
  t.refs.(f) <- t.refs.(f) + 1

let frame_refs t f =
  assert (f >= 0 && f < t.total);
  t.refs.(f)

let free_frame t f =
  assert (f >= 0 && f < t.total);
  assert (t.refs.(f) > 0);
  t.refs.(f) <- t.refs.(f) - 1;
  if t.refs.(f) = 0 then begin
    t.free <- f :: t.free;
    t.nfree <- t.nfree + 1
  end

let frame_addr f = f lsl page_shift

let zero_frame t f =
  let lo = frame_addr f in
  Tagmem.Mem.fill t.mem ~lo ~hi:(lo + page_size) 0

let copy_frame t ~src ~dst =
  Tagmem.Mem.copy_range t.mem ~src:(frame_addr src) ~dst:(frame_addr dst)
    ~len:page_size
