type t = { phys : Phys.t; layout : Layout.t; pmap : Pmap.t }

let create phys layout ~asid = { phys; layout; pmap = Pmap.create ~asid }
let pmap t = t.pmap
let layout t = t.layout
let phys t = t.phys
let page = Phys.page_size

let map_range t ~vaddr ~len ~writable =
  let first = vaddr / page and last = (vaddr + len - 1) / page in
  let fresh = ref 0 in
  for vp = first to last do
    if not (Pmap.mem t.pmap ~vpage:vp) then begin
      let frame = Phys.alloc_frame t.phys in
      Phys.zero_frame t.phys frame;
      let pte = Pte.make ~frame ~writable ~clg:(Pmap.generation t.pmap) in
      Pmap.enter t.pmap ~vpage:vp pte;
      incr fresh
    end
  done;
  !fresh

let unmap_range t ~vaddr ~len =
  let first = vaddr / page and last = (vaddr + len - 1) / page in
  let removed = ref [] in
  for vp = first to last do
    match Pmap.lookup t.pmap ~vpage:vp with
    | None -> ()
    | Some pte ->
        Phys.free_frame t.phys pte.Pte.frame;
        Pmap.remove t.pmap ~vpage:vp;
        removed := vp :: !removed
  done;
  List.rev !removed

let translate t va =
  match Pmap.lookup t.pmap ~vpage:(va / page) with
  | None -> None
  | Some pte -> Some (Phys.frame_addr pte.Pte.frame + (va land (page - 1)), pte)

let mapped_pages t = Pmap.page_count t.pmap
let resident_bytes t = mapped_pages t * page
let asid t = Pmap.asid t.pmap

(* Copy-on-write fork. Every mapping is shared frame-for-frame: writable
   pages (in both parent and child) are downgraded to read-only with the
   [cow] bit set so the first store on either side takes a fault and gets
   a private copy. The child pmap inherits the parent's CLG generation and
   each PTE keeps its per-page [clg] bit (§4.3: the child inherits the
   parent's revocation-in-progress state verbatim). Returns the new space
   and the parent vpages that were downgraded — the caller must shoot
   those down from TLBs so stale writable snapshots cannot linger. *)
let fork t ~asid =
  let child = { phys = t.phys; layout = t.layout; pmap = Pmap.create ~asid } in
  Pmap.set_generation child.pmap (Pmap.generation t.pmap);
  let downgraded = ref [] in
  Pmap.iter t.pmap ~f:(fun vp (pte : Pte.t) ->
      Phys.ref_frame t.phys pte.Pte.frame;
      let cpte = Pte.make ~frame:pte.Pte.frame ~writable:false ~clg:pte.Pte.clg in
      cpte.Pte.readable <- pte.Pte.readable;
      cpte.Pte.cap_store <- pte.Pte.cap_store;
      cpte.Pte.cap_dirty <- pte.Pte.cap_dirty;
      cpte.Pte.load_trap <- pte.Pte.load_trap;
      cpte.Pte.wired <- pte.Pte.wired;
      cpte.Pte.cow <- pte.Pte.writable || pte.Pte.cow;
      Pmap.enter child.pmap ~vpage:vp cpte;
      if pte.Pte.writable then begin
        pte.Pte.writable <- false;
        pte.Pte.cow <- true;
        downgraded := vp :: !downgraded
      end);
  (child, List.rev !downgraded)

(* Resolve a CoW fault on [vpage]. If the frame is no longer shared the
   PTE is upgraded in place; otherwise the frame is duplicated. Returns
   [true] iff a physical copy happened (the caller charges for it). *)
let cow_break t ~vpage =
  match Pmap.lookup t.pmap ~vpage with
  | None -> invalid_arg "Aspace.cow_break: unmapped vpage"
  | Some pte ->
      if not pte.Pte.cow then invalid_arg "Aspace.cow_break: not a CoW page";
      let copied =
        if Phys.frame_refs t.phys pte.Pte.frame = 1 then false
        else begin
          let fresh = Phys.alloc_frame t.phys in
          Phys.copy_frame t.phys ~src:pte.Pte.frame ~dst:fresh;
          Phys.free_frame t.phys pte.Pte.frame;
          pte.Pte.frame <- fresh;
          true
        end
      in
      pte.Pte.writable <- true;
      pte.Pte.cow <- false;
      copied

(* Tear down every mapping (process reap / exec). Frames are dropped by
   one reference each; shared CoW frames survive in their other owners. *)
let release_all t =
  let vps = Pmap.sorted_vpages t.pmap in
  List.iter
    (fun vp ->
      (match Pmap.lookup t.pmap ~vpage:vp with
      | Some pte -> Phys.free_frame t.phys pte.Pte.frame
      | None -> ());
      Pmap.remove t.pmap ~vpage:vp)
    vps;
  List.length vps
