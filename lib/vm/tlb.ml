type entry = {
  vpage : int;
  pte : Pte.t;
  mutable clg_snapshot : bool;
  mutable writable_snapshot : bool;
}

type t = {
  slots : entry option array;
  mask : int;
  mutable hits : int;
  mutable misses : int;
  mutable shootdowns : int;
}

let create ?(entries = 256) () =
  assert (entries land (entries - 1) = 0);
  {
    slots = Array.make entries None;
    mask = entries - 1;
    hits = 0;
    misses = 0;
    shootdowns = 0;
  }

(* Returns the slot's own option on a hit instead of rebuilding [Some e]:
   this runs once per simulated memory access, and the fresh allocation
   was measurable GC pressure. *)
let lookup t ~vpage =
  match t.slots.(vpage land t.mask) with
  | Some e as o when e.vpage = vpage ->
      t.hits <- t.hits + 1;
      o
  | Some _ | None ->
      t.misses <- t.misses + 1;
      None

let insert t ~vpage pte =
  let e =
    { vpage; pte; clg_snapshot = pte.Pte.clg; writable_snapshot = pte.Pte.writable }
  in
  t.slots.(vpage land t.mask) <- Some e;
  e

let refresh e =
  e.clg_snapshot <- e.pte.Pte.clg;
  e.writable_snapshot <- e.pte.Pte.writable

let invalidate_page t ~vpage =
  match t.slots.(vpage land t.mask) with
  | Some e when e.vpage = vpage -> t.slots.(vpage land t.mask) <- None
  | Some _ | None -> ()

(* Batch invalidation: one acknowledged IPI covers the whole list. The
   shootdown counter ticks per batch received, not per page, so lost-ack
   retries are visible as extra acks in the statistics. *)
let invalidate_pages t ~vpages =
  List.iter (fun vpage -> invalidate_page t ~vpage) vpages;
  if vpages <> [] then t.shootdowns <- t.shootdowns + 1

let flush t = Array.fill t.slots 0 (Array.length t.slots) None
let hits t = t.hits
let misses t = t.misses
let shootdowns t = t.shootdowns
