(** Physical frame allocator.

    Hands out page frames over a {!Tagmem.Mem.t}. Frames are recycled
    LIFO; freed frames are {e not} zeroed here — zeroing policy (and its
    cost) belongs to the kernel/allocator layers. *)

type t

val page_size : int (** 4096 *)

val page_shift : int

val create : Tagmem.Mem.t -> t
(** Manage every whole frame of the given memory. *)

val mem : t -> Tagmem.Mem.t
val total_frames : t -> int
val free_frames : t -> int

val alloc_frame : t -> int
(** Returns a frame number with sharing count 1. Raises [Out_of_memory]
    when exhausted. *)

val ref_frame : t -> int -> unit
(** Bump a live frame's sharing count — copy-on-write [fork] maps the
    same frame into two address spaces. *)

val frame_refs : t -> int -> int
(** Current sharing count (0 = free). *)

val free_frame : t -> int -> unit
(** Drop one reference; the frame returns to the free list only when the
    last reference goes. For never-shared frames this is exactly the old
    alloc/free discipline. *)

val frame_addr : int -> int
(** Physical byte address of a frame's first byte. *)

val zero_frame : t -> int -> unit
(** Zero the frame's bytes and clear its tags. *)

val copy_frame : t -> src:int -> dst:int -> unit
(** Duplicate a whole frame, preserving data, tags, and shadow
    capabilities — the copy half of copy-on-write. *)
