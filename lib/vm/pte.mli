(** Page table entries.

    Each PTE carries, besides the frame number and protection bits, the two
    architectural features this work depends on:

    - a {e capability-dirty} bit ([cap_dirty]), set by hardware whenever a
      tagged capability is stored to the page — the store barrier of §2.2.4
      and §4.2 of the paper;
    - a {e capability load generation} bit ([clg], §4.1): when a core's
      in-core generation differs from the PTE's, loading a tagged
      capability from the page traps. Toggling only the in-core bit starts
      a revocation epoch without touching any PTE. *)

type t = {
  mutable frame : int; (** physical page number *)
  mutable readable : bool;
  mutable writable : bool;
  mutable cap_store : bool; (** page may receive tagged capability stores *)
  mutable cap_dirty : bool; (** a capability has been stored since last clear *)
  mutable clg : bool; (** capability load generation bit *)
  mutable load_trap : bool;
      (** "all capability loads trap" disposition (§7.6 proposal); when set,
          any tagged load faults regardless of generation *)
  mutable wired : bool; (** may not be swapped/changed during sweep *)
  mutable cow : bool;
      (** write-protected only because the frame is shared copy-on-write;
          the first store takes a fault, privatises the frame, and
          restores write permission *)
}

val make : frame:int -> writable:bool -> clg:bool -> t
val pp : Format.formatter -> t -> unit
