module Machine = Sim.Machine

type t = { mutable counter : int; mutable aborts : int; changed : Machine.condvar }

let create () = { counter = 0; aborts = 0; changed = Machine.condvar () }
let counter t = t.counter
let in_progress t = t.counter land 1 = 1
let aborts t = t.aborts

let bump t ctx ~want_parity =
  if t.counter land 1 <> want_parity then
    invalid_arg "Epoch: begin/end out of order";
  t.counter <- t.counter + 1;
  Machine.broadcast ctx t.changed

let begin_revocation t ctx = bump t ctx ~want_parity:0
let end_revocation t ctx = bump t ctx ~want_parity:1

(* Aborting an epoch retracts the begin increment instead of completing
   it: the counter returns to its pre-begin (even) value. This is the
   only sound direction — completing a pass that did not finish sweeping
   would let [is_clean] clear memory that was never revoked, whereas
   moving the counter backwards can only make waiters wait longer.
   Waiters are woken anyway so anyone waiting on [wait_change] (epoch
   gates, schedulers) re-examines the world. *)
let abort_revocation t ctx =
  if t.counter land 1 <> 1 then
    invalid_arg "Epoch: abort outside an open revocation";
  t.counter <- t.counter - 1;
  t.aborts <- t.aborts + 1;
  Machine.broadcast ctx t.changed
let clean_target e =
  let t = if e land 1 = 0 then e + 2 else e + 3 in
  (* saturate instead of wrapping negative near max_int: memory painted
     that late is simply never considered clean *)
  if t < e then max_int else t
let is_clean t ~painted_at = t.counter >= clean_target painted_at

let wait_clean t ctx ~painted_at =
  while not (is_clean t ~painted_at) do
    Machine.wait ctx t.changed
  done

let wait_change t ctx =
  let c = t.counter in
  while t.counter = c do
    Machine.wait ctx t.changed
  done
