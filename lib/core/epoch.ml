module Machine = Sim.Machine

type t = { mutable counter : int; changed : Machine.condvar }

let create () = { counter = 0; changed = Machine.condvar () }
let counter t = t.counter
let in_progress t = t.counter land 1 = 1

let bump t ctx ~want_parity =
  if t.counter land 1 <> want_parity then
    invalid_arg "Epoch: begin/end out of order";
  t.counter <- t.counter + 1;
  Machine.broadcast ctx t.changed

let begin_revocation t ctx = bump t ctx ~want_parity:0
let end_revocation t ctx = bump t ctx ~want_parity:1
let clean_target e =
  let t = if e land 1 = 0 then e + 2 else e + 3 in
  (* saturate instead of wrapping negative near max_int: memory painted
     that late is simply never considered clean *)
  if t < e then max_int else t
let is_clean t ~painted_at = t.counter >= clean_target painted_at

let wait_clean t ctx ~painted_at =
  while not (is_clean t ~painted_at) do
    Machine.wait ctx t.changed
  done

let wait_change t ctx =
  let c = t.counter in
  while t.counter = c do
    Machine.wait ctx t.changed
  done
