module Machine = Sim.Machine
module Backend = Alloc.Backend

type mode = Baseline | Safe of Revoker.strategy
type allocator_kind = Snmalloc | Jemalloc

let mode_name = function
  | Baseline -> "baseline"
  | Safe s -> Revoker.strategy_name s

let all_modes = Baseline :: List.map (fun s -> Safe s) Revoker.all_strategies

type t = {
  machine : Machine.t;
  alloc : Backend.t;
  hoards : Kernel.Hoard.t;
  mode : mode;
  mrs : Mrs.t option;
  revoker : Revoker.t option;
}

let create ?(config = Machine.default_config) ?(policy = Policy.default)
    ?(revoker_core = 2) ?(non_temporal = false) ?recovery
    ?(allocator = Snmalloc) mode =
  let machine = Machine.create config in
  let alloc =
    match allocator with
    | Snmalloc -> Backend.snmalloc (Alloc.Allocator.create machine)
    | Jemalloc -> Backend.jemalloc (Alloc.Jemalloc.create machine)
  in
  let hoards = Kernel.Hoard.create () in
  match mode with
  | Baseline -> { machine; alloc; hoards; mode; mrs = None; revoker = None }
  | Safe strategy ->
      let revoker =
        Revoker.create machine ~strategy ~core:revoker_core ~non_temporal
          ?recovery ~hoards ()
      in
      let mrs = Mrs.create machine ~alloc ~revoker ~policy () in
      { machine; alloc; hoards; mode; mrs = Some mrs; revoker = Some revoker }

let malloc t ctx size =
  match t.mrs with
  | Some mrs -> Mrs.malloc mrs ctx size
  | None -> t.alloc.Backend.malloc ctx size

let free t ctx cap =
  match t.mrs with
  | Some mrs -> Mrs.free mrs ctx cap
  | None -> t.alloc.Backend.free ctx cap

let finish t ctx =
  match t.mrs with Some mrs -> Mrs.finish mrs ctx | None -> ()

let revoker_records t =
  match t.revoker with Some r -> Revoker.records r | None -> []

let mrs_stats t = Option.map Mrs.stats t.mrs
