module Capability = Cheri.Capability
module Perms = Cheri.Perms
module Layout = Vm.Layout
module Machine = Sim.Machine

type t = {
  m : Machine.t;
  mutable aspace : Vm.Aspace.t; (* host-side probes translate through this *)
  layout : Layout.t;
  shadow_cap : Capability.t; (* spans the shadow region; data perms only *)
  mutable bits : int;
}

let granule = 16

let create ?aspace m =
  let aspace = match aspace with Some a -> a | None -> Machine.aspace m in
  let layout = Machine.layout m in
  let root = Capability.root ~length:(1 lsl 40) in
  let shadow_cap =
    Capability.set_bounds root ~base:layout.Layout.shadow_base
      ~length:(layout.Layout.shadow_limit - layout.Layout.shadow_base)
  in
  let shadow_cap =
    Capability.restrict_perms shadow_cap
      (Perms.union Perms.load (Perms.union Perms.store Perms.global))
  in
  assert (Capability.tag shadow_cap);
  { m; aspace; layout; shadow_cap; bits = 0 }

(* Fork inheritance: the child's shadow pages are CoW copies of the
   parent's, so its painted-bit population starts at the parent's. *)
let seed_bits t n = t.bits <- n

(* Exec: the process got a fresh (all-clear) shadow region. *)
let rebind t ~aspace =
  t.aspace <- aspace;
  t.bits <- 0

(* One shared branch-free implementation (Tagmem.Mem.popcount64): the
   paint/clear accounting here and the tag-word sweep kernels count bits
   the same way. *)
let popcount64 = Tagmem.Mem.popcount64

let check_range t ~addr ~size =
  if addr land (granule - 1) <> 0 || size land (granule - 1) <> 0 || size <= 0 then
    invalid_arg "Revmap: unaligned paint/clear";
  if not (Layout.contains_heap t.layout addr && addr + size <= t.layout.Layout.heap_limit)
  then invalid_arg "Revmap: range outside heap"

(* Apply [op] to the shadow words covering granules [g0, g1): for each
   64-bit word, a mask of the affected bits is computed and the word is
   read-modified-written through the user mapping. Returns the number of
   bits actually flipped; the caller folds it into [t.bits] in the same
   host-side section as its trace emit — each [rmw_u64] is a scheduling
   point, so updating the counter word-by-word would let a checker
   comparing [set_bits] against the event ledger observe a half-applied
   range from another thread. *)
let rmw_range t ctx ~addr ~size ~set =
  check_range t ~addr ~size;
  let g0 = (addr - t.layout.Layout.heap_base) / granule in
  let g1 = g0 + (size / granule) in
  let w = ref (g0 / 64) in
  let last_word = (g1 - 1) / 64 in
  let flipped = ref 0 in
  while !w <= last_word do
    let lo_bit = max g0 (!w * 64) - (!w * 64) in
    let hi_bit = min g1 ((!w + 1) * 64) - (!w * 64) in
    let mask =
      if hi_bit - lo_bit = 64 then -1L
      else
        Int64.shift_left
          (Int64.sub (Int64.shift_left 1L (hi_bit - lo_bit)) 1L)
          lo_bit
    in
    let word_addr = t.layout.Layout.shadow_base + (!w * 8) in
    let c = Capability.set_addr t.shadow_cap word_addr in
    (* atomic: a concurrent paint and clear of neighbouring bits in the
       same word must not lose or resurrect updates *)
    let old =
      Machine.rmw_u64 ctx c (fun old ->
          if set then Int64.logor old mask else Int64.logand old (Int64.lognot mask))
    in
    let nw =
      if set then Int64.logor old mask else Int64.logand old (Int64.lognot mask)
    in
    flipped := !flipped + popcount64 (Int64.logxor nw old);
    incr w
  done;
  !flipped

let paint t ctx ~addr ~size =
  let delta = rmw_range t ctx ~addr ~size ~set:true in
  t.bits <- t.bits + delta;
  Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
    ~pid:(Machine.ctx_pid ctx) ~arg2:size Sim.Trace.Paint addr

let clear t ctx ~addr ~size =
  let delta = rmw_range t ctx ~addr ~size ~set:false in
  t.bits <- t.bits - delta;
  Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
    ~pid:(Machine.ctx_pid ctx) ~arg2:size Sim.Trace.Unpaint addr

(* Zero-alloc: one probe per tagged granule swept, so the moved
   capability and the boxed word were the sweep loop's main GC traffic. *)
let test t ctx a =
  if not (Layout.contains_heap t.layout a) then false
  else begin
    let g = (a - t.layout.Layout.heap_base) / granule in
    let word_addr = t.layout.Layout.shadow_base + (g / 64 * 8) in
    Machine.load_u64_bit ctx t.shadow_cap word_addr ~bit:(g land 63)
  end

let test_host t a =
  if not (Layout.contains_heap t.layout a) then false
  else begin
    let g = (a - t.layout.Layout.heap_base) / granule in
    let word_addr = t.layout.Layout.shadow_base + (g / 64 * 8) in
    match Vm.Aspace.translate t.aspace word_addr with
    | None -> false
    | Some (pa, _) ->
        let word = Tagmem.Mem.read_u64 (Machine.mem t.m) pa in
        not (Int64.equal (Int64.logand word (Int64.shift_left 1L (g land 63))) 0L)
  end

let revoke_cap t ctx c =
  if not (Capability.tag c) then c
  else if test t ctx (Capability.base c) then Capability.clear_tag c
  else c

let set_bits t = t.bits
