(** Quarantine sizing policy (§2.2.2, §7.2 of the paper).

    The paper's configuration: trigger revocation when quarantine exceeds
    one quarter of the total heap (equivalently one third of the
    allocated heap), but never for less than a minimum batch (8 MiB on
    Morello; scaled here — see DESIGN.md). Allocation and free
    operations block when quarantine is over twice the trigger point
    while a revocation is already in flight (§5.3). *)

type t = {
  fraction : float; (** quarantine / (live + quarantine) trigger ratio *)
  min_quarantine : int; (** bytes; no revocation below this *)
  block_factor : float; (** block ops at [block_factor × threshold] *)
}

val default : t
(** fraction 0.25, min 128 KiB (8 MiB / the 1/64 scale), block at 2×. *)

val with_min : t -> int -> t
val with_fraction : t -> float -> t

val threshold : t -> live:int -> quarantine:int -> int
(** Current trigger point in bytes. *)

val should_revoke : t -> live:int -> quarantine:int -> bool
val should_block : t -> live:int -> quarantine:int -> bool

val adaptive : t -> load:float -> t
(** Load-adaptive trigger for SLO-aware serving ([lib/service]):
    [adaptive t ~load] (with [load] clamped to [\[0,1\]]) scales the
    trigger fraction from 0.5× at [load = 0] (eager — open epochs in
    traffic troughs) to 1.5× at [load = 1] (deferred — keep the revoker
    out of the way at peak), capped strictly below the blocking margin
    so adaptation can never make ordinary allocation block. [min_quarantine]
    and [block_factor] are unchanged: blocking stays the hard backstop. *)
