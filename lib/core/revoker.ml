module Capability = Cheri.Capability
module Machine = Sim.Machine
module Cost = Sim.Cost
module Pte = Vm.Pte
module Pmap = Vm.Pmap
module Phys = Vm.Phys
module Layout = Vm.Layout

type strategy = Paint_sync | Cherivoke | Cornucopia | Reloaded | Cheriot_filter

let strategy_name = function
  | Paint_sync -> "paint+sync"
  | Cherivoke -> "cherivoke"
  | Cornucopia -> "cornucopia"
  | Reloaded -> "reloaded"
  | Cheriot_filter -> "cheriot"

let all_strategies = [ Paint_sync; Cherivoke; Cornucopia; Reloaded ]
let extended_strategies = all_strategies @ [ Cheriot_filter ]

type batch = { entries : (int * int) list; bytes : int }

(* Deliberate protocol mutations, used by the sanitizer's mutation tests
   (and nothing else) to prove each invariant check actually fires. *)
type fault = Skip_shootdown | Skip_hoard_scan | Early_dequarantine

let fault_name = function
  | Skip_shootdown -> "skip-shootdown"
  | Skip_hoard_scan -> "skip-hoard-scan"
  | Early_dequarantine -> "early-dequarantine"

type phase_record = {
  epoch_index : int;
  requested_at : int;
  stw_cycles : int;
  concurrent_cycles : int;
  fault_cycles : int;
  fault_count : int;
  pages_visited : int;
  caps_revoked : int;
  bytes_processed : int;
}

type helper_mode =
  | Idle
  | Sweep_reloaded of bool * bool (* generation, force-visit-all *)
  | Sweep_cheriot
  | Stop

type helper = {
  h_core : int;
  h_work_cv : Machine.condvar;
  h_done_cv : Machine.condvar;
  mutable h_queue : int list;
  mutable h_mode : helper_mode;
  mutable h_pages : int;
  mutable h_revoked : int;
}

type t = {
  m : Machine.t;
  mutable aspace : Vm.Aspace.t;
  pid : int;
  strategy : strategy;
  core : int;
  non_temporal : bool;
  pte_flag_barrier : bool;
  revmap : Revmap.t;
  epoch : Epoch.t;
  hoards : Kernel.Hoard.t;
  work_cv : Machine.condvar;
  visit_set : (int, unit) Hashtbl.t; (* vpages that have held capabilities *)
  mutable helpers : helper list;
  mutable queue : batch list; (* newest first *)
  mutable queued_bytes : int;
  mutable in_flight : bool;
  mutable shutdown : bool;
  mutable records : phase_record list; (* newest first *)
  mutable on_clean : (Machine.ctx -> batch -> unit) option;
  (* accumulated by the Reloaded fault handler during the current epoch *)
  mutable fault_cycles : int;
  mutable fault_count : int;
  mutable revocations : int;
  mutable total_bytes : int;
  mutable current_entries : (int * int) list;
  mutable barrier_armed : bool;
      (* Reloaded: set once the epoch-opening stop-the-world has completed,
         i.e. from when the §3.2 invariant is established *)
  mutable fault : fault option;
  mutable mixed_gen : bool;
      (* set when this revoker inherited a fork-split address space whose
         PTEs carry two generations (§4.3): the next Reloaded epoch must
         visit every heap page unconditionally, since pages stale from
         before the fork can alias the post-toggle current generation *)
  mutable gate_acquire : Machine.ctx -> unit;
  mutable gate_release : Machine.ctx -> unit;
      (* cross-process revocation scheduler hooks, held around each epoch *)
  mutable service_threads : Machine.thread list;
      (* the revoker thread + helpers, for exec-time aspace rebinding *)
}

let strategy t = t.strategy
let pid t = t.pid
let aspace t = t.aspace
let epoch t = t.epoch
let revmap t = t.revmap
let hoards t = t.hoards
let inject_fault t f = t.fault <- f
let injected_fault t = t.fault
let set_on_clean t f = t.on_clean <- Some f
let in_flight t = t.in_flight
let currently_revoking t = t.current_entries

let queued_entries t =
  List.concat_map (fun b -> b.entries) (List.rev t.queue)
let barrier_armed t = t.barrier_armed
let queued_bytes t = t.queued_bytes
let records t = List.rev t.records
let revocation_count t = t.revocations
let total_bytes_processed t = t.total_bytes

let heap_vpages t =
  let layout = Vm.Aspace.layout t.aspace in
  let lo = layout.Layout.heap_base / Phys.page_size in
  let hi = (layout.Layout.heap_limit - 1) / Phys.page_size in
  List.filter
    (fun vp -> vp >= lo && vp <= hi)
    (Pmap.sorted_vpages (Vm.Aspace.pmap t.aspace))

(* Fold freshly capability-dirty pages into the visit set. Per §4.5, the
   re-implementation never removes a page from the set once it has held
   capabilities (except Reloaded's clean-page detection, applied at sweep
   time). Clears the hardware bit when [reset] so later stores re-dirty. *)
let update_visit_set t ctx ~reset =
  let pmap = Vm.Aspace.pmap t.aspace in
  List.iter
    (fun vp ->
      match Pmap.lookup pmap ~vpage:vp with
      | Some pte when pte.Pte.cap_dirty ->
          Hashtbl.replace t.visit_set vp ();
          if reset then begin
            pte.Pte.cap_dirty <- false;
            Machine.charge ctx Cost.pte_update
          end
      | Some _ | None -> ())
    (heap_vpages t)

let scan_roots t ctx =
  let revoked = ref 0 in
  List.iter
    (fun th ->
      if Machine.thread_pid th = t.pid then
        revoked := !revoked + Sweep.scan_regfile ctx t.revmap (Machine.regs th))
    (Machine.user_threads t.m);
  if t.fault <> Some Skip_hoard_scan then
    revoked := !revoked + Sweep.scan_hoard ctx t.revmap t.hoards;
  !revoked

let sweep_vpage t ctx vp =
  let pmap = Vm.Aspace.pmap t.aspace in
  match Pmap.lookup pmap ~vpage:vp with
  | None -> Sweep.zero_stats
  | Some pte -> Sweep.sweep_page ~non_temporal:t.non_temporal ctx t.revmap ~pte

(* ---- per-page visits (shared between the revoker thread and §7.1's
   helper threads) ---- *)

(* Reloaded: bring one page to the current generation, content-sweeping it
   only if it may hold capabilities. Returns (pages, revoked) deltas. *)
let visit_reloaded t ctx gen ~force vp =
  let pmap = Vm.Aspace.pmap t.aspace in
  match Pmap.lookup pmap ~vpage:vp with
  | None -> (0, 0)
  | Some pte ->
      if pte.Pte.clg <> gen || force then begin
        let pages, revoked =
          if Hashtbl.mem t.visit_set vp then begin
            let st = Sweep.sweep_page ~non_temporal:t.non_temporal ctx t.revmap ~pte in
            (* clean-page detection: a swept page with no capabilities left
               need not be content-swept next epoch *)
            if st.Sweep.tagged = 0 && not pte.Pte.cap_dirty then
              Hashtbl.remove t.visit_set vp;
            (1, st.Sweep.revoked)
          end
          else (0, 0)
        in
        Machine.with_pmap_lock ctx (fun () ->
            if pte.Pte.clg <> gen then begin
              pte.Pte.clg <- gen;
              Machine.charge ctx Cost.pte_update
            end);
        (pages, revoked)
      end
      else (0, 0)

(* CHERIoT: the load filter guarantees stale capabilities cannot be
   propagated, so a single idempotent content sweep per epoch suffices —
   no generations, no re-scan. *)
let visit_cheriot t ctx vp =
  if Hashtbl.mem t.visit_set vp then begin
    let st = sweep_vpage t ctx vp in
    (1, st.Sweep.revoked)
  end
  else (0, 0)

(* ---- helper threads (§7.1 concurrent background revocation) ---- *)

let helper_body t h ctx =
  let rec loop () =
    while h.h_mode = Idle && not t.shutdown do
      Machine.wait ctx h.h_work_cv
    done;
    match h.h_mode with
    | Stop -> ()
    | Idle -> if t.shutdown then () else loop ()
    | (Sweep_reloaded _ | Sweep_cheriot) as mode ->
        List.iter
          (fun vp ->
            Machine.safe_point ctx;
            let pages, revoked =
              match mode with
              | Sweep_reloaded (gen, force) -> visit_reloaded t ctx gen ~force vp
              | Sweep_cheriot -> visit_cheriot t ctx vp
              | Idle | Stop -> (0, 0)
            in
            h.h_pages <- h.h_pages + pages;
            h.h_revoked <- h.h_revoked + revoked)
          h.h_queue;
        h.h_queue <- [];
        h.h_mode <- Idle;
        Machine.broadcast ctx h.h_done_cv;
        loop ()
  in
  loop ()

(* Partition [pages] round-robin over helpers, run the main thread's share
   inline, and wait for every helper to drain. *)
let fan_out t ctx ~pages ~mode ~visit =
  match t.helpers with
  | [] ->
      let p = ref 0 and r = ref 0 in
      List.iter
        (fun vp ->
          Machine.safe_point ctx;
          let dp, dr = visit vp in
          p := !p + dp;
          r := !r + dr)
        pages;
      (!p, !r)
  | helpers ->
      let k = List.length helpers + 1 in
      let shares = Array.make k [] in
      List.iteri (fun i vp -> shares.(i mod k) <- vp :: shares.(i mod k)) pages;
      List.iteri
        (fun i h ->
          h.h_queue <- shares.(i + 1);
          h.h_pages <- 0;
          h.h_revoked <- 0;
          h.h_mode <- mode;
          Machine.broadcast ctx h.h_work_cv)
        helpers;
      let p = ref 0 and r = ref 0 in
      List.iter
        (fun vp ->
          Machine.safe_point ctx;
          let dp, dr = visit vp in
          p := !p + dp;
          r := !r + dr)
        shares.(0);
      List.iter
        (fun h ->
          while h.h_mode <> Idle do
            Machine.wait ctx h.h_done_cv
          done;
          p := !p + h.h_pages;
          r := !r + h.h_revoked)
        helpers;
      (!p, !r)

(* ---- strategy bodies: each runs one revocation epoch ---- *)

type epoch_outcome = {
  o_stw : int;
  o_conc : int;
  o_pages : int;
  o_revoked : int;
}

let run_cherivoke t ctx =
  let pages = ref 0 and revoked = ref 0 in
  let (), rep =
    Machine.stop_the_world ctx ~scope:[ t.pid ] (fun () ->
        update_visit_set t ctx ~reset:true;
        revoked := scan_roots t ctx;
        Hashtbl.iter
          (fun vp () ->
            let st = sweep_vpage t ctx vp in
            incr pages;
            revoked := !revoked + st.Sweep.revoked)
          t.visit_set)
  in
  {
    o_stw = rep.Machine.released_at - rep.Machine.requested_at;
    o_conc = 0;
    o_pages = !pages;
    o_revoked = !revoked;
  }

let run_cornucopia t ctx =
  let pmap = Vm.Aspace.pmap t.aspace in
  let asid = Vm.Aspace.asid t.aspace in
  let pages = ref 0 and revoked = ref 0 in
  (* concurrent phase: sweep every page that has ever held capabilities,
     clearing its dirty bit first so stores during the sweep re-dirty it *)
  let t0 = Machine.now ctx in
  update_visit_set t ctx ~reset:false;
  let targets = List.filter (Hashtbl.mem t.visit_set) (heap_vpages t) in
  List.iter
    (fun vp ->
      Machine.safe_point ctx;
      match Pmap.lookup pmap ~vpage:vp with
      | None -> ()
      | Some pte ->
          Machine.with_pmap_lock ctx (fun () ->
              if pte.Pte.cap_dirty then begin
                pte.Pte.cap_dirty <- false;
                Machine.charge ctx Cost.pte_update
              end);
          if t.fault <> Some Skip_shootdown then
            Machine.tlb_shootdown ~asid ctx ~vpages:[ vp ];
          let st = Sweep.sweep_page ~non_temporal:t.non_temporal ctx t.revmap ~pte in
          incr pages;
          revoked := !revoked + st.Sweep.revoked)
    targets;
  let conc = Machine.now ctx - t0 in
  (* stop-the-world phase: roots, then pages re-dirtied during the sweep *)
  let (), rep =
    Machine.stop_the_world ctx ~scope:[ t.pid ] (fun () ->
        revoked := !revoked + scan_roots t ctx;
        List.iter
          (fun vp ->
            match Pmap.lookup pmap ~vpage:vp with
            | Some pte when pte.Pte.cap_dirty ->
                (* a page first capability-dirtied during the concurrent
                   phase has never entered the visit set; record it or the
                   NEXT epoch will skip it while it still holds
                   capabilities swept only up to this epoch's quarantine
                   (§4.5's never-forget discipline) *)
                Hashtbl.replace t.visit_set vp ();
                pte.Pte.cap_dirty <- false;
                Machine.charge ctx Cost.pte_update;
                let st =
                  Sweep.sweep_page ~non_temporal:t.non_temporal ctx t.revmap ~pte
                in
                incr pages;
                revoked := !revoked + st.Sweep.revoked
            | Some _ | None -> ())
          (heap_vpages t))
  in
  {
    o_stw = rep.Machine.released_at - rep.Machine.requested_at;
    o_conc = conc;
    o_pages = !pages;
    o_revoked = !revoked;
  }

let run_reloaded t ctx =
  let pmap = Vm.Aspace.pmap t.aspace in
  let root_revoked = ref 0 in
  (* stop-the-world: toggle generations, scan registers and hoards; no
     PTE is touched (§4.1) — unless the §4.1 ablation of a per-PTE barrier
     flag is enabled, in which case every PTE is updated with the world
     stopped, which is exactly what the generation scheme avoids. *)
  let (), rep =
    Machine.stop_the_world ctx ~scope:[ t.pid ] (fun () ->
        Machine.toggle_clg ctx;
        update_visit_set t ctx ~reset:true;
        root_revoked := scan_roots t ctx;
        if t.pte_flag_barrier then begin
          let pages = heap_vpages t in
          List.iter (fun _ -> Machine.charge ctx Cost.pte_update) pages;
          Machine.tlb_shootdown ~asid:(Vm.Aspace.asid t.aspace) ctx ~vpages:pages
        end)
  in
  t.barrier_armed <- true;
  (* background phase: visit every heap page still at the old generation;
     content-sweep only pages that may hold capabilities. The application
     races us via its load-barrier faults; page visits are idempotent. *)
  let gen = Pmap.generation pmap in
  let force = t.mixed_gen in
  let t0 = Machine.now ctx in
  let pages, revoked =
    fan_out t ctx ~pages:(heap_vpages t)
      ~mode:(Sweep_reloaded (gen, force))
      ~visit:(visit_reloaded t ctx gen ~force)
  in
  t.mixed_gen <- false;
  {
    o_stw = rep.Machine.released_at - rep.Machine.requested_at;
    o_conc = Machine.now ctx - t0;
    o_pages = pages;
    o_revoked = revoked + !root_revoked;
  }

let run_cheriot t ctx =
  (* No load generations: the per-load filter already blocks stale
     capabilities. A short stop-the-world scans registers and hoards
     (stores of register-held stale capabilities are not filtered), then
     one concurrent content sweep erases them from memory. *)
  let root_revoked = ref 0 in
  let (), rep =
    Machine.stop_the_world ctx ~scope:[ t.pid ] (fun () ->
        update_visit_set t ctx ~reset:true;
        root_revoked := scan_roots t ctx)
  in
  let t0 = Machine.now ctx in
  let targets = List.filter (Hashtbl.mem t.visit_set) (heap_vpages t) in
  let pages, revoked =
    fan_out t ctx ~pages:targets ~mode:Sweep_cheriot ~visit:(visit_cheriot t ctx)
  in
  {
    o_stw = rep.Machine.released_at - rep.Machine.requested_at;
    o_conc = Machine.now ctx - t0;
    o_pages = pages;
    o_revoked = revoked + !root_revoked;
  }

let run_paint_sync _t _ctx = { o_stw = 0; o_conc = 0; o_pages = 0; o_revoked = 0 }

(* The Reloaded load-barrier fault handler, executed by the faulting
   (application) thread. The machine has already charged trap entry and
   the fixed software cost. Mirrors §4.3: lock the pmap to detect a stale
   TLB; sweep without locks held; re-lock to update the PTE idempotently. *)
let clg_fault_handler t ctx ~vaddr pte =
  let t0 = Machine.now ctx in
  let pmap = Vm.Aspace.pmap t.aspace in
  let gen = Pmap.generation pmap in
  let vp = vaddr / Phys.page_size in
  let stale = Machine.with_pmap_lock ctx (fun () -> pte.Pte.clg = gen) in
  if not stale then begin
    if Hashtbl.mem t.visit_set vp then
      ignore (Sweep.sweep_page ctx t.revmap ~pte);
    Machine.with_pmap_lock ctx (fun () ->
        if pte.Pte.clg <> gen then begin
          pte.Pte.clg <- gen;
          Machine.charge ctx Cost.pte_update
        end)
  end;
  t.fault_cycles <-
    t.fault_cycles + (Machine.now ctx - t0) + Cost.trap + Cost.clg_fault_fixed;
  t.fault_count <- t.fault_count + 1

(* ---- the revoker thread ---- *)

let run_epoch t ctx batches =
  let bytes = List.fold_left (fun acc b -> acc + b.bytes) 0 batches in
  t.in_flight <- true;
  t.current_entries <- List.concat_map (fun b -> b.entries) batches;
  t.fault_cycles <- 0;
  t.fault_count <- 0;
  let requested_at = Machine.now ctx in
  (match Machine.tracer t.m with
  | Some tr ->
      Sim.Trace.emit tr ~time:requested_at ~core:t.core ~pid:t.pid
        Sim.Trace.Epoch_begin
        (Epoch.counter t.epoch);
      Sim.Trace.emit tr ~time:requested_at ~core:t.core ~pid:t.pid
        Sim.Trace.Revoke_batch bytes
  | None -> ());
  Epoch.begin_revocation t.epoch ctx;
  let idx = Epoch.counter t.epoch in
  let delivered = ref false in
  let deliver () =
    if not !delivered then begin
      delivered := true;
      List.iter
        (fun b ->
          List.iter
            (fun (addr, size) ->
              Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:t.core
                ~pid:t.pid ~arg2:size Sim.Trace.Quarantine_deq addr)
            b.entries;
          match t.on_clean with None -> () | Some f -> f ctx b)
        batches
    end
  in
  (* mutation hook: hand the quarantine back before the sweep has run *)
  if t.fault = Some Early_dequarantine then deliver ();
  let o =
    match t.strategy with
    | Paint_sync -> run_paint_sync t ctx
    | Cherivoke -> run_cherivoke t ctx
    | Cornucopia -> run_cornucopia t ctx
    | Reloaded -> run_reloaded t ctx
    | Cheriot_filter -> run_cheriot t ctx
  in
  Epoch.end_revocation t.epoch ctx;
  (match Machine.tracer t.m with
  | Some tr ->
      Sim.Trace.emit tr ~time:(Machine.now ctx) ~core:t.core ~pid:t.pid
        Sim.Trace.Epoch_end
        (Epoch.counter t.epoch)
  | None -> ());
  t.barrier_armed <- false;
  t.revocations <- t.revocations + 1;
  t.total_bytes <- t.total_bytes + bytes;
  t.records <-
    {
      epoch_index = idx;
      requested_at;
      stw_cycles = o.o_stw;
      concurrent_cycles = o.o_conc;
      fault_cycles = t.fault_cycles;
      fault_count = t.fault_count;
      pages_visited = o.o_pages;
      caps_revoked = o.o_revoked;
      bytes_processed = bytes;
    }
    :: t.records;
  (* the batches processed by this epoch are now clean: dequarantine *)
  deliver ();
  t.current_entries <- [];
  t.in_flight <- false

let thread_body t ctx =
  let rec loop () =
    while t.queue = [] && not t.shutdown do
      Machine.wait ctx t.work_cv
    done;
    match t.queue with
    | [] ->
        (* shutdown: release the helpers so the machine can terminate *)
        List.iter
          (fun h ->
            h.h_mode <- Stop;
            Machine.broadcast ctx h.h_work_cv)
          t.helpers
    | _ ->
        (* Cross-process arbitration: epochs of different processes are
           serialised by the global revocation scheduler when one is
           installed; the default gates are no-ops. *)
        t.gate_acquire ctx;
        let batches = List.rev t.queue in
        t.queue <- [];
        t.queued_bytes <- 0;
        Fun.protect
          ~finally:(fun () -> t.gate_release ctx)
          (fun () -> run_epoch t ctx batches);
        loop ()
  in
  loop ()

let enqueue t ctx batch =
  List.iter
    (fun (addr, size) ->
      Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
        ~pid:t.pid ~arg2:size Sim.Trace.Quarantine_enq addr)
    batch.entries;
  t.queue <- batch :: t.queue;
  t.queued_bytes <- t.queued_bytes + batch.bytes;
  Machine.broadcast ctx t.work_cv

let request_shutdown t ctx =
  t.shutdown <- true;
  Machine.broadcast ctx t.work_cv

let set_epoch_gate t ~acquire ~release =
  t.gate_acquire <- acquire;
  t.gate_release <- release

(* Fork (§4.3): the child's revoker starts from the parent's sweep state —
   the visit set (pages that have ever held capabilities; the child's CoW
   copies hold the same ones) and the painted-bit population of the
   inherited shadow bitmap. [mixed_gen] arms the one-shot full visit that
   makes the child's first Reloaded epoch sound across the two inherited
   generations. *)
let inherit_from t ~parent =
  Hashtbl.iter (fun vp () -> Hashtbl.replace t.visit_set vp ()) parent.visit_set;
  Revmap.seed_bits t.revmap (Revmap.set_bits parent.revmap);
  t.mixed_gen <- true

let register_barrier t =
  let m = t.m in
  let asid = Vm.Aspace.asid t.aspace in
  match t.strategy with
  | Reloaded -> Machine.set_clg_fault_handler m ~asid (Some (clg_fault_handler t))
  | Cheriot_filter ->
      Machine.set_cap_load_filter m ~asid
        (Some
           (fun fctx c ->
             (* pipelined tightly-coupled bitmap probe: one cycle *)
             Machine.charge fctx 1;
             if Revmap.test_host t.revmap (Capability.base c) then
               Capability.clear_tag c
             else c))
  | Paint_sync | Cherivoke | Cornucopia -> ()

let unregister_barrier t =
  let asid = Vm.Aspace.asid t.aspace in
  (match t.strategy with
  | Reloaded -> Machine.set_clg_fault_handler t.m ~asid None
  | Cheriot_filter -> Machine.set_cap_load_filter t.m ~asid None
  | Paint_sync | Cherivoke | Cornucopia -> ())

(* Exec: the process replaced its image. The quarantine must already have
   been drained; the revoker keeps its epoch counter but forgets the old
   space entirely and re-arms its barrier under the new asid. *)
let rebind t ~aspace =
  unregister_barrier t;
  t.aspace <- aspace;
  Revmap.rebind t.revmap ~aspace;
  Hashtbl.reset t.visit_set;
  t.mixed_gen <- false;
  t.barrier_armed <- false;
  List.iter (fun th -> Machine.assign_aspace th aspace) t.service_threads;
  register_barrier t

let create m ~strategy ~core ?(non_temporal = false)
    ?(background_threads = 1) ?(helper_cores = [ 1; 0 ])
    ?(pte_flag_barrier = false) ?hoards ?aspace ?(pid = 0) () =
  let hoards = match hoards with Some h -> h | None -> Kernel.Hoard.create () in
  let aspace = match aspace with Some a -> a | None -> Machine.aspace m in
  let t =
    {
      m;
      aspace;
      pid;
      strategy;
      core;
      non_temporal;
      pte_flag_barrier;
      revmap = Revmap.create ~aspace m;
      epoch = Epoch.create ();
      hoards;
      work_cv = Machine.condvar ();
      visit_set = Hashtbl.create 1024;
      helpers = [];
      queue = [];
      queued_bytes = 0;
      in_flight = false;
      shutdown = false;
      records = [];
      on_clean = None;
      fault_cycles = 0;
      fault_count = 0;
      revocations = 0;
      total_bytes = 0;
      current_entries = [];
      barrier_armed = false;
      fault = None;
      mixed_gen = false;
      gate_acquire = (fun _ -> ());
      gate_release = (fun _ -> ());
      service_threads = [];
    }
  in
  register_barrier t;
  (* §7.1: optional helper threads share the background sweep *)
  if background_threads > 1 then begin
    let helpers =
      List.init (background_threads - 1) (fun i ->
          {
            h_core = List.nth helper_cores (i mod List.length helper_cores);
            h_work_cv = Machine.condvar ();
            h_done_cv = Machine.condvar ();
            h_queue = [];
            h_mode = Idle;
            h_pages = 0;
            h_revoked = 0;
          })
    in
    t.helpers <- helpers;
    List.iteri
      (fun i h ->
        let th =
          Machine.spawn m
            ~name:(Printf.sprintf "revoker-helper-%d.%d" pid i)
            ~core:h.h_core ~user:false ~pid ~aspace (helper_body t h)
        in
        t.service_threads <- th :: t.service_threads)
      helpers
  end;
  let th =
    Machine.spawn m
      ~name:(Printf.sprintf "revoker-%s.%d" (strategy_name strategy) pid)
      ~core ~user:false ~pid ~aspace (thread_body t)
  in
  t.service_threads <- th :: t.service_threads;
  t
