module Capability = Cheri.Capability
module Machine = Sim.Machine
module Cost = Sim.Cost
module Pte = Vm.Pte
module Pmap = Vm.Pmap
module Phys = Vm.Phys
module Layout = Vm.Layout

type strategy = Paint_sync | Cherivoke | Cornucopia | Reloaded | Cheriot_filter

let strategy_name = function
  | Paint_sync -> "paint+sync"
  | Cherivoke -> "cherivoke"
  | Cornucopia -> "cornucopia"
  | Reloaded -> "reloaded"
  | Cheriot_filter -> "cheriot"

let all_strategies = [ Paint_sync; Cherivoke; Cornucopia; Reloaded ]
let extended_strategies = all_strategies @ [ Cheriot_filter ]

let strategy_code = function
  | Paint_sync -> 0
  | Cherivoke -> 1
  | Cornucopia -> 2
  | Reloaded -> 3
  | Cheriot_filter -> 4

(* The graceful-degradation ladder: each step trades pause quality for
   fewer moving parts. Reloaded's load barrier needs CLG toggles and a
   racing background sweep; Cornucopia still sweeps concurrently but
   closes with a STW re-sweep; Cherivoke does everything inside one STW
   and depends on nothing but the sweep itself. Paint_sync is not a
   downshift target (it provides no safety), and Cherivoke is the floor. *)
let downshift_of = function
  | Reloaded -> Some Cornucopia
  | Cornucopia -> Some Cherivoke
  | Cheriot_filter -> Some Cherivoke
  | Cherivoke | Paint_sync -> None

type batch = { entries : (int * int) list; bytes : int }

(* Deliberate protocol mutations, used by the sanitizer's mutation tests
   (and nothing else) to prove each invariant check actually fires. *)
type fault = Skip_shootdown | Skip_hoard_scan | Early_dequarantine

let fault_name = function
  | Skip_shootdown -> "skip-shootdown"
  | Skip_hoard_scan -> "skip-hoard-scan"
  | Early_dequarantine -> "early-dequarantine"

let all_faults = [ Skip_shootdown; Skip_hoard_scan; Early_dequarantine ]
let fault_of_name s = List.find_opt (fun f -> fault_name f = s) all_faults

let strategy_of_name s =
  List.find_opt (fun st -> strategy_name st = s) extended_strategies

exception Induced_crash

exception Epoch_aborted
(* internal: a quiesce watchdog exhausted its retry budget *)

type recovery = {
  watchdog_timeout : int;
  max_quiesce_retries : int;
  backoff_base : int;
  max_crash_retries : int;
  max_epoch_aborts : int;
  clg_storm_threshold : int;
  malloc_throttle : int;
}

let default_recovery =
  {
    (* 4x the default syscall drain cap: unreachable in a fault-free
       run, so arming the watchdog by default changes nothing there *)
    watchdog_timeout = 200_000_000;
    max_quiesce_retries = 3;
    backoff_base = 20_000;
    max_crash_retries = 5;
    max_epoch_aborts = 3;
    (* storms are workload-relative; downshifting on the load barrier's
       normal fault traffic would be wrong, so the trigger is off until
       a caller that knows its workload sets a threshold *)
    clg_storm_threshold = max_int;
    malloc_throttle = 50_000;
  }

type recovery_stats = {
  epoch_aborts : int;
  sweep_crash_retries : int;
  quiesce_timeouts : int;
  backoff_cycles : int;
  downshifts : int;
}

type phase_record = {
  epoch_index : int;
  requested_at : int;
  stw_cycles : int;
  concurrent_cycles : int;
  fault_cycles : int;
  fault_count : int;
  pages_visited : int;
  caps_revoked : int;
  bytes_processed : int;
}

type helper_mode =
  | Idle
  | Sweep_reloaded of bool * bool (* generation, force-visit-all *)
  | Sweep_cheriot
  | Stop

type helper = {
  h_core : int;
  h_work_cv : Machine.condvar;
  h_done_cv : Machine.condvar;
  mutable h_queue : int list;
  mutable h_mode : helper_mode;
  mutable h_pages : int;
  mutable h_revoked : int;
  mutable h_failed : bool; (* an induced crash hit this helper's share *)
}

type t = {
  m : Machine.t;
  mutable aspace : Vm.Aspace.t;
  pid : int;
  mutable strategy : strategy;
      (* mutable: graceful degradation downshifts it (see [downshift_of]) *)
  recovery : recovery;
  core : int;
  non_temporal : bool;
  pte_flag_barrier : bool;
  revmap : Revmap.t;
  epoch : Epoch.t;
  hoards : Kernel.Hoard.t;
  work_cv : Machine.condvar;
  visit_set : (int, unit) Hashtbl.t; (* vpages that have held capabilities *)
  mutable helpers : helper list;
  mutable queue : batch list; (* newest first *)
  mutable queued_bytes : int;
  mutable in_flight : bool;
  mutable shutdown : bool;
  mutable records : phase_record list; (* newest first *)
  mutable on_clean : (Machine.ctx -> batch -> unit) option;
  (* accumulated by the Reloaded fault handler during the current epoch *)
  mutable fault_cycles : int;
  mutable fault_count : int;
  mutable revocations : int;
  mutable total_bytes : int;
  mutable current_entries : (int * int) list;
  mutable barrier_armed : bool;
      (* Reloaded: set once the epoch-opening stop-the-world has completed,
         i.e. from when the §3.2 invariant is established *)
  mutable fault : fault option;
  mutable mixed_gen : bool;
      (* set when this revoker inherited a fork-split address space whose
         PTEs carry two generations (§4.3): the next Reloaded epoch must
         visit every heap page unconditionally, since pages stale from
         before the fork can alias the post-toggle current generation *)
  mutable gate_acquire : Machine.ctx -> unit;
  mutable gate_release : Machine.ctx -> unit;
      (* cross-process revocation scheduler hooks, held around each epoch *)
  mutable epoch_governor : (Machine.ctx -> unit) option;
      (* SLO governor hook: consulted on the revoker thread before the
         cross-process gate is taken; may block to defer the epoch into a
         load trough (lib/service) *)
  mutable sweep_pacer : (Machine.ctx -> visited:int -> int) option;
      (* SLO governor hook: page budget of the next concurrent-sweep
         slice; may block between slices to yield to foreground work *)
  mutable service_threads : Machine.thread list;
      (* the revoker thread + helpers, for exec-time aspace rebinding *)
  (* ---- crash-recovery state ---- *)
  ck_done : (int, unit) Hashtbl.t;
      (* pages fully visited by the current epoch's attempts: the sweep
         checkpoint a crashed pass resumes from (Reloaded/CHERIoT) *)
  mutable ck_stw_done : bool;
      (* the epoch-opening stop-the-world completed; a resumed attempt
         must not repeat it (the CLG toggle is not idempotent) *)
  mutable sweep_hook : (Machine.ctx -> int -> unit) option;
      (* chaos: consulted at every page visit; may raise [Induced_crash] *)
  mutable on_abort : (Machine.ctx -> unit) option;
      (* the shim clamps its paint-epoch stamps here when an epoch is
         retracted (the counter moved backwards) *)
  mutable consecutive_aborts : int;
  mutable rs_epoch_aborts : int;
  mutable rs_sweep_crashes : int;
  mutable rs_quiesce_timeouts : int;
  mutable rs_backoff_cycles : int;
  mutable rs_downshifts : int;
}

let strategy t = t.strategy
let pid t = t.pid
let aspace t = t.aspace
let epoch t = t.epoch
let revmap t = t.revmap
let hoards t = t.hoards
let inject_fault t f = t.fault <- f
let injected_fault t = t.fault
let set_on_clean t f = t.on_clean <- Some f
let set_on_abort t f = t.on_abort <- f
let set_sweep_hook t f = t.sweep_hook <- f
let in_flight t = t.in_flight
let currently_revoking t = t.current_entries

let recovery_stats t =
  {
    epoch_aborts = t.rs_epoch_aborts;
    sweep_crash_retries = t.rs_sweep_crashes;
    quiesce_timeouts = t.rs_quiesce_timeouts;
    backoff_cycles = t.rs_backoff_cycles;
    downshifts = t.rs_downshifts;
  }

let consecutive_aborts t = t.consecutive_aborts

(* Allocation backpressure: while epochs are aborting, [Mrs.malloc]
   throttles by this many cycles per call instead of letting the
   application outrun a revoker that cannot currently retire quarantine. *)
let backpressure t =
  if t.consecutive_aborts > 0 then t.recovery.malloc_throttle else 0

let sweep_point t ctx vp =
  match t.sweep_hook with None -> () | Some h -> h ctx vp

let queued_entries t =
  List.concat_map (fun b -> b.entries) (List.rev t.queue)
let barrier_armed t = t.barrier_armed
let queued_bytes t = t.queued_bytes
let records t = List.rev t.records
let revocation_count t = t.revocations
let total_bytes_processed t = t.total_bytes

let heap_vpages t =
  let layout = Vm.Aspace.layout t.aspace in
  let lo = layout.Layout.heap_base / Phys.page_size in
  let hi = (layout.Layout.heap_limit - 1) / Phys.page_size in
  List.filter
    (fun vp -> vp >= lo && vp <= hi)
    (Pmap.sorted_vpages (Vm.Aspace.pmap t.aspace))

(* Fold freshly capability-dirty pages into the visit set. Per §4.5, the
   re-implementation never removes a page from the set once it has held
   capabilities (except Reloaded's clean-page detection, applied at sweep
   time). Clears the hardware bit when [reset] so later stores re-dirty. *)
let update_visit_set t ctx ~reset =
  let pmap = Vm.Aspace.pmap t.aspace in
  List.iter
    (fun vp ->
      match Pmap.lookup pmap ~vpage:vp with
      | Some pte when pte.Pte.cap_dirty ->
          Hashtbl.replace t.visit_set vp ();
          if reset then begin
            pte.Pte.cap_dirty <- false;
            Machine.charge ctx Cost.pte_update
          end
      | Some _ | None -> ())
    (heap_vpages t)

let scan_roots t ctx =
  let revoked = ref 0 in
  List.iter
    (fun th ->
      if Machine.thread_pid th = t.pid then
        revoked := !revoked + Sweep.scan_regfile ctx t.revmap (Machine.regs th))
    (Machine.user_threads t.m);
  if t.fault <> Some Skip_hoard_scan then
    revoked := !revoked + Sweep.scan_hoard ctx t.revmap t.hoards;
  !revoked

let sweep_vpage t ctx vp =
  let pmap = Vm.Aspace.pmap t.aspace in
  match Pmap.lookup pmap ~vpage:vp with
  | None -> Sweep.zero_stats
  | Some pte -> Sweep.sweep_page ~non_temporal:t.non_temporal ctx t.revmap ~pte

(* ---- per-page visits (shared between the revoker thread and §7.1's
   helper threads) ---- *)

(* Reloaded: bring one page to the current generation, content-sweeping it
   only if it may hold capabilities. Returns (pages, revoked) deltas. *)
let visit_reloaded t ctx gen ~force vp =
  let pmap = Vm.Aspace.pmap t.aspace in
  match Pmap.lookup pmap ~vpage:vp with
  | None -> (0, 0)
  | Some pte ->
      (* [ck_done] is the epoch's sweep checkpoint: pages a crashed
         attempt already finished (content sweep AND generation update)
         are skipped on resume. For non-forced epochs the generation bit
         alone would skip them; the explicit set also covers [force]
         (post-fork mixed-generation) epochs and gives the resume trace
         assertion a single mechanism. *)
      if (pte.Pte.clg <> gen || force) && not (Hashtbl.mem t.ck_done vp) then begin
        sweep_point t ctx vp;
        let pages, revoked =
          if Hashtbl.mem t.visit_set vp then begin
            let st = Sweep.sweep_page ~non_temporal:t.non_temporal ctx t.revmap ~pte in
            (* clean-page detection: a swept page with no capabilities left
               need not be content-swept next epoch *)
            if st.Sweep.tagged = 0 && not pte.Pte.cap_dirty then
              Hashtbl.remove t.visit_set vp;
            (1, st.Sweep.revoked)
          end
          else (0, 0)
        in
        Machine.with_pmap_lock ctx (fun () ->
            if pte.Pte.clg <> gen then begin
              pte.Pte.clg <- gen;
              Machine.charge ctx Cost.pte_update
            end);
        Hashtbl.replace t.ck_done vp ();
        (pages, revoked)
      end
      else (0, 0)

(* CHERIoT: the load filter guarantees stale capabilities cannot be
   propagated, so a single idempotent content sweep per epoch suffices —
   no generations, no re-scan. Resume-safe like Reloaded: the filter is
   always armed, so a crashed pass restarts from [ck_done]. *)
let visit_cheriot t ctx vp =
  if Hashtbl.mem t.visit_set vp && not (Hashtbl.mem t.ck_done vp) then begin
    sweep_point t ctx vp;
    let st = sweep_vpage t ctx vp in
    Hashtbl.replace t.ck_done vp ();
    (1, st.Sweep.revoked)
  end
  else (0, 0)

(* ---- helper threads (§7.1 concurrent background revocation) ---- *)

let helper_body t h ctx =
  let rec loop () =
    while h.h_mode = Idle && not t.shutdown do
      Machine.wait ctx h.h_work_cv
    done;
    match h.h_mode with
    | Stop -> ()
    | Idle -> if t.shutdown then () else loop ()
    | (Sweep_reloaded _ | Sweep_cheriot) as mode ->
        (* an induced crash must not kill the helper thread itself — it
           records the failure and goes back to Idle so the coordinator
           can notice, abort the pass, and re-dispatch the retry *)
        (try
           List.iter
             (fun vp ->
               Machine.safe_point ctx;
               let pages, revoked =
                 match mode with
                 | Sweep_reloaded (gen, force) ->
                     visit_reloaded t ctx gen ~force vp
                 | Sweep_cheriot -> visit_cheriot t ctx vp
                 | Idle | Stop -> (0, 0)
               in
               h.h_pages <- h.h_pages + pages;
               h.h_revoked <- h.h_revoked + revoked)
             h.h_queue
         with Induced_crash -> h.h_failed <- true);
        h.h_queue <- [];
        h.h_mode <- Idle;
        Machine.broadcast ctx h.h_done_cv;
        loop ()
  in
  loop ()

(* Sequentially visit [pages] on the calling (revoker) thread. With a
   sweep pacer installed the walk is sliced into governor-granted quanta:
   before each slice the pacer may block (sleeping the revoker thread) to
   push the slice into a load trough, then returns the next slice's page
   budget, clamped to >= 1 so a sweep always makes progress and an epoch
   can never be paced to a standstill. *)
let seq_visit t ctx pages ~visit =
  let p = ref 0 and r = ref 0 in
  let step vp =
    Machine.safe_point ctx;
    let dp, dr = visit vp in
    p := !p + dp;
    r := !r + dr
  in
  (match t.sweep_pacer with
  | None -> List.iter step pages
  | Some pacer ->
      let rec slices remaining visited =
        match remaining with
        | [] -> ()
        | _ ->
            let quota = max 1 (pacer ctx ~visited) in
            let rec take n l =
              if n = 0 then (l, quota)
              else
                match l with
                | [] -> ([], quota - n)
                | vp :: tl ->
                    step vp;
                    take (n - 1) tl
            in
            let rest, taken = take quota remaining in
            slices rest (visited + taken)
      in
      slices pages 0);
  (!p, !r)

(* Partition [pages] round-robin over helpers, run the main thread's share
   inline, and wait for every helper to drain. With a sweep pacer armed
   the whole walk stays on the revoker thread instead — helpers cannot
   honour a per-slice budget, and a governed serving machine wants the
   sweep confined to one core anyway. *)
let fan_out t ctx ~pages ~mode ~visit =
  match t.helpers with
  | [] -> seq_visit t ctx pages ~visit
  | _ when t.sweep_pacer <> None -> seq_visit t ctx pages ~visit
  | helpers ->
      let k = List.length helpers + 1 in
      let shares = Array.make k [] in
      List.iteri (fun i vp -> shares.(i mod k) <- vp :: shares.(i mod k)) pages;
      List.iteri
        (fun i h ->
          h.h_queue <- shares.(i + 1);
          h.h_pages <- 0;
          h.h_revoked <- 0;
          h.h_failed <- false;
          h.h_mode <- mode;
          Machine.broadcast ctx h.h_work_cv)
        helpers;
      let p = ref 0 and r = ref 0 in
      let crashed = ref false in
      (try
         List.iter
           (fun vp ->
             Machine.safe_point ctx;
             let dp, dr = visit vp in
             p := !p + dp;
             r := !r + dr)
           shares.(0)
       with Induced_crash -> crashed := true);
      (* drain every helper even when crashing, so the retry never
         dispatches onto a helper still chewing the aborted pass *)
      List.iter
        (fun h ->
          while h.h_mode <> Idle do
            Machine.wait ctx h.h_done_cv
          done;
          p := !p + h.h_pages;
          r := !r + h.h_revoked)
        helpers;
      if !crashed || List.exists (fun h -> h.h_failed) helpers then
        raise Induced_crash;
      (!p, !r)

(* ---- strategy bodies: each runs one revocation epoch ---- *)

type epoch_outcome = {
  o_stw : int;
  o_conc : int;
  o_pages : int;
  o_revoked : int;
}

(* Watchdogged stop-the-world: arm [Machine.stop_the_world]'s deadline
   with the recovery timeout; on [Quiesce_timeout] back off exponentially
   and retry, and after the retry budget raise [Epoch_aborted] so the
   epoch is retracted rather than wedging the revoker forever behind one
   stuck thread. *)
let quiesce t ctx f =
  let r = t.recovery in
  let timeout = if r.watchdog_timeout > 0 then Some r.watchdog_timeout else None in
  let rec go attempt =
    match Machine.stop_the_world ctx ~scope:[ t.pid ] ?timeout f with
    | result -> result
    | exception Machine.Quiesce_timeout _ ->
        t.rs_quiesce_timeouts <- t.rs_quiesce_timeouts + 1;
        if attempt >= r.max_quiesce_retries then raise Epoch_aborted
        else begin
          let backoff = r.backoff_base * (1 lsl attempt) in
          t.rs_backoff_cycles <- t.rs_backoff_cycles + backoff;
          Machine.sleep ctx backoff;
          go (attempt + 1)
        end
  in
  go 0

(* Graceful degradation: move one rung down [downshift_of]'s ladder.
   Deliberately does NOT unregister the old barrier — the CLG handler
   (resp. load filter) keeps healing pages left at a stale generation by
   the abandoned strategy and simply goes quiet once none remain, whereas
   tearing it down would leave those pages faulting with no handler. *)
let downshift t ctx =
  match downshift_of t.strategy with
  | None -> false
  | Some s ->
      Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:t.core ~pid:t.pid
        ~arg2:(strategy_code s) Sim.Trace.Strategy_downshift
        (strategy_code t.strategy);
      t.strategy <- s;
      t.rs_downshifts <- t.rs_downshifts + 1;
      t.consecutive_aborts <- 0;
      true

let run_cherivoke t ctx =
  let pages = ref 0 and revoked = ref 0 in
  let (), rep =
    quiesce t ctx (fun () ->
        update_visit_set t ctx ~reset:true;
        revoked := scan_roots t ctx;
        Hashtbl.iter
          (fun vp () ->
            sweep_point t ctx vp;
            let st = sweep_vpage t ctx vp in
            incr pages;
            revoked := !revoked + st.Sweep.revoked)
          t.visit_set)
  in
  {
    o_stw = rep.Machine.released_at - rep.Machine.requested_at;
    o_conc = 0;
    o_pages = !pages;
    o_revoked = !revoked;
  }

let run_cornucopia t ctx =
  let pmap = Vm.Aspace.pmap t.aspace in
  let asid = Vm.Aspace.asid t.aspace in
  let pages = ref 0 and revoked = ref 0 in
  (* concurrent phase: sweep every page that has ever held capabilities,
     clearing its dirty bit first so stores during the sweep re-dirty it *)
  let t0 = Machine.now ctx in
  update_visit_set t ctx ~reset:false;
  let targets = List.filter (Hashtbl.mem t.visit_set) (heap_vpages t) in
  let visit vp =
    match Pmap.lookup pmap ~vpage:vp with
    | None -> (0, 0)
    | Some pte ->
        sweep_point t ctx vp;
        Machine.with_pmap_lock ctx (fun () ->
            if pte.Pte.cap_dirty then begin
              pte.Pte.cap_dirty <- false;
              Machine.charge ctx Cost.pte_update
            end);
        if t.fault <> Some Skip_shootdown then
          Machine.tlb_shootdown ~asid ctx ~vpages:[ vp ];
        let st = Sweep.sweep_page ~non_temporal:t.non_temporal ctx t.revmap ~pte in
        (1, st.Sweep.revoked)
  in
  let dp, dr = seq_visit t ctx targets ~visit in
  pages := !pages + dp;
  revoked := !revoked + dr;
  let conc = Machine.now ctx - t0 in
  (* stop-the-world phase: roots, then pages re-dirtied during the sweep *)
  let (), rep =
    quiesce t ctx (fun () ->
        revoked := !revoked + scan_roots t ctx;
        List.iter
          (fun vp ->
            match Pmap.lookup pmap ~vpage:vp with
            | Some pte when pte.Pte.cap_dirty ->
                sweep_point t ctx vp;
                (* a page first capability-dirtied during the concurrent
                   phase has never entered the visit set; record it or the
                   NEXT epoch will skip it while it still holds
                   capabilities swept only up to this epoch's quarantine
                   (§4.5's never-forget discipline) *)
                Hashtbl.replace t.visit_set vp ();
                pte.Pte.cap_dirty <- false;
                Machine.charge ctx Cost.pte_update;
                (* the dirty-bit clear must reach every TLB here too:
                   stopped threads resume with cached PTE copies, and a
                   stale cap-dirty=1 entry lets their next cap store skip
                   re-dirtying the page for the following epoch *)
                if t.fault <> Some Skip_shootdown then
                  Machine.tlb_shootdown ~asid ctx ~vpages:[ vp ];
                let st =
                  Sweep.sweep_page ~non_temporal:t.non_temporal ctx t.revmap ~pte
                in
                incr pages;
                revoked := !revoked + st.Sweep.revoked
            | Some _ | None -> ())
          (heap_vpages t))
  in
  {
    o_stw = rep.Machine.released_at - rep.Machine.requested_at;
    o_conc = conc;
    o_pages = !pages;
    o_revoked = !revoked;
  }

let run_reloaded t ~resume ctx =
  let pmap = Vm.Aspace.pmap t.aspace in
  let root_revoked = ref 0 in
  (* stop-the-world: toggle generations, scan registers and hoards; no
     PTE is touched (§4.1) — unless the §4.1 ablation of a per-PTE barrier
     flag is enabled, in which case every PTE is updated with the world
     stopped, which is exactly what the generation scheme avoids.

     A resumed attempt whose first pass already completed this STW must
     NOT repeat it: the CLG toggle is not idempotent (toggling again
     would flip "stale" back to "current" and un-revoke everything the
     barrier still has to heal). The barrier has been armed since the
     first toggle, so skipping straight to the background sweep is sound. *)
  let o_stw =
    if resume && t.ck_stw_done then 0
    else begin
      let (), rep =
        quiesce t ctx (fun () ->
            Machine.toggle_clg ctx;
            update_visit_set t ctx ~reset:true;
            root_revoked := scan_roots t ctx;
            if t.pte_flag_barrier then begin
              let pages = heap_vpages t in
              List.iter (fun _ -> Machine.charge ctx Cost.pte_update) pages;
              Machine.tlb_shootdown
                ~asid:(Vm.Aspace.asid t.aspace)
                ctx ~vpages:pages
            end)
      in
      t.ck_stw_done <- true;
      rep.Machine.released_at - rep.Machine.requested_at
    end
  in
  t.barrier_armed <- true;
  (* background phase: visit every heap page still at the old generation;
     content-sweep only pages that may hold capabilities. The application
     races us via its load-barrier faults; page visits are idempotent. *)
  let gen = Pmap.generation pmap in
  let force = t.mixed_gen in
  let t0 = Machine.now ctx in
  let pages, revoked =
    fan_out t ctx ~pages:(heap_vpages t)
      ~mode:(Sweep_reloaded (gen, force))
      ~visit:(visit_reloaded t ctx gen ~force)
  in
  t.mixed_gen <- false;
  {
    o_stw;
    o_conc = Machine.now ctx - t0;
    o_pages = pages;
    o_revoked = revoked + !root_revoked;
  }

let run_cheriot t ~resume ctx =
  (* No load generations: the per-load filter already blocks stale
     capabilities. A short stop-the-world scans registers and hoards
     (stores of register-held stale capabilities are not filtered), then
     one concurrent content sweep erases them from memory. The root scan
     is not repeated on resume: the filter blocks any load of a stale
     capability, so registers cannot have re-acquired one since the
     completed scan. *)
  let root_revoked = ref 0 in
  let o_stw =
    if resume && t.ck_stw_done then 0
    else begin
      let (), rep =
        quiesce t ctx (fun () ->
            update_visit_set t ctx ~reset:true;
            root_revoked := scan_roots t ctx)
      in
      t.ck_stw_done <- true;
      rep.Machine.released_at - rep.Machine.requested_at
    end
  in
  let t0 = Machine.now ctx in
  let targets = List.filter (Hashtbl.mem t.visit_set) (heap_vpages t) in
  let pages, revoked =
    fan_out t ctx ~pages:targets ~mode:Sweep_cheriot ~visit:(visit_cheriot t ctx)
  in
  {
    o_stw;
    o_conc = Machine.now ctx - t0;
    o_pages = pages;
    o_revoked = revoked + !root_revoked;
  }

let run_paint_sync _t _ctx = { o_stw = 0; o_conc = 0; o_pages = 0; o_revoked = 0 }

(* The Reloaded load-barrier fault handler, executed by the faulting
   (application) thread. The machine has already charged trap entry and
   the fixed software cost. Mirrors §4.3: lock the pmap to detect a stale
   TLB; sweep without locks held; re-lock to update the PTE idempotently. *)
let clg_fault_handler t ctx ~vaddr pte =
  let t0 = Machine.now ctx in
  let pmap = Vm.Aspace.pmap t.aspace in
  let gen = Pmap.generation pmap in
  let vp = vaddr / Phys.page_size in
  let stale = Machine.with_pmap_lock ctx (fun () -> pte.Pte.clg = gen) in
  if not stale then begin
    if Hashtbl.mem t.visit_set vp then
      ignore (Sweep.sweep_page ctx t.revmap ~pte);
    Machine.with_pmap_lock ctx (fun () ->
        if pte.Pte.clg <> gen then begin
          pte.Pte.clg <- gen;
          Machine.charge ctx Cost.pte_update
        end)
  end;
  t.fault_cycles <-
    t.fault_cycles + (Machine.now ctx - t0) + Cost.trap + Cost.clg_fault_fixed;
  t.fault_count <- t.fault_count + 1

(* ---- the revoker thread ---- *)

let run_epoch t ctx batches =
  let bytes = List.fold_left (fun acc b -> acc + b.bytes) 0 batches in
  t.in_flight <- true;
  t.current_entries <- List.concat_map (fun b -> b.entries) batches;
  t.fault_cycles <- 0;
  t.fault_count <- 0;
  let requested_at = Machine.now ctx in
  (match Machine.tracer t.m with
  | Some tr ->
      Sim.Trace.emit tr ~time:requested_at ~core:t.core ~pid:t.pid
        Sim.Trace.Epoch_begin
        (Epoch.counter t.epoch);
      Sim.Trace.emit tr ~time:requested_at ~core:t.core ~pid:t.pid
        Sim.Trace.Revoke_batch bytes
  | None -> ());
  Epoch.begin_revocation t.epoch ctx;
  let idx = Epoch.counter t.epoch in
  let delivered = ref false in
  let deliver () =
    if not !delivered then begin
      delivered := true;
      List.iter
        (fun b ->
          List.iter
            (fun (addr, size) ->
              Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:t.core
                ~pid:t.pid ~arg2:size Sim.Trace.Quarantine_deq addr)
            b.entries;
          match t.on_clean with None -> () | Some f -> f ctx b)
        batches
    end
  in
  (* mutation hook: hand the quarantine back before the sweep has run *)
  if t.fault = Some Early_dequarantine then deliver ();
  Hashtbl.reset t.ck_done;
  t.ck_stw_done <- false;
  (* Run the strategy body, retrying after induced sweep crashes from the
     [ck_done] checkpoint. Strategies with an always-armed barrier
     (Reloaded, CHERIoT) resume where the crashed pass left off; the
     barrier-less sweepers must restart their whole pass, because a page
     swept before the crash can have been re-polluted with stale
     capabilities while the world was running afterwards. Returns [None]
     when the epoch must be aborted. *)
  let rec attempt n =
    let resume = n > 0 in
    match
      match t.strategy with
      | Paint_sync -> run_paint_sync t ctx
      | Cherivoke -> run_cherivoke t ctx
      | Cornucopia -> run_cornucopia t ctx
      | Reloaded -> run_reloaded t ~resume ctx
      | Cheriot_filter -> run_cheriot t ~resume ctx
    with
    | o -> Some o
    | exception Induced_crash ->
        t.rs_sweep_crashes <- t.rs_sweep_crashes + 1;
        if n >= t.recovery.max_crash_retries then None
        else begin
          (match t.strategy with
          | Cherivoke | Cornucopia | Paint_sync ->
              Hashtbl.reset t.ck_done;
              t.ck_stw_done <- false
          | Reloaded | Cheriot_filter -> ());
          Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:t.core
            ~pid:t.pid ~arg2:(n + 1) Sim.Trace.Epoch_resume
            (Epoch.counter t.epoch);
          let backoff = t.recovery.backoff_base * (1 lsl min n 6) in
          t.rs_backoff_cycles <- t.rs_backoff_cycles + backoff;
          Machine.sleep ctx backoff;
          attempt (n + 1)
        end
    | exception Epoch_aborted -> None
  in
  match attempt 0 with
  | Some o ->
      Epoch.end_revocation t.epoch ctx;
      (match Machine.tracer t.m with
      | Some tr ->
          Sim.Trace.emit tr ~time:(Machine.now ctx) ~core:t.core ~pid:t.pid
            Sim.Trace.Epoch_end
            (Epoch.counter t.epoch)
      | None -> ());
      t.barrier_armed <- false;
      t.consecutive_aborts <- 0;
      t.revocations <- t.revocations + 1;
      t.total_bytes <- t.total_bytes + bytes;
      t.records <-
        {
          epoch_index = idx;
          requested_at;
          stw_cycles = o.o_stw;
          concurrent_cycles = o.o_conc;
          fault_cycles = t.fault_cycles;
          fault_count = t.fault_count;
          pages_visited = o.o_pages;
          caps_revoked = o.o_revoked;
          bytes_processed = bytes;
        }
        :: t.records;
      (* a CLG fault storm this epoch means the load barrier itself is
         costing more than the pauses it avoids: downshift *)
      if t.fault_count > t.recovery.clg_storm_threshold then
        ignore (downshift t ctx);
      (* the batches processed by this epoch are now clean: dequarantine *)
      deliver ();
      t.current_entries <- [];
      t.in_flight <- false
  | None ->
      (* Abort: retract the epoch counter (sound — it only under-promises)
         and put the unswept batches back at the head of the queue for the
         retried epoch. Nothing is delivered. *)
      t.rs_epoch_aborts <- t.rs_epoch_aborts + 1;
      t.consecutive_aborts <- t.consecutive_aborts + 1;
      Epoch.abort_revocation t.epoch ctx;
      (match t.on_abort with Some f -> f ctx | None -> ());
      Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:t.core ~pid:t.pid
        ~arg2:t.consecutive_aborts Sim.Trace.Epoch_abort
        (Epoch.counter t.epoch);
      t.barrier_armed <- false;
      (* If the aborted epoch already toggled the CLG (Reloaded), the heap
         now mixes two generations and the NEXT epoch's toggle would make
         today's unswept stale pages look current. [mixed_gen] arms the
         same one-shot force-visit-all that makes post-fork epochs sound. *)
      if t.ck_stw_done && t.strategy = Reloaded then t.mixed_gen <- true;
      (* t.queue is newest-first; the aborted batches are the oldest work,
         so they belong at the tail *)
      t.queue <- t.queue @ List.rev batches;
      t.queued_bytes <- t.queued_bytes + bytes;
      t.current_entries <- [];
      t.in_flight <- false;
      if t.consecutive_aborts >= t.recovery.max_epoch_aborts then
        ignore (downshift t ctx);
      let backoff = t.recovery.backoff_base * (1 lsl min t.consecutive_aborts 6) in
      t.rs_backoff_cycles <- t.rs_backoff_cycles + backoff;
      Machine.sleep ctx backoff

let thread_body t ctx =
  let rec loop () =
    while t.queue = [] && not t.shutdown do
      Machine.wait ctx t.work_cv
    done;
    match t.queue with
    | [] ->
        (* shutdown: release the helpers so the machine can terminate *)
        List.iter
          (fun h ->
            h.h_mode <- Stop;
            Machine.broadcast ctx h.h_work_cv)
          t.helpers
    | _ ->
        (* SLO governance: an installed epoch governor may defer the epoch
           into a load trough before we contend for the cross-process
           token. Runs BEFORE gate_acquire (never hold the token while
           deliberately idle), and the queue is re-read after it returns,
           so batches that accumulate during deferral join this epoch. *)
        (match t.epoch_governor with Some g -> g ctx | None -> ());
        (* Cross-process arbitration: epochs of different processes are
           serialised by the global revocation scheduler when one is
           installed; the default gates are no-ops. *)
        t.gate_acquire ctx;
        let batches = List.rev t.queue in
        t.queue <- [];
        t.queued_bytes <- 0;
        Fun.protect
          ~finally:(fun () -> t.gate_release ctx)
          (fun () -> run_epoch t ctx batches);
        loop ()
  in
  loop ()

let enqueue t ctx batch =
  List.iter
    (fun (addr, size) ->
      Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
        ~pid:t.pid ~arg2:size Sim.Trace.Quarantine_enq addr)
    batch.entries;
  t.queue <- batch :: t.queue;
  t.queued_bytes <- t.queued_bytes + batch.bytes;
  Machine.broadcast ctx t.work_cv

let request_shutdown t ctx =
  t.shutdown <- true;
  Machine.broadcast ctx t.work_cv

let set_epoch_gate t ~acquire ~release =
  t.gate_acquire <- acquire;
  t.gate_release <- release

let set_epoch_governor t f = t.epoch_governor <- f
let set_sweep_pacer t f = t.sweep_pacer <- f

(* Fork (§4.3): the child's revoker starts from the parent's sweep state —
   the visit set (pages that have ever held capabilities; the child's CoW
   copies hold the same ones) and the painted-bit population of the
   inherited shadow bitmap. [mixed_gen] arms the one-shot full visit that
   makes the child's first Reloaded epoch sound across the two inherited
   generations. *)
let inherit_from t ~parent =
  Hashtbl.iter (fun vp () -> Hashtbl.replace t.visit_set vp ()) parent.visit_set;
  Revmap.seed_bits t.revmap (Revmap.set_bits parent.revmap);
  t.mixed_gen <- true

let register_barrier t =
  let m = t.m in
  let asid = Vm.Aspace.asid t.aspace in
  match t.strategy with
  | Reloaded -> Machine.set_clg_fault_handler m ~asid (Some (clg_fault_handler t))
  | Cheriot_filter ->
      Machine.set_cap_load_filter m ~asid
        (Some
           (fun fctx c ->
             (* pipelined tightly-coupled bitmap probe: one cycle *)
             Machine.charge fctx 1;
             if Revmap.test_host t.revmap (Capability.base c) then
               Capability.clear_tag c
             else c))
  | Paint_sync | Cherivoke | Cornucopia -> ()

(* Unconditional: [t.strategy] may have downshifted since the barrier was
   registered, so matching on it here would leak the old registration. *)
let unregister_barrier t =
  let asid = Vm.Aspace.asid t.aspace in
  Machine.set_clg_fault_handler t.m ~asid None;
  Machine.set_cap_load_filter t.m ~asid None

(* Exec: the process replaced its image. The quarantine must already have
   been drained; the revoker keeps its epoch counter but forgets the old
   space entirely and re-arms its barrier under the new asid. *)
let rebind t ~aspace =
  unregister_barrier t;
  t.aspace <- aspace;
  Revmap.rebind t.revmap ~aspace;
  Hashtbl.reset t.visit_set;
  t.mixed_gen <- false;
  t.barrier_armed <- false;
  List.iter (fun th -> Machine.assign_aspace th aspace) t.service_threads;
  register_barrier t

let create m ~strategy ~core ?(non_temporal = false)
    ?(background_threads = 1) ?(helper_cores = [ 1; 0 ])
    ?(pte_flag_barrier = false) ?(recovery = default_recovery) ?hoards ?aspace
    ?(pid = 0) () =
  let hoards = match hoards with Some h -> h | None -> Kernel.Hoard.create () in
  let aspace = match aspace with Some a -> a | None -> Machine.aspace m in
  let t =
    {
      m;
      aspace;
      pid;
      strategy;
      recovery;
      core;
      non_temporal;
      pte_flag_barrier;
      revmap = Revmap.create ~aspace m;
      epoch = Epoch.create ();
      hoards;
      work_cv = Machine.condvar ();
      visit_set = Hashtbl.create 1024;
      helpers = [];
      queue = [];
      queued_bytes = 0;
      in_flight = false;
      shutdown = false;
      records = [];
      on_clean = None;
      fault_cycles = 0;
      fault_count = 0;
      revocations = 0;
      total_bytes = 0;
      current_entries = [];
      barrier_armed = false;
      fault = None;
      mixed_gen = false;
      gate_acquire = (fun _ -> ());
      gate_release = (fun _ -> ());
      epoch_governor = None;
      sweep_pacer = None;
      service_threads = [];
      ck_done = Hashtbl.create 256;
      ck_stw_done = false;
      sweep_hook = None;
      on_abort = None;
      consecutive_aborts = 0;
      rs_epoch_aborts = 0;
      rs_sweep_crashes = 0;
      rs_quiesce_timeouts = 0;
      rs_backoff_cycles = 0;
      rs_downshifts = 0;
    }
  in
  register_barrier t;
  (* §7.1: optional helper threads share the background sweep *)
  if background_threads > 1 then begin
    let helpers =
      List.init (background_threads - 1) (fun i ->
          {
            h_core = List.nth helper_cores (i mod List.length helper_cores);
            h_work_cv = Machine.condvar ();
            h_done_cv = Machine.condvar ();
            h_queue = [];
            h_mode = Idle;
            h_pages = 0;
            h_revoked = 0;
            h_failed = false;
          })
    in
    t.helpers <- helpers;
    List.iteri
      (fun i h ->
        let th =
          Machine.spawn m
            ~name:(Printf.sprintf "revoker-helper-%d.%d" pid i)
            ~core:h.h_core ~user:false ~pid ~aspace (helper_body t h)
        in
        t.service_threads <- th :: t.service_threads)
      helpers
  end;
  let th =
    Machine.spawn m
      ~name:(Printf.sprintf "revoker-%s.%d" (strategy_name strategy) pid)
      ~core ~user:false ~pid ~aspace (thread_body t)
  in
  t.service_threads <- th :: t.service_threads;
  t
