(** The in-kernel revocation subsystem: four interchangeable strategies.

    - [Paint_sync]: quarantine bookkeeping only; no sweeps, no safety.
      Characterizes the prerequisite overheads (§5's "Paint+sync").
    - [Cherivoke]: one stop-the-world sweep of every page that has ever
      been capability-dirty (the paper's "CHERIvoke": Cornucopia
      eschewing its concurrent phase).
    - [Cornucopia]: a concurrent sweep of all such pages (clearing their
      capability-dirty bits, with shootdowns), then a stop-the-world
      re-sweep of pages re-dirtied meanwhile, plus register-file and
      kernel-hoard scans (§2.2.5).
    - [Reloaded]: a stop-the-world that only toggles the per-core
      capability-load generation and scans registers/hoards, then a
      fully concurrent background sweep racing the application's
      self-healing load-barrier faults (§3.2, §4.3).

    The revoker runs as a dedicated non-user thread; allocator shims
    enqueue batches of painted quarantine and are called back when a
    batch's epoch has closed. *)

type strategy =
  | Paint_sync
  | Cherivoke
  | Cornucopia
  | Reloaded
  | Cheriot_filter
      (** §6.3: no load generations; every capability load is filtered
          against the revocation bitmap directly (modelled as a
          tightly-coupled probe), so freed objects become inaccessible
          immediately and pages never need re-scanning. *)

val strategy_name : strategy -> string

val all_strategies : strategy list
(** The four strategies of the paper's evaluation. *)

val extended_strategies : strategy list
(** Including [Cheriot_filter]. *)

type batch = { entries : (int * int) list; bytes : int }
(** Quarantined regions, [(addr, size)] pairs, already painted. *)

type fault = Skip_shootdown | Skip_hoard_scan | Early_dequarantine
(** Deliberate protocol mutations for sanitizer self-tests:
    - [Skip_shootdown]: Cornucopia omits the per-page TLB shootdown after
      clearing capability-dirty bits (§2.2.5 violation — racing stores
      through stale TLB entries escape the re-sweep).
    - [Skip_hoard_scan]: root scans omit the kernel capability hoards
      (§4.4 violation — hoarded stale capabilities survive the epoch).
    - [Early_dequarantine]: batches are handed back to the allocator at
      epoch {e begin} instead of epoch end (§2.2.3 violation — memory is
      reused while stale capabilities still exist). *)

val fault_name : fault -> string

val all_faults : fault list

val fault_of_name : string -> fault option
(** Inverse of {!fault_name} — replay files and CLI flags name faults. *)

val strategy_of_name : string -> strategy option
(** Inverse of {!strategy_name} over {!extended_strategies}. *)

exception Induced_crash
(** Raised by a chaos sweep hook (see {!set_sweep_hook}) to model the
    sweep machinery dying mid-page. Never escapes the revoker: the epoch
    retries from its checkpoint or is aborted. *)

val strategy_code : strategy -> int
(** Stable small-integer encoding for trace event arguments
    (Paint_sync = 0 … Cheriot_filter = 4). *)

val downshift_of : strategy -> strategy option
(** The graceful-degradation ladder: [Reloaded -> Cornucopia ->
    Cherivoke], [Cheriot_filter -> Cherivoke]; [Cherivoke] is the floor
    and [Paint_sync] (no safety) is never a target. *)

type recovery = {
  watchdog_timeout : int;
      (** quiesce watchdog deadline, cycles; [0] disarms the watchdog *)
  max_quiesce_retries : int;
      (** stop-the-world attempts before the epoch is aborted *)
  backoff_base : int;
      (** first retry backoff, cycles; doubles per consecutive failure *)
  max_crash_retries : int;
      (** sweep-crash resumptions before the epoch is aborted *)
  max_epoch_aborts : int;
      (** consecutive epoch aborts before the strategy downshifts *)
  clg_storm_threshold : int;
      (** per-epoch CLG fault count above which Reloaded downshifts;
          [max_int] disables the trigger *)
  malloc_throttle : int;
      (** cycles of [Mrs.malloc] backpressure per call while epochs are
          aborting *)
}

val default_recovery : recovery
(** Watchdog armed at 200M cycles (unreachable in fault-free runs, so
    default behaviour is unchanged), 3 quiesce retries, 5 crash retries,
    downshift after 3 consecutive aborts, storm trigger disabled. *)

type recovery_stats = {
  epoch_aborts : int;
  sweep_crash_retries : int;
  quiesce_timeouts : int;
  backoff_cycles : int;
  downshifts : int;
}

type phase_record = {
  epoch_index : int; (** counter value during the revocation (odd) *)
  requested_at : int; (** cycle the epoch's work began *)
  stw_cycles : int; (** world-stopped duration (0 for Paint_sync) *)
  concurrent_cycles : int; (** background phase duration *)
  fault_cycles : int; (** cumulative app-thread CLG fault handling *)
  fault_count : int;
  pages_visited : int;
  caps_revoked : int;
  bytes_processed : int; (** quarantine bytes revoked this epoch *)
}

type t

val create :
  Sim.Machine.t ->
  strategy:strategy ->
  core:int ->
  ?non_temporal:bool ->
  ?background_threads:int ->
  ?helper_cores:int list ->
  ?pte_flag_barrier:bool ->
  ?recovery:recovery ->
  ?hoards:Kernel.Hoard.t ->
  ?aspace:Vm.Aspace.t ->
  ?pid:int ->
  unit ->
  t
(** [background_threads] > 1 spawns §7.1-style helper threads (on
    [helper_cores], default cores 1 and 0) that share Reloaded's and
    CHERIoT's background sweeps. [pte_flag_barrier] enables the §4.1
    ablation in which starting an epoch updates every PTE under
    stop-the-world instead of toggling the in-core generation bit.
    Builds the revoker, registers the load-barrier fault handler
    (Reloaded) or load filter (CHERIoT) for [aspace]'s asid, and spawns
    the revoker thread on [core]; must be called before
    {!Sim.Machine.run}. [aspace] defaults to the machine's initial
    address space and [pid] to 0, reproducing the single-process
    behaviour: the revoker sweeps only [aspace]'s pages, stops only
    [pid]'s threads, and shoots down only cores running [aspace]. *)

val strategy : t -> strategy
(** The {e current} strategy: graceful degradation may have downshifted
    it from the one passed to {!create}. *)

val pid : t -> int
val aspace : t -> Vm.Aspace.t
val epoch : t -> Epoch.t
val revmap : t -> Revmap.t
val hoards : t -> Kernel.Hoard.t

val inject_fault : t -> fault option -> unit
(** Arm (or disarm, with [None]) a protocol mutation. Only sanitizer
    self-tests should ever set this: the resulting runs are deliberately
    temporal-safety-unsound. *)

val injected_fault : t -> fault option

val set_on_clean : t -> (Sim.Machine.ctx -> batch -> unit) -> unit
(** Callback invoked (on the revoker thread) for each batch whose
    revocation epoch has completed; the mrs shim dequarantines there. *)

val set_on_abort : t -> (Sim.Machine.ctx -> unit) option -> unit
(** Callback invoked (on the revoker thread) immediately after an epoch
    abort retracts the counter. The mrs shim clamps its paint-epoch
    stamps there so they never sit above the restored counter. *)

val set_sweep_hook : t -> (Sim.Machine.ctx -> int -> unit) option -> unit
(** Chaos hook consulted at every page visit (argument: the vpage),
    before the page is swept, on whichever thread performs the visit. May
    raise {!Induced_crash} to model a sweep-thread crash; the epoch
    resumes from its checkpoint or aborts after [max_crash_retries]. *)

val recovery_stats : t -> recovery_stats
val consecutive_aborts : t -> int

val backpressure : t -> int
(** Cycles of per-call allocation throttle currently requested
    ([malloc_throttle] while epochs are aborting, else [0]). *)

val enqueue : t -> Sim.Machine.ctx -> batch -> unit
(** Hand a painted batch to the revoker and wake it. *)

val request_shutdown : t -> Sim.Machine.ctx -> unit
(** Drain outstanding batches, then let the revoker thread exit. *)

val in_flight : t -> bool
(** A revocation pass is currently running. *)

val currently_revoking : t -> (int * int) list
(** The quarantined regions being revoked by the in-flight epoch (empty
    between epochs). Used by invariant-checking tests. *)

val queued_entries : t -> (int * int) list
(** Regions in batches handed over but not yet begun, oldest first.
    Together with {!currently_revoking} and the shim's fill buffer this
    enumerates every quarantined region — fork walks all three. *)

val barrier_armed : t -> bool
(** Reloaded only: the epoch-opening stop-the-world has completed, so the
    §3.2 invariant (no unchecked capability can be loaded or held) is in
    force. *)

val queued_bytes : t -> int
val records : t -> phase_record list
(** Per-epoch phase records, oldest first. *)

val revocation_count : t -> int
val total_bytes_processed : t -> int

val set_epoch_gate :
  t -> acquire:(Sim.Machine.ctx -> unit) -> release:(Sim.Machine.ctx -> unit) -> unit
(** Install cross-process scheduler hooks: [acquire] is called on the
    revoker thread before each epoch's work begins and [release] after it
    completes (also on abnormal exit). The default hooks are no-ops, so
    single-process runs are unaffected. *)

val set_epoch_governor : t -> (Sim.Machine.ctx -> unit) option -> unit
(** Install (or clear) an SLO governor hook, called on the revoker thread
    when work is pending but BEFORE the epoch begins (and before the
    cross-process gate is acquired, so deferral never holds the token).
    The hook may sleep to push the epoch into a load trough; batches that
    arrive while it sleeps are folded into the deferred epoch. *)

val set_sweep_pacer : t -> (Sim.Machine.ctx -> visited:int -> int) option -> unit
(** Install (or clear) a concurrent-sweep pacer. When armed, the
    background sweep of Cornucopia / Reloaded / CHERIoT runs in slices:
    before each slice the pacer is called with the pages [visited] so far
    and returns the next slice's page budget (clamped to ≥ 1); it may
    sleep first to yield the core back to the application. A pacer forces
    the whole sweep onto the revoker thread — helper threads cannot
    honour a per-slice budget — so the quantum bound is exact. *)

val inherit_from : t -> parent:t -> unit
(** Fork support (§4.3): seed this (child) revoker's sweep state from the
    parent's — visit set and painted-bit population — and arm a one-shot
    full-heap visit so the child's first Reloaded epoch is sound despite
    the two capability-load generations inherited across the fork. *)

val rebind : t -> aspace:Vm.Aspace.t -> unit
(** Exec support: point the revoker (and its shadow bitmap, service
    threads, and load barrier registration) at a fresh address space,
    dropping all sweep state. The quarantine must already be empty. *)
