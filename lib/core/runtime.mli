(** One-stop setup: machine + allocator + revocation strategy.

    [Baseline] is the spatially-safe CHERI configuration with no temporal
    safety (plain allocator, immediate reuse) — the denominator of every
    overhead figure in the paper. [Safe strategy] wires the allocator
    through the mrs quarantine shim and spawns the chosen revoker. *)

type mode = Baseline | Safe of Revoker.strategy

type allocator_kind = Snmalloc | Jemalloc
(** §10: the paper evaluates with snmalloc but ships with jemalloc;
    footnote 23 attributes large overhead swings to allocator choice. *)

val mode_name : mode -> string
val all_modes : mode list
(** Baseline, Paint+sync, CHERIvoke, Cornucopia, Reloaded. *)

type t = {
  machine : Sim.Machine.t;
  alloc : Alloc.Backend.t;
  hoards : Kernel.Hoard.t;
  mode : mode;
  mrs : Mrs.t option;
  revoker : Revoker.t option;
}

val create :
  ?config:Sim.Machine.config ->
  ?policy:Policy.t ->
  ?revoker_core:int ->
  ?non_temporal:bool ->
  ?recovery:Revoker.recovery ->
  ?allocator:allocator_kind ->
  mode ->
  t
(** [revoker_core] defaults to 2, the paper's pinning; [allocator]
    defaults to [Snmalloc]; [recovery] tunes the revoker's watchdog /
    retry / degradation knobs (default {!Revoker.default_recovery}). *)

val malloc : t -> Sim.Machine.ctx -> int -> Cheri.Capability.t
val free : t -> Sim.Machine.ctx -> Cheri.Capability.t -> unit

val finish : t -> Sim.Machine.ctx -> unit
(** The application thread signals end of workload (lets the revoker
    thread drain and exit so {!Sim.Machine.run} terminates). *)

val revoker_records : t -> Revoker.phase_record list
val mrs_stats : t -> Mrs.stats option
