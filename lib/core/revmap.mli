(** The revocation ("shadow") bitmap (§2.2.2 of the paper).

    One bit per 16-byte granule of the heap. A set bit means: capabilities
    whose {e base} points at that granule are to be revoked. The bitmap
    lives in the process's address space as a kernel-provided object; the
    user allocator paints it on [free] and the kernel sweeps read it, so
    every probe and paint is a real (cache-modelled, charged) memory
    access in the simulator.

    Revocation tests the capability {e base}, not its current address:
    CHERI guarantees bases cannot be moved, so an attacker cannot take a
    capability out of its revocable granule (footnote 9). *)

type t

val create : ?aspace:Vm.Aspace.t -> Sim.Machine.t -> t
(** [?aspace] (default: the machine's primordial space) is the address
    space host-side probes ({!test_host}) translate through — each
    process's revmap reads its own shadow mapping. *)

val seed_bits : t -> int -> unit
(** Set the painted-bit population counter — fork inheritance: a child's
    copy-on-write shadow pages start with the parent's bits set. *)

val rebind : t -> aspace:Vm.Aspace.t -> unit
(** Point host-side probes at a fresh space with an all-clear shadow
    region (exec), resetting the population counter. *)

val paint : t -> Sim.Machine.ctx -> addr:int -> size:int -> unit
(** Set the bits for [\[addr, addr+size)]. Word-at-a-time read-modify-
    write through the user mapping. [addr]/[size] must be granule-
    aligned heap addresses. *)

val clear : t -> Sim.Machine.ctx -> addr:int -> size:int -> unit
(** Clear the bits (dequarantine). *)

val test : t -> Sim.Machine.ctx -> int -> bool
(** Probe the bit for a heap address (a capability base). Addresses
    outside the heap are never revocable and probe as [false] without a
    memory access. *)

val revoke_cap : t -> Sim.Machine.ctx -> Cheri.Capability.t -> Cheri.Capability.t
(** The revoker's test-and-clear on a capability {e value}: probe the
    bit for its base; untag it if set. Untagged input passes through
    unprobed. *)

val test_host : t -> int -> bool
(** Probe without charging simulated cycles or traffic: models CHERIoT's
    tightly-coupled-memory bitmap lookup folded into the load pipeline
    (§6.3), and serves tests that must not perturb measurements. *)

val set_bits : t -> int
(** Number of bits currently painted (O(1) bookkeeping, for tests and
    statistics; not a simulated access). *)
