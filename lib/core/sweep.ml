module Capability = Cheri.Capability
module Machine = Sim.Machine
module Cost = Sim.Cost
module Phys = Vm.Phys
module Pte = Vm.Pte

type stats = { granules : int; tagged : int; revoked : int; upgraded : bool }

let zero_stats = { granules = 0; tagged = 0; revoked = 0; upgraded = false }

let add_stats a b =
  {
    granules = a.granules + b.granules;
    tagged = a.tagged + b.tagged;
    revoked = a.revoked + b.revoked;
    upgraded = a.upgraded || b.upgraded;
  }

let granule = Tagmem.Mem.granule

let sweep_page ?(non_temporal = false) ctx revmap ~pte =
  let read =
    if non_temporal then Machine.kern_read_cap_nt else Machine.kern_read_cap_stream
  in
  let base = Phys.frame_addr pte.Pte.frame in
  let tagged = ref 0 and revoked = ref 0 and upgraded = ref false in
  let n = Phys.page_size / granule in
  for i = 0 to n - 1 do
    let pa = base + (i * granule) in
    let c = read ctx ~pa in
    if Capability.tag c then begin
      incr tagged;
      if Revmap.test revmap ctx (Capability.base c) then begin
        if (not pte.Pte.writable) && not !upgraded then begin
          (* read-only page that turns out to need revocation: invoke the
             full fault machinery to upgrade it to writable (§4.3) *)
          Machine.charge ctx (Cost.trap + Cost.pmap_lock + Cost.pte_update);
          upgraded := true
        end;
        Machine.kern_clear_tag ctx ~pa;
        incr revoked
      end
    end
  done;
  Machine.trace_emit (Machine.machine ctx) ~time:(Machine.now ctx)
    ~core:(Machine.core_id ctx) ~pid:(Machine.ctx_pid ctx) ~arg2:!revoked
    Sim.Trace.Page_sweep base;
  { granules = n; tagged = !tagged; revoked = !revoked; upgraded = !upgraded }

let scan_regfile ctx revmap regs =
  let revoked = ref 0 in
  ignore
    (Sim.Regfile.map_tagged regs (fun c ->
         Machine.charge ctx Cost.alu;
         let c' = Revmap.revoke_cap revmap ctx c in
         if not (Capability.tag c') then incr revoked;
         c'));
  !revoked

let scan_hoard ctx revmap hoard =
  let revoked = ref 0 in
  let n =
    Kernel.Hoard.scan hoard ~f:(fun c ->
        let c' = Revmap.revoke_cap revmap ctx c in
        if Capability.tag c && not (Capability.tag c') then incr revoked;
        c')
  in
  Machine.charge ctx (n * Cost.alu);
  Machine.trace_emit (Machine.machine ctx) ~time:(Machine.now ctx)
    ~core:(Machine.core_id ctx) ~pid:(Machine.ctx_pid ctx) ~arg2:!revoked
    Sim.Trace.Hoard_scan n;
  !revoked
