module Capability = Cheri.Capability
module Machine = Sim.Machine
module Cost = Sim.Cost
module Phys = Vm.Phys
module Pte = Vm.Pte

type stats = { granules : int; tagged : int; revoked : int; upgraded : bool }

let zero_stats = { granules = 0; tagged = 0; revoked = 0; upgraded = false }

let add_stats a b =
  {
    granules = a.granules + b.granules;
    tagged = a.tagged + b.tagged;
    revoked = a.revoked + b.revoked;
    upgraded = a.upgraded || b.upgraded;
  }

let granule = Tagmem.Mem.granule

(* The revoker's hot loop. Two implementations with an exact-equivalence
   contract (enforced by test/test_sweepkernel.ml): every cycle charged,
   bus transaction, cache-state transition and trace event must be
   identical between them.

   The word-scan fast path reads the page's packed tag bitmap 64
   granules per [Int64] load and batches the cost model over untagged
   cache lines ([Machine.kern_read_untagged_run]); only tagged granules
   materialise a capability and probe the revocation map. Probing can
   yield at a safe point (the application may then write this very
   page), so the cached tag word is refreshed after every probe — the
   per-granule loop re-reads the tag at each visit, and bit-exact
   equivalence includes those racy windows.

   The per-granule loop remains the reference, and stays in use whenever
   a chaos tag-read hook is armed: the hook must be consulted on every
   granule read, which the batched path deliberately skips. *)

let probe_tagged ctx revmap ~pte ~pa c ~upgraded =
  if Revmap.test revmap ctx (Capability.base c) then begin
    if (not pte.Pte.writable) && not !upgraded then begin
      (* read-only page that turns out to need revocation: invoke the
         full fault machinery to upgrade it to writable (§4.3) *)
      Machine.charge ctx (Cost.trap + Cost.pmap_lock + Cost.pte_update);
      upgraded := true
    end;
    Machine.kern_clear_tag ctx ~pa;
    true
  end
  else false

let sweep_page_granular ~non_temporal ctx revmap ~pte ~base ~n ~tagged ~revoked
    ~upgraded =
  let read =
    if non_temporal then Machine.kern_read_cap_nt else Machine.kern_read_cap_stream
  in
  for i = 0 to n - 1 do
    let pa = base + (i * granule) in
    let c = read ctx ~pa in
    if Capability.tag c then begin
      incr tagged;
      if probe_tagged ctx revmap ~pte ~pa c ~upgraded then incr revoked
    end
  done

let word_granules = 64

let sweep_page_wordscan ~non_temporal ctx revmap ~pte ~base ~n ~tagged ~revoked
    ~upgraded =
  let m = Machine.machine ctx in
  let mem = Machine.mem m in
  let read =
    if non_temporal then Machine.kern_read_cap_nt else Machine.kern_read_cap_stream
  in
  let gpl = Tagmem.Cache.line_size / granule in
  let line_mask = Int64.of_int ((1 lsl gpl) - 1) in
  for w = 0 to (n / word_granules) - 1 do
    let word_pa = base + (w * word_granules * granule) in
    (* refreshed after every probe: Revmap.test can yield, and a resumed
       application thread may have re-written granules we haven't
       visited yet *)
    let word = ref (Tagmem.Mem.tag_word mem word_pa) in
    for l = 0 to (word_granules / gpl) - 1 do
      let line_pa = word_pa + (l * gpl * granule) in
      let bits =
        Int64.logand (Int64.shift_right_logical !word (l * gpl)) line_mask
      in
      if Int64.equal bits 0L then
        (* all-untagged line: one batched charge for the whole line *)
        Machine.kern_read_untagged_run ~non_temporal ctx ~pa:line_pa ~count:gpl
      else
        for g = 0 to gpl - 1 do
          let pa = line_pa + (g * granule) in
          let bit = Int64.shift_left 1L ((l * gpl) + g) in
          if Int64.equal (Int64.logand !word bit) 0L then
            Machine.kern_read_untagged_run ~non_temporal ctx ~pa ~count:1
          else begin
            let c = read ctx ~pa in
            incr tagged;
            if probe_tagged ctx revmap ~pte ~pa c ~upgraded then incr revoked;
            word := Tagmem.Mem.tag_word mem word_pa
          end
        done
    done
  done

let sweep_page ?(non_temporal = false) ctx revmap ~pte =
  let base = Phys.frame_addr pte.Pte.frame in
  let tagged = ref 0 and revoked = ref 0 and upgraded = ref false in
  let n = Phys.page_size / granule in
  let body =
    if Machine.tag_hook_armed (Machine.machine ctx) then sweep_page_granular
    else sweep_page_wordscan
  in
  body ~non_temporal ctx revmap ~pte ~base ~n ~tagged ~revoked ~upgraded;
  Machine.trace_emit (Machine.machine ctx) ~time:(Machine.now ctx)
    ~core:(Machine.core_id ctx) ~pid:(Machine.ctx_pid ctx) ~arg2:!revoked
    Sim.Trace.Page_sweep base;
  { granules = n; tagged = !tagged; revoked = !revoked; upgraded = !upgraded }

let scan_regfile ctx revmap regs =
  let revoked = ref 0 in
  ignore
    (Sim.Regfile.map_tagged regs (fun c ->
         Machine.charge ctx Cost.alu;
         let c' = Revmap.revoke_cap revmap ctx c in
         if not (Capability.tag c') then incr revoked;
         c'));
  !revoked

let scan_hoard ctx revmap hoard =
  let revoked = ref 0 in
  let n =
    Kernel.Hoard.scan hoard ~f:(fun c ->
        let c' = Revmap.revoke_cap revmap ctx c in
        if Capability.tag c && not (Capability.tag c') then incr revoked;
        c')
  in
  Machine.charge ctx (n * Cost.alu);
  Machine.trace_emit (Machine.machine ctx) ~time:(Machine.now ctx)
    ~core:(Machine.core_id ctx) ~pid:(Machine.ctx_pid ctx) ~arg2:!revoked
    Sim.Trace.Hoard_scan n;
  !revoked
