module Capability = Cheri.Capability
module Machine = Sim.Machine
module Backend = Alloc.Backend

type t = {
  m : Machine.t;
  alloc : Backend.t;
  revoker : Revoker.t;
  policy : Policy.t;
  mutable buffer : (int * int) list;
  mutable buffer_bytes : int;
  mutable outstanding_bytes : int; (* enqueued but not yet dequarantined *)
  mutable finishing : bool;
  mutable revocation_triggers : int;
  mutable sum_freed : int;
  mutable live_samples : int list;
  mutable quarantine_samples : int list;
  mutable blocked : int;
  mutable throttled : int; (* mallocs slowed by abort backpressure *)
  mutable abandoned : int; (* quarantine bytes dropped by [finish] *)
  mutable release_stall : (Machine.ctx -> int) option;
      (* chaos: extra cycles to stall before each batch release *)
  mutable on_release : (Machine.ctx -> addr:int -> size:int -> unit) option;
      (* quota ledger: called for each clean entry before its bitmap is
         cleared and the memory released — credits precede [Reuse] *)
  drained : Machine.condvar; (* signaled after each batch is dequarantined *)
  (* counter values at batch handoff: dequarantine asserts the §2.2.3
     epoch protocol against them *)
  batch_epochs : (int, int) Hashtbl.t;
  mutable batch_id : int;
  mutable next_clean : int;
}

let quarantine_bytes t = t.buffer_bytes + t.outstanding_bytes
let policy t = t.policy
let allocator t = t.alloc

let on_clean t ctx (batch : Revoker.batch) =
  (* Runs on the revoker thread once the batch's epoch has closed. Batches
     complete in handoff order; assert the §2.2.3 epoch protocol for the
     oldest outstanding one. *)
  (match Hashtbl.find_opt t.batch_epochs t.next_clean with
  | Some painted_at ->
      (* under an injected protocol mutation the violation is the point:
         let the sanitizer report it rather than aborting the run here *)
      if Revoker.injected_fault t.revoker = None then
        assert (Epoch.is_clean (Revoker.epoch t.revoker) ~painted_at);
      Hashtbl.remove t.batch_epochs t.next_clean;
      t.next_clean <- t.next_clean + 1
  | None -> ());
  (match t.release_stall with
  | Some h ->
      let d = h ctx in
      if d > 0 then Machine.sleep ctx d
  | None -> ());
  List.iter
    (fun (addr, size) ->
      (match t.on_release with
      | Some h -> h ctx ~addr ~size
      | None -> ());
      Revmap.clear (Revoker.revmap t.revoker) ctx ~addr ~size;
      t.alloc.Backend.release_range ctx ~addr ~size;
      Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
        ~pid:(Revoker.pid t.revoker) ~arg2:size Sim.Trace.Reuse addr)
    batch.Revoker.entries;
  t.outstanding_bytes <- t.outstanding_bytes - batch.Revoker.bytes;
  Machine.broadcast ctx t.drained

let create m ~alloc ~revoker ?(policy = Policy.default) () =
  let t =
    {
      m;
      alloc;
      revoker;
      policy;
      buffer = [];
      buffer_bytes = 0;
      outstanding_bytes = 0;
      finishing = false;
      revocation_triggers = 0;
      sum_freed = 0;
      live_samples = [];
      quarantine_samples = [];
      blocked = 0;
      throttled = 0;
      abandoned = 0;
      release_stall = None;
      on_release = None;
      drained = Machine.condvar ();
      batch_epochs = Hashtbl.create 64;
      batch_id = 0;
      next_clean = 0;
    }
  in
  Revoker.set_on_clean revoker (fun ctx batch -> on_clean t ctx batch);
  (* Epoch aborts move the counter backwards, which can leave handed-off
     batches stamped "from the future" relative to the restored counter —
     [is_clean] would then trip on perfectly sound deliveries. Clamping
     the stamps down to the restored value is sound: the batches were
     enqueued before the retried epoch begins, so that epoch's completion
     covers them exactly as it covers anything painted at the restored
     counter. *)
  Revoker.set_on_abort revoker
    (Some
       (fun _ctx ->
         let c = Epoch.counter (Revoker.epoch revoker) in
         Hashtbl.filter_map_inplace
           (fun _ painted_at -> Some (min painted_at c))
           t.batch_epochs));
  t

let trigger t ctx =
  if t.buffer <> [] then begin
    let batch = { Revoker.entries = List.rev t.buffer; bytes = t.buffer_bytes } in
    t.revocation_triggers <- t.revocation_triggers + 1;
    t.live_samples <- t.alloc.Backend.live_bytes () :: t.live_samples;
    t.quarantine_samples <- quarantine_bytes t :: t.quarantine_samples;
    Hashtbl.replace t.batch_epochs t.batch_id (Epoch.counter (Revoker.epoch t.revoker));
    t.batch_id <- t.batch_id + 1;
    t.outstanding_bytes <- t.outstanding_bytes + t.buffer_bytes;
    t.buffer <- [];
    t.buffer_bytes <- 0;
    Revoker.enqueue t.revoker ctx batch
  end

let maybe_trigger t ctx =
  let live = t.alloc.Backend.live_bytes () in
  if
    (not t.finishing)
    && Policy.should_revoke t.policy ~live ~quarantine:(quarantine_bytes t)
    && not (Revoker.in_flight t.revoker)
    && Revoker.queued_bytes t.revoker = 0
  then trigger t ctx

(* Block while quarantine is severely over policy and a revocation is in
   flight: wait for batches to be dequarantined (§5.3). *)
let maybe_block t ctx =
  let rec loop () =
    let live = t.alloc.Backend.live_bytes () in
    if
      Policy.should_block t.policy ~live ~quarantine:(quarantine_bytes t)
      && (Revoker.in_flight t.revoker || Revoker.queued_bytes t.revoker > 0)
    then begin
      t.blocked <- t.blocked + 1;
      Machine.wait ctx t.drained;
      loop ()
    end
  in
  loop ()

let malloc t ctx size =
  Machine.charge ctx Sim.Cost.mrs_shim;
  (* abort backpressure: while the revoker cannot retire quarantine, slow
     the application down instead of letting it outrun recovery *)
  let bp = Revoker.backpressure t.revoker in
  if bp > 0 then begin
    t.throttled <- t.throttled + 1;
    Machine.sleep ctx bp
  end;
  maybe_block t ctx;
  maybe_trigger t ctx;
  t.alloc.Backend.malloc ctx size

let free t ctx cap =
  Machine.charge ctx Sim.Cost.mrs_shim;
  maybe_block t ctx;
  let addr = Capability.base cap in
  let size = t.alloc.Backend.withdraw ctx cap in
  Revmap.paint (Revoker.revmap t.revoker) ctx ~addr ~size;
  t.buffer <- (addr, size) :: t.buffer;
  t.buffer_bytes <- t.buffer_bytes + size;
  t.sum_freed <- t.sum_freed + size;
  t.alloc.Backend.note_rss ()

let revoker t = t.revoker
let buffered_entries t = List.rev t.buffer
let flush = trigger

let adopt_quarantine t entries =
  List.iter
    (fun (addr, size) ->
      t.buffer <- (addr, size) :: t.buffer;
      t.buffer_bytes <- t.buffer_bytes + size;
      t.sum_freed <- t.sum_freed + size)
    entries

let wait_drained t ctx =
  while quarantine_bytes t > 0 do
    Machine.wait ctx t.drained
  done

let set_release_stall t f = t.release_stall <- f
let set_on_release t f = t.on_release <- f

let wait_release t ctx =
  if quarantine_bytes t > 0 then Machine.wait ctx t.drained

let finish t ctx =
  t.finishing <- true;
  (* Quarantine still buffered (or queued/in-flight) at process end is
     abandoned, as on a real exiting system — but not silently: account
     it and leave a trace event so nothing "drains" by vanishing. *)
  let dropped = quarantine_bytes t in
  if dropped > 0 then begin
    t.abandoned <- t.abandoned + dropped;
    Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
      ~pid:(Revoker.pid t.revoker) Sim.Trace.Quarantine_abandoned dropped
  end;
  Revoker.request_shutdown t.revoker ctx

let abandoned_bytes t = t.abandoned

type stats = {
  revocations : int;
  sum_freed_bytes : int;
  live_samples : int list;
  quarantine_samples : int list;
  blocked_allocs : int;
  throttled_allocs : int;
  abandoned_bytes : int;
}

let stats t =
  {
    revocations = Revoker.revocation_count t.revoker;
    sum_freed_bytes = t.sum_freed;
    live_samples = List.rev t.live_samples;
    quarantine_samples = List.rev t.quarantine_samples;
    blocked_allocs = t.blocked;
    throttled_allocs = t.throttled;
    abandoned_bytes = t.abandoned;
  }
