(** Page sweeping: the revoker's inner loop (§4.3 of the paper).

    A sweep visits every capability-sized granule of a physical page,
    probes the revocation bitmap for each tagged granule, and clears the
    tags of capabilities whose base is painted. All accesses go through
    the sweeping thread's core cache, so foreground (fault-driven) sweeps
    warm the application's cache while background sweeps dirty only the
    revoker core's (§5.6). *)

type stats = {
  granules : int; (** granules visited *)
  tagged : int; (** capabilities seen *)
  revoked : int; (** tags cleared *)
  upgraded : bool; (** read-only page needed the write upgrade path *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val sweep_page :
  ?non_temporal:bool ->
  Sim.Machine.ctx ->
  Revmap.t ->
  pte:Vm.Pte.t ->
  stats
(** Content-scan the page's frame. Implements the read-only heuristic:
    if the page is not user-writable, the scan runs read-only and only
    invokes the full fault machinery (charged) when a capability must
    actually be revoked.

    Internally uses the word-scan kernel ({!Tagmem.Mem.tag_word}): the
    page's packed tag bitmap is read 64 granules per load, untagged
    cache lines are charged in one batch, and only tagged granules
    materialise capabilities and probe the revocation map. Cycle
    counts, bus traffic, cache state and trace events are bit-for-bit
    identical to the per-granule reference loop, which remains in use
    whenever a chaos tag hook is armed (the hook must observe every
    granule read). *)

val scan_regfile : Sim.Machine.ctx -> Revmap.t -> Sim.Regfile.t -> int
(** Probe-and-revoke every tagged register; returns revoked count. *)

val scan_hoard : Sim.Machine.ctx -> Revmap.t -> Kernel.Hoard.t -> int
(** Scan the kernel's hoarded capabilities; returns revoked count. *)
