type t = { fraction : float; min_quarantine : int; block_factor : float }

let default = { fraction = 0.25; min_quarantine = 128 * 1024; block_factor = 2.0 }
let with_min t min_quarantine = { t with min_quarantine }
let with_fraction t fraction = { t with fraction }

let threshold t ~live ~quarantine =
  let total = live + quarantine in
  max t.min_quarantine (int_of_float (t.fraction *. float_of_int total))

let should_revoke t ~live ~quarantine = quarantine > threshold t ~live ~quarantine

let should_block t ~live ~quarantine =
  float_of_int quarantine
  > t.block_factor *. float_of_int (threshold t ~live ~quarantine)

(* Load-adaptive trigger (the serving governor's policy extension): scale
   the trigger fraction with the instantaneous foreground load so epochs
   open eagerly in troughs (harvesting idle cycles) and late at peaks.
   The deferred ceiling stays strictly under the block margin — adapting
   the trigger must never push normal operation into §5.3's blocking
   regime, which remains the hard backstop. *)
let eager_scale = 0.5
let defer_scale = 1.5

let adaptive t ~load =
  let load = if load < 0.0 then 0.0 else if load > 1.0 then 1.0 else load in
  let scale = eager_scale +. (load *. (defer_scale -. eager_scale)) in
  let scale = min scale (0.9 *. t.block_factor) in
  { t with fraction = t.fraction *. scale }
