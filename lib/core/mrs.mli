(** The malloc revocation shim ("mrs", after Gutstein's CHERI malloc
    revocation shim the paper's userspace machinery is built on).

    Interposes quarantine between [free] and reuse:

    - [free] withdraws the block from the allocator, paints its
      revocation-bitmap bits (a real, charged memory write by the
      application thread), and adds it to the current quarantine buffer;
    - when policy fires, the buffer is handed to the {!Revoker} as a
      batch and a fresh buffer starts filling (double buffering, so
      frees continue during revocation);
    - when the revoker reports a batch's epoch closed, the shim clears
      the bitmap bits and releases the memory for reuse;
    - [malloc] blocks when quarantine is severely over policy while a
      revocation is still in flight (§5.3's long-tail mechanism).

    The {!Epoch} counter protocol is asserted throughout: memory is only
    ever released once {!Epoch.is_clean} holds for the counter value read
    when its batch was enqueued. *)

type t

val create :
  Sim.Machine.t ->
  alloc:Alloc.Backend.t ->
  revoker:Revoker.t ->
  ?policy:Policy.t ->
  unit ->
  t

val malloc : t -> Sim.Machine.ctx -> int -> Cheri.Capability.t
val free : t -> Sim.Machine.ctx -> Cheri.Capability.t -> unit

val finish : t -> Sim.Machine.ctx -> unit
(** End of workload: stop triggering and let the revoker thread drain
    and exit. Outstanding quarantine is abandoned (the process is
    exiting), as on a real system — accounted in {!abandoned_bytes} and
    announced with a [Quarantine_abandoned] trace event rather than
    dropped silently. *)

val abandoned_bytes : t -> int
(** Quarantine bytes dropped (never revoked) by {!finish}. *)

val set_release_stall : t -> (Sim.Machine.ctx -> int) option -> unit
(** Chaos hook: called before each clean batch is released; the returned
    cycle count is slept on the revoker thread first, modelling a
    quarantine-drain stall (blocked [malloc]s keep waiting meanwhile). *)

val set_on_release : t -> (Sim.Machine.ctx -> addr:int -> size:int -> unit) option -> unit
(** Ledger hook: called on the revoker thread for each entry of a clean
    batch, {e before} its bitmap bits are cleared and before the [Reuse]
    trace event — so a quota credit is always observable strictly before
    the memory returns to the allocator. *)

val wait_release : t -> Sim.Machine.ctx -> unit
(** Block until the next quarantine batch is dequarantined (one bounded
    wait, not a full drain). Returns immediately when no quarantine is
    buffered, queued or in flight. Over-commit reclaim loops use this
    between [flush] retries. *)

val quarantine_bytes : t -> int
(** Current buffer + queued + in-flight quarantine. *)

val policy : t -> Policy.t
val allocator : t -> Alloc.Backend.t
val revoker : t -> Revoker.t

val buffered_entries : t -> (int * int) list
(** Quarantined regions still in the fill buffer (painted, not yet handed
    to the revoker), oldest first. Exposed for fork: the child inherits
    copy-on-write views of these regions. *)

val flush : t -> Sim.Machine.ctx -> unit
(** Hand the current buffer to the revoker immediately, regardless of
    policy. No-op when the buffer is empty. *)

val adopt_quarantine : t -> (int * int) list -> unit
(** Fork support: append regions to the fill buffer {e without} painting
    them — the child's copy-on-write shadow bitmap already carries their
    bits. They flow through this shim's revoker like ordinary frees. *)

val wait_drained : t -> Sim.Machine.ctx -> unit
(** Block until every quarantined byte (buffered, queued and in-flight)
    has been dequarantined. Callers should {!flush} first; the reaper
    uses this to drain a zombie's quarantine before releasing its frames. *)

(** {1 Statistics (Table 2 of the paper)} *)

type stats = {
  revocations : int;
  sum_freed_bytes : int; (** total bytes that entered quarantine *)
  live_samples : int list; (** allocated heap sampled at each trigger *)
  quarantine_samples : int list; (** quarantine size at each trigger *)
  blocked_allocs : int; (** malloc/free operations that had to block *)
  throttled_allocs : int; (** mallocs slowed by epoch-abort backpressure *)
  abandoned_bytes : int; (** quarantine dropped unrevoked at [finish] *)
}

val stats : t -> stats
