(** The revocation epoch counter (§2.2.3 of the paper).

    Publicly readable; initialized to zero; incremented immediately
    before a revocation begins (making it odd) and again after it ends
    (making it even). An allocator that painted quarantine bits at
    counter value [e] may reuse that memory once the counter shows a
    revocation has both begun and ended strictly afterwards: it must
    advance by at least two if [e] was even, three if odd. *)

type t

val create : unit -> t
val counter : t -> int

val in_progress : t -> bool
(** Counter is odd. *)

val begin_revocation : t -> Sim.Machine.ctx -> unit
(** Increment (must currently be even) and wake waiters. *)

val end_revocation : t -> Sim.Machine.ctx -> unit
(** Increment (must currently be odd) and wake waiters. *)

val abort_revocation : t -> Sim.Machine.ctx -> unit
(** Retract an open revocation: decrement (must currently be odd) back
    to the pre-begin even value and wake waiters. Sound by construction:
    the counter only ever under-promises, so {!is_clean} can never
    become true for memory whose sweep did not complete — allocators
    simply wait for the retried epoch. *)

val aborts : t -> int
(** Times {!abort_revocation} has retracted an epoch. *)

val clean_target : int -> int
(** [clean_target e] is the counter value at which memory painted at
    counter value [e] is known revoked: [e + 2] when [e] is even,
    [e + 3] when odd. Saturates at [max_int] rather than wrapping if
    [e] is within 3 of [max_int]. *)

val is_clean : t -> painted_at:int -> bool

val wait_clean : t -> Sim.Machine.ctx -> painted_at:int -> unit
(** Block the calling thread until {!is_clean}. *)

val wait_change : t -> Sim.Machine.ctx -> unit
(** Block until the counter next changes. *)
