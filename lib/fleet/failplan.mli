(** Seeded fleet failure schedules: which host is down when.

    A schedule is a list of blackout {!window}s planned up front from
    (kind, host count, horizon, seed) — the fleet analogue of
    {!Chaos.plan}. During a host's window the balancer routes its
    traffic elsewhere (redistribution) and the host's own servers stop
    taking requests; at the window's start the host's revoker takes an
    induced sweep crash, so the restart exercises the resumable-epoch
    recovery path (the checkpointed sweep cursor survives the crash and
    the epoch resumes, not restarts — PR 3's machinery).

    - [No_failures]: the control schedule; every host stays up.
    - [Rolling]: one staggered restart per host — a planned rolling
      restart wave across the fleet. Windows never overlap, so capacity
      loss is bounded at one host.
    - [Crash_wave]: a seed-chosen subset of hosts crashes in a short
      interval with overlapping down windows — correlated failure, the
      case load balancing handles worst. At least one host always
      survives ([victims] is capped at [hosts - 1] when [hosts > 1]). *)

type kind = No_failures | Rolling | Crash_wave

val kind_name : kind -> string
val kind_of_name : string -> kind option
val all_kinds : kind list

type window = {
  w_host : int;
  w_down : int;  (** first cycle the host is unavailable *)
  w_up : int;  (** first cycle it serves again *)
}

val validate :
  hosts:int -> horizon:int -> window list -> (unit, string) result
(** Check a schedule against the invariants every consumer assumes:
    host ids in [\[0, hosts)], [0 <= w_down < w_up <= horizon], and at
    most one blackout per host at a time (same-host windows must not
    overlap — {e cross}-host overlap is legal, that is what a crash wave
    is). The error names the offending window. Both {!plan}'s output and
    caller-supplied schedules ({!Fleet.config.windows_override}) go
    through this. *)

val plan : kind -> hosts:int -> horizon:int -> seed:int -> window list
(** Deterministic in all arguments. Windows land inside
    [\[horizon/4, 3*horizon/4\]] so the trace has a measured before,
    during and after. The output always satisfies {!validate}. Raises
    [Invalid_argument] if [hosts < 1] or [horizon < 8]. *)

val down : window list -> host:int -> at:int -> bool
(** Is [host] inside one of its blackout windows at cycle [at]? *)

val host_windows : window list -> host:int -> (int * int) list
(** The [(down, up)] pairs of one host, in schedule order. *)
