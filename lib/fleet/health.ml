(* Per-host client-side health: EWMA latency, in-flight estimate,
   consecutive-failure streak, and a circuit breaker over them. The whole
   module is driven from the fleet's pure planning fold — dispatch and
   observation events arrive in deterministic (time, id) order, and every
   timestamp is a simulated cycle — so breaker trajectories are exactly
   reproducible from the seed, never from wall-clock. *)

module Cost = Sim.Cost

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  failure_threshold : int;
  cooloff_us : float;
  half_open_probes : int;
  ewma_alpha : float;
}

let default_config =
  {
    failure_threshold = 5;
    cooloff_us = 5_000.0;
    half_open_probes = 2;
    ewma_alpha = 0.2;
  }

type host = {
  mutable ewma_us : float; (* 0 until the first latency sample *)
  mutable in_flight : int;
  mutable failures : int; (* consecutive, reset by any success *)
  mutable st : state;
  mutable open_until : int; (* cycles; meaningful while [Open] *)
  mutable probe_ok : int; (* successes observed in [Half_open] *)
  mutable reopen_streak : int; (* consecutive trips without a close *)
  mutable trips : int;
}

type t = {
  cfg : config;
  cooloff : int; (* cycles *)
  est_service_us : float;
  hs : host array;
}

let create ~hosts ?(config = default_config) ~est_service_us () =
  if hosts < 1 then invalid_arg "Health.create: hosts < 1";
  if config.failure_threshold < 1 then
    invalid_arg "Health.create: failure_threshold < 1";
  if config.cooloff_us <= 0.0 then invalid_arg "Health.create: cooloff_us <= 0";
  if config.half_open_probes < 1 then
    invalid_arg "Health.create: half_open_probes < 1";
  if config.ewma_alpha <= 0.0 || config.ewma_alpha > 1.0 then
    invalid_arg "Health.create: ewma_alpha outside (0, 1]";
  if est_service_us <= 0.0 then
    invalid_arg "Health.create: est_service_us <= 0";
  {
    cfg = config;
    cooloff = max 1 (Cost.cycles_of_us config.cooloff_us);
    est_service_us;
    hs =
      Array.init hosts (fun _ ->
          {
            ewma_us = 0.0;
            in_flight = 0;
            failures = 0;
            st = Closed;
            open_until = 0;
            probe_ok = 0;
            reopen_streak = 0;
            trips = 0;
          });
  }

(* Each consecutive reopen doubles the cooloff (capped at 16x): a host
   that keeps failing its probation is probed less and less often. *)
let cooloff_for t h = t.cooloff * (1 lsl min h.reopen_streak 4)

let available t ~host ~now =
  let h = t.hs.(host) in
  match h.st with
  | Closed -> true
  | Half_open -> true
  | Open ->
      if now >= h.open_until then begin
        (* probation: admit traffic again, but a single failure re-opens
           and [half_open_probes] successes are needed to close *)
        h.st <- Half_open;
        h.probe_ok <- 0;
        true
      end
      else false

let note_dispatch t ~host = t.hs.(host).in_flight <- t.hs.(host).in_flight + 1

let settle h = h.in_flight <- max 0 (h.in_flight - 1)

let note_success t ~host ~latency_us =
  let h = t.hs.(host) in
  settle h;
  h.failures <- 0;
  h.ewma_us <-
    (if h.ewma_us = 0.0 then latency_us
     else
       (t.cfg.ewma_alpha *. latency_us)
       +. ((1.0 -. t.cfg.ewma_alpha) *. h.ewma_us));
  match h.st with
  | Half_open ->
      h.probe_ok <- h.probe_ok + 1;
      if h.probe_ok >= t.cfg.half_open_probes then begin
        h.st <- Closed;
        h.reopen_streak <- 0
      end
  | Closed | Open -> ()

let trip t h ~now =
  h.trips <- h.trips + 1;
  h.open_until <- now + cooloff_for t h;
  h.reopen_streak <- h.reopen_streak + 1;
  h.st <- Open

let note_failure t ~host ~now =
  let h = t.hs.(host) in
  settle h;
  h.failures <- h.failures + 1;
  match h.st with
  | Half_open -> trip t h ~now (* failed probation: re-open, escalated *)
  | Closed -> if h.failures >= t.cfg.failure_threshold then trip t h ~now
  | Open -> ()

(* Extra load-balancer score in queued-request equivalents: the failure
   streak plus the EWMA latency measured in multiples of the nominal
   service time. Purely advisory — availability is the breaker's job. *)
(* Only the latency EXCESS over the service estimate counts, and it is
   capped at a modest queue-equivalent: the EWMA is a lagged signal, and
   letting it dominate the balancer's live outstanding counts makes the
   whole fleet herd onto whichever host's stale average looks best —
   amplifying exactly the congestion it is meant to avoid. *)
let penalty t ~host =
  let h = t.hs.(host) in
  (2 * h.failures)
  + min 4
      (int_of_float
         (Float.max 0.0
            ((h.ewma_us -. t.est_service_us) /. (4.0 *. t.est_service_us))))

let state t ~host = t.hs.(host).st
let ewma_us t ~host = t.hs.(host).ewma_us
let in_flight t ~host = t.hs.(host).in_flight
let trips t = Array.fold_left (fun acc h -> acc + h.trips) 0 t.hs
let host_trips t ~host = t.hs.(host).trips
