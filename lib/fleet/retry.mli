(** Client retry policies: attempt caps, backoff, hedging, and per-class
    retry budgets.

    - [No_retry]: one attempt per request, period.
    - [Naive]: up to [max_attempts] attempts separated by a {e fixed}
      short delay, spent from no budget — the classic retry storm: every
      failure immediately becomes more offered load, which is what
      drives a crashed fleet into the metastable trough.
    - [Budgeted]: capped exponential backoff with {e decorrelated
      jitter} (the delay window doubles per attempt and the delay is
      drawn uniformly from [window, 2*window)), spent from a per-class
      token bucket that only refills on {e successes} ([ratio] tokens
      each, capped at [burst]) — under sustained failure the budget runs
      dry and the client stops amplifying load.

    Backoff delays are a {e pure hash} of (seed, request id, attempt
    number), not draws from a sequential generator: the fleet's round
    loop recomputes retry decisions from scratch each round, so a
    request's delay must not depend on which other requests failed
    first. *)

type policy =
  | No_retry
  | Naive of { max_attempts : int; delay_us : float }
  | Budgeted of {
      max_attempts : int;
      base_us : float;  (** first backoff window *)
      cap_us : float;  (** backoff ceiling *)
      ratio : float;  (** budget tokens refunded per success *)
      burst : int;  (** budget bucket capacity (and initial fill) *)
    }

val policy_name : policy -> string
(** ["none"], ["naive"] or ["budgeted"]. *)

val policy_of_name : string -> policy option
(** Keyword to policy with default parameters (naive: 4 attempts 200 µs
    apart; budgeted: 4 attempts, 400 µs base, 20 ms cap, 0.1 refill,
    burst 64); CLI flags override the numbers afterwards. *)

val validate : policy -> unit
(** Raises [Invalid_argument] on out-of-range parameters
    ([max_attempts] outside [2, 16], non-positive delays, [cap < base],
    [ratio] outside [0, 1], [burst < 1]). *)

val max_attempts : policy -> int
(** Total attempts including the original send; 1 for [No_retry]. *)

val backoff_us : policy -> seed:int -> req:int -> attempt:int -> float
(** Delay between observing attempt [attempt - 1]'s failure and
    resubmitting as attempt [attempt] ([attempt >= 1]; the original send
    is attempt 0). Pure in all arguments. Raises [Invalid_argument] for
    [No_retry] or [attempt < 1]. *)

type hedge = {
  h_pct : float;
      (** spawn the hedge once the primary has been silent longer than
          this percentile of observed latencies *)
  h_min_us : float;  (** floor on the hedge delay *)
}

val validate_hedge : hedge -> unit
(** Raises [Invalid_argument] if [h_pct] is outside [50, 100) or the
    floor is negative. *)

(** {2 Per-class retry budgets}

    One token bucket per request class, drained by retries and refilled
    only by successes — the mechanism that makes [Budgeted] stop
    amplifying load when the fleet is actually down. The fleet's spawn
    fold drives these in deterministic event order. *)

type budget

val budget_create : policy -> classes:int -> budget option
(** [None] for [No_retry] and [Naive] (deliberately unbounded). Buckets
    start full. *)

val budget_refill : budget option -> cls:int -> unit
(** A class-[cls] attempt succeeded: refund [ratio] tokens, capped. *)

val budget_take : budget option -> cls:int -> bool
(** Spend one token to retry a class-[cls] request; [false] (and counted
    in {!budget_denied}) when the bucket is dry. Always [true] for
    [None]. *)

val budget_denied : budget option -> int
(** Retries refused because the bucket was dry. *)
