(* Client retry policy: how many attempts, spaced how, spent from what
   budget. Backoff delays are a pure hash of (seed, request, attempt) —
   never a draw from a sequential Prng — because the fleet's round loop
   recomputes retry decisions from scratch every round and the set of
   draws (and their order) differs between rounds; a stateful stream
   would make a request's backoff depend on which other requests failed
   first. *)

type policy =
  | No_retry
  | Naive of { max_attempts : int; delay_us : float }
  | Budgeted of {
      max_attempts : int;
      base_us : float;
      cap_us : float;
      ratio : float;
      burst : int;
    }

let policy_name = function
  | No_retry -> "none"
  | Naive _ -> "naive"
  | Budgeted _ -> "budgeted"

(* CLI keyword -> policy shape with default parameters; the per-field
   flags override the numbers afterwards. *)
let policy_of_name = function
  | "none" -> Some No_retry
  | "naive" -> Some (Naive { max_attempts = 4; delay_us = 200.0 })
  | "budgeted" ->
      Some
        (Budgeted
           {
             max_attempts = 4;
             base_us = 400.0;
             cap_us = 20_000.0;
             ratio = 0.1;
             burst = 64;
           })
  | _ -> None

let validate = function
  | No_retry -> ()
  | Naive { max_attempts; delay_us } ->
      if max_attempts < 2 || max_attempts > 16 then
        invalid_arg "Retry: max_attempts outside [2, 16]";
      if delay_us < 0.0 then invalid_arg "Retry: negative delay_us"
  | Budgeted { max_attempts; base_us; cap_us; ratio; burst } ->
      if max_attempts < 2 || max_attempts > 16 then
        invalid_arg "Retry: max_attempts outside [2, 16]";
      if base_us <= 0.0 then invalid_arg "Retry: base_us <= 0";
      if cap_us < base_us then invalid_arg "Retry: cap_us < base_us";
      if ratio < 0.0 || ratio > 1.0 then
        invalid_arg "Retry: ratio outside [0, 1]";
      if burst < 1 then invalid_arg "Retry: burst < 1"

let max_attempts = function
  | No_retry -> 1
  | Naive { max_attempts; _ } | Budgeted { max_attempts; _ } -> max_attempts

(* splitmix64 finalizer, as in Balancer — a pure integer mix *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform in [0, 1) from (seed, req, attempt) *)
let hash01 ~seed ~req ~attempt =
  let z =
    mix64
      (Int64.add
         (mix64 (Int64.of_int ((seed * 0x9e3779b9) lxor (req * 0x85ebca6b))))
         (Int64.of_int (attempt * 0xc2b2ae35)))
  in
  float_of_int (Int64.to_int (Int64.shift_right_logical z 11))
  /. 9007199254740992.0 (* 2^53 *)

(* Delay before resubmission [attempt] (>= 1; attempt 0 is the original
   send). Naive is a fixed short delay — the retry-storm generator.
   Budgeted is capped exponential backoff with decorrelated jitter: the
   window doubles per attempt and the delay is drawn uniformly from
   [window, 2*window), so synchronized failures decohere. *)
let backoff_us policy ~seed ~req ~attempt =
  if attempt < 1 then invalid_arg "Retry.backoff_us: attempt < 1";
  match policy with
  | No_retry -> invalid_arg "Retry.backoff_us: No_retry"
  | Naive { delay_us; _ } -> delay_us
  | Budgeted { base_us; cap_us; _ } ->
      let window = base_us *. (2.0 ** float_of_int (attempt - 1)) in
      let u = hash01 ~seed ~req ~attempt in
      Float.min cap_us (window *. (1.0 +. u))

type hedge = { h_pct : float; h_min_us : float }

let validate_hedge h =
  if h.h_pct < 50.0 || h.h_pct >= 100.0 then
    invalid_arg "Retry: hedge percentile outside [50, 100)";
  if h.h_min_us < 0.0 then invalid_arg "Retry: negative hedge floor"

(* ---- per-class retry token buckets ---- *)

type budget = {
  ratio : float;
  burst : float;
  tokens : float array; (* one bucket per request class *)
  mutable denied : int;
}

(* Naive retry deliberately gets an unbounded budget — that is the
   failure mode the budgeted policy exists to prevent. *)
let budget_create policy ~classes =
  match policy with
  | No_retry | Naive _ -> None
  | Budgeted { ratio; burst; _ } ->
      Some
        {
          ratio;
          burst = float_of_int burst;
          tokens = Array.make classes (float_of_int burst);
          denied = 0;
        }

let budget_refill b ~cls =
  match b with
  | None -> ()
  | Some b -> b.tokens.(cls) <- Float.min b.burst (b.tokens.(cls) +. b.ratio)

let budget_take b ~cls =
  match b with
  | None -> true
  | Some b ->
      if b.tokens.(cls) >= 1.0 then begin
        b.tokens.(cls) <- b.tokens.(cls) -. 1.0;
        true
      end
      else begin
        b.denied <- b.denied + 1;
        false
      end

let budget_denied = function None -> 0 | Some b -> b.denied
