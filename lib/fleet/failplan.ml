module Prng = Sim.Prng

type kind = No_failures | Rolling | Crash_wave

let kind_name = function
  | No_failures -> "none"
  | Rolling -> "rolling"
  | Crash_wave -> "crash-wave"

let all_kinds = [ No_failures; Rolling; Crash_wave ]
let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds

type window = { w_host : int; w_down : int; w_up : int }

(* Every schedule consumer assumes these shapes (host ids in range,
   nonempty forward windows inside the horizon, at most one blackout per
   host at a time), so both planned and caller-supplied schedules go
   through one checker that names the offending window. *)
let validate ~hosts ~horizon windows =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check_each = function
    | [] -> Ok ()
    | w :: rest ->
        if w.w_host < 0 || w.w_host >= hosts then
          err "window for host %d, but the fleet has hosts 0..%d" w.w_host
            (hosts - 1)
        else if w.w_down < 0 then
          err "host %d: window starts before cycle 0 (down %d)" w.w_host
            w.w_down
        else if w.w_up <= w.w_down then
          err "host %d: empty or inverted window [%d, %d)" w.w_host w.w_down
            w.w_up
        else if w.w_up > horizon then
          err "host %d: window [%d, %d) ends past the horizon %d" w.w_host
            w.w_down w.w_up horizon
        else check_each rest
  in
  let overlap () =
    let by_host =
      List.stable_sort
        (fun a b -> compare (a.w_host, a.w_down) (b.w_host, b.w_down))
        windows
    in
    let rec scan = function
      | a :: (b :: _ as rest) ->
          if a.w_host = b.w_host && b.w_down < a.w_up then
            err "host %d: overlapping windows [%d, %d) and [%d, %d)" a.w_host
              a.w_down a.w_up b.w_down b.w_up
          else scan rest
      | _ -> Ok ()
    in
    scan by_host
  in
  match check_each windows with Ok () -> overlap () | e -> e

let plan kind ~hosts ~horizon ~seed =
  if hosts < 1 then invalid_arg "Failplan.plan: hosts < 1";
  if horizon < 8 then invalid_arg "Failplan.plan: horizon too small";
  let windows =
    match kind with
  | No_failures -> []
  | Rolling ->
      (* One restart per host, staggered across the middle half of the
         trace; the window is half the stagger, so host i+1 only goes
         down after host i is back — a planned one-at-a-time wave. *)
      let span = horizon / 2 in
      let stagger = span / hosts in
      let down_for = max 1 (stagger / 2) in
      List.init hosts (fun i ->
          let down = (horizon / 4) + (i * stagger) in
          { w_host = i; w_down = down; w_up = down + down_for })
  | Crash_wave ->
      (* A correlated burst: roughly half the fleet (never all of it)
         crashes within a short seeded interval, with overlapping
         windows. *)
      let victims =
        if hosts = 1 then 1 else min (hosts - 1) (max 1 ((hosts + 1) / 2))
      in
      let rng = Prng.create ~seed:(seed lxor 0x0fa1_1c0de) in
      (* seed-chosen victim set: a deterministic partial shuffle *)
      let order = Array.init hosts (fun i -> i) in
      for i = 0 to victims - 1 do
        let j = i + Prng.int rng (hosts - i) in
        let tmp = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- tmp
      done;
      let wave_at = horizon / 4 in
      let spread = max 1 (horizon / 16) in
      let down_for = max 1 (horizon / 8) in
      List.init victims (fun i ->
          let down = wave_at + Prng.int rng spread in
          { w_host = order.(i); w_down = down; w_up = down + down_for })
      |> List.sort compare
  in
  (* the planner must satisfy its own contract *)
  (match validate ~hosts ~horizon windows with
  | Ok () -> ()
  | Error e -> invalid_arg ("Failplan.plan: " ^ e));
  windows

let down windows ~host ~at =
  List.exists
    (fun w -> w.w_host = host && at >= w.w_down && at < w.w_up)
    windows

let host_windows windows ~host =
  List.filter_map
    (fun w -> if w.w_host = host then Some (w.w_down, w.w_up) else None)
    windows
