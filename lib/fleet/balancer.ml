type strategy = Round_robin | Least_loaded | Consistent_hash

let strategy_name = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Consistent_hash -> "hash"

let all_strategies = [ Round_robin; Least_loaded; Consistent_hash ]

let strategy_of_name s =
  List.find_opt (fun st -> strategy_name st = s) all_strategies

(* splitmix64 finalizer — a pure integer hash, so the ring layout and
   the user→shard map are functions of nothing but their inputs. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* non-negative 62-bit position *)
let pos_of i = Int64.to_int (Int64.shift_right_logical (mix64 (Int64.of_int i)) 2)

let vnodes_per_host = 64

type t = {
  strategy : strategy;
  hosts : int;
  est_service_cycles : int;
  (* round-robin rotation *)
  mutable rr_next : int;
  (* least-loaded: per-host estimated completion times of outstanding
     dispatches, each a sorted-enough queue pruned against [now] *)
  ll_outstanding : int Queue.t array;
  (* consistent-hash ring, sorted by position *)
  ring : (int * int) array; (* (position, host) *)
}

let create strategy ~hosts ~est_service_cycles =
  if hosts < 1 then invalid_arg "Balancer.create: hosts < 1";
  if est_service_cycles < 1 then
    invalid_arg "Balancer.create: est_service_cycles < 1";
  let ring =
    Array.init (hosts * vnodes_per_host) (fun i ->
        let host = i / vnodes_per_host and replica = i mod vnodes_per_host in
        (pos_of ((host * 1_000_003) + replica), host))
  in
  Array.sort compare ring;
  {
    strategy;
    hosts;
    est_service_cycles;
    rr_next = 0;
    ll_outstanding = Array.init hosts (fun _ -> Queue.create ());
    ring;
  }

type decision = { host : int; redistributed : bool }

(* first ring index with position >= p, wrapping *)
let ring_search ring p =
  let n = Array.length ring in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst ring.(mid) < p then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let route ?(penalty = fun _ -> 0) t ~now ~user ~up =
  let any_up = ref false in
  for h = 0 to t.hosts - 1 do
    if up h then any_up := true
  done;
  match t.strategy with
  | Round_robin ->
      (* the rotation advances once per request whether or not the
         first-choice host was up, so a restart never skews the shares
         of the surviving hosts' own slots *)
      let first = t.rr_next mod t.hosts in
      t.rr_next <- (t.rr_next + 1) mod t.hosts;
      if not !any_up then None
      else
        let rec walk k =
          let h = (first + k) mod t.hosts in
          if up h then { host = h; redistributed = k > 0 } else walk (k + 1)
        in
        Some (walk 0)
  | Least_loaded ->
      (* expire completion estimates, then argmin outstanding; the
         all-up argmin defines the first choice for redistribution
         accounting *)
      Array.iter
        (fun q ->
          while (not (Queue.is_empty q)) && Queue.peek q <= now do
            ignore (Queue.pop q)
          done)
        t.ll_outstanding;
      (* score = outstanding estimate + the caller's health penalty, so
         a slow or failing host loses ties it would otherwise win *)
      let score h = Queue.length t.ll_outstanding.(h) + penalty h in
      let argmin pred =
        let best = ref (-1) in
        for h = 0 to t.hosts - 1 do
          if pred h && (!best < 0 || score h < score !best) then best := h
        done;
        !best
      in
      let first = argmin (fun _ -> true) in
      if not !any_up then None
      else
        let chosen = if up first then first else argmin up in
        Queue.push (now + t.est_service_cycles) t.ll_outstanding.(chosen);
        Some { host = chosen; redistributed = chosen <> first }
  | Consistent_hash ->
      let p = pos_of user in
      let start = ring_search t.ring p in
      let n = Array.length t.ring in
      let first = snd t.ring.(start) in
      if not !any_up then None
      else
        let rec walk k =
          let h = snd t.ring.((start + k) mod n) in
          if up h then { host = h; redistributed = h <> first }
          else walk (k + 1)
        in
        Some (walk 0)
