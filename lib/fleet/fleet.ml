module Balancer = Balancer
module Failplan = Failplan
module Host = Host
module Cost = Sim.Cost
module Runtime = Ccr.Runtime
module Loadgen = Service.Loadgen

type config = {
  hosts : int;
  balancer : Balancer.strategy;
  failures : Failplan.kind;
  pattern : Loadgen.pattern;
  requests : int;
  users : int;
  warmup_us : float;
  est_service_us : float;
  mode : Runtime.mode;
  governed : bool;
  servers_per_host : int;
  queue_depth : int;
  deadline_us : float option;
  target_p99_us : float;
  session_slots : int;
  temps_per_req : int;
  compute_per_req : int;
  heap_mb : int;
  policy : Ccr.Policy.t option;
  recovery : Ccr.Revoker.recovery option;
  slices : int;
  seed : int;
}

let default_config =
  {
    hosts = 3;
    balancer = Balancer.Round_robin;
    failures = Failplan.Rolling;
    pattern =
      Loadgen.Diurnal { low = 20_000.0; high = 60_000.0; period_us = 8_000.0 };
    requests = 6_000;
    users = 1_000_000;
    warmup_us = 2_000.0;
    est_service_us = 60.0;
    mode = Runtime.Safe Ccr.Revoker.Reloaded;
    governed = true;
    servers_per_host = 2;
    queue_depth = 64;
    deadline_us = None;
    target_p99_us = 1_000.0;
    session_slots = 4_096;
    temps_per_req = 3;
    compute_per_req = 30_000;
    heap_mb = 12;
    policy = None;
    recovery = None;
    slices = 12;
    seed = 11;
  }

let topology cfg = Printf.sprintf "flat/%d" cfg.hosts

type dispatch = {
  d_offered : int;
  d_assign : (int * int) array array;
  d_redistributed : int;
  d_lb_dropped : int;
  d_windows : Failplan.window list;
  d_horizon : int;
}

let plan cfg =
  if cfg.hosts < 1 then invalid_arg "Fleet.plan: hosts < 1";
  if cfg.requests < 1 then invalid_arg "Fleet.plan: requests < 1";
  let offsets =
    Loadgen.schedule
      { Loadgen.pattern = cfg.pattern; requests = cfg.requests; seed = cfg.seed }
  in
  let warmup = Cost.cycles_of_us cfg.warmup_us in
  let horizon = warmup + offsets.(cfg.requests - 1) in
  let windows =
    Failplan.plan cfg.failures ~hosts:cfg.hosts ~horizon:(max 8 horizon)
      ~seed:cfg.seed
  in
  let users =
    Loadgen.user_stream ~seed:cfg.seed ~population:cfg.users
      ~requests:cfg.requests
  in
  let bal =
    Balancer.create cfg.balancer ~hosts:cfg.hosts
      ~est_service_cycles:(max 1 (Cost.cycles_of_us cfg.est_service_us))
  in
  let shards = Array.init cfg.hosts (fun _ -> ref []) in
  let redistributed = ref 0 and lb_dropped = ref 0 in
  Array.iteri
    (fun i off ->
      let intended = warmup + off in
      let up h = not (Failplan.down windows ~host:h ~at:intended) in
      match Balancer.route bal ~now:intended ~user:users.(i) ~up with
      | None -> incr lb_dropped
      | Some d ->
          if d.Balancer.redistributed then incr redistributed;
          shards.(d.Balancer.host) := (i, intended) :: !(shards.(d.Balancer.host)))
    offsets;
  {
    d_offered = cfg.requests;
    d_assign = Array.map (fun l -> Array.of_list (List.rev !l)) shards;
    d_redistributed = !redistributed;
    d_lb_dropped = !lb_dropped;
    d_windows = windows;
    d_horizon = horizon;
  }

type outcome = {
  offered : int;
  served : int;
  shed_depth : int;
  shed_deadline : int;
  redistributed : int;
  lb_dropped : int;
  violations : int;
  hist : Stats.Histogram.t;
  slice_hists : Stats.Histogram.t array;
  makespan_cycles : int;
  goodput_rps : float;
  epochs : int;
  epoch_resumes : int;
  sweep_crash_retries : int;
  chaos_injected : int;
  max_pause_us : float;
  hosts : Host.outcome list;
  windows : Failplan.window list;
  clean : bool;
  report : string;
}

(* Splitmix-style decorrelation so host 0 of seed 12 never shares a
   stream with host 1 of seed 11. *)
let host_seed seed host = (seed * 1_000_003) + (host * 8191) + 1

let run ?(check = false) ?jobs cfg =
  let d = plan cfg in
  let host_cfg host =
    {
      Host.host;
      mode = cfg.mode;
      governed = cfg.governed;
      servers = cfg.servers_per_host;
      queue_depth = cfg.queue_depth;
      deadline_us = cfg.deadline_us;
      target_p99_us = cfg.target_p99_us;
      session_slots = cfg.session_slots;
      temps_per_req = cfg.temps_per_req;
      compute_per_req = cfg.compute_per_req;
      heap_mb = cfg.heap_mb;
      seed = host_seed cfg.seed host;
      check;
      policy = cfg.policy;
      recovery = cfg.recovery;
      windows = Failplan.host_windows d.d_windows ~host;
      slices = cfg.slices;
      origin = Cost.cycles_of_us cfg.warmup_us;
      horizon = d.d_horizon;
    }
  in
  let outcomes =
    Parallel.Pool.map ?jobs
      (fun host -> Host.run (host_cfg host) ~arrivals:d.d_assign.(host))
      (List.init cfg.hosts Fun.id)
  in
  let sum f = List.fold_left (fun a o -> a + f o) 0 outcomes in
  let served = sum (fun o -> o.Host.h_served) in
  let shed_depth = sum (fun o -> o.Host.h_shed_depth) in
  let shed_deadline = sum (fun o -> o.Host.h_shed_deadline) in
  let violations = sum (fun o -> o.Host.h_violations) in
  let makespan =
    List.fold_left (fun a o -> max a o.Host.h_wall_cycles) 0 outcomes
  in
  let accounted =
    served + shed_depth + shed_deadline + d.d_lb_dropped = d.d_offered
    && sum (fun o -> o.Host.h_arrivals) + d.d_lb_dropped = d.d_offered
  in
  let report = Buffer.create 0 in
  List.iter (fun o -> Buffer.add_string report o.Host.h_report) outcomes;
  if not accounted then
    Buffer.add_string report
      (Printf.sprintf
         "fleet: accounting drift: served %d + shed %d+%d + dropped %d <> \
          offered %d\n"
         served shed_depth shed_deadline d.d_lb_dropped d.d_offered);
  {
    offered = d.d_offered;
    served;
    shed_depth;
    shed_deadline;
    redistributed = d.d_redistributed;
    lb_dropped = d.d_lb_dropped;
    violations;
    hist = Stats.Histogram.merge_all (List.map (fun o -> o.Host.h_hist) outcomes);
    slice_hists =
      Array.init cfg.slices (fun s ->
          Stats.Histogram.merge_all
            (List.map (fun o -> o.Host.h_slices.(s)) outcomes));
    makespan_cycles = makespan;
    goodput_rps =
      (if makespan = 0 then 0.0
       else
         float_of_int (served - violations)
         /. (float_of_int makespan /. Cost.clock_hz));
    epochs = sum (fun o -> o.Host.h_epochs);
    epoch_resumes = sum (fun o -> o.Host.h_epoch_resumes);
    sweep_crash_retries = sum (fun o -> o.Host.h_sweep_crash_retries);
    chaos_injected = sum (fun o -> o.Host.h_chaos_injected);
    max_pause_us =
      List.fold_left (fun a o -> Float.max a o.Host.h_max_pause_us) 0.0 outcomes;
    hosts = outcomes;
    windows = d.d_windows;
    clean = accounted && List.for_all (fun o -> o.Host.h_clean) outcomes;
    report = Buffer.contents report;
  }
