module Balancer = Balancer
module Failplan = Failplan
module Health = Health
module Retry = Retry
module Host = Host
module Cost = Sim.Cost
module Runtime = Ccr.Runtime
module Loadgen = Service.Loadgen
module Squeue = Service.Squeue

type resilience = {
  retry : Retry.policy;
  hedge : Retry.hedge option;
  breaker : Health.config option;
  brownout : Squeue.brownout option;
  rto_us : float;
  max_rounds : int;
}

let default_resilience =
  {
    retry = Retry.No_retry;
    hedge = None;
    breaker = None;
    brownout = None;
    rto_us = 2_000.0;
    max_rounds = 6;
  }

type config = {
  hosts : int;
  balancer : Balancer.strategy;
  failures : Failplan.kind;
  windows_override : Failplan.window list option;
  pattern : Loadgen.pattern;
  requests : int;
  users : int;
  critical : float;
  background : float;
  warmup_us : float;
  est_service_us : float;
  mode : Runtime.mode;
  governed : bool;
  servers_per_host : int;
  queue_depth : int;
  deadline_us : float option;
  target_p99_us : float;
  session_slots : int;
  temps_per_req : int;
  compute_per_req : int;
  heap_mb : int;
  policy : Ccr.Policy.t option;
  recovery : Ccr.Revoker.recovery option;
  slices : int;
  resilience : resilience;
  seed : int;
}

let default_config =
  {
    hosts = 3;
    balancer = Balancer.Round_robin;
    failures = Failplan.Rolling;
    windows_override = None;
    pattern =
      Loadgen.Diurnal { low = 20_000.0; high = 60_000.0; period_us = 8_000.0 };
    requests = 6_000;
    users = 1_000_000;
    critical = 0.15;
    background = 0.25;
    warmup_us = 2_000.0;
    est_service_us = 60.0;
    mode = Runtime.Safe Ccr.Revoker.Reloaded;
    governed = true;
    servers_per_host = 2;
    queue_depth = 64;
    deadline_us = None;
    target_p99_us = 1_000.0;
    session_slots = 4_096;
    temps_per_req = 3;
    compute_per_req = 30_000;
    heap_mb = 12;
    policy = None;
    recovery = None;
    slices = 12;
    resilience = default_resilience;
    seed = 11;
  }

let topology cfg = Printf.sprintf "flat/%d" cfg.hosts

(* ---- attempts: the unit the client layer reasons about ----

   Attempt 0 of a request is the original send; retries extend the
   non-hedge chain ([at_seq] 1, 2, ...) and at most one hedge duplicates
   the original. The attempt set is append-only across planning rounds:
   once the client has decided to send something that decision is frozen
   — a later round may revise the attempt's {e fate} (the hosts are
   re-simulated under the grown trace), never whether it was sent. The
   final round therefore defines the run; earlier rounds are
   successively better approximations of what the client knew. *)

type attempt = {
  at_idx : int; (* global id; doubles as the Host.arrival id *)
  at_req : int; (* the original request index *)
  at_seq : int; (* position in the non-hedge chain; hedges carry 0 *)
  at_hedge : bool;
  at_time : int; (* client send time, cycles *)
  at_avoid : int; (* host a hedge steers away from; -1 for none *)
}

type att_out =
  | O_served of { o_host : int; o_completed : int; o_lat_us : float }
  | O_shed of { o_host : int; o_why : int; o_at : int }
  | O_lost of { o_host : int; o_at : int }
  | O_dropped (* no admissible host at dispatch: client-side fast failure *)

(* When the client learns an attempt's fate: refusals and answers are
   heard when they happen, a balancer drop is instant, and a lost
   request is only ever discovered by retransmission timeout. *)
let observed_at ~rto (a : attempt) = function
  | O_served { o_completed; _ } -> o_completed
  | O_shed { o_at; _ } -> o_at
  | O_lost _ -> a.at_time + rto
  | O_dropped -> a.at_time

(* everything [plan]/[run] precompute once, before any round *)
type pre = {
  p_warmup : int;
  p_horizon : int;
  p_windows : Failplan.window list;
  p_users : int array;
  p_classes : int array;
  p_intended : int array; (* original intended arrival per request *)
}

let validate_resilience r =
  Retry.validate r.retry;
  Option.iter Retry.validate_hedge r.hedge;
  if r.rto_us <= 0.0 then invalid_arg "Fleet: rto_us <= 0";
  if r.max_rounds < 1 then invalid_arg "Fleet: max_rounds < 1"

let precompute cfg =
  if cfg.hosts < 1 then invalid_arg "Fleet.plan: hosts < 1";
  if cfg.requests < 1 then invalid_arg "Fleet.plan: requests < 1";
  validate_resilience cfg.resilience;
  let offsets =
    Loadgen.schedule
      { Loadgen.pattern = cfg.pattern; requests = cfg.requests; seed = cfg.seed }
  in
  let warmup = Cost.cycles_of_us cfg.warmup_us in
  let horizon = warmup + offsets.(cfg.requests - 1) in
  let windows =
    match cfg.windows_override with
    | None ->
        Failplan.plan cfg.failures ~hosts:cfg.hosts ~horizon:(max 8 horizon)
          ~seed:cfg.seed
    | Some ws -> (
        match
          Failplan.validate ~hosts:cfg.hosts ~horizon:(max 8 horizon) ws
        with
        | Ok () -> ws
        | Error e -> invalid_arg ("Fleet: windows_override: " ^ e))
  in
  {
    p_warmup = warmup;
    p_horizon = horizon;
    p_windows = windows;
    p_users =
      Loadgen.user_stream ~seed:cfg.seed ~population:cfg.users
        ~requests:cfg.requests;
    p_classes =
      Array.map Loadgen.cls_code
        (Loadgen.class_stream ~seed:cfg.seed ~requests:cfg.requests
           ~critical:cfg.critical ~background:cfg.background);
    p_intended = Array.map (fun off -> warmup + off) offsets;
  }

let originals pre =
  Array.mapi
    (fun i intended ->
      {
        at_idx = i;
        at_req = i;
        at_seq = 0;
        at_hedge = false;
        at_time = intended;
        at_avoid = -1;
      })
    pre.p_intended

(* ---- one planning round ----

   Route every attempt while replaying the {e previous} round's client
   observations into the health signals, merged into one time-ordered
   event stream (observations before dispatches at equal cycles, then by
   id) so breaker trajectories are a pure function of the fold input. *)

type ev =
  | Ev_ok of { host : int; lat_us : float }
  | Ev_fail of { host : int }
  | Ev_dispatch of int (* attempt index *)

type routed = {
  r_shards : Host.arrival array array;
  r_placement : int array; (* per attempt: host, or -1 for dropped *)
  r_redistributed : int;
  r_trips : int;
}

let route_round cfg pre ~attempts ~prev =
  let n = Array.length attempts in
  let rto = max 1 (Cost.cycles_of_us cfg.resilience.rto_us) in
  let health =
    Option.map
      (fun c ->
        Health.create ~hosts:cfg.hosts ~config:c
          ~est_service_us:cfg.est_service_us ())
      cfg.resilience.breaker
  in
  let penalty =
    match health with
    | Some hl -> fun h -> Health.penalty hl ~host:h
    | None -> fun _ -> 0
  in
  let bal =
    Balancer.create cfg.balancer ~hosts:cfg.hosts
      ~est_service_cycles:(max 1 (Cost.cycles_of_us cfg.est_service_us))
  in
  let evs = ref [] in
  Array.iter
    (fun a -> evs := (a.at_time, 1, a.at_idx, Ev_dispatch a.at_idx) :: !evs)
    attempts;
  (match prev with
  | None -> ()
  | Some (pattempts, pouts) ->
      Array.iteri
        (fun i (out : att_out) ->
          let t = observed_at ~rto pattempts.(i) out in
          match out with
          | O_served { o_host; o_lat_us; _ } ->
              evs :=
                (t, 0, i, Ev_ok { host = o_host; lat_us = o_lat_us }) :: !evs
          | O_lost { o_host; _ } ->
              evs := (t, 0, i, Ev_fail { host = o_host }) :: !evs
          (* An explicit shed is backpressure — the host answered,
             quickly, saying "not now". It feeds the retry budget, not
             the breaker: tripping breakers on load-shed responses turns
             every overload transient into a self-inflicted outage (all
             breakers open at once, every dispatch drops). Breakers are
             for SILENCE — the rto-observed losses a crashed host
             leaves behind. *)
          | O_shed _ | O_dropped -> ())
        pouts);
  let evs = List.sort compare !evs in
  let shards = Array.init cfg.hosts (fun _ -> ref []) in
  let placement = Array.make n (-1) in
  let redistributed = ref 0 in
  List.iter
    (fun (t, _, _, ev) ->
      match ev with
      | Ev_ok { host; lat_us } ->
          Option.iter
            (fun hl -> Health.note_success hl ~host ~latency_us:lat_us)
            health
      | Ev_fail { host } ->
          Option.iter (fun hl -> Health.note_failure hl ~host ~now:t) health
      | Ev_dispatch idx -> (
          let a = attempts.(idx) in
          let admissible h =
            (not (Failplan.down pre.p_windows ~host:h ~at:t))
            &&
            match health with
            | None -> true
            | Some hl -> Health.available hl ~host:h ~now:t
          in
          (* a hedge avoids its primary's host — unless honouring that
             would leave nowhere to go *)
          let avoid =
            if a.at_avoid < 0 then -1
            else begin
              let other = ref false in
              for h = 0 to cfg.hosts - 1 do
                if h <> a.at_avoid && admissible h then other := true
              done;
              if !other then a.at_avoid else -1
            end
          in
          let up h = h <> avoid && admissible h in
          match
            Balancer.route ~penalty bal ~now:t ~user:pre.p_users.(a.at_req) ~up
          with
          | None -> ()
          | Some d ->
              if d.Balancer.redistributed then incr redistributed;
              placement.(idx) <- d.Balancer.host;
              Option.iter
                (fun hl -> Health.note_dispatch hl ~host:d.Balancer.host)
                health;
              shards.(d.Balancer.host) :=
                {
                  Host.a_id = a.at_idx;
                  a_intended = a.at_time;
                  a_cls = pre.p_classes.(a.at_req);
                }
                :: !(shards.(d.Balancer.host))))
    evs;
  {
    r_shards = Array.map (fun l -> Array.of_list (List.rev !l)) shards;
    r_placement = placement;
    r_redistributed = !redistributed;
    r_trips = (match health with None -> 0 | Some hl -> Health.trips hl);
  }

(* ---- the public pure planning phase (round 0: no client knowledge) *)

type dispatch = {
  d_offered : int;
  d_assign : Host.arrival array array;
  d_redistributed : int;
  d_lb_dropped : int;
  d_windows : Failplan.window list;
  d_horizon : int;
}

let plan cfg =
  let pre = precompute cfg in
  let r = route_round cfg pre ~attempts:(originals pre) ~prev:None in
  let dropped =
    Array.fold_left
      (fun acc p -> if p < 0 then acc + 1 else acc)
      0 r.r_placement
  in
  {
    d_offered = cfg.requests;
    d_assign = r.r_shards;
    d_redistributed = r.r_redistributed;
    d_lb_dropped = dropped;
    d_windows = pre.p_windows;
    d_horizon = pre.p_horizon;
  }

(* ---- the spawn phase: what would the client send next? ----

   Replays this round's observations in time order through the per-class
   retry budget and emits the retries and hedges the client would have
   sent but has not yet. Recomputed from scratch every round (the
   observations change), but existing attempts stay frozen: a failure
   whose chain already has a successor only replays its budget charge,
   and a request that already carries a hedge never grows another. *)

type spawn = {
  s_new : attempt list; (* in discovery order, at_idx unassigned (-1) *)
  s_denied : int; (* retries refused by a dry budget *)
}

let spawn_phase cfg pre ~attempts ~outs ~placement =
  let rto = max 1 (Cost.cycles_of_us cfg.resilience.rto_us) in
  let policy = cfg.resilience.retry in
  let budget = Retry.budget_create policy ~classes:3 in
  (* per-request chain state, from the frozen attempt set *)
  let nreq = cfg.requests in
  let max_seq = Array.make nreq 0 in
  let chain_len = Array.make nreq 1 in
  let has_hedge = Array.make nreq false in
  Array.iter
    (fun a ->
      if a.at_hedge then has_hedge.(a.at_req) <- true
      else if a.at_seq > 0 then begin
        max_seq.(a.at_req) <- max max_seq.(a.at_req) a.at_seq;
        chain_len.(a.at_req) <- chain_len.(a.at_req) + 1
      end)
    attempts;
  let frozen_max = Array.copy max_seq in
  (* when (if ever) the client first hears a success per request *)
  let first_ok = Array.make nreq max_int in
  Array.iteri
    (fun i out ->
      match out with
      | O_served { o_completed; _ } ->
          let r = attempts.(i).at_req in
          if o_completed < first_ok.(r) then first_ok.(r) <- o_completed
      | _ -> ())
    outs;
  (* hedge delay: the configured percentile of this round's served
     latencies (needs a sample base), floored at [h_min_us] *)
  let hedge_delay =
    match cfg.resilience.hedge with
    | None -> None
    | Some h ->
        let hist = Stats.Histogram.create () in
        Array.iter
          (function
            | O_served { o_lat_us; _ } -> Stats.Histogram.record hist o_lat_us
            | _ -> ())
          outs;
        let us =
          if Stats.Histogram.count hist >= 16 then
            Float.max h.h_min_us (Stats.Histogram.percentile hist h.h_pct)
          else h.h_min_us
        in
        if us <= 0.0 then None else Some (max 1 (Cost.cycles_of_us us))
  in
  let obs =
    List.sort compare
      (List.init (Array.length attempts) (fun i ->
           (observed_at ~rto attempts.(i) outs.(i), i)))
  in
  let fresh = ref [] in
  List.iter
    (fun (t, i) ->
      let a = attempts.(i) in
      let req = a.at_req in
      let cls = pre.p_classes.(req) in
      (match outs.(i) with
      | O_served _ -> Retry.budget_refill budget ~cls
      | O_shed _ | O_lost _ | O_dropped ->
          if a.at_hedge then ()
          else if a.at_seq < frozen_max.(req) then
            (* this failure's retry was already sent in an earlier
               round; replay its budget charge so the final round's
               accounting covers every retry actually in the trace *)
            ignore (Retry.budget_take budget ~cls)
          else if
            (* retry only from the chain's tip, only while the client is
               still waiting, within the attempt cap, budget permitting *)
            a.at_seq = max_seq.(req)
            && first_ok.(req) > t
            && chain_len.(req) < Retry.max_attempts policy
          then
            if Retry.budget_take budget ~cls then begin
              let delay =
                Cost.cycles_of_us
                  (Retry.backoff_us policy ~seed:cfg.seed ~req
                     ~attempt:(a.at_seq + 1))
              in
              max_seq.(req) <- a.at_seq + 1;
              chain_len.(req) <- chain_len.(req) + 1;
              fresh :=
                {
                  at_idx = -1;
                  at_req = req;
                  at_seq = a.at_seq + 1;
                  at_hedge = false;
                  at_time = t + max 0 delay;
                  at_avoid = -1;
                }
                :: !fresh
            end);
      (* tail hedging: if the original send was silent past the hedge
         delay, the client duplicated it toward a different host —
         whatever the primary's fate later turned out to be *)
      match hedge_delay with
      | Some delay
        when a.at_seq = 0
             && (not a.at_hedge)
             && (not has_hedge.(req))
             && t > a.at_time + delay ->
          has_hedge.(req) <- true;
          fresh :=
            {
              at_idx = -1;
              at_req = req;
              at_seq = 0;
              at_hedge = true;
              at_time = a.at_time + delay;
              at_avoid = placement.(i);
            }
            :: !fresh
      | _ -> ())
    obs;
  { s_new = List.rev !fresh; s_denied = Retry.budget_denied budget }

(* ---- outcome ---- *)

type outcome = {
  offered : int;
  served : int; (* answered on the original send *)
  retried_ok : int; (* answered first by a retry *)
  hedged_ok : int; (* answered first by the hedge *)
  shed_depth : int;
  shed_deadline : int;
  shed_brownout : int;
  lost : int; (* terminal fate: destroyed in a crash, client timed out *)
  redistributed : int;
  lb_dropped : int;
  violations : int;
  hist : Stats.Histogram.t;
  slice_hists : Stats.Histogram.t array;
  makespan_cycles : int;
  goodput_rps : float;
  epochs : int;
  epoch_resumes : int;
  sweep_crash_retries : int;
  chaos_injected : int;
  max_pause_us : float;
  attempts : int;
  retries_sent : int;
  hedges_sent : int;
  dup_served : int; (* extra answers beyond each request's first *)
  budget_exhausted : int;
  breaker_trips : int;
  brownout_shifts : int;
  rounds : int;
  hosts : Host.outcome list;
  windows : Failplan.window list;
  clean : bool;
  report : string;
}

(* Splitmix-style decorrelation so host 0 of seed 12 never shares a
   stream with host 1 of seed 11. *)
let host_seed seed host = (seed * 1_000_003) + (host * 8191) + 1

let run ?(check = false) ?jobs cfg =
  let pre = precompute cfg in
  let host_cfg host =
    {
      Host.host;
      mode = cfg.mode;
      governed = cfg.governed;
      servers = cfg.servers_per_host;
      queue_depth = cfg.queue_depth;
      deadline_us = cfg.deadline_us;
      brownout = cfg.resilience.brownout;
      target_p99_us = cfg.target_p99_us;
      session_slots = cfg.session_slots;
      temps_per_req = cfg.temps_per_req;
      compute_per_req = cfg.compute_per_req;
      heap_mb = cfg.heap_mb;
      seed = host_seed cfg.seed host;
      check;
      policy = cfg.policy;
      recovery = cfg.recovery;
      windows = Failplan.host_windows pre.p_windows ~host;
      slices = cfg.slices;
      origin = pre.p_warmup;
      horizon = pre.p_horizon;
    }
  in
  (* shard memo: a host whose shard is unchanged between rounds would
     re-simulate to the identical outcome, so reuse it *)
  let cache : (Host.arrival array * Host.outcome) option array =
    Array.make cfg.hosts None
  in
  let simulate shards =
    let dirty =
      List.filter
        (fun h ->
          match cache.(h) with
          | Some (prev, _) -> prev <> shards.(h)
          | None -> true)
        (List.init cfg.hosts Fun.id)
    in
    let fresh =
      Parallel.Pool.map ?jobs
        (fun host -> Host.run (host_cfg host) ~arrivals:shards.(host))
        dirty
    in
    List.iter2 (fun h o -> cache.(h) <- Some (shards.(h), o)) dirty fresh;
    List.init cfg.hosts (fun h -> snd (Option.get cache.(h)))
  in
  let outs_of attempts host_outcomes =
    let outs = Array.make (Array.length attempts) O_dropped in
    List.iter
      (fun (o : Host.outcome) ->
        Array.iter
          (fun (id, (r : Host.result)) ->
            outs.(id) <-
              (match r with
              | Host.R_served { completed; latency_us } ->
                  O_served
                    {
                      o_host = o.Host.h_host;
                      o_completed = completed;
                      o_lat_us = latency_us;
                    }
              | Host.R_shed { why; at } ->
                  O_shed { o_host = o.Host.h_host; o_why = why; o_at = at }
              | Host.R_lost { at } ->
                  O_lost { o_host = o.Host.h_host; o_at = at }))
          o.Host.h_results)
      host_outcomes;
    outs
  in
  (* the round loop: grow the attempt set until the client would send
     nothing new (or gives up at [max_rounds]) *)
  let rec loop attempts prev rounds =
    let routed = route_round cfg pre ~attempts ~prev in
    let host_outcomes = simulate routed.r_shards in
    let outs = outs_of attempts host_outcomes in
    let sp = spawn_phase cfg pre ~attempts ~outs ~placement:routed.r_placement in
    if sp.s_new = [] || rounds >= cfg.resilience.max_rounds then
      (attempts, routed, host_outcomes, outs, sp, rounds)
    else
      let base = Array.length attempts in
      let extra =
        List.mapi (fun k a -> { a with at_idx = base + k }) sp.s_new
      in
      loop
        (Array.append attempts (Array.of_list extra))
        (Some (attempts, outs))
        (rounds + 1)
  in
  let atts, routed, host_outcomes, outs, sp, rounds =
    loop (originals pre) None 1
  in
  (* ---- final classification: one terminal fate per request ---- *)
  let nreq = cfg.requests in
  let first_ok_t = Array.make nreq max_int in
  let first_ok_idx = Array.make nreq (-1) in
  let tip_idx = Array.make nreq (-1) in
  Array.iteri
    (fun i (a : attempt) ->
      if not a.at_hedge then
        if tip_idx.(a.at_req) < 0 || a.at_seq > atts.(tip_idx.(a.at_req)).at_seq
        then tip_idx.(a.at_req) <- i)
    atts;
  let total_serves = ref 0 in
  Array.iteri
    (fun i out ->
      match out with
      | O_served { o_completed; _ } ->
          incr total_serves;
          let r = atts.(i).at_req in
          if o_completed < first_ok_t.(r) then begin
            first_ok_t.(r) <- o_completed;
            first_ok_idx.(r) <- i
          end
      | _ -> ())
    outs;
  let hist = Stats.Histogram.create () in
  let slice_hists =
    Array.init cfg.slices (fun _ -> Stats.Histogram.create ())
  in
  let span = max 1 (pre.p_horizon - pre.p_warmup) in
  let slice_of intended =
    let dt = max 0 (intended - pre.p_warmup) in
    min (cfg.slices - 1) (dt * cfg.slices / span)
  in
  let served = ref 0
  and retried_ok = ref 0
  and hedged_ok = ref 0
  and shed_depth = ref 0
  and shed_deadline = ref 0
  and shed_brownout = ref 0
  and lost = ref 0
  and lb_dropped = ref 0
  and violations = ref 0
  and ok = ref 0 in
  for r = 0 to nreq - 1 do
    if first_ok_idx.(r) >= 0 then begin
      incr ok;
      let a = atts.(first_ok_idx.(r)) in
      if a.at_hedge then incr hedged_ok
      else if a.at_seq = 0 then incr served
      else incr retried_ok;
      (* end-to-end latency from the ORIGINAL intended arrival to the
         first answer the client hears: retries and hedges never reset
         the clock, so the tail stays coordinated-omission-free *)
      let lat_us = Cost.cycles_to_us (first_ok_t.(r) - pre.p_intended.(r)) in
      Stats.Histogram.record hist lat_us;
      Stats.Histogram.record slice_hists.(slice_of pre.p_intended.(r)) lat_us;
      if lat_us > cfg.target_p99_us then incr violations
    end
    else
      match outs.(tip_idx.(r)) with
      | O_served _ -> assert false (* a success would have set first_ok *)
      | O_shed { o_why; _ } ->
          if o_why = Squeue.why_deadline then incr shed_deadline
          else if o_why = Squeue.why_brownout then incr shed_brownout
          else incr shed_depth
      | O_lost _ -> incr lost
      | O_dropped -> incr lb_dropped
  done;
  let sum f = List.fold_left (fun a o -> a + f o) 0 host_outcomes in
  let makespan =
    List.fold_left (fun a o -> max a o.Host.h_wall_cycles) 0 host_outcomes
  in
  let n_atts = Array.length atts in
  let dropped_atts =
    Array.fold_left
      (fun a p -> if p < 0 then a + 1 else a)
      0 routed.r_placement
  in
  let retries_sent =
    Array.fold_left
      (fun a at -> if (not at.at_hedge) && at.at_seq > 0 then a + 1 else a)
      0 atts
  in
  let hedges_sent =
    Array.fold_left (fun a at -> if at.at_hedge then a + 1 else a) 0 atts
  in
  let accounted =
    !served + !retried_ok + !hedged_ok + !shed_depth + !shed_deadline
    + !shed_brownout + !lost + !lb_dropped
    = cfg.requests
    && sum (fun o -> o.Host.h_arrivals) + dropped_atts = n_atts
  in
  let report = Buffer.create 0 in
  List.iter (fun o -> Buffer.add_string report o.Host.h_report) host_outcomes;
  if not accounted then
    Buffer.add_string report
      (Printf.sprintf
         "fleet: accounting drift: ok %d+%d+%d + shed %d+%d+%d + lost %d + \
          dropped %d <> offered %d (attempts %d)\n"
         !served !retried_ok !hedged_ok !shed_depth !shed_deadline
         !shed_brownout !lost !lb_dropped cfg.requests n_atts);
  {
    offered = cfg.requests;
    served = !served;
    retried_ok = !retried_ok;
    hedged_ok = !hedged_ok;
    shed_depth = !shed_depth;
    shed_deadline = !shed_deadline;
    shed_brownout = !shed_brownout;
    lost = !lost;
    redistributed = routed.r_redistributed;
    lb_dropped = !lb_dropped;
    violations = !violations;
    hist;
    slice_hists;
    makespan_cycles = makespan;
    goodput_rps =
      (if makespan = 0 then 0.0
       else
         float_of_int (!ok - !violations)
         /. (float_of_int makespan /. Cost.clock_hz));
    epochs = sum (fun o -> o.Host.h_epochs);
    epoch_resumes = sum (fun o -> o.Host.h_epoch_resumes);
    sweep_crash_retries = sum (fun o -> o.Host.h_sweep_crash_retries);
    chaos_injected = sum (fun o -> o.Host.h_chaos_injected);
    max_pause_us =
      List.fold_left
        (fun a o -> Float.max a o.Host.h_max_pause_us)
        0.0 host_outcomes;
    attempts = n_atts;
    retries_sent;
    hedges_sent;
    dup_served = !total_serves - !ok;
    budget_exhausted = sp.s_denied;
    breaker_trips = routed.r_trips;
    brownout_shifts = sum (fun o -> o.Host.h_brownout_shifts);
    rounds;
    hosts = host_outcomes;
    windows = pre.p_windows;
    clean = accounted && List.for_all (fun o -> o.Host.h_clean) host_outcomes;
    report = Buffer.contents report;
  }
