(** The fleet simulator: N independent host machines behind a pluggable
    balancer, fed one global open-loop trace, with seeded failures and a
    deterministic client-resilience stack (retries, hedging, circuit
    breakers, brownout).

    Execution is a fixed point of three phases per {e round}:

    + {b plan} (pure, sequential): draw the global arrival schedule,
      user and class streams from the seed, plan the failure windows
      over the trace horizon, and route every {e attempt} through the
      balancer — against the up/down state at its send time, gated by
      each host's circuit breaker, with the previous round's client
      observations replayed into the health signals in one time-ordered
      event fold. A request routed away from its first-choice host keeps
      its timestamp (no coordinated omission through failovers).
    + {b simulate} (parallel): every host runs its shard as a
      self-contained {!Host} simulation on a {!Parallel.Pool} worker —
      wall-clock scales with [jobs] while the outcome is byte-identical
      at any job count. Hosts whose shard did not change from the
      previous round reuse their outcome (shard memoization).
    + {b spawn} (pure): replay the round's observations through the
      per-class retry budgets and emit the retries and hedges the client
      would have sent. New attempts are appended — existing ones are
      frozen — and the loop re-plans until nothing new is spawned or
      [max_rounds] is hit. {e The final round defines the run}; earlier
      rounds are successively better approximations of what the client
      knew when it decided to resend.

    The client hears a shed or an answer when it happens, a balancer
    drop immediately, and a {e lost} request (destroyed by a host crash)
    only via its retransmission timeout [rto_us] — loss is silence, not
    a refusal.

    Accounting is exact by construction and checked:
    [served + retried_ok + hedged_ok + shed + lost + lb_dropped =
    offered] over requests, and every attempt lands in exactly one
    host's shard or is a balancer drop. *)

(* fleet.ml is the library interface module, so the components are
   re-exported here (Fleet.Balancer, Fleet.Failplan, Fleet.Health,
   Fleet.Retry, Fleet.Host). *)
module Balancer = Balancer
module Failplan = Failplan
module Health = Health
module Retry = Retry
module Host = Host

type resilience = {
  retry : Retry.policy;
  hedge : Retry.hedge option;  (** tail hedging of original sends *)
  breaker : Health.config option;
      (** per-host circuit breakers + health-aware placement *)
  brownout : Service.Squeue.brownout option;
      (** per-host brownout band (low classes shed first, governor
          defers revocation harder while engaged) *)
  rto_us : float;
      (** client retransmission timeout — how long a lost request stays
          silent before the client acts *)
  max_rounds : int;  (** re-planning rounds before the client gives up *)
}

val default_resilience : resilience
(** No retries, no hedging, no breakers, no brownout; 2 ms RTO, 6
    rounds — the control configuration, behaviourally identical to the
    pre-resilience fleet. *)

type config = {
  hosts : int;
  balancer : Balancer.strategy;
  failures : Failplan.kind;
  windows_override : Failplan.window list option;
      (** explicit failure schedule instead of [failures]; validated by
          {!Failplan.validate} (tests use it for total-outage traces) *)
  pattern : Service.Loadgen.pattern;
  requests : int;
  users : int;  (** simulated user population the trace samples from *)
  critical : float;  (** fraction of requests in the critical class *)
  background : float;  (** fraction in the background class *)
  warmup_us : float;
      (** shift applied to every intended arrival so host boot
          (session-table init) happens before the measured trace *)
  est_service_us : float;
      (** the balancer's service-time model for least-loaded accounting *)
  mode : Ccr.Runtime.mode;
  governed : bool;
  servers_per_host : int;
  queue_depth : int;
  deadline_us : float option;
      (** base queueing deadline, stretched per class (critical 1x,
          normal 4x, background exempt) *)
  target_p99_us : float;
  session_slots : int;
  temps_per_req : int;
  compute_per_req : int;
  heap_mb : int;
  policy : Ccr.Policy.t option;
  recovery : Ccr.Revoker.recovery option;
  slices : int;
      (** time slices for the latency-over-time record (the restart-wave
          p99.9 curve) *)
  resilience : resilience;
  seed : int;
}

val default_config : config
(** 3 hosts, round-robin, rolling restarts, a diurnal trace of 6000
    requests sampled from a million users (15% critical / 25%
    background), 12 time slices, {!default_resilience}. *)

val topology : config -> string
(** Topology label carried into result records, e.g. ["flat/3"]: every
    host is equivalent behind one balancer. *)

type dispatch = {
  d_offered : int;
  d_assign : Host.arrival array array;
      (** per host: its shard of arrivals, in dispatch order *)
  d_redistributed : int;
      (** requests routed away from their first-choice host *)
  d_lb_dropped : int;  (** requests dropped: no admissible host *)
  d_windows : Failplan.window list;
  d_horizon : int;  (** last intended arrival, cycles *)
}

val plan : config -> dispatch
(** The pure dispatch phase alone — round 0, before any client
    observation exists; deterministic, no machine is built. Tests
    cross-check {!run}'s accounting against it. Raises
    [Invalid_argument] on an invalid config ([hosts < 1],
    [requests < 1], out-of-range resilience parameters, or a
    [windows_override] rejected by {!Failplan.validate}). *)

type outcome = {
  offered : int;
  served : int;  (** answered on the original send *)
  retried_ok : int;  (** answered first by a retry *)
  hedged_ok : int;  (** answered first by the hedge *)
  shed_depth : int;
  shed_deadline : int;
  shed_brownout : int;
  lost : int;
      (** terminal fate lost: destroyed by a crash and never recovered
          by a retry — the client timed out *)
  redistributed : int;
  lb_dropped : int;
  violations : int;  (** answered requests over the SLO target *)
  hist : Stats.Histogram.t;
      (** fleet-wide {e end-to-end} latency: first answer minus the
          {e original} intended arrival — retries and hedges never reset
          the clock *)
  slice_hists : Stats.Histogram.t array;
      (** end-to-end latency by original-arrival time slice — slices
          covering a crash window show the wave passing through *)
  makespan_cycles : int;  (** slowest host's wall end, final round *)
  goodput_rps : float;
      (** answered-within-SLO requests per simulated second of makespan *)
  epochs : int;
  epoch_resumes : int;
  sweep_crash_retries : int;
  chaos_injected : int;
  max_pause_us : float;  (** worst single revocation pause fleet-wide *)
  attempts : int;  (** total sends: originals + retries + hedges *)
  retries_sent : int;
  hedges_sent : int;
  dup_served : int;
      (** answers beyond each request's first (hedge and retry both
          landing) — wasted server work *)
  budget_exhausted : int;  (** retries refused by a dry class budget *)
  breaker_trips : int;  (** circuit-breaker trips, final round *)
  brownout_shifts : int;  (** brownout band transitions, fleet-wide *)
  rounds : int;  (** planning rounds until fixed point (or give-up) *)
  hosts : Host.outcome list;  (** in host order, final round *)
  windows : Failplan.window list;
  clean : bool;
      (** all host checkers clean (when [check]) and fleet accounting
          exact *)
  report : string;  (** buffered findings, printable by the caller *)
}

val run : ?check:bool -> ?jobs:int -> config -> outcome
(** Run the round loop to its fixed point and aggregate the final round.
    The outcome is identical for any [jobs]. *)
