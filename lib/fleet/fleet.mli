(** The fleet simulator: N independent host machines behind a pluggable
    balancer, fed one global open-loop trace, with seeded failures.

    Execution is three phases:

    + {b plan} (pure, sequential): draw the global arrival schedule and
      user stream from the seed, plan the failure windows over the trace
      horizon, and run the balancer over every request — each request is
      dispatched against the up/down state at its {e intended} arrival
      time, and a request whose first-choice host is down is
      redistributed {e with its timestamp intact}, so the fleet-wide
      tail has no coordinated omission through failovers.
    + {b simulate} (parallel): every host runs its shard as a
      self-contained {!Host} simulation on a {!Parallel.Pool} worker —
      wall-clock scales with [jobs] while the simulated outcome is
      byte-identical at any job count, because nothing a host computes
      depends on any other host or on domain scheduling.
    + {b aggregate}: per-host histograms merge order-independently
      ({!Stats.Histogram.merge_all}) into the fleet-wide latency record,
      plus goodput and per-host revocation-pause attribution.

    Accounting is exact by construction and checked:
    [served + shed + lb_dropped = offered], and every dispatched request
    appears in exactly one host's shard. *)

(* fleet.ml is the library interface module, so the components are
   re-exported here (Fleet.Balancer, Fleet.Failplan, Fleet.Host). *)
module Balancer = Balancer
module Failplan = Failplan
module Host = Host

type config = {
  hosts : int;
  balancer : Balancer.strategy;
  failures : Failplan.kind;
  pattern : Service.Loadgen.pattern;
  requests : int;
  users : int;  (** simulated user population the trace samples from *)
  warmup_us : float;
      (** shift applied to every intended arrival so host boot
          (session-table init) happens before the measured trace *)
  est_service_us : float;
      (** the balancer's service-time model for least-loaded accounting *)
  mode : Ccr.Runtime.mode;
  governed : bool;
  servers_per_host : int;
  queue_depth : int;
  deadline_us : float option;
  target_p99_us : float;
  session_slots : int;
  temps_per_req : int;
  compute_per_req : int;
  heap_mb : int;
  policy : Ccr.Policy.t option;
  recovery : Ccr.Revoker.recovery option;
  slices : int;
      (** time slices for the latency-over-time record (the restart-wave
          p99.9 curve) *)
  seed : int;
}

val default_config : config
(** 3 hosts, round-robin, rolling restarts, a diurnal trace of 6000
    requests sampled from a million users, 12 time slices. *)

val topology : config -> string
(** Topology label carried into result records, e.g. ["flat/3"]: every
    host is equivalent behind one balancer. *)

type dispatch = {
  d_offered : int;
  d_assign : (int * int) array array;
      (** per host: its shard of [(id, intended)] arrivals, in trace order *)
  d_redistributed : int;
      (** requests routed away from their first-choice host *)
  d_lb_dropped : int;  (** requests dropped because no host was up *)
  d_windows : Failplan.window list;
  d_horizon : int;  (** last intended arrival, cycles *)
}

val plan : config -> dispatch
(** The pure dispatch phase alone — deterministic, no machine is built.
    Tests cross-check {!run}'s accounting against it. Raises
    [Invalid_argument] if [hosts < 1] or [requests < 1]. *)

type outcome = {
  offered : int;
  served : int;
  shed_depth : int;
  shed_deadline : int;
  redistributed : int;
  lb_dropped : int;
  violations : int;
  hist : Stats.Histogram.t;  (** fleet-wide, merged from every host *)
  slice_hists : Stats.Histogram.t array;
      (** fleet-wide latency by intended-arrival time slice — slices
          covering a restart window show the wave passing through the
          tail *)
  makespan_cycles : int;  (** slowest host's wall end *)
  goodput_rps : float;
      (** served-within-SLO requests per simulated second of makespan *)
  epochs : int;
  epoch_resumes : int;
  sweep_crash_retries : int;
  chaos_injected : int;
  max_pause_us : float;  (** worst single revocation pause fleet-wide *)
  hosts : Host.outcome list;  (** in host order *)
  windows : Failplan.window list;
  clean : bool;
      (** all host checkers clean (when [check]) and fleet accounting
          exact *)
  report : string;  (** buffered findings, printable by the caller *)
}

val run : ?check:bool -> ?jobs:int -> config -> outcome
(** Plan, simulate every host (fanned out over [jobs] domains), and
    aggregate. The outcome is identical for any [jobs]. *)
