(** Pluggable load balancers for the fleet simulator.

    The balancer is the fleet's only stateful dispatch component, and it
    runs entirely in the {e pure planning phase}: decisions depend on
    the arrival trace, the failure windows and the balancer's own
    bookkeeping — never on how the simulated hosts are doing. That keeps
    every host simulation independent (so they fan out across domains)
    and makes the whole dispatch replayable from the seed.

    - {b round-robin}: rotate over hosts; a down host is skipped to the
      next up one.
    - {b least-loaded}: track an estimated outstanding-request count per
      host (each dispatch is assumed to complete [est_service_cycles]
      after its arrival — the balancer's service-time model, not the
      host's actual progress) and send to the up host with the fewest;
      ties go to the lowest index.
    - {b consistent-hash}: shard user ids over a 64-vnode/host ring; a
      down owner's keys walk clockwise to the next up host, so only the
      down host's shard moves during a restart.

    A request whose chosen host differs from the host the same strategy
    would have picked with every host up is {e redistributed} — it keeps
    its intended arrival timestamp, so the fleet-wide tail measurement
    stays coordinated-omission-free through failovers. *)

type strategy = Round_robin | Least_loaded | Consistent_hash

val strategy_name : strategy -> string
val strategy_of_name : string -> strategy option
val all_strategies : strategy list

type t

val create : strategy -> hosts:int -> est_service_cycles:int -> t
(** Raises [Invalid_argument] if [hosts < 1] or
    [est_service_cycles < 1]. *)

type decision = {
  host : int;  (** the host the request is dispatched to *)
  redistributed : bool;
      (** the first-choice host was down, so the request moved *)
}

val route :
  ?penalty:(int -> int) ->
  t ->
  now:int ->
  user:int ->
  up:(int -> bool) ->
  decision option
(** Dispatch one request arriving at cycle [now] from [user]. [None]
    when no host is up (the balancer drops the request). Mutates the
    balancer's bookkeeping (rotation counter / outstanding estimates),
    so a dispatch sequence is deterministic in its call order.

    [penalty] (default: always 0) is a per-host score the least-loaded
    strategy adds to its outstanding estimate — the hook through which
    {!Health} feeds EWMA latency and failure streaks into placement.
    Round-robin and consistent-hash ignore it (health reaches them only
    through [up]). *)
