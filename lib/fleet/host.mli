(** One simulated fleet host: a full machine / physical memory /
    allocator / revoker stack serving its shard of the global trace.

    The host runs the open-loop serving rig of {!Workload.Serve} against
    an {e explicit} arrival list (request id, intended arrival cycle)
    instead of generating its own: the fleet dispatcher owns the trace,
    and every latency is measured from the request's fleet-wide intended
    arrival — a request redistributed to this host after a failover
    still charges its queueing delay from the original timestamp.

    Blackout [windows] model this host's crashes/restarts: the servers
    stop taking requests for the window's duration (the balancer has
    already routed arrivals in the window elsewhere), and at each window
    start the revoker takes an induced sweep crash via a {!Chaos}
    schedule, so recovery runs through the resumable-epoch protocol —
    the restarted host {e resumes} its checkpointed epoch rather than
    restarting revocation from scratch.

    Hosts share no mutable state; {!run} is safe to fan out across
    domains and its outcome is a pure function of its config. *)

type config = {
  host : int;  (** fleet index, for labels and seed splitting *)
  mode : Ccr.Runtime.mode;
  governed : bool;  (** install the per-host SLO {!Service.Governor} *)
  servers : int;
  queue_depth : int;
  deadline_us : float option;
  target_p99_us : float;
  session_slots : int;
  temps_per_req : int;
  compute_per_req : int;
  heap_mb : int;
  seed : int;
  check : bool;  (** attach the protocol sanitizer + race detector *)
  policy : Ccr.Policy.t option;
  recovery : Ccr.Revoker.recovery option;
  windows : (int * int) list;  (** blackouts, [(down, up)] cycles *)
  slices : int;
      (** time-sliced latency record: the trace horizon is cut into this
          many equal slices and each served request is also recorded
          into its {e intended-arrival} slice — the fleet's
          p99.9-through-the-restart-wave curve *)
  origin : int;  (** first slice boundary — the end of warmup, cycles *)
  horizon : int;  (** last intended arrival fleet-wide, cycles *)
}

type outcome = {
  h_host : int;
  h_arrivals : int;  (** requests dispatched to this host *)
  h_served : int;
  h_shed_depth : int;
  h_shed_deadline : int;
  h_violations : int;  (** served requests over the SLO target *)
  h_hist : Stats.Histogram.t;  (** latency from intended arrival, µs *)
  h_slices : Stats.Histogram.t array;
      (** latency by intended-arrival time slice, [config.slices] long *)
  h_wall_cycles : int;
  h_epochs : int;  (** revocation epochs closed *)
  h_stw_pause_us : float;  (** total world-stopped time, µs *)
  h_max_pause_us : float;  (** worst single pause, µs *)
  h_epoch_resumes : int;  (** checkpointed-epoch resumptions after crashes *)
  h_sweep_crash_retries : int;
  h_chaos_injected : int;  (** induced sweep crashes that actually fired *)
  h_governor : Service.Governor.stats option;
  h_clean : bool;  (** checkers clean and served + shed = arrivals *)
  h_report : string;  (** buffered checker findings (workers don't print) *)
}

val run : config -> arrivals:(int * int) array -> outcome
(** Simulate the host against its [(id, intended)] arrivals, which must
    be nondecreasing in intended time. Deterministic. *)
