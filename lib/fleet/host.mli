(** One simulated fleet host: a full machine / physical memory /
    allocator / revoker stack serving its shard of the global trace.

    The host runs the open-loop serving rig of {!Workload.Serve} against
    an {e explicit} arrival list instead of generating its own: the
    fleet dispatcher owns the trace, and every latency is measured from
    the request's fleet-wide intended arrival — a request redistributed
    to this host after a failover still charges its queueing delay from
    the original timestamp.

    Blackout [windows] model this host's crashes/restarts with {e real
    loss semantics}: at each window start an {!Chaos.Inflight_loss}
    fault drains everything still queued (each request traced
    [Req_lost]/0 and reported [R_lost]), a request whose service
    straddled the crash has its {e response} destroyed ([Req_lost]/1 —
    the work is wasted and the server rides out the outage), and on
    sweeping modes the revoker additionally takes an induced sweep
    crash, so recovery runs through the resumable-epoch protocol. The
    balancer never dispatches arrivals {e into} a window, so every loss
    here was admitted before its crash.

    Every arrival ends in exactly one {!result}, reported back to the
    fleet in [h_results] — the per-request record the retry layer,
    circuit breakers, and the fleet-wide accounting identity are built
    from.

    Hosts share no mutable state; {!run} is safe to fan out across
    domains and its outcome is a pure function of its config. *)

type arrival = {
  a_id : int;  (** fleet-wide request/attempt id *)
  a_intended : int;  (** intended arrival, fleet-clock cycles *)
  a_cls : int;  (** priority class code ({!Service.Loadgen.cls_code}) *)
}

type result =
  | R_served of { completed : int; latency_us : float }
      (** answered; [latency_us] measured from this arrival's own
          intended time *)
  | R_shed of { why : int; at : int }
      (** rejected ({!Service.Squeue.why_depth} / [why_deadline] /
          [why_brownout]) at cycle [at] — the client hears the refusal
          immediately *)
  | R_lost of { at : int }
      (** destroyed by the crash at cycle [at] (queued or in service) —
          the client hears {e nothing} and only times out *)

type config = {
  host : int;  (** fleet index, for labels and seed splitting *)
  mode : Ccr.Runtime.mode;
  governed : bool;  (** install the per-host SLO {!Service.Governor} *)
  servers : int;
  queue_depth : int;
  deadline_us : float option;
      (** base queueing-deadline budget, stretched per class
          ({!Service.Loadgen.deadline_factor}): critical 1x, normal 4x,
          background exempt *)
  brownout : Service.Squeue.brownout option;
      (** per-host brownout band; when set, the governor also defers
          revocation harder while the band is engaged *)
  target_p99_us : float;
  session_slots : int;
  temps_per_req : int;
  compute_per_req : int;
  heap_mb : int;
  seed : int;
  check : bool;  (** attach the protocol sanitizer + race detector *)
  policy : Ccr.Policy.t option;
  recovery : Ccr.Revoker.recovery option;
  windows : (int * int) list;  (** blackouts, [(down, up)] cycles *)
  slices : int;
      (** time-sliced latency record: the trace horizon is cut into this
          many equal slices and each served request is also recorded
          into its {e intended-arrival} slice *)
  origin : int;  (** first slice boundary — the end of warmup, cycles *)
  horizon : int;  (** last intended arrival fleet-wide, cycles *)
}

type outcome = {
  h_host : int;
  h_arrivals : int;  (** requests dispatched to this host *)
  h_served : int;
  h_shed_depth : int;
  h_shed_deadline : int;
  h_shed_brownout : int;
  h_lost : int;  (** queue-drained at a crash + in-service response loss *)
  h_brownout_shifts : int;  (** brownout band transitions (both edges) *)
  h_violations : int;  (** served requests over the SLO target *)
  h_hist : Stats.Histogram.t;  (** latency from intended arrival, µs *)
  h_slices : Stats.Histogram.t array;
      (** latency by intended-arrival time slice, [config.slices] long *)
  h_results : (int * result) array;
      (** every arrival's terminal outcome, sorted by id — exactly
          [h_arrivals] entries; [served + shed + lost = arrivals] *)
  h_wall_cycles : int;
  h_epochs : int;  (** revocation epochs closed *)
  h_stw_pause_us : float;  (** total world-stopped time, µs *)
  h_max_pause_us : float;  (** worst single pause, µs *)
  h_epoch_resumes : int;  (** checkpointed-epoch resumptions after crashes *)
  h_sweep_crash_retries : int;
  h_chaos_injected : int;  (** chaos faults that actually fired *)
  h_governor : Service.Governor.stats option;
  h_clean : bool;  (** checkers clean and served + shed + lost = arrivals *)
  h_report : string;  (** buffered checker findings (workers don't print) *)
}

val run : config -> arrivals:arrival array -> outcome
(** Simulate the host against its arrivals, which must be nondecreasing
    in intended time. Deterministic. *)
