module Capability = Cheri.Capability
module Machine = Sim.Machine
module Prng = Sim.Prng
module Cost = Sim.Cost
module Trace = Sim.Trace
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Squeue = Service.Squeue
module Slo = Service.Slo
module Governor = Service.Governor
module Loadgen = Service.Loadgen
module Objtable = Workload.Objtable
module Sanitizer = Analysis.Sanitizer
module Race = Analysis.Race

type arrival = { a_id : int; a_intended : int; a_cls : int }

type result =
  | R_served of { completed : int; latency_us : float }
  | R_shed of { why : int; at : int }
  | R_lost of { at : int }

type config = {
  host : int;
  mode : Runtime.mode;
  governed : bool;
  servers : int;
  queue_depth : int;
  deadline_us : float option;
  brownout : Squeue.brownout option;
  target_p99_us : float;
  session_slots : int;
  temps_per_req : int;
  compute_per_req : int;
  heap_mb : int;
  seed : int;
  check : bool;
  policy : Ccr.Policy.t option;
  recovery : Ccr.Revoker.recovery option;
  windows : (int * int) list;
  slices : int;
  origin : int;
  horizon : int;
}

type outcome = {
  h_host : int;
  h_arrivals : int;
  h_served : int;
  h_shed_depth : int;
  h_shed_deadline : int;
  h_shed_brownout : int;
  h_lost : int;
  h_brownout_shifts : int;
  h_violations : int;
  h_hist : Stats.Histogram.t;
  h_slices : Stats.Histogram.t array;
  h_results : (int * result) array;
  h_wall_cycles : int;
  h_epochs : int;
  h_stw_pause_us : float;
  h_max_pause_us : float;
  h_epoch_resumes : int;
  h_sweep_crash_retries : int;
  h_chaos_injected : int;
  h_governor : Governor.stats option;
  h_clean : bool;
  h_report : string;
}

let r_work = 1

(* Same allocation texture as the single-host serving rig: per-request
   temporaries, shared session state with occasional replacement, pure
   compute — enough capability churn that the revoker has real work. *)
let process_request cfg rt ctx rng regs sessions =
  let temps =
    Array.init cfg.temps_per_req (fun i ->
        let c = Runtime.malloc rt ctx (128 + (Prng.int rng 56 * 16)) in
        Machine.store_u64 ctx c (Int64.of_int i);
        let prev = Sim.Regfile.get regs r_work in
        if Capability.tag prev && Capability.length c >= 32 then
          Machine.store_cap ctx (Capability.incr_addr c 16) prev;
        Sim.Regfile.set regs r_work c;
        c)
  in
  for _ = 1 to 2 do
    match Objtable.random_live sessions rng ~hot:0.1 ~weight:0.5 with
    | None -> ()
    | Some slot ->
        let c = Objtable.get sessions ctx slot in
        if Capability.tag c then begin
          Sim.Regfile.set regs r_work c;
          ignore (Machine.load_u64 ctx c);
          Machine.store_u64 ctx (Capability.incr_addr c 8) 7L;
          if Prng.int rng 100 = 0 then begin
            let nv = Runtime.malloc rt ctx 256 in
            Machine.store_u64 ctx nv 1L;
            Objtable.put sessions ctx slot nv ~size:256;
            Runtime.free rt ctx c;
            Sim.Regfile.set regs r_work Capability.null
          end
        end
  done;
  Machine.charge ctx cfg.compute_per_req;
  Array.iter (fun c -> Runtime.free rt ctx c) temps;
  Sim.Regfile.set regs r_work Capability.null

let server_core i = [| 2; 3; 1 |].(i mod 3)

type shared = {
  mutable sessions : Objtable.t option;
  init_cv : Machine.condvar;
  mutable finished_servers : int;
}

(* A request whose service started before a crash and whose answer was
   produced at-or-after it crossed the outage: the host computed a
   response nobody will ever receive. [at] is the crash cycle. *)
let crossed_crash windows ~started ~completed =
  List.fold_left
    (fun acc (down, _up) ->
      match acc with
      | Some _ -> acc
      | None -> if started < down && completed >= down then Some down else acc)
    None windows

(* Faults at each blackout start. Every mode loses its in-flight queue
   (Inflight_loss — the crash destroys admitted-but-unanswered work);
   sweeping modes additionally take an induced sweep crash, so the
   restart exercises the resumable-epoch recovery path (the checkpointed
   sweep cursor survives and the epoch resumes, not restarts). *)
let crash_schedule cfg =
  if cfg.windows = [] then None
  else
    let inflight =
      List.mapi
        (fun i (down, _up) ->
          {
            Chaos.f_id = i;
            f_kind = Chaos.Inflight_loss;
            f_at = down;
            f_param = 0;
            f_count = 1;
          })
        cfg.windows
    in
    let sweeps =
      match cfg.mode with
      | Runtime.Baseline -> []
      | Runtime.Safe strategy ->
          if not (Chaos.applicable strategy Chaos.Sweep_crash) then []
          else
            List.mapi
              (fun i (down, _up) ->
                {
                  Chaos.f_id = List.length inflight + i;
                  f_kind = Chaos.Sweep_crash;
                  f_at = down;
                  f_param = 0;
                  f_count = 1;
                })
              cfg.windows
    in
    let faults = inflight @ sweeps in
    let horizon = List.fold_left (fun a (_, up) -> max a up) 0 cfg.windows in
    Some
      {
        Chaos.sched_id = (cfg.seed * 127) lxor (cfg.host * 31) land 0x3fffffff;
        horizon;
        faults;
      }

(* Per-class deadline: the base budget stretched by the class factor
   (critical 1x, normal 4x, background none — batch traffic is never
   deadline-shed). Explicitly [None] for background even when the queue
   has a base deadline, so the queue-wide fallback must stay unset. *)
let class_deadline deadline_cycles cls =
  match deadline_cycles with
  | None -> None
  | Some d ->
      Option.map
        (fun f -> int_of_float (float_of_int d *. f))
        (Loadgen.deadline_factor (Loadgen.cls_of_code cls))

let run cfg ~arrivals =
  if cfg.servers < 1 then invalid_arg "Host.run: need at least one server";
  if cfg.slices < 1 then invalid_arg "Host.run: need at least one slice";
  let slices = Array.init cfg.slices (fun _ -> Stats.Histogram.create ()) in
  let span = max 1 (cfg.horizon - cfg.origin) in
  let slice_of intended =
    let dt = max 0 (intended - cfg.origin) in
    min (cfg.slices - 1) (dt * cfg.slices / span)
  in
  let heap_bytes = cfg.heap_mb * 1024 * 1024 in
  let mconfig =
    {
      Machine.default_config with
      heap_bytes;
      mem_bytes = heap_bytes + (heap_bytes / 16) + (8 * 1024 * 1024);
      seed = cfg.seed;
    }
  in
  let rt =
    Runtime.create ~config:mconfig ?policy:cfg.policy ?recovery:cfg.recovery
      ~revoker_core:3 cfg.mode
  in
  let m = rt.Runtime.machine in
  (* Hosts always trace: the resume/injection counters subscribe
     losslessly, and the ring's one-shot drop warning is silenced so a
     worker domain never prints. *)
  let tracer = Trace.create ~capacity:(1 lsl 16) () in
  Machine.attach_tracer m (Some tracer);
  Trace.set_warn_on_drop tracer false;
  let resumes = ref 0 and injected = ref 0 in
  ignore
    (Trace.subscribe tracer (fun e ->
         match e.Trace.kind with
         | Trace.Epoch_resume -> incr resumes
         | Trace.Chaos_inject -> incr injected
         | _ -> ()));
  let san = ref None and race = ref None in
  if cfg.check then begin
    san := Some (Sanitizer.attach ?revoker:rt.Runtime.revoker m);
    race := Some (Race.attach m)
  end;
  let deadline = Option.map Cost.cycles_of_us cfg.deadline_us in
  let queue =
    Squeue.create m ~max_depth:cfg.queue_depth ?brownout:cfg.brownout ()
  in
  (* per-request terminal outcomes, keyed by fleet request id *)
  let results : (int, result) Hashtbl.t =
    Hashtbl.create (max 16 (Array.length arrivals))
  in
  let inservice_lost = ref 0 in
  (* The crash half of lost-in-flight: at each window start the
     Inflight_loss fault drains everything still queued. *)
  let drop_inflight ctx =
    let dropped = Squeue.drain_lost queue ctx in
    let at = Machine.now ctx in
    List.iter
      (fun (r : Squeue.req) -> Hashtbl.replace results r.id (R_lost { at }))
      dropped;
    List.length dropped
  in
  let _chaos =
    Option.map
      (fun s ->
        Chaos.install m ~revoker:rt.Runtime.revoker ~mrs:rt.Runtime.mrs
          ~drop_inflight s)
      (crash_schedule cfg)
  in
  let slo = Slo.create ~target_p99_us:cfg.target_p99_us () in
  let gov =
    if cfg.governed && rt.Runtime.revoker <> None then
      Some
        (Governor.install ~target_p99_us:cfg.target_p99_us
           ~p99:(fun () -> Slo.p99_estimate slo)
           ~brownout:(fun () -> Squeue.brownout_active queue)
           rt
           ~depth:(fun () -> Squeue.depth queue)
           ())
    else None
  in
  let sh =
    { sessions = None; init_cv = Machine.condvar (); finished_servers = 0 }
  in
  let wall_end = ref 0 in
  (* The fleet dispatcher models the outside world: arrivals carry
     absolute fleet-clock timestamps, and the generator releases each
     request at its intended time no matter what the host is doing. The
     balancer never dispatches arrivals into this host's blackout
     windows, so everything lost here was admitted before a crash. *)
  let _generator =
    Machine.spawn m
      ~name:(Printf.sprintf "fleet-h%d-loadgen" cfg.host)
      ~core:0 ~user:false
      (fun ctx ->
        while sh.sessions = None do
          Machine.wait ctx sh.init_cv
        done;
        Array.iter
          (fun a ->
            let dt = a.a_intended - Machine.now ctx in
            if dt > 0 then Machine.sleep ctx dt;
            Slo.note_offered slo;
            ignore
              (Squeue.offer queue ctx
                 {
                   Squeue.id = a.a_id;
                   intended = a.a_intended;
                   cls = a.a_cls;
                   deadline = class_deadline deadline a.a_cls;
                   tenant = 0;
                 }))
          arrivals;
        Squeue.close queue ctx)
  in
  let server id =
    Machine.spawn m
      ~name:(Printf.sprintf "fleet-h%d-server-%d" cfg.host id)
      ~core:(server_core id)
      (fun ctx ->
        let regs = Machine.regs (Machine.self ctx) in
        let rng = Prng.create ~seed:(cfg.seed * 31 * (id + 1)) in
        if id = 0 then begin
          let sessions = Objtable.create rt ctx ~slots:cfg.session_slots in
          for slot = 0 to cfg.session_slots - 1 do
            let c = Runtime.malloc rt ctx 256 in
            Machine.store_u64 ctx c (Int64.of_int slot);
            Objtable.put sessions ctx slot c ~size:256
          done;
          sh.sessions <- Some sessions;
          Machine.broadcast ctx sh.init_cv
        end
        else
          while sh.sessions = None do
            Machine.wait ctx sh.init_cv
          done;
        let sessions = Option.get sh.sessions in
        let rec serve () =
          if Squeue.depth queue = 0 then
            Option.iter (fun g -> Governor.maybe_eager g ctx) gov;
          match Squeue.take queue ctx with
          | None -> ()
          | Some req ->
              let started = Machine.now ctx in
              process_request cfg rt ctx rng regs sessions;
              let completed = Machine.now ctx in
              (match
                 crossed_crash cfg.windows ~started ~completed
               with
              | Some down ->
                  (* the crash destroyed the response before it left the
                     host: the work is wasted, the client hears nothing,
                     and this server rides out the outage (its reboot) *)
                  incr inservice_lost;
                  Machine.trace_emit m ~time:completed
                    ~core:(Machine.core_id ctx) ~pid:(Machine.ctx_pid ctx)
                    ~arg2:1 Trace.Req_lost req.Squeue.id;
                  Hashtbl.replace results req.Squeue.id (R_lost { at = down });
                  let up =
                    List.fold_left
                      (fun acc (d, u) -> if d = down then u else acc)
                      completed cfg.windows
                  in
                  let dt = up - Machine.now ctx in
                  if dt > 0 then Machine.sleep ctx dt
              | None ->
                  let lat =
                    Slo.record slo ~intended:req.Squeue.intended ~completed
                  in
                  Hashtbl.replace results req.Squeue.id
                    (R_served { completed; latency_us = lat });
                  Stats.Histogram.record
                    slices.(slice_of req.Squeue.intended)
                    lat);
              serve ()
        in
        serve ();
        sh.finished_servers <- sh.finished_servers + 1;
        if sh.finished_servers = cfg.servers then begin
          wall_end := Machine.now ctx;
          Option.iter Governor.uninstall gov;
          Runtime.finish rt ctx
        end)
  in
  ignore (List.init cfg.servers server);
  Machine.run m;
  List.iter
    (fun ((r : Squeue.req), why, at) ->
      Hashtbl.replace results r.id (R_shed { why; at }))
    (Squeue.shed_log queue);
  let lost_total = Squeue.lost queue + !inservice_lost in
  let accounted =
    Slo.served slo + Squeue.shed queue + lost_total = Slo.offered slo
    && Slo.offered slo = Array.length arrivals
    && Hashtbl.length results = Array.length arrivals
  in
  let report = Buffer.create 0 in
  let rfmt = Format.formatter_of_buffer report in
  let clean =
    match (!san, !race) with
    | Some san, Some race ->
        Sanitizer.finish san;
        if not (Sanitizer.ok san) then Sanitizer.report rfmt san;
        if not (Race.ok race) then Race.report rfmt race;
        Sanitizer.ok san && Race.ok race && accounted
    | _ -> accounted
  in
  if not accounted then
    Format.fprintf rfmt
      "host %d: accounting drift: served %d + shed %d + lost %d <> arrivals \
       %d (results %d)@."
      cfg.host (Slo.served slo) (Squeue.shed queue) lost_total
      (Array.length arrivals) (Hashtbl.length results);
  Format.pp_print_flush rfmt ();
  let phases = Runtime.revoker_records rt in
  let stw_total, stw_max =
    List.fold_left
      (fun (t, mx) p ->
        (t + p.Revoker.stw_cycles, max mx p.Revoker.stw_cycles))
      (0, 0) phases
  in
  let rs =
    match rt.Runtime.revoker with
    | Some rv -> Revoker.recovery_stats rv
    | None ->
        {
          Revoker.epoch_aborts = 0;
          sweep_crash_retries = 0;
          quiesce_timeouts = 0;
          backoff_cycles = 0;
          downshifts = 0;
        }
  in
  let h_results =
    Hashtbl.fold (fun id r acc -> (id, r) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> Array.of_list
  in
  {
    h_host = cfg.host;
    h_arrivals = Array.length arrivals;
    h_served = Slo.served slo;
    h_shed_depth = Squeue.shed_depth queue;
    h_shed_deadline = Squeue.shed_deadline queue;
    h_shed_brownout = Squeue.shed_brownout queue;
    h_lost = lost_total;
    h_brownout_shifts = Squeue.brownout_shifts queue;
    h_violations = Slo.violations slo;
    h_hist = Slo.histogram slo;
    h_slices = slices;
    h_results;
    h_wall_cycles = !wall_end;
    h_epochs = List.length phases;
    h_stw_pause_us = Cost.cycles_to_us stw_total;
    h_max_pause_us = Cost.cycles_to_us stw_max;
    h_epoch_resumes = !resumes;
    h_sweep_crash_retries = rs.Revoker.sweep_crash_retries;
    h_chaos_injected = !injected;
    h_governor = Option.map Governor.stats gov;
    h_clean = clean;
    h_report = Buffer.contents report;
  }
