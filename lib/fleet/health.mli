(** Client-side per-host health signals and circuit breakers.

    The fleet's planning fold feeds this module a deterministic stream of
    dispatch and observation events (every timestamp a simulated cycle,
    every order tie broken by request id), and reads back two things per
    host:

    - {b availability} — a half-open circuit breaker: [Closed] admits
      traffic; [failure_threshold] {e consecutive} failures trip it
      [Open] for [cooloff_us]; after the cooloff it turns [Half_open]
      (probation — traffic admitted again), where [half_open_probes]
      successes close it and a single failure re-opens it with the
      cooloff doubled per consecutive reopen (capped at 16x);
    - {b penalty} — an advisory load-balancer score built from the
      consecutive-failure streak and the EWMA response latency, in
      queued-request equivalents, consumed by the least-loaded strategy.

    State is rebuilt from the event stream every planning round, so
    breaker trajectories are a pure function of the fold's inputs. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type config = {
  failure_threshold : int;  (** consecutive failures that trip the breaker *)
  cooloff_us : float;  (** [Open] duration before probation *)
  half_open_probes : int;  (** successes needed to close from [Half_open] *)
  ewma_alpha : float;  (** latency EWMA weight, in (0, 1] *)
}

val default_config : config
(** Trip after 5 consecutive failures, 5 ms cooloff, 2 probes to close,
    EWMA alpha 0.2. *)

type t

val create : hosts:int -> ?config:config -> est_service_us:float -> unit -> t
(** All breakers start [Closed] with empty signals. [est_service_us]
    normalizes the EWMA into the penalty's queued-request units. Raises
    [Invalid_argument] on a non-positive host count, threshold, cooloff,
    probe count, normalizer, or an alpha outside (0, 1]. *)

val available : t -> host:int -> now:int -> bool
(** May the balancer dispatch to [host] at cycle [now]? Transitions an
    expired [Open] breaker to [Half_open] as a side effect, so calls must
    happen in nondecreasing [now] order (the planning fold's order). *)

val note_dispatch : t -> host:int -> unit
(** An attempt was routed to [host] (raises its in-flight estimate). *)

val note_success : t -> host:int -> latency_us:float -> unit
(** [host] answered in [latency_us]: clears the failure streak, folds the
    latency into the EWMA, and counts toward closing a [Half_open]
    breaker. *)

val note_failure : t -> host:int -> now:int -> unit
(** [host] failed an attempt {e silently} (a lost-in-flight request,
    observed at its rto), at cycle [now]: extends the failure streak and
    may trip the breaker. Explicit load-shed responses deliberately do
    {e not} come through here — they are backpressure, answered fast,
    and feed the retry budget instead; tripping breakers on sheds turns
    overload transients into self-inflicted total outages. *)

val penalty : t -> host:int -> int
(** Advisory score added to the least-loaded balancer's outstanding
    count: [2 * failure_streak] plus the EWMA latency's {e excess} over
    [est_service_us], in units of 4 service times and capped at 4. The
    weighting keeps this lagged signal strictly subordinate to the
    balancer's live outstanding counts — a stale average that can
    outvote live queue lengths makes the whole fleet herd onto
    whichever host last looked fast, re-congesting it and oscillating. *)

val state : t -> host:int -> state
val ewma_us : t -> host:int -> float  (** 0 until the first sample *)

val in_flight : t -> host:int -> int
val trips : t -> int  (** breaker trips, summed over hosts *)

val host_trips : t -> host:int -> int
