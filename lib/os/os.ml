module Capability = Cheri.Capability
module Machine = Sim.Machine
module Cost = Sim.Cost
module Aspace = Vm.Aspace
module Backend = Alloc.Backend
module Runtime = Ccr.Runtime
module Revoker = Ccr.Revoker
module Mrs = Ccr.Mrs
module Policy = Ccr.Policy
module Revmap = Ccr.Revmap

(* ------------------------------------------------------------------ *)
(* Cross-process revocation scheduler                                  *)
(* ------------------------------------------------------------------ *)

module Revsched = struct
  type policy = Round_robin | Pressure | Slo | Quota

  let policy_name = function
    | Round_robin -> "round-robin"
    | Pressure -> "pressure"
    | Slo -> "slo"
    | Quota -> "quota"

  type entry = {
    e_pid : int;
    pressure : unit -> int;
    mutable load : unit -> float;
    mutable debt : unit -> int;
    mutable grants : int;
    mutable wait_cycles : int;
  }

  type t = {
    m : Machine.t;
    policy : policy;
    entries : (int, entry) Hashtbl.t;
    mutable holder : int option;
    mutable waiting : int list; (* pids blocked in acquire *)
    cv : Machine.condvar;
  }

  let create m ~policy =
    {
      m;
      policy;
      entries = Hashtbl.create 8;
      holder = None;
      waiting = [];
      cv = Machine.condvar ();
    }

  let entry t pid =
    match Hashtbl.find_opt t.entries pid with
    | Some e -> e
    | None -> invalid_arg (Printf.sprintf "Revsched: unknown pid %d" pid)

  (* Among the currently waiting processes, which should run next?
     Round-robin grants the least-served waiter; pressure grants the one
     with the most quarantined bytes; slo grants the one whose serving
     load is lowest right now (its epoch disturbs the least traffic),
     falling back to pressure among equally-loaded waiters; quota grants
     the one whose quarantine debt — quota charged for memory stuck in
     quarantine, i.e. the economic cost of revocation lag — is largest,
     falling back to pressure. Ties break towards the lowest pid,
     keeping the choice deterministic. *)
  let chosen t =
    let better (a : entry) (b : entry) =
      match t.policy with
      | Round_robin -> a.grants < b.grants || (a.grants = b.grants && a.e_pid < b.e_pid)
      | Pressure ->
          let pa = a.pressure () and pb = b.pressure () in
          pa > pb || (pa = pb && a.e_pid < b.e_pid)
      | Slo ->
          let la = a.load () and lb = b.load () in
          if la <> lb then la < lb
          else
            let pa = a.pressure () and pb = b.pressure () in
            pa > pb || (pa = pb && a.e_pid < b.e_pid)
      | Quota ->
          let da = a.debt () and db = b.debt () in
          if da <> db then da > db
          else
            let pa = a.pressure () and pb = b.pressure () in
            pa > pb || (pa = pb && a.e_pid < b.e_pid)
    in
    List.fold_left
      (fun best pid ->
        let e = entry t pid in
        match best with
        | None -> Some e
        | Some b -> if better e b then Some e else best)
      None t.waiting

  let acquire t ctx pid =
    let e = entry t pid in
    let t0 = Machine.now ctx in
    t.waiting <- pid :: t.waiting;
    let turn () =
      t.holder = None
      && match chosen t with Some c -> c.e_pid = pid | None -> false
    in
    while not (turn ()) do
      Machine.wait ctx t.cv
    done;
    t.holder <- Some pid;
    t.waiting <- List.filter (fun p -> p <> pid) t.waiting;
    e.grants <- e.grants + 1;
    e.wait_cycles <- e.wait_cycles + (Machine.now ctx - t0);
    Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
      ~pid ~arg2:(List.length t.waiting) Sim.Trace.Sched_grant pid

  let release t ctx pid =
    (match t.holder with
    | Some h when h = pid -> t.holder <- None
    | _ -> ());
    Machine.broadcast ctx t.cv

  let register t ~pid ~pressure ?(load = fun () -> 0.0) ?debt ~revoker () =
    (* With no ledger attached, quarantine debt falls back to raw
       quarantine pressure — the quota policy then degrades to pressure. *)
    let debt = match debt with Some d -> d | None -> pressure in
    Hashtbl.replace t.entries pid
      { e_pid = pid; pressure; load; debt; grants = 0; wait_cycles = 0 };
    Revoker.set_epoch_gate revoker
      ~acquire:(fun ctx -> acquire t ctx pid)
      ~release:(fun ctx -> release t ctx pid)

  (* The serving layer is built after the process table, so its load
     probe (queue depth, utilisation estimate) is installed late. *)
  let set_load t ~pid f = (entry t pid).load <- f

  (* Likewise the quota ledger: tenants register their accounts after
     fork, then point their scheduler entry at the ledger's debt. *)
  let set_debt t ~pid f = (entry t pid).debt <- f

  type stats = { pid : int; grants : int; wait_cycles : int }

  let stats t =
    Hashtbl.fold
      (fun _ e acc ->
        { pid = e.e_pid; grants = e.grants; wait_cycles = e.wait_cycles } :: acc)
      t.entries []
    |> List.sort (fun a b -> compare a.pid b.pid)
end

(* ------------------------------------------------------------------ *)
(* Process table                                                       *)
(* ------------------------------------------------------------------ *)

type state = Running | Zombie | Reaped

let state_name = function
  | Running -> "running"
  | Zombie -> "zombie"
  | Reaped -> "reaped"

type fault = Adopt_quarantine

let fault_name = function Adopt_quarantine -> "adopt-quarantine"

type proc = {
  pid : int;
  mutable p_name : string;
  mutable aspace : Aspace.t;
  mutable rt : Runtime.t;
  mutable p_state : state;
  mutable forked_at : int;
  mutable exited_at : int;
}

type t = {
  m : Machine.t;
  mode : Runtime.mode;
  policy : Policy.t;
  recovery : Revoker.recovery option;
  sched : Revsched.t;
  revoker_core : int;
  procs : (int, proc) Hashtbl.t;
  mutable next_pid : int;
  mutable next_asid : int;
  mutable live_children : int;
  chld_cv : Machine.condvar; (* a child became a zombie, or shutdown *)
  reap_cv : Machine.condvar; (* a zombie was reaped *)
  mutable shutting_down : bool;
  mutable fault : fault option;
  mutable on_process : proc -> unit;
}

let machine t = t.m
let sched t = t.sched
let pid (p : proc) = p.pid
let proc_name p = p.p_name
let runtime p = p.rt
let proc_aspace p = p.aspace
let proc_state p = p.p_state
let find_proc t pid = Hashtbl.find_opt t.procs pid

let procs t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.procs []
  |> List.sort (fun a b -> compare a.pid b.pid)

let init t = Hashtbl.find t.procs 0
let inject_fault t f = t.fault <- f
let set_on_process t f = t.on_process <- f

let register_with_sched t (p : proc) =
  match p.rt.Runtime.mrs, p.rt.Runtime.revoker with
  | Some mrs, Some r ->
      Revsched.register t.sched ~pid:p.pid
        ~pressure:(fun () -> Mrs.quarantine_bytes mrs)
        ~revoker:r ()
  | _ -> ()

let create ?config ?(policy = Policy.default) ?(sched = Revsched.Round_robin)
    ?(revoker_core = 2) ?recovery ?allocator mode =
  let rt = Runtime.create ?config ~policy ~revoker_core ?recovery ?allocator mode in
  let m = rt.Runtime.machine in
  let t =
    {
      m;
      mode;
      policy;
      recovery;
      sched = Revsched.create m ~policy:sched;
      revoker_core;
      procs = Hashtbl.create 8;
      next_pid = 1;
      next_asid = 1;
      live_children = 0;
      chld_cv = Machine.condvar ();
      reap_cv = Machine.condvar ();
      shutting_down = false;
      fault = None;
      on_process = (fun _ -> ());
    }
  in
  let p0 =
    {
      pid = 0;
      p_name = "init";
      aspace = Machine.aspace m;
      rt;
      p_state = Running;
      forked_at = 0;
      exited_at = 0;
    }
  in
  Hashtbl.replace t.procs 0 p0;
  register_with_sched t p0;
  t

(* Every quarantined region of [parent] at this instant: shim fill
   buffer, batches queued at the revoker, and the in-flight epoch's
   entries. The caller filters against the child's inherited bitmap. *)
let parent_quarantine (rt : Runtime.t) =
  match rt.Runtime.mrs, rt.Runtime.revoker with
  | Some mrs, Some r ->
      Mrs.buffered_entries mrs @ Revoker.queued_entries r
      @ Revoker.currently_revoking r
  | _ -> []

(* The child adopted its inherited quarantine as reusable memory without
   waiting for any revocation epoch: §2.2.3 broken across fork. The
   regions are unpainted and released while stale capabilities to them
   (copied into the child's registers and heap at fork) still exist. *)
let adopt_quarantine_fault ctx (child_rt : Runtime.t) entries =
  match child_rt.Runtime.mrs, child_rt.Runtime.revoker with
  | Some _, Some r ->
      let m = Machine.machine ctx in
      List.iter
        (fun (addr, size) ->
          Machine.trace_emit m ~time:(Machine.now ctx)
            ~core:(Machine.core_id ctx) ~pid:(Revoker.pid r) ~arg2:size
            Sim.Trace.Quarantine_deq addr;
          Revmap.clear (Revoker.revmap r) ctx ~addr ~size;
          child_rt.Runtime.alloc.Backend.release_range ctx ~addr ~size;
          Machine.trace_emit m ~time:(Machine.now ctx)
            ~core:(Machine.core_id ctx) ~pid:(Revoker.pid r) ~arg2:size
            Sim.Trace.Reuse addr)
        entries
  | _ -> ()

let fork t ctx ~parent ~name ~core body =
  if parent.p_state <> Running then invalid_arg "Os.fork: parent not running";
  let child_pid = t.next_pid in
  t.next_pid <- child_pid + 1;
  let asid = t.next_asid in
  t.next_asid <- asid + 1;
  (* Host-atomic snapshot: address space, allocator metadata and the
     quarantine set are all captured at the same instant; the charges
     below land after the snapshot is consistent. *)
  let child_asp, downgraded = Aspace.fork parent.aspace ~asid in
  let alloc =
    match parent.rt.Runtime.alloc.Backend.clone with
    | Some f -> f ~aspace:child_asp
    | None ->
        invalid_arg
          (Printf.sprintf "Os.fork: %s does not support fork"
             parent.rt.Runtime.alloc.Backend.name)
  in
  let inherited = parent_quarantine parent.rt in
  (* The parent keeps writing through now-read-only PTEs unless every
     core that may cache them is invalidated. *)
  Machine.tlb_shootdown ~asid:(Aspace.asid parent.aspace) ctx ~vpages:downgraded;
  Machine.charge ctx (Cost.fork_base + (List.length downgraded * Cost.pte_update));
  let hoards = Kernel.Hoard.create () in
  let rt =
    match t.mode with
    | Runtime.Baseline ->
        {
          Runtime.machine = t.m;
          alloc;
          hoards;
          mode = t.mode;
          mrs = None;
          revoker = None;
        }
    | Runtime.Safe strategy ->
        let revoker =
          Revoker.create t.m ~strategy ~core:t.revoker_core ?recovery:t.recovery
            ~hoards ~aspace:child_asp ~pid:child_pid ()
        in
        (match parent.rt.Runtime.revoker with
        | Some pr -> Revoker.inherit_from revoker ~parent:pr
        | None -> ());
        let mrs = Mrs.create t.m ~alloc ~revoker ~policy:t.policy () in
        {
          Runtime.machine = t.m;
          alloc;
          hoards;
          mode = t.mode;
          mrs = Some mrs;
          revoker = Some revoker;
        }
  in
  let child =
    {
      pid = child_pid;
      p_name = name;
      aspace = child_asp;
      rt;
      p_state = Running;
      forked_at = Machine.now ctx;
      exited_at = 0;
    }
  in
  Hashtbl.replace t.procs child_pid child;
  t.live_children <- t.live_children + 1;
  register_with_sched t child;
  Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
    ~pid:parent.pid ~arg2:(List.length downgraded) Sim.Trace.Proc_fork child_pid;
  t.on_process child;
  (* Quarantine crosses fork (§4.3): regions painted in the parent are
     painted in the child's copied bitmap too. The child re-quarantines
     whichever of them still carry bits (an entry mid-dequarantine at
     the snapshot has had its bits cleared, and its reuse is visible in
     the cloned free lists instead). *)
  (match rt.Runtime.mrs, rt.Runtime.revoker with
  | Some mrs, Some r ->
      let still_painted =
        List.filter (fun (addr, _) -> Revmap.test_host (Revoker.revmap r) addr)
          inherited
      in
      (match t.fault with
      | Some Adopt_quarantine -> adopt_quarantine_fault ctx rt still_painted
      | None -> Mrs.adopt_quarantine mrs still_painted)
  | _ -> ());
  ignore
    (Machine.spawn t.m ~name ~core ~pid:child_pid ~aspace:child_asp
       (fun cctx -> body cctx child));
  child

(* Map a fresh address space's shadow-bitmap region the way the machine
   does for the initial one: eagerly, writable, never holding tags. *)
let prepare_aspace asp =
  let layout = Aspace.layout asp in
  let lo = Vm.Layout.(layout.shadow_base) in
  let hi = Vm.Layout.(layout.shadow_limit) in
  ignore (Aspace.map_range asp ~vaddr:lo ~len:(hi - lo) ~writable:true);
  Vm.Pmap.iter (Aspace.pmap asp) ~f:(fun _ pte -> pte.Vm.Pte.cap_store <- false)

let exec t ctx proc ~name =
  if proc.p_state <> Running then invalid_arg "Os.exec: process not running";
  if Machine.ctx_pid ctx <> proc.pid then
    invalid_arg "Os.exec: a process may only exec itself";
  (* No quarantined byte may survive into the new image: flush and drain
     before the old space is torn down. *)
  (match proc.rt.Runtime.mrs with
  | Some mrs ->
      Mrs.flush mrs ctx;
      Mrs.wait_drained mrs ctx
  | None -> ());
  let handles = ref [] in
  Kernel.Hoard.iter proc.rt.Runtime.hoards ~f:(fun h _ -> handles := h :: !handles);
  List.iter (fun h -> Kernel.Hoard.deregister proc.rt.Runtime.hoards ctx h) !handles;
  let asid = t.next_asid in
  t.next_asid <- asid + 1;
  let fresh =
    Aspace.create (Aspace.phys proc.aspace) (Aspace.layout proc.aspace) ~asid
  in
  prepare_aspace fresh;
  let released = Aspace.release_all proc.aspace in
  Machine.charge ctx (Cost.fork_base + (released * Cost.pte_update));
  Machine.adopt_aspace ctx fresh;
  let alloc =
    match proc.rt.Runtime.alloc.Backend.name with
    | "jemalloc" -> Backend.jemalloc (Alloc.Jemalloc.create ~aspace:fresh t.m)
    | _ -> Backend.snmalloc (Alloc.Allocator.create ~aspace:fresh t.m)
  in
  let rt =
    match proc.rt.Runtime.revoker with
    | Some r ->
        Revoker.rebind r ~aspace:fresh;
        let mrs = Mrs.create t.m ~alloc ~revoker:r ~policy:t.policy () in
        { proc.rt with Runtime.alloc; mrs = Some mrs }
    | None -> { proc.rt with Runtime.alloc }
  in
  proc.aspace <- fresh;
  proc.rt <- rt;
  proc.p_name <- name;
  register_with_sched t proc;
  Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
    ~pid:proc.pid Sim.Trace.Proc_exec released;
  t.on_process proc

(* The terminating process's last act: hand any remaining quarantine to
   its revoker and become a zombie for the reaper. The quarantine is NOT
   abandoned (unlike single-process [Runtime.finish]): its pages go back
   to the shared physical allocator only after a full revocation pass. *)
let exit t ctx proc =
  if proc.p_state <> Running then invalid_arg "Os.exit: process not running";
  let leftover =
    match proc.rt.Runtime.mrs with
    | Some mrs ->
        let q = Mrs.quarantine_bytes mrs in
        Mrs.flush mrs ctx;
        q
    | None -> 0
  in
  proc.p_state <- Zombie;
  proc.exited_at <- Machine.now ctx;
  Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
    ~pid:proc.pid Sim.Trace.Proc_exit leftover;
  Machine.broadcast ctx t.chld_cv

(* Forcible termination at an arbitrary epoch phase. Every user thread of
   the victim is marked killed; each unwinds ([Thread_killed] through its
   [Fun.protect] finalizers) at its next scheduling point — including
   threads parked in a stop-the-world, blocked on condvars, or asleep in
   a syscall, which is what lets a kill unstick a wedged quiesce. The
   victim's revoker and helper threads are kernel-side and keep running:
   like [exit], leftover quarantine is flushed to them and drained by the
   reaper before the frames return to the shared pool, so a kill never
   shortcuts the epoch protocol. *)
let kill t ctx proc =
  if proc.p_state <> Running then invalid_arg "Os.kill: process not running";
  if Machine.ctx_pid ctx = proc.pid then
    invalid_arg "Os.kill: a process cannot kill itself (use exit)";
  let killed = Machine.kill_pid t.m proc.pid in
  let leftover =
    match proc.rt.Runtime.mrs with
    | Some mrs -> Mrs.quarantine_bytes mrs
    | None -> 0
  in
  (* Emitted before the flush: the kill is a synchronization edge (the
     victim's threads are torn down before the killer proceeds), and the
     race detector needs to see it before the killer re-enqueues the
     victim's quarantine from its own core. *)
  Machine.trace_emit t.m ~time:(Machine.now ctx) ~core:(Machine.core_id ctx)
    ~pid:proc.pid ~arg2:leftover Sim.Trace.Proc_kill killed;
  (match proc.rt.Runtime.mrs with
  | Some mrs -> Mrs.flush mrs ctx
  | None -> ());
  proc.p_state <- Zombie;
  proc.exited_at <- Machine.now ctx;
  Machine.broadcast ctx t.chld_cv;
  killed

let zombies t =
  Hashtbl.fold (fun _ p acc -> if p.p_state = Zombie then p :: acc else acc) t.procs []
  |> List.sort (fun a b -> compare a.pid b.pid)

(* Reap one zombie: wait out its quarantine (epochs keep running on its
   still-live revoker thread), shut its revoker down, then return every
   frame of its address space to the shared pool. *)
let reap t ctx (p : proc) =
  (match p.rt.Runtime.mrs with
  | Some mrs ->
      Mrs.wait_drained mrs ctx;
      Mrs.finish mrs ctx
  | None -> ());
  let released = Aspace.release_all p.aspace in
  Machine.charge ctx (released * Cost.pte_update);
  p.p_state <- Reaped;
  t.live_children <- t.live_children - 1;
  Machine.broadcast ctx t.reap_cv

let reaper_body t ctx =
  let rec loop () =
    match zombies t with
    | z :: _ ->
        reap t ctx z;
        loop ()
    | [] ->
        if not (t.shutting_down && t.live_children = 0) then begin
          Machine.wait ctx t.chld_cv;
          loop ()
        end
  in
  loop ()

let spawn_reaper t =
  ignore (Machine.spawn t.m ~name:"reaper" ~core:0 ~user:false (reaper_body t))

let wait_children t ctx =
  while t.live_children > 0 do
    Machine.wait ctx t.reap_cv
  done

(* Init's tail end: drain its own runtime and release the reaper. *)
let shutdown t ctx =
  t.shutting_down <- true;
  Runtime.finish (init t).rt ctx;
  Machine.broadcast ctx t.chld_cv

type proc_stats = {
  s_pid : int;
  s_name : string;
  s_state : state;
  elapsed_cycles : int; (* fork to exit, or to now for live processes *)
  quarantine_bytes : int;
  allocations : int;
}

let proc_stats t p =
  {
    s_pid = p.pid;
    s_name = p.p_name;
    s_state = p.p_state;
    elapsed_cycles =
      (if p.p_state = Running then Machine.global_time t.m else p.exited_at)
      - p.forked_at;
    quarantine_bytes =
      (match p.rt.Runtime.mrs with Some mrs -> Mrs.quarantine_bytes mrs | None -> 0);
    allocations = p.rt.Runtime.alloc.Backend.allocation_count ();
  }
