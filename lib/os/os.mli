(** Multi-process address spaces over one physical machine, with a
    cross-process revocation scheduler.

    One simulated machine hosts several {e processes}, each owning an
    address space ({!Vm.Aspace}), an allocator clone, a quarantine shim
    and (in [Safe] modes) its own revoker, all sharing the physical
    frame pool. [fork] is copy-on-write: the two processes share every
    frame read-only until one writes (§4.3 of the paper — quarantine and
    the capability-load generation cross the fork with the bitmap and
    page tables). [exec] replaces a process's image under a fresh asid;
    [exit] hands the dying process's quarantine to a kernel reaper,
    which releases its frames only after a full revocation pass — frames
    are never returned to the shared pool while stale capabilities to
    them may survive in the zombie's quarantine.

    Per-process revokers stop only their own process's threads
    ({!Sim.Machine.stop_the_world} scoping), shoot down only cores
    running their address space, and sweep only their own pages. A
    global {!Revsched} serialises their epochs — one revocation pass
    machine-wide at a time — and arbitrates which pressure-bearing
    process sweeps next. *)

(** The cross-process revocation scheduler: a token each per-process
    revoker must hold for the duration of an epoch.

    Fairness invariants:
    - at most one process's revocation pass (and hence at most one
      stop-the-world phase) is in flight machine-wide at any instant;
    - [Round_robin] grants the token to the waiting process with the
      fewest grants so far, so no waiter starves: between two grants to
      the same process every other waiting process is granted once;
    - [Pressure] grants the token to the waiting process with the most
      quarantined bytes, bounding the worst per-process quarantine at
      the cost of unfairness to light allocators (which cannot starve
      forever either: their pressure only grows while they wait);
    - [Slo] grants the token to the waiting process whose serving load
      (per-process probe, see {!Revsched.set_load}) is lowest — its
      epoch disturbs the least live traffic — breaking load ties by
      pressure, so among idle processes it degenerates to [Pressure];
    - [Quota] grants the token to the waiting process whose quarantine
      {e debt} (per-process probe, see {!Revsched.set_debt}) is largest:
      quota charged for memory stuck in quarantine is the economic cost
      of revocation lag, so the tenant hurting most economically sweeps
      first. Without a ledger the probe defaults to quarantine pressure,
      degenerating to [Pressure];
    - ties break towards the lowest pid, keeping runs deterministic. *)
module Revsched : sig
  type policy = Round_robin | Pressure | Slo | Quota

  val policy_name : policy -> string

  type t

  val set_load : t -> pid:int -> (unit -> float) -> unit
  (** Install a process's load probe (in [\[0,1\]]; e.g. normalised queue
      depth from the serving layer), consulted by the [Slo] policy on
      every grant decision. Defaults to constantly 0 when never set.
      Raises [Invalid_argument] for an unregistered pid. *)

  val set_debt : t -> pid:int -> (unit -> int) -> unit
  (** Install a process's quarantine-debt probe (bytes of quota still
      charged for quarantined-but-unrevoked memory, from the tenant
      ledger), consulted by the [Quota] policy on every grant decision.
      Defaults to the quarantine-pressure probe when never set.
      Raises [Invalid_argument] for an unregistered pid. *)

  type stats = { pid : int; grants : int; wait_cycles : int }

  val stats : t -> stats list
  (** Per-process grant counts and cycles spent waiting for the token,
      sorted by pid. *)
end

type state = Running | Zombie | Reaped

val state_name : state -> string

type fault = Adopt_quarantine
    (** Deliberate protocol mutation for sanitizer self-tests: at fork,
        the child releases its inherited quarantine for immediate reuse
        instead of re-quarantining it — memory is recycled while the
        parent's copies of the stale capabilities are still live and the
        parent's epoch has not closed (a §2.2.3 violation across
        [fork]). *)

val fault_name : fault -> string

type proc
type t

val create :
  ?config:Sim.Machine.config ->
  ?policy:Ccr.Policy.t ->
  ?sched:Revsched.policy ->
  ?revoker_core:int ->
  ?recovery:Ccr.Revoker.recovery ->
  ?allocator:Ccr.Runtime.allocator_kind ->
  Ccr.Runtime.mode ->
  t
(** Build a machine (via {!Ccr.Runtime.create}) and a process table
    whose pid 0 ("init") owns the machine's initial address space and
    runtime. [sched] (default [Round_robin]) picks the revocation
    scheduling policy; [recovery] applies to every process's revoker
    (init's and forked children's). Call {!spawn_reaper} before
    {!Sim.Machine.run}. *)

val machine : t -> Sim.Machine.t
val sched : t -> Revsched.t
val init : t -> proc
(** Process 0. *)

val pid : proc -> int
val proc_name : proc -> string
val runtime : proc -> Ccr.Runtime.t
(** The process's own machine/allocator/mrs/revoker bundle — pass it to
    workload drivers exactly like a single-process {!Ccr.Runtime.t}. *)

val proc_aspace : proc -> Vm.Aspace.t
val proc_state : proc -> state
val find_proc : t -> int -> proc option
val procs : t -> proc list

val fork :
  t ->
  Sim.Machine.ctx ->
  parent:proc ->
  name:string ->
  core:int ->
  (Sim.Machine.ctx -> proc -> unit) ->
  proc
(** Copy-on-write fork. The child gets: a forked address space (shared
    frames, writable PTEs downgraded on both sides, CLG generation and
    per-PTE generation bits inherited, §4.3); a clone of the parent's
    allocator metadata; a fresh revoker + shim seeded from the parent's
    sweep state ({!Ccr.Revoker.inherit_from}); and the parent's
    still-painted quarantine re-enqueued in its own shim. [body] runs as
    the child's main thread on [core]; it should end with {!exit}.
    Raises [Invalid_argument] if the parent's allocator cannot fork
    (jemalloc). *)

val exec : t -> Sim.Machine.ctx -> proc -> name:string -> unit
(** Replace the calling process's image: drain its quarantine, drop its
    kernel hoards, release the old address space and continue in a fresh
    one (fresh asid, fresh allocator and shim, rebound revoker). Must be
    called by the process's own thread. *)

val exit : t -> Sim.Machine.ctx -> proc -> unit
(** Terminate the calling process: flush its remaining quarantine to its
    revoker and become a zombie. The reaper waits for the quarantine to
    drain (the revoker keeps running), shuts the revoker down, and only
    then returns the frames to the shared pool. *)

val kill : t -> Sim.Machine.ctx -> proc -> int
(** Forcibly terminate another process at an arbitrary epoch phase:
    every user thread of the victim is unwound (its [Fun.protect]
    finalizers run) at its next scheduling point — even threads parked
    in a stop-the-world or asleep in a syscall, so a kill can unstick a
    wedged quiesce. Leftover quarantine is flushed to the victim's
    still-running revoker and drained by the reaper exactly as for
    {!exit}; the epoch protocol is never shortcut. Emits [Proc_kill]
    (arg: threads killed, arg2: quarantine bytes flushed) and returns
    the thread count. Raises [Invalid_argument] on self-kill or if the
    victim is not running. *)

val spawn_reaper : t -> unit
(** Spawn the kernel reaper thread (pid 0, non-user, core 0). It exits
    once {!shutdown} has been called and every child is reaped — without
    it, {!exit} leaks zombies and {!Sim.Machine.run} deadlocks. *)

val wait_children : t -> Sim.Machine.ctx -> unit
(** Block until every forked process has been reaped. *)

val shutdown : t -> Sim.Machine.ctx -> unit
(** Init's tail end: finish pid 0's runtime (drain its revoker) and let
    the reaper exit. Call after {!wait_children}. *)

val inject_fault : t -> fault option -> unit
(** Arm (or disarm) the fork-time protocol mutation. Only sanitizer
    self-tests should set this. *)

val set_on_process : t -> (proc -> unit) -> unit
(** Hook invoked for each process created by {!fork} (and re-invoked on
    {!exec}); analyses use it to register per-process shadow state. *)

type proc_stats = {
  s_pid : int;
  s_name : string;
  s_state : state;
  elapsed_cycles : int; (** fork to exit, or to now for live processes *)
  quarantine_bytes : int;
  allocations : int;
}

val proc_stats : t -> proc -> proc_stats
