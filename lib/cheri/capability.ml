type t = {
  tag : bool;
  base : int;
  length : int;
  addr : int;
  perms : Perms.t;
  otype : int; (* 0 = unsealed *)
  win_lo : int; (* cached representable window of (base, length): *)
  win_hi : int; (* [set_addr] runs on every simulated access and sweep
                   probe, and recomputing the window there dominated its
                   cost. Derived from base/length only, so every
                   [{ c with ... }] that keeps the bounds keeps it. *)
}

(* [Compress.representable_window ~base ~length], for bounds that are
   already representable (every constructor here normalizes them first). *)
let window_of ~base ~length =
  let slack = max 2048 (length / 4) in
  (max 0 (base - slack), base + length + slack)

let null =
  { tag = false; base = 0; length = 0; addr = 0; perms = Perms.empty;
    otype = 0; win_lo = 0; win_hi = 2048 }

let root ~length =
  let win_lo, win_hi = window_of ~base:0 ~length in
  { tag = true; base = 0; length; addr = 0; perms = Perms.all; otype = 0;
    win_lo; win_hi }

let tag c = c.tag
let base c = c.base
let length c = c.length
let top c = c.base + c.length
let addr c = c.addr
let perms c = c.perms
let otype c = c.otype
let is_sealed c = c.otype <> 0

let in_bounds ?(width = 1) c =
  width >= 1 && c.addr >= c.base && c.addr + width <= top c

let untag c = { c with tag = false }

let set_bounds_gen ~exact c ~base ~length =
  if length < 0 || base < 0 then untag { c with base; length = max length 0; addr = base }
  else
    let base', length' = Compress.representable ~base ~length in
    let fits = base' >= c.base && base' + length' <= top c in
    let ok =
      c.tag && not (is_sealed c) && fits
      && (not exact || (base' = base && length' = length))
    in
    let win_lo, win_hi = window_of ~base:base' ~length:length' in
    { c with tag = ok; base = base'; length = length'; addr = base;
      win_lo; win_hi }

let set_bounds c ~base ~length = set_bounds_gen ~exact:false c ~base ~length
let set_bounds_exact c ~base ~length = set_bounds_gen ~exact:true c ~base ~length

let set_addr c a =
  if not c.tag then { c with addr = a }
  else if is_sealed c then untag { c with addr = a }
  else { c with addr = a; tag = a >= c.win_lo && a < c.win_hi }

let incr_addr c delta = set_addr c (c.addr + delta)
let restrict_perms c p = { c with perms = Perms.inter c.perms p }
let clear_perm c p = { c with perms = Perms.remove c.perms p }
let clear_tag = untag

let seal c ~otype =
  if c.tag && (not (is_sealed c)) && otype > 0 then { c with otype }
  else untag { c with otype = max otype 0 }

let unseal c ~otype =
  if c.tag && c.otype = otype && otype > 0 then { c with otype = 0 }
  else untag c

let deref_ok ?(width = 1) c perm =
  c.tag && (not (is_sealed c)) && Perms.mem c.perms perm && in_bounds ~width c

(* Address-parameterized dereference check, equal to
   [deref_ok ?width (set_addr c addr) perm] without building the moved
   capability: an in-bounds address is always inside the representable
   window of its own bounds, so [set_addr] would have kept the tag, and
   an out-of-window address is also out of bounds, so both formulations
   reject it. *)
let deref_ok_at ?(width = 1) c ~addr perm =
  c.tag
  && (not (is_sealed c))
  && Perms.mem c.perms perm
  && width >= 1 && addr >= c.base && addr + width <= top c

let can_load ?width c = deref_ok ?width c Perms.load
let can_store ?width c = deref_ok ?width c Perms.store

let can_load_at ?width c ~addr = deref_ok_at ?width c ~addr Perms.load
let can_store_at ?width c ~addr = deref_ok_at ?width c ~addr Perms.store

let can_load_cap c =
  deref_ok ~width:16 c (Perms.union Perms.load Perms.load_cap)

let can_store_cap c =
  deref_ok ~width:16 c (Perms.union Perms.store Perms.store_cap)

let can_load_cap_at c ~addr =
  deref_ok_at ~width:16 c ~addr (Perms.union Perms.load Perms.load_cap)

let can_store_cap_at c ~addr =
  deref_ok_at ~width:16 c ~addr (Perms.union Perms.store Perms.store_cap)

let is_subset c parent =
  c.base >= parent.base && top c <= top parent
  && Perms.subset c.perms parent.perms

let equal a b =
  a.tag = b.tag && a.base = b.base && a.length = b.length && a.addr = b.addr
  && Perms.equal a.perms b.perms && a.otype = b.otype

let pp fmt c =
  Format.fprintf fmt "%c[%#x,%#x)@%#x %a%s"
    (if c.tag then 'v' else 'x')
    c.base (top c) c.addr Perms.pp c.perms
    (if is_sealed c then Printf.sprintf " sealed:%d" c.otype else "")
