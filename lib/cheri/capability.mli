(** Architectural capabilities.

    A capability is a bounded, permission-carrying reference to a region of
    the address space, together with a validity {e tag}. All derivation
    operations are {e monotone}: the result never has wider bounds or more
    permissions than the source, and operations that would violate this
    return an {e untagged} (useless) capability rather than raising, just
    as the hardware does.

    Bounds are subject to the compression model of {!Compress}: requesting
    bounds that are not exactly representable yields a capability whose
    bounds are padded outwards (but never beyond the source bounds — in
    that case the result is untagged). *)

type t

(** {1 Construction} *)

val null : t
(** The canonical untagged capability: no authority whatsoever. *)

val root : length:int -> t
(** [root ~length] is the primordial tagged capability over
    [\[0, length)] with all permissions. The kernel owns it; everything
    else derives from it. *)

(** {1 Accessors} *)

val tag : t -> bool
val base : t -> int
val length : t -> int

val top : t -> int
(** [base + length]. *)

val addr : t -> int
(** The current address (cursor). May lie outside bounds (within the
    representable window) while the capability remains tagged. *)

val perms : t -> Perms.t
val is_sealed : t -> bool

val in_bounds : ?width:int -> t -> bool
(** Whether [\[addr, addr+width)] lies within [\[base, top)].
    [width] defaults to 1. *)

(** {1 Monotone derivation} *)

val set_bounds : t -> base:int -> length:int -> t
(** Narrow bounds to the representable region containing
    [\[base, base+length)] and move the address to [base]. Untagged if the
    padded region escapes the source bounds, if the source is untagged or
    sealed, or if the requested region is empty/negative. *)

val set_bounds_exact : t -> base:int -> length:int -> t
(** Like {!set_bounds} but untagged if padding would be required. *)

val set_addr : t -> int -> t
(** Move the cursor. Keeps the tag while the new address stays inside the
    representable window; strips it otherwise. Bounds never change. *)

val incr_addr : t -> int -> t
(** [incr_addr c delta] is [set_addr c (addr c + delta)]. *)

val restrict_perms : t -> Perms.t -> t
(** Intersect the permission set with the argument. *)

val clear_perm : t -> Perms.t -> t
(** Remove the given permission bits. *)

val clear_tag : t -> t

val seal : t -> otype:int -> t
(** Seal with a non-zero object type: the capability becomes immutable and
    non-dereferenceable until unsealed. Untagged result if already sealed
    or [otype <= 0]. *)

val unseal : t -> otype:int -> t
(** Unseal; untagged result on type mismatch or if not sealed. *)

val otype : t -> int
(** The object type; [0] when unsealed. *)

(** {1 Dereference checks} *)

val can_load : ?width:int -> t -> bool
val can_store : ?width:int -> t -> bool
val can_load_cap : t -> bool
val can_store_cap : t -> bool

val can_load_at : ?width:int -> t -> addr:int -> bool
(** [can_load_at c ~addr] is [can_load ?width (set_addr c addr)] without
    allocating the moved capability — the check the machine's
    address-parameterized access path uses. *)

val can_store_at : ?width:int -> t -> addr:int -> bool
val can_load_cap_at : t -> addr:int -> bool
val can_store_cap_at : t -> addr:int -> bool

(** {1 Relations} *)

val is_subset : t -> t -> bool
(** [is_subset c parent]: bounds within bounds and perms within perms.
    The implicit provenance relation of §2.2 of the paper. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
