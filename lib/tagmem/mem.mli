(** Tagged physical memory.

    Memory is a flat array of bytes with one validity tag per 16-byte,
    naturally-aligned {e granule} — the same density as CHERI tag storage
    (Joannou et al., "Efficient Tagged Memory"). The simulator keeps the
    full capability value for each tagged granule in a shadow array; the
    data bytes of a tagged granule hold the capability's address so that
    integer reads of pointer values behave as on real hardware.

    Tag coherence is enforced here: any data write that touches a granule
    clears its tag, so capabilities cannot be forged or corrupted-but-kept. *)

type t

val granule : int
(** Bytes per tag granule (16). *)

val create : size:int -> t
(** [create ~size] is zeroed memory of [size] bytes (rounded up to a
    granule multiple). *)

val size : t -> int

(** {1 Data access} (physical addresses) *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit
(** 8-byte little-endian accesses; need not be aligned. Writes clear the
    tags of all touched granules. *)

(** {1 Capability access} *)

val read_cap : t -> int -> Cheri.Capability.t
(** [read_cap m a] reads the 16-byte granule at [a] (must be granule-
    aligned). If the granule is tagged, the stored capability is returned;
    otherwise an untagged capability whose address is the granule's first
    8 data bytes. Raises [Invalid_argument] on misalignment. *)

val write_cap : t -> int -> Cheri.Capability.t -> unit
(** Store a capability: sets the granule's tag iff the capability is
    tagged, records its value, and writes its address into the data
    bytes. *)

val read_tag : t -> int -> bool
(** Tag of the granule containing the given address. *)

val clear_tag : t -> int -> unit
(** Clear the tag of the granule containing the given address, leaving
    data bytes intact — the revoker's primitive. *)

val iter_granules : t -> lo:int -> hi:int -> (int -> bool -> unit) -> unit
(** [iter_granules m ~lo ~hi f] calls [f addr tagged] for every granule
    start address in [\[lo, hi)]. *)

val count_tags : t -> lo:int -> hi:int -> int
(** Number of set tags in the given physical range. *)

val fill : t -> lo:int -> hi:int -> int -> unit
(** Fill bytes with a constant, clearing tags. *)

val copy_range : t -> src:int -> dst:int -> len:int -> unit
(** [copy_range m ~src ~dst ~len] copies data bytes, tag bits, and shadow
    capabilities — the primitive behind copy-on-write frame duplication.
    All of [src], [dst], and [len] must be granule-aligned. *)
