(** Tagged physical memory.

    Memory is a flat array of bytes with one validity tag per 16-byte,
    naturally-aligned {e granule} — the same density as CHERI tag storage
    (Joannou et al., "Efficient Tagged Memory"). The simulator keeps the
    full capability value for each tagged granule in a shadow array; the
    data bytes of a tagged granule hold the capability's address so that
    integer reads of pointer values behave as on real hardware.

    Tag coherence is enforced here: any data write that touches a granule
    clears its tag, so capabilities cannot be forged or corrupted-but-kept. *)

type t

val granule : int
(** Bytes per tag granule (16). *)

val create : size:int -> t
(** [create ~size] is zeroed memory of [size] bytes (rounded up to a
    granule multiple). *)

val size : t -> int

(** {1 Data access} (physical addresses) *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit
(** 8-byte little-endian accesses; need not be aligned. Writes clear the
    tags of all touched granules. *)

val read_u64_bit : t -> int -> int -> bool
(** [read_u64_bit m a bit] is
    [Int64.logand (read_u64 m a) (Int64.shift_left 1L bit) <> 0L] for
    [0 <= bit < 64], without boxing the word. *)

(** {1 Capability access} *)

val read_cap : t -> int -> Cheri.Capability.t
(** [read_cap m a] reads the 16-byte granule at [a] (must be granule-
    aligned). If the granule is tagged, the stored capability is returned;
    otherwise an untagged capability whose address is the granule's first
    8 data bytes. Raises [Invalid_argument] on misalignment. *)

val write_cap : t -> int -> Cheri.Capability.t -> unit
(** Store a capability: sets the granule's tag iff the capability is
    tagged, records its value, and writes its address into the data
    bytes. *)

val read_tag : t -> int -> bool
(** Tag of the granule containing the given address. *)

val clear_tag : t -> int -> unit
(** Clear the tag of the granule containing the given address, leaving
    data bytes intact — the revoker's primitive. *)

val iter_granules : t -> lo:int -> hi:int -> (int -> bool -> unit) -> unit
(** [iter_granules m ~lo ~hi f] calls [f addr tagged] for every granule
    start address in [\[lo, hi)]. The range is validated once; the inner
    loop is bounds-check-free. *)

(** {1 Word-scan kernels}

    Tags are stored packed, 64 granules per [int64] word; these kernels
    scan at word granularity and skip all-zero words, which is how both
    Joannou et al.'s tag controller and the revoker's sweep want to touch
    tag metadata. They are host-side accessors: no simulated cycles are
    charged — the caller (e.g. [Sweep.sweep_page]) owes the cost model
    whatever the equivalent per-granule traffic would have been. *)

val popcount64 : int64 -> int
(** Branch-free SWAR population count. *)

val iter_tagged_words : t -> lo:int -> hi:int -> (int -> int64 -> unit) -> unit
(** [iter_tagged_words m ~lo ~hi f] calls [f base word] for every
    64-granule tag word with at least one tag set among the whole
    granules of [\[lo, hi)]. [base] is the physical address of the
    word's first granule (64-granule aligned); bit [i] of [word] is the
    tag of granule [base + i*granule], with bits outside the requested
    range cleared. All-zero words are skipped without calling [f]. *)

val find_tagged : t -> lo:int -> hi:int -> int option
(** Address of the first tagged granule wholly inside [\[lo, hi)], or
    [None]. Word-at-a-time scan. *)

val tag_word : t -> int -> int64
(** [tag_word m a] is the packed tag word covering the 64 granules
    starting at [a], which must be 64-granule (1 KiB) aligned and in
    range. Bit [i] is the tag of granule [a + i*granule]. *)

val count_tags : t -> lo:int -> hi:int -> int
(** Number of set tags in the given physical range (popcount over tag
    words). *)

val fill : t -> lo:int -> hi:int -> int -> unit
(** Fill bytes with a constant, clearing tags. *)

val copy_range : t -> src:int -> dst:int -> len:int -> unit
(** [copy_range m ~src ~dst ~len] copies data bytes, tag bits, and shadow
    capabilities — the primitive behind copy-on-write frame duplication.
    All of [src], [dst], and [len] must be granule-aligned. *)
